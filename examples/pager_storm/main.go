// pager_storm demonstrates the space claim of §3.4: dozens of threads
// blocked on disk page-ins hold no kernel stacks at all in the
// continuation kernel, while the process-model kernel dedicates a 4 KB
// stack to every one of them.
//
// With -profile each run is traced through the obs layer and the
// per-continuation profile plus latency histograms are printed: the MK40
// table is dominated by vm_fault_continue blocks and the block->wakeup
// histogram clusters at the disk latency.
package main

import (
	"flag"
	"fmt"

	"repro/mach"
)

var profile = flag.Bool("profile", false, "print the continuation profile and latency histograms per kernel")

// storm boots a kernel, blocks n threads in page faults simultaneously,
// and reports the stack census at the moment everything is blocked.
func storm(kernel mach.Kernel, n int) (stacksAtPeak int, perThreadBytes float64, profileText string) {
	sys := mach.New(
		mach.WithKernel(kernel),
		mach.WithMemoryFrames(4096),
		mach.WithoutCallout(),
	)
	if *profile {
		sys.EnableTrace()
	}
	task := sys.NewTask("storm")
	for i := 0; i < n; i++ {
		addr := uint64(0x100000 + i*mach.PageSize)
		faulted := false
		task.Spawn("faulter", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
			if faulted {
				return mach.Exit()
			}
			faulted = true
			return mach.Fault(addr)
		}), 10)
	}
	// Run a slice of simulated time shorter than the disk latency: every
	// faulter is now asleep waiting for its page.
	sys.RunFor(mach.Duration(10 * 1000 * 1000)) // 10 ms << 20 ms disk
	st := sys.Stats()
	stacksAtPeak = st.StacksInUse
	perThreadBytes = st.PerThreadBytes
	sys.Run()
	profileText = sys.ProfileString()
	return stacksAtPeak, perThreadBytes, profileText
}

func main() {
	flag.Parse()
	const n = 100
	fmt.Printf("blocking %d threads in simultaneous page faults:\n\n", n)
	fmt.Printf("%-28s %14s %18s\n", "kernel", "kernel stacks", "bytes per thread")
	kernels := []struct {
		name   string
		kernel mach.Kernel
	}{
		{"MK40 (continuations)", mach.MK40},
		{"MK32 (process model)", mach.MK32},
	}
	var profiles []string
	for _, k := range kernels {
		stacks, bytes, prof := storm(k.kernel, n)
		profiles = append(profiles, prof)
		fmt.Printf("%-28s %14d %17.0fB\n", k.name, stacks, bytes)
	}
	if *profile {
		for i, k := range kernels {
			fmt.Printf("\n%s profile:\n", k.name)
			fmt.Print(profiles[i])
		}
	}
	fmt.Println()
	fmt.Println("a faulting thread in MK40 blocks with vm_fault_continue and 28")
	fmt.Println("bytes of scratch; its kernel stack returns to the pool until the")
	fmt.Println("disk interrupt calls the continuation (paper Table 5: 690 vs 4664")
	fmt.Println("bytes per thread, an 85% saving).")
}
