// Netrpc bridge: two simulated machines, one wire.
//
// Machine B exports an "echo" port through its in-kernel netmsg thread;
// machine A's client sends to a local proxy port for it. Each send
// becomes a packet, an rx interrupt on the peer (taken on whatever stack
// that processor is using — no stack is ever allocated for interrupt
// handling), a deferred completion through the io_done thread, and a
// local delivery by the netmsg thread — which, on the continuation
// kernel, hands its stack straight to the receiver blocked in
// mach_msg_continue. Meanwhile a disk reader on each machine keeps the
// paging disk's request queue busy, so the Table 1 picture gains its
// "device io" row.
package main

import (
	"fmt"

	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	spec := workload.DefaultNetRPC()
	res := workload.RunNetRPC(kern.MK40, machine.ArchDS3100, spec)

	fmt.Printf("%d cross-machine RPCs completed in %.2f simulated ms\n\n",
		res.Completed, float64(res.Elapsed)/1e6)

	names := []string{"machine A (client)", "machine B (server)"}
	for i, sys := range []*kern.System{res.Client, res.Server} {
		st := sys.K.Stats
		devBlocks := st.BlocksWithDiscard[stats.BlockDeviceIO] +
			st.BlocksWithoutDiscard[stats.BlockDeviceIO]
		fmt.Printf("%s:\n", names[i])
		fmt.Printf("  interrupts taken on the current stack: %d\n", st.Interrupts)
		fmt.Printf("  device-io blocks: %d (%.0f%% discarded their stack)\n",
			devBlocks, stats.Percent(st.BlocksWithDiscard[stats.BlockDeviceIO], devBlocks))
		fmt.Printf("  io_done stack handoffs: %d, recognitions: %d\n",
			sys.Dev.IoDoneHandoffs, st.IoDoneRecognitions)
		fmt.Printf("  netmsg: %d forwarded out, %d delivered in\n",
			sys.Net.Forwarded, sys.Net.Delivered)
		fmt.Printf("  kernel stacks high-water: %d\n\n", sys.K.Stacks.MaxInUse())
	}

	fmt.Println("the wire path end to end: proxy send -> packet -> rx interrupt ->")
	fmt.Println("io_done completion -> netmsg delivery -> receiver handoff. Every")
	fmt.Println("blocked hop holds a continuation, never a stack.")
}
