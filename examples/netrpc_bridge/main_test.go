package main

import "testing"

// TestRuns smoke-tests the example end to end: it must run to completion
// without panicking on a current build.
func TestRuns(t *testing.T) { main() }
