// Quickstart: boot the continuation kernel, run a tiny RPC exchange, and
// watch the mechanisms from the paper (stack handoff, continuation
// recognition, stack discarding) appear in the statistics.
package main

import (
	"fmt"

	"repro/mach"
)

func main() {
	// A DECstation 3100 running MK40, the continuation kernel.
	sys := mach.New(
		mach.WithKernel(mach.MK40),
		mach.WithMachine(mach.DS3100),
	)

	serverTask := sys.NewTask("name-server")
	clientTask := sys.NewTask("app")
	service := sys.NewPort("service")
	reply := sys.NewPort("app-reply")

	// The server answers every request with its own body.
	serverTask.Spawn("server", mach.EchoServer(sys, service), 20)

	// The client issues ten RPCs and records the answers.
	const rpcs = 10
	done := 0
	var answers []any
	clientTask.Spawn("client", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		if m := sys.Received(t); m != nil {
			answers = append(answers, m.Body)
		}
		if done >= rpcs {
			return mach.Exit()
		}
		done++
		return mach.RPC(sys, service, reply, 100, 64, fmt.Sprintf("request-%d", done))
	}), 10)

	elapsed := sys.Run()

	fmt.Printf("ran %d RPCs in %.1f simulated microseconds (%.1f us each)\n",
		rpcs, elapsed.Micros(), elapsed.Micros()/rpcs)
	fmt.Println("last answer:", answers[len(answers)-1])
	fmt.Println()

	st := sys.Stats()
	fmt.Println("control-transfer statistics:")
	fmt.Printf("  blocking operations : %d\n", st.TotalBlocks)
	fmt.Printf("  stack discards      : %d (every block relinquished its kernel stack)\n", st.StackDiscards)
	fmt.Printf("  stack handoffs      : %d (stack moved sender->receiver directly)\n", st.Handoffs)
	fmt.Printf("  recognitions        : %d (fast path completed the receive inline)\n", st.Recognitions)
	fmt.Printf("  kernel stacks       : max %d in use for %d threads\n", st.StacksMax, 2)
}
