// rpc_echo compares null RPC latency across the paper's three kernels on
// both evaluation machines — a miniature of Table 3 driven entirely
// through the public API.
package main

import (
	"fmt"

	"repro/mach"
)

// measure runs n null RPCs on a fresh system and returns the simulated
// microseconds per round trip.
func measure(kernel mach.Kernel, machine_ mach.Machine, n int) float64 {
	sys := mach.New(
		mach.WithKernel(kernel),
		mach.WithMachine(machine_),
		mach.WithoutCallout(),
	)
	serverTask := sys.NewTask("server")
	clientTask := sys.NewTask("client")
	service := sys.NewPort("service")
	reply := sys.NewPort("reply")
	serverTask.Spawn("srv", mach.EchoServer(sys, service), 20)

	const warmup = 10
	done := 0
	var start, end mach.Time
	clientTask.Spawn("cli", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		sys.Received(t)
		if done == warmup {
			start = sys.Now()
		}
		if done >= n+warmup {
			end = sys.Now()
			return mach.Exit()
		}
		done++
		return mach.RPC(sys, service, reply, 1, 24, nil)
	}), 10)
	sys.Run()
	return (end - start).Micros() / float64(n)
}

func main() {
	const n = 1000
	fmt.Printf("null RPC round-trip latency, %d iterations (simulated)\n\n", n)
	fmt.Printf("%-14s %10s %10s %10s\n", "", "MK40", "MK32", "Mach 2.5")
	for _, m := range []struct {
		name string
		arch mach.Machine
	}{
		{"DECstation", mach.DS3100},
		{"Toshiba 5200", mach.Toshiba5200},
	} {
		fmt.Printf("%-14s", m.name)
		for _, k := range []mach.Kernel{mach.MK40, mach.MK32, mach.Mach25} {
			fmt.Printf(" %8.1fus", measure(k, m.arch, n))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("paper (Table 3):")
	fmt.Printf("%-14s %8.0fus %8.0fus %8.0fus\n", "DECstation", 95.0, 110.0, 185.0)
	fmt.Printf("%-14s %8.0fus %8.0fus %8.0fus\n", "Toshiba 5200", 535.0, 510.0, 890.0)
	fmt.Println()
	fmt.Println("note the Toshiba inversion: MK40 is slightly slower than MK32 there")
	fmt.Println("because its trap handler keeps registers on the stack, so every")
	fmt.Println("handoff copies the register block (the paper's footnote 2).")
}
