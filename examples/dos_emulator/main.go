// dos_emulator demonstrates the exception-handling fast path of §2.5: an
// emulated MS-DOS program raises an exception for every privileged
// instruction; a user-level exception server in the same address space
// emulates the instruction and replies; the kernel moves control between
// them by stack handoff and continuation recognition, so the whole
// exchange never queues a message or context switches.
package main

import (
	"fmt"

	"repro/mach"
)

func main() {
	sys := mach.New(
		mach.WithKernel(mach.MK40),
		mach.WithMachine(mach.Toshiba5200), // the paper ran DOS tests here
	)

	emu := sys.NewTask("dos-emulator")
	excPort := sys.NewPort("exception-port")

	// The exception server: receive an exception RPC, emulate the
	// instruction (a little user work), reply so the kernel restarts the
	// game.
	var handled int
	var pending *mach.Message
	emu.Spawn("handler", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		if m := sys.Received(t); m != nil {
			pending = m
		}
		if pending == nil {
			return mach.Syscall("mach_msg(receive)", func(e *mach.Env) {
				sys.MachMsg(e, mach.MsgOptions{ReceiveFrom: excPort})
			})
		}
		req := pending
		pending = nil
		info := req.Body.(mach.ExcInfo)
		handled++
		if handled <= 3 {
			fmt.Printf("  handler: emulating privileged instruction (code %d) for %s\n",
				info.Code, info.Thread.Name)
		}
		return mach.Syscall("mach_msg(reply+receive)", func(e *mach.Env) {
			reply := sys.NewMessage(1, 24, nil, nil)
			sys.MachMsg(e, mach.MsgOptions{Send: reply, SendTo: req.Reply, ReceiveFrom: excPort})
		})
	}), 21)

	// The game: bursts of emulated CPU, a privileged instruction every
	// so often.
	const traps = 500
	raised := 0
	game := emu.SpawnSuspended("wing-commander", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		if raised >= traps {
			return mach.Exit()
		}
		raised++
		if raised%2 == 1 {
			return mach.RunFor(5000)
		}
		return mach.RaiseException(raised)
	}), 10)
	sys.SetExceptionPort(game, excPort)
	sys.Resume(game)

	elapsed := sys.Run()
	st := sys.Stats()
	fmt.Printf("\nemulated %d privileged instructions in %.2f simulated ms\n",
		handled, elapsed.Micros()/1000)
	fmt.Printf("per trap incl. game + emulation work: %.0f us (bare exception RPC\n"+
		"on this machine: 525 us in the paper; see cmd/tables for the null case)\n",
		elapsed.Micros()/float64(handled))
	rows, _ := sys.BlockBreakdown()
	fmt.Printf("\nblocks: %d exception, %d receive — all with stack discard (%d/%d)\n",
		rows["exception"], rows["message receive"], st.StackDiscards, st.TotalBlocks)
	fmt.Printf("handoffs %d, recognitions %d: the exchange runs on one shared stack\n",
		st.Handoffs, st.Recognitions)
}
