// async_server demonstrates the §4 generalizations built on
// continuations: a pool of threads parked in the kernel serves
// kernel-to-user upcalls (x-kernel / Scheduler Activations style), and
// asynchronous disk I/O completes by replacing the waiting thread's
// continuation with the I/O's own completion continuation.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/upcall"
)

func main() {
	sys := kern.New(kern.Config{
		Flavor: kern.MK40,
		Arch:   machine.ArchDS3100,
	})

	// --- Upcalls -----------------------------------------------------
	svcTask := sys.NewTask("packet-filter")
	pool := upcall.NewPool(sys, svcTask, 3)
	sys.Run(0) // park the pool

	fmt.Printf("upcall pool parked: %d threads, %d kernel stacks in use\n",
		pool.Idle(), sys.K.Stacks.InUse()-1) // -1: the callout thread's stack

	// Simulated network packets arrive; each is dispatched as an upcall
	// into user space on a pooled thread.
	packets := 0
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 3; i++ {
			pool.Upcall(func() core.Action {
				packets++
				return core.RunFor(8000) // user-level packet processing
			})
		}
		sys.Run(0)
	}
	fmt.Printf("dispatched %d packet upcalls (%d overflowed), pool idle again: %d\n",
		pool.Upcalls, pool.Overflows, pool.Idle())

	// --- Asynchronous I/O --------------------------------------------
	aio := upcall.NewAsyncIO(sys)
	appTask := sys.NewTask("database")

	var completions []string
	mkDone := func(name string) *core.Continuation {
		return core.NewContinuation("io_done_"+name, func(e *core.Env) {
			completions = append(completions, name)
			e.K.ThreadSyscallReturn(e, 0)
		})
	}

	step := 0
	prog := core.ProgramFunc(func(e *core.Env, t *core.Thread) core.Action {
		step++
		switch step {
		case 1:
			return core.Syscall("aio_submit", func(e *core.Env) {
				// Three reads in flight at once; the thread keeps
				// computing while the disk works.
				aio.Submit(e, machine.Duration(3_000_000), mkDone("index"))
				aio.Submit(e, machine.Duration(5_000_000), mkDone("btree"))
				aio.Submit(e, machine.Duration(7_000_000), mkDone("log"))
				e.K.ThreadSyscallReturn(e, 0)
			})
		case 2:
			return core.RunFor(40_000) // overlap compute with I/O
		case 3, 4, 5:
			return core.Syscall("aio_wait", func(e *core.Env) { aio.Wait(e) })
		default:
			return core.Exit()
		}
	})
	sys.Start(appTask.NewThread("query", prog, 10))
	sys.Run(0)

	fmt.Printf("\nasync I/O: %d submitted, %d completed, order %v\n",
		aio.Submitted, aio.Completed, completions)
	fmt.Printf("continuation replacements: %d (completion swapped in for the\n"+
		"generic wait continuation while the thread slept — §4's mechanism)\n",
		aio.Replacements)
}
