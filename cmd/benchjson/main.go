// benchjson converts `go test -bench` output into a JSON report and
// enforces allocation budgets, for the CI benchmark smoke.
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson [-o out.json] [-zero-allocs name,name]
//	        [-max-ratio slow,fast,limit]
//
// Each benchmark line becomes an object with its name, iteration count
// and every reported metric (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units). -zero-allocs names benchmarks (prefix match, so
// sub-benchmarks count) that must report 0 allocs/op; a violation fails
// the run after the JSON is written. -max-ratio (repeatable) names two
// benchmarks (prefix match) and a limit: the first's ns/op must stay
// within limit times the second's — the relative-overhead gate for
// feature-on vs feature-off benchmark pairs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// ratioGate is one parsed -max-ratio rule: slow's ns/op must stay
// within limit times fast's.
type ratioGate struct {
	slow, fast string
	limit      float64
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	zero := flag.String("zero-allocs", "", "comma-separated benchmark name prefixes that must report 0 allocs/op")
	var ratios []ratioGate
	flag.Func("max-ratio", "slow,fast,limit: benchmark slow's ns/op must stay within limit times fast's (prefix match, repeatable)",
		func(val string) error {
			parts := strings.Split(val, ",")
			if len(parts) != 3 {
				return fmt.Errorf("max-ratio %q: want slow,fast,limit", val)
			}
			limit, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || limit <= 0 {
				return fmt.Errorf("max-ratio %q: bad limit", val)
			}
			ratios = append(ratios, ratioGate{slow: parts[0], fast: parts[1], limit: limit})
			return nil
		})
	flag.Parse()

	var results []benchResult
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the CI log keeps the raw table
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  N  value unit  value unit ...
		if len(fields) < 4 || (len(fields)%2) != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *zero != "" {
		failed := false
		for _, prefix := range strings.Split(*zero, ",") {
			matched := false
			for _, r := range results {
				if !strings.HasPrefix(r.Name, prefix) {
					continue
				}
				matched = true
				if allocs, ok := r.Metrics["allocs/op"]; !ok {
					fmt.Fprintf(os.Stderr, "benchjson: %s has no allocs/op metric (missing -benchmem?)\n", r.Name)
					failed = true
				} else if allocs != 0 {
					fmt.Fprintf(os.Stderr, "benchjson: %s allocates: %v allocs/op (budget 0)\n", r.Name, allocs)
					failed = true
				}
			}
			if !matched {
				fmt.Fprintf(os.Stderr, "benchjson: no benchmark matches %q\n", prefix)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}

	if len(ratios) > 0 {
		// nsOp finds the first matching benchmark's ns/op by prefix.
		nsOp := func(prefix string) (float64, bool) {
			for _, r := range results {
				if strings.HasPrefix(r.Name, prefix) {
					v, ok := r.Metrics["ns/op"]
					return v, ok
				}
			}
			return 0, false
		}
		failed := false
		for _, g := range ratios {
			slow, okS := nsOp(g.slow)
			fast, okF := nsOp(g.fast)
			if !okS || !okF {
				fmt.Fprintf(os.Stderr, "benchjson: max-ratio %s,%s: benchmark missing\n", g.slow, g.fast)
				failed = true
				continue
			}
			if fast > 0 && slow > g.limit*fast {
				fmt.Fprintf(os.Stderr, "benchjson: %s is %.2fx %s (budget %.2fx)\n",
					g.slow, slow/fast, g.fast, g.limit)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
