// machsim runs one of the paper's workloads on a chosen kernel flavor
// and machine, then prints the control-transfer statistics in the format
// of Tables 1 and 2 (single-machine workloads) or the cluster report
// (multi-machine workloads).
//
// Usage:
//
//	machsim [-workload compile|build|dos|netrpc|kv|svcgraph|mtload]
//	        [-flavor mk40|mk32|mach25] [-arch ds3100|toshiba]
//	        [-scale f] [-seed n] [-v]
//	        [-pairs n] [-clients n] [-parallel] [-failover]
//	        [-machines n] [-tenants n] [-sessions n]
//	        [-faults seed:spec] [-crash M@T[:reboot+N]]
//	        [-fuzz seed:count] [-fuzzout dir] [-breakkv]
//	        [-overload off|on[:k=v,...]] [-breakoverload]
//	        [-check] [-trace out.json] [-profile] [-sample 1/N]
//
// Workloads:
//
//   - compile, build, dos: the paper's single-machine workloads (Tables
//     1 and 2); -scale and -seed apply.
//   - netrpc: two machines joined by a NIC pair running cross-machine
//     echo RPCs through the in-kernel netmsg threads. -pairs n boots n
//     client/server pairs (2n machines); -clients n runs n client
//     threads per client machine; -failover boots the 4-machine HA
//     topology (client, primary, replica, client) instead.
//   - kv: the replicated sharded key/value service — two client machines
//     driving a primary/backup replica pair with epoch-numbered leases,
//     fencing tokens and heartbeat-driven leader election. -clients sets
//     the caller threads per client machine.
//   - svcgraph: the multi-tier service graph — frontend -> cache ->
//     replicated KV — reporting per-tier throughput and p50/p99 latency
//     from the service histograms.
//   - mtload: the open-loop multi-tenant load generator at cluster
//     scale — -machines n client/server hosts (even, default 8) carrying
//     -tenants k traffic classes (default 4) whose sessions a
//     cluster-level balancer spreads across the machines; -sessions
//     overrides the per-tenant session count (default 100 per machine).
//     Each session sleeps through jittered think times as a blocked
//     continuation and charges latency from its intended arrival, so the
//     report's per-tenant p50/p99 and SLA-attainment include queueing
//     delay. The aggregate report ends with the cluster memory census:
//     stacks stay O(processors) per machine while blocked sessions scale
//     into the 10^5..10^6 range. -machines/-tenants/-sessions only make
//     sense here, and the pair/fault flags of the other cluster
//     workloads make no sense here; machsim rejects either mixture.
//     Adding -overload switches mtload into the storm scenario (below).
//
// -overload arms the end-to-end overload controls on the kv and mtload
// workloads: absolute deadlines propagated in the message headers (every
// tier sheds dead work on dequeue), per-client retry budgets, CoDel-style
// admission control at the cache and KV tiers, and a circuit breaker in
// the clients. "on" uses the canonical policy; "on:deadline=8ms,budget=4"
// overrides fields (keys: deadline, target, interval, budget, refill,
// breaker, cooldown); a malformed spec exits 2 naming the offending
// rule. Shed operations are definite no-ops: the linearizability checker
// excludes them and -breakoverload runs the deliberately broken replica
// that applies an already-expired write before claiming it was shed —
// the phantom write the checker must flag.
//
// On mtload, -overload selects the storm scenario instead of the
// balancer cluster: the 4-machine frontend/cache/KV chain under
// open-loop session load with a canonical trigger (demand burst + cache
// gray failure + link delay) that tips the uncontrolled system into a
// metastable retry storm. `-overload off` runs the negative arm — the
// report's verdict line reads METASTABLE when goodput stays collapsed
// for five trigger durations after the trigger cleared — and `-overload
// on` must read RECOVERED (90% of baseline goodput within two trigger
// durations). -faults overrides the trigger schedule, -sessions the
// open-loop session count; -machines/-tenants are rejected there.
//
// Shared cluster flags: -parallel drives the machines on one goroutine
// each (output stays byte-identical to the sequential driver); -crash
// injects whole-machine crashes (below); -faults adds wire/device
// faults.
//
// -faults installs a seeded deterministic fault plan, e.g.
// "42:drop=0.1,devfail=0.05,devslow=0.1:2ms"; wire faults switch the
// netmsg threads to the reliable seq/ack protocol. -check runs the
// kernel invariant sweep after every dispatch. The same -faults argument
// always produces byte-identical output — the CI determinism smoke
// diffs two such runs.
//
// Beyond the probabilistic keys, the spec grammar schedules topology
// faults enforced at the NIC/link plane:
//
//   - partition=A|B@T+D cuts every link between machine groups A and B
//     (dot-separated indices, e.g. 1|0.2.3) from offset T for duration D;
//   - link=S>D:drop@T+D severs the one-way S->D path (the reverse
//     direction keeps flowing — an asymmetric gray link);
//   - link=S>D:delay[:X]@T+D stretches S->D wire latency by X (2ms if
//     omitted);
//   - gray=M:F@T+D runs machine M at 1/F speed — a gray failure: the
//     machine is alive and answering, just pathologically slow;
//   - burst=F@T+D multiplies the open-loop offered load by F (demand-side:
//     the storm and mtload sessions divide their think gaps by it).
//
// The kv workload records every client operation and checks the merged
// history for per-key linearizability, plus a split-brain assertion over
// the replicas' durable ack logs; the report prints the verdict and a
// nemesis timeline. -fuzz seed:count generates `count` random nemesis
// schedules from `seed`, runs the kv workload under each, and checks
// every history; on a violation it greedily shrinks the schedule and
// prints a minimal reproducing -faults argument, then exits nonzero.
// -fuzzout dir dumps each schedule's history. -breakkv disables the
// replicas' partition-heal safety machinery (rejoin state merge, deposed
// stall) — the deliberately broken build the checker must flag.
//
// -crash M@T[:reboot+N] is sugar for a crash=… rule in the fault spec:
// machine M halts at simulated offset T, dropping all in-flight state,
// and (with :reboot+N) warm-reboots N later under a new incarnation. The
// flag is repeatable. M is a machine index, or a role alias resolved
// against the chosen workload: netrpc/kv accept client/primary/
// replica(backup); svcgraph accepts frontend/cache/primary/
// replica(backup). For netrpc, -crash implies -failover. Crashing the kv
// primary for longer than the membership silence deadline (e.g. -crash
// primary@40ms:reboot+160ms) forces a leader election on the backup and
// a fencing rejection of the rebooted primary's stale lease epochs —
// and every client op still completes. A shorter outage rides through
// on the lease grant-back path with no election. The report gains a
// "recovery:" section with the crash/failover accounting.
//
// -trace records every kernel event and writes a Chrome trace_event JSON
// file (load it in Perfetto or chrome://tracing, or summarize it with
// cmd/traceview). -profile prints the per-continuation profile and the
// latency histograms after the run. Both are deterministic: the same
// flags and seed produce byte-identical traces and reports.
//
// The kv and svcgraph workloads additionally run causal tracing: every
// client operation mints a deterministic trace context that rides the
// netmsg header across machines, and each tier records spans (queue,
// service, wire, retry, election) into its machine's recorder. The
// report ends with a critical-path attribution table — per-segment
// p50/p99 over the sampled operations plus the slowest ops decomposed
// so each op's segment sum equals its measured round-trip. -sample 1/N
// head-samples the traces (keep the 1-in-N hash class of trace ids;
// default 1/1 keeps all). Exported spans appear in the -trace file as
// "X" events with cross-machine flow arrows; summarize them with
// traceview -spans.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	workloadName = flag.String("workload", "compile", "compile, build, dos, netrpc, kv, svcgraph, or mtload")
	flavorName   = flag.String("flavor", "mk40", "mk40, mk32, or mach25")
	archName     = flag.String("arch", "toshiba", "ds3100 or toshiba")
	scale        = flag.Float64("scale", 0.25, "fraction of the paper's duration to simulate")
	seed         = flag.Uint64("seed", 12345, "workload random seed")
	verbose      = flag.Bool("v", false, "also print per-component detail")
	faultsFlag   = flag.String("faults", "", "seed:spec fault plan, e.g. 42:drop=0.1,devfail=0.05")
	check        = flag.Bool("check", false, "run the kernel invariant sweep after every dispatch")
	traceFile    = flag.String("trace", "", "write a Chrome trace_event JSON trace to this file")
	profile      = flag.Bool("profile", false, "print the continuation profile and latency histograms")
	pairs        = flag.Int("pairs", 1, "netrpc: client/server machine pairs (2*pairs machines)")
	clients      = flag.Int("clients", 1, "netrpc: client threads per client machine")
	parallel     = flag.Bool("parallel", false, "netrpc: run machines on goroutines (byte-identical output)")
	failover     = flag.Bool("failover", false, "netrpc: boot the 4-machine HA topology (client/primary/replica/client)")
	fuzzFlag     = flag.String("fuzz", "", "kv: fuzz nemesis schedules, seed:count (e.g. 7:25)")
	fuzzOut      = flag.String("fuzzout", "", "kv fuzz: directory receiving one history dump per schedule")
	breakKV      = flag.Bool("breakkv", false, "kv: run the deliberately broken replicas (checker must flag them)")
	sampleFlag   = flag.String("sample", "", "kv/svcgraph: head-sample 1/N of operation traces (default 1/1, keep all)")
	machines     = flag.Int("machines", 8, "mtload: cluster size (even, >= 2)")
	tenants      = flag.Int("tenants", 4, "mtload: tenant count")
	sessions     = flag.Int("sessions", 0, "mtload: sessions per tenant (default 100 per machine)")
	overloadFlag = flag.String("overload", "", "kv/mtload: overload controls, off|on[:key=value,...] (mtload: selects the storm scenario)")
	breakOv      = flag.Bool("breakoverload", false, "kv/mtload: replicas apply already-expired writes before shedding them (checker must flag)")

	// sampleEvery is the parsed -sample denominator (1 = keep everything).
	sampleEvery = 1

	// ovPolicy is the parsed -overload policy (zero value, Enabled false,
	// when the flag is absent — armed workloads stay byte-identical to the
	// legacy report in that case).
	ovPolicy overload.Policy

	// crashFlags collects the repeatable -crash flag's raw values; each is
	// sugar for a crash=… rule in the -faults spec. The machine part may
	// be a role alias (primary, cache, …), which only resolves once the
	// workload is known — so parsing is deferred to resolveCrashes.
	crashFlags []string
)

func init() {
	flag.Func("crash", "crash machine M (index or role alias) at offset T, e.g. primary@40ms:reboot+80ms (repeatable; implies -failover for netrpc)",
		func(val string) error {
			crashFlags = append(crashFlags, val)
			return nil
		})
}

// crashAliases maps each cluster workload's role names to machine
// indices in its topology.
var crashAliases = map[string]map[string]int{
	"netrpc": {
		"client": 0, "primary": 1, "replica": 2, "backup": 2,
	},
	"kv": {
		"client": 0, "primary": 1, "replica": 2, "backup": 2,
	},
	"svcgraph": {
		"frontend": 0, "cache": 1, "primary": 2, "replica": 3, "backup": 3,
	},
}

// resolveCrashes parses the collected -crash flags for the chosen
// workload, translating role aliases into machine indices first.
func resolveCrashes(workloadName string) []fault.Crash {
	aliases := crashAliases[workloadName]
	out := make([]fault.Crash, 0, len(crashFlags))
	for _, val := range crashFlags {
		if at := strings.IndexByte(val, '@'); at > 0 {
			if idx, ok := aliases[strings.TrimSpace(val[:at])]; ok {
				val = fmt.Sprintf("%d%s", idx, val[at:])
			}
		}
		c, err := fault.ParseCrash(val)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out = append(out, c)
	}
	return out
}

// mtloadOnlyFlags and clusterOnlyFlags partition the flags that bind to
// one workload family: the first group only means something under
// -workload mtload, the second only under the pair/fault workloads.
// stormFlags are the cluster flags the mtload storm scenario (selected by
// -overload) takes back: the storm has a real fault plane and traces.
var (
	mtloadOnlyFlags  = []string{"machines", "tenants", "sessions"}
	clusterOnlyFlags = []string{
		"pairs", "clients", "failover", "faults", "crash",
		"fuzz", "fuzzout", "breakkv", "sample", "scale",
	}
	stormFlags = map[string]bool{"faults": true, "sample": true}
)

// validateWorkloadFlags rejects nonsensical flag combinations before any
// machine boots: mtload-only sizing flags on other workloads, the
// pair/fault flags on mtload, overload flags on workloads with no
// shedding tiers, and mtload sizes that cannot describe a cluster. set
// reports whether a flag appeared on the command line (flagWasSet in
// production; a stub in tests).
//
// -overload on mtload switches it into the storm scenario: a fixed
// 4-machine frontend/cache/KV chain under open-loop session load, where
// -faults names the trigger schedule and -sessions the open-loop session
// count. The mtload sizing flags -machines/-tenants describe the
// balancer cluster and mean nothing there.
func validateWorkloadFlags(name string, machines, tenants, sessions int, set func(string) bool) error {
	if set("breakoverload") && !set("overload") {
		return fmt.Errorf("-breakoverload requires -overload (nothing sheds without it)")
	}
	if name != "mtload" {
		if set("overload") && name != "kv" {
			return fmt.Errorf("-overload only applies to -workload kv or mtload (got %q)", name)
		}
		for _, f := range mtloadOnlyFlags {
			if set(f) {
				return fmt.Errorf("-%s only applies to -workload mtload (got %q)", f, name)
			}
		}
		return nil
	}
	storm := set("overload")
	for _, f := range clusterOnlyFlags {
		if !set(f) {
			continue
		}
		if storm && stormFlags[f] {
			continue
		}
		if storm {
			return fmt.Errorf("-%s does not apply to the mtload storm scenario (-overload)", f)
		}
		return fmt.Errorf("-%s does not apply to -workload mtload", f)
	}
	if storm {
		for _, f := range []string{"machines", "tenants"} {
			if set(f) {
				return fmt.Errorf("-%s does not apply to the mtload storm scenario (-overload); the storm topology is fixed, only -sessions sizes the load", f)
			}
		}
		if set("sessions") && sessions < 1 {
			return fmt.Errorf("-sessions must be >= 1, got %d", sessions)
		}
		return nil
	}
	if machines < 2 || machines%2 != 0 {
		return fmt.Errorf("-machines must be even and >= 2, got %d", machines)
	}
	if tenants < 1 {
		return fmt.Errorf("-tenants must be >= 1, got %d", tenants)
	}
	if set("sessions") && sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1, got %d", sessions)
	}
	return nil
}

func main() {
	flag.Parse()

	if err := validateWorkloadFlags(*workloadName, *machines, *tenants, *sessions, flagWasSet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var flavor kern.Flavor
	switch *flavorName {
	case "mk40":
		flavor = kern.MK40
	case "mk32":
		flavor = kern.MK32
	case "mach25":
		flavor = kern.Mach25
	default:
		fmt.Fprintf(os.Stderr, "unknown flavor %q\n", *flavorName)
		os.Exit(2)
	}

	var arch machine.Arch
	switch *archName {
	case "ds3100":
		arch = machine.ArchDS3100
	case "toshiba":
		arch = machine.ArchToshiba5200
	default:
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *archName)
		os.Exit(2)
	}

	var faultSeed uint64
	var faultSpec fault.Spec
	if *faultsFlag != "" {
		var err error
		faultSeed, faultSpec, err = fault.ParseFlag(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *sampleFlag != "" {
		n, err := obs.ParseSample(*sampleFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sampleEvery = n
	}

	if flagWasSet("overload") {
		p, err := overload.ParsePolicy(*overloadFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ovPolicy = p
	}

	faultSpec.Crashes = append(faultSpec.Crashes, resolveCrashes(*workloadName)...)

	if *fuzzFlag != "" {
		runFuzz(flavor, arch)
		return
	}

	switch *workloadName {
	case "netrpc":
		runNetRPC(flavor, arch, faultSeed, faultSpec)
		return
	case "kv":
		runKV(flavor, arch, faultSeed, faultSpec)
		return
	case "svcgraph":
		runSvcGraph(flavor, arch, faultSeed, faultSpec)
		return
	case "mtload":
		if flagWasSet("overload") {
			runStorm(flavor, arch, faultSeed, faultSpec)
		} else {
			runMTLoad(flavor, arch)
		}
		return
	}

	var spec workload.Spec
	switch *workloadName {
	case "compile":
		spec = workload.CompileTest()
	case "build":
		spec = workload.KernelBuild()
	case "dos":
		spec = workload.DOSEmulation()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadName)
		os.Exit(2)
	}

	wspec := spec.Scale(*scale)
	sys := workload.NewSystem(flavor, arch, wspec)
	sys.K.DebugChecks = *check
	sys.InjectFaults(faultSeed, faultSpec)
	var rec *obs.Recorder
	if *traceFile != "" || *profile {
		rec = sys.EnableObservation(0)
	}
	inst := workload.Install(sys, wspec, *seed)
	inst.Run()
	st := sys.K.Stats
	total := st.TotalBlocks()

	fmt.Printf("%s on %v/%v — %.0f simulated seconds (scale %.2f), %d blocking operations\n\n",
		spec.Name, flavor, arch, sys.K.Clock.Now().Seconds(), *scale, total)

	fmt.Printf("%-20s %12s %8s\n", "operation", "blocks", "%")
	for _, r := range stats.DiscardReasons {
		n := st.BlocksWithDiscard[r]
		fmt.Printf("%-20s %12d %7.1f%%\n", r, n, stats.Percent(n, total))
	}
	fmt.Printf("%-20s %12d %7.1f%%\n", "total stack discards",
		st.TotalDiscards(), stats.Percent(st.TotalDiscards(), total))
	fmt.Printf("%-20s %12d %7.1f%%\n", "no stack discards",
		st.TotalNoDiscards(), stats.Percent(st.TotalNoDiscards(), total))

	fmt.Printf("\n%-20s %12d %7.1f%%\n", "stack handoff", st.Handoffs,
		stats.Percent(st.Handoffs, total))
	fmt.Printf("%-20s %12d %7.1f%%\n", "recognition", st.Recognitions,
		stats.Percent(st.Recognitions, total))

	fmt.Printf("\nkernel stacks: %.3f average in use, %d worst case, %d threads live\n",
		sys.K.Stacks.AverageInUse(), sys.K.Stacks.MaxInUse(), sys.K.LiveThreads())
	mc := sys.MemoryCensus()
	fmt.Printf("memory census: %d stacks high-water vs %d blocked threads high-water\n",
		mc.StackHighWater, mc.BlockedHighWater)
	fmt.Printf("per-thread kernel memory now: %.0f bytes (static %v: %d bytes)\n",
		sys.MeasuredPerThreadBytes(), flavor, flavor.StaticThreadSpace().Total())

	printFaultReport(sys)

	if *verbose {
		fmt.Printf("\ndetail:\n")
		fmt.Printf("  context switches      %12d\n", st.ContextSwitches)
		fmt.Printf("  continuation calls    %12d\n", st.ContinuationCalls)
		fmt.Printf("  stack attaches        %12d\n", st.StackAttaches)
		fmt.Printf("  run-queue traffic     %12d enq / %d deq\n", sys.Sched.Enqueues, sys.Sched.Dequeues)
		fmt.Printf("  run-queue high water  %12d\n", sys.Sched.HighWater)
		fmt.Printf("  vm: disk faults       %12d\n", sys.VM.DiskFaults)
		fmt.Printf("  vm: evictions         %12d\n", sys.VM.Evictions)
		fmt.Printf("  ipc: fast RPCs        %12d\n", sys.IPC.FastRPCs)
		fmt.Printf("  ipc: queued sends     %12d\n", sys.IPC.QueuedSends)
		fmt.Printf("  exc: fast raises      %12d\n", sys.Exc.FastRaises)
		var handled uint64
		for _, s := range inst.Servers {
			handled += s.Handled
		}
		fmt.Printf("  server requests       %12d\n", handled)
		if inst.ExcServer != nil {
			fmt.Printf("  exceptions handled    %12d\n", inst.ExcServer.Handled)
		}
		fmt.Printf("  user time             %12.0f ms\n", float64(sys.K.UserTime)/1e6)
	}

	if rec != nil {
		rec.Census = sys.MemoryCensus()
	}
	emitObservations(rec)
}

// emitObservations writes the Chrome trace and/or prints the profile
// report for whichever recorders the run installed (nils are skipped, so
// callers can pass K.Obs fields directly).
func emitObservations(recs ...*obs.Recorder) {
	var live []*obs.Recorder
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := obs.WriteChrome(f, live...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: wrote %s (%d machine(s))\n", *traceFile, len(live))
	}
	if *profile {
		for i, r := range live {
			if len(live) > 1 {
				fmt.Printf("\nmachine %d profile:\n", i)
			} else {
				fmt.Printf("\nprofile:\n")
			}
			r.WriteReport(os.Stdout)
		}
	}
}

// printFaultReport prints the fault-injection and recovery counters when
// a fault plan or the invariant checker is active.
func printFaultReport(sys *kern.System) {
	fs := sys.FaultStats()
	if !*check && *faultsFlag == "" {
		return
	}
	fmt.Printf("\nfaults & recovery:\n")
	fmt.Printf("  injected: %s\n", fs)
	fmt.Printf("  dev: timeouts %d, retries %d, failures surfaced %d\n",
		sys.Dev.IoTimeouts, sys.Dev.IoRetries, sys.Dev.IoFailures)
	if sys.Net != nil {
		fmt.Printf("  net: retransmits %d, acks rx %d, dups dropped %d, lost %d, unacked %d\n",
			sys.Net.Retransmits, sys.Net.AcksRx, sys.Net.DupsDropped,
			sys.Net.Lost, sys.Net.UnackedLen())
	}
	fmt.Printf("  aborts: %d; invariant sweeps passed: %d\n",
		sys.Aborted, sys.K.Stats.InvariantPasses)
	if *check {
		sys.K.MustValidate()
		fmt.Printf("  final invariant check: clean\n")
	}
}

// runNetRPC drives the cross-machine echo workload and prints per-machine
// block tables plus the device subsystem counters.
func runNetRPC(flavor kern.Flavor, arch machine.Arch, faultSeed uint64, faultSpec fault.Spec) {
	spec := workload.DefaultNetRPC()
	spec.FaultSeed = faultSeed
	spec.FaultSpec = faultSpec
	spec.Pairs = *pairs
	spec.Clients = *clients
	spec.Parallel = *parallel
	spec.DebugChecks = *check
	spec.Observe = *traceFile != "" || *profile
	spec.Failover = *failover || len(faultSpec.Crashes) > 0
	res := workload.RunNetRPC(flavor, arch, spec)

	workload.WriteNetRPCReport(os.Stdout, flavor, arch, res, workload.NetRPCReportOptions{
		Faults: *faultsFlag != "" || len(faultSpec.Crashes) > 0, Check: *check,
		Failover: spec.Failover,
	})

	recs := make([]*obs.Recorder, len(res.Machines))
	for i, sys := range res.Machines {
		recs[i] = sys.K.Obs
	}
	emitObservations(recs...)
}

// runKV drives the replicated sharded KV workload and prints its
// service-level report plus the per-machine block tables.
func runKV(flavor kern.Flavor, arch machine.Arch, faultSeed uint64, faultSpec fault.Spec) {
	spec := workload.DefaultKV()
	spec.FaultSeed = faultSeed
	spec.FaultSpec = faultSpec
	if flagWasSet("clients") {
		spec.Clients = *clients
	}
	if flagWasSet("seed") {
		spec.Seed = *seed
	}
	spec.Parallel = *parallel
	spec.DebugChecks = *check
	spec.Break = *breakKV
	spec.SampleEvery = sampleEvery
	spec.Overload = ovPolicy
	spec.BreakOverload = *breakOv
	res := workload.RunKV(flavor, arch, spec)

	workload.WriteKVReport(os.Stdout, flavor, arch, res, workload.NetRPCReportOptions{
		Faults: *faultsFlag != "" || len(faultSpec.Crashes) > 0, Check: *check,
	})
	emitClusterObservations(res.Machines)
}

// runSvcGraph drives the multi-tier service-graph workload.
func runSvcGraph(flavor kern.Flavor, arch machine.Arch, faultSeed uint64, faultSpec fault.Spec) {
	spec := workload.DefaultSvcGraph()
	spec.FaultSeed = faultSeed
	spec.FaultSpec = faultSpec
	if flagWasSet("clients") {
		spec.Frontends = *clients
	}
	if flagWasSet("seed") {
		spec.Seed = *seed
	}
	spec.Parallel = *parallel
	spec.DebugChecks = *check
	spec.SampleEvery = sampleEvery
	res := workload.RunSvcGraph(flavor, arch, spec)

	workload.WriteSvcGraphReport(os.Stdout, flavor, arch, res, workload.NetRPCReportOptions{
		Faults: *faultsFlag != "" || len(faultSpec.Crashes) > 0, Check: *check,
	})
	emitClusterObservations(res.Machines)
}

// runStorm drives the mtload overload scenario: the svcgraph-shaped
// chain under open-loop session load, with the canonical metastable
// trigger unless -faults overrides it, and the -overload policy deciding
// whether the cluster survives it.
func runStorm(flavor kern.Flavor, arch machine.Arch, faultSeed uint64, faultSpec fault.Spec) {
	spec := workload.DefaultStorm()
	spec.Overload = ovPolicy
	if flagWasSet("seed") {
		spec.Seed = *seed
	}
	if *sessions > 0 {
		spec.Sessions = *sessions
	}
	if *faultsFlag != "" {
		spec.FaultSeed = faultSeed
		spec.FaultSpec = faultSpec
	}
	spec.Parallel = *parallel
	spec.DebugChecks = *check
	spec.BreakOverload = *breakOv
	spec.SampleEvery = sampleEvery
	res := workload.RunStorm(flavor, arch, spec)
	workload.WriteStormReport(os.Stdout, flavor, arch, res)
	emitClusterObservations(res.Machines)
}

// runMTLoad drives the open-loop multi-tenant load generator and prints
// its aggregate report.
func runMTLoad(flavor kern.Flavor, arch machine.Arch) {
	spec := workload.DefaultMTLoad()
	spec.Machines = *machines
	spec.Tenants = *tenants
	if *sessions > 0 {
		spec.SessionsPerTenant = *sessions
	}
	if flagWasSet("seed") {
		spec.Seed = *seed
	}
	spec.Parallel = *parallel
	spec.DebugChecks = *check
	res := workload.RunMTLoad(flavor, arch, spec)
	workload.WriteMTLoadReport(os.Stdout, res)
	emitClusterObservations(res.Machines)
}

// runFuzz runs the kv nemesis fuzzing campaign named by -fuzz seed:count
// and exits nonzero when any schedule's history violates.
func runFuzz(flavor kern.Flavor, arch machine.Arch) {
	seedPart, countPart, ok := strings.Cut(*fuzzFlag, ":")
	var seed uint64
	var count int
	if ok {
		_, err1 := fmt.Sscanf(seedPart, "%d", &seed)
		_, err2 := fmt.Sscanf(countPart, "%d", &count)
		ok = err1 == nil && err2 == nil && count > 0
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "-fuzz wants seed:count, got %q\n", *fuzzFlag)
		os.Exit(2)
	}
	res, err := workload.FuzzKV(workload.FuzzKVOptions{
		Flavor: flavor, Arch: arch,
		Seed: seed, Count: count,
		Parallel: *parallel, Break: *breakKV,
		Overload: ovPolicy, BreakOverload: *breakOv,
		OutDir: *fuzzOut, Out: os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("fuzz: %d schedules checked, %d violations\n", res.Ran, res.Violations)
	if res.Violations > 0 {
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag appeared on the command
// line — spec defaults only yield to explicit overrides.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// emitClusterObservations forwards every machine's recorder to
// emitObservations.
func emitClusterObservations(machines []*kern.System) {
	recs := make([]*obs.Recorder, len(machines))
	for i, sys := range machines {
		recs[i] = sys.K.Obs
	}
	emitObservations(recs...)
}
