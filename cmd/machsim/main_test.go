package main

import (
	"strings"
	"testing"
)

// TestValidateWorkloadFlags covers the flag-combination matrix machsim
// rejects with exit 2 before booting anything: mtload sizing flags on
// other workloads, the pair/fault flags on mtload, and impossible mtload
// cluster shapes.
func TestValidateWorkloadFlags(t *testing.T) {
	tests := []struct {
		name     string
		workload string
		machines int
		tenants  int
		sessions int
		set      []string
		wantErr  string // substring; empty means valid
	}{
		{name: "defaults compile", workload: "compile", machines: 8, tenants: 4},
		{name: "defaults mtload", workload: "mtload", machines: 8, tenants: 4},
		{name: "mtload explicit sizes", workload: "mtload", machines: 256, tenants: 8,
			sessions: 500, set: []string{"machines", "tenants", "sessions"}},
		{name: "mtload with parallel and check", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"parallel", "check", "trace"}},

		{name: "machines on netrpc", workload: "netrpc", machines: 8, tenants: 4,
			set: []string{"machines"}, wantErr: "-machines only applies"},
		{name: "tenants on kv", workload: "kv", machines: 8, tenants: 4,
			set: []string{"tenants"}, wantErr: "-tenants only applies"},
		{name: "sessions on compile", workload: "compile", machines: 8, tenants: 4,
			set: []string{"sessions"}, wantErr: "-sessions only applies"},

		{name: "pairs on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"pairs"}, wantErr: "-pairs does not apply"},
		{name: "clients on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"clients"}, wantErr: "-clients does not apply"},
		{name: "failover on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"failover"}, wantErr: "-failover does not apply"},
		{name: "faults on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"faults"}, wantErr: "-faults does not apply"},
		{name: "crash on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"crash"}, wantErr: "-crash does not apply"},
		{name: "fuzz on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"fuzz"}, wantErr: "-fuzz does not apply"},
		{name: "breakkv on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"breakkv"}, wantErr: "-breakkv does not apply"},
		{name: "sample on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"sample"}, wantErr: "-sample does not apply"},
		{name: "scale on mtload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"scale"}, wantErr: "-scale does not apply"},

		{name: "overload on kv", workload: "kv", machines: 8, tenants: 4,
			set: []string{"overload"}},
		{name: "overload off on kv with faults", workload: "kv", machines: 8, tenants: 4,
			set: []string{"overload", "faults", "check"}},
		{name: "overload on netrpc", workload: "netrpc", machines: 8, tenants: 4,
			set: []string{"overload"}, wantErr: "-overload only applies"},
		{name: "overload on compile", workload: "compile", machines: 8, tenants: 4,
			set: []string{"overload"}, wantErr: "-overload only applies"},
		{name: "breakoverload without overload", workload: "kv", machines: 8, tenants: 4,
			set: []string{"breakoverload"}, wantErr: "-breakoverload requires -overload"},
		{name: "breakoverload armed kv", workload: "kv", machines: 8, tenants: 4,
			set: []string{"overload", "breakoverload"}},
		{name: "armed fuzz campaign", workload: "kv", machines: 8, tenants: 4,
			set: []string{"overload", "fuzz", "breakoverload"}},

		{name: "storm mode plain", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"overload"}},
		{name: "storm mode with trigger and sessions", workload: "mtload", machines: 8, tenants: 4,
			sessions: 24, set: []string{"overload", "faults", "sessions", "check", "parallel", "sample"}},
		{name: "storm mode breakoverload", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"overload", "breakoverload"}},
		{name: "storm mode rejects machines", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"overload", "machines"}, wantErr: "-machines does not apply to the mtload storm scenario"},
		{name: "storm mode rejects tenants", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"overload", "tenants"}, wantErr: "-tenants does not apply to the mtload storm scenario"},
		{name: "storm mode rejects fuzz", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"overload", "fuzz"}, wantErr: "-fuzz does not apply to the mtload storm scenario"},
		{name: "storm mode rejects breakkv", workload: "mtload", machines: 8, tenants: 4,
			set: []string{"overload", "breakkv"}, wantErr: "-breakkv does not apply to the mtload storm scenario"},
		{name: "storm mode zero sessions set", workload: "mtload", machines: 8, tenants: 4,
			sessions: 0, set: []string{"overload", "sessions"}, wantErr: "-sessions must be >= 1"},

		{name: "odd machines", workload: "mtload", machines: 9, tenants: 4,
			set: []string{"machines"}, wantErr: "must be even"},
		{name: "too few machines", workload: "mtload", machines: 0, tenants: 4,
			set: []string{"machines"}, wantErr: "must be even and >= 2"},
		{name: "zero tenants", workload: "mtload", machines: 8, tenants: 0,
			set: []string{"tenants"}, wantErr: "-tenants must be >= 1"},
		{name: "zero sessions set", workload: "mtload", machines: 8, tenants: 4,
			sessions: 0, set: []string{"sessions"}, wantErr: "-sessions must be >= 1"},
		{name: "derived sessions ok", workload: "mtload", machines: 8, tenants: 4,
			sessions: 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			set := func(name string) bool {
				for _, f := range tc.set {
					if f == name {
						return true
					}
				}
				return false
			}
			err := validateWorkloadFlags(tc.workload, tc.machines, tc.tenants, tc.sessions, set)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
