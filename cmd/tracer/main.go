// tracer prints the control-transfer trace of one fast kernel path: the
// steady-state fast RPC of the paper's Figure 2, or the interrupt-driven
// device_read the device subsystem adds.
//
// The rendering comes from the obs event ring: the experiment enables a
// recorder around exactly one operation and obs.ToTrace converts the
// captured events back to the classic step-table format, so the output
// here stays stable while richer tooling (machsim -trace/-profile,
// traceview) reads the same events.
//
// Usage:
//
//	tracer [-path rpc|device]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

var path = flag.String("path", "rpc", "rpc or device")

func main() {
	flag.Parse()
	switch *path {
	case "rpc":
		fmt.Println("Figure 2: the calling half of the fast RPC path (one traced RPC)")
		fmt.Println()
		fmt.Println("  client calls mach_msg: enter kernel, copy in the request, find")
		fmt.Println("  the server blocked in mach_msg_continue, hand the stack over,")
		fmt.Println("  recognize the continuation, copy out, exit as the server — then")
		fmt.Println("  the same again in the reply direction.")
		fmt.Println()
		fmt.Print(experiments.Figure2Trace())
		fmt.Println()
		fmt.Println("no queue-message, dequeue-message or context-switch steps appear:")
		fmt.Println("the transfer runs entirely in the shared call context (§2.4).")
	case "device":
		fmt.Println("One interrupt-driven device_read (MK40, traced end to end)")
		fmt.Println()
		fmt.Println("  the reader blocks with device_read_continue and its stack is")
		fmt.Println("  discarded; the transfer interrupt runs on whatever stack the")
		fmt.Println("  processor is using (here: parked, so no thread's); the io_done")
		fmt.Println("  thread hands its own stack to the reader and recognition of the")
		fmt.Println("  device continuation finishes the read inline.")
		fmt.Println()
		fmt.Print(experiments.DeviceReadTrace())
		fmt.Println()
		fmt.Println("no stack is allocated anywhere on this path: the interrupt borrows")
		fmt.Println("the current stack and the completion arrives by stack handoff.")
	default:
		fmt.Fprintf(os.Stderr, "unknown path %q (want rpc or device)\n", *path)
		os.Exit(2)
	}
}
