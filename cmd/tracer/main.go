// tracer prints the control-transfer trace of one steady-state fast RPC —
// the running reproduction of the paper's Figure 2.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Figure 2: the calling half of the fast RPC path (one traced RPC)")
	fmt.Println()
	fmt.Println("  client calls mach_msg: enter kernel, copy in the request, find")
	fmt.Println("  the server blocked in mach_msg_continue, hand the stack over,")
	fmt.Println("  recognize the continuation, copy out, exit as the server — then")
	fmt.Println("  the same again in the reply direction.")
	fmt.Println()
	fmt.Print(experiments.Figure2Trace())
	fmt.Println()
	fmt.Println("no queue-message, dequeue-message or context-switch steps appear:")
	fmt.Println("the transfer runs entirely in the shared call context (§2.4).")
}
