// traceview summarizes a Chrome trace_event JSON file written by
// machsim -trace (or any tool using obs.WriteChrome): per-machine event
// and thread tables, the continuation profile, and the latency
// histograms, all recomputed from the events in the file.
//
// Usage:
//
//	traceview [-spans] trace.json
//
// -spans switches to the causal-trace view: per-machine span counts,
// a tally of ops shed by the overload controls (by reason — deadline,
// retry-budget, breaker, or a tier's typed refusal — present only when
// the run was armed with -overload and actually shed), the
// critical-path attribution table (per-segment p50/p99 over the
// sampled operations, plus the slowest ops decomposed segment by
// segment), and the memory census the exporter stamped into the trace
// metadata.
//
// The output is deterministic: the same trace file always produces the
// same summary. The full event stream is still in the JSON for Perfetto
// or chrome://tracing; traceview is the quick terminal look.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

var spansMode = flag.Bool("spans", false, "summarize causal spans: critical-path attribution and memory census")

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: traceview [-spans] trace.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	summarize := obs.Summarize
	if *spansMode {
		summarize = obs.SummarizeSpans
	}
	out, err := summarize(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
