// traceview summarizes a Chrome trace_event JSON file written by
// machsim -trace (or any tool using obs.WriteChrome): per-machine event
// and thread tables, the continuation profile, and the latency
// histograms, all recomputed from the events in the file.
//
// Usage:
//
//	traceview trace.json
//
// The output is deterministic: the same trace file always produces the
// same summary. The full event stream is still in the JSON for Perfetto
// or chrome://tracing; traceview is the quick terminal look.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceview trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := obs.Summarize(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Print(out)
}
