// tables regenerates every table and figure of the paper's evaluation,
// printing measured values next to the published ones. Its output is the
// source of EXPERIMENTS.md.
//
// Usage:
//
//	tables [-iters n] [-scale f] [-seed n] [-table 1|2|3|4|5|firefly|figure2|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/threadmodel"
)

var (
	iters = flag.Int("iters", 1000, "microbenchmark iterations (Table 3)")
	scale = flag.Float64("scale", 0.25, "workload duration scale (Tables 1-2)")
	seed  = flag.Uint64("seed", 12345, "workload random seed")
	table = flag.String("table", "all", "which table to print: 1,2,3,4,5,firefly,figure2,gonative,all")
)

func main() {
	flag.Parse()
	sel := *table
	want := func(name string) bool { return sel == "all" || sel == name }

	var workloads []experiments.Table1Result
	if want("1") || want("2") {
		workloads = experiments.Tables1And2(*scale, *seed)
	}
	if want("1") {
		printTable1(workloads)
	}
	if want("2") {
		printTable2(workloads)
	}
	if want("3") {
		printTable3()
	}
	if want("4") {
		printTable4()
	}
	if want("5") {
		printTable5()
	}
	if want("firefly") {
		printFirefly()
	}
	if want("figure2") {
		printFigure2()
	}
	if want("gonative") {
		printGoNative()
	}
	if sel != "all" && !anyKnown(sel) {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", sel)
		os.Exit(2)
	}
}

func anyKnown(s string) bool {
	switch s {
	case "1", "2", "3", "4", "5", "firefly", "figure2", "gonative", "all":
		return true
	}
	return false
}

func printTable1(results []experiments.Table1Result) {
	fmt.Printf("== Table 1: frequency of stack discarding (MK40, Toshiba 5200, scale %.2f) ==\n\n", *scale)
	for _, res := range results {
		paper, paperND := experiments.PaperTable1Percent(res.Workload)
		fmt.Printf("%s (%.0f simulated seconds, %d blocks)\n",
			res.Workload, res.SimTime.Seconds(), res.TotalBlocks)
		fmt.Printf("  %-18s %10s %8s %8s\n", "", "blocks", "%", "paper %")
		for i, r := range stats.DiscardReasons {
			n := res.Blocks[r]
			// Rows past the paper's six (device io, from our device
			// subsystem extension) have no published column.
			paperCol := "      —"
			if i < len(paper) {
				paperCol = fmt.Sprintf("%7.1f%%", paper[i])
			}
			fmt.Printf("  %-18s %10d %7.1f%% %s\n",
				r, n, stats.Percent(n, res.TotalBlocks), paperCol)
		}
		fmt.Printf("  %-18s %10d %7.1f%% %7.1f%%\n", "no stack discards",
			res.NoDiscards, stats.Percent(res.NoDiscards, res.TotalBlocks), paperND)
		fmt.Println()
	}
}

func printTable2(results []experiments.Table1Result) {
	fmt.Printf("== Table 2: continuation recognition and stack handoff ==\n\n")
	fmt.Printf("%-16s %10s %9s %9s %12s %9s\n",
		"", "blocks", "handoff%", "paper%", "recognition%", "paper%")
	for _, res := range results {
		ph, pr := experiments.PaperTable2Percent(res.Workload)
		fmt.Printf("%-16s %10d %8.1f%% %8.1f%% %11.1f%% %8.1f%%\n",
			res.Workload, res.TotalBlocks,
			stats.Percent(res.Handoffs, res.TotalBlocks), ph,
			stats.Percent(res.Recognitions, res.TotalBlocks), pr)
	}
	fmt.Println()
	for _, res := range results {
		fmt.Printf("%-16s kernel stacks: average %.3f in use, worst case %d (paper: 2.002 avg; worst 3-6)\n",
			res.Workload, res.StacksAvg, res.StacksMax)
	}
	fmt.Println()
}

func printTable3() {
	fmt.Printf("== Table 3: RPC and exception times in microseconds (%d iters) ==\n\n", *iters)
	fmt.Printf("%-13s %-9s %9s %9s %10s %10s\n",
		"machine", "kernel", "null RPC", "paper", "exception", "paper")
	for _, row := range experiments.Table3(*iters) {
		fmt.Printf("%-13s %-9s %8.1f  %8.0f  %9.1f  %9.0f\n",
			row.Arch, row.Flavor, row.RPCus, row.PaperRPC, row.ExcUs, row.PaperExc)
	}
	fmt.Println()
}

func printTable4() {
	fmt.Printf("== Table 4: component costs on the DS3100 (model inputs from the paper) ==\n\n")
	fmt.Printf("%-20s %26s %26s\n", "", "MK40 (instrs/loads/stores)", "MK32 (instrs/loads/stores)")
	for _, row := range experiments.Table4() {
		f := func(c machine.Cost) string {
			if c.IsZero() {
				return "-"
			}
			return fmt.Sprintf("%d / %d / %d", c.Instrs, c.Loads, c.Stores)
		}
		fmt.Printf("%-20s %26s %26s\n", row.Component, f(row.MK40), f(row.MK32))
	}
	fmt.Println()
}

func printTable5() {
	fmt.Printf("== Table 5: per-thread kernel memory on the DS3100 (bytes) ==\n\n")
	rows := experiments.Table5(50)
	fmt.Printf("%-10s %8s %8s %8s %8s %8s %14s\n",
		"", "MI", "MD", "stack", "VM", "total", "measured/thr")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %8d %8d %8d %8d %13.0fB\n",
			r.Flavor, r.Static.MIState, r.Static.MDState, r.Static.StackBytes,
			r.Static.VMState, r.Static.Total(), r.MeasuredPerThread)
	}
	mk40, mk32 := rows[0], rows[1]
	fmt.Printf("\nmeasured saving with %d blocked threads: %.0f%% (paper: 85%%)\n\n",
		mk40.Threads, 100*(1-mk40.MeasuredPerThread/mk32.MeasuredPerThread))
}

func printFirefly() {
	fmt.Printf("== Section 5: the Firefly comparison (886 blocked threads, 5 CPUs) ==\n\n")
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32} {
		res := experiments.Firefly886(flavor)
		fmt.Printf("%-10s %4d threads -> %4d kernel stacks\n",
			res.Flavor, res.Threads, res.StacksInUse)
	}
	fmt.Println("\npaper: Topaz used 212 stacks for 886 threads; \"in Mach ... 886")
	fmt.Println("similarly blocked kernel-level threads would require only 6 stacks,")
	fmt.Println("one for each of the Firefly's five processors and one for a special")
	fmt.Println("kernel thread.\"")
	fmt.Println()
}

func printFigure2() {
	fmt.Printf("== Figure 2: the fast RPC path (one traced steady-state RPC) ==\n\n")
	fmt.Print(experiments.Figure2Trace())
	fmt.Println()
}

func printGoNative() {
	fmt.Printf("== Go-native validation: goroutine-per-thread vs continuation record ==\n\n")
	c := threadmodel.Measure(2000, 8, 50000)
	fmt.Printf("blocked population: %d\n", c.Population)
	fmt.Printf("  bytes per blocked goroutine   : %8.0f\n", c.GoroutineBytes)
	fmt.Printf("  bytes per continuation record : %8.0f\n", c.RecordBytes)
	fmt.Printf("  space ratio                   : %8.1fx (paper Table 5: 6.8x)\n", c.SpaceRatio)
	fmt.Printf("  goroutine switch              : %7.1fns\n", c.GoroutineSwitchNs)
	fmt.Printf("  continuation call             : %7.1fns\n", c.RecordSwitchNs)
	fmt.Printf("  switch ratio                  : %8.1fx\n", c.SwitchRatio)
	fmt.Println()
}
