// Benchmarks regenerating the paper's evaluation: one benchmark (or
// family) per table and figure, plus the §5 Firefly projection, ablations
// of the individual continuation optimizations, and the Go-native
// validation of the space/time claims.
//
// Simulated results are attached as custom metrics (sim-us/op, %, bytes)
// so `go test -bench` reports both host performance of the simulator and
// the reproduced numbers. EXPERIMENTS.md records the paper-vs-measured
// comparison.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/dev"
	"repro/internal/experiments"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/overload"
	"repro/internal/stats"
	"repro/internal/threadmodel"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Tables 1 and 2: workload block statistics.
// ---------------------------------------------------------------------

func benchWorkload(b *testing.B, spec workload.Spec, scale float64) {
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunWorkload(spec, scale, 12345)
	}
	total := res.TotalBlocks
	b.ReportMetric(stats.Percent(res.Blocks[stats.BlockReceive], total), "%receive")
	b.ReportMetric(stats.Percent(res.Blocks[stats.BlockException], total), "%exception")
	b.ReportMetric(stats.Percent(res.Blocks[stats.BlockPreempt], total), "%preempt")
	b.ReportMetric(stats.Percent(res.Blocks[stats.BlockInternal], total), "%internal")
	b.ReportMetric(stats.Percent(total-res.NoDiscards, total), "%discard")
	b.ReportMetric(stats.Percent(res.Handoffs, total), "%handoff")
	b.ReportMetric(stats.Percent(res.Recognitions, total), "%recognition")
	b.ReportMetric(res.StacksAvg, "stacks-avg")
}

// BenchmarkTable1And2_CompileTest reproduces the Compile Test columns of
// Tables 1 and 2 (paper: 83.4% receive, 98.4% discard, 96.8% handoff,
// 60.2% recognition).
func BenchmarkTable1And2_CompileTest(b *testing.B) {
	benchWorkload(b, workload.CompileTest(), 0.5)
}

// BenchmarkTable1And2_KernelBuild reproduces the Kernel Build columns
// (paper: 86.3% receive, 99.9% discard, 99.7% handoff, 72.3%
// recognition).
func BenchmarkTable1And2_KernelBuild(b *testing.B) {
	benchWorkload(b, workload.KernelBuild(), 0.02)
}

// BenchmarkTable1And2_DOSEmulation reproduces the DOS Emulation columns
// (paper: 55.2% receive, 37.9% exception, 100% discard and handoff,
// 85.9% recognition).
func BenchmarkTable1And2_DOSEmulation(b *testing.B) {
	benchWorkload(b, workload.DOSEmulation(), 0.1)
}

// ---------------------------------------------------------------------
// Table 3: null RPC and exception latency, all six cells each.
// ---------------------------------------------------------------------

func benchNullRPC(b *testing.B, flavor kern.Flavor, arch machine.Arch) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = experiments.NullRPC(flavor, arch, 200)
	}
	paper, _ := experiments.PaperTable3(arch, flavor)
	b.ReportMetric(us, "sim-us/rpc")
	b.ReportMetric(paper, "paper-us/rpc")
}

func benchException(b *testing.B, flavor kern.Flavor, arch machine.Arch) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = experiments.ExceptionRTT(flavor, arch, 200)
	}
	_, paper := experiments.PaperTable3(arch, flavor)
	b.ReportMetric(us, "sim-us/exc")
	b.ReportMetric(paper, "paper-us/exc")
}

func BenchmarkTable3_NullRPC(b *testing.B) {
	for _, arch := range experiments.Arches {
		for _, flavor := range experiments.Flavors {
			b.Run(fmt.Sprintf("%v/%v", arch, flavor), func(b *testing.B) {
				benchNullRPC(b, flavor, arch)
			})
		}
	}
}

func BenchmarkTable3_Exception(b *testing.B) {
	for _, arch := range experiments.Arches {
		for _, flavor := range experiments.Flavors {
			b.Run(fmt.Sprintf("%v/%v", arch, flavor), func(b *testing.B) {
				benchException(b, flavor, arch)
			})
		}
	}
}

// ---------------------------------------------------------------------
// Table 4: component costs (handoff vs context switch).
// ---------------------------------------------------------------------

// BenchmarkTable4_Components reports the modeled time of the paper's
// measured components on the DS3100: stack handoff (83/22/18) versus
// context switch (250/52/27).
func BenchmarkTable4_Components(b *testing.B) {
	m := machine.NewCostModel(machine.ArchDS3100)
	tc := machine.TransferCostsFor(m, true)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = m.TimeMicros(tc.StackHandoff) + m.TimeMicros(tc.ContextSwitch)
	}
	_ = sink
	b.ReportMetric(m.TimeMicros(tc.StackHandoff), "handoff-us")
	b.ReportMetric(m.TimeMicros(tc.ContextSwitch), "ctxswitch-us")
	b.ReportMetric(m.TimeMicros(tc.SyscallEntry), "entry-us")
	b.ReportMetric(m.TimeMicros(tc.SyscallExit), "exit-us")
}

// ---------------------------------------------------------------------
// Table 5: per-thread kernel memory.
// ---------------------------------------------------------------------

// BenchmarkTable5_ThreadOverhead parks a population of receivers on both
// kernels and reports measured bytes per thread (paper: 690 vs 4664, an
// 85% saving).
func BenchmarkTable5_ThreadOverhead(b *testing.B) {
	var rows []experiments.Table5Result
	for i := 0; i < b.N; i++ {
		rows = experiments.Table5(50)
	}
	b.ReportMetric(rows[0].MeasuredPerThread, "mk40-B/thread")
	b.ReportMetric(rows[1].MeasuredPerThread, "mk32-B/thread")
	b.ReportMetric(100*(1-rows[0].MeasuredPerThread/rows[1].MeasuredPerThread), "%saving")
}

// ---------------------------------------------------------------------
// Figure 2: the fast RPC path.
// ---------------------------------------------------------------------

// BenchmarkFigure2_FastRPCPath drives steady-state fast RPCs and checks
// the signature of the path: handoff and recognition on every transfer,
// no queueing.
func BenchmarkFigure2_FastRPCPath(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = experiments.NullRPC(kern.MK40, machine.ArchDS3100, 200)
	}
	b.ReportMetric(us, "sim-us/rpc")
	tr := experiments.Figure2Trace()
	if !tr.Has(stats.TraceStackHandoff) || !tr.Has(stats.TraceRecognition) {
		b.Fatal("fast path signature missing from trace")
	}
	if tr.Has(stats.TraceQueueMessage) || tr.Has(stats.TraceContextSwitch) {
		b.Fatal("fast path queued or context switched")
	}
}

// ---------------------------------------------------------------------
// §5: the Firefly projection.
// ---------------------------------------------------------------------

// BenchmarkFirefly886Threads blocks 886 threads on a 5-CPU machine and
// reports the stack census (paper: 6 stacks in Mach with continuations;
// Topaz measured 212; one per thread without).
func BenchmarkFirefly886Threads(b *testing.B) {
	var mk40, mk32 experiments.FireflyResult
	for i := 0; i < b.N; i++ {
		mk40 = experiments.Firefly886(kern.MK40)
	}
	mk32 = experiments.Firefly886(kern.MK32)
	b.ReportMetric(float64(mk40.StacksInUse), "mk40-stacks")
	b.ReportMetric(float64(mk32.StacksInUse), "mk32-stacks")
}

// ---------------------------------------------------------------------
// Ablations: which optimization buys what (§2.3's three techniques).
// ---------------------------------------------------------------------

// ablationRPC measures null RPC with individual optimizations disabled.
func ablationRPC(b *testing.B, noHandoff, noRecognition bool) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = ablationNullRPC(noHandoff, noRecognition)
	}
	b.ReportMetric(us, "sim-us/rpc")
}

func ablationNullRPC(noHandoff, noRecognition bool) float64 {
	sys := kern.New(kern.Config{
		Flavor:         kern.MK40,
		Arch:           machine.ArchDS3100,
		DisableCallout: true,
		NoHandoff:      noHandoff,
		NoRecognition:  noRecognition,
	})
	return experiments.NullRPCOn(sys, 200)
}

// BenchmarkAblation_Full is the complete MK40 (baseline for the family).
func BenchmarkAblation_Full(b *testing.B) { ablationRPC(b, false, false) }

// BenchmarkAblation_NoRecognition keeps handoff but always calls the
// saved continuation instead of completing inline.
func BenchmarkAblation_NoRecognition(b *testing.B) { ablationRPC(b, false, true) }

// BenchmarkAblation_NoHandoff keeps stack discarding but frees and
// re-attaches stacks on every transfer instead of handing them over.
func BenchmarkAblation_NoHandoff(b *testing.B) { ablationRPC(b, true, false) }

// BenchmarkAblation_NoHandoffNoRecognition disables both: continuations
// only buy stack discarding.
func BenchmarkAblation_NoHandoffNoRecognition(b *testing.B) { ablationRPC(b, true, true) }

// ---------------------------------------------------------------------
// Go-native validation (real measurements, not simulation).
// ---------------------------------------------------------------------

// BenchmarkGoNative_GoroutineSwitch measures a real channel ping-pong
// hop: the goroutine-model control transfer.
func BenchmarkGoNative_GoroutineSwitch(b *testing.B) {
	ping := make(chan struct{})
	pong := make(chan struct{})
	go func() {
		for range ping {
			pong <- struct{}{}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ping <- struct{}{}
		<-pong
	}
	b.StopTimer()
	close(ping)
}

// BenchmarkGoNative_ContinuationCall measures the continuation-model
// transfer: store a resumption, call it.
func BenchmarkGoNative_ContinuationCall(b *testing.B) {
	a := &threadmodel.Record{ID: 0}
	c := &threadmodel.Record{ID: 1}
	var cur *threadmodel.Record
	a.Cont = func(*threadmodel.Record) { cur = c }
	c.Cont = func(*threadmodel.Record) { cur = a }
	cur = a
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := cur.Cont
		cur.State++
		f(cur)
	}
}

// BenchmarkGoNative_BlockedSpace reports measured bytes per blocked
// goroutine versus per continuation record.
func BenchmarkGoNative_BlockedSpace(b *testing.B) {
	var c threadmodel.Comparison
	for i := 0; i < b.N; i++ {
		c = threadmodel.Measure(1000, 8, 1000)
	}
	b.ReportMetric(c.GoroutineBytes, "goroutine-B")
	b.ReportMetric(c.RecordBytes, "record-B")
	b.ReportMetric(c.SpaceRatio, "space-ratio")
}

// ---------------------------------------------------------------------
// Simulator host performance (how fast the simulation itself runs).
// ---------------------------------------------------------------------

// BenchmarkSimulatorThroughput reports host time per simulated fast RPC.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	experiments.SetupNullRPC(sys, b.N)
	b.ResetTimer()
	sys.Run(0)
}

// BenchmarkDispatchSteadyState measures the allocation behavior of the
// hottest simulator path: one dispatcher step of a warmed-up MK40 fast-RPC
// ping-pong. The dispatch engine, the IPC fast path and the benchmark
// programs all recycle their state, so steady state must report
// 0 allocs/op — CI fails if an allocation creeps back in.
func BenchmarkDispatchSteadyState(b *testing.B) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	experiments.SetupNullRPC(sys, 1<<30)
	// Warm until the free lists and ring buffers have reached steady
	// state: every structure the ping-pong touches has been through at
	// least one full cycle.
	for i := 0; i < 2000; i++ {
		if !sys.K.Step() {
			b.Fatal("null-RPC pair quiesced during warmup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.K.Step()
	}
}

// BenchmarkClusterStep measures the allocation behavior of the cluster
// driver itself: two machines each running a warmed-up local fast-RPC
// ping-pong, stepped round-robin. The driver's sorted view is hoisted
// and the dispatch path is allocation-free, so this must report
// 0 allocs/op.
func BenchmarkClusterStep(b *testing.B) {
	cfg := kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true}
	a, c := kern.New(cfg), kern.New(cfg)
	experiments.SetupNullRPC(a, 1<<30)
	experiments.SetupNullRPC(c, 1<<30)
	cluster := kern.NewCluster(a, c)
	for i := 0; i < 2000; i++ {
		if !cluster.Step(false) {
			b.Fatal("cluster quiesced during warmup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Step(false)
	}
}

// BenchmarkClusterNetRPC compares sequential and parallel execution of
// the same 4-machine cross-machine workload (2 pairs, 32 clients per
// pair). The outputs are byte-identical (TestParallelEquivalence*); this
// benchmark shows what the horizon rounds buy in wall-clock. The par/seq
// speedup is the ns/op ratio of the two sub-benchmarks.
func BenchmarkClusterNetRPC(b *testing.B) {
	spec := workload.DefaultNetRPC()
	spec.Pairs = 2
	spec.Clients = 32
	spec.DiskReads = 0
	run := func(b *testing.B, parallel bool) {
		spec.Parallel = parallel
		var res *workload.NetRPCResult
		for i := 0; i < b.N; i++ {
			res = workload.RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
		}
		b.ReportMetric(float64(res.Completed), "rpcs")
	}
	b.Run("seq", func(b *testing.B) { run(b, false) })
	b.Run("par", func(b *testing.B) { run(b, true) })
}

// BenchmarkClusterScale measures the driver's per-round cost on a
// mostly-idle cluster: machine 0 runs a self-rescheduling 20us tick
// while every other machine sits quiescent, so each horizon round has
// exactly one active machine no matter the cluster size. With the
// indexed activity heap, cached wire lookahead and dirty-NIC flush the
// round cost is O(active + log N); CI gates m256 <= 3x m8 (benchjson
// -max-ratio), which a full per-round sweep over machines and NICs would
// blow through immediately.
func BenchmarkClusterScale(b *testing.B) {
	run := func(b *testing.B, n int) {
		cfg := kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true}
		systems := make([]*kern.System, n)
		for i := range systems {
			systems[i] = kern.New(cfg)
		}
		for i := 0; i+1 < n; i += 2 {
			dev.Connect(systems[i].Net.NIC, systems[i+1].Net.NIC, machine.Duration(100_000))
		}
		cluster := kern.NewCluster(systems...)
		cluster.Drive(false) // drain boot work; every machine goes idle
		s0 := systems[0]
		var tick func()
		tick = func() { s0.K.Clock.After(machine.Duration(20_000), "tick", tick) }
		tick()
		cluster.SetDeferredForTest(true)
		defer cluster.SetDeferredForTest(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cluster.RoundForTest(); !ok {
				b.Fatal("busy machine went quiescent")
			}
		}
	}
	b.Run("m8", func(b *testing.B) { run(b, 8) })
	b.Run("m64", func(b *testing.B) { run(b, 64) })
	b.Run("m256", func(b *testing.B) { run(b, 256) })
}

// BenchmarkDispatchTracedVsUntraced measures the observability tax on
// the hottest simulator path: host time per simulated fast RPC with the
// obs recorder absent (the default — each would-be event is a single nil
// check) and installed (every event stamped, ring-buffered and folded
// into the online histograms). EXPERIMENTS.md records the ratio; the
// enabled path must stay within ~2x of the disabled one.
func BenchmarkDispatchTracedVsUntraced(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
		if traced {
			sys.EnableObservation(0)
		}
		experiments.SetupNullRPC(sys, b.N)
		b.ResetTimer()
		sys.Run(0)
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}

// BenchmarkKVSpanOverhead measures the causal-tracing tax on the
// cross-machine KV workload. "off" head-samples 1-in-2^30: virtually
// every trace is dropped at the mint site, so zero contexts ride the
// netmsg headers and no spans are recorded — the cost is the header
// fields and the zero checks. "on" samples every operation: contexts
// propagate, every tier records spans, and the report analyzer has a
// full span store. CI bounds the on/off ns/op ratio (benchjson
// -max-ratio); the off path must stay indistinguishable from free.
func BenchmarkKVSpanOverhead(b *testing.B) {
	run := func(b *testing.B, every int) {
		spec := workload.DefaultKV()
		spec.SampleEvery = every
		var res *workload.KVResult
		for i := 0; i < b.N; i++ {
			res = workload.RunKV(kern.MK40, machine.ArchDS3100, spec)
		}
		b.ReportMetric(float64(res.Completed), "ops")
	}
	b.Run("off", func(b *testing.B) { run(b, 1<<30) })
	b.Run("on", func(b *testing.B) { run(b, 1) })
}

// BenchmarkKVOverloadOverhead measures the overload-control tax on a
// healthy KV run — no faults, so nothing is actually shed and the cost
// is pure bookkeeping: the deadline stamp in every message header, the
// dequeue-time expiry check, the CoDel admission bookkeeping, and the
// breaker/budget accounting around each reply. CI bounds the on/off
// ns/op ratio (benchjson -max-ratio 1.2): controls you cannot afford to
// leave on would never be left on in the storm's recovery arm.
func BenchmarkKVOverloadOverhead(b *testing.B) {
	run := func(b *testing.B, armed bool) {
		spec := workload.DefaultKV()
		if armed {
			spec.Overload = overload.DefaultPolicy()
		}
		var res *workload.KVResult
		for i := 0; i < b.N; i++ {
			res = workload.RunKV(kern.MK40, machine.ArchDS3100, spec)
		}
		b.ReportMetric(float64(res.Completed), "ops")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------
// Message-size sweep: inline copy vs out-of-line COW transfer.
// ---------------------------------------------------------------------

// BenchmarkMessageSizeSweep reports RPC latency against body size for
// both transfer modes; the crossover shows where Mach's out-of-line
// large-message path starts winning.
func BenchmarkMessageSizeSweep(b *testing.B) {
	var rows []experiments.SweepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.MessageSizeSweep([]int{64, 1024, 8192, 65536}, 50)
	}
	for _, r := range rows {
		b.ReportMetric(r.InlineUs, fmt.Sprintf("inline-%dB-us", r.SizeBytes))
		b.ReportMetric(r.OOLUs, fmt.Sprintf("ool-%dB-us", r.SizeBytes))
	}
}
