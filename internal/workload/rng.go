package workload

// RNG is a SplitMix64 pseudo-random generator: tiny, fast, and fully
// deterministic, so every workload replays identically for a given seed.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a uniform value in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("workload: Uint64n with zero bound")
	}
	return r.Next() % n
}

// Burst returns a duration-like value centred on mean: uniform in
// [mean/2, 3*mean/2), a cheap stand-in for the CPU-burst distribution.
func (r *RNG) Burst(mean uint64) uint64 {
	if mean == 0 {
		return 0
	}
	return mean/2 + r.Uint64n(mean)
}

// Hit reports true with probability per10k/10000.
func (r *RNG) Hit(per10k int) bool {
	if per10k <= 0 {
		return false
	}
	return r.Intn(10000) < per10k
}
