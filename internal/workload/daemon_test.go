package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
)

func TestDaemonDrainsAllKicks(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	d := NewDaemon(sys, "net", machine.Cost{Instrs: 100})
	for i := 0; i < 10; i++ {
		d.Kick()
	}
	sys.Run(0)
	if d.Wakeups != 10 || d.Pending() != 0 {
		t.Fatalf("wakeups=%d pending=%d, want 10/0", d.Wakeups, d.Pending())
	}
	if d.Thread.State != core.StateWaiting {
		t.Fatalf("daemon state = %v", d.Thread.State)
	}
}

func TestDaemonDrainsKicksUnderLoad(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	d := NewDaemon(sys, "net", machine.Cost{Instrs: 100})
	task := sys.NewTask("kicker")
	var kicks int
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if kicks >= 50 {
			return core.Exit()
		}
		kicks++
		d.Kick()
		return core.RunFor(100_000)
	})
	sys.Start(task.NewThread("main", prog, 10))
	sys.Run(0)
	if d.Wakeups != 50 || d.Pending() != 0 {
		t.Fatalf("wakeups=%d pending=%d, want 50/0", d.Wakeups, d.Pending())
	}
}
