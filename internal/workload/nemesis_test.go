package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// nemesisSpec builds a KV spec running under the given -faults rules.
func nemesisSpec(t *testing.T, rules string) KVSpec {
	t.Helper()
	spec := DefaultKV()
	fs, err := fault.ParseSpec(rules)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", rules, err)
	}
	spec.FaultSpec = fs
	return spec
}

// TestKVPartitionPrimaryIsolated is the tentpole acceptance scenario:
// isolate the initial primary's machine past the membership deadline,
// then heal. The backup must win at least one election, every client op
// must complete, the merged history must linearize, and no (group,
// epoch) pair may be acked by both ranks.
func TestKVPartitionPrimaryIsolated(t *testing.T) {
	spec := nemesisSpec(t, "partition=1|0.2.3@60ms+120ms")
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	if st := res.ReplicaTotals(); st.Elections == 0 {
		t.Fatal("no election while the primary was partitioned away")
	}
	if !res.Check.Linearizable {
		t.Fatalf("history not linearizable: %s", res.Check)
	}
	if len(res.SplitBrain) != 0 {
		t.Fatalf("split brain: %v", res.SplitBrain)
	}
	// The topology plan was installed and actually severed packets.
	if res.Topo == nil {
		t.Fatal("no topology plan on the result")
	}
	var severed uint64
	for _, sys := range res.Machines {
		for _, n := range sys.Links {
			severed += n.NIC.Severed
		}
	}
	if severed == 0 {
		t.Fatal("partition window enforced nothing at the link plane")
	}
}

// TestKVCleanSplitHeals runs the clean two-against-two split — each
// client machine grouped with one replica — and the heal. Both sides
// keep serving their own clients during the split (each side elects the
// other's groups), yet the merged history stays linearizable and the
// epoch fencing prevents any same-epoch double-ack.
func TestKVCleanSplitHeals(t *testing.T) {
	spec := nemesisSpec(t, "partition=0.1|2.3@20ms+30ms")
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	st := res.ReplicaTotals()
	if st.Elections < 2 {
		t.Fatalf("elections = %d, want both sides to elect during the split", st.Elections)
	}
	if st.SoloAcks == 0 {
		t.Fatal("no solo acks — the split never degraded replication")
	}
	if st.Merged == 0 {
		t.Fatal("no rejoin merge — solo-acked writes were never reconciled on heal")
	}
	if !res.Check.Linearizable {
		t.Fatalf("history not linearizable: %s", res.Check)
	}
	if len(res.SplitBrain) != 0 {
		t.Fatalf("split brain: %v", res.SplitBrain)
	}
}

// TestKVGrayReplica runs the initial primary at one fifth speed for a
// window. A gray machine is alive — it answers heartbeats, so no
// election fires spuriously — just slow; the run must still complete
// and linearize, and the slowdown must be visible as a longer run than
// the healthy baseline.
func TestKVGrayReplica(t *testing.T) {
	healthy := RunKV(kern.MK40, machine.ArchDS3100, DefaultKV())
	spec := nemesisSpec(t, "gray=1:5@20ms+60ms")
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	if !res.Check.Linearizable {
		t.Fatalf("history not linearizable: %s", res.Check)
	}
	if res.Elapsed <= healthy.Elapsed {
		t.Fatalf("gray run elapsed %v <= healthy %v — the slowdown charged nothing",
			res.Elapsed, healthy.Elapsed)
	}
}

// TestKVAsymmetricLink severs only the backup-to-primary direction of
// the replica link: the primary's heartbeats still reach the backup,
// the backup's never arrive. Exactly one side (the primary's machine)
// declares its peer dead; the backup still hears a live primary and
// must not also elect — no double-elect, and the history linearizes.
func TestKVAsymmetricLink(t *testing.T) {
	spec := nemesisSpec(t, "link=2>1:drop@40ms+60ms")
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	deaths := func(i int) uint64 { return res.Machines[i].NetTotals().DeathsDetected }
	if deaths(1) == 0 {
		t.Fatal("the silenced side never declared its peer dead")
	}
	if deaths(2) != 0 {
		t.Fatalf("machine 2 declared %d deaths despite hearing every heartbeat", deaths(2))
	}
	if deaths(0) != 0 || deaths(3) != 0 {
		t.Fatalf("client machines declared deaths: %d, %d", deaths(0), deaths(3))
	}
	// rank0's machine saw silence and elected over rank1's groups; rank1
	// heard rank0 alive throughout and must not have elected.
	if e := res.Replicas[0].Stats.Elections; e == 0 {
		t.Fatal("rank 0 never elected over its silent peer")
	}
	if e := res.Replicas[1].Stats.Elections; e != 0 {
		t.Fatalf("rank 1 elected %d times while hearing a live peer — double-elect", e)
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	if !res.Check.Linearizable {
		t.Fatalf("history not linearizable: %s", res.Check)
	}
	if len(res.SplitBrain) != 0 {
		t.Fatalf("split brain: %v", res.SplitBrain)
	}
}

// TestKVBrokenBuildFlagged runs the deliberately broken replicas (no
// rejoin state merge, no deposed stall) under the clean split: the
// linearizability checker must flag the lost solo-acked writes that the
// identical spec survives on the real build (TestKVCleanSplitHeals).
func TestKVBrokenBuildFlagged(t *testing.T) {
	spec := nemesisSpec(t, "partition=0.1|2.3@20ms+30ms")
	spec.Break = true
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Check.Linearizable {
		t.Fatal("checker passed the deliberately broken build")
	}
	if len(res.Check.Violations) == 0 {
		t.Fatal("no violation recorded for the broken build")
	}
	if !strings.Contains(res.Check.String(), "NOT linearizable") {
		t.Fatalf("verdict = %q", res.Check)
	}
}

// TestKVNemesisParallelEquivalence: the full report of a partition run —
// headline, checker verdict, nemesis timeline, per-machine sections —
// must be byte-identical between the sequential and parallel drivers.
func TestKVNemesisParallelEquivalence(t *testing.T) {
	render := func(parallel bool) string {
		spec := nemesisSpec(t, "partition=1|0.2.3@60ms+120ms,link=0>2:delay:3ms@30ms+40ms")
		spec.Parallel = parallel
		res := RunKV(kern.MK40, machine.ArchDS3100, spec)
		var buf bytes.Buffer
		WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{Faults: true})
		return buf.String()
	}
	seq, par := render(false), render(true)
	if seq != par {
		t.Fatalf("sequential and parallel nemesis reports differ:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "nemesis schedule:") || !strings.Contains(seq, "checker: ") {
		t.Fatalf("report missing nemesis/checker sections:\n%s", seq)
	}
}

// TestFuzzKV runs a tiny campaign on the real build (must be clean) and
// on the broken build (must find and shrink a violation).
func TestFuzzKV(t *testing.T) {
	opt := FuzzKVOptions{Flavor: kern.MK40, Arch: machine.ArchDS3100, Seed: 7, Count: 3}
	res, err := FuzzKV(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ran != 3 || res.Violations != 0 {
		t.Fatalf("clean campaign: ran %d violations %d", res.Ran, res.Violations)
	}

	opt.Break = true
	opt.Count = 4 // campaign 7's fourth schedule catches the break
	var out bytes.Buffer
	opt.Out = &out
	res, err = FuzzKV(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("fuzzer missed the deliberately broken build")
	}
	if res.MinSpec == "" {
		t.Fatal("no shrunk reproducing spec")
	}
	// The shrunk spec must itself reproduce the violation...
	v, err := fuzzRun(opt, res.MinSeed, strings.Split(res.MinSpec, ","))
	if err != nil {
		t.Fatal(err)
	}
	if !v.bad {
		t.Fatalf("minimal spec %q does not reproduce", res.MinSpec)
	}
	// ...and be locally minimal: it shrank below the generated schedule.
	if n := len(strings.Split(res.MinSpec, ",")); n >= 4 {
		t.Fatalf("shrinker kept %d rules", n)
	}
	if !strings.Contains(out.String(), "minimal repro") {
		t.Fatalf("fuzz output missing the repro line:\n%s", out.String())
	}
}
