// Multi-tenant model for the open-loop load generator: a tenant is a
// class of traffic (mean think time, response-time SLA, payload size)
// running some number of client sessions, and the cluster-level load
// balancer spreads those sessions across the client machines before the
// run starts. Placement is part of the workload's deterministic setup —
// same spec, same placement, same bytes.
package workload

import (
	"fmt"

	"repro/internal/machine"
)

// TenantSpec is one tenant's traffic class.
type TenantSpec struct {
	// Name labels the tenant in reports and histogram keys.
	Name string
	// Think is the mean open-loop gap between a session's arrivals; each
	// session jitters it per-arrival with its own RNG stream.
	Think machine.Duration
	// SLA is the response-time target an op must meet to count as
	// attained. Latency is charged from the *intended* arrival time, so
	// a backlogged session cannot hide queueing delay (no coordinated
	// omission).
	SLA machine.Duration
	// MsgBytes is the RPC payload size.
	MsgBytes int
	// Sessions is how many client sessions the tenant runs cluster-wide.
	Sessions int
}

// tenantArchetypes are the traffic classes MakeTenants cycles through:
// chatty latency-sensitive traffic, moderate web traffic, and bulk batch
// traffic with a loose SLA.
var tenantArchetypes = []TenantSpec{
	{Name: "interactive", Think: 1_000_000, SLA: 4_000_000, MsgBytes: 128},
	{Name: "web", Think: 2_000_000, SLA: 8_000_000, MsgBytes: 256},
	{Name: "batch", Think: 5_000_000, SLA: 20_000_000, MsgBytes: 1024},
}

// MakeTenants builds k tenants by cycling the archetypes, each running
// sessionsEach sessions. Names stay unique ("interactive", then
// "interactive-3", ...) so histogram keys never collide.
func MakeTenants(k, sessionsEach int) []TenantSpec {
	tenants := make([]TenantSpec, k)
	for i := 0; i < k; i++ {
		t := tenantArchetypes[i%len(tenantArchetypes)]
		if i >= len(tenantArchetypes) {
			t.Name = fmt.Sprintf("%s-%d", t.Name, i)
		}
		t.Sessions = sessionsEach
		tenants[i] = t
	}
	return tenants
}

// sessionRate is a session's arrival-rate weight for the balancer, in
// integer arrivals-per-kilosecond so placement needs no floating point:
// a chattier tenant (smaller think time) weighs more.
func sessionRate(t *TenantSpec) uint64 {
	think := uint64(t.Think)
	if think == 0 {
		think = 1
	}
	return 1_000_000_000_000 / think
}

// placeSessions is the cluster-level load balancer: it walks the
// tenants' sessions in declaration order and assigns each to the
// currently least-loaded machine pair (ties to the lowest pair index),
// where load is the pair's summed session arrival rate. The result is
// counts[pair][tenant] — how many of each tenant's sessions that pair's
// client machine hosts.
func placeSessions(tenants []TenantSpec, pairs int) [][]int {
	counts := make([][]int, pairs)
	for p := range counts {
		counts[p] = make([]int, len(tenants))
	}
	load := make([]uint64, pairs)
	for ti := range tenants {
		rate := sessionRate(&tenants[ti])
		for j := 0; j < tenants[ti].Sessions; j++ {
			best := 0
			for p := 1; p < pairs; p++ {
				if load[p] < load[best] {
					best = p
				}
			}
			counts[best][ti]++
			load[best] += rate
		}
	}
	return counts
}
