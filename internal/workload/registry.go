package workload

import (
	"bytes"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// RegisteredWorkload is one named cluster workload with a canonical
// run-to-report function: it boots the workload's default spec (plus the
// canonical crash plan where the workload is about recovery), drives it,
// and renders the machsim-format report. The report is the workload's
// determinism contract — same name, same bytes, regardless of the
// parallel flag, GOMAXPROCS, or how many times it has run before.
type RegisteredWorkload struct {
	Name   string
	Report func(parallel bool) string
}

// Registry lists every cluster workload under its machsim name. Tests
// iterate it so a newly added workload is covered by the determinism
// regression without touching the test.
func Registry() []RegisteredWorkload {
	crash1 := []fault.Crash{{
		Machine:     1,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(40 * 1e6),
	}}
	return []RegisteredWorkload{
		{Name: "netrpc", Report: func(parallel bool) string {
			spec := DefaultNetRPC()
			spec.Parallel = parallel
			res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
			var buf bytes.Buffer
			WriteNetRPCReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{})
			return buf.String()
		}},
		{Name: "lossy-netrpc", Report: func(parallel bool) string {
			spec := LossyNetRPC()
			spec.Parallel = parallel
			res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
			var buf bytes.Buffer
			WriteNetRPCReport(&buf, kern.MK40, machine.ArchDS3100, res,
				NetRPCReportOptions{Faults: true, Check: true})
			return buf.String()
		}},
		{Name: "failover", Report: func(parallel bool) string {
			spec := DefaultNetRPC()
			spec.Failover = true
			spec.FaultSpec.Crashes = crash1
			spec.Parallel = parallel
			res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
			var buf bytes.Buffer
			WriteNetRPCReport(&buf, kern.MK40, machine.ArchDS3100, res,
				NetRPCReportOptions{Failover: true})
			return buf.String()
		}},
		{Name: "kv", Report: func(parallel bool) string {
			spec := DefaultKV()
			spec.FaultSpec.Crashes = crash1
			spec.Parallel = parallel
			res := RunKV(kern.MK40, machine.ArchDS3100, spec)
			var buf bytes.Buffer
			WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{})
			return buf.String()
		}},
		{Name: "kv-nemesis", Report: func(parallel bool) string {
			// The canonical nemesis run: isolate the initial primary past
			// the membership deadline, then heal. The spec string is the
			// same grammar machsim's -faults flag takes.
			spec := DefaultKV()
			fs, err := fault.ParseSpec("partition=1|0.2.3@60ms+120ms")
			if err != nil {
				panic(err)
			}
			spec.FaultSpec = fs
			spec.Parallel = parallel
			res := RunKV(kern.MK40, machine.ArchDS3100, spec)
			var buf bytes.Buffer
			WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{})
			return buf.String()
		}},
		{Name: "mtload", Report: func(parallel bool) string {
			// Registry-sized run: small cluster, few sessions, with the
			// driver's naive-sweep cross-check armed so the determinism
			// regression also exercises the incremental-horizon oracle.
			spec := DefaultMTLoad()
			spec.SessionsPerTenant = 20
			spec.Parallel = parallel
			spec.DebugChecks = true
			return MTLoadReport(kern.MK40, machine.ArchDS3100, spec)
		}},
		{Name: "storm", Report: func(parallel bool) string {
			// Controls-on arm: fast (the off arm's collapsed drain is
			// covered by the storm tests, not the registry sweep).
			spec := DefaultStorm()
			spec.Parallel = parallel
			return StormReport(kern.MK40, machine.ArchDS3100, spec)
		}},
		{Name: "svcgraph", Report: func(parallel bool) string {
			spec := DefaultSvcGraph()
			spec.FaultSpec.Crashes = []fault.Crash{{
				Machine:     2,
				At:          machine.Duration(40 * 1e6),
				RebootAfter: machine.Duration(40 * 1e6),
			}}
			spec.Parallel = parallel
			res := RunSvcGraph(kern.MK40, machine.ArchDS3100, spec)
			var buf bytes.Buffer
			WriteSvcGraphReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{})
			return buf.String()
		}},
	}
}
