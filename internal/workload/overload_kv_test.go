package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/overload"
)

// kvOverloadSpec is the shared armed-KV scenario: a long gray window on
// the primary slow enough that queued writes are already past their
// deadline when dequeued, so the replica-tier Expired path really runs.
func kvOverloadSpec() KVSpec {
	spec := DefaultKV()
	spec.Ops = 120
	spec.Keyspan = 8
	spec.PutPer10k = 5000
	spec.Overload = overload.DefaultPolicy()
	fs, err := fault.ParseSpec("gray=1:12@20ms+60ms")
	if err != nil {
		panic(err)
	}
	spec.FaultSpec = fs
	return spec
}

// TestKVOverloadCleanUnderGray pins the soundness half of the shedding
// contract: an armed KV run under a deep gray failure sheds real work at
// both the client and replica tiers — and everything it shed was a
// definite no-op, so the history stays linearizable and Track-mode
// bookkeeping sees no mismatches.
func TestKVOverloadCleanUnderGray(t *testing.T) {
	res := RunKV(kern.MK40, machine.ArchDS3100, kvOverloadSpec())
	co, ro := res.ClientOvTotals(), res.ReplicaOvTotals()
	if co.Expired == 0 {
		t.Fatalf("client tier never shed on deadline: %+v", co)
	}
	if co.BreakerFastFail == 0 || co.BreakerOpens == 0 {
		t.Fatalf("breaker never engaged: %+v", co)
	}
	if ro.Expired == 0 {
		t.Fatalf("replica tier never shed expired work: %+v", ro)
	}
	if !res.Check.Linearizable {
		t.Fatalf("armed run not linearizable: %s", res.Check)
	}
	if res.Check.Rejected == 0 {
		t.Fatal("checker saw no rejected ops despite tier shedding")
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d mismatches", res.Mismatches)
	}
}

// TestKVOverloadBreakFlagged is the negative control: a replica that
// applies an already-expired write before claiming it was shed plants a
// phantom value, and the linearizability checker must flag the later
// read that observes it. If this test ever passes with a clean verdict,
// the rejected-ops-are-no-ops exclusion has gone unsound.
func TestKVOverloadBreakFlagged(t *testing.T) {
	spec := kvOverloadSpec()
	spec.BreakOverload = true
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)
	if res.Check.Linearizable {
		t.Fatalf("phantom expired write not flagged: %s", res.Check)
	}
	if res.Mismatches == 0 {
		t.Fatal("Track-mode bookkeeping missed the phantom write")
	}
}

// TestKVOverloadReportSection pins the report plumbing: armed runs get
// the overload policy and per-tier counters; legacy runs stay
// byte-identical (no overload section at all).
func TestKVOverloadReportSection(t *testing.T) {
	res := RunKV(kern.MK40, machine.ArchDS3100, kvOverloadSpec())
	var buf bytes.Buffer
	WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{})
	out := buf.String()
	for _, want := range []string{"overload: on:deadline=", "client:", "replicas:", "expired"} {
		if !strings.Contains(out, want) {
			t.Errorf("armed report missing %q:\n%s", want, out)
		}
	}

	legacy := RunKV(kern.MK40, machine.ArchDS3100, DefaultKV())
	buf.Reset()
	WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, legacy, NetRPCReportOptions{})
	if strings.Contains(buf.String(), "overload:") {
		t.Errorf("legacy report grew an overload section:\n%s", buf.String())
	}
}

// TestFuzzKVOverload extends the fuzzing campaign to the armed build: a
// clean armed campaign must stay violation-free (everything the controls
// shed was a definite no-op under every random nemesis schedule), and
// the -breakoverload campaign must be caught, with the printed repro
// command carrying the arming flags.
func TestFuzzKVOverload(t *testing.T) {
	opt := FuzzKVOptions{Flavor: kern.MK40, Arch: machine.ArchDS3100, Seed: 7, Count: 3,
		Overload: overload.DefaultPolicy()}
	res, err := FuzzKV(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ran != 3 || res.Violations != 0 {
		t.Fatalf("armed clean campaign: ran %d violations %d", res.Ran, res.Violations)
	}

	opt.BreakOverload = true
	opt.Count = 4 // campaign 7's fourth schedule dequeues expired writes
	var out bytes.Buffer
	opt.Out = &out
	res, err = FuzzKV(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("fuzzer missed the broken overload shedding")
	}
	if !strings.Contains(out.String(), "-overload on:") ||
		!strings.Contains(out.String(), "-breakoverload") {
		t.Fatalf("repro command missing arming flags:\n%s", out.String())
	}
}

// TestKVOverloadDeterminism: the armed run is part of the same
// byte-identical contract as everything else.
func TestKVOverloadDeterminism(t *testing.T) {
	report := func(parallel bool) string {
		spec := kvOverloadSpec()
		spec.Parallel = parallel
		res := RunKV(kern.MK40, machine.ArchDS3100, spec)
		var buf bytes.Buffer
		WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, res, NetRPCReportOptions{Faults: true})
		return buf.String()
	}
	seq, par := report(false), report(true)
	if seq != par {
		t.Errorf("sequential and parallel armed reports differ:\nseq:\n%s\npar:\n%s", seq, par)
	}
}
