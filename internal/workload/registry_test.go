package workload

import "testing"

// TestRegistryDeterminism is the cross-workload determinism regression:
// for every registered workload, two same-seed sequential runs and one
// parallel run must render byte-identical reports. A workload whose
// behavior leaks wall-clock time, map iteration order, or goroutine
// scheduling shows up here as a diff.
func TestRegistryDeterminism(t *testing.T) {
	for _, wl := range Registry() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			first := wl.Report(false)
			if first == "" {
				t.Fatal("empty report")
			}
			if again := wl.Report(false); again != first {
				t.Fatalf("same-seed sequential rerun diverged:\nfirst:\n%s\nagain:\n%s", first, again)
			}
			if par := wl.Report(true); par != first {
				t.Fatalf("parallel run diverged from sequential:\nsequential:\n%s\nparallel:\n%s", first, par)
			}
		})
	}
}
