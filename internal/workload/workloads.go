// Package workload builds the deterministic workloads of the paper's
// evaluation (§3.2): a short C compilation, a Mach kernel build over an
// AFS-like distributed file system, and an MS-DOS game under emulation.
// Each workload is a population of client threads issuing a calibrated
// mix of RPCs, page faults, exceptions and CPU bursts against user-level
// server tasks, plus the internal kernel daemons the paper's Table 1
// tallies.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

// Spec describes a complete workload.
type Spec struct {
	Name string

	// Duration is the simulated run length (the paper's wall-clock
	// column).
	Duration machine.Duration

	// Quantum overrides the scheduler slice when nonzero.
	Quantum machine.Duration

	// Frames sizes physical memory.
	Frames int

	// Clients is the user thread population.
	Clients []ClientSpec

	// ServerThreads is the size of the service task's thread pool and
	// ServerWorkCycles the user CPU burned per request.
	ServerThreads    int
	ServerWorkCycles uint64

	// KickEvery makes the servers kick the internal device daemon once
	// per that many requests (0 disables).
	KickEvery int

	// RemotePer10k of server requests require a network round trip of
	// RemoteLatency (the AFS cache-miss path); the arriving packet runs
	// the network daemon.
	RemotePer10k  int
	RemoteLatency machine.Duration

	// UseExcServer installs a user-level exception server handling every
	// client's exceptions, with the given per-exception user work.
	UseExcServer        bool
	ExcServerWorkCycles uint64
}

// Scale returns a copy of the spec with the duration multiplied by f
// (e.g. 0.01 for a quick calibration run).
func (s Spec) Scale(f float64) Spec {
	s.Duration = machine.Duration(float64(s.Duration) * f)
	return s
}

// CompileTest is the short C compilation benchmark: one compiler pipeline
// talking to the Unix server, a background system daemon, light paging.
// Paper wall time: 22 seconds; block mix: 83.4% receive, 0.9% fault,
// 7.7% preempt, 6.4% internal, 1.6% no-discard (Table 1, Toshiba 5200).
func CompileTest() Spec {
	return Spec{
		Name:     "Compile Test",
		Duration: machine.Duration(22e9),
		Quantum:  machine.Duration(100e6),
		Frames:   1024,
		Clients: []ClientSpec{
			{
				Name:            "cc1",
				Count:           1,
				MeanBurstCycles: 260_000, // ~13 ms on the 20 MHz 386
				Weights:         OpWeights{RPC: 92, Fault: 1},
				// The rare in-kernel waits: a few percent of syscalls
				// hit one.
				KernelFaultPer10k: 350,
				AllocPer10k:       350,
				LockPer10k:        350,
				// Occasional optimizer passes run well past the quantum.
				LongBurstPer10k: 350,
				LongBurstCycles: 5_200_000,
				Priority:        10,
			},
			{
				Name:            "as",
				Count:           1,
				MeanBurstCycles: 240_000,
				Weights:         OpWeights{RPC: 92, Fault: 1},
				LongBurstPer10k: 350,
				LongBurstCycles: 5_200_000,
				Priority:        10,
			},
		},
		ServerThreads:    2,
		ServerWorkCycles: 18_000,
		KickEvery:        6,
	}
}

// KernelBuild is the Mach kernel build over AFS: several concurrent
// compile jobs, heavy file-server RPC traffic through a user-level cache
// manager, steady network daemon activity. Paper wall time: 4917 seconds;
// block mix: 86.3% receive, 4.9% preempt, 8.4% internal (Table 1).
func KernelBuild() Spec {
	return Spec{
		Name:     "Kernel Build",
		Duration: machine.Duration(4917e9),
		Quantum:  machine.Duration(100e6),
		Frames:   2048,
		Clients: []ClientSpec{
			{
				Name:              "make-job",
				Count:             3,
				MeanBurstCycles:   180_000,
				Weights:           OpWeights{RPC: 4300, Fault: 20, Yield: 1},
				KernelFaultPer10k: 12,
				AllocPer10k:       9,
				LockPer10k:        8,
				LongBurstPer10k:   80,
				LongBurstCycles:   4_200_000,
				Priority:          10,
			},
		},
		ServerThreads:    3,
		ServerWorkCycles: 16_000,
		KickEvery:        0,
		RemotePer10k:     2000,
		RemoteLatency:    machine.Duration(12 * 1000 * 1000),
	}
}

// DOSEmulation is the MS-DOS game (Wing Commander) under emulation: a
// single program whose privileged instructions raise exceptions handled
// by a user-level exception server in its own address space, plus video
// and input RPC traffic. Paper wall time: 698 seconds; block mix: 55.2%
// receive, 37.9% exception, 5.3% preempt, 1.6% internal (Table 1).
func DOSEmulation() Spec {
	return Spec{
		Name:     "DOS Emulation",
		Duration: machine.Duration(698e9),
		Quantum:  machine.Duration(100e6),
		Frames:   1024,
		Clients: []ClientSpec{
			{
				Name:            "wing-commander",
				Count:           1,
				MeanBurstCycles: 50_000, // ~2.5 ms between emulator traps
				Weights:         OpWeights{RPC: 10, Exception: 50},
				LongBurstPer10k: 220,
				LongBurstCycles: 4_500_000,
				Priority:        10,
			},
			{
				Name:            "screen-refresher",
				Count:           1,
				MeanBurstCycles: 2_600_000,
				Weights:         OpWeights{RPC: 1},
				LongBurstPer10k: 350,
				LongBurstCycles: 4_000_000,
				Priority:        9,
			},
		},
		ServerThreads:       2,
		ServerWorkCycles:    9_000,
		KickEvery:           5,
		UseExcServer:        true,
		ExcServerWorkCycles: 7_000,
	}
}

// Specs returns the paper's three workloads in Table 1 column order.
func Specs() []Spec {
	return []Spec{CompileTest(), KernelBuild(), DOSEmulation()}
}

// Instance is a workload installed on a system.
type Instance struct {
	Sys  *kern.System
	Spec Spec

	Servers   []*Server
	ExcServer *ExcServer
	Device    *Daemon
	Clients   []*Client

	clientThreads []*core.Thread
}

// Install creates the workload's tasks, ports, daemons and threads on
// the system and makes them runnable.
func Install(sys *kern.System, spec Spec, seed uint64) *Instance {
	inst := &Instance{Sys: sys, Spec: spec}
	rng := NewRNG(seed)

	// The internal device daemon (network interrupts, AFS callbacks,
	// disk strategy postprocessing).
	if spec.KickEvery > 0 || spec.RemotePer10k > 0 {
		inst.Device = NewDaemon(sys, "netisr", machine.Cost{Instrs: 400, Loads: 120, Stores: 60})
	}

	// The service task (Unix server / AFS cache manager).
	serverTask := sys.NewTask("unix-server")
	servicePort := sys.IPC.NewPort("service")
	for i := 0; i < spec.ServerThreads; i++ {
		srv := NewServer(sys, servicePort, spec.ServerWorkCycles)
		if inst.Device != nil {
			if spec.KickEvery > 0 {
				srv.KickDaemon = inst.Device
				srv.KickEvery = spec.KickEvery
			}
			srv.RemoteKick = inst.Device
		}
		srv.RemotePer10k = spec.RemotePer10k
		srv.RemoteLatency = spec.RemoteLatency
		srv.rng = NewRNG(rng.Next())
		inst.Servers = append(inst.Servers, srv)
		th := serverTask.NewThread(fmt.Sprintf("svc-%d", i), srv, 20)
		sys.Start(th)
	}

	// The exception server, when the workload uses one.
	var excPort *ipc.Port
	if spec.UseExcServer {
		excTask := sys.NewTask("exc-emulator")
		excPort = sys.IPC.NewPort("exc-service")
		es := NewExcServer(sys, excPort, spec.ExcServerWorkCycles)
		inst.ExcServer = es
		th := excTask.NewThread("handler", es, 21)
		sys.Start(th)
	}

	// Client tasks.
	for _, cs := range spec.Clients {
		for i := 0; i < cs.Count; i++ {
			task := sys.NewTask(fmt.Sprintf("%s-%d", cs.Name, i))
			reply := sys.IPC.NewPort(fmt.Sprintf("%s-%d-reply", cs.Name, i))
			cl := NewClient(sys, cs, servicePort, reply, NewRNG(rng.Next()))
			inst.Clients = append(inst.Clients, cl)
			th := task.NewThread("main", cl, cs.Priority)
			if cs.Weights.Exception > 0 {
				if excPort == nil {
					panic("workload: exception ops without an exception server")
				}
				sys.Exc.SetExceptionPort(th, excPort)
			}
			inst.clientThreads = append(inst.clientThreads, th)
			sys.Start(th)
		}
	}
	return inst
}

// Run drives the installed workload for its duration.
func (inst *Instance) Run() {
	deadline := inst.Sys.K.Clock.Now() + inst.Spec.Duration
	inst.Sys.Run(machine.Time(deadline))
}

// NewSystem boots a system sized for the spec.
func NewSystem(flavor kern.Flavor, arch machine.Arch, spec Spec) *kern.System {
	return kern.New(kern.Config{
		Flavor:  flavor,
		Arch:    arch,
		Quantum: spec.Quantum,
		Frames:  spec.Frames,
	})
}

// Run is the one-call entry: boot, install, run, return the system for
// inspection.
func Run(flavor kern.Flavor, arch machine.Arch, spec Spec, seed uint64) (*kern.System, *Instance) {
	sys := NewSystem(flavor, arch, spec)
	inst := Install(sys, spec, seed)
	inst.Run()
	return sys, inst
}
