package workload

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// runMTLoadReport executes spec under the given GOMAXPROCS and returns
// the aggregate report — the workload's determinism artifact.
func runMTLoadReport(t *testing.T, spec MTLoadSpec, procs int) string {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	return MTLoadReport(kern.MK40, machine.ArchDS3100, spec)
}

// TestMTLoadParallelEquivalence checks the determinism contract at a
// 16-machine scale: the report is byte-identical across sequential and
// parallel drivers, GOMAXPROCS values, and same-seed reruns, with the
// driver's naive-sweep cross-check armed throughout.
func TestMTLoadParallelEquivalence(t *testing.T) {
	spec := DefaultMTLoad()
	spec.Machines = 16
	spec.SessionsPerTenant = 60
	spec.DebugChecks = true

	want := runMTLoadReport(t, spec, 1)
	if want == "" {
		t.Fatal("baseline produced an empty report")
	}
	for _, procs := range []int{1, 4} {
		for _, par := range []bool{false, true} {
			if !par && procs == 1 {
				continue
			}
			s := spec
			s.Parallel = par
			if got := runMTLoadReport(t, s, procs); got != want {
				t.Errorf("parallel=%v GOMAXPROCS=%d: report differs from sequential baseline",
					par, procs)
			}
		}
	}
	// Same-seed rerun in the same process: no hidden global state.
	if got := runMTLoadReport(t, spec, 1); got != want {
		t.Error("same-seed rerun differs from first run")
	}
}

// TestMTLoadSpaceClaim pins the paper's space claim at cluster scale:
// blocked sessions scale with the load while every machine's kernel
// stack pool stays bounded by its processor count.
func TestMTLoadSpaceClaim(t *testing.T) {
	spec := DefaultMTLoad()
	spec.Machines = 16
	spec.SessionsPerTenant = 200 // 800 sessions across 8 pairs
	res := RunMTLoad(kern.MK40, machine.ArchDS3100, spec)

	var ops, attainable uint64
	totalSessions := 0
	for i := range res.PerTenant {
		ops += res.PerTenant[i].Ops
		attainable += uint64(res.PerTenant[i].Sessions * spec.Ops)
		totalSessions += res.PerTenant[i].Sessions
	}
	if ops != attainable {
		t.Fatalf("completed ops %d != sessions*ops %d — sessions stalled", ops, attainable)
	}

	var blocked uint64
	maxStacks := 0
	for _, sys := range res.Machines {
		mc := sys.MemoryCensus()
		blocked += uint64(mc.BlockedHighWater)
		if mc.StackHighWater > maxStacks {
			maxStacks = mc.StackHighWater
		}
	}
	if blocked < uint64(totalSessions) {
		t.Fatalf("blocked high-water %d < %d sessions: think sleeps are not blocking", blocked, totalSessions)
	}
	// Machines boot with one processor; a small constant covers the
	// transient second stack a handoff or interrupt can pin.
	if maxStacks > 4 {
		t.Fatalf("max per-machine stack high-water %d at %d sessions: stacks not O(processors)",
			maxStacks, totalSessions)
	}
}

// TestMTLoadBalancerSpread checks the placement invariant the report
// advertises: the greedy balancer keeps the per-pair session counts
// within one of each other when every tenant's sessions divide evenly.
func TestMTLoadBalancerSpread(t *testing.T) {
	tenants := MakeTenants(3, 40)
	counts := placeSessions(tenants, 8)
	min, max := -1, 0
	for p := range counts {
		n := 0
		for ti := range tenants {
			n += counts[p][ti]
		}
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("per-pair session spread %d (min %d, max %d), want <= 1", max-min, min, max)
	}
	total := 0
	for p := range counts {
		for ti := range tenants {
			total += counts[p][ti]
		}
	}
	if total != 3*40 {
		t.Fatalf("placed %d sessions, want %d", total, 3*40)
	}
}

// TestParallelEquivalenceManyMachines drives the netrpc workload at 64
// machines — the shape where the sharded barrier and dirty-flush lists
// matter — and requires byte-identical artifacts across drivers.
func TestParallelEquivalenceManyMachines(t *testing.T) {
	spec := DefaultNetRPC()
	spec.Pairs = 32
	spec.RPCs = 8
	spec.DiskReads = 0
	testParallelEquivalence(t, spec)
}

// TestLinkDelayFaultCrossCheck regresses the wire-cache contract under
// the fault grammar's link=…:delay rule: a mid-run latency stretch adds
// delay at transmit time, so the cached lookahead must stay a safe lower
// bound — CrossCheck panics (failing the run) if the horizon ever
// diverges from the full sweep, and the parallel driver must still match
// the sequential one byte for byte.
func TestLinkDelayFaultCrossCheck(t *testing.T) {
	spec := DefaultNetRPC()
	fs, err := fault.ParseSpec("link=0>1:delay:2ms@5ms+20ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	spec.FaultSeed = 7
	spec.FaultSpec = fs
	spec.DebugChecks = true // arms Cluster.CrossCheck in RunNetRPC
	testParallelEquivalence(t, spec)
}

// TestRegistryIncludesMTLoad keeps the workload discoverable by name:
// machsim and the determinism CI iterate the registry.
func TestRegistryIncludesMTLoad(t *testing.T) {
	for _, w := range Registry() {
		if w.Name == "mtload" {
			if rep := w.Report(false); !bytes.Contains([]byte(rep), []byte("multi-tenant load report")) {
				t.Fatal("mtload registry report missing headline")
			}
			return
		}
	}
	t.Fatal("registry has no mtload entry")
}
