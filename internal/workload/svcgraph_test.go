package workload

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// TestSvcGraphHealthy runs the three-tier chain with no faults: every
// frontend op completes through the cache, reads are consistent, and the
// read-heavy mix produces real cache hits plus real backend traffic.
func TestSvcGraphHealthy(t *testing.T) {
	spec := DefaultSvcGraph()
	res := RunSvcGraph(kern.MK40, machine.ArchDS3100, spec)

	want := spec.Frontends * spec.Ops
	if res.Completed != want || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, want)
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches through the cache: %d", res.Mismatches)
	}
	cs := res.Cache.Stats
	if cs.Hits == 0 {
		t.Fatal("read-heavy run produced no cache hits")
	}
	if cs.Misses == 0 || cs.WriteThroughs == 0 {
		t.Fatalf("no backend traffic: %+v", *cs)
	}
	st := res.ReplicaTotals()
	if st.Gets == 0 || st.Puts == 0 {
		t.Fatalf("backend saw no leader traffic: %+v", st)
	}
	if st.Elections != 0 {
		t.Fatalf("healthy run saw %d elections", st.Elections)
	}
}

// TestSvcGraphEviction squeezes the cache capacity below the key working
// set and checks FIFO eviction kicks in without hurting consistency.
func TestSvcGraphEviction(t *testing.T) {
	spec := DefaultSvcGraph()
	spec.Capacity = 4
	res := RunSvcGraph(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != spec.Frontends*spec.Ops || res.Mismatches != 0 {
		t.Fatalf("completed %d mismatches %d", res.Completed, res.Mismatches)
	}
	if res.Cache.Stats.Evictions == 0 {
		t.Fatal("capacity squeeze produced no evictions")
	}
}

// TestSvcGraphBackendCrash crashes the KV primary under the cache: the
// cache workers fail over to the elected backup and every frontend op
// still completes.
func TestSvcGraphBackendCrash(t *testing.T) {
	spec := DefaultSvcGraph()
	spec.FaultSpec.Crashes = []fault.Crash{{
		Machine:     2,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(40 * 1e6),
	}}
	res := RunSvcGraph(kern.MK40, machine.ArchDS3100, spec)

	want := spec.Frontends * spec.Ops
	if res.Completed != want || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, want)
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	st := res.ReplicaTotals()
	if st.Elections == 0 {
		t.Fatal("no election after the backend primary crashed")
	}
	if st.Syncs == 0 {
		t.Fatal("the rebooted primary never resynced")
	}
}

// svcGraphReport renders one run as the machsim-format report string.
func svcGraphReport(spec SvcGraphSpec, procs int) string {
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	res := RunSvcGraph(kern.MK40, machine.ArchDS3100, spec)
	var buf bytes.Buffer
	WriteSvcGraphReport(&buf, kern.MK40, machine.ArchDS3100, res,
		NetRPCReportOptions{Faults: !spec.FaultSpec.Zero()})
	return buf.String()
}

// TestSvcGraphParallelEquivalence checks byte-identical reports across
// sequential/parallel drivers and GOMAXPROCS under a backend crash.
func TestSvcGraphParallelEquivalence(t *testing.T) {
	spec := DefaultSvcGraph()
	spec.FaultSpec.Crashes = []fault.Crash{{
		Machine:     2,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(40 * 1e6),
	}}
	seq := spec
	seq.Parallel = false
	want := svcGraphReport(seq, 1)
	if want == "" {
		t.Fatal("baseline run produced an empty report")
	}
	for _, procs := range []int{1, 4} {
		for _, par := range []bool{false, true} {
			if !par && procs == 1 {
				continue
			}
			run := spec
			run.Parallel = par
			if got := svcGraphReport(run, procs); got != want {
				t.Fatalf("report diverged (parallel=%v procs=%d):\nwant:\n%s\ngot:\n%s",
					par, procs, want, got)
			}
		}
	}
}
