package workload

import (
	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/vm"
)

// OpWeights gives the relative frequency of each operation a client
// issues between CPU bursts.
type OpWeights struct {
	RPC       int // mach_msg RPC to the service port
	Fault     int // user-level page fault on a fresh page
	Exception int // user-level exception to the exception server
	Yield     int // voluntary thread_switch
}

func (w OpWeights) total() int { return w.RPC + w.Fault + w.Exception + w.Yield }

// ClientSpec parameterizes a population of identical client threads.
type ClientSpec struct {
	// Name labels the client threads.
	Name string
	// Count is how many threads run this spec.
	Count int
	// MeanBurstCycles is the average user CPU between operations.
	MeanBurstCycles uint64
	// Weights picks the operation mix.
	Weights OpWeights
	// MsgBytes is the request size (HeaderBytes if zero).
	MsgBytes int
	// KernelFaultPer10k, AllocPer10k and LockPer10k inject the rare
	// process-model waits (kernel-mode faults, memory allocation, lock
	// acquisition — §3.2) into this client's system calls.
	KernelFaultPer10k int
	AllocPer10k       int
	LockPer10k        int
	// LongBurstPer10k replaces a burst with a LongBurstCycles one at the
	// given rate; bursts longer than the quantum are what produce
	// involuntary preemptions when other work is queued.
	LongBurstPer10k int
	LongBurstCycles uint64
	// Priority of the client threads.
	Priority int
}

// Client is one client thread's program: alternate a CPU burst with a
// randomly chosen operation, forever (the enclosing run stops at a
// simulated-time deadline).
type Client struct {
	sys   *kern.System
	spec  ClientSpec
	rng   *RNG
	reply *ipc.Port

	// service is the RPC destination; nil disables RPC ops.
	service *ipc.Port

	// nextFaultPage walks a private page range so that fault operations
	// touch fresh (non-resident) pages.
	nextFaultPage uint64

	// burstNext alternates burst/operation.
	burstNext bool

	// Ops counts operations issued by kind.
	RPCs, Faults, Exceptions, Yields uint64
}

// NewClient builds a client program. reply must be a dedicated reply
// port for this thread.
func NewClient(sys *kern.System, spec ClientSpec, service, reply *ipc.Port, rng *RNG) *Client {
	if spec.Weights.total() <= 0 {
		panic("workload: client with no operations")
	}
	return &Client{
		sys:           sys,
		spec:          spec,
		rng:           rng,
		service:       service,
		reply:         reply,
		nextFaultPage: 0x100000 + rng.Uint64n(1<<20),
		burstNext:     true,
	}
}

// Next implements core.UserProgram.
func (c *Client) Next(e *core.Env, t *core.Thread) core.Action {
	// Consume any reply so the mailbox slot does not accumulate.
	c.sys.IPC.Received(t)

	if c.burstNext {
		c.burstNext = false
		mean := c.spec.MeanBurstCycles
		if c.rng.Hit(c.spec.LongBurstPer10k) {
			mean = c.spec.LongBurstCycles
		}
		if mean > 0 {
			return core.RunFor(c.rng.Burst(mean))
		}
	}
	c.burstNext = true

	w := c.spec.Weights
	r := c.rng.Intn(w.total())
	switch {
	case r < w.RPC:
		c.RPCs++
		return c.rpcAction()
	case r < w.RPC+w.Fault:
		c.Faults++
		c.nextFaultPage++
		return core.Action{Kind: core.ActFault, Addr: c.nextFaultPage << vm.PageShift}
	case r < w.RPC+w.Fault+w.Exception:
		c.Exceptions++
		return core.Action{Kind: core.ActException, Code: int(c.Exceptions)}
	default:
		c.Yields++
		return core.Action{Kind: core.ActYield}
	}
}

// rpcAction builds the mach_msg syscall, injecting the rare process-model
// waits on the way in.
func (c *Client) rpcAction() core.Action {
	size := c.spec.MsgBytes
	if size <= 0 {
		size = ipc.HeaderBytes
	}
	doMsg := func(e *core.Env) {
		req := c.sys.IPC.NewMessage(7, size, nil, c.reply)
		c.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send:        req,
			SendTo:      c.service,
			ReceiveFrom: c.reply,
		})
	}
	kfault := c.rng.Hit(c.spec.KernelFaultPer10k)
	alloc := c.rng.Hit(c.spec.AllocPer10k)
	lock := c.rng.Hit(c.spec.LockPer10k)
	return core.Syscall("mach_msg(rpc)", func(e *core.Env) {
		step := doMsg
		if lock {
			inner := step
			step = func(e *core.Env) { c.sys.LockWait(e, 128, inner) }
		}
		if alloc {
			inner := step
			step = func(e *core.Env) { c.sys.AllocWait(e, 192, inner) }
		}
		if kfault {
			inner := step
			step = func(e *core.Env) { c.sys.VM.KernelFault(e, 256, inner) }
		}
		step(e)
	})
}
