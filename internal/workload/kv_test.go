package workload

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// kvTotalOps is the op count a KV spec's callers issue in total.
func kvTotalOps(spec KVSpec) int { return 2 * spec.Clients * spec.Ops }

// TestKVNoCrash runs the healthy cluster: every operation completes,
// reads match acknowledged writes, and no election ever fires.
func TestKVNoCrash(t *testing.T) {
	spec := DefaultKV()
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	st := res.ReplicaTotals()
	if st.Elections != 0 || st.FencingRejections != 0 || st.Deposed != 0 {
		t.Fatalf("healthy run saw elections %d, fencing %d, deposed %d",
			st.Elections, st.FencingRejections, st.Deposed)
	}
	if st.Puts == 0 || st.Gets == 0 || st.Replicated == 0 {
		t.Fatalf("no real traffic: %+v", st)
	}
	if st.Replicated != st.Puts {
		t.Fatalf("puts %d but replicated %d in a crash-free run", st.Puts, st.Replicated)
	}
}

// TestKVPrimaryCrash is the acceptance scenario: crash the rank-0
// replica mid-run with a warm reboot. Every client op must still
// complete, the backup must win at least one election, and the rebooted
// primary's stale-epoch rejoin must be fenced at least once.
func TestKVPrimaryCrash(t *testing.T) {
	spec := DefaultKV()
	spec.FaultSpec.Crashes = []fault.Crash{{
		Machine:     1,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(40 * 1e6),
	}}
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	st := res.ReplicaTotals()
	if st.Elections == 0 {
		t.Fatal("no election after the primary crashed")
	}
	if st.FencingRejections == 0 {
		t.Fatal("no fencing rejection — the rebooted primary was never fenced")
	}
	if st.Syncs == 0 {
		t.Fatal("the rebooted primary never completed a rejoin state sync")
	}
	if res.Recovery.Crashes != 1 || res.Recovery.Reboots != 1 {
		t.Fatalf("crashes %d reboots %d, want 1/1", res.Recovery.Crashes, res.Recovery.Reboots)
	}
}

// TestKVStaggeredCrashes kills each replica in turn (never overlapping,
// so no solo-acked write is ever lost): completion and consistency must
// hold through both elections and both rejoins.
func TestKVStaggeredCrashes(t *testing.T) {
	spec := DefaultKV()
	spec.Ops = 120
	spec.FaultSpec.Crashes = []fault.Crash{
		{Machine: 1, At: machine.Duration(40 * 1e6), RebootAfter: machine.Duration(40 * 1e6)},
		{Machine: 2, At: machine.Duration(160 * 1e6), RebootAfter: machine.Duration(40 * 1e6)},
	}
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != kvTotalOps(spec) || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.Completed, res.Failed, kvTotalOps(spec))
	}
	if res.Mismatches != 0 {
		t.Fatalf("consistency mismatches: %d", res.Mismatches)
	}
	st := res.ReplicaTotals()
	if st.Elections < 2 {
		t.Fatalf("elections %d, want at least one per crash", st.Elections)
	}
	if st.Syncs < 2 {
		t.Fatalf("syncs %d, want one per reboot", st.Syncs)
	}
	if res.Recovery.Crashes != 2 || res.Recovery.Reboots != 2 {
		t.Fatalf("crashes %d reboots %d, want 2/2", res.Recovery.Crashes, res.Recovery.Reboots)
	}
}

// kvReport renders the spec's run as the machsim-format report string.
func kvReport(spec KVSpec, procs int) string {
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)
	var buf bytes.Buffer
	WriteKVReport(&buf, kern.MK40, machine.ArchDS3100, res,
		NetRPCReportOptions{Faults: !spec.FaultSpec.Zero()})
	return buf.String()
}

// TestKVParallelEquivalence checks the determinism contract for the KV
// workload under its crash plan: the report is byte-identical across
// sequential/parallel drivers and GOMAXPROCS settings.
func TestKVParallelEquivalence(t *testing.T) {
	spec := DefaultKV()
	spec.FaultSpec.Crashes = []fault.Crash{{
		Machine:     1,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(40 * 1e6),
	}}
	seq := spec
	seq.Parallel = false
	want := kvReport(seq, 1)
	if want == "" {
		t.Fatal("baseline run produced an empty report")
	}
	for _, procs := range []int{1, 4} {
		for _, par := range []bool{false, true} {
			if !par && procs == 1 {
				continue
			}
			run := spec
			run.Parallel = par
			if got := kvReport(run, procs); got != want {
				t.Fatalf("report diverged (parallel=%v procs=%d):\nwant:\n%s\ngot:\n%s",
					par, procs, want, got)
			}
		}
	}
}
