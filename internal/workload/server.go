package workload

import (
	"repro/internal/core"
	"repro/internal/exc"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Server is a user-level service task thread: the Unix server, the AFS
// cache manager, or an MS-DOS emulator's exception handler. It receives
// requests on a port, burns some user CPU handling each, optionally
// waits for a remote (network) completion — whose arrival kicks the
// internal network daemon — optionally kicks a device daemon directly,
// and replies.
type Server struct {
	sys  *kern.System
	port *ipc.Port
	rng  *RNG

	// WorkCycles is the user CPU burned per request.
	WorkCycles uint64

	// KickDaemon, when non-nil, is kicked every KickEvery requests
	// (local-device work such as disk interrupts).
	KickDaemon *Daemon
	KickEvery  int

	// RemotePer10k of requests need a network round trip of
	// RemoteLatency before the reply; the packet arrival kicks
	// RemoteKick (the network daemon), whether or not the CPU is busy.
	RemotePer10k  int
	RemoteLatency machine.Duration
	RemoteKick    *Daemon

	// contNetWait resumes the server after its network wait.
	contNetWait *core.Continuation

	// Handled counts completed requests; Remotes counts those that went
	// to the network.
	Handled uint64
	Remotes uint64

	pending *ipc.Message
	worked  bool
	waited  bool
	sinceK  int
}

// NewServer creates a server program; the caller wraps it in a thread.
func NewServer(sys *kern.System, port *ipc.Port, workCycles uint64) *Server {
	s := &Server{sys: sys, port: port, WorkCycles: workCycles, rng: NewRNG(0x5e1f)}
	s.contNetWait = core.NewContinuation("afs_net_wait_continue", func(e *core.Env) {
		sys.K.ThreadSyscallReturn(e, 0)
	})
	return s
}

// Next implements core.UserProgram: receive, work, (remote wait,) reply,
// forever.
func (s *Server) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
		s.worked = false
		s.waited = false
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	if !s.worked && s.WorkCycles > 0 {
		s.worked = true
		return core.RunFor(s.WorkCycles)
	}
	if !s.waited && s.rng.Hit(s.RemotePer10k) {
		// A cache miss: ask the file server over the network and wait
		// for the reply packet. The wait is a message receive from the
		// network service; the packet arrival runs the network daemon.
		s.waited = true
		s.Remotes++
		return core.Syscall("mach_msg(net-receive)", func(e *core.Env) {
			th := e.Cur()
			s.sys.K.Clock.After(s.RemoteLatency, "afs-packet", func() {
				if s.RemoteKick != nil {
					s.RemoteKick.Kick()
				}
				if th.State == core.StateWaiting {
					s.sys.K.Setrun(th)
				}
			})
			th.State = core.StateWaiting
			th.WaitLabel = "afs: network wait"
			s.sys.K.Block(e, stats.BlockReceive, s.contNetWait,
				func(e2 *core.Env) { s.sys.K.ThreadSyscallReturn(e2, 0) },
				192, "afs-net-wait")
		})
	}
	req := s.pending
	s.pending = nil
	s.Handled++
	if s.KickDaemon != nil {
		s.sinceK++
		if s.sinceK >= s.KickEvery {
			s.sinceK = 0
			s.KickDaemon.Kick()
		}
	}
	return core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
		reply := s.sys.IPC.NewMessage(req.OpID|0x8000, req.Size, req.Body, nil)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send:        reply,
			SendTo:      req.Reply,
			ReceiveFrom: s.port,
		})
	})
}

// ExcServer is the user-level exception handler of the MS-DOS emulation:
// it receives exception RPCs from the kernel, emulates the privileged
// instruction with some user work, and replies so the kernel restarts the
// faulting thread.
type ExcServer struct {
	sys        *kern.System
	port       *ipc.Port
	WorkCycles uint64

	Handled uint64
	pending *ipc.Message
	worked  bool
}

// NewExcServer creates the exception-server program.
func NewExcServer(sys *kern.System, port *ipc.Port, workCycles uint64) *ExcServer {
	return &ExcServer{sys: sys, port: port, WorkCycles: workCycles}
}

// Next implements core.UserProgram.
func (s *ExcServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
		s.worked = false
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	if !s.worked && s.WorkCycles > 0 {
		s.worked = true
		return core.RunFor(s.WorkCycles)
	}
	req := s.pending
	s.pending = nil
	if _, ok := req.Body.(exc.ExcInfo); !ok {
		panic("workload: exception server received a non-exception message")
	}
	s.Handled++
	return core.Syscall("mach_msg(exc-reply+receive)", func(e *core.Env) {
		reply := s.sys.IPC.NewMessage(ipc.ExcOpRaise+100, ipc.HeaderBytes, nil, nil)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send:        reply,
			SendTo:      req.Reply,
			ReceiveFrom: s.port,
		})
	})
}
