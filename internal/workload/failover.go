// The HA (failover) variant of the NetRPC workload: four machines —
// client, primary echo server, replica echo server, second client — with
// each client wired to both servers over point-to-point netmsg links.
// Clients issue RPCs with a receive timeout; when the primary goes
// silent past the membership deadline they fail over to the replica, and
// when the primary's warm reboot announces a new incarnation they fail
// back. A run with `crash=1@...:reboot+...` in its fault spec therefore
// completes 100% of its RPCs with degraded latency instead of hanging.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
)

// DefaultRPCTimeout is the failover client's per-attempt receive
// timeout: long enough that queueing behind the other client never trips
// it, short against the membership deadline so dead-server detection is
// driven by RPC traffic, not by luck.
const DefaultRPCTimeout = machine.Duration(10 * 1000 * 1000) // 10 ms

// haMaxAttempts bounds retries per RPC so a cluster whose servers all
// die without reboot still quiesces instead of retrying forever.
const haMaxAttempts = 64

// replyOpBit marks an echo reply's OpID (the server sets op|0x8000).
const replyOpBit = 0x8000

// RecoveryStats is the crash/failover accounting of one run, summed over
// all machines and clients.
type RecoveryStats struct {
	Crashes        uint64 // whole-machine crash events fired
	Reboots        uint64 // warm reboots completed
	DeathsDetected uint64 // times a link declared its peer dead
	Recoveries     uint64 // times a declared-dead peer was heard again
	StaleDropped   uint64 // packets discarded by the incarnation check
	Heartbeats     uint64 // explicit incarnation announcements sent
	Failovers      uint64 // client switches primary -> replica
	Failbacks      uint64 // client switches replica -> primary
	Salvaged       uint64 // RPCs that needed more than one attempt
	Failed         uint64 // RPCs abandoned after haMaxAttempts
}

// fill sums the machine-side counters (the client-side ones are added by
// the driver from each haClient).
func (r *RecoveryStats) fill(machines []*kern.System) {
	for _, s := range machines {
		t := s.NetTotals()
		r.Crashes += s.CrashCount
		r.Reboots += s.Reboots
		r.DeathsDetected += t.DeathsDetected
		r.Recoveries += t.Recoveries
		r.StaleDropped += t.StaleDropped
		r.Heartbeats += t.HeartbeatsTx
	}
}

// haClient issues echo RPCs against the primary server (Links[0]) with a
// receive timeout, retrying with a fresh operation id on every attempt.
// On a timeout it consults the primary link's membership state and fails
// over to the replica (Links[1]); once the primary link records a
// recovery — the rebooted peer was heard from again — it fails back.
// All state is read through c.sys at action time, so the same program
// object survives its own machine's crash: the reboot script gives it a
// fresh reply port and thread and it resumes at the RPC it was on.
type haClient struct {
	sys     *kern.System
	name    string
	bytes   int
	rpcs    int
	timeout machine.Duration

	reply *ipc.Port

	done      int
	failed    int
	attempts  int
	opid      uint32
	onReplica bool
	waiting   bool
	recSnap   uint64 // primary link's Recoveries at failover time

	Failovers uint64
	Failbacks uint64
	Salvaged  uint64

	sendAct core.Action
	recvAct core.Action
}

func (c *haClient) primary() *dev.Netmsg { return c.sys.Links[0] }

func (c *haClient) target() *dev.Netmsg {
	if c.onReplica {
		return c.sys.Links[1]
	}
	return c.sys.Links[0]
}

// emitSwitch records a failover (toReplica) or failback in the machine's
// event stream.
func (c *haClient) emitSwitch(t *core.Thread, toReplica bool) {
	r := c.sys.K.Obs
	if r == nil {
		return
	}
	detail, arg := "replica -> primary", 0
	if toReplica {
		detail, arg = "primary -> replica", 1
	}
	r.EmitArg(obs.Failover, t.ID, t.Name, "", detail, arg)
}

func (c *haClient) Next(e *core.Env, t *core.Thread) core.Action {
	if c.sendAct.Invoke == nil {
		c.sendAct = core.Syscall("mach_msg(ha-rpc)", func(e *core.Env) {
			req := c.sys.IPC.NewMessage(c.opid, c.bytes, nil, c.reply)
			c.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: req, SendTo: c.target().ProxyFor("echo"),
				ReceiveFrom: c.reply, RcvTimeout: c.timeout,
			})
		})
		c.recvAct = core.Syscall("mach_msg(ha-drain)", func(e *core.Env) {
			c.sys.IPC.MachMsg(e, ipc.MsgOptions{
				ReceiveFrom: c.reply, RcvTimeout: c.timeout,
			})
		})
	}
	if c.waiting {
		if m := c.sys.IPC.Received(t); m != nil {
			op := m.OpID
			c.sys.IPC.FreeMessage(m)
			if op != c.opid|replyOpBit {
				// A late reply to an attempt already retried; the reply to
				// the current attempt is still due. Keep draining.
				return c.recvAct
			}
			c.done++
			if c.attempts > 1 {
				c.Salvaged++
			}
			c.waiting = false
		} else {
			// Timed out (t.MD.RetVal == ipc.RcvTimedOut). Reassess the
			// target before retrying: a silent primary is declared dead by
			// the link's membership state, a recovered one is failed back
			// to at the next attempt below.
			if !c.onReplica && !c.primary().PeerAlive() {
				c.onReplica = true
				c.recSnap = c.primary().Recoveries
				c.Failovers++
				c.emitSwitch(t, true)
			}
			if c.attempts >= haMaxAttempts {
				c.failed++
				c.waiting = false
			}
		}
	}
	if !c.waiting {
		if c.done+c.failed >= c.rpcs {
			return core.Exit()
		}
		c.attempts = 0
	}
	if c.onReplica && c.primary().Recoveries > c.recSnap {
		// The primary was heard from again after its death was declared —
		// its reboot announcement — so new RPCs go home.
		c.onReplica = false
		c.Failbacks++
		c.emitSwitch(t, false)
	}
	c.attempts++
	c.waiting = true
	c.opid = (c.opid + 1) & (replyOpBit - 1)
	if c.opid == 0 {
		c.opid = 1
	}
	return c.sendAct
}

// runNetRPCFailover is RunNetRPC's HA branch.
func runNetRPCFailover(flavor kern.Flavor, arch machine.Arch, spec NetRPCSpec) *NetRPCResult {
	res, clis, readers := bootNetRPCFailover(flavor, arch, spec)
	cluster := kern.NewCluster(res.Machines...)
	cluster.CrossCheck = spec.DebugChecks
	start := res.Client.K.Clock.Now()
	res.Steps = cluster.Drive(spec.Parallel)
	for _, cli := range clis {
		res.Completed += cli.done
		res.Recovery.Failovers += cli.Failovers
		res.Recovery.Failbacks += cli.Failbacks
		res.Recovery.Salvaged += cli.Salvaged
		res.Recovery.Failed += uint64(cli.failed)
	}
	for i, rd := range readers {
		if i < len(res.DiskReadsDone) {
			res.DiskReadsDone[i] = rd.done
		}
	}
	res.Elapsed = machine.Duration(res.Client.K.Clock.Now() - start)
	res.Recovery.fill(res.Machines)
	stampCensus(res.Machines)
	return res
}

// bootNetRPCFailover builds the four-machine HA cluster: machine 0 and 3
// are clients, 1 is the primary server, 2 the replica. Every machine has
// two links; clients reach the primary on Links[0] and the replica on
// Links[1], servers reach client 0 on Links[0] and client 1 on Links[1].
func bootNetRPCFailover(flavor kern.Flavor, arch machine.Arch, spec NetRPCSpec) (*NetRPCResult, []*haClient, []*diskReader) {
	cfg := kern.Config{Flavor: flavor, Arch: arch, DiskLatency: spec.DiskLatency}
	msgBytes := spec.MsgBytes
	if msgBytes < ipc.HeaderBytes {
		msgBytes = ipc.HeaderBytes
	}
	timeout := spec.RPCTimeout
	if timeout == 0 {
		timeout = DefaultRPCTimeout
	}
	clientsPer := spec.Clients
	if clientsPer <= 0 {
		clientsPer = 1
	}

	res := &NetRPCResult{}
	sys := make([]*kern.System, 4)
	for i := range sys {
		sys[i] = kern.New(cfg)
		sys[i].AddLink()
	}
	client0, primary, replica, client1 := sys[0], sys[1], sys[2], sys[3]
	dev.Connect(client0.Links[0].NIC, primary.Links[0].NIC, spec.Wire)
	dev.Connect(client0.Links[1].NIC, replica.Links[0].NIC, spec.Wire)
	dev.Connect(client1.Links[0].NIC, primary.Links[1].NIC, spec.Wire)
	dev.Connect(client1.Links[1].NIC, replica.Links[1].NIC, spec.Wire)
	for i, s := range sys {
		s.InjectFaults(spec.FaultSeed+uint64(i), spec.FaultSpec)
		// HA always runs the reliable protocol: failover detection and
		// stale-incarnation rejection ride its stamps and retransmits.
		for _, n := range s.Links {
			n.EnableReliable()
		}
		if spec.DebugChecks {
			s.K.DebugChecks = true
			s.EnableWatchdog()
		}
		if spec.Observe {
			r := s.EnableObservation(0)
			r.SetHost(i)
		}
	}

	// Echo servers, re-installed by the reboot script so a crashed server
	// comes back serving.
	installEcho := func(s *kern.System) {
		st := s.NewTask("echo-server")
		sport := s.IPC.NewPort("echo")
		if clientsPer > 1 {
			sport.QueueLimit = 4 * clientsPer
		}
		for _, n := range s.Links {
			n.Export("echo", sport)
		}
		s.Start(st.NewThread("srv", &netEchoServer{sys: s, port: sport}, 20))
	}
	installEcho(primary)
	installEcho(replica)
	primary.OnReboot = installEcho
	replica.OnReboot = installEcho

	// Clients, also re-started by the reboot script: the program object
	// survives its machine's crash, so a rebooted client resumes at the
	// RPC it was on (with a fresh reply port — the old one died with the
	// old incarnation's IPC).
	var clis []*haClient
	startClients := func(s *kern.System, mine []*haClient) func(*kern.System) {
		boot := func(s *kern.System) {
			ct := s.NewTask("net-client")
			for _, cli := range mine {
				cli.reply = s.IPC.NewPort(cli.name + "-reply")
				cli.waiting = false
				cli.attempts = 0
				s.Start(ct.NewThread(cli.name, cli, 10))
			}
		}
		boot(s)
		return boot
	}
	for _, cm := range []*kern.System{client0, client1} {
		var mine []*haClient
		for j := 0; j < clientsPer; j++ {
			name := "cli"
			if cm == client1 {
				name = "cli-b"
			}
			if j > 0 {
				name = fmt.Sprintf("%s-%d", name, j)
			}
			cli := &haClient{sys: cm, name: name, bytes: msgBytes,
				rpcs: spec.RPCs, timeout: timeout}
			mine = append(mine, cli)
			clis = append(clis, cli)
		}
		cm.OnReboot = startClients(cm, mine)
	}

	// One disk reader per machine keeps the device layer busy, so a crash
	// lands on real in-flight I/O.
	var readers []*diskReader
	if spec.DiskReads > 0 {
		for _, s := range sys {
			task := s.NewTask("disk-reader")
			rd := &diskReader{sys: s, disk: s.Disk,
				bytes: spec.DiskReadBytes, reads: spec.DiskReads}
			readers = append(readers, rd)
			s.Start(task.NewThread("rd", rd, 12))
		}
	}

	res.Machines = sys
	res.Client, res.Server = client0, primary
	scheduleCrashes(sys, spec)
	return res, clis, readers
}
