// Open-loop multi-tenant load generator: the scale workload behind the
// O(active)-cost cluster driver. K tenants run thousands of client
// sessions spread across the cluster by the load balancer; each session
// generates arrivals on its own jittered open-loop schedule, sleeping
// through its think time as a blocked continuation, so the cluster
// carries blocked-thread populations in the 10^5..10^6 range while every
// machine's kernel-stack pool stays bounded by its processor count — the
// paper's space claim at cluster scale. Latency is charged from each
// op's intended arrival time, so a session that falls behind keeps
// accumulating the queueing delay in its histogram instead of silently
// pausing the load (no coordinated omission).
package workload

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// MTLoadSpec sizes the multi-tenant load run.
type MTLoadSpec struct {
	// Machines is the cluster size; must be even and >= 2. Machine 2p is
	// pair p's client host, machine 2p+1 its echo-service host.
	Machines int
	// Tenants is how many tenants MakeTenants builds.
	Tenants int
	// SessionsPerTenant is each tenant's cluster-wide session count
	// (DefaultSessionsPerMachine * Machines when 0).
	SessionsPerTenant int
	// Ops is how many RPCs each session completes.
	Ops int
	// ServerWorkers is the echo-service thread count per server machine.
	ServerWorkers int
	// Seed feeds every session's arrival-jitter RNG stream.
	Seed uint64
	// Warmup delays every session's first arrival so the whole
	// population is booted — and parked as blocked continuations —
	// before traffic starts. Defaults to a ramp sized to the largest
	// pair's session count; this is also the instant the memory census
	// reads the space claim at full scale.
	Warmup machine.Duration
	// Wire is the one-way NIC latency (dev.DefaultWireLatency if 0).
	Wire machine.Duration
	// Parallel drives the horizon rounds on the worker pool; results are
	// byte-identical to the sequential rounds.
	Parallel bool
	// DebugChecks arms the kernel invariant sweep on every machine and
	// the cluster driver's naive-sweep cross-check on every round.
	DebugChecks bool
}

// DefaultSessionsPerMachine scales the blocked-thread population with
// the cluster: at 256 machines and 4 tenants the default run holds
// ~10^5 concurrently blocked sessions.
const DefaultSessionsPerMachine = 100

// DefaultMTLoad returns the small smoke-test configuration.
func DefaultMTLoad() MTLoadSpec {
	return MTLoadSpec{Machines: 8, Tenants: 4, Ops: 2, Seed: 1}
}

// TenantStats aggregates one tenant's outcome across all its sessions.
type TenantStats struct {
	Name     string
	Sessions int
	Ops      uint64
	Attained uint64
	Hist     *obs.Histogram
}

// MTLoadResult reports one multi-tenant run.
type MTLoadResult struct {
	Spec     MTLoadSpec
	Machines []*kern.System
	Tenants  []TenantSpec
	// Placement[pair][tenant] is the balancer's session assignment.
	Placement [][]int
	PerTenant []TenantStats
	Steps     uint64
	Elapsed   machine.Duration
}

// tenantWakeDone resumes a session after its open-loop think sleep.
var tenantWakeDone = core.NewContinuation("tenant_think_done", func(e *core.Env) {
	e.K.ThreadSyscallReturn(e, 0)
})

// mtSession is one tenant session: an open-loop arrival generator that
// sleeps through each think gap as a blocked continuation, then issues
// one echo RPC and waits for the reply. The arrival schedule advances
// independently of completions: when a reply is late the next intended
// arrival is already in the past, the session skips the sleep, and the
// lateness lands in the latency histogram.
type mtSession struct {
	sys      *kern.System
	tenant   *TenantSpec
	tenantIx int
	proxy    *ipc.Port
	reply    *ipc.Port
	rng      *RNG
	hist     *obs.Histogram
	bytes    int
	ops      int

	done     int
	attained int
	intended machine.Time
	arriving bool

	sleepAct core.Action
	rpcAct   core.Action
}

func (s *mtSession) Next(e *core.Env, t *core.Thread) core.Action {
	if s.rpcAct.Invoke == nil {
		s.rpcAct = core.Syscall("mach_msg(tenant-rpc)", func(e *core.Env) {
			req := s.sys.IPC.NewMessage(1, s.bytes, nil, s.reply)
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: req, SendTo: s.proxy, ReceiveFrom: s.reply,
			})
		})
		s.sleepAct = core.Syscall("tenant-think", func(e *core.Env) {
			th := e.Cur()
			s.sys.K.Clock.Schedule(s.intended, "tenant-wake", func() {
				if th.State == core.StateWaiting {
					s.sys.K.Setrun(th)
				}
			})
			th.State = core.StateWaiting
			s.sys.K.Block(e, stats.BlockInternal, tenantWakeDone,
				func(e2 *core.Env) { e2.K.ThreadSyscallReturn(e2, 0) }, 96, "tenant-think")
		})
	}
	if m := s.sys.IPC.Received(t); m != nil {
		s.sys.IPC.FreeMessage(m)
		lat := uint64(s.sys.K.Clock.Now() - s.intended)
		s.hist.Observe(lat)
		if machine.Duration(lat) <= s.tenant.SLA {
			s.attained++
		}
		s.done++
	}
	if s.done >= s.ops {
		return core.Exit()
	}
	if !s.arriving {
		s.intended += machine.Time(s.rng.Burst(uint64(s.tenant.Think)))
		s.arriving = true
		if s.intended > s.sys.K.Clock.Now() {
			return s.sleepAct
		}
	}
	s.arriving = false
	return s.rpcAct
}

// RunMTLoad boots the cluster, places every tenant session, and drives
// the horizon rounds to quiescence. Fully deterministic: with the same
// spec the run is byte-identical regardless of spec.Parallel or
// GOMAXPROCS.
func RunMTLoad(flavor kern.Flavor, arch machine.Arch, spec MTLoadSpec) *MTLoadResult {
	if spec.Machines < 2 {
		spec.Machines = 2
	}
	if spec.Machines%2 != 0 {
		spec.Machines++
	}
	if spec.Tenants < 1 {
		spec.Tenants = 1
	}
	if spec.SessionsPerTenant <= 0 {
		spec.SessionsPerTenant = DefaultSessionsPerMachine * spec.Machines
	}
	if spec.Ops <= 0 {
		spec.Ops = 2
	}
	if spec.ServerWorkers <= 0 {
		spec.ServerWorkers = 4
	}

	pairs := spec.Machines / 2
	tenants := MakeTenants(spec.Tenants, spec.SessionsPerTenant)
	placement := placeSessions(tenants, pairs)
	if spec.Warmup <= 0 {
		// Booting a session costs a dispatch plus a blocking syscall on
		// the client machine's single processor; size the ramp so even
		// the busiest pair finishes booting while everyone else sleeps.
		maxPerPair := 0
		for p := 0; p < pairs; p++ {
			n := 0
			for ti := range tenants {
				n += placement[p][ti]
			}
			if n > maxPerPair {
				maxPerPair = n
			}
		}
		spec.Warmup = machine.Duration(5_000_000 + 250_000*maxPerPair)
	}
	res := &MTLoadResult{Spec: spec, Tenants: tenants, Placement: placement}

	cfg := kern.Config{Flavor: flavor, Arch: arch}
	var sessions []*mtSession
	for p := 0; p < pairs; p++ {
		a := kern.New(cfg)
		b := kern.New(cfg)
		dev.Connect(a.Net.NIC, b.Net.NIC, spec.Wire)
		if spec.DebugChecks {
			a.K.DebugChecks = true
			b.K.DebugChecks = true
		}
		// A small ring keeps 256-machine traces affordable; histograms
		// and the census are maintained online regardless.
		ra := a.EnableObservation(512)
		ra.SetHost(2 * p)
		rb := b.EnableObservation(512)
		rb.SetHost(2*p + 1)

		onPair := 0
		for ti := range tenants {
			onPair += placement[p][ti]
		}

		st := b.NewTask("echo-server")
		sport := b.IPC.NewPort("echo")
		// Every session on the pair can land a request in the same
		// wire-latency window.
		sport.QueueLimit = 2 * (onPair + 1)
		b.Net.Export("echo", sport)
		for w := 0; w < spec.ServerWorkers; w++ {
			name := "srv"
			if w > 0 {
				name = fmt.Sprintf("srv-%d", w)
			}
			b.Start(st.NewThread(name, &netEchoServer{sys: b, port: sport}, 20))
		}

		ct := a.NewTask("tenants")
		for ti := range tenants {
			tn := &tenants[ti]
			bytes := tn.MsgBytes
			if bytes < ipc.HeaderBytes {
				bytes = ipc.HeaderBytes
			}
			for j := 0; j < placement[p][ti]; j++ {
				s := &mtSession{
					sys: a, tenant: tn, tenantIx: ti,
					proxy: a.Net.ProxyFor("echo"),
					reply: a.IPC.NewPort(fmt.Sprintf("rp-%d-%d", ti, j)),
					rng: NewRNG(spec.Seed ^ uint64(p)<<40 ^
						uint64(ti)<<20 ^ uint64(j)),
					hist:     ra.Service("tenant " + tn.Name),
					bytes:    bytes,
					ops:      spec.Ops,
					intended: a.K.Clock.Now() + machine.Time(spec.Warmup),
				}
				sessions = append(sessions, s)
				a.Start(ct.NewThread(fmt.Sprintf("%s-%d", tn.Name, j), s, 10))
			}
		}

		res.Machines = append(res.Machines, a, b)
	}

	cluster := kern.NewCluster(res.Machines...)
	cluster.CrossCheck = spec.DebugChecks
	start := res.Machines[0].K.Clock.Now()
	res.Steps = cluster.Drive(spec.Parallel)
	res.Elapsed = machine.Duration(res.Machines[0].K.Clock.Now() - start)
	stampCensus(res.Machines)

	res.PerTenant = make([]TenantStats, len(tenants))
	for ti := range tenants {
		res.PerTenant[ti] = TenantStats{
			Name: tenants[ti].Name,
			Hist: &obs.Histogram{Name: "tenant " + tenants[ti].Name},
		}
	}
	for _, s := range sessions {
		ts := &res.PerTenant[s.tenantIx]
		ts.Sessions++
		ts.Ops += uint64(s.done)
		ts.Attained += uint64(s.attained)
	}
	for _, sys := range res.Machines {
		r := sys.K.Obs
		if r == nil {
			continue
		}
		for _, h := range r.ServiceHistograms() {
			for ti := range res.PerTenant {
				if h.Name == res.PerTenant[ti].Hist.Name {
					res.PerTenant[ti].Hist.Merge(h)
				}
			}
		}
	}
	return res
}

// WriteMTLoadReport prints the aggregate run report: the cluster
// headline, the per-tenant latency and SLA-attainment table, the load
// balancer's placement spread, and the cluster-wide memory census that
// carries the space claim (stacks bounded by processors while blocked
// threads scale with sessions). Aggregate-only by design — at hundreds
// of machines, per-machine sections would drown the signal. Pure
// function of the run.
func WriteMTLoadReport(w io.Writer, res *MTLoadResult) {
	spec := res.Spec
	pairs := spec.Machines / 2
	totalSessions := 0
	for _, t := range res.Tenants {
		totalSessions += t.Sessions
	}
	fmt.Fprintf(w, "multi-tenant load report\n")
	fmt.Fprintf(w, "========================\n")
	fmt.Fprintf(w, "machines %d (%d pairs), tenants %d, sessions %d, ops/session %d, server workers %d\n",
		spec.Machines, pairs, len(res.Tenants), totalSessions, spec.Ops, spec.ServerWorkers)
	fmt.Fprintf(w, "elapsed %s simulated, %d dispatcher steps\n\n",
		obs.FmtNS(uint64(res.Elapsed)), res.Steps)

	fmt.Fprintf(w, "%-14s %9s %9s  %-9s %-9s %-9s %-9s %s\n",
		"tenant", "sessions", "ops", "p50", "p99", "max", "SLA", "attained")
	for i := range res.PerTenant {
		ts := &res.PerTenant[i]
		tn := &res.Tenants[i]
		attained := 100.0
		if ts.Ops > 0 {
			attained = 100 * float64(ts.Attained) / float64(ts.Ops)
		}
		p50, p99, max := "-", "-", "-"
		if ts.Hist.Count > 0 {
			p50 = obs.FmtNS(ts.Hist.Quantile(0.50))
			p99 = obs.FmtNS(ts.Hist.Quantile(0.99))
			max = obs.FmtNS(ts.Hist.Max)
		}
		fmt.Fprintf(w, "%-14s %9d %9d  %-9s %-9s %-9s %-9s %.1f%%\n",
			ts.Name, ts.Sessions, ts.Ops, p50, p99, max,
			obs.FmtNS(uint64(tn.SLA)), attained)
	}

	minS, maxS := -1, 0
	for p := 0; p < pairs; p++ {
		n := 0
		for ti := range res.Tenants {
			n += res.Placement[p][ti]
		}
		if minS < 0 || n < minS {
			minS = n
		}
		if n > maxS {
			maxS = n
		}
	}
	if minS < 0 {
		minS = 0
	}
	fmt.Fprintf(w, "\nload balancer: sessions per pair min %d / max %d (spread %d)\n",
		minS, maxS, maxS-minS)

	var stacks, blocked, live uint64
	maxStacks := 0
	for _, sys := range res.Machines {
		mc := sys.MemoryCensus()
		stacks += uint64(mc.StackHighWater)
		blocked += uint64(mc.BlockedHighWater)
		live += uint64(mc.LiveThreads)
		if mc.StackHighWater > maxStacks {
			maxStacks = mc.StackHighWater
		}
	}
	fmt.Fprintf(w, "memory census (cluster): %d stacks high-water vs %d blocked threads high-water (%d live threads); max per-machine stacks %d\n",
		stacks, blocked, live, maxStacks)
}

// MTLoadReport runs the workload and renders the report as a string —
// the registry and machsim entry point.
func MTLoadReport(flavor kern.Flavor, arch machine.Arch, spec MTLoadSpec) string {
	res := RunMTLoad(flavor, arch, spec)
	var b strings.Builder
	WriteMTLoadReport(&b, res)
	return b.String()
}
