package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runScaled runs a workload at a fraction of its paper duration.
func runScaled(t *testing.T, flavor kern.Flavor, spec workload.Spec, scale float64) (*kern.System, *workload.Instance) {
	t.Helper()
	return workload.Run(flavor, machine.ArchToshiba5200, spec.Scale(scale), 12345)
}

func pct(part, whole uint64) float64 { return stats.Percent(part, whole) }

func TestCompileTestMix(t *testing.T) {
	sys, _ := runScaled(t, kern.MK40, workload.CompileTest(), 0.5)
	st := sys.K.Stats
	total := st.TotalBlocks()
	if total < 500 {
		t.Fatalf("too few blocks: %d", total)
	}
	// Paper (Table 1): receive 83.4%, fault 0.9%, preempt 7.7%,
	// internal 6.4%, no-discard 1.6%. Allow generous bands.
	if p := pct(st.BlocksWithDiscard[stats.BlockReceive], total); p < 75 || p > 90 {
		t.Errorf("receive %% = %.1f, want ~83", p)
	}
	if p := pct(st.BlocksWithDiscard[stats.BlockPreempt], total); p < 4 || p > 13 {
		t.Errorf("preempt %% = %.1f, want ~8", p)
	}
	if p := pct(st.BlocksWithDiscard[stats.BlockInternal], total); p < 3 || p > 11 {
		t.Errorf("internal %% = %.1f, want ~6", p)
	}
	if p := pct(st.TotalNoDiscards(), total); p < 0.5 || p > 3.5 {
		t.Errorf("no-discard %% = %.1f, want ~1.6", p)
	}
	// The headline: ~98%+ of blocks discard the stack.
	if p := pct(st.TotalDiscards(), total); p < 96.5 {
		t.Errorf("discard %% = %.1f, want >= 96.5", p)
	}
}

func TestKernelBuildMix(t *testing.T) {
	sys, _ := runScaled(t, kern.MK40, workload.KernelBuild(), 0.02)
	st := sys.K.Stats
	total := st.TotalBlocks()
	if total < 3000 {
		t.Fatalf("too few blocks: %d", total)
	}
	// Paper: receive 86.3%, preempt 4.9%, internal 8.4%, no-discard 0.1%.
	if p := pct(st.BlocksWithDiscard[stats.BlockReceive], total); p < 78 || p > 92 {
		t.Errorf("receive %% = %.1f, want ~86", p)
	}
	if p := pct(st.BlocksWithDiscard[stats.BlockInternal], total); p < 4 || p > 12 {
		t.Errorf("internal %% = %.1f, want ~8", p)
	}
	if p := pct(st.TotalNoDiscards(), total); p > 0.6 {
		t.Errorf("no-discard %% = %.1f, want ~0.1", p)
	}
	if p := pct(st.TotalDiscards(), total); p < 99 {
		t.Errorf("discard %% = %.1f, want >= 99 (paper: 99.9)", p)
	}
}

func TestDOSEmulationMix(t *testing.T) {
	sys, inst := runScaled(t, kern.MK40, workload.DOSEmulation(), 0.1)
	st := sys.K.Stats
	total := st.TotalBlocks()
	if total < 3000 {
		t.Fatalf("too few blocks: %d", total)
	}
	// Paper: receive 55.2%, exception 37.9%, preempt 5.3%, internal 1.6%.
	if p := pct(st.BlocksWithDiscard[stats.BlockReceive], total); p < 48 || p > 62 {
		t.Errorf("receive %% = %.1f, want ~55", p)
	}
	if p := pct(st.BlocksWithDiscard[stats.BlockException], total); p < 32 || p > 45 {
		t.Errorf("exception %% = %.1f, want ~38", p)
	}
	if p := pct(st.TotalDiscards(), total); p < 99.5 {
		t.Errorf("discard %% = %.1f, want ~100", p)
	}
	if inst.ExcServer == nil || inst.ExcServer.Handled == 0 {
		t.Fatal("exception server handled nothing")
	}
}

func TestTable2HandoffAndRecognition(t *testing.T) {
	// Paper (Table 2): handoff on 96.8-100% of blocks; recognition on
	// 60-86%.
	for _, spec := range workload.Specs() {
		scale := 0.2
		if spec.Name == "Kernel Build" {
			scale = 0.01
		}
		sys, _ := runScaled(t, kern.MK40, spec, scale)
		st := sys.K.Stats
		total := st.TotalBlocks()
		if h := pct(st.Handoffs, total); h < 93 {
			t.Errorf("%s: handoff %% = %.1f, want > 93", spec.Name, h)
		}
		if r := pct(st.Recognitions, total); r < 55 {
			t.Errorf("%s: recognition %% = %.1f, want > 55", spec.Name, r)
		}
	}
}

func TestSteadyStateStackCount(t *testing.T) {
	// §3.4: on average about 2 kernel stacks (running thread + the
	// process-model callout thread), against 8+ kernel-level threads.
	sys, _ := runScaled(t, kern.MK40, workload.CompileTest(), 0.25)
	avg := sys.K.Stacks.AverageInUse()
	if avg < 1.5 || avg > 2.7 {
		t.Errorf("average stacks = %.3f, want ~2 (paper: 2.002)", avg)
	}
	if sys.K.Stacks.MaxInUse() > 6 {
		t.Errorf("max stacks = %d, want <= 6 (paper worst case)", sys.K.Stacks.MaxInUse())
	}
	if sys.K.LiveThreads() < 6 {
		t.Errorf("thread population too small: %d", sys.K.LiveThreads())
	}
}

func TestProcessModelKernelStackCount(t *testing.T) {
	// The same workload on MK32 keeps one stack per thread.
	sys, _ := runScaled(t, kern.MK32, workload.CompileTest(), 0.1)
	threads := sys.K.LiveThreads()
	if got := sys.K.Stacks.InUse(); got < threads {
		t.Errorf("MK32 stacks = %d for %d threads; want one per thread", got, threads)
	}
	if sys.K.Stats.TotalDiscards() != 0 {
		t.Error("MK32 recorded stack discards")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() (uint64, machine.Time) {
		sys, _ := runScaled(t, kern.MK40, workload.DOSEmulation(), 0.02)
		return sys.K.Stats.TotalBlocks(), sys.K.Clock.Now()
	}
	b1, t1 := run()
	b2, t2 := run()
	if b1 != b2 || t1 != t2 {
		t.Fatalf("nondeterministic workload: (%d,%v) vs (%d,%v)", b1, t1, b2, t2)
	}
}

func TestWorkloadRunsOnAllFlavors(t *testing.T) {
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32, kern.Mach25} {
		sys, inst := runScaled(t, flavor, workload.DOSEmulation(), 0.01)
		var handled uint64
		for _, s := range inst.Servers {
			handled += s.Handled
		}
		if handled == 0 || inst.ExcServer.Handled == 0 {
			t.Errorf("%v: servers idle (rpc=%d exc=%d)", flavor, handled, inst.ExcServer.Handled)
		}
		if sys.K.Stats.TotalBlocks() == 0 {
			t.Errorf("%v: no blocks", flavor)
		}
	}
}

func TestScaleHalvesDuration(t *testing.T) {
	spec := workload.CompileTest()
	half := spec.Scale(0.5)
	if half.Duration != spec.Duration/2 {
		t.Fatalf("Scale: %v -> %v", spec.Duration, half.Duration)
	}
}

func TestRNGDeterminismAndRanges(t *testing.T) {
	a, b := workload.NewRNG(7), workload.NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	r := workload.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Burst(100); v < 50 || v >= 150 {
			t.Fatalf("Burst out of range: %d", v)
		}
	}
	if r.Hit(0) {
		t.Fatal("Hit(0) fired")
	}
	if !r.Hit(10000) {
		t.Fatal("Hit(10000) missed")
	}
}

func TestClientOpMixRoughlyMatchesWeights(t *testing.T) {
	_, inst := runScaled(t, kern.MK40, workload.DOSEmulation(), 0.05)
	var rpcs, excs uint64
	for _, c := range inst.Clients {
		rpcs += c.RPCs
		excs += c.Exceptions
	}
	if excs == 0 || rpcs == 0 {
		t.Fatalf("ops missing: rpc=%d exc=%d", rpcs, excs)
	}
	// Wing commander issues exceptions:RPCs at 50:10; the screen
	// refresher adds RPCs, so the global ratio is lower but still >> 1.
	ratio := float64(excs) / float64(rpcs)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("exception/RPC ratio = %.2f", ratio)
	}
}

func TestClientRequiresOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("client with no ops did not panic")
		}
	}()
	workload.NewClient(nil, workload.ClientSpec{}, nil, nil, workload.NewRNG(1))
}

var _ core.UserProgram = (*workload.Client)(nil)
var _ core.UserProgram = (*workload.Server)(nil)
var _ core.UserProgram = (*workload.ExcServer)(nil)
