// KV is the replicated-service workload: four machines — two client
// machines and two replica servers — running the svc package's sharded
// key/value store. Each client machine hosts caller threads that route
// Gets and Puts to the believed leader of each key's shard group; the
// replicas replicate synchronously, renew epoch-numbered leases, and
// elect a new leader when the membership layer declares the old one
// dead. A run with `-crash primary@...:reboot+...` therefore completes
// 100% of its client operations: callers fail over to the elected
// backup, and the rebooted primary's rejoin probe is fenced before it
// can serve with stale leases.
package workload

import (
	"fmt"
	"io"

	"repro/internal/check"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/svc"
)

// KVSpec sizes the replicated KV workload.
type KVSpec struct {
	// Ops is how many operations each caller thread issues; Clients the
	// caller threads per client machine (two client machines total).
	Ops     int
	Clients int
	// Shards and Groups shape the shard map (svc defaults if zero).
	Shards int
	Groups int
	// Keyspan is each caller's private key range; PutPer10k the write mix.
	Keyspan   uint64
	PutPer10k int
	// Wire is the one-way NIC latency (dev.DefaultWireLatency if 0).
	Wire machine.Duration
	// Seed drives the operation scripts (keys, values, read/write mix).
	Seed uint64
	// FaultSeed/FaultSpec are the per-machine fault plan; Crashes in the
	// spec name machines 0..3 (client, primary, backup, client).
	FaultSeed uint64
	FaultSpec fault.Spec
	// RPCTimeout overrides the callers' per-attempt receive timeout;
	// RenewEvery the replicas' lease renewal period; IdleExit their
	// no-traffic give-up horizon; DeadAfter the links' membership
	// silence deadline. When zero each defaults to the svc/dev constant
	// scaled by the architecture's speed relative to the DS3100 — a
	// liveness deadline tuned on the baseline machine would misfire on
	// one several times slower, where honest queueing delays under load
	// routinely exceed it.
	RPCTimeout machine.Duration
	RenewEvery machine.Duration
	IdleExit   machine.Duration
	DeadAfter  machine.Duration
	// SampleEvery is the head-sampling rate for causal tracing: keep the
	// 1-in-N hash class of operation trace ids. 0 or 1 samples every op.
	SampleEvery int
	// Parallel runs the cluster's horizon rounds with one goroutine per
	// machine; results are byte-identical to the sequential rounds.
	Parallel bool
	// DebugChecks arms the kernel invariant sweep and the watchdog.
	DebugChecks bool
	// Break disables the replicas' rejoin-merge and deposed-stall safety
	// machinery — the deliberately broken build the linearizability
	// checker exists to catch. Never set outside tests and machsim's
	// -breakkv flag.
	Break bool
	// Overload arms the end-to-end overload controls (-overload on):
	// client deadlines stamped into the wire header, per-client retry
	// budgets, a breaker per client machine, and deadline shedding plus
	// CoDel admission at the replicas. The zero value leaves every
	// legacy path untouched.
	Overload overload.Policy
	// BreakOverload runs the deliberately broken replica that applies an
	// already-expired write before claiming it was shed — the phantom
	// write the linearizability checker must flag. Never set outside
	// tests and machsim's -breakoverload flag.
	BreakOverload bool
}

// svcTimeouts is the resolved timeout provisioning for a service
// cluster on one architecture.
type svcTimeouts struct {
	rpcTimeout machine.Duration
	renewEvery machine.Duration
	idleExit   machine.Duration
	deadAfter  machine.Duration
}

// provisionTimeouts fills every unset timeout with its default scaled
// by how much slower the target architecture runs a reference kernel
// copy than the DS3100 baseline. The scale is a pure function of the
// cost models, so every run (and every driver) computes the same
// values.
func provisionTimeouts(arch machine.Arch, rpc, renew, idle, dead machine.Duration) svcTimeouts {
	base := machine.NewCostModel(machine.ArchDS3100)
	m := machine.NewCostModel(arch)
	f := m.TimeMicros(machine.WordCopyCost) / base.TimeMicros(machine.WordCopyCost)
	if f < 1 {
		f = 1
	}
	scaled := func(d machine.Duration) machine.Duration {
		return machine.Duration(float64(d) * f)
	}
	t := svcTimeouts{rpcTimeout: rpc, renewEvery: renew, idleExit: idle, deadAfter: dead}
	if t.rpcTimeout == 0 {
		t.rpcTimeout = scaled(svc.DefaultCallTimeout)
	}
	if t.renewEvery == 0 {
		t.renewEvery = scaled(svc.DefaultRenewEvery)
	}
	if t.idleExit == 0 {
		t.idleExit = scaled(svc.DefaultIdleExit)
	}
	if t.deadAfter == 0 {
		t.deadAfter = scaled(dev.DefaultDeadAfter)
	}
	return t
}

// DefaultKV returns the standard replicated KV run: two client machines
// with two callers each, a 40% write mix, and enough operations that a
// mid-run crash lands inside real traffic.
func DefaultKV() KVSpec {
	return KVSpec{
		Ops:       60,
		Clients:   2,
		Keyspan:   32,
		PutPer10k: 4000,
		Seed:      1991,
	}
}

// KVResult reports one replicated KV run.
type KVResult struct {
	Machines []*kern.System
	// Replicas are the two durable replica configurations (rank order);
	// their Stats span every incarnation.
	Replicas [svc.NumRanks]*svc.ReplicaConfig

	// Completed/Failed/Mismatches aggregate the caller threads.
	Completed  int
	Failed     int
	Mismatches uint64
	Redirects  uint64
	Failovers  uint64
	Salvaged   uint64

	Elapsed  machine.Duration
	Steps    uint64
	Recovery RecoveryStats

	// History is every caller's recorded operation log, merged in caller
	// creation order; Check is the linearizability verdict over it and
	// SplitBrain any (group, epoch) pairs both ranks acked writes under.
	History    []check.Op
	Check      check.Result
	SplitBrain []check.AckKey
	// Topo is the scheduled topology-fault plan (nil when the spec has
	// no partition/link/gray rules).
	Topo *fault.Topology
	// Policy echoes the armed overload policy (nil on legacy runs);
	// ClientOv holds each client machine's shedding scoreboard.
	Policy   *overload.Policy
	ClientOv []*overload.Stats
}

// ClientOvTotals sums the client machines' shedding counters.
func (r *KVResult) ClientOvTotals() overload.Stats {
	var t overload.Stats
	for _, s := range r.ClientOv {
		t.Expired += s.Expired
		t.Rejected += s.Rejected
		t.BudgetDenied += s.BudgetDenied
		t.BreakerFastFail += s.BreakerFastFail
		t.BreakerOpens += s.BreakerOpens
	}
	return t
}

// ReplicaOvTotals sums the replica tier's shedding counters.
func (r *KVResult) ReplicaOvTotals() overload.Stats {
	var t overload.Stats
	for _, cfg := range r.Replicas {
		if cfg == nil || cfg.Ov == nil {
			continue
		}
		t.Admitted += cfg.Ov.Admitted
		t.Expired += cfg.Ov.Expired
		t.Rejected += cfg.Ov.Rejected
	}
	return t
}

// ReplicaTotals sums the two replicas' service counters.
func (r *KVResult) ReplicaTotals() svc.ReplicaStats {
	var t svc.ReplicaStats
	for _, cfg := range r.Replicas {
		if cfg == nil || cfg.Stats == nil {
			continue
		}
		s := cfg.Stats
		t.Elections += s.Elections
		t.FencingRejections += s.FencingRejections
		t.Deposed += s.Deposed
		t.SoloAcks += s.SoloAcks
		t.Syncs += s.Syncs
		t.RejoinsServed += s.RejoinsServed
		t.Gets += s.Gets
		t.Puts += s.Puts
		t.Replicated += s.Replicated
		t.Merged += s.Merged
		t.Stalled += s.Stalled
	}
	return t
}

// kvOps renders one caller's deterministic operation script. Every
// caller owns the key range tagged with its global id, so Track-mode
// consistency checking is sound, and the first reference to each key may
// be a Get (a not-found read of an unwritten key is not a mismatch).
func kvOps(seed uint64, clientID int, ops int, keyspan uint64, putPer10k int) []svc.KVOp {
	if keyspan == 0 {
		keyspan = 32
	}
	rng := NewRNG(seed + uint64(clientID)*0x9e3779b9)
	out := make([]svc.KVOp, ops)
	for i := range out {
		key := uint64(clientID)<<32 | rng.Uint64n(keyspan)
		if rng.Hit(putPer10k) {
			out[i] = svc.KVOp{Op: svc.OpPut, Key: key, Val: rng.Next()}
		} else {
			out[i] = svc.KVOp{Op: svc.OpGet, Key: key}
		}
	}
	return out
}

// scheduleCrashPlan applies a fault plan's machine crashes to any
// cluster (the workload-agnostic half of scheduleCrashes).
func scheduleCrashPlan(machines []*kern.System, crashes []fault.Crash) {
	for _, cr := range crashes {
		if cr.Machine >= 0 && cr.Machine < len(machines) {
			machines[cr.Machine].ScheduleCrash(cr.At, cr.RebootAfter)
		}
	}
}

// RunKV boots and drives the replicated KV cluster.
func RunKV(flavor kern.Flavor, arch machine.Arch, spec KVSpec) *KVResult {
	res, clis := bootKV(flavor, arch, spec)
	cluster := kern.NewCluster(res.Machines...)
	cluster.CrossCheck = spec.DebugChecks
	start := res.Machines[0].K.Clock.Now()
	res.Steps = cluster.Drive(spec.Parallel)
	for _, c := range clis {
		res.Completed += c.Stats.Done
		res.Failed += c.Stats.Failed
		res.Mismatches += c.Stats.Mismatches
		res.Redirects += c.Stats.Redirects
		res.Failovers += c.Stats.Failovers
		res.Salvaged += c.Stats.Salvaged
	}
	res.Elapsed = machine.Duration(res.Machines[0].K.Clock.Now() - start)
	res.Recovery.fill(res.Machines)
	res.Recovery.Failovers = res.Failovers
	res.Recovery.Salvaged = res.Salvaged
	res.Recovery.Failed = uint64(res.Failed)
	for _, c := range clis {
		res.History = append(res.History, c.History...)
	}
	res.Check = check.Linearizable(res.History)
	logs := make([]map[check.AckKey]uint64, 0, svc.NumRanks)
	for _, cfg := range res.Replicas {
		if cfg != nil {
			logs = append(logs, cfg.AckLog)
		}
	}
	res.SplitBrain = check.SplitBrain(logs)
	stampCensus(res.Machines)
	return res
}

// bootKV builds the four-machine KV cluster: machines 0 and 3 are
// clients, 1 and 2 the rank-0 and rank-1 replicas. Clients reach rank 0
// on Links[0] and rank 1 on Links[1]; the replicas reach each other on
// Links[2], their replication and rejoin channel. Every link runs the
// reliable protocol — leases, elections and fencing all ride its
// membership stamps.
func bootKV(flavor kern.Flavor, arch machine.Arch, spec KVSpec) (*KVResult, []*svc.Caller) {
	cfg := kern.Config{Flavor: flavor, Arch: arch}
	clientsPer := spec.Clients
	if clientsPer <= 0 {
		clientsPer = 1
	}
	ops := spec.Ops
	if ops <= 0 {
		ops = 60
	}

	res := &KVResult{}
	sys := make([]*kern.System, 4)
	for i := range sys {
		sys[i] = kern.New(cfg)
	}
	client0, rank0, rank1, client1 := sys[0], sys[1], sys[2], sys[3]
	client0.AddLink()
	client1.AddLink()
	rank0.AddLink()
	rank0.AddLink()
	rank1.AddLink()
	rank1.AddLink()
	dev.Connect(client0.Links[0].NIC, rank0.Links[0].NIC, spec.Wire)
	dev.Connect(client0.Links[1].NIC, rank1.Links[0].NIC, spec.Wire)
	dev.Connect(client1.Links[0].NIC, rank0.Links[1].NIC, spec.Wire)
	dev.Connect(client1.Links[1].NIC, rank1.Links[1].NIC, spec.Wire)
	dev.Connect(rank0.Links[2].NIC, rank1.Links[2].NIC, spec.Wire)
	tmo := provisionTimeouts(arch, spec.RPCTimeout, spec.RenewEvery, spec.IdleExit, spec.DeadAfter)
	res.Topo = fault.NewTopology(spec.FaultSpec)
	for i, s := range sys {
		s.InjectFaults(spec.FaultSeed+uint64(i), spec.FaultSpec)
		s.InstallTopology(i, res.Topo)
		for _, n := range s.Links {
			n.EnableReliable()
			n.DeadAfter = tmo.deadAfter
		}
		if spec.DebugChecks {
			s.K.DebugChecks = true
			s.EnableWatchdog()
		}
		// The service histograms (kv.op, kv.replicate) live on the
		// recorder, so observation is always on for this workload; the
		// host index salts span ids so they never collide across machines.
		r := s.EnableObservation(0)
		r.SetHost(i)
		r.SetSpanSampling(spec.SampleEvery)
	}

	smap := svc.NewShardMap(spec.Shards, spec.Groups)

	// Replicas: the durable config (leases, done bits, stats) is created
	// once here; RegisterService re-runs the installer on every warm
	// reboot, so a crashed replica comes back in recovery and rejoins.
	for rank, s := range []*kern.System{rank0, rank1} {
		rcfg := &svc.ReplicaConfig{
			Rank: rank, PeerRank: svc.NumRanks - 1 - rank,
			Map: smap, PeerLink: 2, Clients: 2 * clientsPer,
			RenewEvery: tmo.renewEvery, IdleExit: tmo.idleExit,
			Break:    spec.Break,
			Overload: spec.Overload, BreakOverload: spec.BreakOverload,
		}
		res.Replicas[rank] = rcfg
		s.RegisterService("kv-replica", func(s *kern.System) {
			svc.InstallReplica(s, rcfg)
		})
	}

	// Callers: the program objects are durable (script position, acked
	// map, stats survive their machine's crash); the installer re-arms
	// each with a fresh reply port and thread per incarnation.
	pol := spec.Overload
	if pol.Enabled {
		res.Policy = &pol
	}
	var clis []*svc.Caller
	mkClients := func(s *kern.System, base int, tag string) {
		// Overload state shared within one client machine only: the
		// breaker and scoreboard are per machine (the parallel driver
		// serializes a machine's threads), retry budgets per caller.
		var ov *overload.Stats
		var brk *overload.Breaker
		if pol.Enabled {
			ov = &overload.Stats{}
			brk = overload.NewBreaker(pol.Breaker, pol.Cooldown, spec.Seed^uint64(base+1)*0x9e3779b97f4a7c15)
			res.ClientOv = append(res.ClientOv, ov)
		}
		mine := make([]*svc.Caller, clientsPer)
		for j := 0; j < clientsPer; j++ {
			id := base + j
			cli := &svc.Caller{
				Sys: s, Name: fmt.Sprintf("%s%d", tag, j), ID: id,
				Map: smap, Links: [svc.NumRanks]int{0, 1},
				Timeout: tmo.rpcTimeout, HistName: "kv.op",
				Ops:      kvOps(spec.Seed, id, ops, spec.Keyspan, spec.PutPer10k),
				Track:    true,
				Record:   true,
				Overload: &pol, Breaker: brk, OvStats: ov,
			}
			if pol.Enabled {
				cli.Budget = overload.NewRetryBudget(pol.Budget, pol.Refill)
			}
			mine[j] = cli
			clis = append(clis, cli)
		}
		s.RegisterService("kv-clients", func(s *kern.System) {
			ct := s.NewTask("kv-client")
			for _, c := range mine {
				c.Reset(s)
				s.Start(ct.NewThread(c.Name, c, 10))
			}
		})
	}
	mkClients(client0, 0, "kv-cli")
	mkClients(client1, clientsPer, "kv-cli-b")

	res.Machines = sys
	scheduleCrashPlan(sys, spec.FaultSpec.Crashes)
	return res, clis
}

// kvMachineName labels the KV topology's machines.
func kvMachineName(i int) string {
	switch i {
	case 0:
		return "machine 0 (client)"
	case 1:
		return "machine 1 (kv primary)"
	case 2:
		return "machine 2 (kv backup)"
	default:
		return fmt.Sprintf("machine %d (client)", i)
	}
}

// writeServiceLatency prints one merged-across-machines latency line per
// service tier, with per-tier throughput against the run's elapsed time.
func writeServiceLatency(w io.Writer, machines []*kern.System, elapsed machine.Duration, tiers []string) {
	fmt.Fprintf(w, "\nservice latency (all machines):\n")
	for _, name := range tiers {
		m := &obs.Histogram{Name: name}
		for _, sys := range machines {
			if r := sys.K.Obs; r == nil {
				continue
			} else {
				for _, h := range r.ServiceHistograms() {
					if h.Name == name {
						m.Merge(h)
					}
				}
			}
		}
		if m.Count == 0 {
			fmt.Fprintf(w, "  %-14s (no samples)\n", name)
			continue
		}
		rate := 0.0
		if elapsed > 0 {
			rate = float64(m.Count) / (float64(elapsed) / 1e6)
		}
		fmt.Fprintf(w, "  %-14s count %d (%.1f/ms), p50 %s, p99 %s, max %s\n",
			name, m.Count, rate,
			obs.FmtNS(m.Quantile(0.50)), obs.FmtNS(m.Quantile(0.99)), obs.FmtNS(m.Max))
	}
}

// WriteKVReport prints the replicated KV run in machsim's output format:
// the service-level headline and counters, the merged per-tier latency
// lines, then the standard per-machine sections. Pure function of the
// run — sequential and parallel drivers produce identical bytes.
func WriteKVReport(w io.Writer, flavor kern.Flavor, arch machine.Arch, res *KVResult, opt NetRPCReportOptions) {
	fmt.Fprintf(w, "KV on %v/%v — %d client ops completed (%d failed, %d mismatches) in %.2f simulated ms (%d cluster steps)\n",
		flavor, arch, res.Completed, res.Failed, res.Mismatches,
		float64(res.Elapsed)/1e6, res.Steps)
	t := res.ReplicaTotals()
	fmt.Fprintf(w, "services: %d elections, %d fencing rejections, %d deposed, %d rejoins served, %d syncs\n",
		t.Elections, t.FencingRejections, t.Deposed, t.RejoinsServed, t.Syncs)
	fmt.Fprintf(w, "  leader gets %d, puts %d, replicated %d, solo acks %d, merged %d, stalled %d\n",
		t.Gets, t.Puts, t.Replicated, t.SoloAcks, t.Merged, t.Stalled)
	fmt.Fprintf(w, "  client redirects %d, failovers %d, ops salvaged %d\n",
		res.Redirects, res.Failovers, res.Salvaged)
	if res.Policy != nil {
		co, ro := res.ClientOvTotals(), res.ReplicaOvTotals()
		fmt.Fprintf(w, "overload: %s\n", res.Policy)
		fmt.Fprintf(w, "  client: %d expired, %d rejected, %d budget-denied, %d breaker-fastfail, %d breaker-opens\n",
			co.Expired, co.Rejected, co.BudgetDenied, co.BreakerFastFail, co.BreakerOpens)
		fmt.Fprintf(w, "  replicas: %d admitted, %d expired, %d rejected\n",
			ro.Admitted, ro.Expired, ro.Rejected)
	}
	fmt.Fprintf(w, "checker: %s; split brain: %s\n", res.Check, splitBrainStr(res.SplitBrain))
	writeServiceLatency(w, res.Machines, res.Elapsed, []string{"kv.op", "kv.replicate"})
	writeCritPathSection(w, res.Machines)
	for i, sys := range res.Machines {
		writeMachineSection(w, kvMachineName(i), sys, opt)
	}
	if res.Recovery.Crashes > 0 || opt.Failover || res.Topo != nil {
		writeRecoveryBody(w, res.Recovery, res.Machines)
		writeNemesisBody(w, res.Topo, res.Machines)
	}
}

// splitBrainStr renders the split-brain verdict for the report headline.
func splitBrainStr(bad []check.AckKey) string {
	if len(bad) == 0 {
		return "none"
	}
	s := fmt.Sprintf("%d same-epoch double-acks (first: group %d epoch %d)",
		len(bad), bad[0].Group, bad[0].Epoch)
	return s
}

// writeNemesisBody prints the scheduled topology-fault timeline and what
// each machine's NICs actually enforced — the partition timeline of the
// recovery section. No-op when the run had no topology schedule.
func writeNemesisBody(w io.Writer, topo *fault.Topology, machines []*kern.System) {
	if topo == nil {
		return
	}
	fmt.Fprintf(w, "\nnemesis schedule:\n")
	for _, line := range topo.Windows() {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprintf(w, "  enforced at the link plane:\n")
	for i, sys := range machines {
		var severed, delayed uint64
		for _, n := range sys.Links {
			severed += n.NIC.Severed
			delayed += n.NIC.LinkDelayed
		}
		fmt.Fprintf(w, "    machine %d: %d packets severed, %d link-delayed\n",
			i, severed, delayed)
	}
}
