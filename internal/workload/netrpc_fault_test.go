package workload_test

import (
	"testing"

	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestLossyNetRPCCompletes is the robustness acceptance run: under 10%
// injected packet loss plus device failures and latency spikes, every
// cross-machine RPC still completes, carried by retransmission and the
// device retry path, and the invariant sweep stays clean the whole way.
func TestLossyNetRPCCompletes(t *testing.T) {
	spec := workload.LossyNetRPC()
	res := workload.RunNetRPC(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != spec.RPCs {
		t.Fatalf("completed %d of %d RPCs under loss", res.Completed, spec.RPCs)
	}
	for i, n := range res.DiskReadsDone {
		if n != spec.DiskReads {
			t.Fatalf("machine %d finished %d of %d disk reads", i, n, spec.DiskReads)
		}
	}
	for _, sys := range []*kern.System{res.Client, res.Server} {
		fs := sys.FaultStats()
		if fs.Drops == 0 {
			t.Fatal("no packets dropped — the lossy run injected nothing")
		}
		if sys.Net.UnackedLen() != 0 {
			t.Fatalf("%d packets still unacked at quiescence", sys.Net.UnackedLen())
		}
		if sys.Net.Lost != 0 {
			t.Fatalf("%d packets abandoned under recoverable loss", sys.Net.Lost)
		}
		if sys.K.Stats.InvariantPasses == 0 {
			t.Fatal("invariant sweep never ran despite DebugChecks")
		}
		sys.K.MustValidate()
	}
	if res.Client.Net.Retransmits+res.Server.Net.Retransmits == 0 {
		t.Fatal("no retransmissions despite 10% loss")
	}
}

// TestNetRPCLossSweep sweeps the injected packet-loss rate and requires
// every RPC to complete at each point — latency degrades under loss,
// delivery does not. Run with -v for the EXPERIMENTS.md throughput
// table.
func TestNetRPCLossSweep(t *testing.T) {
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		spec := workload.DefaultNetRPC()
		spec.FaultSeed = 1991
		spec.FaultSpec.DropProb = loss
		spec.DebugChecks = true
		res := workload.RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
		if res.Completed != spec.RPCs {
			t.Fatalf("loss %.0f%%: completed %d of %d RPCs", loss*100, res.Completed, spec.RPCs)
		}
		rexmit := res.Client.Net.Retransmits + res.Server.Net.Retransmits
		if loss > 0 && rexmit == 0 {
			t.Fatalf("loss %.0f%%: no retransmissions", loss*100)
		}
		res.Client.K.MustValidate()
		res.Server.K.MustValidate()
		t.Logf("loss %3.0f%%: %d RPCs in %7.2f ms, %5.1f RPC/s, %d retransmits",
			loss*100, res.Completed, float64(res.Elapsed)/1e6,
			float64(res.Completed)/res.Elapsed.Seconds(), rexmit)
	}
}

// TestLossyNetRPCDeterminism runs the lossy workload twice with the same
// seed and requires bit-identical outcomes — timing, fault history, and
// recovery traffic all included.
func TestLossyNetRPCDeterminism(t *testing.T) {
	type trace struct {
		completed  int
		steps      uint64
		elapsed    machine.Duration
		faultsA    string
		faultsB    string
		rexmits    uint64
		invariants uint64
	}
	run := func() trace {
		res := workload.RunNetRPC(kern.MK40, machine.ArchDS3100, workload.LossyNetRPC())
		return trace{
			completed:  res.Completed,
			steps:      res.Steps,
			elapsed:    res.Elapsed,
			faultsA:    res.Client.FaultStats().String(),
			faultsB:    res.Server.FaultStats().String(),
			rexmits:    res.Client.Net.Retransmits + res.Server.Net.Retransmits,
			invariants: res.Client.K.Stats.InvariantPasses + res.Server.K.Stats.InvariantPasses,
		}
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("lossy runs diverged:\n  %+v\n  %+v", t1, t2)
	}
}
