// The fault-schedule fuzzer: generate random nemesis schedules from a
// seed, run the replicated KV workload under each, and check every
// client history for linearizability and every ack log for split brain.
// The simulator is deterministic, so a violating schedule is not a flaky
// repro — the fuzzer prints the exact `-faults seed:spec` argument that
// re-runs it, after greedily shrinking the schedule to a minimal set of
// rules that still violates.
package workload

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/overload"
)

// FuzzKVOptions configures one fuzzing campaign.
type FuzzKVOptions struct {
	Flavor kern.Flavor
	Arch   machine.Arch
	// Seed names the campaign; schedule i derives its own seed from it.
	Seed uint64
	// Count is how many schedules to generate and check.
	Count int
	// Parallel drives each run's cluster with the parallel driver.
	Parallel bool
	// Break runs the deliberately broken replicas (KVSpec.Break) — the
	// checker-must-catch-this mode.
	Break bool
	// Overload arms the overload controls on every schedule's run, so the
	// campaign also fuzzes the shedding paths (deadline expiry, admission
	// rejection, breaker fast-fails) against the same safety properties:
	// shed ops must be definite no-ops.
	Overload overload.Policy
	// BreakOverload runs the replica that applies already-expired writes
	// before claiming they were shed (KVSpec.BreakOverload) — the armed
	// campaign's checker-must-catch-this mode.
	BreakOverload bool
	// OutDir, when nonempty, receives one history dump per schedule.
	OutDir string
	// Out receives progress lines (io.Discard when nil).
	Out io.Writer
}

// FuzzKVResult summarizes a campaign.
type FuzzKVResult struct {
	Ran        int
	Violations int
	// MinSpec is the first violation's shrunken reproducing rule list,
	// and MinSeed the fault seed that pairs with it ("" / 0 when clean).
	MinSpec string
	MinSeed uint64
}

// fuzzVerdict is one run's outcome against the safety properties. Failed
// operations are NOT a violation — abandoning an op during a long
// partition is legal; claiming it succeeded with the wrong value is not.
type fuzzVerdict struct {
	res *KVResult
	bad bool
	why string
}

func fuzzRun(opt FuzzKVOptions, faultSeed uint64, rules []string) (fuzzVerdict, error) {
	spec := DefaultKV()
	spec.Parallel = opt.Parallel
	spec.Break = opt.Break
	spec.Overload = opt.Overload
	spec.BreakOverload = opt.BreakOverload
	if opt.BreakOverload {
		// The phantom-write bug only fires when an expired write and a
		// later read of the same key collide; the default script's key
		// space is too sparse to catch it reliably, so armed break
		// campaigns use the denser mix (same shape as kvOverloadSpec).
		spec.Ops = 120
		spec.Keyspan = 8
		spec.PutPer10k = 5000
	}
	spec.FaultSeed = faultSeed
	if len(rules) > 0 {
		fs, err := fault.ParseSpec(strings.Join(rules, ","))
		if err != nil {
			return fuzzVerdict{}, err
		}
		spec.FaultSpec = fs
	}
	res := RunKV(opt.Flavor, opt.Arch, spec)
	v := fuzzVerdict{res: res}
	switch {
	case !res.Check.Linearizable:
		v.bad, v.why = true, res.Check.String()
	case len(res.SplitBrain) > 0:
		v.bad, v.why = true, fmt.Sprintf("split brain: %s", splitBrainStr(res.SplitBrain))
	case res.Mismatches > 0:
		v.bad, v.why = true, fmt.Sprintf("%d acked-put/get mismatches", res.Mismatches)
	}
	return v, nil
}

// fuzzSchedule renders schedule i of a campaign as -faults grammar rules.
// Windows start early (10-45ms) and stay short (10-40ms) so the heal
// lands while client traffic is still running — the post-heal
// reconciliation is where histories go wrong, and a fault that outlives
// the workload tests nothing. At most one probabilistic rule is emitted,
// since ParseSpec rejects duplicate probabilistic keys.
func fuzzSchedule(campaign uint64, i int) (uint64, []string) {
	seed := campaign ^ uint64(i+1)*0x9e3779b97f4a7c15
	rng := NewRNG(seed)
	window := func() string {
		at := 10 + rng.Intn(36)  // ms
		dur := 10 + rng.Intn(31) // ms
		return fmt.Sprintf("@%dms+%dms", at, dur)
	}
	partitions := []string{"1|0.2.3", "2|0.1.3", "0.1|2.3", "3|0.1.2"}
	n := 1 + rng.Intn(3)
	rules := make([]string, 0, n+1)
	for r := 0; r < n; r++ {
		switch rng.Intn(11) {
		case 0, 1, 2, 3:
			rules = append(rules, "partition="+partitions[rng.Intn(len(partitions))]+window())
		case 4, 5:
			src := rng.Intn(4)
			dst := (src + 1 + rng.Intn(3)) % 4
			rules = append(rules, fmt.Sprintf("link=%d>%d:drop%s", src, dst, window()))
		case 6, 7:
			src := rng.Intn(4)
			dst := (src + 1 + rng.Intn(3)) % 4
			rules = append(rules, fmt.Sprintf("link=%d>%d:delay:%dms%s",
				src, dst, 1+rng.Intn(8), window()))
		case 8:
			rules = append(rules, fmt.Sprintf("gray=%d:%d%s", 1+rng.Intn(2), 2+rng.Intn(9), window()))
		case 9:
			// Demand burst: inert for the closed-loop kv clients on its
			// own, but it widens the trigger vocabulary the armed
			// campaigns combine with gray/delay windows.
			rules = append(rules, fmt.Sprintf("burst=%d%s", 2+rng.Intn(4), window()))
		default:
			rules = append(rules, fmt.Sprintf("crash=%d@%dms:reboot+%dms",
				rng.Intn(4), 20+rng.Intn(61), 10+rng.Intn(91)))
		}
	}
	if rng.Hit(2000) {
		rules = append(rules, "drop=0.05")
	}
	return seed, rules
}

// fuzzShrink greedily removes rules while the violation persists: the
// returned list is locally minimal (dropping any single rule makes the
// run pass). An empty result means the build violates with no faults at
// all — only the broken replicas do that.
func fuzzShrink(opt FuzzKVOptions, faultSeed uint64, rules []string) []string {
	shrunk := append([]string(nil), rules...)
	for changed := true; changed; {
		changed = false
		for i := range shrunk {
			cand := append(append([]string(nil), shrunk[:i]...), shrunk[i+1:]...)
			v, err := fuzzRun(opt, faultSeed, cand)
			if err == nil && v.bad {
				shrunk = cand
				changed = true
				break
			}
		}
	}
	return shrunk
}

// FuzzKV runs a fuzzing campaign: Count schedules from Seed, each run
// checked, the first violation shrunk to a minimal reproducing spec.
// The campaign is a pure function of its options — reruns print the
// same bytes.
func FuzzKV(opt FuzzKVOptions) (FuzzKVResult, error) {
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	if opt.OutDir != "" {
		if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
			return FuzzKVResult{}, err
		}
	}
	var fz FuzzKVResult
	for i := 0; i < opt.Count; i++ {
		seed, rules := fuzzSchedule(opt.Seed, i)
		v, err := fuzzRun(opt, seed, rules)
		if err != nil {
			return fz, fmt.Errorf("schedule %d (%s): %w", i, strings.Join(rules, ","), err)
		}
		fz.Ran++
		verdict := "ok"
		if v.bad {
			verdict = "VIOLATION: " + v.why
		}
		fmt.Fprintf(out, "fuzz %d/%d seed=%d faults=%s -> %d/%d ops ok, %s\n",
			i+1, opt.Count, seed, strings.Join(rules, ","),
			v.res.Completed, v.res.Completed+v.res.Failed, verdict)
		if opt.OutDir != "" {
			if err := dumpHistory(opt.OutDir, i, seed, rules, v); err != nil {
				return fz, err
			}
		}
		if !v.bad {
			continue
		}
		fz.Violations++
		if fz.Violations > 1 {
			continue
		}
		min := fuzzShrink(opt, seed, rules)
		fz.MinSpec, fz.MinSeed = strings.Join(min, ","), seed
		if len(min) == 0 {
			fmt.Fprintf(out, "  violates with no faults at all; reproduce with: machsim -workload kv%s\n",
				fuzzFlagSuffix(opt))
			continue
		}
		fmt.Fprintf(out, "  minimal repro (shrunk from %d rules): machsim -workload kv -faults %d:%s%s\n",
			len(rules), seed, fz.MinSpec, fuzzFlagSuffix(opt))
	}
	return fz, nil
}

// fuzzFlagSuffix renders the campaign's build-variant flags so the
// printed repro command really reproduces the run.
func fuzzFlagSuffix(opt FuzzKVOptions) string {
	var s string
	if opt.Break {
		s += " -breakkv"
	}
	if opt.Overload.Enabled {
		s += " -overload " + opt.Overload.String()
	}
	if opt.BreakOverload {
		s += " -breakoverload"
	}
	return s
}

// dumpHistory writes one schedule's recorded client history — the
// checker's raw input — as a text artifact.
func dumpHistory(dir string, i int, seed uint64, rules []string, v fuzzVerdict) error {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %d seed=%d faults=%s\n", i, seed, strings.Join(rules, ","))
	fmt.Fprintf(&b, "verdict: %s; split brain: %s\n", v.res.Check, splitBrainStr(v.res.SplitBrain))
	for _, op := range v.res.History {
		fmt.Fprintf(&b, "%s\n", op)
	}
	name := filepath.Join(dir, fmt.Sprintf("history-%03d.txt", i))
	return os.WriteFile(name, []byte(b.String()), 0o644)
}
