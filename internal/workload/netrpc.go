// NetRPC is the cross-machine workload: two simulated machines joined by
// a NIC pair, a client on machine A issuing RPCs to an echo server on
// machine B through the in-kernel netmsg forwarding threads, and a
// user-level disk reader on each machine keeping the paging disk's
// request queue busy with device_read calls. Every continuation mechanism
// the device subsystem adds shows up here: device-I/O blocks that discard
// stacks, interrupts taken on the current stack, io_done handoffs and
// recognitions, and netmsg deliveries that hand off straight into a
// waiting receiver's mach_msg_continue.
package workload

import (
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

// NetRPCSpec sizes the cross-machine workload.
type NetRPCSpec struct {
	// RPCs is how many echo round trips the client completes.
	RPCs int
	// MsgBytes is the request/reply payload size.
	MsgBytes int
	// Wire is the one-way NIC latency (dev.DefaultWireLatency if 0).
	Wire machine.Duration
	// DiskReads is how many device_read calls each machine's disk reader
	// issues (0 disables the readers); DiskReadBytes the transfer size.
	DiskReads     int
	DiskReadBytes int
	// DiskLatency overrides the paging disk service time when nonzero.
	DiskLatency machine.Duration

	// FaultSpec, when nonzero, seeds a deterministic fault plan on each
	// machine from FaultSeed (machine B uses FaultSeed+1 so the two draw
	// independent streams). Wire faults switch the netmsg threads to the
	// reliable seq/ack protocol.
	FaultSeed uint64
	FaultSpec fault.Spec

	// DebugChecks arms the kernel invariant sweep after every dispatch
	// on both machines.
	DebugChecks bool

	// Observe installs an obs.Recorder on each machine before any thread
	// starts, so the whole run is traced and profiled. The recorders are
	// reachable afterwards as Client.K.Obs and Server.K.Obs.
	Observe bool
}

// DefaultNetRPC returns the standard two-machine echo workload.
func DefaultNetRPC() NetRPCSpec {
	return NetRPCSpec{
		RPCs:          50,
		MsgBytes:      256,
		DiskReads:     30,
		DiskReadBytes: 4096,
		// A fast disk keeps the readers and the RPC stream interleaved on
		// the same timescale.
		DiskLatency: machine.Duration(2 * 1000 * 1000), // 2 ms
	}
}

// LossyNetRPC is the robustness acceptance workload: the standard echo
// run under 10% packet loss plus occasional device failures and latency
// spikes, with the invariant checker armed throughout. Every RPC must
// still complete — the reliability protocol and the device retry path
// absorb the faults.
func LossyNetRPC() NetRPCSpec {
	s := DefaultNetRPC()
	s.FaultSeed = 1991 // the paper's year; any seed works
	s.FaultSpec = fault.Spec{
		DropProb:        0.10,
		DeviceFailProb:  0.05,
		DeviceSlowProb:  0.05,
		DeviceSlowExtra: machine.Duration(1 * 1000 * 1000), // 1 ms
	}
	s.DebugChecks = true
	return s
}

// NetRPCResult reports one cross-machine run.
type NetRPCResult struct {
	// Client and Server are the two booted machines, A and B.
	Client *kern.System
	Server *kern.System

	// Completed is the echo round trips finished; DiskReadsDone the
	// device_read calls completed on each machine (client, server order).
	Completed     int
	DiskReadsDone [2]int

	// Elapsed is the client machine's simulated time for the whole run.
	Elapsed machine.Duration

	// Steps is the total cluster dispatcher steps taken.
	Steps uint64
}

// netEchoServer answers echo RPCs arriving through the netmsg thread.
type netEchoServer struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
	handled int
}

func (s *netEchoServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	req := s.pending
	s.pending = nil
	s.handled++
	return core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
		// req.Reply is a netmsg proxy: this send becomes a packet home.
		reply := s.sys.IPC.NewMessage(req.OpID|0x8000, req.Size, req.Body, nil)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: reply, SendTo: req.Reply, ReceiveFrom: s.port,
		})
	})
}

// netClient issues echo RPCs to the remote machine via a proxy port.
type netClient struct {
	sys   *kern.System
	proxy *ipc.Port
	reply *ipc.Port
	bytes int
	rpcs  int
	done  int
}

func (c *netClient) Next(e *core.Env, t *core.Thread) core.Action {
	if m := c.sys.IPC.Received(t); m != nil {
		c.done++
	}
	if c.done >= c.rpcs {
		return core.Exit()
	}
	return core.Syscall("mach_msg(net-rpc)", func(e *core.Env) {
		req := c.sys.IPC.NewMessage(1, c.bytes, nil, c.reply)
		c.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: req, SendTo: c.proxy, ReceiveFrom: c.reply,
		})
	})
}

// diskReader issues back-to-back device_read calls against the paging
// disk, so BlockDeviceIO rows (and queueing against VM page traffic)
// come from a real user thread.
type diskReader struct {
	sys   *kern.System
	disk  *dev.Device
	bytes int
	reads int
	done  int
}

func (r *diskReader) Next(e *core.Env, t *core.Thread) core.Action {
	if r.done >= r.reads {
		return core.Exit()
	}
	r.done++
	return core.Syscall("device_read", func(e *core.Env) {
		d := r.sys.Dev.Open(e, r.disk.Name)
		r.sys.Dev.DeviceRead(e, d, r.bytes)
	})
}

// RunNetRPC boots two machines, wires their NICs together, and drives the
// cluster until the client has completed its RPCs and both disk readers
// have drained (or no machine can progress). Fully deterministic.
func RunNetRPC(flavor kern.Flavor, arch machine.Arch, spec NetRPCSpec) *NetRPCResult {
	cfg := kern.Config{Flavor: flavor, Arch: arch, DiskLatency: spec.DiskLatency}
	a := kern.New(cfg)
	b := kern.New(cfg)
	dev.Connect(a.Net.NIC, b.Net.NIC, spec.Wire)
	a.InjectFaults(spec.FaultSeed, spec.FaultSpec)
	b.InjectFaults(spec.FaultSeed+1, spec.FaultSpec)
	if spec.DebugChecks {
		a.K.DebugChecks = true
		b.K.DebugChecks = true
	}
	if spec.Observe {
		a.EnableObservation(0)
		b.EnableObservation(0)
	}

	// Echo server on machine B, reachable from the wire as "echo".
	st := b.NewTask("echo-server")
	sport := b.IPC.NewPort("echo")
	b.Net.Export("echo", sport)
	srv := &netEchoServer{sys: b, port: sport}
	b.Start(st.NewThread("srv", srv, 20))

	// Client on machine A, talking to B through a proxy port. Its reply
	// port is exported automatically on the first forwarded send.
	ct := a.NewTask("net-client")
	reply := a.IPC.NewPort("echo-reply")
	msgBytes := spec.MsgBytes
	if msgBytes < ipc.HeaderBytes {
		msgBytes = ipc.HeaderBytes
	}
	cli := &netClient{sys: a, proxy: a.Net.ProxyFor("echo"), reply: reply,
		bytes: msgBytes, rpcs: spec.RPCs}
	a.Start(ct.NewThread("cli", cli, 10))

	// One disk reader per machine.
	var readers []*diskReader
	if spec.DiskReads > 0 {
		for _, sys := range []*kern.System{a, b} {
			task := sys.NewTask("disk-reader")
			rd := &diskReader{sys: sys, disk: sys.Disk,
				bytes: spec.DiskReadBytes, reads: spec.DiskReads}
			readers = append(readers, rd)
			sys.Start(task.NewThread("rd", rd, 12))
		}
	}

	cluster := kern.NewCluster(a, b)
	res := &NetRPCResult{Client: a, Server: b}
	start := a.K.Clock.Now()
	for cluster.Step(false) {
		res.Steps++
	}
	res.Completed = cli.done
	for i, rd := range readers {
		res.DiskReadsDone[i] = rd.done
	}
	res.Elapsed = machine.Duration(a.K.Clock.Now() - start)
	return res
}
