// NetRPC is the cross-machine workload: two simulated machines joined by
// a NIC pair, a client on machine A issuing RPCs to an echo server on
// machine B through the in-kernel netmsg forwarding threads, and a
// user-level disk reader on each machine keeping the paging disk's
// request queue busy with device_read calls. Every continuation mechanism
// the device subsystem adds shows up here: device-I/O blocks that discard
// stacks, interrupts taken on the current stack, io_done handoffs and
// recognitions, and netmsg deliveries that hand off straight into a
// waiting receiver's mach_msg_continue.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

// NetRPCSpec sizes the cross-machine workload.
type NetRPCSpec struct {
	// RPCs is how many echo round trips the client completes.
	RPCs int
	// MsgBytes is the request/reply payload size.
	MsgBytes int
	// Wire is the one-way NIC latency (dev.DefaultWireLatency if 0).
	Wire machine.Duration
	// DiskReads is how many device_read calls each machine's disk reader
	// issues (0 disables the readers); DiskReadBytes the transfer size.
	DiskReads     int
	DiskReadBytes int
	// DiskLatency overrides the paging disk service time when nonzero.
	DiskLatency machine.Duration

	// FaultSpec, when nonzero, seeds a deterministic fault plan on each
	// machine from FaultSeed (machine B uses FaultSeed+1 so the two draw
	// independent streams). Wire faults switch the netmsg threads to the
	// reliable seq/ack protocol.
	FaultSeed uint64
	FaultSpec fault.Spec

	// Pairs is the number of client/server machine pairs in the cluster
	// (default 1): the cluster simulates 2*Pairs machines. Pair i's
	// machines draw fault seeds FaultSeed+2i and FaultSeed+2i+1, so pair 0
	// matches the historical two-machine run exactly.
	Pairs int

	// Clients is the number of client threads per client machine (default
	// 1), each completing RPCs round trips. More clients keep more RPCs in
	// flight per wire-latency window, raising per-machine work per
	// horizon round.
	Clients int

	// Failover boots the HA topology instead of client/server pairs: four
	// machines — client, primary server, replica server, second client —
	// where each client is wired to both servers, every link runs the
	// reliable protocol, and the clients issue RPCs with a receive timeout
	// so they can fail over to the replica when the primary goes silent
	// (and fail back after its warm reboot). FaultSpec.Crashes machine
	// indices name machines in that order.
	Failover bool

	// RPCTimeout is the per-attempt receive timeout of a failover client
	// (DefaultRPCTimeout if zero).
	RPCTimeout machine.Duration

	// Parallel runs the cluster's horizon rounds with one goroutine per
	// machine. Results are byte-identical to the sequential rounds.
	Parallel bool

	// DebugChecks arms the kernel invariant sweep after every dispatch
	// on both machines.
	DebugChecks bool

	// Observe installs an obs.Recorder on each machine before any thread
	// starts, so the whole run is traced and profiled. The recorders are
	// reachable afterwards as Client.K.Obs and Server.K.Obs.
	Observe bool
}

// DefaultNetRPC returns the standard two-machine echo workload.
func DefaultNetRPC() NetRPCSpec {
	return NetRPCSpec{
		RPCs:          50,
		MsgBytes:      256,
		DiskReads:     30,
		DiskReadBytes: 4096,
		// A fast disk keeps the readers and the RPC stream interleaved on
		// the same timescale.
		DiskLatency: machine.Duration(2 * 1000 * 1000), // 2 ms
	}
}

// LossyNetRPC is the robustness acceptance workload: the standard echo
// run under 10% packet loss plus occasional device failures and latency
// spikes, with the invariant checker armed throughout. Every RPC must
// still complete — the reliability protocol and the device retry path
// absorb the faults.
func LossyNetRPC() NetRPCSpec {
	s := DefaultNetRPC()
	s.FaultSeed = 1991 // the paper's year; any seed works
	s.FaultSpec = fault.Spec{
		DropProb:        0.10,
		DeviceFailProb:  0.05,
		DeviceSlowProb:  0.05,
		DeviceSlowExtra: machine.Duration(1 * 1000 * 1000), // 1 ms
	}
	s.DebugChecks = true
	return s
}

// NetRPCResult reports one cross-machine run.
type NetRPCResult struct {
	// Client and Server are pair 0's machines, A and B.
	Client *kern.System
	Server *kern.System

	// Machines lists every booted machine, client/server interleaved
	// (pair i occupies indices 2i and 2i+1).
	Machines []*kern.System

	// Completed is the echo round trips finished across all clients;
	// DiskReadsDone the device_read calls completed on pair 0's machines
	// (client, server order).
	Completed     int
	DiskReadsDone [2]int

	// Elapsed is the client machine's simulated time for the whole run.
	Elapsed machine.Duration

	// Steps is the total cluster dispatcher steps taken.
	Steps uint64

	// Recovery is the crash/failover accounting, populated on every run
	// (all zeros when no crashes were injected).
	Recovery RecoveryStats
}

// netEchoServer answers echo RPCs arriving through the netmsg thread. Its
// syscall actions are built once; a closure per action would allocate on
// every step of the cluster benchmarks.
type netEchoServer struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
	handled int

	recvAct  core.Action
	replyAct core.Action
}

func (s *netEchoServer) Next(e *core.Env, t *core.Thread) core.Action {
	if s.recvAct.Invoke == nil {
		s.recvAct = core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
		s.replyAct = core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
			req := s.pending
			s.pending = nil
			op, size, body, to := req.OpID, req.Size, req.Body, req.Reply
			s.sys.IPC.FreeMessage(req)
			// to is a netmsg proxy: this send becomes a packet home.
			reply := s.sys.IPC.NewMessage(op|0x8000, size, body, nil)
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: reply, SendTo: to, ReceiveFrom: s.port,
			})
		})
	}
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return s.recvAct
	}
	s.handled++
	return s.replyAct
}

// netClient issues echo RPCs to the remote machine via a proxy port.
type netClient struct {
	sys   *kern.System
	proxy *ipc.Port
	reply *ipc.Port
	bytes int
	rpcs  int
	done  int

	rpcAct core.Action
}

func (c *netClient) Next(e *core.Env, t *core.Thread) core.Action {
	if c.rpcAct.Invoke == nil {
		c.rpcAct = core.Syscall("mach_msg(net-rpc)", func(e *core.Env) {
			req := c.sys.IPC.NewMessage(1, c.bytes, nil, c.reply)
			c.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: req, SendTo: c.proxy, ReceiveFrom: c.reply,
			})
		})
	}
	if m := c.sys.IPC.Received(t); m != nil {
		c.done++
		c.sys.IPC.FreeMessage(m)
	}
	if c.done >= c.rpcs {
		return core.Exit()
	}
	return c.rpcAct
}

// diskReader issues back-to-back device_read calls against the paging
// disk, so BlockDeviceIO rows (and queueing against VM page traffic)
// come from a real user thread.
type diskReader struct {
	sys   *kern.System
	disk  *dev.Device
	bytes int
	reads int
	done  int

	readAct core.Action
}

func (r *diskReader) Next(e *core.Env, t *core.Thread) core.Action {
	if r.done >= r.reads {
		return core.Exit()
	}
	r.done++
	if r.readAct.Invoke == nil {
		r.readAct = core.Syscall("device_read", func(e *core.Env) {
			d := r.sys.Dev.Open(e, r.disk.Name)
			r.sys.Dev.DeviceRead(e, d, r.bytes)
		})
	}
	return r.readAct
}

// RunNetRPC boots 2*Pairs machines, wires each pair's NICs together, and
// drives the cluster until every client has completed its RPCs and the
// disk readers have drained (or no machine can progress). Fully
// deterministic: with the same spec the run is byte-identical regardless
// of spec.Parallel or GOMAXPROCS.
func RunNetRPC(flavor kern.Flavor, arch machine.Arch, spec NetRPCSpec) *NetRPCResult {
	if spec.Failover {
		return runNetRPCFailover(flavor, arch, spec)
	}
	res, clis, pair0Readers := bootNetRPC(flavor, arch, spec)
	cluster := kern.NewCluster(res.Machines...)
	cluster.CrossCheck = spec.DebugChecks
	start := res.Client.K.Clock.Now()
	res.Steps = cluster.Drive(spec.Parallel)
	for _, cli := range clis {
		res.Completed += cli.done
	}
	for i, rd := range pair0Readers {
		res.DiskReadsDone[i] = rd.done
	}
	res.Elapsed = machine.Duration(res.Client.K.Clock.Now() - start)
	res.Recovery.fill(res.Machines)
	stampCensus(res.Machines)
	return res
}

// scheduleCrashes arms the spec's whole-machine crash events; indices
// name positions in machines.
func scheduleCrashes(machines []*kern.System, spec NetRPCSpec) {
	for _, cr := range spec.FaultSpec.Crashes {
		if cr.Machine >= 0 && cr.Machine < len(machines) {
			machines[cr.Machine].ScheduleCrash(cr.At, cr.RebootAfter)
		}
	}
}

// bootNetRPC builds the cluster's machines and threads without driving
// them: RunNetRPC's setup phase, shared with the driver-level tests.
func bootNetRPC(flavor kern.Flavor, arch machine.Arch, spec NetRPCSpec) (*NetRPCResult, []*netClient, []*diskReader) {
	cfg := kern.Config{Flavor: flavor, Arch: arch, DiskLatency: spec.DiskLatency}
	pairs := spec.Pairs
	if pairs <= 0 {
		pairs = 1
	}
	clients := spec.Clients
	if clients <= 0 {
		clients = 1
	}
	msgBytes := spec.MsgBytes
	if msgBytes < ipc.HeaderBytes {
		msgBytes = ipc.HeaderBytes
	}

	res := &NetRPCResult{}
	var clis []*netClient
	var readers []*diskReader
	var pair0Readers []*diskReader
	for i := 0; i < pairs; i++ {
		a := kern.New(cfg)
		b := kern.New(cfg)
		dev.Connect(a.Net.NIC, b.Net.NIC, spec.Wire)
		a.InjectFaults(spec.FaultSeed+uint64(2*i), spec.FaultSpec)
		b.InjectFaults(spec.FaultSeed+uint64(2*i)+1, spec.FaultSpec)
		if spec.DebugChecks {
			a.K.DebugChecks = true
			b.K.DebugChecks = true
		}
		if spec.Observe {
			ra := a.EnableObservation(0)
			ra.SetHost(2 * i)
			rb := b.EnableObservation(0)
			rb.SetHost(2*i + 1)
		}

		// Echo server on machine B, reachable from the wire as "echo".
		st := b.NewTask("echo-server")
		sport := b.IPC.NewPort("echo")
		if clients > 1 {
			// Many clients can land requests in the same wire-latency
			// window; the default queue limit would force senders into
			// the full-queue backoff path and serialize them.
			sport.QueueLimit = 2 * clients
		}
		b.Net.Export("echo", sport)
		srv := &netEchoServer{sys: b, port: sport}
		b.Start(st.NewThread("srv", srv, 20))

		// Clients on machine A, talking to B through a proxy port. Each
		// needs its own reply port (netmsg auto-export is name-keyed);
		// client 0 keeps the historical names so single-client runs are
		// byte-identical to the old two-machine driver.
		ct := a.NewTask("net-client")
		for j := 0; j < clients; j++ {
			replyName, threadName := "echo-reply", "cli"
			if j > 0 {
				replyName = fmt.Sprintf("echo-reply-%d", j)
				threadName = fmt.Sprintf("cli-%d", j)
			}
			cli := &netClient{sys: a, proxy: a.Net.ProxyFor("echo"),
				reply: a.IPC.NewPort(replyName), bytes: msgBytes, rpcs: spec.RPCs}
			clis = append(clis, cli)
			a.Start(ct.NewThread(threadName, cli, 10))
		}

		// One disk reader per machine.
		if spec.DiskReads > 0 {
			for _, sys := range []*kern.System{a, b} {
				task := sys.NewTask("disk-reader")
				rd := &diskReader{sys: sys, disk: sys.Disk,
					bytes: spec.DiskReadBytes, reads: spec.DiskReads}
				readers = append(readers, rd)
				if i == 0 {
					pair0Readers = append(pair0Readers, rd)
				}
				sys.Start(task.NewThread("rd", rd, 12))
			}
		}

		res.Machines = append(res.Machines, a, b)
	}

	res.Client, res.Server = res.Machines[0], res.Machines[1]
	scheduleCrashes(res.Machines, spec)
	return res, clis, pair0Readers
}
