package workload

import (
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Daemon is an internal kernel service thread (a network handler, an AFS
// callback dispatcher, a device postprocessor) written in the paper's
// §2.2 style: an infinite work loop realised by blocking with a
// continuation whose body is the loop itself. Its blocks populate Table
// 1's "internal threads" row.
type Daemon struct {
	sys    *kern.System
	Thread *core.Thread
	cont   *core.Continuation

	// workCost is charged per wakeup.
	workCost machine.Cost

	// pending counts kicks not yet absorbed by a wakeup pass.
	pending int

	// Wakeups counts processed work batches.
	Wakeups uint64
}

// NewDaemon creates and starts an internal kernel daemon.
func NewDaemon(sys *kern.System, name string, workCost machine.Cost) *Daemon {
	d := &Daemon{sys: sys, workCost: workCost}
	d.cont = core.NewContinuation(name+"_continue", d.loop)
	var startPM func(*core.Env)
	if !sys.K.UseContinuations {
		startPM = d.loop
	}
	d.Thread = sys.K.NewThread(core.ThreadSpec{
		Name:     name,
		SpaceID:  0,
		Internal: true,
		Priority: 28,
		Start:    d.cont,
		StartPM:  startPM,
	})
	// The daemon starts blocked; its first kick wakes it.
	return d
}

// Kick queues one unit of work and wakes the daemon.
func (d *Daemon) Kick() {
	d.pending++
	if d.Thread.State == core.StateWaiting {
		d.sys.K.Setrun(d.Thread)
	}
}

// itemGap is the pause between queued work items: the daemon handles one
// interrupt's worth of work per wakeup and waits for the device to raise
// the next one.
const itemGap = machine.Duration(30 * 1000) // 30 us

// loop processes one work item per pass, then blocks again with itself
// as the continuation (tail recursion, §2.2). Each item therefore costs
// one internal-thread block with a stack discard — the behaviour Table
// 1's "internal threads" row tallies. Terminal.
func (d *Daemon) loop(e *core.Env) {
	t := e.Cur()
	if d.pending > 0 {
		e.Charge(d.workCost)
		d.pending--
		d.Wakeups++
	}
	if d.pending > 0 {
		// More device work queued: wait for the next interrupt.
		d.sys.K.Clock.After(itemGap, "dev-intr", func() {
			if t.State == core.StateWaiting {
				d.sys.K.Setrun(t)
			}
		})
	}
	t.State = core.StateWaiting
	t.WaitLabel = "daemon: idle"
	d.sys.K.Block(e, stats.BlockInternal, d.cont, d.loop, 256, "daemon-wait")
}

// Pending reports queued work items not yet processed.
func (d *Daemon) Pending() int { return d.pending }
