// Storm is the overload scenario: the mtload generator's open-loop
// sessions aimed at the svcgraph service chain (frontend -> cache ->
// replicated KV), plus a scheduled trigger — a demand burst multiplying
// arrival rates while a gray failure slows the cache tier and a link
// fault stretches the frontend's wire. With the overload controls
// disabled the trigger tips the cluster into a metastable retry storm:
// every attempt times out, every timeout retransmits, the cache queue
// grows faster than it drains, and goodput stays collapsed long after
// the trigger clears because the servers are busy answering requests
// whose clients gave up milliseconds ago. With the controls armed —
// deadlines anchored at each op's intended arrival, per-session retry
// budgets, CoDel admission at the cache and KV tiers, and a frontend
// circuit breaker — the same trigger costs a dip, not a collapse: dead
// work is shed for the price of a typed reply, the queue stays near the
// sojourn target, and goodput recovers within a couple of trigger
// durations. The report quantifies both with an offered-vs-goodput
// curve and a machine-checkable verdict line.
package workload

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/stats"
	"repro/internal/svc"
)

// StormSpec sizes the overload storm scenario.
type StormSpec struct {
	// Sessions is the open-loop session count on the frontend machine.
	Sessions int
	// Think is the mean inter-arrival gap per session (jittered to
	// [Think/2, 3*Think/2) like the mtload generator); Horizon is when
	// arrivals stop — sessions still drain their backlog past it.
	Think   machine.Duration
	Horizon machine.Duration
	// Warmup delays the first arrivals so the cluster is booted before
	// traffic starts; the goodput baseline is measured after it.
	Warmup machine.Duration
	// Bucket is the goodput curve's bucket width.
	Bucket machine.Duration
	// Keyspan is each session's private key range; PutPer10k the write
	// mix.
	Keyspan   uint64
	PutPer10k int
	// Workers/Capacity shape the cache tier as in SvcGraphSpec.
	Workers  int
	Capacity int
	// Timeout is the frontend sessions' per-attempt receive timeout —
	// deliberately tight, so a slow tier turns into retransmissions (the
	// storm's fuel).
	Timeout machine.Duration
	// Wire is the one-way NIC latency (dev.DefaultWireLatency if 0).
	Wire machine.Duration
	// Seed drives the arrival jitter and op scripts; FaultSeed/FaultSpec
	// the trigger schedule (burst/gray/link windows).
	Seed      uint64
	FaultSeed uint64
	FaultSpec fault.Spec
	// Overload is the control policy; Enabled false is the storm's
	// negative arm (-overload off).
	Overload overload.Policy
	// BreakOverload runs the deliberately broken replica that applies an
	// already-expired write before claiming it was shed — the phantom
	// write the linearizability checker must flag. Never set outside
	// tests and machsim's -breakoverload flag.
	BreakOverload bool
	// SampleEvery, Parallel, DebugChecks as in the other cluster specs.
	SampleEvery int
	Parallel    bool
	DebugChecks bool
}

// DefaultStormTrigger is the canonical trigger schedule: for 20ms the
// offered load quintuples while the cache machine runs at 1/10 speed
// and the frontend->cache wire gains 2ms — a burst landing exactly when
// the service tier browns out.
const DefaultStormTrigger = "burst=5@60ms+20ms,gray=1:10@60ms+20ms,link=0>1:delay:2ms@60ms+20ms"

// DefaultStorm returns the canonical storm run (controls on; flip
// Overload.Enabled for the negative arm).
func DefaultStorm() StormSpec {
	fs, err := fault.ParseSpec(DefaultStormTrigger)
	if err != nil {
		panic(err)
	}
	return StormSpec{
		Sessions:  24,
		Think:     machine.Duration(12 * 1e6),
		Horizon:   machine.Duration(190 * 1e6),
		Warmup:    machine.Duration(10 * 1e6),
		Bucket:    machine.Duration(10 * 1e6),
		Keyspan:   6,
		PutPer10k: 3000,
		Workers:   3,
		Capacity:  256,
		Timeout:   machine.Duration(5 * 1e6),
		Wire:      machine.Duration(100 * 1e3),
		Seed:      1991,
		FaultSeed: 7,
		FaultSpec: fs,
		Overload:  overload.DefaultPolicy(),
	}
}

// stormOutcome classifies one arrival's disposition.
type stormOutcome uint8

const (
	stormOK stormOutcome = iota
	stormExpired
	stormRejected
	stormAbandoned
)

// stormRec is one arrival's ledger entry: when it was meant to arrive,
// when it was finally disposed of, and how.
type stormRec struct {
	intended machine.Time
	finished machine.Time
	outcome  stormOutcome
}

// stormWakeDone resumes a session after its open-loop think sleep.
var stormWakeDone = core.NewContinuation("storm_think_done", func(e *core.Env) {
	e.K.ThreadSyscallReturn(e, 0)
})

// stormSession is one open-loop session: it generates arrivals on its
// own jittered schedule (multiplied through any active burst window),
// runs each as one operation on its embedded one-shot caller, and never
// lets a slow reply pause the schedule — a late op means the next
// intended arrival is already in the past, so the backlog is issued
// back-to-back. That refusal to self-throttle is what makes the
// generator open-loop, and what lets a retry storm feed itself.
type stormSession struct {
	sys    *kern.System
	cli    *svc.Caller
	rng    *RNG
	topo   *fault.Topology
	spec   *StormSpec
	policy *overload.Policy

	intended machine.Time
	inOp     bool
	doneSent bool
	recs     []stormRec

	sleepAct core.Action
}

func (s *stormSession) Next(e *core.Env, t *core.Thread) core.Action {
	if s.sleepAct.Invoke == nil {
		s.sleepAct = core.Syscall("storm-think", func(e *core.Env) {
			th := e.Cur()
			s.sys.K.Clock.Schedule(s.intended, "storm-wake", func() {
				if th.State == core.StateWaiting {
					s.sys.K.Setrun(th)
				}
			})
			th.State = core.StateWaiting
			s.sys.K.Block(e, stats.BlockInternal, stormWakeDone,
				func(e2 *core.Env) { e2.K.ThreadSyscallReturn(e2, 0) }, 96, "storm-think")
		})
	}
	for {
		if s.inOp || s.doneSent {
			act, fin := s.cli.Step(e, t)
			if !fin {
				return act
			}
			if s.doneSent {
				return core.Exit()
			}
			s.inOp = false
			s.record()
			s.advance()
		}
		if s.intended >= machine.Time(s.spec.Horizon) {
			s.doneSent = true
			s.cli.StartDone()
			continue
		}
		if s.intended > s.sys.K.Clock.Now() {
			return s.sleepAct
		}
		s.submit()
		s.inOp = true
	}
}

// submit starts the next arrival on the embedded caller. With controls
// armed the op's deadline anchors at its intended arrival — a
// backlogged arrival that is already older than the deadline budget is
// shed locally before a single byte hits the wire.
func (s *stormSession) submit() {
	key := uint64(s.cli.ID)<<32 | s.rng.Uint64n(s.spec.Keyspan)
	op := svc.KVOp{Op: svc.OpGet, Key: key}
	if s.rng.Hit(s.spec.PutPer10k) {
		op = svc.KVOp{Op: svc.OpPut, Key: key, Val: s.rng.Next()}
	}
	s.cli.IntendedStart = s.intended
	if s.policy.Enabled {
		s.cli.NextDeadline = s.intended + machine.Time(s.policy.Deadline)
	}
	s.cli.StartOp(op)
}

// record writes the finished op's ledger entry.
func (s *stormSession) record() {
	out := stormAbandoned
	switch {
	case s.cli.LastOK:
		out = stormOK
	case s.cli.LastExpired:
		out = stormExpired
	case s.cli.LastRejected:
		out = stormRejected
	}
	s.recs = append(s.recs, stormRec{
		intended: s.intended,
		finished: s.sys.K.Clock.Now(),
		outcome:  out,
	})
}

// advance moves the open-loop schedule to the next intended arrival:
// one jittered think gap, divided by any active burst factor.
func (s *stormSession) advance() {
	gap := s.rng.Burst(uint64(s.spec.Think))
	if f := s.topo.BurstAt(s.intended); f != 1 {
		gap = uint64(float64(gap) / f)
	}
	if gap == 0 {
		gap = 1
	}
	s.intended += machine.Time(gap)
}

// StormBucket is one goodput-curve bucket: arrivals offered into it (by
// intended time) and dispositions landing in it (by finish time).
type StormBucket struct {
	Offered   int
	Good      int
	Expired   int
	Rejected  int
	Abandoned int
}

// StormResult reports one storm run.
type StormResult struct {
	Spec     StormSpec
	Machines []*kern.System
	Cache    *svc.CacheConfig
	Replicas [svc.NumRanks]*svc.ReplicaConfig
	// FrontOv is the frontend sessions' shedding scoreboard.
	FrontOv *overload.Stats

	Completed  int
	Failed     int
	Mismatches uint64

	Elapsed machine.Duration
	Steps   uint64

	// Curve covers [0, CurveEnd) in Spec.Bucket buckets; dispositions
	// past CurveEnd aggregate into Tail.
	Curve    []StormBucket
	CurveEnd machine.Time
	Tail     StormBucket

	// TriggerAt/TriggerEnd is the union window of every scheduled
	// trigger rule; Baseline the mean per-bucket goodput before it.
	TriggerAt  machine.Time
	TriggerEnd machine.Time
	Baseline   float64

	// Metastable: goodput stayed under 50% of baseline for the whole
	// observation window (>= 5x the trigger duration past its clearing);
	// CollapsedFor is how long the collapse actually lasted (capped at
	// the curve end). Recovered: goodput regained 90% of baseline within
	// 2x the trigger duration of its clearing, after RecoveryAfter.
	Metastable    bool
	CollapsedFor  machine.Duration
	Recovered     bool
	RecoveryAfter machine.Duration

	History    []check.Op
	Check      check.Result
	SplitBrain []check.AckKey
	Topo       *fault.Topology
}

// ReplicaOv sums the replica tier's shedding counters.
func (r *StormResult) ReplicaOv() overload.Stats {
	var t overload.Stats
	for _, cfg := range r.Replicas {
		if cfg == nil || cfg.Ov == nil {
			continue
		}
		t.Admitted += cfg.Ov.Admitted
		t.Expired += cfg.Ov.Expired
		t.Rejected += cfg.Ov.Rejected
	}
	return t
}

// RunStorm boots and drives the storm cluster: the svcgraph machine
// chain (0 frontend, 1 cache, 2/3 KV replicas) under open-loop session
// load.
func RunStorm(flavor kern.Flavor, arch machine.Arch, spec StormSpec) *StormResult {
	if spec.Sessions <= 0 {
		spec.Sessions = 24
	}
	if spec.Think <= 0 {
		spec.Think = machine.Duration(12 * 1e6)
	}
	if spec.Horizon <= 0 {
		spec.Horizon = machine.Duration(190 * 1e6)
	}
	if spec.Warmup <= 0 {
		spec.Warmup = machine.Duration(10 * 1e6)
	}
	if spec.Bucket <= 0 {
		spec.Bucket = machine.Duration(10 * 1e6)
	}
	if spec.Keyspan == 0 {
		spec.Keyspan = 6
	}
	if spec.Workers <= 0 {
		spec.Workers = 3
	}
	if spec.Timeout <= 0 {
		spec.Timeout = machine.Duration(5 * 1e6)
	}

	cfg := kern.Config{Flavor: flavor, Arch: arch}
	res := &StormResult{Spec: spec}
	sys := make([]*kern.System, 4)
	for i := range sys {
		sys[i] = kern.New(cfg)
	}
	frontend, cache, rank0, rank1 := sys[0], sys[1], sys[2], sys[3]
	cache.AddLink()
	cache.AddLink()
	rank0.AddLink()
	rank1.AddLink()
	dev.Connect(frontend.Links[0].NIC, cache.Links[0].NIC, spec.Wire)
	dev.Connect(cache.Links[1].NIC, rank0.Links[0].NIC, spec.Wire)
	dev.Connect(cache.Links[2].NIC, rank1.Links[0].NIC, spec.Wire)
	dev.Connect(rank0.Links[1].NIC, rank1.Links[1].NIC, spec.Wire)
	tmo := provisionTimeouts(arch, 0, 0, 0, 0)
	res.Topo = fault.NewTopology(spec.FaultSpec)
	for i, s := range sys {
		s.InjectFaults(spec.FaultSeed+uint64(i), spec.FaultSpec)
		s.InstallTopology(i, res.Topo)
		for _, n := range s.Links {
			n.EnableReliable()
			n.DeadAfter = tmo.deadAfter
		}
		if spec.DebugChecks {
			s.K.DebugChecks = true
			s.EnableWatchdog()
		}
		r := s.EnableObservation(0)
		r.SetHost(i)
		r.SetSpanSampling(spec.SampleEvery)
	}

	smap := svc.NewShardMap(0, 0)

	for rank, s := range []*kern.System{rank0, rank1} {
		rcfg := &svc.ReplicaConfig{
			Rank: rank, PeerRank: svc.NumRanks - 1 - rank,
			Map: smap, PeerLink: 1, Clients: spec.Workers,
			RenewEvery: tmo.renewEvery, IdleExit: tmo.idleExit,
			Overload: spec.Overload, BreakOverload: spec.BreakOverload,
		}
		res.Replicas[rank] = rcfg
		s.RegisterService("kv-replica", func(s *kern.System) {
			svc.InstallReplica(s, rcfg)
		})
	}

	ccfg := &svc.CacheConfig{
		Map: smap, Links: [svc.NumRanks]int{1, 2},
		Workers: spec.Workers, Capacity: spec.Capacity,
		Frontends: spec.Sessions, FirstClientID: 0,
		Timeout: tmo.rpcTimeout, IdleExit: tmo.idleExit,
		Overload: spec.Overload,
	}
	res.Cache = ccfg
	cache.RegisterService("cache", func(s *kern.System) {
		svc.InstallCache(s, ccfg)
	})

	// Frontend sessions. The circuit breaker is per frontend machine —
	// one shared view of the downstream's health — while retry budgets
	// are per session, so one greedy session cannot drain its neighbors'
	// tokens. All shared state stays within machine 0, which the
	// parallel driver serializes.
	res.FrontOv = &overload.Stats{}
	pol := spec.Overload
	var breaker *overload.Breaker
	if pol.Enabled {
		breaker = overload.NewBreaker(pol.Breaker, pol.Cooldown, spec.Seed^0xb4ea4e4)
	}
	sessions := make([]*stormSession, spec.Sessions)
	for j := range sessions {
		cli := &svc.Caller{
			Sys: frontend, Name: fmt.Sprintf("storm%d", j), ID: j,
			Map: smap, Links: [svc.NumRanks]int{0, 0},
			Port: svc.CachePortName, Timeout: spec.Timeout,
			MaxAttempts: 16,
			HistName:    "frontend", OneShot: true,
			Track: true, Record: true,
			Overload: &pol, Breaker: breaker, OvStats: res.FrontOv,
		}
		if pol.Enabled {
			cli.Budget = overload.NewRetryBudget(pol.Budget, pol.Refill)
		}
		rng := NewRNG(spec.Seed ^ uint64(j+1)*0x9e3779b97f4a7c15)
		s := &stormSession{
			sys: frontend, cli: cli, rng: rng, topo: res.Topo,
			spec: &spec, policy: &pol,
			intended: frontend.K.Clock.Now() + machine.Time(spec.Warmup) +
				machine.Time(rng.Burst(uint64(spec.Think))),
		}
		sessions[j] = s
	}
	frontend.RegisterService("storm-sessions", func(fsys *kern.System) {
		ct := fsys.NewTask("storm")
		for _, s := range sessions {
			s.cli.Reset(fsys)
			fsys.Start(ct.NewThread(s.cli.Name, s, 10))
		}
	})

	res.Machines = sys
	scheduleCrashPlan(sys, spec.FaultSpec.Crashes)

	cluster := kern.NewCluster(sys...)
	cluster.CrossCheck = spec.DebugChecks
	start := sys[0].K.Clock.Now()
	res.Steps = cluster.Drive(spec.Parallel)
	res.Elapsed = machine.Duration(sys[0].K.Clock.Now() - start)
	stampCensus(sys)

	var recs []stormRec
	for _, s := range sessions {
		res.Completed += s.cli.Stats.Done
		res.Failed += s.cli.Stats.Failed
		res.Mismatches += s.cli.Stats.Mismatches
		res.History = append(res.History, s.cli.History...)
		recs = append(recs, s.recs...)
	}
	res.Check = check.Linearizable(res.History)
	logs := make([]map[check.AckKey]uint64, 0, svc.NumRanks)
	for _, rcfg := range res.Replicas {
		if rcfg != nil {
			logs = append(logs, rcfg.AckLog)
		}
	}
	res.SplitBrain = check.SplitBrain(logs)
	analyzeStorm(res, recs)
	return res
}

// triggerWindow computes the union window of every scheduled trigger
// rule (bursts, grays, links) in the spec.
func triggerWindow(spec fault.Spec) (at, end machine.Time) {
	first := true
	add := func(a, d machine.Duration) {
		if machine.Time(a) < at || first {
			at = machine.Time(a)
		}
		if machine.Time(a+d) > end {
			end = machine.Time(a + d)
		}
		first = false
	}
	for _, b := range spec.Bursts {
		add(b.At, b.Dur)
	}
	for _, g := range spec.Grays {
		add(g.At, g.Dur)
	}
	for _, l := range spec.Links {
		add(l.At, l.Dur)
	}
	return at, end
}

// analyzeStorm builds the offered-vs-goodput curve and computes the
// metastability / recovery verdicts. Pure integer-bucket arithmetic over
// the session ledgers, so the verdict is as deterministic as the run.
func analyzeStorm(res *StormResult, recs []stormRec) {
	spec := res.Spec
	bucket := machine.Time(spec.Bucket)
	res.TriggerAt, res.TriggerEnd = triggerWindow(spec.FaultSpec)
	trigDur := res.TriggerEnd - res.TriggerAt

	// The curve observes through the metastability window: 5x the
	// trigger duration past its clearing (and at least the arrival
	// horizon), rounded up to a whole bucket.
	obsEnd := res.TriggerEnd + 5*trigDur
	if h := machine.Time(spec.Horizon); obsEnd < h {
		obsEnd = h
	}
	nb := int((obsEnd + bucket - 1) / bucket)
	res.CurveEnd = machine.Time(nb) * bucket
	res.Curve = make([]StormBucket, nb)
	slot := func(at machine.Time) *StormBucket {
		i := int(at / bucket)
		if i >= nb {
			return &res.Tail
		}
		return &res.Curve[i]
	}
	for _, r := range recs {
		slot(r.intended).Offered++
		b := slot(r.finished)
		switch r.outcome {
		case stormOK:
			b.Good++
		case stormExpired:
			b.Expired++
		case stormRejected:
			b.Rejected++
		default:
			b.Abandoned++
		}
	}

	// Baseline: mean goodput over the full buckets between warmup
	// settling (one bucket past warmup + think) and the trigger.
	warm := machine.Time(spec.Warmup) + 2*machine.Time(spec.Think)
	b0 := int((warm + bucket - 1) / bucket)
	b1 := int(res.TriggerAt / bucket)
	if b1 > nb {
		b1 = nb
	}
	n := 0
	sum := 0
	for i := b0; i < b1; i++ {
		sum += res.Curve[i].Good
		n++
	}
	if n > 0 {
		res.Baseline = float64(sum) / float64(n)
	}

	// Collapse scan: from the trigger clearing, how long does goodput
	// stay under 50% of baseline?
	clear := int((res.TriggerEnd + bucket - 1) / bucket)
	half := res.Baseline / 2
	col := 0
	for i := clear; i < nb; i++ {
		if float64(res.Curve[i].Good) >= half && half > 0 {
			break
		}
		col++
	}
	res.CollapsedFor = machine.Duration(col) * machine.Duration(bucket)
	res.Metastable = res.Baseline > 0 &&
		res.CollapsedFor >= 5*machine.Duration(trigDur)

	// Recovery scan: first bucket at/after the clearing that regains 90%
	// of baseline, and whether it lands within 2x the trigger duration.
	res.RecoveryAfter = 0
	res.Recovered = false
	for i := clear; i < nb; i++ {
		if res.Baseline > 0 && float64(res.Curve[i].Good) >= 0.9*res.Baseline {
			res.RecoveryAfter = machine.Duration(i+1)*machine.Duration(bucket) -
				machine.Duration(res.TriggerEnd)
			res.Recovered = res.RecoveryAfter <= 2*machine.Duration(trigDur)
			break
		}
	}
}

// onOff renders the controls arm for the report headline.
func onOff(enabled bool) string {
	if enabled {
		return "on"
	}
	return "off"
}

// WriteStormReport prints the storm run: headline, policy, trigger,
// the offered-vs-goodput curve, the verdict, per-tier shed counters,
// the merged latency lines (including the .fail failure-outcome
// histogram carrying the SLA attribution for shed work), the checker
// verdicts, and the nemesis timeline. Pure function of the run.
func WriteStormReport(w io.Writer, flavor kern.Flavor, arch machine.Arch, res *StormResult) {
	spec := res.Spec
	fmt.Fprintf(w, "overload storm report (controls %s)\n", onOff(spec.Overload.Enabled))
	fmt.Fprintf(w, "====================================\n")
	fmt.Fprintf(w, "%v/%v — frontend -> cache -> kv, %d open-loop sessions, think %s, arrivals until %s\n",
		flavor, arch, spec.Sessions, obs.FmtNS(uint64(spec.Think)), obs.FmtNS(uint64(spec.Horizon)))
	fmt.Fprintf(w, "policy: %s\n", spec.Overload)
	fmt.Fprintf(w, "trigger window: [%s, %s)\n",
		obs.FmtNS(uint64(res.TriggerAt)), obs.FmtNS(uint64(res.TriggerEnd)))
	fmt.Fprintf(w, "elapsed %.2f simulated ms (%d cluster steps); %d ops completed, %d failed, %d mismatches\n",
		float64(res.Elapsed)/1e6, res.Steps, res.Completed, res.Failed, res.Mismatches)

	fmt.Fprintf(w, "\noffered vs goodput (%s buckets):\n", obs.FmtNS(uint64(spec.Bucket)))
	fmt.Fprintf(w, "  %8s %8s %8s %8s %9s %10s\n",
		"bucket", "offered", "good", "expired", "rejected", "abandoned")
	for i, b := range res.Curve {
		fmt.Fprintf(w, "  %8s %8d %8d %8d %9d %10d\n",
			obs.FmtNS(uint64(machine.Time(i)*machine.Time(spec.Bucket))),
			b.Offered, b.Good, b.Expired, b.Rejected, b.Abandoned)
	}
	if t := res.Tail; t.Offered+t.Good+t.Expired+t.Rejected+t.Abandoned > 0 {
		fmt.Fprintf(w, "  %8s %8d %8d %8d %9d %10d\n",
			"tail", t.Offered, t.Good, t.Expired, t.Rejected, t.Abandoned)
	}

	trigDur := machine.Duration(res.TriggerEnd - res.TriggerAt)
	fmt.Fprintf(w, "\nbaseline goodput %.1f ops/bucket before the trigger\n", res.Baseline)
	if res.Metastable {
		fmt.Fprintf(w, "post-trigger: goodput stayed below 50%% of baseline for %s after the trigger cleared\n",
			obs.FmtNS(uint64(res.CollapsedFor)))
		fmt.Fprintf(w, "verdict: METASTABLE — collapse persisted >= 5x the trigger duration (%s)\n",
			obs.FmtNS(uint64(5*trigDur)))
	} else if res.Recovered {
		fmt.Fprintf(w, "post-trigger: goodput regained 90%% of baseline %s after the trigger cleared\n",
			obs.FmtNS(uint64(res.RecoveryAfter)))
		fmt.Fprintf(w, "verdict: RECOVERED — within the 2x-trigger bound (%s)\n",
			obs.FmtNS(uint64(2*trigDur)))
	} else {
		fmt.Fprintf(w, "post-trigger: collapse lasted %s; 90%% recovery after %s\n",
			obs.FmtNS(uint64(res.CollapsedFor)), obs.FmtNS(uint64(res.RecoveryAfter)))
		fmt.Fprintf(w, "verdict: DEGRADED — neither metastable nor recovered in bound\n")
	}

	kv := res.ReplicaOv()
	fmt.Fprintf(w, "\nper-tier overload counters:\n")
	fmt.Fprintf(w, "  %-9s %9s %9s %9s %14s %17s %14s\n",
		"tier", "admitted", "expired", "rejected", "budget-denied", "breaker-fastfail", "breaker-opens")
	f := res.FrontOv
	fmt.Fprintf(w, "  %-9s %9s %9d %9d %14d %17d %14d\n",
		"frontend", "-", f.Expired, f.Rejected, f.BudgetDenied, f.BreakerFastFail, f.BreakerOpens)
	c := res.Cache.Ov
	fmt.Fprintf(w, "  %-9s %9d %9d %9d %14s %17s %14s\n",
		"cache", c.Admitted, c.Expired, c.Rejected, "-", "-", "-")
	fmt.Fprintf(w, "  %-9s %9d %9d %9d %14s %17s %14s\n",
		"kv", kv.Admitted, kv.Expired, kv.Rejected, "-", "-", "-")

	writeServiceLatency(w, res.Machines, res.Elapsed,
		[]string{"frontend", "frontend.fail", "cache.fetch", "kv.replicate"})
	fmt.Fprintf(w, "\nchecker: %s; split brain: %s\n", res.Check, splitBrainStr(res.SplitBrain))
	writeNemesisBody(w, res.Topo, res.Machines)

	var stacks, blocked, live uint64
	for _, sys := range res.Machines {
		mc := sys.MemoryCensus()
		stacks += uint64(mc.StackHighWater)
		blocked += uint64(mc.BlockedHighWater)
		live += uint64(mc.LiveThreads)
	}
	fmt.Fprintf(w, "\nmemory census (cluster): %d stacks high-water vs %d blocked threads high-water (%d live threads)\n",
		stacks, blocked, live)
}

// StormReport runs the storm and renders the report as a string — the
// registry and machsim entry point.
func StormReport(flavor kern.Flavor, arch machine.Arch, spec StormSpec) string {
	res := RunStorm(flavor, arch, spec)
	var b strings.Builder
	WriteStormReport(&b, flavor, arch, res)
	return b.String()
}
