package workload

import (
	"fmt"
	"io"

	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// NetRPCReportOptions controls the optional sections of the netrpc
// report. Faults mirrors machsim's -faults flag being present; Check its
// -check flag (and additionally runs the final invariant sweep).
type NetRPCReportOptions struct {
	Faults bool
	Check  bool
	// Failover labels the machines for the HA topology (client, primary,
	// replica, client) and prints the recovery section.
	Failover bool
}

// WriteNetRPCReport prints the per-machine block tables plus the device
// subsystem counters for a RunNetRPC result, in machsim's output format.
// The output is a pure function of the run, so two runs of the same spec
// can be compared byte-for-byte regardless of spec.Parallel or
// GOMAXPROCS.
func WriteNetRPCReport(w io.Writer, flavor kern.Flavor, arch machine.Arch, res *NetRPCResult, opt NetRPCReportOptions) {
	fmt.Fprintf(w, "NetRPC on %v/%v — %d cross-machine RPCs completed in %.2f simulated ms (%d cluster steps)\n",
		flavor, arch, res.Completed, float64(res.Elapsed)/1e6, res.Steps)

	for i, sys := range res.Machines {
		name := machineName(i, len(res.Machines))
		if opt.Failover {
			name = haMachineName(i)
		}
		writeMachineSection(w, name, sys, opt)
	}
	writeRecoveryReport(w, res, opt)
}

// writeMachineSection prints one machine's block table, device counters
// and stack-pool summary — the per-machine body every workload report
// shares.
func writeMachineSection(w io.Writer, name string, sys *kern.System, opt NetRPCReportOptions) {
	st := sys.K.Stats
	total := st.TotalBlocks()
	fmt.Fprintf(w, "\n%s — %d blocking operations\n", name, total)
	fmt.Fprintf(w, "%-20s %12s %8s\n", "operation", "blocks", "%")
	for _, r := range stats.DiscardReasons {
		n := st.BlocksWithDiscard[r]
		fmt.Fprintf(w, "%-20s %12d %7.1f%%\n", r, n, stats.Percent(n, total))
	}
	fmt.Fprintf(w, "%-20s %12d %7.1f%%\n", "total stack discards",
		st.TotalDiscards(), stats.Percent(st.TotalDiscards(), total))
	fmt.Fprintf(w, "%-20s %12d %7.1f%%\n", "no stack discards",
		st.TotalNoDiscards(), stats.Percent(st.TotalNoDiscards(), total))
	fmt.Fprintf(w, "%-20s %12d %7.1f%%\n", "stack handoff", st.Handoffs,
		stats.Percent(st.Handoffs, total))
	fmt.Fprintf(w, "%-20s %12d %7.1f%%\n", "recognition", st.Recognitions,
		stats.Percent(st.Recognitions, total))

	fmt.Fprintf(w, "\n  devices:\n")
	fmt.Fprintf(w, "    interrupts taken          %8d (all on the current stack)\n", st.Interrupts)
	hc := sys.Dev.HandlerCost
	fmt.Fprintf(w, "    handler cycles            %8d instrs, %d loads, %d stores\n",
		hc.Instrs, hc.Loads, hc.Stores)
	fmt.Fprintf(w, "    io_done handoffs          %8d, recognitions %d\n",
		sys.Dev.IoDoneHandoffs, st.IoDoneRecognitions)
	for _, d := range sys.Dev.Devices() {
		fmt.Fprintf(w, "    %-8s requests         %8d, interrupts %d, queue high-water %d\n",
			d.Name, d.Requests, d.Interrupts, d.QueueHighWater)
	}
	fmt.Fprintf(w, "    nic tx/rx                 %8d / %d packets\n",
		sys.Net.NIC.TxPackets, sys.Net.NIC.RxPackets)
	fmt.Fprintf(w, "    netmsg forwarded          %8d, delivered %d, inbox high-water %d\n",
		sys.Net.Forwarded, sys.Net.Delivered, sys.Net.InboxHighWater)
	fmt.Fprintf(w, "  kernel stacks: %.3f average in use, %d worst case\n",
		sys.K.Stacks.AverageInUse(), sys.K.Stacks.MaxInUse())
	mc := sys.MemoryCensus()
	fmt.Fprintf(w, "  memory census: %d stacks high-water vs %d blocked threads high-water (%d live threads)\n",
		mc.StackHighWater, mc.BlockedHighWater, mc.LiveThreads)
	writeFaultReport(w, sys, opt)
}

// stampCensus snapshots every machine's memory census onto its recorder
// after a run, so the Chrome export carries the space-claim metadata.
func stampCensus(machines []*kern.System) {
	for _, sys := range machines {
		if r := sys.K.Obs; r != nil {
			r.Census = sys.MemoryCensus()
		}
	}
}

// writeCritPathSection collects every machine's recorded spans, runs the
// critical-path analyzer over them, and prints the attribution table.
// No-op when no machine sampled any span (tracing or sampling off).
func writeCritPathSection(w io.Writer, machines []*kern.System) {
	var spans []obs.Span
	for _, sys := range machines {
		if r := sys.K.Obs; r != nil {
			spans = append(spans, r.Spans()...)
		}
	}
	if len(spans) == 0 {
		return
	}
	fmt.Fprintf(w, "\n")
	obs.WriteCritPath(w, obs.AnalyzeCritPath(spans))
}

// writeRecoveryReport prints the cluster-wide crash/failover accounting
// when the run injected crashes or ran the HA topology.
func writeRecoveryReport(w io.Writer, res *NetRPCResult, opt NetRPCReportOptions) {
	r := res.Recovery
	if !opt.Failover && r.Crashes == 0 {
		return
	}
	writeRecoveryBody(w, r, res.Machines)
}

// writeRecoveryBody prints the shared crash/failover block.
func writeRecoveryBody(w io.Writer, r RecoveryStats, machines []*kern.System) {
	fmt.Fprintf(w, "\nrecovery:\n")
	fmt.Fprintf(w, "  machine crashes %d, warm reboots %d\n", r.Crashes, r.Reboots)
	fmt.Fprintf(w, "  peer deaths detected %d, recoveries %d\n", r.DeathsDetected, r.Recoveries)
	fmt.Fprintf(w, "  failovers %d, failbacks %d, RPCs salvaged %d, abandoned %d\n",
		r.Failovers, r.Failbacks, r.Salvaged, r.Failed)
	fmt.Fprintf(w, "  stale packets dropped %d, heartbeats sent %d\n",
		r.StaleDropped, r.Heartbeats)
	for i, sys := range machines {
		if rec := sys.PanicRecord; rec != nil {
			fmt.Fprintf(w, "  machine %d last %v\n", i, rec)
		}
	}
}

// haMachineName labels the failover topology's machines.
func haMachineName(i int) string {
	switch i {
	case 0:
		return "machine 0 (client)"
	case 1:
		return "machine 1 (primary)"
	case 2:
		return "machine 2 (replica)"
	default:
		return fmt.Sprintf("machine %d (client)", i)
	}
}

// machineName labels machine index i of n in the report. Two-machine
// clusters keep the historical "machine A (client)" / "machine B
// (server)" names so single-pair output is byte-identical to the old
// driver's.
func machineName(i, n int) string {
	role, letter := "client", "A"
	if i%2 == 1 {
		role, letter = "server", "B"
	}
	if n <= 2 {
		return fmt.Sprintf("machine %s (%s)", letter, role)
	}
	return fmt.Sprintf("pair %d machine %s (%s)", i/2, letter, role)
}

// writeFaultReport prints the fault-injection and recovery counters when
// a fault plan or the invariant checker is active.
func writeFaultReport(w io.Writer, sys *kern.System, opt NetRPCReportOptions) {
	if !opt.Check && !opt.Faults {
		return
	}
	fs := sys.FaultStats()
	fmt.Fprintf(w, "\nfaults & recovery:\n")
	fmt.Fprintf(w, "  injected: %s\n", fs)
	fmt.Fprintf(w, "  dev: timeouts %d, retries %d, failures surfaced %d\n",
		sys.Dev.IoTimeouts, sys.Dev.IoRetries, sys.Dev.IoFailures)
	if sys.Net != nil {
		fmt.Fprintf(w, "  net: retransmits %d, acks rx %d, dups dropped %d, lost %d, unacked %d\n",
			sys.Net.Retransmits, sys.Net.AcksRx, sys.Net.DupsDropped,
			sys.Net.Lost, sys.Net.UnackedLen())
	}
	fmt.Fprintf(w, "  aborts: %d; invariant sweeps passed: %d\n",
		sys.Aborted, sys.K.Stats.InvariantPasses)
	if opt.Check {
		sys.K.MustValidate()
		fmt.Fprintf(w, "  final invariant check: clean\n")
	}
}
