package workload

import (
	"strings"
	"testing"

	"repro/internal/kern"
	"repro/internal/machine"
)

// TestStormMetastableOff pins the scenario's negative arm: with the
// overload controls disabled, the canonical trigger (demand burst +
// cache gray + link delay) tips the cluster into a metastable retry
// storm — goodput collapses below half of baseline and stays there for
// at least five trigger durations after the trigger has cleared. The
// servers aren't down; they're saturated servicing retransmits of work
// whose clients gave up long ago.
func TestStormMetastableOff(t *testing.T) {
	spec := DefaultStorm()
	spec.Overload.Enabled = false
	res := RunStorm(kern.MK40, machine.ArchDS3100, spec)

	if res.Baseline <= 0 {
		t.Fatalf("no pre-trigger baseline goodput: %+v", res.Baseline)
	}
	if !res.Metastable {
		t.Fatalf("controls-off run did not go metastable: collapsed for %v (want >= %v)",
			res.CollapsedFor, 5*(res.TriggerEnd-res.TriggerAt))
	}
	// Even a collapsed run must be consistent: abandoned ops are
	// indeterminate, not lost, and nobody split-brains under load.
	if !res.Check.Linearizable {
		t.Fatalf("collapsed run not linearizable: %s", res.Check)
	}
	if len(res.SplitBrain) != 0 {
		t.Fatalf("split brain under overload: %+v", res.SplitBrain)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d mismatches", res.Mismatches)
	}
	// The controls were off, so no tier may have shed anything.
	kv := res.ReplicaOv()
	if res.FrontOv.Shed() != 0 || res.Cache.Ov.Shed() != 0 || kv.Shed() != 0 {
		t.Fatalf("controls-off run shed work: front %+v cache %+v kv %+v",
			res.FrontOv, res.Cache.Ov, kv)
	}
}

// TestStormRecoveredOn pins the positive arm: the same trigger with the
// controls armed costs a dip, not a collapse. Goodput is back to 90% of
// baseline within two trigger durations, every control actually fired,
// and the shed work was provably side-effect free.
func TestStormRecoveredOn(t *testing.T) {
	spec := DefaultStorm()
	res := RunStorm(kern.MK40, machine.ArchDS3100, spec)

	if res.Metastable {
		t.Fatalf("controls-on run went metastable (collapsed %v)", res.CollapsedFor)
	}
	if !res.Recovered {
		t.Fatalf("controls-on run did not recover in bound: 90%% after %v (bound %v)",
			res.RecoveryAfter, 2*(res.TriggerEnd-res.TriggerAt))
	}
	if !res.Check.Linearizable {
		t.Fatalf("armed run not linearizable: %s", res.Check)
	}
	if len(res.SplitBrain) != 0 {
		t.Fatalf("split brain: %+v", res.SplitBrain)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d mismatches", res.Mismatches)
	}
	// The storm must have exercised each control: the breaker opened and
	// fast-failed locally, and at least one service tier shed dead or
	// inadmissible work.
	if res.FrontOv.BreakerOpens == 0 || res.FrontOv.BreakerFastFail == 0 {
		t.Fatalf("breaker never engaged: %+v", res.FrontOv)
	}
	if res.Cache.Ov.Expired+res.Cache.Ov.Rejected == 0 {
		t.Fatalf("cache tier never shed: %+v", res.Cache.Ov)
	}
	if res.Cache.Ov.Admitted == 0 {
		t.Fatal("cache admitted nothing")
	}
	// Every arrival is accounted for exactly once.
	total := 0
	for _, b := range res.Curve {
		total += b.Offered
	}
	total += res.Tail.Offered
	if got := res.Completed + res.Failed; got != total {
		t.Fatalf("ledger mismatch: %d offered vs %d disposed", total, got)
	}
}

// TestStormReport pins the report's machine-checkable lines — CI greps
// for the verdicts.
func TestStormReport(t *testing.T) {
	on := StormReport(kern.MK40, machine.ArchDS3100, DefaultStorm())
	for _, want := range []string{
		"overload storm report (controls on)",
		"verdict: RECOVERED",
		"per-tier overload counters:",
		"frontend.fail",
		"checker: linearizable",
		"split brain: none",
		"burst x5 at 60ms for 20ms",
	} {
		if !strings.Contains(on, want) {
			t.Errorf("controls-on report missing %q:\n%s", want, on)
		}
	}

	offSpec := DefaultStorm()
	offSpec.Overload.Enabled = false
	off := StormReport(kern.MK40, machine.ArchDS3100, offSpec)
	for _, want := range []string{
		"overload storm report (controls off)",
		"verdict: METASTABLE",
	} {
		if !strings.Contains(off, want) {
			t.Errorf("controls-off report missing %q:\n%s", want, off)
		}
	}
}

// TestParallelEquivalenceStorm extends the determinism contract to the
// storm: both arms produce byte-identical reports under the sequential
// and parallel drivers. (The registry sweep also covers the on arm; the
// off arm's collapsed drain runs only here.)
func TestParallelEquivalenceStorm(t *testing.T) {
	for _, arm := range []bool{true, false} {
		spec := DefaultStorm()
		spec.Overload.Enabled = arm
		seq := StormReport(kern.MK40, machine.ArchDS3100, spec)
		spec.Parallel = true
		par := StormReport(kern.MK40, machine.ArchDS3100, spec)
		if seq != par {
			t.Errorf("controls=%v: sequential and parallel reports differ:\nseq:\n%s\npar:\n%s",
				arm, seq, par)
		}
	}
}
