package workload

import (
	"testing"

	"repro/internal/kern"
	"repro/internal/machine"
)

// TestHorizonRoundBalance replays Drive's horizon rounds by hand on the
// 4-machine benchmark workload and checks the property the parallel
// speedup depends on: work is spread across the machines, not
// concentrated on one. If a scheduling or horizon regression serialized
// the rounds (one machine doing nearly all the steps), the parallel
// driver would silently stop scaling; this test catches that shape
// change even on a single-core host where wall-clock can't.
func TestHorizonRoundBalance(t *testing.T) {
	spec := DefaultNetRPC()
	spec.Pairs = 2
	spec.Clients = 32
	spec.DiskReads = 0
	res, _, _ := bootNetRPC(kern.MK40, machine.ArchDS3100, spec)
	c := kern.NewCluster(res.Machines...)
	c.SetDeferredForTest(true)
	defer c.SetDeferredForTest(false)

	var rounds, busyRounds int
	var totalSteps, maxShareSum float64
	for {
		h, ok := c.HorizonForTest()
		if !ok {
			break
		}
		var rmax, rtot uint64
		for _, s := range c.Systems {
			n := s.K.RunHorizon(h)
			rtot += n
			if n > rmax {
				rmax = n
			}
		}
		c.FlushForTest()
		rounds++
		totalSteps += float64(rtot)
		if rtot > 0 {
			busyRounds++
			maxShareSum += float64(rmax) / float64(rtot)
		}
	}
	if rounds == 0 || busyRounds == 0 {
		t.Fatal("cluster quiesced without doing any work")
	}
	avgSteps := totalSteps / float64(rounds)
	avgMaxShare := maxShareSum / float64(busyRounds)
	t.Logf("rounds=%d avg-steps/round=%.1f avg-max-machine-share=%.2f", rounds, avgSteps, avgMaxShare)

	// With 4 machines a perfectly balanced round has max share 0.25; a
	// serialized one has 1.0. The workload sits near 0.3 — fail well
	// before the parallel driver's headroom is gone.
	if avgMaxShare > 0.5 {
		t.Errorf("rounds too unbalanced for parallel speedup: avg max-machine share %.2f > 0.5", avgMaxShare)
	}
	// Rounds must carry real work, or barrier overhead dominates.
	if avgSteps < 8 {
		t.Errorf("rounds too thin: %.1f steps/round", avgSteps)
	}
}
