package workload

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
)

// runNetRPCOnce executes spec under the given GOMAXPROCS and returns the
// three observable artifacts the determinism contract covers: the
// machsim-format report, the exported Chrome trace bytes, and the
// per-machine fault statistics.
func runNetRPCOnce(t *testing.T, spec NetRPCSpec, procs int) (report, trace, faults string) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	spec.Observe = true
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)

	var rep bytes.Buffer
	WriteNetRPCReport(&rep, kern.MK40, machine.ArchDS3100, res,
		NetRPCReportOptions{Faults: !spec.FaultSpec.Zero(), Check: spec.DebugChecks})

	recs := make([]*obs.Recorder, len(res.Machines))
	for i, sys := range res.Machines {
		recs[i] = sys.K.Obs
	}
	var tr bytes.Buffer
	if err := obs.WriteChrome(&tr, recs...); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}

	var fs bytes.Buffer
	for i, sys := range res.Machines {
		fmt.Fprintf(&fs, "machine %d: %s; net rtx=%d acks=%d dups=%d lost=%d; aborts=%d\n",
			i, sys.FaultStats(), sys.Net.Retransmits, sys.Net.AcksRx,
			sys.Net.DupsDropped, sys.Net.Lost, sys.Aborted)
	}
	return rep.String(), tr.String(), fs.String()
}

// testParallelEquivalence checks that -parallel and GOMAXPROCS have no
// observable effect: report, trace export, and fault statistics are
// byte-identical across sequential/parallel × GOMAXPROCS {1,4}.
func testParallelEquivalence(t *testing.T, spec NetRPCSpec) {
	seq := spec
	seq.Parallel = false
	wantRep, wantTr, wantFS := runNetRPCOnce(t, seq, 1)
	if wantRep == "" || wantTr == "" {
		t.Fatal("baseline run produced empty artifacts")
	}
	for _, procs := range []int{1, 4} {
		for _, par := range []bool{false, true} {
			if !par && procs == 1 {
				continue // the baseline itself
			}
			s := spec
			s.Parallel = par
			rep, tr, fs := runNetRPCOnce(t, s, procs)
			tag := fmt.Sprintf("parallel=%v GOMAXPROCS=%d", par, procs)
			if rep != wantRep {
				t.Errorf("%s: report differs from sequential baseline", tag)
			}
			if tr != wantTr {
				t.Errorf("%s: trace export differs from sequential baseline", tag)
			}
			if fs != wantFS {
				t.Errorf("%s: fault stats differ from sequential baseline", tag)
			}
		}
	}
}

func TestParallelEquivalenceNetRPC(t *testing.T) {
	spec := DefaultNetRPC()
	spec.Pairs = 2
	spec.Clients = 2
	testParallelEquivalence(t, spec)
}

func TestParallelEquivalenceLossyNetRPC(t *testing.T) {
	spec := LossyNetRPC()
	spec.Pairs = 2
	spec.Clients = 2
	testParallelEquivalence(t, spec)
}

// TestParallelEquivalenceSingleMachinePair covers the degenerate shapes:
// one pair (two machines) and the legacy single-client layout.
func TestParallelEquivalenceSingleMachinePair(t *testing.T) {
	testParallelEquivalence(t, DefaultNetRPC())
}

// TestNetRPCCompletesAllClients checks the generalized driver's
// accounting: every client on every pair finishes its full RPC count.
func TestNetRPCCompletesAllClients(t *testing.T) {
	spec := DefaultNetRPC()
	spec.Pairs = 2
	spec.Clients = 3
	spec.Parallel = true
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
	want := spec.Pairs * spec.Clients * spec.RPCs
	if res.Completed != want {
		t.Fatalf("Completed = %d, want %d", res.Completed, want)
	}
	if len(res.Machines) != 2*spec.Pairs {
		t.Fatalf("len(Machines) = %d, want %d", len(res.Machines), 2*spec.Pairs)
	}
	if res.Client != res.Machines[0] || res.Server != res.Machines[1] {
		t.Fatal("Client/Server do not alias pair 0's machines")
	}
	for i := range res.DiskReadsDone {
		if res.DiskReadsDone[i] != spec.DiskReads {
			t.Fatalf("DiskReadsDone[%d] = %d, want %d", i, res.DiskReadsDone[i], spec.DiskReads)
		}
	}
}
