// SvcGraph is the multi-tier service-graph workload: four machines in a
// frontend -> cache -> replicated-KV chain. Frontend threads issue Gets
// and Puts to the cache tier; cache workers answer hits locally and run
// misses and write-throughs against the KV replica group through their
// own embedded callers. Per-tier latency comes out of the obs service
// histograms ("frontend" end-to-end, "cache.fetch" for backend trips,
// "kv.replicate" for the replication path), so one report shows how a
// backend crash propagates up the graph.
package workload

import (
	"fmt"
	"io"

	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/svc"
)

// SvcGraphSpec sizes the service-graph workload.
type SvcGraphSpec struct {
	// Ops is how many operations each frontend thread issues; Frontends
	// the frontend thread count.
	Ops       int
	Frontends int
	// Workers is the cache tier's thread-pool size; Capacity its entry
	// bound (FIFO eviction beyond it).
	Workers  int
	Capacity int
	// Shards/Groups shape the backend shard map; Keyspan each frontend's
	// private key range (small, so repeated Gets hit the cache);
	// PutPer10k the write-through mix.
	Shards    int
	Groups    int
	Keyspan   uint64
	PutPer10k int
	// Wire is the one-way NIC latency (dev.DefaultWireLatency if 0).
	Wire machine.Duration
	// Seed drives the frontend scripts; FaultSeed/FaultSpec the fault
	// plan (crash machine indices: 0 frontend, 1 cache, 2 kv primary,
	// 3 kv backup).
	Seed      uint64
	FaultSeed uint64
	FaultSpec fault.Spec
	// RPCTimeout bounds each tier's per-attempt receive; RenewEvery,
	// IdleExit and DeadAfter tune the replicas and links as in KVSpec
	// (arch-scaled defaults when zero).
	RPCTimeout machine.Duration
	RenewEvery machine.Duration
	IdleExit   machine.Duration
	DeadAfter  machine.Duration
	// SampleEvery is the causal-tracing head-sampling rate as in KVSpec:
	// keep the 1-in-N hash class of trace ids; 0 or 1 samples every op.
	SampleEvery int
	// Parallel / DebugChecks as in the other workload specs.
	Parallel    bool
	DebugChecks bool
}

// DefaultSvcGraph returns the standard three-tier run: three frontend
// threads over a two-worker cache with a capacity squeeze, a read-heavy
// mix so the cache actually absorbs traffic.
func DefaultSvcGraph() SvcGraphSpec {
	return SvcGraphSpec{
		Ops:       80,
		Frontends: 3,
		Workers:   2,
		Capacity:  16,
		Keyspan:   12,
		PutPer10k: 1500,
		Seed:      1991,
	}
}

// SvcGraphResult reports one service-graph run.
type SvcGraphResult struct {
	Machines []*kern.System
	Cache    *svc.CacheConfig
	Replicas [svc.NumRanks]*svc.ReplicaConfig

	Completed  int
	Failed     int
	Mismatches uint64
	Salvaged   uint64

	Elapsed  machine.Duration
	Steps    uint64
	Recovery RecoveryStats
}

// ReplicaTotals sums the backend replicas' service counters.
func (r *SvcGraphResult) ReplicaTotals() svc.ReplicaStats {
	kv := KVResult{Replicas: r.Replicas}
	return kv.ReplicaTotals()
}

// RunSvcGraph boots and drives the three-tier cluster.
func RunSvcGraph(flavor kern.Flavor, arch machine.Arch, spec SvcGraphSpec) *SvcGraphResult {
	res, fronts := bootSvcGraph(flavor, arch, spec)
	cluster := kern.NewCluster(res.Machines...)
	cluster.CrossCheck = spec.DebugChecks
	start := res.Machines[0].K.Clock.Now()
	res.Steps = cluster.Drive(spec.Parallel)
	for _, f := range fronts {
		res.Completed += f.Stats.Done
		res.Failed += f.Stats.Failed
		res.Mismatches += f.Stats.Mismatches
		res.Salvaged += f.Stats.Salvaged
	}
	res.Elapsed = machine.Duration(res.Machines[0].K.Clock.Now() - start)
	res.Recovery.fill(res.Machines)
	res.Recovery.Salvaged = res.Salvaged
	res.Recovery.Failed = uint64(res.Failed)
	stampCensus(res.Machines)
	return res
}

// bootSvcGraph builds the chain: machine 0 runs the frontend threads,
// machine 1 the cache tier, machines 2 and 3 the KV replicas. The
// frontend reaches the cache on its only link; the cache reaches rank 0
// on Links[1] and rank 1 on Links[2]; the replicas reach each other on
// their Links[1].
func bootSvcGraph(flavor kern.Flavor, arch machine.Arch, spec SvcGraphSpec) (*SvcGraphResult, []*svc.Caller) {
	cfg := kern.Config{Flavor: flavor, Arch: arch}
	frontends := spec.Frontends
	if frontends <= 0 {
		frontends = 1
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = 2
	}
	ops := spec.Ops
	if ops <= 0 {
		ops = 80
	}

	res := &SvcGraphResult{}
	sys := make([]*kern.System, 4)
	for i := range sys {
		sys[i] = kern.New(cfg)
	}
	frontend, cache, rank0, rank1 := sys[0], sys[1], sys[2], sys[3]
	cache.AddLink()
	cache.AddLink()
	rank0.AddLink()
	rank1.AddLink()
	dev.Connect(frontend.Links[0].NIC, cache.Links[0].NIC, spec.Wire)
	dev.Connect(cache.Links[1].NIC, rank0.Links[0].NIC, spec.Wire)
	dev.Connect(cache.Links[2].NIC, rank1.Links[0].NIC, spec.Wire)
	dev.Connect(rank0.Links[1].NIC, rank1.Links[1].NIC, spec.Wire)
	tmo := provisionTimeouts(arch, spec.RPCTimeout, spec.RenewEvery, spec.IdleExit, spec.DeadAfter)
	for i, s := range sys {
		s.InjectFaults(spec.FaultSeed+uint64(i), spec.FaultSpec)
		for _, n := range s.Links {
			n.EnableReliable()
			n.DeadAfter = tmo.deadAfter
		}
		if spec.DebugChecks {
			s.K.DebugChecks = true
			s.EnableWatchdog()
		}
		r := s.EnableObservation(0)
		r.SetHost(i)
		r.SetSpanSampling(spec.SampleEvery)
	}

	smap := svc.NewShardMap(spec.Shards, spec.Groups)

	// KV replicas, as in the KV workload but with the cache's workers as
	// their only clients and the peer on Links[1].
	for rank, s := range []*kern.System{rank0, rank1} {
		rcfg := &svc.ReplicaConfig{
			Rank: rank, PeerRank: svc.NumRanks - 1 - rank,
			Map: smap, PeerLink: 1, Clients: workers,
			RenewEvery: tmo.renewEvery, IdleExit: tmo.idleExit,
		}
		res.Replicas[rank] = rcfg
		s.RegisterService("kv-replica", func(s *kern.System) {
			svc.InstallReplica(s, rcfg)
		})
	}

	// Cache tier: durable config, volatile contents — a cache crash comes
	// back empty and refills from the backend.
	ccfg := &svc.CacheConfig{
		Map: smap, Links: [svc.NumRanks]int{1, 2},
		Workers: workers, Capacity: spec.Capacity,
		Frontends: frontends, FirstClientID: 0,
		Timeout: tmo.rpcTimeout, IdleExit: tmo.idleExit,
	}
	res.Cache = ccfg
	cache.RegisterService("cache", func(s *kern.System) {
		svc.InstallCache(s, ccfg)
	})

	// Frontend threads: plain callers aimed at the cache port. Both rank
	// slots route over the frontend's single link — the cache is the only
	// service they know.
	var fronts []*svc.Caller
	mine := make([]*svc.Caller, frontends)
	for j := 0; j < frontends; j++ {
		f := &svc.Caller{
			Sys: frontend, Name: fmt.Sprintf("fe%d", j), ID: j,
			Map: smap, Links: [svc.NumRanks]int{0, 0},
			Port: svc.CachePortName, Timeout: tmo.rpcTimeout,
			HistName: "frontend",
			Ops:      kvOps(spec.Seed, j, ops, spec.Keyspan, spec.PutPer10k),
			Track:    true,
		}
		mine[j] = f
		fronts = append(fronts, f)
	}
	frontend.RegisterService("frontends", func(s *kern.System) {
		ct := s.NewTask("frontend")
		for _, f := range mine {
			f.Reset(s)
			s.Start(ct.NewThread(f.Name, f, 10))
		}
	})

	res.Machines = sys
	scheduleCrashPlan(sys, spec.FaultSpec.Crashes)
	return res, fronts
}

// svcGraphMachineName labels the service-graph topology's machines.
func svcGraphMachineName(i int) string {
	switch i {
	case 0:
		return "machine 0 (frontend)"
	case 1:
		return "machine 1 (cache)"
	case 2:
		return "machine 2 (kv primary)"
	default:
		return "machine 3 (kv backup)"
	}
}

// WriteSvcGraphReport prints the three-tier run in machsim's output
// format: headline, tier counters, merged per-tier latency lines, then
// the standard per-machine sections.
func WriteSvcGraphReport(w io.Writer, flavor kern.Flavor, arch machine.Arch, res *SvcGraphResult, opt NetRPCReportOptions) {
	fmt.Fprintf(w, "SvcGraph on %v/%v — %d frontend ops completed (%d failed, %d mismatches) in %.2f simulated ms (%d cluster steps)\n",
		flavor, arch, res.Completed, res.Failed, res.Mismatches,
		float64(res.Elapsed)/1e6, res.Steps)
	cs := res.Cache.Stats
	fmt.Fprintf(w, "cache: %d hits, %d misses, %d write-throughs, %d evictions\n",
		cs.Hits, cs.Misses, cs.WriteThroughs, cs.Evictions)
	t := res.ReplicaTotals()
	fmt.Fprintf(w, "services: %d elections, %d fencing rejections, %d deposed, %d rejoins served, %d syncs\n",
		t.Elections, t.FencingRejections, t.Deposed, t.RejoinsServed, t.Syncs)
	fmt.Fprintf(w, "  leader gets %d, puts %d, replicated %d, solo acks %d\n",
		t.Gets, t.Puts, t.Replicated, t.SoloAcks)
	writeServiceLatency(w, res.Machines, res.Elapsed,
		[]string{"frontend", "cache.fetch", "kv.replicate"})
	writeCritPathSection(w, res.Machines)
	for i, sys := range res.Machines {
		writeMachineSection(w, svcGraphMachineName(i), sys, opt)
	}
	if res.Recovery.Crashes > 0 || opt.Failover {
		writeRecoveryBody(w, res.Recovery, res.Machines)
	}
}
