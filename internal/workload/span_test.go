package workload

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
)

// runKVOnce executes a KV spec under the given GOMAXPROCS and returns
// the two artifacts the tracing determinism contract covers: the full
// report (attribution table included) and the exported Chrome trace
// (spans, flow arrows and census metadata included).
func runKVOnce(t *testing.T, spec KVSpec, procs int) (report, trace string) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	res := RunKV(kern.MK40, machine.ArchDS3100, spec)
	var rep bytes.Buffer
	WriteKVReport(&rep, kern.MK40, machine.ArchDS3100, res,
		NetRPCReportOptions{Faults: !spec.FaultSpec.Zero()})
	recs := make([]*obs.Recorder, len(res.Machines))
	for i, sys := range res.Machines {
		recs[i] = sys.K.Obs
	}
	var tr bytes.Buffer
	if err := obs.WriteChrome(&tr, recs...); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return rep.String(), tr.String()
}

// testSpanEquivalence checks that -parallel, GOMAXPROCS and plain
// reruns have no observable effect on the span pipeline: the report and
// the span-bearing trace export are byte-identical everywhere.
func testSpanEquivalence(t *testing.T, spec KVSpec) {
	seq := spec
	seq.Parallel = false
	wantRep, wantTr := runKVOnce(t, seq, 1)
	if wantRep == "" || wantTr == "" {
		t.Fatal("baseline run produced empty artifacts")
	}
	for _, procs := range []int{1, 4} {
		for _, par := range []bool{false, true} {
			if !par && procs == 1 {
				continue // the baseline itself
			}
			s := spec
			s.Parallel = par
			rep, tr := runKVOnce(t, s, procs)
			tag := fmt.Sprintf("parallel=%v GOMAXPROCS=%d", par, procs)
			if rep != wantRep {
				t.Errorf("%s: report differs from sequential baseline", tag)
			}
			if tr != wantTr {
				t.Errorf("%s: span export differs from sequential baseline", tag)
			}
		}
	}
	// Same-seed rerun: the mint counters and span stores rebuild from
	// scratch to the same bytes.
	rep, tr := runKVOnce(t, seq, 1)
	if rep != wantRep || tr != wantTr {
		t.Error("same-seed rerun differs from first run")
	}
}

func TestParallelEquivalenceSpans(t *testing.T) {
	testSpanEquivalence(t, DefaultKV())
}

// TestParallelEquivalenceSpansCrash is the hard case: the primary
// crashes mid-run and warm-reboots (the acceptance schedule
// primary@40ms:reboot+160ms), so retransmit, retry and election-stall
// spans all appear — and must still export byte-identically.
func TestParallelEquivalenceSpansCrash(t *testing.T) {
	spec := DefaultKV()
	spec.FaultSpec.Crashes = []fault.Crash{{
		Machine:     1,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(160 * 1e6),
	}}
	testSpanEquivalence(t, spec)
}

// collectSpans gathers every machine's recorded spans.
func collectSpans(machines []*kern.System) []obs.Span {
	var spans []obs.Span
	for _, sys := range machines {
		if r := sys.K.Obs; r != nil {
			spans = append(spans, r.Spans()...)
		}
	}
	return spans
}

// TestKVSpanAttributionSums is the tracing acceptance property: under
// the crash schedule, every sampled operation decomposes into segments
// that sum exactly to its measured round trip, every completed client
// op is represented, and the analyzer's worst op matches the kv.op
// histogram's max — the same [start, end) pair observed twice.
func TestKVSpanAttributionSums(t *testing.T) {
	spec := DefaultKV()
	spec.FaultSpec.Crashes = []fault.Crash{{
		Machine:     1,
		At:          machine.Duration(40 * 1e6),
		RebootAfter: machine.Duration(160 * 1e6),
	}}
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)
	if res.Failed != 0 {
		t.Fatalf("failed ops: %d", res.Failed)
	}
	cp := obs.AnalyzeCritPath(collectSpans(res.Machines))
	if len(cp.Ops) != res.Completed {
		t.Fatalf("decomposed %d ops, want every completed op (%d)", len(cp.Ops), res.Completed)
	}
	for _, op := range cp.Ops {
		var sum machine.Duration
		for _, d := range op.Seg {
			sum += d
		}
		if sum != op.Total {
			t.Fatalf("trace %016x: segment sum %d != total %d", op.Trace, sum, op.Total)
		}
		if op.Total != machine.Duration(op.End-op.Start) {
			t.Fatalf("trace %016x: total %d != extent %d", op.Trace, op.Total, op.End-op.Start)
		}
	}
	// The crash must actually show up in the attribution: some op spent
	// time in retry or election.
	var recovery machine.Duration
	for _, op := range cp.Ops {
		recovery += op.Seg[obs.SegRetry] + op.Seg[obs.SegElection]
	}
	if recovery == 0 {
		t.Fatal("no retry/election attribution despite the primary crash")
	}
	// Cross-check against the service histogram: the worst decomposed op
	// is the same interval the kv.op histogram saw as its max.
	m := &obs.Histogram{Name: "kv.op"}
	for _, sys := range res.Machines {
		for _, h := range sys.K.Obs.ServiceHistograms() {
			if h.Name == "kv.op" {
				m.Merge(h)
			}
		}
	}
	if uint64(cp.Slowest[0].Total) != m.Max {
		t.Fatalf("slowest op %dns != kv.op max %dns", cp.Slowest[0].Total, m.Max)
	}
}

// TestKVSampling checks head sampling end to end: a 1-in-N rate keeps a
// strict, deterministic subset of the operations, and no span from an
// unsampled trace leaks into any machine's store.
func TestKVSampling(t *testing.T) {
	spec := DefaultKV()
	spec.SampleEvery = 4
	res := RunKV(kern.MK40, machine.ArchDS3100, spec)
	spans := collectSpans(res.Machines)
	cp := obs.AnalyzeCritPath(spans)
	if len(cp.Ops) == 0 || len(cp.Ops) >= res.Completed {
		t.Fatalf("1/4 sampling decomposed %d of %d ops", len(cp.Ops), res.Completed)
	}
	// Every span belongs to a trace that produced a root — sampling is
	// decided at mint, so no tier records orphan work for dropped traces.
	roots := make(map[uint64]bool)
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots[sp.Trace] = true
		}
	}
	for _, sp := range spans {
		if !roots[sp.Trace] {
			t.Fatalf("span %q of trace %016x has no root: unsampled leak", sp.Name, sp.Trace)
		}
	}
	// Rerun: the sampled subset is the same.
	res2 := RunKV(kern.MK40, machine.ArchDS3100, spec)
	cp2 := obs.AnalyzeCritPath(collectSpans(res2.Machines))
	if len(cp2.Ops) != len(cp.Ops) {
		t.Fatalf("sampled %d ops then %d: head sampling not deterministic", len(cp.Ops), len(cp2.Ops))
	}
}

// TestSvcGraphSpanChain checks cross-tier continuation: a frontend op
// that misses the cache must carry its trace through the cache worker
// into the KV backend — one causal tree spanning three machines, whose
// cache.fetch span is a child, not a fresh root.
func TestSvcGraphSpanChain(t *testing.T) {
	res := RunSvcGraph(kern.MK40, machine.ArchDS3100, DefaultSvcGraph())
	spans := collectSpans(res.Machines)
	cp := obs.AnalyzeCritPath(spans)
	if len(cp.Ops) != res.Completed {
		t.Fatalf("decomposed %d ops, want %d", len(cp.Ops), res.Completed)
	}
	// Roots are frontend ops only; cache.fetch and kv.serve spans hang
	// inside some frontend trace.
	names := map[string]int{}
	rootByTrace := map[uint64]bool{}
	for _, sp := range spans {
		if sp.Parent == 0 {
			if sp.Name != "frontend" {
				t.Fatalf("unexpected root span %q — only frontends mint traces here", sp.Name)
			}
			rootByTrace[sp.Trace] = true
		}
		names[sp.Name]++
	}
	for _, want := range []string{"frontend", "cache.serve", "cache.fetch", "kv.serve", "net.wire"} {
		if names[want] == 0 {
			t.Fatalf("no %q spans recorded (got %v)", want, names)
		}
	}
	for _, sp := range spans {
		if !rootByTrace[sp.Trace] {
			t.Fatalf("span %q of trace %016x not part of any frontend op", sp.Name, sp.Trace)
		}
	}
}
