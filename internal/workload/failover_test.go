package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// crashSpec is the acceptance scenario: the HA topology with the primary
// server crashing mid-run and warm-rebooting while RPCs are in flight.
// The reboot lands while the clients still have work, so both the
// failover and the failback paths run.
func crashSpec() NetRPCSpec {
	spec := DefaultNetRPC()
	spec.Failover = true
	spec.FaultSpec.Crashes = []fault.Crash{
		{Machine: 1, At: machine.Time(40 * 1e6), RebootAfter: machine.Duration(40 * 1e6)},
	}
	return spec
}

// TestCrashFailoverCompletesAllRPCs is the headline acceptance check:
// crashing the primary of four machines mid-run still completes 100% of
// the RPCs — the clients fail over to the replica and fail back after
// the warm reboot — with the invariant sweep and watchdog on throughout.
func TestCrashFailoverCompletesAllRPCs(t *testing.T) {
	spec := crashSpec()
	spec.DebugChecks = true
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)

	want := 2 * spec.RPCs // one client thread on each of the two client machines
	if res.Completed != want {
		t.Fatalf("Completed = %d, want %d (Failed=%d)", res.Completed, want, res.Recovery.Failed)
	}
	r := res.Recovery
	if r.Failed != 0 {
		t.Fatalf("%d RPCs abandoned", r.Failed)
	}
	if r.Crashes != 1 || r.Reboots != 1 {
		t.Fatalf("Crashes=%d Reboots=%d, want 1/1", r.Crashes, r.Reboots)
	}
	if r.Failovers == 0 || r.Failbacks == 0 {
		t.Fatalf("Failovers=%d Failbacks=%d — clients never switched", r.Failovers, r.Failbacks)
	}
	if r.DeathsDetected == 0 || r.Recoveries == 0 {
		t.Fatalf("DeathsDetected=%d Recoveries=%d — membership layer silent", r.DeathsDetected, r.Recoveries)
	}
	if r.Salvaged == 0 {
		t.Fatal("no RPC needed a retry despite the crash window")
	}
	if res.Machines[1].Incarnation != 2 {
		t.Fatalf("primary incarnation = %d, want 2", res.Machines[1].Incarnation)
	}
	if res.Machines[1].PanicRecord == nil {
		t.Fatal("primary kept no panic record")
	}
}

// TestCrashWithoutRebootFailsOver: a primary that dies for good still
// loses no RPCs — the clients finish on the replica and never fail back.
func TestCrashWithoutRebootFailsOver(t *testing.T) {
	spec := DefaultNetRPC()
	spec.Failover = true
	spec.DiskReads = 0 // the primary's readers would die with it anyway
	spec.FaultSpec.Crashes = []fault.Crash{
		{Machine: 1, At: machine.Time(40 * 1e6)},
	}
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
	if want := 2 * spec.RPCs; res.Completed != want {
		t.Fatalf("Completed = %d, want %d", res.Completed, want)
	}
	r := res.Recovery
	if r.Crashes != 1 || r.Reboots != 0 {
		t.Fatalf("Crashes=%d Reboots=%d, want 1/0", r.Crashes, r.Reboots)
	}
	if r.Failovers == 0 || r.Failbacks != 0 {
		t.Fatalf("Failovers=%d Failbacks=%d, want >0/0", r.Failovers, r.Failbacks)
	}
	if !res.Machines[1].Down {
		t.Fatal("unrebooted primary reports itself up")
	}
}

// TestFailoverWithoutCrashes: the HA topology with no fault plan behaves
// like plain netrpc — everything completes on the primary, no switches.
func TestFailoverWithoutCrashes(t *testing.T) {
	spec := DefaultNetRPC()
	spec.Failover = true
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
	if want := 2 * spec.RPCs; res.Completed != want {
		t.Fatalf("Completed = %d, want %d", res.Completed, want)
	}
	r := res.Recovery
	if r.Failovers != 0 || r.Failbacks != 0 || r.Salvaged != 0 || r.Failed != 0 {
		t.Fatalf("quiet run switched servers: %+v", r)
	}
}

// TestParallelEquivalenceCrashFailover extends the determinism contract
// to the crash path: report, trace export and fault statistics are
// byte-identical across sequential/parallel × GOMAXPROCS while a machine
// crashes and warm-reboots mid-run.
func TestParallelEquivalenceCrashFailover(t *testing.T) {
	testParallelEquivalence(t, crashSpec())
}

// TestRecoveryReportSection: the machsim report for a crash run carries
// the recovery accounting and the HA machine labels.
func TestRecoveryReportSection(t *testing.T) {
	spec := crashSpec()
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
	var buf bytes.Buffer
	WriteNetRPCReport(&buf, kern.MK40, machine.ArchDS3100, res,
		NetRPCReportOptions{Failover: true})
	out := buf.String()
	for _, want := range []string{
		"machine 1 (primary)",
		"machine 2 (replica)",
		"recovery:",
		"machine crashes 1, warm reboots 1",
		"failovers",
		"RPCs salvaged",
		"machine 1 last panic inc=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestSameSeedRunsIdentical: two fresh runs of the same crash spec agree
// byte-for-byte — the crash/reboot/failover machinery introduces no
// hidden nondeterminism (map iteration, timer identity, etc).
func TestSameSeedRunsIdentical(t *testing.T) {
	render := func() string {
		res := RunNetRPC(kern.MK40, machine.ArchDS3100, crashSpec())
		var buf bytes.Buffer
		WriteNetRPCReport(&buf, kern.MK40, machine.ArchDS3100, res,
			NetRPCReportOptions{Failover: true})
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same-seed runs differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
