package workload

import (
	"testing"

	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

// TestNetRPCCompletesAndDiscards is the cross-machine acceptance check:
// the client finishes every RPC, the disk readers drain, device-I/O
// blocks are ≥90% stack discards, and every continuation mechanism the
// device subsystem adds fires at least once on both machines.
func TestNetRPCCompletesAndDiscards(t *testing.T) {
	spec := DefaultNetRPC()
	res := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)

	if res.Completed != spec.RPCs {
		t.Fatalf("completed %d RPCs, want %d", res.Completed, spec.RPCs)
	}
	for i, n := range res.DiskReadsDone {
		if n != spec.DiskReads {
			t.Fatalf("machine %d finished %d disk reads, want %d", i, n, spec.DiskReads)
		}
	}
	for i, sys := range []*kern.System{res.Client, res.Server} {
		st := sys.K.Stats
		disc := st.BlocksWithDiscard[stats.BlockDeviceIO]
		noDisc := st.BlocksWithoutDiscard[stats.BlockDeviceIO]
		if disc+noDisc == 0 {
			t.Fatalf("machine %d saw no device-io blocks", i)
		}
		if pct := stats.Percent(disc, disc+noDisc); pct < 90 {
			t.Fatalf("machine %d device-io discards = %.1f%%, want >= 90%%", i, pct)
		}
		if st.Handoffs == 0 || st.Recognitions == 0 {
			t.Fatalf("machine %d: handoffs=%d recognitions=%d, want both nonzero",
				i, st.Handoffs, st.Recognitions)
		}
		if st.Interrupts == 0 {
			t.Fatalf("machine %d took no interrupts", i)
		}
		if sys.Dev.IoDoneHandoffs == 0 || st.IoDoneRecognitions == 0 {
			t.Fatalf("machine %d: ioDoneHandoffs=%d ioDoneRecognitions=%d, want both nonzero",
				i, sys.Dev.IoDoneHandoffs, st.IoDoneRecognitions)
		}
		if sys.Net.NIC.TxPackets != uint64(spec.RPCs) || sys.Net.NIC.RxPackets != uint64(spec.RPCs) {
			t.Fatalf("machine %d nic tx/rx = %d/%d, want %d/%d",
				i, sys.Net.NIC.TxPackets, sys.Net.NIC.RxPackets, spec.RPCs, spec.RPCs)
		}
		if sys.Net.Dropped != 0 {
			t.Fatalf("machine %d dropped %d packets", i, sys.Net.Dropped)
		}
	}
}

// TestNetRPCDeterministic runs the cluster twice and requires identical
// step counts, clocks and counters — the two-clock stepping rule admits
// exactly one schedule.
func TestNetRPCDeterministic(t *testing.T) {
	spec := DefaultNetRPC()
	r1 := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
	r2 := RunNetRPC(kern.MK40, machine.ArchDS3100, spec)

	if r1.Steps != r2.Steps || r1.Completed != r2.Completed || r1.Elapsed != r2.Elapsed {
		t.Fatalf("runs diverged: steps %d/%d completed %d/%d elapsed %d/%d",
			r1.Steps, r2.Steps, r1.Completed, r2.Completed, r1.Elapsed, r2.Elapsed)
	}
	for i := range []int{0, 1} {
		s1 := []*kern.System{r1.Client, r1.Server}[i]
		s2 := []*kern.System{r2.Client, r2.Server}[i]
		if s1.K.Clock.Now() != s2.K.Clock.Now() {
			t.Fatalf("machine %d clocks diverged: %d vs %d", i, s1.K.Clock.Now(), s2.K.Clock.Now())
		}
		if *s1.K.Stats != *s2.K.Stats {
			t.Fatalf("machine %d kernel stats diverged:\n%+v\n%+v", i, s1.K.Stats, s2.K.Stats)
		}
	}
}

// TestNetRPCProcessModel checks the same workload completes on the MK32
// kernel: the netmsg path's fast handoffs are MK40-only, but the wire
// protocol and the device queueing are kernel-style independent.
func TestNetRPCProcessModel(t *testing.T) {
	spec := DefaultNetRPC()
	spec.RPCs = 20
	spec.DiskReads = 10
	res := RunNetRPC(kern.MK32, machine.ArchDS3100, spec)
	if res.Completed != spec.RPCs {
		t.Fatalf("completed %d RPCs, want %d", res.Completed, spec.RPCs)
	}
	st := res.Client.K.Stats
	if got := st.BlocksWithoutDiscard[stats.BlockDeviceIO]; got == 0 {
		t.Fatal("MK32 device-io blocks should keep their stacks")
	}
}
