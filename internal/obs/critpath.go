// Critical-path analysis over recorded spans: decompose each traced
// operation's end-to-end latency into disjoint segments whose sum is
// exactly the operation's measured round trip.
//
// The decomposition is a deepest-cover sweep over the root span's
// interval. At every instant the instant is attributed to exactly one
// covering span: the deepest one in the causal tree (a child explains
// time better than its parent), ties broken by segment priority (an
// election stall beats the retransmit it caused beats the wire flight
// underneath), then by later start, then by larger span id — all
// deterministic. Instants no child covers fall to the root's own
// segment (queueing at the originating tier). Because the sweep
// partitions [root.Start, root.End) exactly, per-segment sums equal the
// measured round trip by construction — the property the report's
// attribution table is trusted for.
package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/machine"
)

// OpPath is one traced operation's latency decomposition.
type OpPath struct {
	Trace  uint64
	Name   string
	Detail string
	Start  machine.Time
	End    machine.Time
	// Total is End - Start; Seg sums to Total exactly.
	Total machine.Duration
	Seg   [NumSegs]machine.Duration
	// Spans counts the spans that contributed to this operation.
	Spans int
}

// CritPath aggregates the decomposition across all traced operations.
type CritPath struct {
	Ops []OpPath
	// PerSeg holds one histogram per segment, observing that segment's
	// share of every operation (zeros included, so quantiles are over
	// the full op population).
	PerSeg [NumSegs]*Histogram
	// Slowest lists the slowest operations, worst first.
	Slowest []OpPath
}

// SlowestN is how many worst-case operations the analyzer retains for
// the report's slowest-ops listing.
const SlowestN = 5

// AnalyzeCritPath groups spans by trace, decomposes every trace that has
// a root span (Parent 0), and aggregates. Input order does not matter;
// output order is deterministic (ops sorted by start time, then trace
// id).
func AnalyzeCritPath(spans []Span) *CritPath {
	cp := &CritPath{}
	for i := range cp.PerSeg {
		cp.PerSeg[i] = &Histogram{Name: Seg(i).String()}
	}
	byTrace := make(map[uint64][]Span)
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	traces := make([]uint64, 0, len(byTrace))
	for tr := range byTrace {
		traces = append(traces, tr)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i] < traces[j] })
	for _, tr := range traces {
		if op, ok := decompose(byTrace[tr]); ok {
			cp.Ops = append(cp.Ops, op)
		}
	}
	sort.Slice(cp.Ops, func(i, j int) bool {
		a, b := cp.Ops[i], cp.Ops[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Trace < b.Trace
	})
	for _, op := range cp.Ops {
		for s := range op.Seg {
			cp.PerSeg[s].Observe(uint64(op.Seg[s]))
		}
	}
	cp.Slowest = append([]OpPath(nil), cp.Ops...)
	sort.Slice(cp.Slowest, func(i, j int) bool {
		a, b := cp.Slowest[i], cp.Slowest[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return a.Trace < b.Trace
	})
	if len(cp.Slowest) > SlowestN {
		cp.Slowest = cp.Slowest[:SlowestN]
	}
	return cp
}

// decompose runs the deepest-cover sweep over one trace's spans.
func decompose(spans []Span) (OpPath, bool) {
	// Root: the span with no parent; if a trace somehow has several
	// (it should not), the earliest-starting smallest-id one wins.
	rootIdx := -1
	for i, sp := range spans {
		if sp.Parent != 0 {
			continue
		}
		if rootIdx < 0 || sp.Start < spans[rootIdx].Start ||
			(sp.Start == spans[rootIdx].Start && sp.ID < spans[rootIdx].ID) {
			rootIdx = i
		}
	}
	if rootIdx < 0 {
		return OpPath{}, false
	}
	root := spans[rootIdx]
	op := OpPath{
		Trace:  root.Trace,
		Name:   root.Name,
		Detail: root.Detail,
		Start:  root.Start,
		End:    root.End,
		Total:  root.Duration(),
		Spans:  len(spans),
	}
	if op.Total == 0 {
		return op, true
	}

	// Depth of each span in the causal tree. Spans whose parent was not
	// recorded (sampling or a crashed recorder) hang off the root.
	byID := make(map[uint64]int, len(spans))
	for i, sp := range spans {
		if _, dup := byID[sp.ID]; !dup {
			byID[sp.ID] = i
		}
	}
	depth := make([]int, len(spans))
	var depthOf func(i int, hops int) int
	depthOf = func(i, hops int) int {
		if depth[i] != 0 || i == rootIdx {
			return depth[i]
		}
		if hops > len(spans) { // parent cycle; treat as root child
			return 1
		}
		p, ok := byID[spans[i].Parent]
		if !ok || p == i {
			depth[i] = 1
		} else {
			depth[i] = depthOf(p, hops+1) + 1
		}
		return depth[i]
	}
	for i := range spans {
		depthOf(i, 0)
	}

	// Elementary intervals: every clamped span boundary inside the root.
	bounds := make([]machine.Time, 0, 2*len(spans))
	bounds = append(bounds, root.Start, root.End)
	for _, sp := range spans {
		if sp.Start > root.Start && sp.Start < root.End {
			bounds = append(bounds, sp.Start)
		}
		if sp.End > root.Start && sp.End < root.End {
			bounds = append(bounds, sp.End)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	for b := 0; b+1 < len(bounds); b++ {
		lo, hi := bounds[b], bounds[b+1]
		if hi <= lo {
			continue
		}
		best := rootIdx
		for i, sp := range spans {
			if i == rootIdx || sp.Start > lo || sp.End < hi {
				continue
			}
			if better(spans, depth, i, best, rootIdx) {
				best = i
			}
		}
		op.Seg[spans[best].Seg] += machine.Duration(hi - lo)
	}
	return op, true
}

// better reports whether covering span i beats the incumbent: deeper
// wins, then higher segment priority, then later start, then larger id.
func better(spans []Span, depth []int, i, best, rootIdx int) bool {
	if best == rootIdx {
		return true
	}
	a, b := spans[i], spans[best]
	if depth[i] != depth[best] {
		return depth[i] > depth[best]
	}
	if a.Seg != b.Seg {
		return a.Seg > b.Seg
	}
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	return a.ID > b.ID
}

// WriteCritPath renders the attribution table and the slowest-ops
// listing. The slowest-ops lines print exact nanosecond integers so the
// per-op "segments sum to the round trip" property is checkable from the
// text itself.
func WriteCritPath(w io.Writer, cp *CritPath) {
	if cp == nil || len(cp.Ops) == 0 {
		fmt.Fprintf(w, "critical-path attribution: no sampled operations\n")
		return
	}
	var grand machine.Duration
	var perSeg [NumSegs]machine.Duration
	for _, op := range cp.Ops {
		grand += op.Total
		for s, d := range op.Seg {
			perSeg[s] += d
		}
	}
	fmt.Fprintf(w, "critical-path attribution (%d sampled ops):\n", len(cp.Ops))
	fmt.Fprintf(w, "  %-10s %7s %12s %12s %12s\n", "segment", "share", "p50", "p99", "max")
	for s := Seg(0); s < NumSegs; s++ {
		h := cp.PerSeg[s]
		share := 0.0
		if grand > 0 {
			share = 100 * float64(perSeg[s]) / float64(grand)
		}
		fmt.Fprintf(w, "  %-10s %6.1f%% %12s %12s %12s\n", s.String(), share,
			FmtNS(h.Quantile(0.50)), FmtNS(h.Quantile(0.99)), FmtNS(h.Max))
	}
	fmt.Fprintf(w, "  slowest ops:\n")
	for _, op := range cp.Slowest {
		fmt.Fprintf(w, "    %-12s trace %016x  total %dns =", op.Name, op.Trace, op.Total)
		for s := Seg(0); s < NumSegs; s++ {
			if s > 0 {
				fmt.Fprintf(w, " +")
			}
			fmt.Fprintf(w, " %s %dns", s.String(), op.Seg[s])
		}
		fmt.Fprintf(w, "  (%d spans)\n", op.Spans)
	}
}
