package obs

import (
	"fmt"
	"io"
)

// WriteReport prints the profile report: the per-continuation table and
// the four latency histograms. The output is deterministic — profiles
// iterate in sorted name order and all numbers derive from the
// deterministic event stream.
func (r *Recorder) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "continuation profile:\n")
	profs := r.Profiles()
	if len(profs) == 0 {
		fmt.Fprintf(w, "  (no continuation events)\n")
	} else {
		fmt.Fprintf(w, "  %-28s %8s %9s %7s %10s %11s %9s\n",
			"continuation", "blocks", "handoffs", "calls", "recog-hit", "recog-miss", "hit-rate")
		for _, c := range profs {
			rate := "-"
			if c.RecognitionHits+c.RecognitionMisses > 0 {
				rate = fmt.Sprintf("%.1f%%", c.HitRate())
			}
			fmt.Fprintf(w, "  %-28s %8d %9d %7d %10d %11d %9s\n",
				c.Name, c.Blocks, c.Handoffs, c.Calls,
				c.RecognitionHits, c.RecognitionMisses, rate)
		}
	}
	fmt.Fprintf(w, "\nlatency histograms (power-of-two buckets, simulated ns):\n")
	for i := range r.Hist {
		writeHistogram(w, r.Hist[i])
	}
	if svc := r.ServiceHistograms(); len(svc) > 0 {
		fmt.Fprintf(w, "\nservice latency histograms (per tier):\n")
		for _, h := range svc {
			writeServiceHistogram(w, h)
		}
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, "\nevent ring: %d event(s) evicted; histograms and profiles cover the full run\n",
			r.Dropped)
	}
}

func writeHistogram(w io.Writer, h *Histogram) {
	if h.Count == 0 {
		fmt.Fprintf(w, "  %-18s (no samples)\n", h.Name)
		return
	}
	fmt.Fprintf(w, "  %-18s count %d, min %s, avg %s, max %s\n",
		h.Name, h.Count, fmtNS(h.Min), fmtNS(uint64(h.Mean()+0.5)), fmtNS(h.Max))
	lo, hi := -1, 0
	var peak uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
		if n > peak {
			peak = n
		}
	}
	for i := lo; i <= hi; i++ {
		n := h.Buckets[i]
		blo, bhi := BucketBounds(i)
		bar := barFor(n, peak)
		fmt.Fprintf(w, "    [%8s, %8s) %10d %s\n", fmtNS(blo), fmtNS(bhi), n, bar)
	}
}

// writeServiceHistogram renders a per-tier histogram with its quantile
// summary line (tail latency is the point of the service histograms).
func writeServiceHistogram(w io.Writer, h *Histogram) {
	if h.Count == 0 {
		fmt.Fprintf(w, "  %-18s (no samples)\n", h.Name)
		return
	}
	fmt.Fprintf(w, "  %-18s count %d, p50 %s, p99 %s, max %s\n",
		h.Name, h.Count, fmtNS(h.Quantile(0.50)), fmtNS(h.Quantile(0.99)), fmtNS(h.Max))
}

const barWidth = 25

func barFor(n, peak uint64) string {
	if n == 0 || peak == 0 {
		return ""
	}
	w := int(n * barWidth / peak)
	if w == 0 {
		w = 1
	}
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// FmtNS renders a nanosecond quantity with a human unit — the exact
// formatting the profile report uses, exported so workload reports print
// latencies identically.
func FmtNS(v uint64) string { return fmtNS(v) }

// fmtNS renders a nanosecond quantity with a human unit, deterministic
// fixed-precision formatting.
func fmtNS(v uint64) string {
	switch {
	case v < 1_000:
		return fmt.Sprintf("%dns", v)
	case v < 1_000_000:
		return fmt.Sprintf("%.1fus", float64(v)/1e3)
	case v < 1_000_000_000:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	}
}
