package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/machine"
)

// fillRecorder emits a small synthetic kernel history: two threads, a
// block/handoff pair, an interrupt, and an RPC bracket.
func fillRecorder() *Recorder {
	clock := machine.NewClock()
	r := NewRecorder(clock, 128)
	r.Emit(KernelEntry, 1, "task/cli", "", "mach_msg(rpc)")
	r.Emit(RPCStart, 1, "task/cli", "", "echo")
	clock.Advance(100)
	r.Emit(ThreadBlocked, 1, "task/cli", "mach_msg_continue", "message receive")
	clock.Advance(50)
	r.EmitArg(StackHandoff, 2, "task/srv", "mach_msg_continue", "from task/cli", 1)
	r.Emit(Recognition, 2, "task/srv", "mach_msg_continue", "mach_msg_continue")
	clock.Advance(25)
	r.Emit(Interrupt, 0, "", "", "disk read")
	clock.Advance(825)
	r.Emit(RPCEnd, 1, "task/cli", "", "")
	r.Emit(KernelExit, 1, "task/cli", "", "syscall return 0")
	return r
}

func TestWriteChromeValidAndDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, fillRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, fillRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical recorders exported different bytes")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", a.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 8 events + 2 thread_name metadata records.
	if len(doc.TraceEvents) != 10 {
		t.Fatalf("traceEvents = %d, want 10", len(doc.TraceEvents))
	}
	if doc.OtherData["machines"] != float64(1) {
		t.Fatalf("otherData.machines = %v", doc.OtherData["machines"])
	}
	// Timestamps are microseconds with integer-math formatting: the
	// ThreadBlocked event at 100 ns must read 0.100.
	if !strings.Contains(a.String(), `"ts":0.100`) {
		t.Fatalf("missing 0.100 µs timestamp:\n%s", a.String())
	}
}

func TestChromeRoundTrip(t *testing.T) {
	r := fillRecorder()
	want := r.Events()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	machines, err := ReadChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 1 || machines[0].PID != 0 {
		t.Fatalf("machines = %+v", machines)
	}
	got := machines[0].Events
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if machines[0].ThreadNames[1] != "task/cli" || machines[0].ThreadNames[2] != "task/srv" {
		t.Fatalf("thread names = %v", machines[0].ThreadNames)
	}
}

func TestChromeMultiMachineMerge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fillRecorder(), fillRecorder()); err != nil {
		t.Fatal(err)
	}
	machines, err := ReadChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 || machines[0].PID != 0 || machines[1].PID != 1 {
		t.Fatalf("machines = %+v", machines)
	}
	// Both machines survive the merged, time-sorted writing intact.
	if len(machines[0].Events) != 8 || len(machines[1].Events) != 8 {
		t.Fatalf("event counts = %d, %d", len(machines[0].Events), len(machines[1].Events))
	}
	// A nil recorder is skipped but still counted in the machines total.
	buf.Reset()
	if err := WriteChrome(&buf, nil, fillRecorder()); err != nil {
		t.Fatal(err)
	}
	machines, err = ReadChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 1 || machines[0].PID != 1 {
		t.Fatalf("nil-skipping machines = %+v", machines)
	}
}

func TestSummarizeReplayMatchesLive(t *testing.T) {
	r := fillRecorder()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	out, err := Summarize(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"trace: 1 machine(s), 8 events",
		"machine 0: 8 events",
		"task/cli",
		"task/srv",
		"continuation profile:",
		"mach_msg_continue",
		"latency histograms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// The replayed report must match the live recorder's report exactly.
	var live strings.Builder
	r.WriteReport(&live)
	if !strings.Contains(out, live.String()) {
		t.Fatalf("replayed report diverges from live:\nlive:\n%s\nsummary:\n%s",
			live.String(), out)
	}
}

func TestSummarizeRejectsGarbage(t *testing.T) {
	if _, err := Summarize([]byte("not json")); err == nil {
		t.Fatal("Summarize accepted garbage")
	}
}

// fillRecoveryRecorder emits a synthetic crash-recovery history: a
// crash, a warm reboot with heartbeats, a peer death + recovery seen
// from the far side, and a failover/failback pair.
func fillRecoveryRecorder() *Recorder {
	clock := machine.NewClock()
	r := NewRecorder(clock, 128)
	clock.Advance(40_000_000)
	r.EmitArg(MachineCrash, 0, "", "", "3 threads, 2 ports, 1 pending I/O, 0 unacked", 1)
	clock.Advance(20_000_000)
	r.EmitArg(PeerDeath, 0, "", "", "ne0", 0)
	r.EmitArg(Failover, 7, "net-client/cli", "", "primary -> replica", 1)
	clock.Advance(60_000_000)
	r.EmitArg(MachineReboot, 0, "", "", "", 2)
	r.EmitArg(Heartbeat, 3, "netmsg", "", "ne0", 2)
	r.EmitArg(Heartbeat, 6, "netmsg1", "", "ne1", 2)
	clock.Advance(1_000_000)
	r.EmitArg(PeerDeath, 0, "", "", "ne0", 1)
	r.EmitArg(Failover, 7, "net-client/cli", "", "replica -> primary", 0)
	return r
}

// TestSummarizeRecoverySection is the traceview golden test for the
// crash-recovery events: a synthetic trace must render the exact count
// line and timeline.
func TestSummarizeRecoverySection(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fillRecoveryRecorder()); err != nil {
		t.Fatal(err)
	}
	out, err := Summarize(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	golden := `  recovery: 1 crashes, 1 reboots, 2 heartbeats, 1 peer deaths, 1 recoveries, 1 failovers, 1 failbacks
         40.00ms  crash of incarnation 1: 3 threads, 2 ports, 1 pending I/O, 0 unacked
         60.00ms  peer on ne0 declared dead
         60.00ms  net-client/cli failover primary -> replica
        120.00ms  warm reboot as incarnation 2
        121.00ms  peer on ne0 heard again
        121.00ms  net-client/cli failback replica -> primary
`
	if !strings.Contains(out, golden) {
		t.Fatalf("summary recovery section does not match golden.\nwant:\n%s\ngot:\n%s", golden, out)
	}
}

// TestSummarizeNoRecoverySectionWhenClean: traces without recovery
// events keep their historical shape.
func TestSummarizeNoRecoverySectionWhenClean(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fillRecorder()); err != nil {
		t.Fatal(err)
	}
	out, err := Summarize(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "recovery:") {
		t.Fatalf("clean trace grew a recovery section:\n%s", out)
	}
}

// TestSummarizeSpansShedSection: op spans closed with a "shed:<reason>"
// detail are tallied by reason in the spanview header; traces with no
// shed spans keep their historical shape.
func TestSummarizeSpansShedSection(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 128)
	r.RecordSpan(Span{Trace: 7, ID: 1, Name: "kv.op", Seg: SegQueue,
		Detail: "shed:deadline", Start: 0, End: 100})
	r.RecordSpan(Span{Trace: 8, ID: 1, Name: "kv.op", Seg: SegQueue,
		Detail: "shed:breaker", Start: 0, End: 50})
	r.RecordSpan(Span{Trace: 9, ID: 1, Name: "kv.op", Seg: SegQueue,
		Detail: "shed:deadline", Start: 10, End: 60})
	r.RecordSpan(Span{Trace: 10, ID: 1, Name: "kv.op", Seg: SegQueue,
		Start: 0, End: 200})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	out, err := SummarizeSpans(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shed ops: 3 (breaker 1, deadline 2)") {
		t.Fatalf("missing shed section:\n%s", out)
	}

	buf.Reset()
	clean := NewRecorder(machine.NewClock(), 128)
	clean.RecordSpan(Span{Trace: 7, ID: 1, Name: "kv.op", Seg: SegQueue,
		Start: 0, End: 100})
	if err := WriteChrome(&buf, clean); err != nil {
		t.Fatal(err)
	}
	out, err = SummarizeSpans(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "shed ops:") {
		t.Fatalf("clean trace grew a shed section:\n%s", out)
	}
}
