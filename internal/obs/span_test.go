package obs

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// TestHistogramQuantileBoundaries pins the quantile estimator's edge
// behavior: empty histograms, the extreme quantiles, and distributions
// confined to a single bucket must all produce clamped, sane values.
func TestHistogramQuantileBoundaries(t *testing.T) {
	obs := func(vs ...uint64) *Histogram {
		h := &Histogram{Name: "t"}
		for _, v := range vs {
			h.Observe(v)
		}
		return h
	}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want uint64
	}{
		{"empty-q0", obs(), 0, 0},
		{"empty-q1", obs(), 1, 0},
		{"empty-mid", obs(), 0.5, 0},
		// q=0 rounds the target up to the first sample: the estimate
		// interpolates through that sample's bucket (100 lives in
		// [64,128), whose occupancy is 1, so the estimate is the bucket
		// top) and stays inside [Min, Max].
		{"q0-first-bucket", obs(100, 200, 400), 0, 128},
		// q=1 lands in the last occupied bucket and clamps to max.
		{"q1-clamps-to-max", obs(100, 200, 400), 1, 400},
		// A single sample answers every quantile with itself.
		{"single-q0", obs(777), 0, 777},
		{"single-mid", obs(777), 0.5, 777},
		{"single-q1", obs(777), 1, 777},
		// All samples in one power-of-two bucket: every quantile is
		// clamped into [min, max] of that bucket's occupants.
		{"single-bucket-q0", obs(1000, 1001, 1023), 0, 1000},
		{"single-bucket-q1", obs(1000, 1001, 1023), 1, 1023},
		// Zero is its own bucket with exact bounds.
		{"zero-bucket", obs(0, 0, 0), 0.99, 0},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	// Quantiles never leave [Min, Max] for any q on any distribution.
	h := obs(3, 17, 9000, 1<<33)
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		v := h.Quantile(q)
		if v < h.Min || v > h.Max {
			t.Errorf("Quantile(%v) = %d outside [%d, %d]", q, v, h.Min, h.Max)
		}
	}
}

// TestHistogramMergeCommutative checks that Merge order does not matter:
// a∪b and b∪a must agree on every statistic a report derives.
func TestHistogramMergeCommutative(t *testing.T) {
	build := func(vs []uint64) *Histogram {
		h := &Histogram{Name: "m"}
		for _, v := range vs {
			h.Observe(v)
		}
		return h
	}
	a := []uint64{0, 5, 5, 129, 4096}
	b := []uint64{1, 70, 1 << 20}
	ab := build(a)
	ab.Merge(build(b))
	ba := build(b)
	ba.Merge(build(a))
	if ab.Count != ba.Count || ab.Sum != ba.Sum || ab.Min != ba.Min || ab.Max != ba.Max {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
	if ab.Buckets != ba.Buckets {
		t.Fatal("merged buckets differ by merge order")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if ab.Quantile(q) != ba.Quantile(q) {
			t.Fatalf("Quantile(%v) differs by merge order", q)
		}
	}
	// Merging an empty histogram is a no-op either way.
	solo := build(a)
	solo.Merge(build(nil))
	solo.Merge(nil)
	if solo.Count != uint64(len(a)) || solo.Min != 0 || solo.Max != 4096 {
		t.Fatalf("empty merge disturbed the receiver: %+v", solo)
	}
	empty := build(nil)
	empty.Merge(build(a))
	if empty.Count != uint64(len(a)) || empty.Min != 0 || empty.Max != 4096 {
		t.Fatalf("merge into empty lost samples: %+v", empty)
	}
}

// TestResetClearsSpanState checks that Reset drops the span store, the
// span-id serial, and the stamped census, while keeping the host index
// and sampling rate — those are configuration, not recorded state.
func TestResetClearsSpanState(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 8)
	r.SetHost(3)
	r.SetSpanSampling(4)
	first := r.NextSpanID(42)
	r.RecordSpan(Span{Trace: 42, ID: first, Name: "x", Start: 0, End: 10})
	r.Census = Census{StackHighWater: 2, BlockedHighWater: 9, LiveThreads: 5}
	if len(r.Spans()) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(r.Spans()))
	}

	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatalf("Reset kept %d spans", len(r.Spans()))
	}
	if !r.Census.Zero() {
		t.Fatalf("Reset kept census %+v", r.Census)
	}
	if r.Host() != 3 {
		t.Fatalf("Reset dropped the host index: %d", r.Host())
	}
	allKept := true
	for i := uint64(1); i <= 64; i++ {
		if !r.SampleTrace(i) {
			allKept = false
			break
		}
	}
	if allKept {
		t.Fatal("Reset appears to have dropped the 1/4 sampling rate")
	}
	// The serial restarts: the same mint sequence reproduces.
	if again := r.NextSpanID(42); again != first {
		t.Fatalf("span-id serial survived Reset: %x vs %x", again, first)
	}
}

// TestRecordSpanDrops pins the free disabled paths: nil recorders and
// unsampled (zero-trace) spans record nothing.
func TestRecordSpanDrops(t *testing.T) {
	var nilRec *Recorder
	nilRec.RecordSpan(Span{Trace: 1, ID: 1})
	if nilRec.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
	if nilRec.SampleTrace(7) {
		t.Fatal("nil recorder sampled a trace")
	}
	r := NewRecorder(machine.NewClock(), 8)
	r.RecordSpan(Span{Trace: 0, ID: 1, Name: "dropped"})
	if len(r.Spans()) != 0 {
		t.Fatal("zero-trace span was recorded")
	}
}

// TestMintDeterminism checks the id mint: pure functions of their
// inputs, never the 0 sentinel, and spread across distinct inputs.
func TestMintDeterminism(t *testing.T) {
	seen := map[uint64]bool{}
	for client := uint64(0); client < 8; client++ {
		for op := uint64(1); op <= 64; op++ {
			id := MintTraceID(client, op)
			if id == 0 {
				t.Fatalf("MintTraceID(%d, %d) = 0", client, op)
			}
			if id != MintTraceID(client, op) {
				t.Fatal("MintTraceID not deterministic")
			}
			if seen[id] {
				t.Fatalf("trace id collision at client %d op %d", client, op)
			}
			seen[id] = true
		}
	}
	if MintSpanID(42, 1) == MintSpanID(42, 2) {
		t.Fatal("span ids collide across salts")
	}
	if MintSpanID(42, 1) != MintSpanID(42, 1) {
		t.Fatal("MintSpanID not deterministic")
	}
}

// TestSampleTraceRate checks head sampling: rate 1 keeps everything,
// rate N keeps the deterministic 1-in-N hash class.
func TestSampleTraceRate(t *testing.T) {
	r := NewRecorder(machine.NewClock(), 8)
	for i := uint64(1); i <= 100; i++ {
		if !r.SampleTrace(i) {
			t.Fatalf("default sampling dropped trace %d", i)
		}
	}
	r.SetSpanSampling(4)
	kept := 0
	for i := uint64(1); i <= 4000; i++ {
		if r.SampleTrace(i) {
			kept++
		}
	}
	if kept < 800 || kept > 1200 {
		t.Fatalf("1/4 sampling kept %d of 4000", kept)
	}
	// The decision is a pure function of the id.
	for i := uint64(1); i <= 100; i++ {
		if r.SampleTrace(i) != r.SampleTrace(i) {
			t.Fatal("sampling decision not stable")
		}
	}
}

// TestParseSample covers the 1/N grammar and its rejections.
func TestParseSample(t *testing.T) {
	good := map[string]int{"1/1": 1, "1/2": 2, "1/1000": 1000}
	for in, want := range good {
		n, err := ParseSample(in)
		if err != nil || n != want {
			t.Fatalf("ParseSample(%q) = %d, %v; want %d", in, n, err, want)
		}
	}
	bad := map[string]string{
		"":       "want 1/N",
		"4":      "want 1/N",
		"2/4":    "numerator must be 1",
		"1/x":    "bad denominator",
		"1/0":    "denominator must be >= 1",
		"1/-3":   "denominator must be >= 1",
		"1/2/3":  "bad denominator",
		"one/10": "numerator must be 1",
	}
	for in, frag := range bad {
		_, err := ParseSample(in)
		if err == nil {
			t.Fatalf("ParseSample(%q) accepted", in)
		}
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("ParseSample(%q) error %q lacks %q", in, err, frag)
		}
	}
}

// TestSegRoundTrip checks Seg naming both ways — the export format
// depends on it.
func TestSegRoundTrip(t *testing.T) {
	for g := Seg(0); g < NumSegs; g++ {
		s := g.String()
		if s == "unknown" {
			t.Fatalf("segment %d has no name", g)
		}
		got, ok := SegFromString(s)
		if !ok || got != g {
			t.Fatalf("SegFromString(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := SegFromString("bogus"); ok {
		t.Fatal("SegFromString accepted an unknown name")
	}
}
