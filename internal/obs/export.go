package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// This file holds the exporters: the Chrome trace_event JSON writer
// (loadable in Perfetto / about:tracing), the matching reader, and the
// traceview summary built by replaying an exported file through a fresh
// Recorder. All output is byte-deterministic for identical inputs:
// events are written in a total order (time, machine, sequence),
// timestamps are formatted with integer math, and every table iterates
// sorted keys.

// WriteChrome writes the retained events of one or more recorders as
// Chrome trace_event JSON. Each recorder becomes one pid ("machine N"),
// each thread one tid; events are instant events ("ph":"i") carrying the
// kind as the name and the full event payload in args, so a reader can
// reconstruct the event stream exactly.
func WriteChrome(w io.Writer, recs ...*Recorder) error {
	type pidEvent struct {
		pid int
		ev  Event
	}
	var all []pidEvent
	for pid, r := range recs {
		if r == nil {
			continue
		}
		for _, ev := range r.Events() {
			all = append(all, pidEvent{pid, ev})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.When != b.ev.When {
			return a.ev.When < b.ev.When
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.ev.Seq < b.ev.Seq
	})

	// Thread-name metadata: the first event naming a tid wins.
	type pidTid struct{ pid, tid int }
	names := make(map[pidTid]string)
	var nameOrder []pidTid
	for _, pe := range all {
		if pe.ev.TID <= 0 || pe.ev.Thread == "" {
			continue
		}
		k := pidTid{pe.pid, pe.ev.TID}
		if _, ok := names[k]; !ok {
			names[k] = pe.ev.Thread
			nameOrder = append(nameOrder, k)
		}
	}
	sort.Slice(nameOrder, func(i, j int) bool {
		if nameOrder[i].pid != nameOrder[j].pid {
			return nameOrder[i].pid < nameOrder[j].pid
		}
		return nameOrder[i].tid < nameOrder[j].tid
	})

	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line []byte) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.Write(line)
	}
	for _, k := range nameOrder {
		line := fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			k.pid, k.tid, jsonString(names[k]))
		emit([]byte(line))
	}
	for _, pe := range all {
		ev := pe.ev
		var line bytes.Buffer
		fmt.Fprintf(&line,
			`{"name":%s,"cat":"kernel","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{"seq":%d,"ns":%d`,
			jsonString(ev.Kind.String()), pe.pid, ev.TID, microTS(ev.When), ev.Seq, uint64(ev.When))
		if ev.Arg != 0 {
			fmt.Fprintf(&line, `,"arg":%d`, ev.Arg)
		}
		if ev.Thread != "" {
			fmt.Fprintf(&line, `,"thread":%s`, jsonString(ev.Thread))
		}
		if ev.Cont != "" {
			fmt.Fprintf(&line, `,"cont":%s`, jsonString(ev.Cont))
		}
		if ev.Detail != "" {
			fmt.Fprintf(&line, `,"detail":%s`, jsonString(ev.Detail))
		}
		line.WriteString("}}")
		emit(line.Bytes())
	}
	writeChromeSpans(&b, emit, recs)
	b.WriteString("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"machsim\"")
	fmt.Fprintf(&b, ",\"machines\":%d", len(recs))
	writeChromeCensus(&b, recs)
	b.WriteString("}}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// writeChromeSpans emits the recorded causal spans as complete events
// ("ph":"X") plus flow arrows ("s"/"f" pairs) connecting every span to a
// parent that lives on a different machine — the cross-machine hops of
// one traced operation render as arrows in Perfetto. Ids larger than
// 2^53 do not survive JSON numbers, so trace/span/parent ids are encoded
// as fixed-width hex strings.
func writeChromeSpans(b *bytes.Buffer, emit func([]byte), recs []*Recorder) {
	type pidSpan struct {
		pid int
		sp  Span
	}
	var all []pidSpan
	byID := make(map[uint64]pidSpan)
	for pid, r := range recs {
		if r == nil {
			continue
		}
		for _, sp := range r.Spans() {
			ps := pidSpan{pid, sp}
			all = append(all, ps)
			if _, ok := byID[sp.ID]; !ok {
				byID[sp.ID] = ps
			}
		}
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.sp.Start != b.sp.Start {
			return a.sp.Start < b.sp.Start
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.sp.ID < b.sp.ID
	})
	for _, ps := range all {
		sp := ps.sp
		var line bytes.Buffer
		fmt.Fprintf(&line,
			`{"name":%s,"cat":"span","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,`+
				`"args":{"trace":"%016x","span":"%016x","parent":"%016x","seg":%s,"ns":%d,"durns":%d`,
			jsonString(sp.Name), ps.pid, sp.TID, microTS(sp.Start),
			microTS(machine.Time(sp.Duration())), sp.Trace, sp.ID, sp.Parent,
			jsonString(sp.Seg.String()), uint64(sp.Start), uint64(sp.Duration()))
		if sp.Detail != "" {
			fmt.Fprintf(&line, `,"detail":%s`, jsonString(sp.Detail))
		}
		line.WriteString("}}")
		emit(line.Bytes())
		if sp.Parent == 0 {
			continue
		}
		par, ok := byID[sp.Parent]
		if !ok || par.pid == ps.pid {
			continue
		}
		start := fmt.Sprintf(
			`{"name":"causal","cat":"span","ph":"s","id":"%016x","pid":%d,"tid":%d,"ts":%s}`,
			sp.ID, par.pid, par.sp.TID, microTS(par.sp.Start))
		finish := fmt.Sprintf(
			`{"name":"causal","cat":"span","ph":"f","bp":"e","id":"%016x","pid":%d,"tid":%d,"ts":%s}`,
			sp.ID, ps.pid, sp.TID, microTS(sp.Start))
		emit([]byte(start))
		emit([]byte(finish))
	}
}

// writeChromeCensus appends the per-machine memory census to otherData
// when any recorder carries one; traces exported without a census keep
// their historical byte shape.
func writeChromeCensus(b *bytes.Buffer, recs []*Recorder) {
	any := false
	for _, r := range recs {
		if r != nil && !r.Census.Zero() {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString(",\"census\":[")
	first := true
	for pid, r := range recs {
		if r == nil || r.Census.Zero() {
			continue
		}
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(b, `{"machine":%d,"stacks_hw":%d,"blocked_hw":%d,"threads":%d}`,
			pid, r.Census.StackHighWater, r.Census.BlockedHighWater, r.Census.LiveThreads)
	}
	b.WriteString("]")
}

// microTS renders a nanosecond clock reading as the microsecond
// timestamp Chrome expects, with integer math so the formatting is
// deterministic.
func microTS(t machine.Time) string {
	ns := uint64(t)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Strings always marshal.
		panic(err)
	}
	return string(b)
}

// MachineEvents is the decoded event stream of one pid in an exported
// trace.
type MachineEvents struct {
	PID    int
	Events []Event
	// Spans holds the machine's exported causal spans, in export order.
	Spans []Span
	// ThreadNames maps tid to the exported thread_name metadata.
	ThreadNames map[int]string
}

type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Args struct {
		Name   string `json:"name"` // metadata events
		Seq    uint64 `json:"seq"`
		NS     uint64 `json:"ns"`
		Arg    int    `json:"arg"`
		Thread string `json:"thread"`
		Cont   string `json:"cont"`
		Detail string `json:"detail"`
		// Span payload ("cat":"span","ph":"X"): hex-encoded ids plus
		// exact nanosecond endpoints.
		Trace  string `json:"trace"`
		Span   string `json:"span"`
		Parent string `json:"parent"`
		Seg    string `json:"seg"`
		DurNS  uint64 `json:"durns"`
	} `json:"args"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ReadChrome parses a trace written by WriteChrome back into per-machine
// event streams, ordered by pid.
func ReadChrome(data []byte) ([]*MachineEvents, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: bad trace JSON: %w", err)
	}
	byPID := make(map[int]*MachineEvents)
	var pids []int
	machineFor := func(pid int) *MachineEvents {
		m, ok := byPID[pid]
		if !ok {
			m = &MachineEvents{PID: pid, ThreadNames: make(map[int]string)}
			byPID[pid] = m
			pids = append(pids, pid)
		}
		return m
	}
	for _, ce := range doc.TraceEvents {
		m := machineFor(ce.PID)
		if ce.Ph == "M" {
			if ce.Name == "thread_name" {
				m.ThreadNames[ce.TID] = ce.Args.Name
			}
			continue
		}
		if ce.Cat == "span" {
			if ce.Ph != "X" {
				continue // flow arrows carry no extra payload
			}
			sp, err := spanFromChrome(ce)
			if err != nil {
				return nil, err
			}
			m.Spans = append(m.Spans, sp)
			continue
		}
		kind, ok := KindFromString(ce.Name)
		if !ok {
			continue
		}
		m.Events = append(m.Events, Event{
			Seq:    ce.Args.Seq,
			When:   machine.Time(ce.Args.NS),
			Kind:   kind,
			TID:    ce.TID,
			Arg:    ce.Args.Arg,
			Thread: ce.Args.Thread,
			Cont:   ce.Args.Cont,
			Detail: ce.Args.Detail,
		})
	}
	sort.Ints(pids)
	out := make([]*MachineEvents, 0, len(byPID))
	for _, pid := range pids {
		m := byPID[pid]
		// Within one machine the emit sequence is the event order.
		sort.SliceStable(m.Events, func(i, j int) bool {
			return m.Events[i].Seq < m.Events[j].Seq
		})
		out = append(out, m)
	}
	return out, nil
}

// spanFromChrome decodes one exported span event.
func spanFromChrome(ce chromeEvent) (Span, error) {
	tr, err := strconv.ParseUint(ce.Args.Trace, 16, 64)
	if err != nil {
		return Span{}, fmt.Errorf("obs: span %q: bad trace id %q", ce.Name, ce.Args.Trace)
	}
	id, err := strconv.ParseUint(ce.Args.Span, 16, 64)
	if err != nil {
		return Span{}, fmt.Errorf("obs: span %q: bad span id %q", ce.Name, ce.Args.Span)
	}
	par, err := strconv.ParseUint(ce.Args.Parent, 16, 64)
	if err != nil {
		return Span{}, fmt.Errorf("obs: span %q: bad parent id %q", ce.Name, ce.Args.Parent)
	}
	seg, ok := SegFromString(ce.Args.Seg)
	if !ok {
		return Span{}, fmt.Errorf("obs: span %q: unknown segment %q", ce.Name, ce.Args.Seg)
	}
	return Span{
		Trace:  tr,
		ID:     id,
		Parent: par,
		Name:   ce.Name,
		Seg:    seg,
		TID:    ce.TID,
		Detail: ce.Args.Detail,
		Start:  machine.Time(ce.Args.NS),
		End:    machine.Time(ce.Args.NS + ce.Args.DurNS),
	}, nil
}

// SummarizeSpans ingests a Chrome trace exported by WriteChrome and
// returns the spanview report: span counts per machine, the
// critical-path attribution table recomputed from the exported spans,
// and the memory census when the export carries one.
func SummarizeSpans(data []byte) (string, error) {
	machines, err := ReadChrome(data)
	if err != nil {
		return "", err
	}
	var all []Span
	var b bytes.Buffer
	total := 0
	for _, m := range machines {
		total += len(m.Spans)
		all = append(all, m.Spans...)
	}
	fmt.Fprintf(&b, "spans: %d machine(s), %d spans\n", len(machines), total)
	for _, m := range machines {
		fmt.Fprintf(&b, "  machine %d: %d spans\n", m.PID, len(m.Spans))
	}
	writeShedSection(&b, all)
	b.WriteString("\n")
	WriteCritPath(&b, AnalyzeCritPath(all))
	writeCensusSection(&b, data)
	return b.String(), nil
}

// writeShedSection tallies op spans that closed on an overload shed
// (Detail "shed:<reason>" — deadline, expired, rejected, retry-budget,
// breaker) so the spanview shows where an armed run refused work.
// Silent when nothing shed, which keeps unarmed span summaries
// unchanged.
func writeShedSection(b *bytes.Buffer, all []Span) {
	shed := make(map[string]int)
	for _, sp := range all {
		if strings.HasPrefix(sp.Detail, "shed:") {
			shed[strings.TrimPrefix(sp.Detail, "shed:")]++
		}
	}
	if len(shed) == 0 {
		return
	}
	reasons := make([]string, 0, len(shed))
	n := 0
	for r, c := range shed {
		reasons = append(reasons, r)
		n += c
	}
	sort.Strings(reasons)
	fmt.Fprintf(b, "shed ops: %d (", n)
	for i, r := range reasons {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %d", r, shed[r])
	}
	b.WriteString(")\n")
}

// writeCensusSection echoes the exported per-machine memory census, when
// present.
func writeCensusSection(b *bytes.Buffer, data []byte) {
	var doc struct {
		OtherData struct {
			Census []struct {
				Machine   int `json:"machine"`
				StacksHW  int `json:"stacks_hw"`
				BlockedHW int `json:"blocked_hw"`
				Threads   int `json:"threads"`
			} `json:"census"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.OtherData.Census) == 0 {
		return
	}
	b.WriteString("\nmemory census:\n")
	for _, c := range doc.OtherData.Census {
		fmt.Fprintf(b, "  machine %d: %d kernel stacks high-water for %d blocked threads high-water (%d live threads)\n",
			c.Machine, c.StacksHW, c.BlockedHW, c.Threads)
	}
}

// Summarize ingests a Chrome trace exported by WriteChrome and returns
// the traceview report: per-thread timelines plus the histogram and
// continuation tables recomputed by replaying the events.
func Summarize(data []byte) (string, error) {
	machines, err := ReadChrome(data)
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	total := 0
	var lo, hi machine.Time
	firstSample := true
	for _, m := range machines {
		total += len(m.Events)
		for _, ev := range m.Events {
			if firstSample || ev.When < lo {
				lo = ev.When
			}
			if firstSample || ev.When > hi {
				hi = ev.When
			}
			firstSample = false
		}
	}
	fmt.Fprintf(&b, "trace: %d machine(s), %d events, %s - %s\n",
		len(machines), total, fmtNS(uint64(lo)), fmtNS(uint64(hi)))
	for _, m := range machines {
		fmt.Fprintf(&b, "\nmachine %d: %d events\n", m.PID, len(m.Events))
		writeThreadTable(&b, m)
		writeRecoverySection(&b, m)
		rep := NewReplay()
		for _, ev := range m.Events {
			rep.Ingest(ev)
		}
		b.WriteString("\n")
		rep.WriteReport(&b)
	}
	return b.String(), nil
}

// writeRecoverySection summarizes the crash-recovery events of one
// machine — crashes, warm reboots, peer deaths/recoveries, failovers —
// as a count line plus a chronological timeline. Heartbeats are counted
// but not listed (a long trace may carry many). Silent when the trace
// holds no recovery events, so pre-crash traces keep their exact shape.
func writeRecoverySection(b *bytes.Buffer, m *MachineEvents) {
	var lines []string
	var crashes, reboots, hbs, deaths, recoveries, overs, backs, elections, fences int
	add := func(when machine.Time, what string) {
		lines = append(lines, fmt.Sprintf("    %12s  %s", fmtNS(uint64(when)), what))
	}
	for _, ev := range m.Events {
		switch ev.Kind {
		case MachineCrash:
			crashes++
			add(ev.When, fmt.Sprintf("crash of incarnation %d: %s", ev.Arg, ev.Detail))
		case MachineReboot:
			reboots++
			add(ev.When, fmt.Sprintf("warm reboot as incarnation %d", ev.Arg))
		case Heartbeat:
			hbs++
		case PeerDeath:
			if ev.Arg == 1 {
				recoveries++
				add(ev.When, fmt.Sprintf("peer on %s heard again", ev.Detail))
			} else {
				deaths++
				add(ev.When, fmt.Sprintf("peer on %s declared dead", ev.Detail))
			}
		case Failover:
			name := ev.Thread
			if name == "" {
				name = fmt.Sprintf("tid %d", ev.TID)
			}
			if ev.Arg == 1 {
				overs++
				add(ev.When, fmt.Sprintf("%s failover %s", name, ev.Detail))
			} else {
				backs++
				add(ev.When, fmt.Sprintf("%s failback %s", name, ev.Detail))
			}
		case Election:
			elections++
			add(ev.When, fmt.Sprintf("election: %s -> epoch %d", ev.Detail, ev.Arg))
		case Fencing:
			fences++
			add(ev.When, fmt.Sprintf("fencing rejection: %s (stale epoch %d)", ev.Detail, ev.Arg))
		}
	}
	if crashes+reboots+hbs+deaths+recoveries+overs+backs+elections+fences == 0 {
		return
	}
	fmt.Fprintf(b, "\n  recovery: %d crashes, %d reboots, %d heartbeats, %d peer deaths, %d recoveries, %d failovers, %d failbacks\n",
		crashes, reboots, hbs, deaths, recoveries, overs, backs)
	if elections+fences > 0 {
		fmt.Fprintf(b, "  services: %d elections, %d fencing rejections\n", elections, fences)
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
}

// threadRow is one line of the per-thread timeline table.
type threadRow struct {
	tid                  int
	name                 string
	events               int
	first, last          machine.Time
	blocks, handoffs     uint64
	recogs, interruptsOn uint64
}

func writeThreadTable(b *bytes.Buffer, m *MachineEvents) {
	rows := make(map[int]*threadRow)
	var order []int
	rowFor := func(tid int) *threadRow {
		r, ok := rows[tid]
		if !ok {
			r = &threadRow{tid: tid, name: m.ThreadNames[tid]}
			rows[tid] = r
			order = append(order, tid)
		}
		return r
	}
	for _, ev := range m.Events {
		if ev.TID <= 0 {
			continue
		}
		r := rowFor(ev.TID)
		if r.name == "" && ev.Thread != "" {
			r.name = ev.Thread
		}
		if r.events == 0 || ev.When < r.first {
			r.first = ev.When
		}
		if ev.When > r.last {
			r.last = ev.When
		}
		r.events++
		switch ev.Kind {
		case ThreadBlocked:
			r.blocks++
		case StackHandoff:
			r.handoffs++
		case Recognition:
			r.recogs++
		case Interrupt:
			r.interruptsOn++
		}
	}
	sort.Ints(order)
	fmt.Fprintf(b, "  %4s  %-16s %8s %12s %12s %7s %9s %7s %7s\n",
		"tid", "thread", "events", "first", "last", "blocks", "handoffs", "recogs", "intr")
	for _, tid := range order {
		r := rows[tid]
		fmt.Fprintf(b, "  %4d  %-16s %8d %12s %12s %7d %9d %7d %7d\n",
			r.tid, r.name, r.events, fmtNS(uint64(r.first)), fmtNS(uint64(r.last)),
			r.blocks, r.handoffs, r.recogs, r.interruptsOn)
	}
}
