package obs

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		s := k.String()
		if s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindFromString(s)
		if !ok || got != k {
			t.Fatalf("KindFromString(%q) = %v, %v; want %v", s, got, ok, k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("KindFromString accepted an unknown name")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024, 1 << 40} {
		h.Observe(v)
	}
	if h.Count != 8 {
		t.Fatalf("Count = %d", h.Count)
	}
	if h.Min != 0 || h.Max != 1<<40 {
		t.Fatalf("Min/Max = %d/%d", h.Min, h.Max)
	}
	// 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1023 -> 10; 1024 -> 11;
	// 2^40 -> 41.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1, 41: 1}
	for i, n := range h.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	// Every observed value must fall inside its bucket's bounds.
	for _, v := range []uint64{0, 1, 2, 1023, 1024, 1 << 40, 1 << 63, ^uint64(0)} {
		var h2 Histogram
		h2.Observe(v)
		for i, n := range h2.Buckets {
			if n == 0 {
				continue
			}
			lo, hi := BucketBounds(i)
			if v < lo || (v >= hi && hi != ^uint64(0)) || (hi == ^uint64(0) && v < lo) {
				t.Fatalf("value %d counted in bucket %d = [%d, %d)", v, i, lo, hi)
			}
		}
	}
}

func TestBucketBoundsCoverRange(t *testing.T) {
	if lo, hi := BucketBounds(0); lo != 0 || hi != 1 {
		t.Fatalf("bucket 0 = [%d, %d)", lo, hi)
	}
	// Consecutive buckets must tile the range with no gap or overlap.
	for i := 1; i < 64; i++ {
		prevLo, prevHi := BucketBounds(i - 1)
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("gap between bucket %d [%d,%d) and %d [%d,%d)", i-1, prevLo, prevHi, i, lo, hi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d = [%d, %d) is empty or wrapped", i, lo, hi)
		}
	}
	if lo, hi := BucketBounds(64); lo != 1<<63 || hi != ^uint64(0) {
		t.Fatalf("bucket 64 = [%d, %d)", lo, hi)
	}
}

func TestRingEviction(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 4)
	for i := 0; i < 6; i++ {
		r.Emit(Note, i, "t", "", "n")
		clock.Advance(10)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped)
	}
	// Statistics still cover everything, including the evicted events.
	if r.KindCounts[Note] != 6 {
		t.Fatalf("KindCounts[Note] = %d, want 6", r.KindCounts[Note])
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	// Emit order is preserved: the two oldest (seq 0, 1) are gone.
	for i, ev := range evs {
		if ev.Seq != uint64(i+2) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+2)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(machine.NewClock(), 0)
	if r.capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", r.capacity, DefaultCapacity)
	}
}

// TestLatencyStateMachine drives a synthetic blocked->wakeup->dispatch
// sequence and a handoff sequence through the recorder and checks which
// histograms each feeds.
func TestLatencyStateMachine(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 64)

	// Thread 1 blocks with a continuation at t=0, wakes at t=100, runs at
	// t=130: one block->wakeup sample of 100, one dispatch sample of 30.
	r.Emit(ThreadBlocked, 1, "a", "cont_a", "message receive")
	clock.Advance(100)
	r.Emit(Wakeup, 1, "a", "", "")
	clock.Advance(30)
	r.Emit(Dispatch, 1, "a", "", "")

	bw := r.Hist[LatBlockToWakeup]
	if bw.Count != 1 || bw.Sum != 100 {
		t.Fatalf("block->wakeup count/sum = %d/%d, want 1/100", bw.Count, bw.Sum)
	}
	dl := r.Hist[LatDispatch]
	if dl.Count != 1 || dl.Sum != 30 {
		t.Fatalf("dispatch count/sum = %d/%d, want 1/30", dl.Count, dl.Sum)
	}

	// Thread 2 blocks at t=130 and receives a stack handoff from thread 3
	// at t=150: its wait closes (20) and its dispatch latency is zero —
	// the handoff fast path shows up in bucket 0.
	r.Emit(ThreadBlocked, 2, "b", "cont_b", "message receive")
	clock.Advance(20)
	r.EmitArg(StackHandoff, 2, "b", "cont_b", "from c", 3)
	if bw.Count != 2 || bw.Sum != 120 {
		t.Fatalf("block->wakeup count/sum = %d/%d, want 2/120", bw.Count, bw.Sum)
	}
	if dl.Count != 2 || dl.Buckets[0] != 1 {
		t.Fatalf("dispatch count = %d, bucket0 = %d; want handoff's zero sample", dl.Count, dl.Buckets[0])
	}

	// A yield (Arg=1) is not a block: the thread stayed runnable, so its
	// queue time goes to dispatch latency, not block->wakeup.
	r.EmitArg(ThreadBlocked, 4, "d", "", "preempted", 1)
	clock.Advance(40)
	r.Emit(Dispatch, 4, "d", "", "")
	if bw.Count != 2 {
		t.Fatalf("yield leaked into block->wakeup: count = %d", bw.Count)
	}
	if dl.Count != 3 || dl.Sum != 30+0+40 {
		t.Fatalf("dispatch count/sum = %d/%d, want 3/70", dl.Count, dl.Sum)
	}
}

func TestStackLifetime(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 64)
	r.Emit(StackAttach, 1, "a", "", "")
	clock.Advance(500)
	// Handoff from 1 to 2 closes 1's tenure and opens 2's.
	r.EmitArg(StackHandoff, 2, "b", "", "from a", 1)
	clock.Advance(250)
	r.Emit(StackDetach, 2, "b", "", "")
	h := r.Hist[LatStackLifetime]
	if h.Count != 2 || h.Sum != 750 || h.Min != 250 || h.Max != 500 {
		t.Fatalf("stack lifetime count/sum/min/max = %d/%d/%d/%d", h.Count, h.Sum, h.Min, h.Max)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 64)
	// An unmatched end is ignored.
	r.Emit(RPCEnd, 1, "a", "", "")
	if r.Hist[LatRPCRoundTrip].Count != 0 {
		t.Fatal("unmatched RPCEnd produced a sample")
	}
	r.Emit(RPCStart, 1, "a", "", "echo")
	clock.Advance(1000)
	r.Emit(RPCEnd, 1, "a", "", "")
	h := r.Hist[LatRPCRoundTrip]
	if h.Count != 1 || h.Sum != 1000 {
		t.Fatalf("rpc count/sum = %d/%d", h.Count, h.Sum)
	}
}

func TestContinuationProfiler(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 64)
	r.Emit(ThreadBlocked, 1, "a", "mach_msg_continue", "message receive")
	r.Emit(Recognition, 2, "b", "mach_msg_continue", "mach_msg_continue")
	r.Emit(RecognitionMiss, 2, "b", "mach_msg_continue", "other_continue")
	r.EmitArg(StackHandoff, 1, "a", "mach_msg_continue", "from b", 2)
	r.Emit(ContinuationCall, 3, "c", "thread_start", "thread_start")

	p := r.Profile("mach_msg_continue")
	if p == nil {
		t.Fatal("no profile for mach_msg_continue")
	}
	if p.Blocks != 1 || p.Handoffs != 1 || p.RecognitionHits != 1 || p.RecognitionMisses != 1 {
		t.Fatalf("profile = %+v", *p)
	}
	if got := p.HitRate(); got != 50 {
		t.Fatalf("HitRate = %v, want 50", got)
	}
	if q := r.Profile("thread_start"); q == nil || q.Calls != 1 {
		t.Fatalf("thread_start profile = %+v", q)
	}
	// Never-probed profile: HitRate must be 0, not NaN.
	if got := r.Profile("thread_start").HitRate(); got != 0 {
		t.Fatalf("unprobed HitRate = %v", got)
	}
	// Profiles() is sorted by name.
	ps := r.Profiles()
	if len(ps) != 2 || ps[0].Name != "mach_msg_continue" || ps[1].Name != "thread_start" {
		t.Fatalf("Profiles order = %v, %v", ps[0].Name, ps[1].Name)
	}
}

func TestToTraceKeepsOnlyLegacyKinds(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 64)
	r.Emit(KernelEntry, 1, "task/t", "", "mach_msg(rpc)")
	r.Emit(ThreadBlocked, 1, "task/t", "c", "message receive") // new kind: dropped
	r.Emit(Dispatch, 1, "task/t", "", "")                      // new kind: dropped
	r.Emit(Wakeup, 1, "task/t", "", "")                        // legacy name, never rendered
	r.Emit(Block, 1, "task/t", "", "t blocked with c")
	tr := ToTrace(r.Events())
	s := tr.String()
	if !strings.Contains(s, "kernel-entry: mach_msg(rpc)") {
		t.Fatalf("missing kernel-entry row:\n%s", s)
	}
	if !strings.Contains(s, "block: t blocked with c") {
		t.Fatalf("missing block row:\n%s", s)
	}
	for _, banned := range []string{"thread-blocked", "dispatch", "wakeup"} {
		if strings.Contains(s, banned) {
			t.Fatalf("ToTrace leaked non-legacy kind %q:\n%s", banned, s)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != 2 {
		t.Fatalf("trace has %d rows, want 2:\n%s", got, s)
	}
}

func TestLegacyKindMapMatchesTraceKinds(t *testing.T) {
	// Every legacy mapping must agree with the stats kind's own name, so
	// renderings produced via ToTrace are indistinguishable from the old
	// direct-to-Trace path.
	for k, tk := range legacyKind {
		if k.String() != tk.String() {
			t.Fatalf("kind %v maps to %v but names differ: %q vs %q",
				k, tk, k.String(), tk.String())
		}
	}
	if _, ok := legacyKind[Wakeup]; ok {
		t.Fatal("Wakeup must not be in the legacy map (it was never emitted pre-obs)")
	}
	if len(legacyKind) != int(stats.TraceInterrupt)+1-2 {
		// All TraceKinds except TraceWakeup and TraceSchedule, neither of
		// which the pre-obs kernel ever emitted.
		t.Fatalf("legacy map has %d entries", len(legacyKind))
	}
}

func TestReportDeterministic(t *testing.T) {
	build := func() string {
		clock := machine.NewClock()
		r := NewRecorder(clock, 64)
		for i := 0; i < 10; i++ {
			r.Emit(ThreadBlocked, i%3+1, "t", "cont_x", "message receive")
			clock.Advance(machine.Duration(100 * (i + 1)))
			r.Emit(Wakeup, i%3+1, "t", "", "")
			clock.Advance(7)
			r.Emit(Dispatch, i%3+1, "t", "", "")
			r.Emit(Recognition, 9, "probe", "cont_x", "cont_x")
		}
		var b strings.Builder
		r.WriteReport(&b)
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("report not deterministic:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "cont_x") || !strings.Contains(a, "block->wakeup") {
		t.Fatalf("report missing expected sections:\n%s", a)
	}
	if !strings.Contains(a, "100.0%") {
		t.Fatalf("report missing hit rate:\n%s", a)
	}
}

func TestReset(t *testing.T) {
	clock := machine.NewClock()
	r := NewRecorder(clock, 8)
	r.Emit(ThreadBlocked, 1, "a", "c", "x")
	clock.Advance(5)
	r.Emit(Wakeup, 1, "a", "", "")
	r.Reset()
	if r.Len() != 0 || r.Dropped != 0 {
		t.Fatalf("Len/Dropped after reset = %d/%d", r.Len(), r.Dropped)
	}
	if len(r.Profiles()) != 0 {
		t.Fatal("profiles survived reset")
	}
	for _, h := range r.Hist {
		if h.Count != 0 {
			t.Fatalf("histogram %s survived reset", h.Name)
		}
	}
	r.Emit(Note, 1, "a", "", "fresh")
	if evs := r.Events(); len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("post-reset events = %v", evs)
	}
}
