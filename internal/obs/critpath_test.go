package obs

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// TestCritPathExactSum is the analyzer's core contract: for every
// decomposed operation, the per-segment durations sum to exactly the
// root span's measured extent — no double counting across overlapping
// children, no uncovered residue.
func TestCritPathExactSum(t *testing.T) {
	mk := func(trace, id, parent uint64, seg Seg, start, end machine.Time) Span {
		return Span{Trace: trace, ID: id, Parent: parent, Name: "op", Seg: seg,
			Start: start, End: end}
	}
	// Trace 1: overlapping children at mixed depths. Root [0,100); a
	// service child [10,60) with a wire grandchild [20,50) that itself
	// overlaps a retry child [40,80).
	// Trace 2: root only — pure queue.
	// Trace 3: child extends beyond the root; attribution clamps.
	spans := []Span{
		mk(1, 10, 0, SegQueue, 0, 100),
		mk(1, 11, 10, SegService, 10, 60),
		mk(1, 12, 11, SegWire, 20, 50),
		mk(1, 13, 10, SegRetry, 40, 80),
		mk(2, 20, 0, SegQueue, 200, 230),
		mk(3, 30, 0, SegQueue, 300, 340),
		mk(3, 31, 30, SegService, 320, 400),
	}
	cp := AnalyzeCritPath(spans)
	if len(cp.Ops) != 3 {
		t.Fatalf("decomposed %d ops, want 3", len(cp.Ops))
	}
	for _, op := range cp.Ops {
		var sum machine.Duration
		for _, d := range op.Seg {
			sum += d
		}
		if sum != op.Total || op.Total != machine.Duration(op.End-op.Start) {
			t.Fatalf("trace %d: segments sum %d != total %d (extent %d)",
				op.Trace, sum, op.Total, op.End-op.Start)
		}
	}

	// Trace 1 in detail. [0,10) root queue; [10,20) service; [20,50)
	// wire (deepest); [40,50) the retry overlaps the wire grandchild,
	// but the grandchild is deeper and keeps it; [50,60) service vs
	// retry at equal depth — SegRetry outranks SegService; [60,80)
	// retry alone; [80,100) root queue.
	op := cp.Ops[0]
	want := [NumSegs]machine.Duration{
		SegQueue:   10 + 20,
		SegService: 10,
		SegWire:    30,
		SegRetry:   10 + 20,
	}
	if op.Seg != want {
		t.Fatalf("trace 1 decomposition = %v, want %v", op.Seg, want)
	}

	// Trace 2: everything is root queue.
	if op := cp.Ops[1]; op.Seg[SegQueue] != 30 || op.Total != 30 {
		t.Fatalf("trace 2 decomposition = %v", op.Seg)
	}

	// Trace 3: the child's overhang past root.End is clamped away.
	if op := cp.Ops[2]; op.Seg[SegQueue] != 20 || op.Seg[SegService] != 20 {
		t.Fatalf("trace 3 decomposition = %v", op.Seg)
	}
}

// TestCritPathArbitration pins the tie-breaks: depth beats segment
// priority, and at equal depth the Seg order (election > retry > wire >
// service > queue) decides.
func TestCritPathArbitration(t *testing.T) {
	spans := []Span{
		{Trace: 5, ID: 1, Parent: 0, Seg: SegQueue, Start: 0, End: 40},
		// Equal-depth children covering the same interval: election wins.
		{Trace: 5, ID: 2, Parent: 1, Seg: SegWire, Start: 0, End: 40},
		{Trace: 5, ID: 3, Parent: 1, Seg: SegElection, Start: 0, End: 40},
		// A deeper service child under the wire span wins over both on
		// [10, 20) despite its lower segment priority.
		{Trace: 5, ID: 4, Parent: 2, Seg: SegService, Start: 10, End: 20},
	}
	cp := AnalyzeCritPath(spans)
	if len(cp.Ops) != 1 {
		t.Fatalf("decomposed %d ops, want 1", len(cp.Ops))
	}
	op := cp.Ops[0]
	if op.Seg[SegService] != 10 || op.Seg[SegElection] != 30 {
		t.Fatalf("arbitration = %v, want service 10, election 30", op.Seg)
	}
}

// TestCritPathOrphansAndRootless checks resilience: spans whose parent
// never got recorded hang off the root and still attribute; traces with
// no root at all (the frontend's recorder crashed) are skipped.
func TestCritPathOrphansAndRootless(t *testing.T) {
	spans := []Span{
		{Trace: 7, ID: 1, Parent: 0, Seg: SegQueue, Start: 0, End: 50},
		// Parent id 99 was never recorded.
		{Trace: 7, ID: 2, Parent: 99, Seg: SegWire, Start: 10, End: 30},
		// Rootless trace: every span has a parent pointer.
		{Trace: 8, ID: 3, Parent: 77, Seg: SegService, Start: 0, End: 10},
	}
	cp := AnalyzeCritPath(spans)
	if len(cp.Ops) != 1 {
		t.Fatalf("decomposed %d ops, want 1 (rootless trace must be skipped)", len(cp.Ops))
	}
	op := cp.Ops[0]
	if op.Seg[SegWire] != 20 || op.Seg[SegQueue] != 30 {
		t.Fatalf("orphan attribution = %v", op.Seg)
	}
}

// TestCritPathSlowest checks the worst-first listing and its bound.
func TestCritPathSlowest(t *testing.T) {
	var spans []Span
	for i := uint64(1); i <= 8; i++ {
		spans = append(spans, Span{Trace: i, ID: i * 100, Parent: 0,
			Seg: SegQueue, Start: 0, End: machine.Time(i * 10)})
	}
	cp := AnalyzeCritPath(spans)
	if len(cp.Slowest) != SlowestN {
		t.Fatalf("kept %d slowest, want %d", len(cp.Slowest), SlowestN)
	}
	for i := 1; i < len(cp.Slowest); i++ {
		if cp.Slowest[i].Total > cp.Slowest[i-1].Total {
			t.Fatal("slowest ops not sorted worst first")
		}
	}
	if cp.Slowest[0].Total != 80 {
		t.Fatalf("worst op total %d, want 80", cp.Slowest[0].Total)
	}
}

// TestWriteCritPath smoke-checks the renderer, including the empty case
// and the exact-nanosecond sum line.
func TestWriteCritPath(t *testing.T) {
	var b strings.Builder
	WriteCritPath(&b, AnalyzeCritPath(nil))
	if !strings.Contains(b.String(), "no sampled operations") {
		t.Fatalf("empty render = %q", b.String())
	}
	b.Reset()
	spans := []Span{
		{Trace: 3, ID: 1, Parent: 0, Name: "kv.op", Seg: SegQueue, Start: 0, End: 100},
		{Trace: 3, ID: 2, Parent: 1, Seg: SegWire, Start: 25, End: 75},
	}
	WriteCritPath(&b, AnalyzeCritPath(spans))
	out := b.String()
	for _, want := range []string{
		"critical-path attribution (1 sampled ops):",
		"segment", "queue", "wire", "slowest ops:",
		"total 100ns =", "queue 50ns", "wire 50ns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
