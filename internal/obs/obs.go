// Package obs is the kernel's observability layer: a fixed-capacity
// event ring buffer, online latency histograms, and a per-continuation
// profiler, all driven by one emit API wired through the control-transfer
// engine and its substrates (core, sched, ipc, dev, fault, kern).
//
// The design mirrors the paper's evaluation method: the argument for
// continuations rests on *measured* control-transfer behavior (Tables
// 1–5 count stack usage, handoff frequency and recognition hits), so the
// simulator records those transfers as typed events stamped with the
// machine clock, the thread id, and the continuation name. Everything is
// deterministic for a fixed seed — event order is the dispatch order and
// timestamps come from the simulated clock — so two identical runs export
// byte-identical traces (the CI diff relies on this).
//
// A kernel with a nil Recorder pays only a nil check per would-be event;
// histograms and the profiler are updated online at emit time, so they
// cover the whole run even after the ring has started evicting old
// events.
package obs

import (
	"math/bits"
	"sort"

	"repro/internal/machine"
	"repro/internal/stats"
)

// Kind labels one recorded kernel event. The first group mirrors the
// legacy stats.TraceKind steps (emitted at the same call sites with the
// same detail strings, so Figure 2-style renderings are unchanged); the
// second group is new lifecycle instrumentation that drives the latency
// histograms and the continuation profiler.
type Kind int

const (
	// Legacy control-transfer steps (Figure 2 rendering).
	KernelEntry Kind = iota
	KernelExit
	CopyIn
	CopyOut
	FindReceiver
	StackHandoff
	Recognition
	ContinuationCall
	ContextSwitch
	Block
	Wakeup
	QueueMessage
	DequeueMessage
	Note
	Interrupt

	// Lifecycle events new to the obs layer.

	// ThreadBlocked is the histogram-driving block record: every
	// completed blocking operation emits exactly one, carrying the
	// block reason (Detail), the continuation blocked with (Cont, empty
	// for process-model blocks), and Arg=1 when the thread yielded but
	// stayed runnable.
	ThreadBlocked
	// RecognitionMiss is a failed continuation recognition: the resumer
	// expected Cont but found Detail.
	RecognitionMiss
	// Dispatch marks a thread starting to run on a processor via the
	// general resume path (handoffs mark the transfer with StackHandoff
	// instead).
	Dispatch
	// StackAttach / StackDetach bound a kernel stack's tenure on a
	// thread; together with StackHandoff they yield stack lifetimes.
	StackAttach
	StackDetach
	// RPCStart / RPCEnd bracket a client's mach_msg send+receive round
	// trip (request carries a reply port; the matching copy-out ends it).
	RPCStart
	RPCEnd
	// FaultInject records a fault plan firing (device error or latency
	// spike, packet drop/dup/delay).
	FaultInject
	// Abort records a thread_abort redirecting a blocked thread.
	Abort

	// Crash-recovery events (PR 5).

	// MachineCrash records a whole-machine failure: Detail summarizes the
	// panic record (threads killed, ports, pending I/O), Arg is the dying
	// incarnation number.
	MachineCrash
	// MachineReboot records a warm reboot; Arg is the new incarnation.
	MachineReboot
	// Heartbeat records an explicit incarnation announcement transmitted
	// by the netmsg membership layer (piggybacked heartbeats are implicit
	// in ordinary traffic and not recorded).
	Heartbeat
	// PeerDeath records the membership layer declaring a silent peer dead
	// (Detail names the link); Arg=1 marks the later recovery — the same
	// peer heard from again with a newer incarnation.
	PeerDeath
	// Failover records an RPC client redirecting to its replica server
	// (Arg=1) or failing back to the recovered primary (Arg=0).
	Failover

	// Distributed-service events (internal/svc).

	// Election records a replica promoting itself to leader of a shard
	// group after the membership layer declared the old leader dead:
	// Detail names the group, Arg is the new lease epoch.
	Election
	// Fencing records a lease fencing rejection: a replica refused a
	// request carrying a stale epoch token (a deposed or rebooted
	// leader's traffic). Detail names the group, Arg the rejected epoch.
	Fencing

	numKinds
)

// NumKinds is the count of distinct event kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case KernelEntry:
		return "kernel-entry"
	case KernelExit:
		return "kernel-exit"
	case CopyIn:
		return "copy-in"
	case CopyOut:
		return "copy-out"
	case FindReceiver:
		return "find-receiver"
	case StackHandoff:
		return "stack-handoff"
	case Recognition:
		return "recognition"
	case ContinuationCall:
		return "call-continuation"
	case ContextSwitch:
		return "context-switch"
	case Block:
		return "block"
	case Wakeup:
		return "wakeup"
	case QueueMessage:
		return "queue-message"
	case DequeueMessage:
		return "dequeue-message"
	case Note:
		return "note"
	case Interrupt:
		return "interrupt"
	case ThreadBlocked:
		return "thread-blocked"
	case RecognitionMiss:
		return "recognition-miss"
	case Dispatch:
		return "dispatch"
	case StackAttach:
		return "stack-attach"
	case StackDetach:
		return "stack-detach"
	case RPCStart:
		return "rpc-start"
	case RPCEnd:
		return "rpc-end"
	case FaultInject:
		return "fault-inject"
	case Abort:
		return "abort"
	case MachineCrash:
		return "machine-crash"
	case MachineReboot:
		return "machine-reboot"
	case Heartbeat:
		return "heartbeat"
	case PeerDeath:
		return "peer-death"
	case Failover:
		return "failover"
	case Election:
		return "election"
	case Fencing:
		return "fencing"
	default:
		return "unknown"
	}
}

// KindFromString is the inverse of Kind.String, used when re-ingesting
// an exported trace. The second result is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	k, ok := kindByName[s]
	return k, ok
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, NumKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// legacyKind maps the event kinds the pre-obs kernel actually emitted to
// their stats.TraceKind equivalents. Lifecycle kinds (and Wakeup, which
// existed as a TraceKind but was never emitted) are deliberately absent
// so renderings built on ToTrace keep their historical shape.
var legacyKind = map[Kind]stats.TraceKind{
	KernelEntry:      stats.TraceKernelEntry,
	KernelExit:       stats.TraceKernelExit,
	CopyIn:           stats.TraceCopyIn,
	CopyOut:          stats.TraceCopyOut,
	FindReceiver:     stats.TraceFindReceiver,
	StackHandoff:     stats.TraceStackHandoff,
	Recognition:      stats.TraceRecognition,
	ContinuationCall: stats.TraceContinuationCall,
	ContextSwitch:    stats.TraceContextSwitch,
	Block:            stats.TraceBlock,
	QueueMessage:     stats.TraceQueueMessage,
	DequeueMessage:   stats.TraceDequeueMessage,
	Note:             stats.TraceNote,
	Interrupt:        stats.TraceInterrupt,
}

// ToTrace renders events as a legacy stats.Trace, keeping only the
// control-transfer steps the pre-obs kernel traced (with identical
// thread names and detail strings). cmd/tracer's Figure 2 and device
// read renderings are built on this, so their golden output is stable.
func ToTrace(events []Event) *stats.Trace {
	tr := &stats.Trace{Enabled: true}
	for _, ev := range events {
		k, ok := legacyKind[ev.Kind]
		if !ok {
			continue
		}
		tr.Add(k, ev.Thread, ev.Detail)
	}
	return tr
}

// Event is one recorded kernel event.
type Event struct {
	// Seq is the emit sequence number within one recorder, a total
	// order even when several events share a clock reading.
	Seq uint64
	// When is the simulated machine clock at emit time.
	When machine.Time
	Kind Kind
	// TID is the acting thread's id (0 when no thread is current, e.g.
	// a fault injected in interrupt context on a parked machine).
	TID int
	// Arg is kind-specific: the previous thread's id for StackHandoff,
	// 1 for a yield-style ThreadBlocked (thread stayed runnable).
	Arg int
	// Thread is the acting thread's name; Cont the continuation
	// involved, when any; Detail a human-readable qualifier.
	Thread string
	Cont   string
	Detail string
}

// Latency indexes the recorder's histograms.
type Latency int

const (
	// LatBlockToWakeup is the time a thread spent blocked: from its
	// ThreadBlocked event to the wakeup (or handoff) that made it
	// runnable again.
	LatBlockToWakeup Latency = iota
	// LatDispatch is the time from becoming runnable to actually
	// running. Stack handoffs transfer control immediately, so they
	// contribute zero-latency samples — the fast path is visible as a
	// spike in the first bucket.
	LatDispatch
	// LatStackLifetime is how long one kernel stack stayed attached to
	// one thread (attach/handoff to detach/handoff).
	LatStackLifetime
	// LatRPCRoundTrip is a client's full mach_msg send+receive round
	// trip.
	LatRPCRoundTrip

	NumLatencies
)

func (l Latency) String() string {
	switch l {
	case LatBlockToWakeup:
		return "block->wakeup"
	case LatDispatch:
		return "dispatch latency"
	case LatStackLifetime:
		return "stack lifetime"
	case LatRPCRoundTrip:
		return "rpc round-trip"
	default:
		return "unknown"
	}
}

// ContProfile aggregates per-continuation behavior, the paper's §2.4
// recognition argument as a measurable table.
type ContProfile struct {
	Name string
	// Blocks counts threads blocking with this continuation.
	Blocks uint64
	// Handoffs counts stack handoffs received while blocked with it.
	Handoffs uint64
	// Calls counts resumptions through the general call_continuation
	// path.
	Calls uint64
	// RecognitionHits / RecognitionMisses count resumers that inspected
	// a blocked thread expecting this continuation and found it / found
	// something else.
	RecognitionHits   uint64
	RecognitionMisses uint64
}

// HitRate is the recognition hit percentage (0 when never probed).
func (c *ContProfile) HitRate() float64 {
	return stats.Percent(c.RecognitionHits, c.RecognitionHits+c.RecognitionMisses)
}

// DefaultCapacity is the standard event ring size.
const DefaultCapacity = 1 << 16

// Recorder is one kernel's event sink: a drop-oldest ring of events plus
// online histograms and the continuation profiler. The zero recorder is
// not usable; a nil *Recorder is the disabled state and every kernel
// emit site nil-checks before paying any formatting cost.
type Recorder struct {
	clock *machine.Clock
	seq   uint64

	capacity int
	ring     []Event
	head     int // index of the oldest event once the ring is full

	// Dropped counts events evicted from the ring (histograms and the
	// profiler still saw them).
	Dropped uint64

	// KindCounts tallies every emitted event by kind.
	KindCounts [NumKinds]uint64

	// Hist holds the four online latency histograms.
	Hist [NumLatencies]*Histogram

	conts map[string]*ContProfile

	// svc holds the named service-level histograms (per-tier request
	// latencies maintained by workload code via Service, not by kernel
	// events).
	svc map[string]*Histogram

	// Online latency state, keyed by thread id. Thread ids are small
	// sequential ints and these are touched on every event, so dense
	// slices beat maps on the hot emit path.
	blockedAt  tidTimes
	runnableAt tidTimes
	stackSince tidTimes
	rpcStart   tidTimes

	// Span store (span.go): completed causal-trace spans, the machine
	// index salting span ids, the span-id mint serial, and the 1-in-N
	// head-sampling rate (0 and 1 both mean "keep everything").
	spans       []Span
	host        int
	spanSalt    uint64
	sampleEvery uint64

	// Census is the machine's memory census (stack-pool high-water vs.
	// blocked threads), stamped by the workload driver before export so
	// the Chrome metadata carries it.
	Census Census
}

// Census is the paper's space claim as a per-machine measurement: how
// many kernel stacks the machine ever needed against how many threads
// were simultaneously blocked (a process-model kernel would need one
// stack per blocked thread).
type Census struct {
	StackHighWater   int
	BlockedHighWater int
	LiveThreads      int
}

// Zero reports whether the census was never stamped.
func (c Census) Zero() bool { return c == Census{} }

// tidTimes maps a small thread id to the opening timestamp of a latency
// interval. Values are stored as time+1 so the zero value means absent.
type tidTimes []uint64

func (tt *tidTimes) get(tid int) (machine.Time, bool) {
	if tid < 0 || tid >= len(*tt) || (*tt)[tid] == 0 {
		return 0, false
	}
	return machine.Time((*tt)[tid] - 1), true
}

func (tt *tidTimes) set(tid int, v machine.Time) {
	if tid < 0 {
		return
	}
	for tid >= len(*tt) {
		*tt = append(*tt, 0)
	}
	(*tt)[tid] = uint64(v) + 1
}

func (tt *tidTimes) del(tid int) {
	if tid >= 0 && tid < len(*tt) {
		(*tt)[tid] = 0
	}
}

// NewRecorder returns a recorder stamping events from clock, retaining at
// most capacity events (DefaultCapacity if <= 0).
func NewRecorder(clock *machine.Clock, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := newRecorder(capacity)
	r.clock = clock
	return r
}

// NewReplay returns a recorder that recomputes histograms and profiles
// from already-stamped events via Ingest — the consumer side used by
// traceview to rebuild statistics from an exported file.
func NewReplay() *Recorder { return newRecorder(0) }

func newRecorder(capacity int) *Recorder {
	r := &Recorder{
		capacity: capacity,
		// Full-capacity ring up front: growing it with append would make
		// early emits allocate on the dispatch path.
		ring:  make([]Event, 0, capacity),
		conts: make(map[string]*ContProfile),
	}
	for i := range r.Hist {
		r.Hist[i] = &Histogram{Name: Latency(i).String()}
	}
	return r
}

// Emit records one event stamped with the current clock.
func (r *Recorder) Emit(kind Kind, tid int, thread, cont, detail string) {
	r.EmitArg(kind, tid, thread, cont, detail, 0)
}

// EmitArg is Emit with the kind-specific Arg field.
func (r *Recorder) EmitArg(kind Kind, tid int, thread, cont, detail string, arg int) {
	ev := Event{
		Seq:    r.seq,
		Kind:   kind,
		TID:    tid,
		Arg:    arg,
		Thread: thread,
		Cont:   cont,
		Detail: detail,
	}
	if r.clock != nil {
		ev.When = r.clock.Now()
	}
	r.seq++
	r.store(ev)
	r.process(ev)
}

// Ingest feeds an already-stamped event through the statistics pipeline
// without storing it (replay mode).
func (r *Recorder) Ingest(ev Event) { r.process(ev) }

func (r *Recorder) store(ev Event) {
	if r.capacity == 0 {
		return
	}
	if len(r.ring) < r.capacity {
		r.ring = append(r.ring, ev)
		return
	}
	r.ring[r.head] = ev
	r.head = (r.head + 1) % r.capacity
	r.Dropped++
}

// process updates the online statistics. Every rule here is also applied
// by replay, so traceview recomputes the same tables from an export.
func (r *Recorder) process(ev Event) {
	r.KindCounts[ev.Kind]++
	switch ev.Kind {
	case ThreadBlocked:
		if ev.Cont != "" {
			r.prof(ev.Cont).Blocks++
		}
		if ev.Arg == 1 {
			// Yield: the thread never left the runnable state.
			r.runnableAt.set(ev.TID, ev.When)
			r.blockedAt.del(ev.TID)
		} else {
			r.blockedAt.set(ev.TID, ev.When)
			r.runnableAt.del(ev.TID)
		}
	case Wakeup:
		if t0, ok := r.blockedAt.get(ev.TID); ok {
			r.Hist[LatBlockToWakeup].Observe(uint64(ev.When - t0))
			r.blockedAt.del(ev.TID)
		}
		r.runnableAt.set(ev.TID, ev.When)
	case Dispatch:
		r.noteRunning(ev.TID, ev.When)
	case StackHandoff:
		if ev.Cont != "" {
			r.prof(ev.Cont).Handoffs++
		}
		// The stack's tenure on the old thread ends; a new one starts.
		if t0, ok := r.stackSince.get(ev.Arg); ok {
			r.Hist[LatStackLifetime].Observe(uint64(ev.When - t0))
			r.stackSince.del(ev.Arg)
		}
		r.stackSince.set(ev.TID, ev.When)
		r.noteRunning(ev.TID, ev.When)
	case StackAttach:
		r.stackSince.set(ev.TID, ev.When)
	case StackDetach:
		if t0, ok := r.stackSince.get(ev.TID); ok {
			r.Hist[LatStackLifetime].Observe(uint64(ev.When - t0))
			r.stackSince.del(ev.TID)
		}
	case Recognition:
		if ev.Cont != "" {
			r.prof(ev.Cont).RecognitionHits++
		}
	case RecognitionMiss:
		if ev.Cont != "" {
			r.prof(ev.Cont).RecognitionMisses++
		}
	case ContinuationCall:
		if ev.Cont != "" {
			r.prof(ev.Cont).Calls++
		}
	case RPCStart:
		r.rpcStart.set(ev.TID, ev.When)
	case RPCEnd:
		if t0, ok := r.rpcStart.get(ev.TID); ok {
			r.Hist[LatRPCRoundTrip].Observe(uint64(ev.When - t0))
			r.rpcStart.del(ev.TID)
		}
	}
}

// noteRunning marks a thread as running at when, closing out whichever
// latency interval was open. A handoff target goes straight from blocked
// to running: its wait ends here and its dispatch latency is zero.
func (r *Recorder) noteRunning(tid int, when machine.Time) {
	if t0, ok := r.runnableAt.get(tid); ok {
		r.Hist[LatDispatch].Observe(uint64(when - t0))
		r.runnableAt.del(tid)
		return
	}
	if t0, ok := r.blockedAt.get(tid); ok {
		r.Hist[LatBlockToWakeup].Observe(uint64(when - t0))
		r.Hist[LatDispatch].Observe(0)
		r.blockedAt.del(tid)
	}
}

func (r *Recorder) prof(name string) *ContProfile {
	c, ok := r.conts[name]
	if !ok {
		c = &ContProfile{Name: name}
		r.conts[name] = c
	}
	return c
}

// Events returns the retained events in emit order.
func (r *Recorder) Events() []Event {
	if len(r.ring) < r.capacity || r.head == 0 {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.ring) }

// Profiles returns the continuation profiles sorted by name, so every
// report built on them is deterministic.
func (r *Recorder) Profiles() []*ContProfile {
	out := make([]*ContProfile, 0, len(r.conts))
	for _, c := range r.conts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Profile returns the profile for one continuation name, nil if never
// seen.
func (r *Recorder) Profile(name string) *ContProfile { return r.conts[name] }

// Service returns (creating on first use) the named service-level
// histogram. Distributed-service workloads observe per-tier request
// latencies into these ("frontend", "cache.fetch", "kv.op"), so tail
// latency under fault plans comes out of the same report machinery as
// the kernel's own histograms.
func (r *Recorder) Service(name string) *Histogram {
	if r.svc == nil {
		r.svc = make(map[string]*Histogram)
	}
	h, ok := r.svc[name]
	if !ok {
		h = &Histogram{Name: name}
		r.svc[name] = h
	}
	return h
}

// ServiceHistograms returns the service-level histograms sorted by name
// (deterministic report order); empty when no workload observed any.
func (r *Recorder) ServiceHistograms() []*Histogram {
	if len(r.svc) == 0 {
		return nil
	}
	out := make([]*Histogram, 0, len(r.svc))
	for _, h := range r.svc {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset discards all retained events and recorded statistics, keeping
// the recorder attached.
func (r *Recorder) Reset() {
	r.ring = r.ring[:0]
	r.head = 0
	r.seq = 0
	r.Dropped = 0
	r.KindCounts = [NumKinds]uint64{}
	for i := range r.Hist {
		r.Hist[i] = &Histogram{Name: Latency(i).String()}
	}
	r.conts = make(map[string]*ContProfile)
	r.svc = nil
	r.blockedAt = nil
	r.runnableAt = nil
	r.stackSince = nil
	r.rpcStart = nil
	r.spans = nil
	r.spanSalt = 0
	r.Census = Census{}
}

// Histogram counts values into power-of-two buckets of simulated clock
// ticks (nanoseconds): bucket 0 holds zero, bucket i holds
// [2^(i-1), 2^i).
type Histogram struct {
	Name    string
	Buckets [65]uint64
	Count   uint64
	Sum     uint64
	Min     uint64 // valid when Count > 0
	Max     uint64
}

// Observe adds one value.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the power-of-two
// buckets: it finds the bucket holding the q*Count-th sample and
// interpolates linearly within it, clamped to the observed min/max. The
// estimate is deterministic for a deterministic event stream, so p50/p99
// lines in reports survive the byte-identity diffs.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q*float64(h.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := BucketBounds(i)
			frac := float64(target-cum) / float64(n)
			v := uint64(float64(lo) + frac*float64(hi-lo))
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum += n
	}
	return h.Max
}

// Merge folds another histogram's samples into h (bucket-wise), so a
// report can aggregate the same tier across machines.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// BucketBounds returns bucket i's half-open range [lo, hi); the last
// bucket's hi is the maximum uint64.
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	if i >= 64 {
		return 1 << 63, ^uint64(0)
	}
	return 1 << (i - 1), 1 << i
}
