// Causal tracing: trace contexts minted deterministically from operation
// identity, spans recorded per machine, and head-based sampling.
//
// The paper's continuation duality — a blocked thread *is* its pending
// work — means every hop of a distributed operation is already a
// discrete, nameable event. A span makes the hop a unit of account:
// [Start, End) on the shared simulated timeline (cluster clocks advance
// in lockstep, so cross-machine intervals compare directly), tagged with
// the latency segment it explains. Context identifiers are mixed from
// stable integers (client id, op serial, per-machine mint counters), so
// two runs with the same seed — sequential or parallel — export
// byte-identical span sets; no rand, no wall clock.
package obs

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// TraceContext identifies a position in one operation's causal tree: the
// operation (Trace), the current span (Span), and the span it hangs
// under (Parent, 0 at the root). The zero TraceContext means "not
// sampled" and every propagation site treats it as free to drop.
type TraceContext struct {
	Trace  uint64
	Span   uint64
	Parent uint64
}

// Sampled reports whether this context belongs to a sampled trace.
func (c TraceContext) Sampled() bool { return c.Trace != 0 }

// Seg classifies where a slice of an operation's latency went. The order
// is the critical-path arbitration priority: when two spans of equal
// depth cover the same instant, the higher segment wins (an election
// stall explains the time better than the retransmit it caused, which
// explains it better than the wire flight underneath).
type Seg int

const (
	// SegQueue is time not covered by any child span: the operation
	// existed but nothing was attributably happening — queueing and
	// scheduling at the originating tier. Root spans carry this segment
	// so the analyzer's residual lands here.
	SegQueue Seg = iota
	// SegService is request execution at some tier (cache fetch, KV
	// serve, replication round).
	SegService
	// SegWire is network transit, from the sender's transmit to the
	// receiver's port delivery (retransmission backoff included until a
	// SegRetry span claims it).
	SegWire
	// SegRetry is recovery overhead: reliable-layer retransmit backoff
	// and caller attempt timeouts that re-sent the request.
	SegRetry
	// SegElection is a caller stalled against a leaderless group: the
	// believed leader was declared dead and the operation waited out a
	// failover.
	SegElection

	NumSegs
)

func (s Seg) String() string {
	switch s {
	case SegQueue:
		return "queue"
	case SegService:
		return "service"
	case SegWire:
		return "wire"
	case SegRetry:
		return "retry"
	case SegElection:
		return "election"
	default:
		return "unknown"
	}
}

// SegFromString is the inverse of Seg.String, used when re-ingesting an
// exported trace. The second result is false for unknown names.
func SegFromString(s string) (Seg, bool) {
	for g := Seg(0); g < NumSegs; g++ {
		if g.String() == s {
			return g, true
		}
	}
	return 0, false
}

// Span is one recorded interval of one operation, complete at record
// time (the simulator knows both endpoints whenever it learns anything,
// so spans are recorded closed rather than opened and finished).
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64 // 0 for the operation's root span
	Name   string
	Seg    Seg
	// TID is the recording thread (0 when recorded from interrupt or
	// driver context).
	TID    int
	Detail string
	Start  machine.Time
	End    machine.Time
}

// Duration is the span's extent (0 for degenerate spans).
func (sp Span) Duration() machine.Duration {
	if sp.End <= sp.Start {
		return 0
	}
	return machine.Duration(sp.End - sp.Start)
}

// mix64 is the SplitMix64 finalizer: a cheap invertible mixer that turns
// structured integers (small ids, serial counters) into well-spread
// 64-bit identifiers. Deterministic by construction.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MintTraceID derives an operation's trace id from its identity: the
// issuing client's global index and the client's operation serial. Never
// returns 0 (the not-sampled sentinel).
func MintTraceID(client, op uint64) uint64 {
	id := mix64(client<<32 ^ op ^ 0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return id
}

// MintSpanID derives a span id from its trace and a mint-site salt
// (machine index and per-recorder serial). Never returns 0.
func MintSpanID(trace, salt uint64) uint64 {
	id := mix64(trace ^ mix64(salt+0x632be59bd9b4e019))
	if id == 0 {
		id = 1
	}
	return id
}

// ParseSample parses a machsim-style "1/N" head-sampling spec: keep
// every trace whose hashed id falls in the 1-in-N class. "1/1" keeps
// everything. The numerator is fixed at 1 — rates like 3/7 have no
// deterministic hash-class reading.
func ParseSample(s string) (int, error) {
	num, den, ok := strings.Cut(s, "/")
	if !ok {
		return 0, fmt.Errorf("sample %q: want 1/N", s)
	}
	if num != "1" {
		return 0, fmt.Errorf("sample %q: numerator must be 1", s)
	}
	n, err := strconv.Atoi(den)
	if err != nil {
		return 0, fmt.Errorf("sample %q: bad denominator: %v", s, err)
	}
	if n < 1 {
		return 0, fmt.Errorf("sample %q: denominator must be >= 1", s)
	}
	return n, nil
}

// SetHost tags the recorder with its machine's cluster index. The index
// salts span-id minting (so ids never collide across machines) and
// becomes the pid of exported spans.
func (r *Recorder) SetHost(host int) { r.host = host }

// Host returns the machine index set by SetHost.
func (r *Recorder) Host() int {
	if r == nil {
		return 0
	}
	return r.host
}

// SetSpanSampling sets head-based sampling to 1-in-every: SampleTrace
// keeps only trace ids hashing into class 0 of every classes. every <= 1
// keeps all traces.
func (r *Recorder) SetSpanSampling(every int) {
	if every < 1 {
		every = 1
	}
	r.sampleEvery = uint64(every)
}

// SampleTrace decides, by hash of the trace id, whether a new trace is
// kept. The decision is a pure function of the id and the sampling rate,
// so every machine agrees on it without coordination — the head
// (minting) site decides and the zero context propagates the "no".
func (r *Recorder) SampleTrace(trace uint64) bool {
	if r == nil {
		return false
	}
	if r.sampleEvery <= 1 {
		return true
	}
	return mix64(trace)%r.sampleEvery == 0
}

// NextSpanID mints a fresh span id for trace, salted with this machine's
// index and a per-recorder serial. Calls happen in dispatch order, which
// the parallel driver already keeps byte-identical per machine, so the
// minted sequence is deterministic.
func (r *Recorder) NextSpanID(trace uint64) uint64 {
	r.spanSalt++
	return MintSpanID(trace, uint64(r.host)<<40|r.spanSalt)
}

// RecordSpan appends one completed span. Spans for unsampled traces
// (Trace 0) and nil recorders are dropped for free.
func (r *Recorder) RecordSpan(sp Span) {
	if r == nil || sp.Trace == 0 {
		return
	}
	r.spans = append(r.spans, sp)
}

// Spans returns the recorded spans in record order. The slice is the
// recorder's own; callers must not mutate it.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}
