package experiments_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestNullRPCTable3Shape(t *testing.T) {
	// DS3100: MK40 95, MK32 110, Mach2.5 185. The simulation must get
	// the ordering right and land within 20% of the paper's values.
	for _, arch := range experiments.Arches {
		var rpc [3]float64
		for i, flavor := range experiments.Flavors {
			rpc[i] = experiments.NullRPC(flavor, arch, 300)
			paper, _ := experiments.PaperTable3(arch, flavor)
			if rel := rpc[i] / paper; rel < 0.7 || rel > 1.3 {
				t.Errorf("%v/%v null RPC = %.1f us, paper %v (off by %.0f%%)",
					arch, flavor, rpc[i], paper, 100*(rel-1))
			}
		}
		if arch == machine.ArchDS3100 && !(rpc[0] < rpc[1] && rpc[1] < rpc[2]) {
			t.Errorf("%v RPC ordering violated: %v", arch, rpc)
		}
		if arch == machine.ArchToshiba5200 && !(rpc[0] < rpc[2]) {
			// On the Toshiba MK40 may exceed MK32 (the footnote-2 bug)
			// but must still beat Mach 2.5.
			t.Errorf("%v: MK40 (%.0f) not faster than Mach2.5 (%.0f)", arch, rpc[0], rpc[2])
		}
	}
}

func TestExceptionTable3Shape(t *testing.T) {
	for _, arch := range experiments.Arches {
		var exc [3]float64
		for i, flavor := range experiments.Flavors {
			exc[i] = experiments.ExceptionRTT(flavor, arch, 300)
			_, paper := experiments.PaperTable3(arch, flavor)
			if rel := exc[i] / paper; rel < 0.65 || rel > 1.35 {
				t.Errorf("%v/%v exception = %.1f us, paper %v (off by %.0f%%)",
					arch, flavor, exc[i], paper, 100*(rel-1))
			}
		}
		// MK40 is 2-3x faster than both process-model kernels. The
		// slower of the two differs by machine in the paper: MK32 is
		// worst on the DS3100 (425 vs 380), Mach 2.5 on the Toshiba
		// (1410 vs 1155).
		if !(exc[0] < exc[1] && exc[0] < exc[2]) {
			t.Errorf("%v: MK40 not fastest: %v", arch, exc)
		}
		if arch == machine.ArchDS3100 && exc[1] < exc[2] {
			t.Errorf("DS3100: MK32 (%.0f) should be slower than Mach 2.5 (%.0f)", exc[1], exc[2])
		}
		if arch == machine.ArchToshiba5200 && exc[2] < exc[1] {
			t.Errorf("Toshiba: Mach 2.5 (%.0f) should be slower than MK32 (%.0f)", exc[2], exc[1])
		}
		if ratio := exc[1] / exc[0]; ratio < 2 || ratio > 3.6 {
			t.Errorf("%v MK32/MK40 exception ratio = %.2f, want 2-3x", arch, ratio)
		}
	}
}

func TestToshibaRPCQuirk(t *testing.T) {
	// Footnote 2: on the Toshiba, MK40's null RPC is slightly SLOWER
	// than MK32's because the trap handler keeps registers on the stack
	// and the handoff must copy them.
	mk40 := experiments.NullRPC(kern.MK40, machine.ArchToshiba5200, 300)
	mk32 := experiments.NullRPC(kern.MK32, machine.ArchToshiba5200, 300)
	if mk40 <= mk32 {
		t.Errorf("Toshiba quirk missing: MK40 %.1f <= MK32 %.1f", mk40, mk32)
	}
	if mk40 > mk32*1.25 {
		t.Errorf("Toshiba quirk too large: MK40 %.1f vs MK32 %.1f", mk40, mk32)
	}
}

func TestTable4RowsMatchPaper(t *testing.T) {
	rows := experiments.Table4()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].MK40 != (machine.Cost{Instrs: 64, Loads: 7, Stores: 25}) {
		t.Errorf("MK40 entry = %v", rows[0].MK40)
	}
	if rows[3].MK32 != (machine.Cost{Instrs: 250, Loads: 52, Stores: 27}) {
		t.Errorf("context switch = %v", rows[3].MK32)
	}
}

func TestTable5(t *testing.T) {
	rows := experiments.Table5(24)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mk40, mk32 := rows[0], rows[1]
	if mk40.Flavor != kern.MK40 || mk32.Flavor != kern.MK32 {
		t.Fatal("row order")
	}
	if mk40.Static.Total() != 690 || mk32.Static.Total() != 4664 {
		t.Fatalf("static totals: %d / %d", mk40.Static.Total(), mk32.Static.Total())
	}
	if mk40.StacksInUse != 0 {
		t.Errorf("MK40 blocked pool holds %d stacks", mk40.StacksInUse)
	}
	// One dedicated stack per user thread plus the pageout daemon's.
	if mk32.StacksInUse != mk32.Threads+1 {
		t.Errorf("MK32 stacks %d != threads %d + pageout", mk32.StacksInUse, mk32.Threads)
	}
	saving := 1 - mk40.MeasuredPerThread/mk32.MeasuredPerThread
	if saving < 0.85 {
		t.Errorf("measured saving %.0f%%, paper claims 85%%", 100*saving)
	}
}

func TestFigure2TraceShape(t *testing.T) {
	tr := experiments.Figure2Trace()
	// The fast path of Figure 2: enter kernel, copy in, find receiver,
	// stack handoff, recognition, copy out, exit kernel.
	for _, kind := range []stats.TraceKind{
		stats.TraceKernelEntry,
		stats.TraceCopyIn,
		stats.TraceFindReceiver,
		stats.TraceStackHandoff,
		stats.TraceRecognition,
		stats.TraceCopyOut,
		stats.TraceKernelExit,
	} {
		if !tr.Has(kind) {
			t.Errorf("trace lacks %v:\n%s", kind, tr)
		}
	}
	// The fast path must not queue, dequeue or context switch.
	for _, kind := range []stats.TraceKind{
		stats.TraceQueueMessage,
		stats.TraceDequeueMessage,
		stats.TraceContextSwitch,
	} {
		if tr.Has(kind) {
			t.Errorf("fast path contains %v:\n%s", kind, tr)
		}
	}
}

func TestFirefly886(t *testing.T) {
	res := experiments.Firefly886(kern.MK40)
	if res.Threads < 886 {
		t.Fatalf("population = %d", res.Threads)
	}
	// §5: "886 similarly blocked kernel-level threads would require only
	// 6 stacks, one for each of the Firefly's five processors and one
	// for a special kernel thread."
	if res.StacksInUse != 6 {
		t.Errorf("MK40 stacks = %d, want 6", res.StacksInUse)
	}

	pm := experiments.Firefly886(kern.MK32)
	if pm.StacksInUse < 886 {
		t.Errorf("MK32 stacks = %d, want >= 886 (one per thread)", pm.StacksInUse)
	}
}

func TestRunWorkloadResultConsistency(t *testing.T) {
	res := experiments.RunWorkload(workloadCompile(t), 0.05, 7)
	var sum uint64
	for _, n := range res.Blocks {
		sum += n
	}
	if sum+res.NoDiscards != res.TotalBlocks {
		t.Fatalf("block accounting: %d + %d != %d", sum, res.NoDiscards, res.TotalBlocks)
	}
	if res.Handoffs > res.TotalBlocks {
		t.Fatal("more handoffs than blocks")
	}
}

func TestPaperConstantsPresent(t *testing.T) {
	rows, nd := experiments.PaperTable1Percent("Compile Test")
	if len(rows) != 6 || nd != 1.6 {
		t.Fatal("compile constants")
	}
	if h, r := experiments.PaperTable2Percent("DOS Emulation"); h != 100.0 || r != 85.9 {
		t.Fatal("DOS table 2 constants")
	}
	if rows, _ := experiments.PaperTable1Percent("nope"); rows != nil {
		t.Fatal("unknown workload should return nil")
	}
}

func workloadCompile(t *testing.T) workload.Spec {
	t.Helper()
	return workload.CompileTest()
}

func TestMessageSizeSweepCrossover(t *testing.T) {
	rows := experiments.MessageSizeSweep([]int{64, 1024, 8192, 65536}, 50)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small messages: inline copying wins (OOL pays the map setup).
	if rows[0].InlineUs >= rows[0].OOLUs {
		t.Errorf("64B: inline %.1f >= OOL %.1f", rows[0].InlineUs, rows[0].OOLUs)
	}
	// Large messages: out-of-line remapping wins decisively.
	if rows[3].OOLUs >= rows[3].InlineUs {
		t.Errorf("64KB: OOL %.1f >= inline %.1f", rows[3].OOLUs, rows[3].InlineUs)
	}
	if ratio := rows[3].InlineUs / rows[3].OOLUs; ratio < 3 {
		t.Errorf("64KB inline/OOL ratio = %.1f, want >= 3", ratio)
	}
	// Inline latency grows with size; OOL stays nearly flat.
	if rows[3].InlineUs <= rows[0].InlineUs*2 {
		t.Errorf("inline latency not size-sensitive: %.1f vs %.1f", rows[0].InlineUs, rows[3].InlineUs)
	}
	oolGrowth := rows[3].OOLUs / rows[0].OOLUs
	if oolGrowth > 2.5 {
		t.Errorf("OOL latency grew %.1fx across sizes", oolGrowth)
	}
}
