package experiments

import (
	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

// SweepRow is one point of the message-size sweep: round-trip RPC
// latency carrying a body of the given size, inline-copied versus
// transferred out-of-line by copy-on-write remapping.
type SweepRow struct {
	SizeBytes int
	InlineUs  float64
	OOLUs     float64
}

// sizedClient issues RPCs with a fixed body size and transfer mode.
type sizedClient struct {
	sys    *kern.System
	server *ipc.Port
	reply  *ipc.Port
	size   int
	ool    bool
	rpcs   int
	warmup int

	done      int
	MarkStart machine.Time
	MarkEnd   machine.Time
}

func (c *sizedClient) Next(e *core.Env, t *core.Thread) core.Action {
	c.sys.IPC.Received(t)
	if c.done == c.warmup {
		c.MarkStart = c.sys.K.Clock.Now()
	}
	if c.done >= c.rpcs {
		c.MarkEnd = c.sys.K.Clock.Now()
		return core.Exit()
	}
	c.done++
	return core.Syscall("mach_msg(rpc)", func(e *core.Env) {
		req := c.sys.IPC.NewMessage(1, c.size, nil, c.reply)
		req.OOL = c.ool
		c.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: req, SendTo: c.server, ReceiveFrom: c.reply,
		})
	})
}

// sizedEcho replies preserving size and transfer mode.
type sizedEcho struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
}

func (s *sizedEcho) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	req := s.pending
	s.pending = nil
	return core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
		reply := s.sys.IPC.NewMessage(2, req.Size, nil, nil)
		reply.OOL = req.OOL
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: reply, SendTo: req.Reply, ReceiveFrom: s.port,
		})
	})
}

// rpcWithSize measures the round trip for one (size, mode) point.
func rpcWithSize(flavor kern.Flavor, arch machine.Arch, size int, ool bool, iters int) float64 {
	sys := kern.New(kern.Config{Flavor: flavor, Arch: arch, DisableCallout: true})
	st := sys.NewTask("server")
	ct := sys.NewTask("client")
	sp := sys.IPC.NewPort("service")
	rp := sys.IPC.NewPort("reply")
	warmup := 5
	srv := &sizedEcho{sys: sys, port: sp}
	cli := &sizedClient{
		sys: sys, server: sp, reply: rp,
		size: size, ool: ool, rpcs: iters + warmup, warmup: warmup,
	}
	sys.Start(st.NewThread("srv", srv, 20))
	sys.Start(ct.NewThread("cli", cli, 10))
	sys.Run(0)
	return (cli.MarkEnd - cli.MarkStart).Micros() / float64(iters)
}

// MessageSizeSweep measures RPC round-trip latency against message size
// for inline and out-of-line transfer on MK40/DS3100: the crossover
// figure for Mach's large-message path.
func MessageSizeSweep(sizes []int, iters int) []SweepRow {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024, 4096, 16384, 65536}
	}
	if iters <= 0 {
		iters = 100
	}
	rows := make([]SweepRow, 0, len(sizes))
	for _, size := range sizes {
		rows = append(rows, SweepRow{
			SizeBytes: size,
			InlineUs:  rpcWithSize(kern.MK40, machine.ArchDS3100, size, false, iters),
			OOLUs:     rpcWithSize(kern.MK40, machine.ArchDS3100, size, true, iters),
		})
	}
	return rows
}
