package experiments_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// smallNetRPC is a short observed cross-machine run: enough traffic to
// exercise every event kind the netrpc path emits while keeping the
// golden file small.
func smallNetRPC() workload.NetRPCSpec {
	return workload.NetRPCSpec{
		RPCs:          3,
		MsgBytes:      64,
		DiskReads:     2,
		DiskReadBytes: 1024,
		DiskLatency:   machine.Duration(2 * 1000 * 1000), // 2 ms
		Observe:       true,
	}
}

// exportSmallRun performs one observed small netrpc run and returns the
// Chrome trace bytes plus both machines' profile reports.
func exportSmallRun(t *testing.T) (traceJSON []byte, reports string) {
	t.Helper()
	res := workload.RunNetRPC(kern.MK40, machine.ArchDS3100, smallNetRPC())
	if res.Completed != 3 {
		t.Fatalf("completed %d RPCs, want 3", res.Completed)
	}
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, res.Client.K.Obs, res.Server.K.Obs); err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	res.Client.K.Obs.WriteReport(&rep)
	rep.WriteString("\n")
	res.Server.K.Obs.WriteReport(&rep)
	return buf.Bytes(), rep.String()
}

// TestTraceExportDeterministic is the acceptance check for the trace
// exporter: two identical fixed-seed runs must export byte-identical
// Chrome JSON and byte-identical profile reports.
func TestTraceExportDeterministic(t *testing.T) {
	trace1, rep1 := exportSmallRun(t)
	trace2, rep2 := exportSmallRun(t)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("two identical runs exported different trace bytes")
	}
	if rep1 != rep2 {
		t.Fatalf("two identical runs produced different reports:\n%s\n---\n%s", rep1, rep2)
	}
	if !json.Valid(trace1) {
		t.Fatal("exported trace is not valid JSON")
	}
}

// TestTraceGolden pins the exported trace of the small netrpc run so any
// change to event emission, ordering or formatting is visible in review.
// Regenerate with: go test ./internal/experiments -run TestTraceGolden -update-golden
func TestTraceGolden(t *testing.T) {
	got, _ := exportSmallRun(t)
	path := filepath.Join("testdata", "netrpc_small_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exported trace differs from golden %s (regenerate with -update-golden if the change is intended); got %d bytes, want %d",
			path, len(got), len(want))
	}
}

// TestTraceviewSummary smoke-tests the consumer side: the exported trace
// replays into the same statistics the live recorders computed.
func TestTraceviewSummary(t *testing.T) {
	trace, reports := exportSmallRun(t)
	out, err := obs.Summarize(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"trace: 2 machine(s)",
		"machine 0:",
		"machine 1:",
		"net-client/cli",
		"continuation profile:",
		"mach_msg_continue",
		"block->wakeup",
		"rpc round-trip",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Replaying the export recomputes exactly the live reports: every
	// live report line must appear in the summary.
	for _, line := range strings.Split(strings.TrimRight(reports, "\n"), "\n") {
		if line == "" {
			continue
		}
		if !strings.Contains(out, line) {
			t.Fatalf("summary lacks live report line %q:\n%s", line, out)
		}
	}
}

// TestObserveOffByDefault pins the disabled-path contract: without
// Observe the kernels carry no recorder at all, so every emit site costs
// one nil check.
func TestObserveOffByDefault(t *testing.T) {
	spec := smallNetRPC()
	spec.Observe = false
	res := workload.RunNetRPC(kern.MK40, machine.ArchDS3100, spec)
	if res.Client.K.Obs != nil || res.Server.K.Obs != nil {
		t.Fatal("recorder installed without Observe")
	}
	if res.Completed != 3 {
		t.Fatalf("completed %d RPCs, want 3", res.Completed)
	}
}

// TestRecognitionProfileAcrossFlavors checks the headline §2.4 numbers
// the profiler exists to surface: the continuation kernel recognizes
// mach_msg_continue on the RPC path, the process-model kernels have no
// continuations to profile at all.
func TestRecognitionProfileAcrossFlavors(t *testing.T) {
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32, kern.Mach25} {
		res := workload.RunNetRPC(flavor, machine.ArchDS3100, smallNetRPC())
		rec := res.Server.K.Obs
		if flavor == kern.MK40 {
			p := rec.Profile("mach_msg_continue")
			if p == nil || p.RecognitionHits == 0 {
				t.Fatalf("%v: no mach_msg_continue recognitions: %+v", flavor, p)
			}
			if p.HitRate() != 100 {
				t.Fatalf("%v: hit rate %.1f, want 100", flavor, p.HitRate())
			}
		} else {
			if n := len(rec.Profiles()); n != 0 {
				t.Fatalf("%v: %d continuation profiles on a process-model kernel", flavor, n)
			}
		}
		if rec.Hist[obs.LatBlockToWakeup].Count == 0 {
			t.Fatalf("%v: no block->wakeup samples", flavor)
		}
	}
}
