// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation (§3), plus the Firefly comparison
// of §5. Each driver boots a fresh simulated system, runs the relevant
// microbenchmark or workload, and returns structured results that the
// benchmarks, the cmd/tables tool and EXPERIMENTS.md all share.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Flavors lists the measured kernels in the paper's column order.
var Flavors = []kern.Flavor{kern.MK40, kern.MK32, kern.Mach25}

// Arches lists the evaluation machines.
var Arches = []machine.Arch{machine.ArchDS3100, machine.ArchToshiba5200}

// ---------------------------------------------------------------------
// Table 3: null RPC and exception round-trip latency.
// ---------------------------------------------------------------------

// echoServer answers every request on its port forever. Its two syscall
// actions are built once and reused — a fresh closure per action would
// put an allocation on every step of the steady-state RPC path.
type echoServer struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
	Handled uint64

	recvAct  core.Action
	replyAct core.Action
}

func (s *echoServer) Next(e *core.Env, t *core.Thread) core.Action {
	if s.recvAct.Invoke == nil {
		s.recvAct = core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
		s.replyAct = core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
			req := s.pending
			s.pending = nil
			op, size, body, to := req.OpID, req.Size, req.Body, req.Reply
			s.sys.IPC.FreeMessage(req)
			reply := s.sys.IPC.NewMessage(op|0x8000, size, body, nil)
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: reply, SendTo: to, ReceiveFrom: s.port,
			})
		})
	}
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return s.recvAct
	}
	s.Handled++
	return s.replyAct
}

// PingClient issues null RPCs, recording the simulated time spent
// between warmup and completion.
type PingClient struct {
	sys    *kern.System
	server *ipc.Port
	reply  *ipc.Port
	rpcs   int
	warmup int

	done      int
	MarkStart machine.Time
	MarkEnd   machine.Time

	rpcAct core.Action
}

// Next implements core.UserProgram.
func (c *PingClient) Next(e *core.Env, t *core.Thread) core.Action {
	if c.rpcAct.Invoke == nil {
		c.rpcAct = core.Syscall("mach_msg(rpc)", func(e *core.Env) {
			req := c.sys.IPC.NewMessage(1, ipc.HeaderBytes, nil, c.reply)
			c.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: req, SendTo: c.server, ReceiveFrom: c.reply,
			})
		})
	}
	// Recycle the previous round's echoed reply.
	if m := c.sys.IPC.Received(t); m != nil {
		c.sys.IPC.FreeMessage(m)
	}
	if c.done == c.warmup {
		c.MarkStart = c.sys.K.Clock.Now()
	}
	if c.done >= c.rpcs {
		c.MarkEnd = c.sys.K.Clock.Now()
		return core.Exit()
	}
	c.done++
	return c.rpcAct
}

// NullRPC measures the round-trip time of a cross-address space null RPC
// in simulated microseconds.
func NullRPC(flavor kern.Flavor, arch machine.Arch, iters int) float64 {
	sys := kern.New(kern.Config{Flavor: flavor, Arch: arch, DisableCallout: true})
	return NullRPCOn(sys, iters)
}

// NullRPCOn runs the null RPC microbenchmark on a pre-built system,
// letting callers configure ablations or machine variants.
func NullRPCOn(sys *kern.System, iters int) float64 {
	if iters <= 0 {
		iters = 1000
	}
	cli := SetupNullRPC(sys, iters)
	sys.Run(0)
	return (cli.MarkEnd - cli.MarkStart).Micros() / float64(iters)
}

// SetupNullRPC installs a client/server echo pair that will run iters
// timed RPCs (after a small warmup) when the system runs.
func SetupNullRPC(sys *kern.System, iters int) *PingClient {
	st := sys.NewTask("server")
	ct := sys.NewTask("client")
	sp := sys.IPC.NewPort("service")
	rp := sys.IPC.NewPort("reply")
	srv := &echoServer{sys: sys, port: sp}
	warmup := 10
	cli := &PingClient{sys: sys, server: sp, reply: rp, rpcs: iters + warmup, warmup: warmup}
	sys.Start(st.NewThread("srv", srv, 20))
	sys.Start(ct.NewThread("cli", cli, 10))
	return cli
}

// excClient raises n exceptions.
type excClient struct {
	sys    *kern.System
	n      int
	warmup int

	done      int
	MarkStart machine.Time
	MarkEnd   machine.Time
}

func (c *excClient) Next(e *core.Env, t *core.Thread) core.Action {
	if c.done == c.warmup {
		c.MarkStart = c.sys.K.Clock.Now()
	}
	if c.done >= c.n {
		c.MarkEnd = c.sys.K.Clock.Now()
		return core.Exit()
	}
	c.done++
	return core.Action{Kind: core.ActException, Code: c.done}
}

// excEcho is the minimal exception server: it does not examine or change
// the faulting thread's state, exactly as in the paper's benchmark.
type excEcho struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
	Handled uint64
}

func (s *excEcho) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	req := s.pending
	s.pending = nil
	s.Handled++
	return core.Syscall("mach_msg(exc-reply)", func(e *core.Env) {
		reply := s.sys.IPC.NewMessage(ipc.ExcOpRaise+100, ipc.HeaderBytes, nil, nil)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: reply, SendTo: req.Reply, ReceiveFrom: s.port,
		})
	})
}

// ExceptionRTT measures the time for a user-level server thread to
// handle a faulting thread's exception, in simulated microseconds. The
// server runs in the same address space as the faulting thread (§3.3).
func ExceptionRTT(flavor kern.Flavor, arch machine.Arch, iters int) float64 {
	if iters <= 0 {
		iters = 1000
	}
	sys := kern.New(kern.Config{Flavor: flavor, Arch: arch, DisableCallout: true})
	task := sys.NewTask("emulated")
	port := sys.IPC.NewPort("exc")
	srv := &excEcho{sys: sys, port: port}
	warmup := 10
	cli := &excClient{sys: sys, n: iters + warmup, warmup: warmup}
	sys.Start(task.NewThread("handler", srv, 20))
	faulter := task.NewThread("faulter", cli, 10)
	sys.Exc.SetExceptionPort(faulter, port)
	sys.Start(faulter)
	sys.Run(0)
	return (cli.MarkEnd - cli.MarkStart).Micros() / float64(iters)
}

// Table3Row is one cell group of Table 3.
type Table3Row struct {
	Arch     machine.Arch
	Flavor   kern.Flavor
	RPCus    float64
	ExcUs    float64
	PaperRPC float64
	PaperExc float64
}

// PaperTable3 returns the published values.
func PaperTable3(arch machine.Arch, flavor kern.Flavor) (rpc, exc float64) {
	switch arch {
	case machine.ArchDS3100:
		switch flavor {
		case kern.MK40:
			return 95, 135
		case kern.MK32:
			return 110, 425
		default:
			return 185, 380
		}
	default:
		switch flavor {
		case kern.MK40:
			return 535, 525
		case kern.MK32:
			return 510, 1155
		default:
			return 890, 1410
		}
	}
}

// Table3 regenerates the full latency table.
func Table3(iters int) []Table3Row {
	var rows []Table3Row
	for _, arch := range Arches {
		for _, flavor := range Flavors {
			prpc, pexc := PaperTable3(arch, flavor)
			rows = append(rows, Table3Row{
				Arch:     arch,
				Flavor:   flavor,
				RPCus:    NullRPC(flavor, arch, iters),
				ExcUs:    ExceptionRTT(flavor, arch, iters),
				PaperRPC: prpc,
				PaperExc: pexc,
			})
		}
	}
	return rows
}

// ---------------------------------------------------------------------
// Tables 1 and 2: workload block statistics.
// ---------------------------------------------------------------------

// Table1Result holds one workload column of Tables 1 and 2.
type Table1Result struct {
	Workload string
	SimTime  machine.Time

	Blocks      [stats.NumBlockReasons]uint64
	NoDiscards  uint64
	TotalBlocks uint64

	Handoffs     uint64
	Recognitions uint64

	StacksAvg float64
	StacksMax int
}

// RunWorkload executes one paper workload at the given duration scale on
// MK40/Toshiba (the configuration of Tables 1-2) and collects the
// statistics.
func RunWorkload(spec workload.Spec, scale float64, seed uint64) Table1Result {
	sys, _ := workload.Run(kern.MK40, machine.ArchToshiba5200, spec.Scale(scale), seed)
	st := sys.K.Stats
	res := Table1Result{
		Workload:     spec.Name,
		SimTime:      sys.K.Clock.Now(),
		NoDiscards:   st.TotalNoDiscards(),
		TotalBlocks:  st.TotalBlocks(),
		Handoffs:     st.Handoffs,
		Recognitions: st.Recognitions,
		StacksAvg:    sys.K.Stacks.AverageInUse(),
		StacksMax:    sys.K.Stacks.MaxInUse(),
	}
	res.Blocks = st.BlocksWithDiscard
	return res
}

// Tables1And2 regenerates both workload tables at the given scale.
func Tables1And2(scale float64, seed uint64) []Table1Result {
	var out []Table1Result
	for _, spec := range workload.Specs() {
		out = append(out, RunWorkload(spec, scale, seed))
	}
	return out
}

// PaperTable1Percent returns the published Table 1 percentages for a
// workload name, in DiscardReasons order plus the no-discard total.
func PaperTable1Percent(name string) (rows []float64, noDiscard float64) {
	switch name {
	case "Compile Test":
		return []float64{83.4, 0.0, 0.9, 0.0, 7.7, 6.4}, 1.6
	case "Kernel Build":
		return []float64{86.3, 0.0, 0.2, 0.0, 4.9, 8.4}, 0.1
	case "DOS Emulation":
		return []float64{55.2, 37.9, 0.0, 0.0, 5.3, 1.6}, 0.0
	default:
		return nil, 0
	}
}

// PaperTable2Percent returns the published handoff and recognition
// percentages.
func PaperTable2Percent(name string) (handoff, recognition float64) {
	switch name {
	case "Compile Test":
		return 96.8, 60.2
	case "Kernel Build":
		return 99.7, 72.3
	case "DOS Emulation":
		return 100.0, 85.9
	default:
		return 0, 0
	}
}

// ---------------------------------------------------------------------
// Table 4: component costs.
// ---------------------------------------------------------------------

// Table4Row is one line of the component-cost table.
type Table4Row struct {
	Component string
	MK40      machine.Cost
	MK32      machine.Cost
}

// Table4 returns the DS3100 component costs used by the simulation;
// the MK40/MK32 entry/exit and handoff/switch values are the paper's
// measurements, taken as machine facts.
func Table4() []Table4Row {
	m := machine.NewCostModel(machine.ArchDS3100)
	mk40 := machine.TransferCostsFor(m, true)
	mk32 := machine.TransferCostsFor(m, false)
	return []Table4Row{
		{Component: "system call entry", MK40: mk40.SyscallEntry, MK32: mk32.SyscallEntry},
		{Component: "system call exit", MK40: mk40.SyscallExit, MK32: mk32.SyscallExit},
		{Component: "stack handoff", MK40: mk40.StackHandoff},
		{Component: "context switch", MK32: mk32.ContextSwitch},
	}
}

// ---------------------------------------------------------------------
// Table 5: per-thread kernel memory.
// ---------------------------------------------------------------------

// Table5Result compares static thread overhead and the measured average
// over a population of blocked threads.
type Table5Result struct {
	Flavor            kern.Flavor
	Static            kern.ThreadSpace
	MeasuredPerThread float64
	Threads           int
	StacksInUse       int
}

// Table5 boots each flavor, parks n threads in message receives (the
// dominant state of real systems), and reports per-thread memory.
func Table5(n int) []Table5Result {
	var out []Table5Result
	for _, flavor := range Flavors[:2] { // the paper tables MK40 and MK32
		// Daemons off: the census must count exactly the parked threads
		// (plus the pageout daemon), as in the paper's measurement.
		sys := kern.New(kern.Config{
			Flavor: flavor, Arch: machine.ArchDS3100, DisableCallout: true,
			DisableDaemons: true,
		})
		task := sys.NewTask("pool")
		port := sys.IPC.NewPort("idle")
		for i := 0; i < n; i++ {
			prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
				return core.Syscall("receive", func(e *core.Env) {
					sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
				})
			})
			sys.Start(task.NewThread("idle", prog, 10))
		}
		sys.Run(0)
		out = append(out, Table5Result{
			Flavor:            flavor,
			Static:            flavor.StaticThreadSpace(),
			MeasuredPerThread: sys.MeasuredPerThreadBytes(),
			Threads:           sys.LiveUserThreads(),
			StacksInUse:       sys.K.Stacks.InUse(),
		})
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 2: the fast RPC path trace.
// ---------------------------------------------------------------------

// Figure2Trace records the control-transfer steps of one steady-state
// fast RPC on MK40.
func Figure2Trace() *stats.Trace {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	st := sys.NewTask("server")
	ct := sys.NewTask("client")
	sp := sys.IPC.NewPort("service")
	rp := sys.IPC.NewPort("reply")
	srv := &echoServer{sys: sys, port: sp}
	cli := &PingClient{sys: sys, server: sp, reply: rp, rpcs: 4, warmup: 0}
	sys.Start(st.NewThread("server", srv, 20))
	sys.Start(ct.NewThread("client", cli, 10))

	// Warm up two RPCs so both sides are parked in mach_msg_continue,
	// then trace the third by attaching an event recorder for just that
	// window and rendering the legacy control-transfer steps from it.
	for cli.done < 3 && sys.K.Step() {
	}
	rec := sys.EnableObservation(0)
	for cli.done < 4 && sys.K.Step() {
	}
	sys.K.Obs = nil
	trace := obs.ToTrace(rec.Events())
	sys.Run(0)
	return trace
}

// DeviceReadTrace records the control-transfer steps of one steady-state
// interrupt-driven device_read on MK40: kernel entry, block with
// device_read_continue (stack discarded), the transfer interrupt taken on
// the current processor's stack, and the io_done thread handing its stack
// to the reader, recognizing the device continuation, and finishing the
// read inline.
func DeviceReadTrace() *stats.Trace {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100,
		DisableCallout: true,
		// A short service time keeps the trace tight.
		DiskLatency: machine.Duration(500 * 1000)})
	task := sys.NewTask("reader")
	oneRead := func(name string) *core.Thread {
		issued := false
		prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			if issued {
				return core.Exit()
			}
			issued = true
			return core.Syscall("device_read", func(e *core.Env) {
				d := sys.Dev.Open(e, "disk")
				sys.Dev.DeviceRead(e, d, 4096)
			})
		})
		return task.NewThread(name, prog, 10)
	}

	// Warm up one full read so the io_done thread is parked in
	// io_done_continue, then trace a second reader end to end.
	sys.Start(oneRead("warm"))
	sys.Run(0)
	rec := sys.EnableObservation(0)
	sys.Start(oneRead("rd"))
	sys.Run(0)
	sys.K.Obs = nil
	return obs.ToTrace(rec.Events())
}

// ---------------------------------------------------------------------
// §5: the Firefly comparison.
// ---------------------------------------------------------------------

// FireflyResult reports the kernel stack census for the Topaz usage
// scenario: 886 blocked kernel-level threads on a five-processor
// machine.
type FireflyResult struct {
	Flavor      kern.Flavor
	Threads     int
	Processors  int
	StacksInUse int
}

// Firefly886 reproduces the §5 projection: 886 kernel threads blocked
// with the Firefly's observed wait mix (106 timers, 20 network waits, 38
// exception waits, 28 internal daemons, the rest in message receives) on
// 5 processors, plus 5 compute threads keeping every processor busy. In
// Mach-with-continuations this needs 6 stacks (one per processor plus
// the special process-model thread); a dedicated-stack kernel needs one
// per thread.
func Firefly886(flavor kern.Flavor) FireflyResult {
	sys := kern.New(kern.Config{
		Flavor:     flavor,
		Arch:       machine.ArchDS3100,
		Processors: 5,
		Frames:     1 << 14,
	})
	task := sys.NewTask("population")
	port := sys.IPC.NewPort("sink")

	const (
		timers    = 106
		netWaits  = 20
		excWaits  = 38
		daemons   = 28
		total     = 886
		receivers = total - timers - netWaits - excWaits - daemons
	)

	// Message receivers (the dominant population, as on the Firefly).
	var blocked []*core.Thread
	recvProg := func() core.UserProgram {
		return core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			return core.Syscall("receive", func(e *core.Env) {
				sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			})
		})
	}
	for i := 0; i < receivers+netWaits+excWaits; i++ {
		th := task.NewThread(fmt.Sprintf("blocked-%d", i), recvProg(), 10)
		blocked = append(blocked, th)
		sys.Start(th)
	}
	// Timer waiters: sleep far in the future.
	for i := 0; i < timers; i++ {
		prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			return core.Syscall("sleep", func(e *core.Env) {
				t := e.Cur()
				sys.K.Clock.AfterBackground(machine.Duration(1e15), "timer", func() {
					sys.K.Setrun(t)
				})
				t.State = core.StateWaiting
				sys.K.Block(e, stats.BlockInternal, contSleepForever,
					func(e2 *core.Env) { e2.K.ThreadSyscallReturn(e2, 0) }, 128, "sleep")
			})
		})
		th := task.NewThread(fmt.Sprintf("timer-%d", i), prog, 10)
		blocked = append(blocked, th)
		sys.Start(th)
	}
	// Internal daemons.
	for i := 0; i < daemons; i++ {
		d := workload.NewDaemon(sys, fmt.Sprintf("daemon-%d", i), machine.Cost{Instrs: 100})
		blocked = append(blocked, d.Thread)
	}
	// Five compute threads keep all processors busy so the census shows
	// the per-processor running stacks.
	for i := 0; i < 5; i++ {
		prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			return core.RunFor(10000)
		})
		sys.Start(task.NewThread(fmt.Sprintf("busy-%d", i), prog, 5))
	}

	// Drive until the blocked population has settled (every processor
	// then runs a compute thread), and take the census.
	settled := func() bool {
		for _, th := range blocked {
			if th.State != core.StateWaiting {
				return false
			}
		}
		for _, p := range sys.K.Procs {
			if p.Cur == nil {
				return false
			}
		}
		return true
	}
	for i := 0; i < 5_000_000 && !settled(); i++ {
		if !sys.K.Step() {
			break
		}
	}
	return FireflyResult{
		Flavor:      flavor,
		Threads:     sys.K.LiveThreads(),
		Processors:  5,
		StacksInUse: sys.K.Stacks.InUse(),
	}
}

var contSleepForever = core.NewContinuation("sleep_forever_continue", func(e *core.Env) {
	e.K.ThreadSyscallReturn(e, 0)
})
