package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func TestDeviceReadTraceShape(t *testing.T) {
	tr := experiments.DeviceReadTrace()
	// The interrupt-driven device_read: enter kernel, block with
	// device_read_continue, take the transfer interrupt on the current
	// stack, io_done hands its stack to the reader, recognition finishes
	// the read inline, exit kernel.
	for _, kind := range []stats.TraceKind{
		stats.TraceKernelEntry,
		stats.TraceBlock,
		stats.TraceInterrupt,
		stats.TraceStackHandoff,
		stats.TraceRecognition,
		stats.TraceKernelExit,
	} {
		if !tr.Has(kind) {
			t.Errorf("trace lacks %v:\n%s", kind, tr)
		}
	}
	// No context switch anywhere: every transfer is a handoff or a
	// continuation call.
	if tr.Has(stats.TraceContextSwitch) {
		t.Errorf("device path contains a context switch:\n%s", tr)
	}
	// The recognition must be of the device continuation specifically,
	// and the interrupt must precede the handoff (completion flows
	// interrupt -> io_done -> reader).
	interruptAt, handoffAt, recAt := -1, -1, -1
	for i, e := range tr.Entries {
		switch {
		case e.Kind == stats.TraceInterrupt && interruptAt < 0:
			interruptAt = i
		case e.Kind == stats.TraceStackHandoff && handoffAt < 0:
			handoffAt = i
		case e.Kind == stats.TraceRecognition &&
			strings.Contains(e.Detail, "device_read_continue"):
			recAt = i
		}
	}
	if recAt < 0 {
		t.Fatalf("no recognition of device_read_continue:\n%s", tr)
	}
	if !(interruptAt < handoffAt && handoffAt < recAt) {
		t.Fatalf("order wrong: interrupt@%d handoff@%d recognition@%d\n%s",
			interruptAt, handoffAt, recAt, tr)
	}
}
