package svc

// DefaultShards and DefaultGroups size the standard KV deployment: eight
// key-range shards spread round-robin over two replica groups, each
// group a primary/backup pair drawn from the two server machines.
const (
	DefaultShards = 8
	DefaultGroups = 2
	// NumRanks is the replica count per group (primary + backup).
	NumRanks = 2
)

// ShardMap is the static placement function: key -> shard -> group, plus
// each group's boot-time leader. It never changes during a run (leases
// move leadership; the map itself is configuration), so every machine
// can hold a copy with no coordination.
type ShardMap struct {
	Shards int
	Groups int
}

// NewShardMap returns a map with the given sizes (defaults if <= 0).
func NewShardMap(shards, groups int) ShardMap {
	if shards <= 0 {
		shards = DefaultShards
	}
	if groups <= 0 {
		groups = DefaultGroups
	}
	if groups > shards {
		groups = shards
	}
	return ShardMap{Shards: shards, Groups: groups}
}

// ShardOf hashes a key onto a shard with a splitmix64 finalizer, so
// adjacent keys spread over all groups.
func (m ShardMap) ShardOf(key uint64) int {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(m.Shards))
}

// GroupOf places shards round-robin over the groups.
func (m ShardMap) GroupOf(shard int) int { return shard % m.Groups }

// GroupOfKey is ShardOf followed by GroupOf.
func (m ShardMap) GroupOfKey(key uint64) int { return m.GroupOf(m.ShardOf(key)) }

// InitialLeader alternates boot-time leadership over the ranks, so both
// server machines carry primary load from the start.
func (m ShardMap) InitialLeader(group int) int { return group % NumRanks }
