package svc

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overload"
)

// DefaultCallTimeout is a caller's per-attempt receive timeout: long
// enough that queueing never trips it, short against the membership
// deadline so a dead server is probed again promptly.
const DefaultCallTimeout = machine.Duration(10 * 1000 * 1000) // 10 ms

// CallerMaxAttempts bounds retries per operation so a cluster whose
// replicas all die without reboot still quiesces.
const CallerMaxAttempts = 64

// KVOp is one scripted client operation.
type KVOp struct {
	Op       Op
	Key, Val uint64
}

// CallerStats is one caller's lifetime accounting.
type CallerStats struct {
	Done       int    // operations acknowledged
	Failed     int    // operations abandoned after CallerMaxAttempts
	Redirects  uint64 // NotLeader replies that updated the leader map
	Failovers  uint64 // believed-leader flips after a peer-death timeout
	Salvaged   uint64 // operations that needed more than one attempt
	Mismatches uint64 // Gets that contradicted this caller's acked Puts
}

// caller phases: run the op script, then report done to each replica,
// then exit. A one-shot caller (the cache tier's embedded client) parks
// between operations instead, and its host drives the done protocol
// explicitly.
const (
	phaseOps = iota
	phaseDone
	phaseExit
	phaseParked
)

// Caller runs a scripted sequence of KV operations against the replica
// group from a client machine: it routes each key to the believed leader
// of its shard group, adopts NotLeader hints, and on a timeout consults
// the link's membership state to fail over — the haClient pattern
// generalized to per-group leadership. All state lives on the program
// object, so the same caller survives its own machine's crash; the
// reboot script calls Reset and restarts the thread, and it resumes at
// the operation it was on.
//
// Consistency bookkeeping: every caller owns a disjoint key range, so an
// acknowledged Put fixes the value any later Get must see; divergence is
// counted in Stats.Mismatches (an abandoned Put releases its key — the
// write may or may not have landed).
type Caller struct {
	Sys  *kern.System
	Name string
	// ID is this caller's global index among all client threads — the
	// done protocol's identity.
	ID  int
	Map ShardMap
	// Links maps replica rank -> this machine's link index.
	Links [NumRanks]int
	// Timeout overrides the per-attempt receive timeout when nonzero.
	Timeout machine.Duration
	// MaxAttempts overrides CallerMaxAttempts when nonzero — the storm
	// sessions lower it so a collapsed run's abandoned backlog still
	// drains in bounded simulated time.
	MaxAttempts int
	// Port overrides the wire name the caller targets (PortName if empty)
	// — the service-graph frontends aim at the cache tier's port instead.
	Port string
	// HistName, when nonempty, names the service histogram end-to-end
	// operation latency is observed into (e.g. "kv.op").
	HistName string
	Ops      []KVOp
	// OneShot parks the caller after each completed operation instead of
	// moving on to the done protocol; the host (a cache worker) submits
	// operations with StartOp and reads Last* for the outcome.
	OneShot bool
	// Track enables the acked-Put/Get consistency bookkeeping; only valid
	// when this caller's keys are written by nobody else.
	Track bool
	// Record makes the caller log every scripted operation into History
	// for the post-run linearizability check: invoke/return stamped with
	// simulated time, unacknowledged ops marked indeterminate. The slice
	// is caller-local (no cross-machine sharing), so recording is safe
	// under the parallel driver and merge order is the workload's problem.
	Record bool

	Stats CallerStats
	// History is the recorded operation log (Record only). It survives
	// the caller's machine crashing — the history is the client's own
	// notebook, not server state.
	History []check.Op

	// Ctx, when sampled, is the causal-trace context the next operation
	// runs under: the operation becomes a child span of Ctx.Span instead
	// of a new trace root. The cache tier sets it per fetch so a
	// frontend's trace follows the miss path down to the KV group.
	Ctx obs.TraceContext

	// Overload arms the client-side overload controls when Enabled:
	// per-op absolute deadlines stamped into the message header (and
	// enforced locally before each attempt), the retry budget spent per
	// retransmission, and the circuit breaker consulted before every
	// send. Nil or disabled leaves every legacy path untouched.
	Overload *overload.Policy
	// Budget is the per-client retry token bucket (armed runs only):
	// retransmits beyond the first attempt spend a token, and an empty
	// bucket fast-fails the op instead of amplifying offered load.
	Budget *overload.RetryBudget
	// Breaker is the frontend circuit breaker (armed runs only).
	Breaker *overload.Breaker
	// OvStats is the client tier's shedding scoreboard, shared across a
	// machine's callers (armed runs only).
	OvStats *overload.Stats
	// IntendedStart, when nonzero, is the operation's intended open-loop
	// arrival time: latency accounting charges from it instead of the
	// first attempt's send, so a backlogged session cannot fake an SLA
	// win via coordinated omission. Set per op by the session host.
	IntendedStart machine.Time
	// NextDeadline, when nonzero, overrides the next operation's
	// absolute deadline — a host tier propagating an inherited budget
	// downstream (the cache worker's embedded fetch). Consumed at op
	// start.
	NextDeadline machine.Time

	// Last* report the most recently completed one-shot operation.
	// LastExpired/LastRejected type a failed one so the host tier can
	// relay the refusal upstream.
	LastOK       bool
	LastFound    bool
	LastVal      uint64
	LastExpired  bool
	LastRejected bool

	reply    *ipc.Port
	believed []int
	phase    int
	idx      int
	doneRank int
	attempts int
	opid     uint32
	waiting  bool
	started  machine.Time
	acked    map[uint64]uint64

	// trace is the in-flight operation's span context (zero when the op
	// is unsampled); opSerial numbers every operation this caller ever
	// started (one-shot callers reuse idx 0, so idx cannot mint ids);
	// attemptAt stamps the current attempt's send for retry spans.
	trace     obs.TraceContext
	opSerial  uint64
	attemptAt machine.Time

	// deadline is the in-flight operation's absolute deadline (zero:
	// none); opRefused holds while every finished attempt was
	// definitively refused before application (typed fast-fail reply,
	// or never sent) — a timeout clears it, because that attempt's fate
	// is unknown. A failed op with opRefused still true is recorded as
	// a definite no-op for the checker.
	deadline  machine.Time
	opRefused bool

	sendAct  core.Action
	drainAct core.Action
}

// Reset re-arms the caller for a (re)booted incarnation of its machine:
// fresh reply port, no in-flight attempt. Script position and
// consistency bookkeeping are retained — they are the caller's durable
// identity.
func (c *Caller) Reset(s *kern.System) {
	c.reply = s.IPC.NewPort(c.Name + "-reply")
	c.waiting = false
	c.attempts = 0
}

func (c *Caller) timeout() machine.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultCallTimeout
}

// group returns the shard group the current operation routes to.
func (c *Caller) group() int { return c.Map.GroupOfKey(c.Ops[c.idx].Key) }

// portName resolves the wire name the caller targets.
func (c *Caller) portName() string {
	if c.Port != "" {
		return c.Port
	}
	return PortName
}

// target resolves the current attempt's destination proxy port.
func (c *Caller) target() *ipc.Port {
	rank := c.doneRank
	if c.phase == phaseOps {
		rank = c.believed[c.group()]
	}
	return c.Sys.Links[c.Links[rank]].ProxyFor(c.portName())
}

// buildWire renders the current attempt's request.
func (c *Caller) buildWire() *Wire {
	if c.phase == phaseDone {
		return &Wire{Kind: MsgDone, From: c.ID, OpID: c.opid}
	}
	op := c.Ops[c.idx]
	return &Wire{Kind: MsgClientOp, OpID: c.opid, Op: op.Op, Key: op.Key, Val: op.Val}
}

func (c *Caller) Next(e *core.Env, t *core.Thread) core.Action {
	act, fin := c.Step(e, t)
	if fin {
		return core.Exit()
	}
	return act
}

// StartOp submits one operation to a parked one-shot caller.
func (c *Caller) StartOp(op KVOp) {
	c.Ops = append(c.Ops[:0], op)
	c.idx = 0
	c.phase = phaseOps
	c.attempts = 0
	c.waiting = false
}

// StartDone moves a parked one-shot caller into the done protocol; Step
// reports finished once every replica has acknowledged (or given up on).
func (c *Caller) StartDone() {
	c.phase = phaseDone
	c.doneRank = 0
	c.attempts = 0
	c.waiting = false
}

// Step advances the caller one dispatch: it returns the next blocking
// action, or finished=true when there is nothing left to do (script and
// done protocol complete, or a one-shot operation parked).
func (c *Caller) Step(e *core.Env, t *core.Thread) (core.Action, bool) {
	if c.sendAct.Invoke == nil {
		if c.believed == nil {
			c.believed = make([]int, c.Map.Groups)
			for g := range c.believed {
				c.believed[g] = c.Map.InitialLeader(g)
			}
			c.acked = make(map[uint64]uint64)
		}
		c.sendAct = core.Syscall("mach_msg(kv-call)", func(e *core.Env) {
			w := c.buildWire()
			msg := c.Sys.IPC.NewMessage(c.opid, wireBytes(w), w, c.reply)
			// Stamp both the message and the thread explicitly: the
			// thread may still carry the previous operation's context.
			msg.Trace = c.trace
			msg.Deadline = c.deadline
			e.Cur().Trace = c.trace
			c.Sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: msg, SendTo: c.target(),
				ReceiveFrom: c.reply, RcvTimeout: c.timeout(),
			})
		})
		c.drainAct = core.Syscall("mach_msg(kv-drain)", func(e *core.Env) {
			c.Sys.IPC.MachMsg(e, ipc.MsgOptions{
				ReceiveFrom: c.reply, RcvTimeout: c.timeout(),
			})
		})
	}
	if c.waiting {
		if m := c.Sys.IPC.Received(t); m != nil {
			if m.OpID != c.opid|ReplyOpBit {
				// A late reply to an already-retried attempt; keep draining
				// for the current one.
				c.Sys.IPC.FreeMessage(m)
				return c.drainAct, false
			}
			w, _ := m.Body.(*Wire)
			c.Sys.IPC.FreeMessage(m)
			c.waiting = false
			switch {
			case w == nil:
				// Malformed reply; retry.
			case (w.Expired || w.Rejected) && c.phase == phaseOps:
				// A typed overload refusal: some tier shed the op before
				// applying anything, so this attempt is a definite no-op
				// and opRefused survives. The refusal counts against the
				// breaker; Expired means the deadline itself is dead, so
				// give up now rather than burn budget on a corpse. A
				// Rejected op retries through the budget gate below —
				// but a budget-less caller has no way to pace those
				// retries, so it sheds at once instead of spinning at
				// RTT speed.
				c.breakerFailure()
				if w.Expired {
					if c.OvStats != nil {
						c.OvStats.Expired++
					}
					c.shed(t, "expired")
				} else if c.Budget == nil {
					if c.OvStats != nil {
						c.OvStats.Rejected++
					}
					c.shed(t, "rejected")
				}
			case w.NotLeader && c.phase == phaseOps:
				g := c.group()
				if w.Leader >= 0 && w.Leader < NumRanks && w.Leader != c.believed[g] {
					c.believed[g] = w.Leader
					c.Stats.Redirects++
				}
			default:
				c.breakerSuccess()
				c.complete(w, t)
			}
		} else {
			// Timed out. A silent believed leader that the membership layer
			// has declared dead means the lease has expired: flip to the
			// other rank, which will have elected itself.
			stalled := false
			if c.phase == phaseOps {
				g := c.group()
				if !c.Sys.Links[c.Links[c.believed[g]]].PeerAlive() {
					stalled = true
					c.believed[g] = NumRanks - 1 - c.believed[g]
					c.Stats.Failovers++
					if r := c.Sys.K.Obs; r != nil {
						r.EmitArg(obs.Failover, t.ID, t.Name, "",
							fmt.Sprintf("group %d -> rank %d", g, c.believed[g]), 1)
					}
				}
			}
			if c.trace.Sampled() && c.phase == phaseOps {
				// The attempt's window was lost to recovery: an election
				// stall when the leader was declared dead, plain retry
				// backoff otherwise.
				r := c.Sys.K.Obs
				name, seg := "kv.retry", obs.SegRetry
				if stalled {
					name, seg = "election-stall", obs.SegElection
				}
				r.RecordSpan(obs.Span{
					Trace: c.trace.Trace, ID: r.NextSpanID(c.trace.Trace),
					Parent: c.trace.Span, Name: name, Seg: seg, TID: t.ID,
					Start: c.attemptAt, End: c.Sys.K.Clock.Now(),
				})
			}
			if c.phase == phaseOps {
				// The attempt vanished: its fate at the servers is
				// unknown, so the op can no longer be a definite no-op.
				c.opRefused = false
				c.breakerFailure()
			}
			max := CallerMaxAttempts
			if c.MaxAttempts > 0 {
				max = c.MaxAttempts
			}
			if c.attempts >= max {
				c.abandon(t)
			}
			c.waiting = false
		}
	}
	for {
		if !c.waiting && (c.phase == phaseExit || c.phase == phaseParked) {
			return core.Action{}, true
		}
		if c.attempts == 0 {
			c.started = c.Sys.K.Clock.Now()
			c.mintOp()
			if c.phase == phaseOps {
				c.deadline = 0
				c.opRefused = true
				if c.NextDeadline != 0 {
					c.deadline = c.NextDeadline
					c.NextDeadline = 0
				} else if c.armed() {
					c.deadline = c.started + machine.Time(c.Overload.Deadline)
				}
			}
		}
		if c.phase != phaseOps || (c.deadline == 0 && !c.armed()) {
			break
		}
		// Overload gates, cheapest first: a dead deadline (the op cannot
		// be answered in budget no matter what), then the retry budget
		// (the first attempt is free), then the breaker. A shed op fails
		// fast and the loop moves on to the next one — fast local errors
		// instead of a slow retransmit storm.
		now := c.Sys.K.Clock.Now()
		if c.deadline != 0 && now >= c.deadline {
			if c.OvStats != nil {
				c.OvStats.Expired++
			}
			c.shed(t, "deadline")
			continue
		}
		if c.attempts > 0 && c.Budget != nil && !c.Budget.Take(now) {
			if c.OvStats != nil {
				c.OvStats.BudgetDenied++
			}
			c.shed(t, "retry-budget")
			continue
		}
		if c.Breaker != nil && !c.Breaker.Allow(now) {
			if c.OvStats != nil {
				c.OvStats.BreakerFastFail++
			}
			c.shed(t, "breaker")
			continue
		}
		break
	}
	c.attemptAt = c.Sys.K.Clock.Now()
	c.attempts++
	c.waiting = true
	c.opid = (c.opid + 1) & (ReplyOpBit - 1)
	if c.opid == 0 {
		c.opid = 1
	}
	return c.sendAct, false
}

// armed reports whether the client-side overload controls are on.
func (c *Caller) armed() bool { return c.Overload != nil && c.Overload.Enabled }

// breakerFailure feeds a failed attempt to the breaker, counting the
// closed->open edge.
func (c *Caller) breakerFailure() {
	if c.Breaker == nil || c.phase != phaseOps {
		return
	}
	if c.Breaker.Failure(c.Sys.K.Clock.Now()) && c.OvStats != nil {
		c.OvStats.BreakerOpens++
	}
}

// breakerSuccess feeds a completed round trip to the breaker.
func (c *Caller) breakerSuccess() {
	if c.Breaker != nil && c.phase == phaseOps {
		c.Breaker.Success()
	}
}

// mintOp establishes the new operation's trace context: a child of the
// preset Ctx when the host tier passed one down, otherwise a fresh root
// minted from the caller's identity and operation serial — kept or
// dropped by the head-sampling decision. Done-protocol traffic is never
// traced.
func (c *Caller) mintOp() {
	c.trace = obs.TraceContext{}
	if c.phase != phaseOps {
		return
	}
	r := c.Sys.K.Obs
	if r == nil {
		return
	}
	if c.Ctx.Sampled() {
		c.trace = obs.TraceContext{
			Trace: c.Ctx.Trace, Span: r.NextSpanID(c.Ctx.Trace), Parent: c.Ctx.Span,
		}
		return
	}
	if c.OneShot {
		// A one-shot caller continues its host's trace or stays dark: a
		// cache fetch is never an operation of its own.
		return
	}
	c.opSerial++
	tid := obs.MintTraceID(uint64(c.ID)+1, c.opSerial)
	if !r.SampleTrace(tid) {
		return
	}
	c.trace = obs.TraceContext{Trace: tid, Span: r.NextSpanID(tid)}
}

// finishSpan closes the operation's span (the trace root, or a child of
// the host tier's span). Roots carry SegQueue so the critical-path
// sweep's uncovered residual lands in "queue"; child spans are the
// parent's downstream service time.
func (c *Caller) finishSpan(t *core.Thread, end machine.Time, detail string) {
	if !c.trace.Sampled() {
		return
	}
	seg := obs.SegQueue
	if c.trace.Parent != 0 {
		seg = obs.SegService
	}
	name := c.HistName
	if name == "" {
		name = "op"
	}
	c.Sys.K.Obs.RecordSpan(obs.Span{
		Trace: c.trace.Trace, ID: c.trace.Span, Parent: c.trace.Parent,
		Name: name, Seg: seg, TID: t.ID, Detail: detail,
		Start: c.started, End: end,
	})
	c.trace = obs.TraceContext{}
}

// complete finishes the current operation on a matching acknowledgement.
func (c *Caller) complete(w *Wire, t *core.Thread) {
	if c.phase == phaseDone {
		c.doneRank++
		c.attempts = 0
		if c.doneRank >= NumRanks {
			c.phase = phaseExit
		}
		return
	}
	op := c.Ops[c.idx]
	c.Stats.Done++
	if c.attempts > 1 {
		c.Stats.Salvaged++
	}
	now := c.Sys.K.Clock.Now()
	if c.HistName != "" {
		if r := c.Sys.K.Obs; r != nil {
			r.Service(c.HistName).Observe(uint64(now - c.chargeFrom()))
		}
	}
	// The span closes on the same [started, now] pair the histogram
	// observed, so per-op segment sums equal the measured round trip.
	c.finishSpan(t, now, "")
	if c.Record {
		c.History = append(c.History, check.Op{
			Client: c.ID, Kind: histKind(op.Op), Key: op.Key,
			Val: histVal(op, w), Found: op.Op == OpPut || w.Found,
			Invoke: c.started, Return: now, Ok: true,
		})
	}
	c.LastOK, c.LastFound, c.LastVal = true, w.Found, w.Val
	c.LastExpired, c.LastRejected = false, false
	if c.Track {
		if op.Op == OpGet {
			if want, ok := c.acked[op.Key]; ok && (!w.Found || w.Val != want) {
				c.Stats.Mismatches++
			}
		} else {
			c.acked[op.Key] = op.Val
		}
	}
	c.advance()
}

// abandon gives up on the current operation after the attempt cap.
func (c *Caller) abandon(t *core.Thread) {
	if c.phase == phaseDone {
		c.doneRank++
		c.attempts = 0
		if c.doneRank >= NumRanks {
			c.phase = phaseExit
		}
		return
	}
	c.Stats.Failed++
	c.observeFail()
	c.finishSpan(t, c.Sys.K.Clock.Now(), "abandoned")
	if c.Record {
		op := c.Ops[c.idx]
		c.History = append(c.History, check.Op{
			Client: c.ID, Kind: histKind(op.Op), Key: op.Key, Val: op.Val,
			Invoke: c.started, Return: c.Sys.K.Clock.Now(), Ok: false,
		})
	}
	c.LastOK, c.LastFound = false, false
	c.LastExpired, c.LastRejected = false, false
	if c.Track && c.Ops[c.idx].Op == OpPut {
		// The write may or may not have landed; the key proves nothing
		// about later reads anymore.
		delete(c.acked, c.Ops[c.idx].Key)
	}
	c.advance()
}

// shed fails the current operation fast with a typed overload outcome —
// deadline dead, retry budget empty, breaker open, or a tier's typed
// refusal. Unlike abandon, a shed op whose every finished attempt was
// definitively refused (opRefused) is recorded as a definite no-op: the
// checker may exclude it from the history outright, and an acked-put
// key stays trusted because the refused write cannot have landed.
func (c *Caller) shed(t *core.Thread, why string) {
	if c.phase != phaseOps {
		return
	}
	c.Stats.Failed++
	c.observeFail()
	c.finishSpan(t, c.Sys.K.Clock.Now(), "shed:"+why)
	if c.Record {
		op := c.Ops[c.idx]
		c.History = append(c.History, check.Op{
			Client: c.ID, Kind: histKind(op.Op), Key: op.Key, Val: op.Val,
			Invoke: c.started, Return: c.Sys.K.Clock.Now(), Ok: false,
			Rejected: c.opRefused,
		})
	}
	c.LastOK, c.LastFound = false, false
	c.LastExpired = why == "deadline" || why == "expired"
	c.LastRejected = !c.LastExpired
	if c.Track && !c.opRefused && c.Ops[c.idx].Op == OpPut {
		delete(c.acked, c.Ops[c.idx].Key)
	}
	c.advance()
}

// chargeFrom is the instant latency accounting charges an operation
// from: the intended open-loop arrival when the session host set one,
// the first attempt's send otherwise.
func (c *Caller) chargeFrom() machine.Time {
	if c.IntendedStart != 0 {
		return c.IntendedStart
	}
	return c.started
}

// observeFail charges a failed operation's whole disposition to the
// dedicated failure-outcome histogram (HistName + ".fail"), from the
// intended arrival — shedding must not fake an SLA win by dropping the
// op from the latency record (coordinated omission). Armed runs only,
// so legacy reports are untouched.
func (c *Caller) observeFail() {
	if !c.armed() || c.HistName == "" {
		return
	}
	r := c.Sys.K.Obs
	if r == nil {
		return
	}
	r.Service(c.HistName + ".fail").Observe(uint64(c.Sys.K.Clock.Now() - c.chargeFrom()))
}

// histKind maps a wire op to the checker's operation kind.
func histKind(op Op) check.OpKind {
	if op == OpPut {
		return check.OpPut
	}
	return check.OpGet
}

// histVal is the value a history entry carries: what a put wrote, or
// what a get observed.
func histVal(op KVOp, w *Wire) uint64 {
	if op.Op == OpPut {
		return op.Val
	}
	return w.Val
}

func (c *Caller) advance() {
	c.idx++
	c.attempts = 0
	if c.idx < len(c.Ops) {
		return
	}
	if c.OneShot {
		c.phase = phaseParked
		return
	}
	c.phase = phaseDone
	c.doneRank = 0
}
