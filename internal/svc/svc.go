// Package svc hosts real distributed services that run as workload
// threads on simulated machines: a replicated sharded key/value store
// with epoch-numbered leases, fencing tokens and heartbeat-driven leader
// election (riding the netmsg membership layer), and a cache tier for
// the multi-tier service-graph workload.
//
// The package is the paper's thesis exercised at service granularity:
// every server here is an ordinary continuation-blocked thread — a
// replica waiting for client traffic, a replication ack, or its own
// lease-renewal tick holds no kernel stack — and every cross-machine
// interaction is a mach_msg through the netmsg proxy ports, so crashing
// a shard primary mid-storm stresses exactly the recovery machinery
// (incarnation stamps, stale drops, warm reboot) PR 5 built, plus the
// service-level analogue this package adds: lease fencing, which rejects
// a deposed incarnation's epoch tokens even after the netmsg layer has
// let its packets through.
//
// Everything is deterministic: behavior is driven by the simulated
// clock and arriving messages only, snapshots are sorted before they go
// on the wire, and no map iteration influences execution order — the
// same seed produces byte-identical runs under the sequential and
// parallel cluster drivers.
package svc

// Op is a client-visible KV operation.
type Op int

const (
	OpGet Op = iota
	OpPut
)

func (o Op) String() string {
	if o == OpPut {
		return "put"
	}
	return "get"
}

// MsgKind discriminates the service protocol messages carried in
// ipc.Message bodies (and therefore in netmsg packets).
type MsgKind int

const (
	// MsgClientOp is a client Get/Put aimed at the leader of the key's
	// shard group.
	MsgClientOp MsgKind = iota
	// MsgReply answers a client op: OK with a value, or NotLeader with a
	// leader hint.
	MsgReply
	// MsgReplicate carries one applied write from a leader to its
	// follower, stamped with the leader's epoch (the fencing token).
	MsgReplicate
	// MsgRepOK acknowledges a replicated write; the leader acks the
	// client only after it arrives.
	MsgRepOK
	// MsgRepReject refuses a replicate/renew whose epoch is stale — the
	// fencing rejection that deposes an old leader.
	MsgRepReject
	// MsgRenew is the leader's periodic lease renewal; its arrival also
	// feeds the netmsg membership layer as a piggybacked heartbeat.
	MsgRenew
	// MsgRejoin is a rebooted (or deposed) replica's probe: it presents
	// its durable epoch table and asks for grants plus a state sync.
	MsgRejoin
	// MsgRejoinOK answers with per-group grants/rejections and a sorted
	// snapshot of the store.
	MsgRejoinOK
	// MsgDone tells a replica that one client machine has completed all
	// of its operations; replicas exit when every client machine is done.
	MsgDone
	// MsgCacheReq is a frontend request to the cache tier (read or
	// write-through); MsgCacheReply answers it.
	MsgCacheReq
	MsgCacheReply
)

func (k MsgKind) String() string {
	switch k {
	case MsgClientOp:
		return "client-op"
	case MsgReply:
		return "reply"
	case MsgReplicate:
		return "replicate"
	case MsgRepOK:
		return "rep-ok"
	case MsgRepReject:
		return "rep-reject"
	case MsgRenew:
		return "renew"
	case MsgRejoin:
		return "rejoin"
	case MsgRejoinOK:
		return "rejoin-ok"
	case MsgDone:
		return "done"
	case MsgCacheReq:
		return "cache-req"
	case MsgCacheReply:
		return "cache-reply"
	default:
		return "unknown"
	}
}

// Version orders writes across leader changes: epochs dominate, then
// per-group replication sequence numbers. Applying a write only when its
// version exceeds the stored one makes replication and snapshot install
// idempotent and order-independent (the reliable netmsg protocol
// retransmits but does not guarantee order).
type Version struct {
	Epoch uint64
	Seq   uint64
}

// Less reports strict version order.
func (v Version) Less(o Version) bool {
	if v.Epoch != o.Epoch {
		return v.Epoch < o.Epoch
	}
	return v.Seq < o.Seq
}

// Entry is one stored key/value with the version that wrote it.
type Entry struct {
	Key uint64
	Val uint64
	Ver Version
}

// GroupGrant is one group's verdict in a MsgRejoinOK: either a grant
// (the rejoiner's durable leadership resumes under a bumped epoch) or a
// fencing rejection (an election superseded it; the current epoch and
// leader are returned so the rejoiner can fall in line).
type GroupGrant struct {
	Group    int
	Epoch    uint64
	Leader   int
	Rejected bool
}

// Wire is the one message body every service exchange uses. It is
// immutable once sent: slices are built fresh for each transmission and
// never retained by the sender nor mutated by the receiver, which keeps
// the parallel cluster driver race-free.
type Wire struct {
	Kind  MsgKind
	From  int    // sender's replica rank (replica traffic)
	OpID  uint32 // client op id, echoed in replies
	Group int
	Shard int

	Op       Op
	Key, Val uint64
	Found    bool

	// Epoch is the fencing token on replicate/renew/rejoin traffic and
	// the current-epoch hint on rejections; Seq the replication sequence.
	Epoch uint64
	Seq   uint64

	// Leader is the responder's leader hint (replica rank).
	Leader int
	// NotLeader marks a MsgReply refusing a client op.
	NotLeader bool

	// Expired and Rejected type a refused reply (overload control): the
	// tier shed the op before applying anything — Expired because its
	// absolute deadline had already passed on dequeue, Rejected because
	// admission was refused (CoDel sojourn over target). Both are
	// definite no-ops, which is what lets the client record them as
	// such for the linearizability checker.
	Expired  bool
	Rejected bool

	// Epochs/Leaders are the rejoiner's durable lease view (MsgRejoin);
	// Grants/Snap/Seqs answer it (MsgRejoinOK). Seqs carries the
	// per-group replication sequence high-water so a re-granted leader
	// continues numbering above every write it may have missed.
	Epochs  []uint64
	Leaders []int
	Grants  []GroupGrant
	Snap    []Entry
	Seqs    []uint64
}
