package svc

import "testing"

func newTable(t *testing.T) *LeaseTable {
	t.Helper()
	return NewLeaseTable(NewShardMap(0, 0))
}

func TestLeaseTableBoot(t *testing.T) {
	lt := newTable(t)
	if len(lt.L) != DefaultGroups {
		t.Fatalf("groups = %d, want %d", len(lt.L), DefaultGroups)
	}
	for g, l := range lt.L {
		if l.Epoch != 1 {
			t.Fatalf("group %d boots at epoch %d, want 1", g, l.Epoch)
		}
		if l.Leader != g%NumRanks {
			t.Fatalf("group %d boot leader %d, want %d", g, l.Leader, g%NumRanks)
		}
	}
}

func TestStaleAndPromote(t *testing.T) {
	lt := newTable(t)
	if lt.Stale(0, 1) {
		t.Fatal("current epoch must not be stale")
	}
	if got := lt.Promote(0, 1); got != 2 {
		t.Fatalf("Promote returned epoch %d, want 2", got)
	}
	if lt.L[0].Leader != 1 {
		t.Fatalf("leader after Promote = %d, want 1", lt.L[0].Leader)
	}
	if !lt.Stale(0, 1) {
		t.Fatal("the deposed epoch must be stale after the promotion")
	}
	if lt.Stale(0, 2) || lt.Stale(0, 3) {
		t.Fatal("current and future epochs must not be stale")
	}
}

func TestAdopt(t *testing.T) {
	lt := newTable(t)
	if lt.Adopt(0, 0, 1) {
		t.Fatal("adopting an older epoch must be refused")
	}
	if lt.Adopt(0, 1, 0) {
		t.Fatal("re-adopting the identical lease must report no change")
	}
	if !lt.Adopt(0, 1, 1) || lt.L[0].Leader != 1 || lt.L[0].Epoch != 1 {
		t.Fatalf("equal-epoch leader relearn failed: %+v", lt.L[0])
	}
	if !lt.Adopt(0, 5, 0) || lt.L[0].Epoch != 5 || lt.L[0].Leader != 0 {
		t.Fatalf("newer lease not installed: %+v", lt.L[0])
	}
}

// TestDecideRejoinFencesDisplacedClaim is the acceptance property: a
// rebooted primary presenting its pre-crash lease view must be rejected
// for the group an election moved away from it while it was down.
func TestDecideRejoinFencesDisplacedClaim(t *testing.T) {
	lt := newTable(t) // group 0 led by rank 0, group 1 by rank 1
	// Rank 1 elected itself over group 0 while rank 0 was down.
	lt.Promote(0, 1)

	// Rank 0 rejoins presenting its durable (stale) view.
	grants := DecideRejoin(lt, 1, 0, []uint64{1, 1}, []int{0, 1})
	if len(grants) != DefaultGroups {
		t.Fatalf("got %d grants, want %d", len(grants), DefaultGroups)
	}
	g0 := grants[0]
	if !g0.Rejected {
		t.Fatal("displaced claim on group 0 was not fenced")
	}
	if g0.Epoch != 2 || g0.Leader != 1 {
		t.Fatalf("rejection must teach the current lease, got epoch %d leader %d", g0.Epoch, g0.Leader)
	}
	// Group 1: rank 0 never claimed it — plain follower sync, no bump.
	g1 := grants[1]
	if g1.Rejected || g1.Epoch != 1 || g1.Leader != 1 {
		t.Fatalf("group 1 should be a follower sync of the current lease, got %+v", g1)
	}
}

// TestDecideRejoinGrantsBack covers the short-outage path: no election
// displaced the rejoiner, so its leadership resumes under a bumped epoch
// that fences the dead incarnation's traffic.
func TestDecideRejoinGrantsBack(t *testing.T) {
	lt := newTable(t)
	grants := DecideRejoin(lt, 1, 0, []uint64{1, 1}, []int{0, 1})
	g0 := grants[0]
	if g0.Rejected {
		t.Fatal("undisplaced claim must be granted back")
	}
	if g0.Leader != 0 {
		t.Fatalf("grant-back leader %d, want the rejoiner 0", g0.Leader)
	}
	if g0.Epoch != 2 {
		t.Fatalf("grant-back epoch %d, want a bump above every epoch in play", g0.Epoch)
	}
	if lt.L[0] != (Lease{Epoch: 2, Leader: 0}) {
		t.Fatalf("granted lease not installed locally: %+v", lt.L[0])
	}
}

// TestDecideRejoinSurvivorTakeover covers abdication: the rejoiner's
// durable view no longer claims a group the survivor still records it
// leading, so the survivor takes over rather than leave it headless.
func TestDecideRejoinSurvivorTakeover(t *testing.T) {
	lt := newTable(t)
	// Rejoiner (rank 0) presents a view where rank 1 leads group 0 too.
	grants := DecideRejoin(lt, 1, 0, []uint64{1, 1}, []int{1, 1})
	g0 := grants[0]
	if g0.Rejected || g0.Leader != 1 {
		t.Fatalf("survivor should take over group 0, got %+v", g0)
	}
	if g0.Epoch != 2 {
		t.Fatalf("takeover epoch %d, want 2", g0.Epoch)
	}
	if lt.L[0] != (Lease{Epoch: 2, Leader: 1}) {
		t.Fatalf("takeover not installed: %+v", lt.L[0])
	}
}

func TestVersionLess(t *testing.T) {
	cases := []struct {
		a, b Version
		want bool
	}{
		{Version{1, 5}, Version{2, 1}, true},
		{Version{2, 1}, Version{1, 5}, false},
		{Version{1, 1}, Version{1, 2}, true},
		{Version{1, 2}, Version{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Fatalf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestShardMap(t *testing.T) {
	m := NewShardMap(0, 0)
	if m.Shards != DefaultShards || m.Groups != DefaultGroups {
		t.Fatalf("defaults not applied: %+v", m)
	}
	if c := NewShardMap(4, 9); c.Groups != 4 {
		t.Fatalf("groups must clamp to shards, got %+v", c)
	}
	seen := make(map[int]bool)
	for k := uint64(0); k < 256; k++ {
		s := m.ShardOf(k)
		if s < 0 || s >= m.Shards {
			t.Fatalf("ShardOf(%d) = %d out of range", k, s)
		}
		if s2 := m.ShardOf(k); s2 != s {
			t.Fatalf("ShardOf(%d) not deterministic: %d vs %d", k, s, s2)
		}
		g := m.GroupOfKey(k)
		if g != m.GroupOf(s) {
			t.Fatalf("GroupOfKey(%d) = %d, want GroupOf(%d) = %d", k, g, s, m.GroupOf(s))
		}
		seen[g] = true
	}
	if len(seen) != m.Groups {
		t.Fatalf("256 keys covered %d of %d groups", len(seen), m.Groups)
	}
	for g := 0; g < m.Groups; g++ {
		l := m.InitialLeader(g)
		if l < 0 || l >= NumRanks {
			t.Fatalf("InitialLeader(%d) = %d out of range", g, l)
		}
	}
}
