package svc

// Lease is one group's current lease: the epoch is the fencing token —
// every replicate/renew carries its sender's epoch, and a receiver holding
// a higher one refuses the request, which is what makes a deposed
// primary's writes harmless no matter how late its packets arrive.
type Lease struct {
	Epoch  uint64
	Leader int
}

// LeaseTable is the per-group lease state. It models the durable lease
// metadata a real deployment would fsync: the table lives in the replica's
// install-time configuration, not in the per-incarnation Replica object,
// so a warm reboot comes back remembering the epochs it had granted and
// held — which is exactly what forces the rejoin handshake to fence it.
type LeaseTable struct {
	L []Lease
}

// NewLeaseTable starts every group at epoch 1 under its boot-time leader.
func NewLeaseTable(m ShardMap) *LeaseTable {
	t := &LeaseTable{L: make([]Lease, m.Groups)}
	for g := range t.L {
		t.L[g] = Lease{Epoch: 1, Leader: m.InitialLeader(g)}
	}
	return t
}

// Epochs snapshots the epoch column (a rejoin probe's payload).
func (t *LeaseTable) Epochs() []uint64 {
	out := make([]uint64, len(t.L))
	for g, l := range t.L {
		out[g] = l.Epoch
	}
	return out
}

// Stale reports whether a presented epoch token is older than the
// group's current lease — the fencing predicate.
func (t *LeaseTable) Stale(g int, epoch uint64) bool {
	return epoch < t.L[g].Epoch
}

// Promote is a self-election: bump the group's epoch and take leadership.
// Returns the new epoch.
func (t *LeaseTable) Promote(g, rank int) uint64 {
	t.L[g].Epoch++
	t.L[g].Leader = rank
	return t.L[g].Epoch
}

// Adopt installs a lease observed on the wire when it is at least as new
// as the local one, returning whether anything changed. An equal epoch
// only updates the leader (idempotent re-learn); an older one is ignored
// — callers fence those separately.
func (t *LeaseTable) Adopt(g int, epoch uint64, leader int) bool {
	l := &t.L[g]
	if epoch < l.Epoch || (epoch == l.Epoch && l.Leader == leader) {
		return false
	}
	l.Epoch = epoch
	l.Leader = leader
	return true
}

// DecideRejoin serves a rejoin probe at the surviving replica: the
// rejoiner `from` presents its durable lease view (epochs, leaders) and
// asks, per group, either to resume the leadership it durably holds or
// to be told who won. The verdicts also mutate t — granted leases are
// installed locally so both replicas agree the moment the reply is sent.
//
// Per group the outcome is one of:
//   - Rejected: the rejoiner durably claims leadership but my lease is
//     newer (an election superseded it while it was down) — a fencing
//     rejection carrying the current epoch and leader to fall in line
//     with.
//   - Grant back: the claim stands — no election displaced it (the
//     outage was shorter than the membership deadline) or the rejoiner's
//     durable epoch is the newest either side has seen. Leadership
//     resumes under a bumped epoch so any traffic from the dead
//     incarnation is fenced by everyone.
//   - Sync: the rejoiner claims nothing (it was the follower) — the
//     reply just restates the current lease for it to adopt.
func DecideRejoin(t *LeaseTable, myRank, from int, epochs []uint64, leaders []int) []GroupGrant {
	out := make([]GroupGrant, 0, len(t.L))
	for g := range t.L {
		var presented uint64
		if g < len(epochs) {
			presented = epochs[g]
		}
		claims := g < len(leaders) && leaders[g] == from
		cur := t.L[g]
		switch {
		case claims && cur.Leader != from && presented < cur.Epoch:
			// A newer lease displaced the claim: fence it.
			out = append(out, GroupGrant{Group: g, Epoch: cur.Epoch, Leader: cur.Leader, Rejected: true})
		case claims:
			// The claim stands: re-grant above every epoch in play.
			e := cur.Epoch
			if presented > e {
				e = presented
			}
			e++
			t.L[g] = Lease{Epoch: e, Leader: from}
			out = append(out, GroupGrant{Group: g, Epoch: e, Leader: from})
		case cur.Leader == from:
			// The rejoiner abdicated (it no longer claims the group I
			// still record it leading): take over rather than leave the
			// group headless.
			e := cur.Epoch
			if presented > e {
				e = presented
			}
			e++
			t.L[g] = Lease{Epoch: e, Leader: myRank}
			out = append(out, GroupGrant{Group: g, Epoch: e, Leader: myRank})
		default:
			// Follower sync: restate the current lease.
			out = append(out, GroupGrant{Group: g, Epoch: cur.Epoch, Leader: cur.Leader})
		}
	}
	return out
}
