package svc

import (
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overload"
)

// PortName is the wire name every replica exports its service port
// under, on every link.
const PortName = "kv"

// ReplyOpBit marks a reply's OpID (the server sets opid|ReplyOpBit), the
// same convention the echo workloads use.
const ReplyOpBit = 0x8000

// DefaultRenewEvery is the lease renewal period and the replica's idle
// tick: comfortably under the membership deadline (so a live leader is
// never spuriously deposed) and above the wire RTT (so renewals are
// cheap).
const DefaultRenewEvery = machine.Duration(4 * 1000 * 1000) // 4 ms

// drainTimeout is the receive bound used while more outbound messages
// are queued: long enough to take any already-delivered message, short
// enough that a burst (snapshot reply plus acks) drains promptly.
const drainTimeout = machine.Duration(50 * 1000) // 50 us

// ReplicaStats counts service-level events across a replica's whole
// lifetime. The struct is referenced from ReplicaConfig, so like the
// lease table it survives crashes — reports span incarnations.
type ReplicaStats struct {
	Elections         uint64 // self-promotions after the leader went silent
	FencingRejections uint64 // stale-epoch requests refused
	Deposed           uint64 // times this replica learned it was fenced
	SoloAcks          uint64 // writes acked without a live backup
	Syncs             uint64 // rejoin state transfers installed
	RejoinsServed     uint64 // rejoin probes answered
	Merged            uint64 // entries installed from rejoin-probe snapshots
	Stalled           uint64 // client ops dropped while deposed-dirty
	Gets              uint64 // client reads served as leader
	Puts              uint64 // client writes applied as leader
	Replicated        uint64 // follower writes applied from the leader
}

// AckKey identifies one (group, epoch) pair under which client writes
// were acknowledged — the unit of the split-brain assertion: two ranks
// both acking writes under the same key is a fencing failure. It is the
// checker's own type so the post-run intersection needs no conversion.
type AckKey = check.AckKey

// ReplicaConfig is the durable half of a replica: everything here
// survives a machine crash (it models fsynced metadata plus static
// configuration), while the Replica object itself is per-incarnation
// volatile state rebuilt by InstallReplica on every warm reboot.
type ReplicaConfig struct {
	// Rank is this replica's identity (0 or 1); PeerRank the other.
	Rank, PeerRank int
	Map            ShardMap
	// Leases is the durable lease table; shared with nothing — each
	// replica has its own copy, reconciled through the wire protocol.
	Leases *LeaseTable
	// PeerLink indexes the machine's link to the other replica.
	PeerLink int
	// Clients is the number of client threads that will each report done.
	Clients int
	// RenewEvery overrides the renewal/tick period when nonzero.
	RenewEvery machine.Duration
	// IdleExit bounds how long the replica keeps ticking with no real
	// traffic before giving up and quiescing (DefaultIdleExit if zero) —
	// the escape hatch that lets a cluster whose clients died without
	// reboot still reach the drivers' quiescence condition.
	IdleExit machine.Duration
	// QueueLimit sizes the service port's message queue (default 64).
	QueueLimit int
	Stats      *ReplicaStats

	// Overload arms the replica-tier overload controls when Enabled:
	// the deadline check and the CoDel admission controller run on
	// every dequeued client op, shedding dead or inadmissible work with
	// a cheap typed reply before any apply or replication. Ov is the
	// shedding scoreboard (durable, like Stats). Replication traffic is
	// never shed: an accepted write always finishes replicating.
	Overload overload.Policy
	Ov       *overload.Stats

	// BreakOverload deliberately services an already-expired write
	// (applying it to the store) while still telling the client it was
	// shed — the negative control proving the linearizability checker
	// catches a tier that applies work it claimed to drop. Never set
	// outside tests and machsim -breakoverload.
	BreakOverload bool

	// AckLog records every (group, epoch) this rank acknowledged a client
	// write under. Durable (it models the fsynced commit record), so the
	// split-brain checker can intersect both ranks' logs after the run:
	// a pair present in both is two primaries acking under one lease.
	AckLog map[AckKey]uint64

	// Break deliberately disables the partition-heal safety protocol —
	// the rejoin snapshot merge and the deposed-dirty client stall — so
	// acked writes can be lost across a heal. It exists to prove the
	// linearizability checker can fail: a build with Break set must be
	// flagged. Never set outside tests and machsim -breakkv.
	Break bool

	// done/doneLeft track which client threads have reported completion.
	// Durable: a replica that crashes after acknowledging a done must
	// still count it, because the exited client will never resend.
	done     []bool
	doneLeft int
	boots    int
}

// renewEvery resolves the tick period.
func (c *ReplicaConfig) renewEvery() machine.Duration {
	if c.RenewEvery > 0 {
		return c.RenewEvery
	}
	return DefaultRenewEvery
}

// DefaultIdleExit is the no-traffic give-up horizon: far beyond any gap
// a crash/reboot/rejoin sequence produces in a healthy run, so it only
// fires when the workload's clients are truly gone.
const DefaultIdleExit = machine.Duration(250 * 1000 * 1000) // 250 ms

func (c *ReplicaConfig) idleExit() machine.Duration {
	if c.IdleExit > 0 {
		return c.IdleExit
	}
	return DefaultIdleExit
}

// pendingRep is one client write applied locally and awaiting the
// backup's acknowledgement before the client is answered.
type pendingRep struct {
	group int
	seq   uint64
	epoch uint64 // lease epoch at accept time, for the ack log
	opid  uint32
	reply *ipc.Port
	at    machine.Time
	// trace is the client operation's causal context. Carried here
	// explicitly: the replica thread serves other messages between
	// accepting the write and hearing the ack, so the thread-level
	// context is long gone by then.
	trace obs.TraceContext
}

// outbound is one queued protocol message; the replica drains the queue
// one send per dispatch, each combined with a receive so the thread
// keeps servicing its port.
type outbound struct {
	to   *ipc.Port
	opid uint32
	w    *Wire
	// trace stamps the send (zero for untraced control traffic); at is
	// when the work this message answers arrived, so the dwell between
	// handling and transmission is recorded as a service span.
	trace obs.TraceContext
	at    machine.Time
}

// Replica is the per-incarnation server program: one thread per server
// machine, receiving every protocol message on the exported service port
// with a renewal-period timeout, so elections, renewals and rejoin
// probes all ride the same continuation-blocked receive loop.
type Replica struct {
	sys  *kern.System
	cfg  *ReplicaConfig
	port *ipc.Port

	store      []map[uint64]Entry // per shard, version-checked apply
	seq        []uint64           // per group replication high-water
	pending    []pendingRep
	out        []outbound
	recovering bool
	// deposedDirty marks the window between learning I was fenced and the
	// peer's MsgRejoinOK confirming my solo-acked writes were merged. While
	// set, client ops are silently dropped instead of redirected: a client
	// sent to the new leader before the merge lands could read a value
	// older than one I already acknowledged.
	deposedDirty bool
	lastRenew    machine.Time
	lastRejoin   machine.Time
	lastActivity machine.Time

	// codel is the admission controller over the service port's queue
	// sojourn. Per-incarnation volatile state: a rebooted replica
	// starts with an empty queue, so it starts with a fresh controller.
	codel overload.CoDel

	sendAct core.Action
	recvAct core.Action
}

// InstallReplica boots the replica service on a machine: a fresh
// volatile Replica over the durable cfg, its port exported on every
// link. Registered through kern.RegisterService it runs again on each
// warm reboot; from the second boot on the replica starts in recovery,
// probing its peer before trusting its own durable lease view.
func InstallReplica(s *kern.System, cfg *ReplicaConfig) {
	cfg.boots++
	if cfg.Stats == nil {
		cfg.Stats = &ReplicaStats{}
	}
	if cfg.Leases == nil {
		cfg.Leases = NewLeaseTable(cfg.Map)
	}
	if cfg.AckLog == nil {
		cfg.AckLog = make(map[AckKey]uint64)
	}
	if cfg.Ov == nil {
		cfg.Ov = &overload.Stats{}
	}
	if cfg.done == nil {
		cfg.done = make([]bool, cfg.Clients)
		cfg.doneLeft = cfg.Clients
	}
	r := &Replica{
		sys:          s,
		cfg:          cfg,
		store:        make([]map[uint64]Entry, cfg.Map.Shards),
		seq:          make([]uint64, cfg.Map.Groups),
		recovering:   cfg.boots > 1,
		lastActivity: s.K.Clock.Now(),
		codel:        overload.CoDel{Target: cfg.Overload.Target, Interval: cfg.Overload.Interval},
	}
	for i := range r.store {
		r.store[i] = make(map[uint64]Entry)
	}
	task := s.NewTask("kv-replica")
	r.port = s.IPC.NewPort(PortName)
	r.port.QueueLimit = cfg.QueueLimit
	if r.port.QueueLimit <= 0 {
		r.port.QueueLimit = 64
	}
	for _, n := range s.Links {
		n.Export(PortName, r.port)
	}
	s.Start(task.NewThread("replica", r, 20))
}

// peerLink is the replication link's membership view.
func (r *Replica) peerLink() lnk { return r.sys.Links[r.cfg.PeerLink] }

// lnk is the slice of the netmsg API the replica consults.
type lnk interface {
	PeerAlive() bool
	ProxyFor(string) *ipc.Port
}

// push queues one outbound message.
func (r *Replica) push(to *ipc.Port, opid uint32, w *Wire) {
	r.out = append(r.out, outbound{to: to, opid: opid, w: w})
}

// pushT is push carrying a causal-trace context: the send is stamped
// with ctx and the dwell since at becomes a service span.
func (r *Replica) pushT(to *ipc.Port, opid uint32, w *Wire, ctx obs.TraceContext, at machine.Time) {
	r.out = append(r.out, outbound{to: to, opid: opid, w: w, trace: ctx, at: at})
}

// pushPeer queues a message to the other replica. Liveness-bearing
// control traffic (renewals and rejoin probes) jumps to the front of
// the out queue: the peer's membership layer reads any arrival as a
// heartbeat, so a renewal parked behind a long data backlog on a slow
// machine would let the silence deadline expire and trigger a false
// election. Reordering control ahead of data is safe — renewals carry
// only the current lease, rejoins only the durable view, and data
// messages keep FIFO order among themselves.
func (r *Replica) pushPeer(w *Wire) {
	w.From = r.cfg.Rank
	o := outbound{to: r.peerLink().ProxyFor(PortName), w: w}
	if w.Kind == MsgRenew || w.Kind == MsgRejoin {
		r.out = append(r.out, outbound{})
		copy(r.out[1:], r.out)
		r.out[0] = o
		return
	}
	r.out = append(r.out, o)
}

// pushPeerT is pushPeer for traced data messages (replicates and their
// acks); control traffic never carries a context, so the jump-the-queue
// path stays in pushPeer.
func (r *Replica) pushPeerT(w *Wire, ctx obs.TraceContext, at machine.Time) {
	w.From = r.cfg.Rank
	r.out = append(r.out, outbound{to: r.peerLink().ProxyFor(PortName), w: w,
		trace: ctx, at: at})
}

// wireBytes prices a Wire for the simulated copy/transfer costs.
func wireBytes(w *Wire) int {
	n := 160 + 8*(len(w.Epochs)+len(w.Seqs)+len(w.Leaders)) +
		16*len(w.Grants) + 24*len(w.Snap)
	if n < ipc.HeaderBytes {
		n = ipc.HeaderBytes
	}
	return n
}

func (r *Replica) Next(e *core.Env, t *core.Thread) core.Action {
	if r.recvAct.Invoke == nil {
		r.recvAct = core.Syscall("mach_msg(svc-recv)", func(e *core.Env) {
			r.sys.IPC.MachMsg(e, ipc.MsgOptions{
				ReceiveFrom: r.port, RcvTimeout: r.cfg.renewEvery(),
			})
		})
		r.sendAct = core.Syscall("mach_msg(svc-send)", func(e *core.Env) {
			o := r.out[0]
			r.out = r.out[:copy(r.out, r.out[1:])]
			timeout := r.cfg.renewEvery()
			if len(r.out) > 0 {
				timeout = drainTimeout
			}
			if rec := r.sys.K.Obs; rec != nil && o.trace.Sampled() {
				// Dwell between handling the triggering message and this
				// transmission: the replica's service time for it.
				rec.RecordSpan(obs.Span{
					Trace: o.trace.Trace, ID: rec.NextSpanID(o.trace.Trace),
					Parent: o.trace.Span, Name: "kv.serve",
					Seg: obs.SegService, TID: e.Cur().ID,
					Start: o.at, End: r.sys.K.Clock.Now(),
				})
			}
			msg := r.sys.IPC.NewMessage(o.opid, wireBytes(o.w), o.w, nil)
			// Stamp message and thread both ways: a traced send carries
			// its context, an untraced one must not inherit whatever the
			// thread last received.
			msg.Trace = o.trace
			e.Cur().Trace = o.trace
			r.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: msg, SendTo: o.to,
				ReceiveFrom: r.port, RcvTimeout: timeout,
			})
		})
	}
	if m := r.sys.IPC.Received(t); m != nil {
		r.handle(t, m)
	}
	r.tick(t)
	if len(r.pending) == 0 && len(r.out) == 0 {
		if r.cfg.doneLeft == 0 {
			// Every client thread reported completion and nothing is owed
			// to anyone: quiesce so the cluster run can end.
			return core.Exit()
		}
		if r.sys.K.Clock.Now()-r.lastActivity >= r.cfg.idleExit() {
			// No real traffic for the whole idle horizon: the remaining
			// clients are gone for good. Give up rather than tick forever
			// — the drivers' quiescence condition needs every thread to
			// stop eventually.
			return core.Exit()
		}
	}
	if len(r.out) > 0 {
		return r.sendAct
	}
	return r.recvAct
}

// tick runs the clock-driven duties: elections, lease renewals, solo
// acknowledgements, and rejoin probing. All timing reads the simulated
// clock, so sequential and parallel drivers agree exactly.
func (r *Replica) tick(t *core.Thread) {
	now := r.sys.K.Clock.Now()
	leases, stats := r.cfg.Leases, r.cfg.Stats
	peerUp := r.peerLink().PeerAlive()

	if !peerUp && !r.recovering && r.cfg.doneLeft > 0 {
		// Election: promote myself over every group the silent peer led.
		// The membership layer's deadline (DeadAfter of silence) is the
		// lease expiry; the epoch bump is the new fencing token.
		for g := range leases.L {
			if leases.L[g].Leader != r.cfg.PeerRank {
				continue
			}
			ep := leases.Promote(g, r.cfg.Rank)
			stats.Elections++
			if rec := r.sys.K.Obs; rec != nil {
				rec.EmitArg(obs.Election, t.ID, t.Name, "",
					fmt.Sprintf("group %d", g), int(ep))
			}
		}
	}
	if !peerUp && len(r.pending) > 0 {
		// Writes in flight to the dead backup will never be acked: answer
		// their clients directly. New writes solo-ack at accept time until
		// the peer rejoins.
		r.ackPendingSolo(now)
	}

	if !r.recovering && peerUp && r.cfg.doneLeft > 0 && now-r.lastRenew >= r.cfg.renewEvery() {
		r.lastRenew = now
		for g := range leases.L {
			if leases.L[g].Leader != r.cfg.Rank {
				continue
			}
			r.pushPeer(&Wire{Kind: MsgRenew, Group: g,
				Epoch: leases.L[g].Epoch, Leader: r.cfg.Rank})
		}
	}

	// Rejoin probes flow even while the peer is presumed dead: after a
	// partition heals with every retransmit exhausted, nothing else moves
	// on the replica link, so the probe itself must be the traffic whose
	// arrival flips the peer's membership view back to alive. The probe
	// carries this side's store so the peer can merge writes solo-acked
	// under the old lease (empty on a fresh incarnation — crash recovery
	// keeps its pure snapshot-pull shape).
	if r.recovering && (r.lastRejoin == 0 || now-r.lastRejoin >= 2*r.cfg.renewEvery()) {
		r.lastRejoin = now
		leaders := make([]int, len(leases.L))
		for g := range leases.L {
			leaders[g] = leases.L[g].Leader
		}
		r.pushPeer(&Wire{Kind: MsgRejoin, Epochs: leases.Epochs(), Leaders: leaders,
			Snap: r.snapshot(), Seqs: append([]uint64(nil), r.seq...)})
	}
}

// recordAck notes a client-write acknowledgement under (group, epoch) in
// the durable ack log — the split-brain checker's evidence.
func (r *Replica) recordAck(g int, epoch uint64) {
	r.cfg.AckLog[AckKey{Group: g, Epoch: epoch}]++
}

// bouncePending answers every pending write of group g with a redirect —
// used when leadership of g was adopted away without an explicit fencing
// reject (a renewal or rejoin grant taught us a newer lease), where the
// backup's MsgRepOK will never come and the clients would hang forever.
func (r *Replica) bouncePending(g, leader int) {
	kept := r.pending[:0]
	for _, p := range r.pending {
		if p.group != g {
			kept = append(kept, p)
			continue
		}
		r.push(p.reply, p.opid|ReplyOpBit, &Wire{Kind: MsgReply, OpID: p.opid,
			NotLeader: true, Leader: leader})
	}
	r.pending = kept
}

// ackPendingSolo answers every waiting client directly — the backup is
// gone, so sync replication degrades to solo writes rather than hanging
// the clients.
func (r *Replica) ackPendingSolo(now machine.Time) {
	for _, p := range r.pending {
		r.cfg.Stats.SoloAcks++
		r.recordAck(p.group, p.epoch)
		r.observeRep(now, p.at)
		r.push(p.reply, p.opid|ReplyOpBit, &Wire{Kind: MsgReply, OpID: p.opid, Found: true})
	}
	r.pending = r.pending[:0]
}

// observeRep records one write's accept-to-ack latency in the
// "kv.replicate" service histogram.
func (r *Replica) observeRep(now, at machine.Time) {
	if rec := r.sys.K.Obs; rec != nil {
		rec.Service("kv.replicate").Observe(uint64(now - at))
	}
}

// handle dispatches one received protocol message.
func (r *Replica) handle(t *core.Thread, m *ipc.Message) {
	w, ok := m.Body.(*Wire)
	reply := m.Reply
	ctx := m.Trace
	deadline, enq := m.Deadline, m.EnqueuedAt
	r.sys.IPC.FreeMessage(m)
	if !ok {
		return
	}
	leases, stats := r.cfg.Leases, r.cfg.Stats
	now := r.sys.K.Clock.Now()
	if w.Kind != MsgRenew {
		// Renewals flow between two live replicas forever; everything
		// else is evidence the workload is still making progress.
		r.lastActivity = now
	}
	switch w.Kind {
	case MsgClientOp:
		if r.shedClientOp(w, reply, now, deadline, enq, ctx) {
			return
		}
		r.clientOp(w, reply, now, ctx)

	case MsgReplicate:
		g := w.Group
		if leases.Stale(g, w.Epoch) {
			// Fencing: a deposed leader's write. Refuse it and teach the
			// sender the current lease.
			stats.FencingRejections++
			if rec := r.sys.K.Obs; rec != nil {
				rec.EmitArg(obs.Fencing, t.ID, t.Name, "",
					fmt.Sprintf("group %d replicate", g), int(w.Epoch))
			}
			r.pushPeer(&Wire{Kind: MsgRepReject, Group: g,
				Epoch: leases.L[g].Epoch, Leader: leases.L[g].Leader})
			return
		}
		leases.Adopt(g, w.Epoch, w.From)
		r.apply(w.Shard, w.Key, w.Val, Version{Epoch: w.Epoch, Seq: w.Seq})
		if w.Seq > r.seq[g] {
			r.seq[g] = w.Seq
		}
		stats.Replicated++
		r.pushPeerT(&Wire{Kind: MsgRepOK, Group: g, Seq: w.Seq}, ctx, now)

	case MsgRepOK:
		for i, p := range r.pending {
			if p.group != w.Group || p.seq != w.Seq {
				continue
			}
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			r.recordAck(p.group, p.epoch)
			r.observeRep(now, p.at)
			if rec := r.sys.K.Obs; rec != nil && p.trace.Sampled() {
				// The replication round: accept to backup ack, the same
				// interval the kv.replicate histogram observed.
				rec.RecordSpan(obs.Span{
					Trace: p.trace.Trace, ID: rec.NextSpanID(p.trace.Trace),
					Parent: p.trace.Span, Name: "kv.replicate",
					Seg: obs.SegService, TID: t.ID,
					Start: p.at, End: now,
				})
			}
			r.pushT(p.reply, p.opid|ReplyOpBit, &Wire{Kind: MsgReply, OpID: p.opid, Found: true}, p.trace, now)
			break
		}

	case MsgRepReject:
		// I have been fenced: a newer lease exists. Fall in line, bounce
		// my waiting clients to the real leader, and resync. Until the
		// rejoin round-trip confirms my solo-acked writes reached the new
		// leader, client ops stall rather than redirect (deposedDirty).
		stats.Deposed++
		leases.Adopt(w.Group, w.Epoch, w.Leader)
		for _, p := range r.pending {
			r.push(p.reply, p.opid|ReplyOpBit, &Wire{Kind: MsgReply, OpID: p.opid,
				NotLeader: true, Leader: w.Leader})
		}
		r.pending = r.pending[:0]
		r.recovering = true
		if !r.cfg.Break {
			r.deposedDirty = true
		}
		r.lastRejoin = 0

	case MsgRenew:
		g := w.Group
		if leases.Stale(g, w.Epoch) {
			stats.FencingRejections++
			if rec := r.sys.K.Obs; rec != nil {
				rec.EmitArg(obs.Fencing, t.ID, t.Name, "",
					fmt.Sprintf("group %d renew", g), int(w.Epoch))
			}
			r.pushPeer(&Wire{Kind: MsgRepReject, Group: g,
				Epoch: leases.L[g].Epoch, Leader: leases.L[g].Leader})
			return
		}
		leases.Adopt(g, w.Epoch, w.Leader)
		if leases.L[g].Leader != r.cfg.Rank {
			// Leadership moved away without an explicit fencing reject
			// (asymmetric link: my replicates never arrive, the peer's
			// renewals do). Waiting writes would hang forever on a RepOK
			// that cannot come — redirect their clients.
			r.bouncePending(g, leases.L[g].Leader)
		}

	case MsgRejoin:
		grants := DecideRejoin(leases, r.cfg.Rank, w.From, w.Epochs, w.Leaders)
		for _, gr := range grants {
			if !gr.Rejected {
				continue
			}
			stats.FencingRejections++
			if rec := r.sys.K.Obs; rec != nil {
				var presented uint64
				if gr.Group < len(w.Epochs) {
					presented = w.Epochs[gr.Group]
				}
				rec.EmitArg(obs.Fencing, t.ID, t.Name, "",
					fmt.Sprintf("group %d rejoin", gr.Group), int(presented))
			}
		}
		stats.RejoinsServed++
		if !r.cfg.Break {
			// Merge the prober's store: writes it solo-acked under its old
			// lease that I never saw. The version-checked apply keeps my
			// newer writes; Break skips this, which is the deliberate
			// acked-write-loss the linearizability checker must flag.
			for g, s := range w.Seqs {
				if g < len(r.seq) && s > r.seq[g] {
					r.seq[g] = s
				}
			}
			for _, ent := range w.Snap {
				stats.Merged++
				r.apply(r.cfg.Map.ShardOf(ent.Key), ent.Key, ent.Val, ent.Ver)
			}
		}
		r.pushPeer(&Wire{Kind: MsgRejoinOK, Grants: grants,
			Snap: r.snapshot(), Seqs: append([]uint64(nil), r.seq...)})

	case MsgRejoinOK:
		for _, gr := range w.Grants {
			leases.Adopt(gr.Group, gr.Epoch, gr.Leader)
			if leases.L[gr.Group].Leader != r.cfg.Rank {
				r.bouncePending(gr.Group, leases.L[gr.Group].Leader)
			}
		}
		if !r.cfg.Break {
			// The leader's store, pulled on rejoin. Break skips this
			// direction too: in a symmetric depose each side's RejoinOK
			// would otherwise carry the other's solo-acked writes and
			// quietly repair the loss the knob exists to demonstrate.
			for g, s := range w.Seqs {
				if g < len(r.seq) && s > r.seq[g] {
					r.seq[g] = s
				}
			}
			for _, ent := range w.Snap {
				r.apply(r.cfg.Map.ShardOf(ent.Key), ent.Key, ent.Val, ent.Ver)
			}
		}
		if r.recovering {
			r.recovering = false
			stats.Syncs++
		}
		// The peer has merged my snapshot (it answered the probe that
		// carried it): redirecting clients is safe again.
		r.deposedDirty = false

	case MsgDone:
		// From carries the reporting client thread's global index here.
		idx := w.From
		if idx >= 0 && idx < len(r.cfg.done) && !r.cfg.done[idx] {
			r.cfg.done[idx] = true
			r.cfg.doneLeft--
		}
		if reply != nil {
			r.push(reply, w.OpID|ReplyOpBit, &Wire{Kind: MsgReply, OpID: w.OpID, Found: true})
		}
	}
}

// shedClientOp runs the overload gates on a dequeued client op:
// already-dead work is dropped as Expired (the client timed out long
// ago; servicing it is pure waste), and the CoDel controller rejects
// admissions whose queue sojourn stayed over target for a full
// interval. Reports true when the op was shed — a typed reply is
// queued, nothing was applied, nothing replicated.
func (r *Replica) shedClientOp(w *Wire, reply *ipc.Port, now machine.Time, deadline, enq machine.Time, ctx obs.TraceContext) bool {
	if !r.cfg.Overload.Enabled {
		return false
	}
	if deadline != 0 && now >= deadline {
		if r.cfg.BreakOverload && w.Op == OpPut {
			// The deliberate bug: apply the write anyway, then claim it
			// was shed. A later get observes a value whose put the
			// history excludes — the phantom the checker must flag.
			shard := r.cfg.Map.ShardOf(w.Key)
			g := r.cfg.Map.GroupOf(shard)
			r.seq[g]++
			r.apply(shard, w.Key, w.Val, Version{Epoch: r.cfg.Leases.L[g].Epoch, Seq: r.seq[g]})
		}
		r.cfg.Ov.Expired++
		if reply != nil {
			r.pushT(reply, w.OpID|ReplyOpBit, &Wire{Kind: MsgReply, OpID: w.OpID, Expired: true}, ctx, now)
		}
		return true
	}
	if !r.codel.Admit(now, enq) {
		r.cfg.Ov.Rejected++
		if reply != nil {
			r.pushT(reply, w.OpID|ReplyOpBit, &Wire{Kind: MsgReply, OpID: w.OpID, Rejected: true}, ctx, now)
		}
		return true
	}
	r.cfg.Ov.Admitted++
	return false
}

// clientOp serves one Get/Put as leader, or redirects the client. ctx is
// the request's causal-trace context, threaded through the replication
// round and onto the reply.
func (r *Replica) clientOp(w *Wire, reply *ipc.Port, now machine.Time, ctx obs.TraceContext) {
	leases, stats := r.cfg.Leases, r.cfg.Stats
	shard := r.cfg.Map.ShardOf(w.Key)
	g := r.cfg.Map.GroupOf(shard)
	if reply == nil {
		return
	}
	if r.deposedDirty {
		// Freshly fenced with solo-acked writes not yet merged at the new
		// leader: answering — even with a redirect — could send this
		// client to a store missing a write I acknowledged. Drop the op;
		// the client's RPC timeout retries it, and the rejoin round-trip
		// clears the stall within a couple of renewal periods.
		stats.Stalled++
		return
	}
	if r.recovering || leases.L[g].Leader != r.cfg.Rank {
		hint := leases.L[g].Leader
		if r.recovering && hint == r.cfg.Rank {
			// My durable view says me, but I have not re-earned the lease
			// yet; the peer is the better guess while I resync.
			hint = r.cfg.PeerRank
		}
		r.pushT(reply, w.OpID|ReplyOpBit, &Wire{Kind: MsgReply, OpID: w.OpID,
			NotLeader: true, Leader: hint}, ctx, now)
		return
	}
	if w.Op == OpGet {
		stats.Gets++
		ent, ok := r.store[shard][w.Key]
		r.pushT(reply, w.OpID|ReplyOpBit, &Wire{Kind: MsgReply, OpID: w.OpID,
			Key: w.Key, Val: ent.Val, Found: ok}, ctx, now)
		return
	}
	stats.Puts++
	r.seq[g]++
	ver := Version{Epoch: leases.L[g].Epoch, Seq: r.seq[g]}
	r.apply(shard, w.Key, w.Val, ver)
	if r.peerLink().PeerAlive() {
		r.pushPeerT(&Wire{Kind: MsgReplicate, Group: g, Shard: shard,
			Key: w.Key, Val: w.Val, Epoch: ver.Epoch, Seq: ver.Seq}, ctx, now)
		r.pending = append(r.pending, pendingRep{group: g, seq: ver.Seq,
			epoch: ver.Epoch, opid: w.OpID, reply: reply, at: now, trace: ctx})
		return
	}
	stats.SoloAcks++
	r.recordAck(g, ver.Epoch)
	r.observeRep(now, now)
	r.pushT(reply, w.OpID|ReplyOpBit, &Wire{Kind: MsgReply, OpID: w.OpID, Found: true}, ctx, now)
}

// apply installs a write if its version is newer than what the store
// holds — idempotent and order-independent, which is what replication
// retransmits and snapshot installs require.
func (r *Replica) apply(shard int, key, val uint64, v Version) {
	m := r.store[shard]
	if old, ok := m[key]; ok && !old.Ver.Less(v) {
		return
	}
	m[key] = Entry{Key: key, Val: val, Ver: v}
}

// snapshot renders the whole store as a sorted entry list — sorted so
// the bytes on the wire (and everything downstream) are deterministic.
func (r *Replica) snapshot() []Entry {
	var out []Entry
	for shard := range r.store {
		base := len(out)
		for _, ent := range r.store[shard] {
			out = append(out, ent)
		}
		sub := out[base:]
		sort.Slice(sub, func(i, j int) bool { return sub[i].Key < sub[j].Key })
	}
	return out
}

// Store returns the current value of a key, for tests and debugging.
func (r *Replica) Store(key uint64) (uint64, bool) {
	ent, ok := r.store[r.cfg.Map.ShardOf(key)][key]
	return ent.Val, ok
}
