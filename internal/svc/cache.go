package svc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overload"
)

// CachePortName is the wire name the cache tier exports.
const CachePortName = "cache"

// CacheStats counts cache-tier events across the machine's lifetime
// (referenced from CacheConfig, so it survives crashes).
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	WriteThroughs uint64
	Evictions     uint64
}

// CacheConfig is the durable configuration of the cache tier: a pool of
// worker threads sharing one exported port and one capacity-bounded
// store, each worker fronting the replicated KV through its own embedded
// one-shot Caller. The cached entries themselves are volatile — a cache
// machine crash empties it, and the misses refill from the KV backend.
type CacheConfig struct {
	Map ShardMap
	// Links maps replica rank -> this machine's link to that replica.
	Links [NumRanks]int
	// Workers is the cache thread-pool size; Capacity the entry bound.
	Workers  int
	Capacity int
	// Frontends is the number of frontend threads that will report done.
	Frontends int
	// FirstClientID is worker 0's global client id for the KV done
	// protocol (worker i uses FirstClientID+i).
	FirstClientID int
	// Timeout overrides the workers' KV attempt timeout; Tick their idle
	// receive period; IdleExit the no-traffic give-up horizon.
	Timeout  machine.Duration
	Tick     machine.Duration
	IdleExit machine.Duration
	Stats    *CacheStats

	// Overload arms the cache-tier overload controls when Enabled: the
	// deadline check and a CoDel admission controller (shared by the
	// worker pool — they share one queue) run on every dequeued
	// request, and the incoming deadline is propagated onto the
	// embedded KV fetch so the backend can shed the same op. Ov is the
	// tier's shedding scoreboard.
	Overload overload.Policy
	Ov       *overload.Stats

	// Durable done bits, for the same reason the replica's are durable:
	// an exited frontend never resends its done.
	done     []bool
	doneLeft int
}

func (c *CacheConfig) tick() machine.Duration {
	if c.Tick > 0 {
		return c.Tick
	}
	return DefaultRenewEvery
}

func (c *CacheConfig) idleExit() machine.Duration {
	if c.IdleExit > 0 {
		return c.IdleExit
	}
	return DefaultIdleExit
}

// cacheShared is the per-incarnation state the worker pool shares:
// the entry map with its FIFO eviction ring, and the machine-wide
// activity clock that gates the idle exit.
type cacheShared struct {
	entries      map[uint64]uint64
	ring         []uint64
	lastActivity machine.Time

	// codel gates admission over the shared port's queue sojourn; one
	// controller for the pool because the queue is one queue.
	codel overload.CoDel
}

// install puts (or refreshes) one entry, evicting in FIFO insert order
// at capacity. No map iteration — eviction order is the ring's.
func (sh *cacheShared) install(cfg *CacheConfig, key, val uint64) {
	if _, ok := sh.entries[key]; ok {
		sh.entries[key] = val
		return
	}
	if cfg.Capacity > 0 && len(sh.entries) >= cfg.Capacity {
		old := sh.ring[0]
		sh.ring = sh.ring[1:]
		delete(sh.entries, old)
		cfg.Stats.Evictions++
	}
	sh.entries[key] = val
	sh.ring = append(sh.ring, key)
}

// InstallCache boots the cache tier on a machine: the shared port and
// store, plus cfg.Workers worker threads. Registered through
// kern.RegisterService it reruns on warm reboot — the workers come back,
// the cache comes back empty.
func InstallCache(s *kern.System, cfg *CacheConfig) {
	if cfg.Stats == nil {
		cfg.Stats = &CacheStats{}
	}
	if cfg.Ov == nil {
		cfg.Ov = &overload.Stats{}
	}
	if cfg.done == nil {
		cfg.done = make([]bool, cfg.Frontends)
		cfg.doneLeft = cfg.Frontends
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	sh := &cacheShared{
		entries:      make(map[uint64]uint64),
		lastActivity: s.K.Clock.Now(),
		codel:        overload.CoDel{Target: cfg.Overload.Target, Interval: cfg.Overload.Interval},
	}
	task := s.NewTask("cache")
	port := s.IPC.NewPort(CachePortName)
	port.QueueLimit = 64
	for _, n := range s.Links {
		n.Export(CachePortName, port)
	}
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("cache-w%d", i)
		kv := &Caller{
			Sys: s, Name: name, ID: cfg.FirstClientID + i,
			Map: cfg.Map, Links: cfg.Links, Timeout: cfg.Timeout,
			HistName: "cache.fetch", OneShot: true,
		}
		kv.Reset(s)
		w := &cacheWorker{sys: s, cfg: cfg, sh: sh, port: port, kv: kv}
		s.Start(task.NewThread(name, w, 18))
	}
}

// cacheWorker serves cache requests from the shared port: hits answer
// immediately; misses and write-throughs run one operation against the
// KV backend through the embedded one-shot caller, then reply. Between
// requests the worker blocks on the port with a tick timeout so it
// notices done/idle transitions.
type cacheWorker struct {
	sys  *kern.System
	cfg  *CacheConfig
	sh   *cacheShared
	port *ipc.Port
	kv   *Caller

	cur      *Wire
	curReply *ipc.Port
	curCtx   obs.TraceContext
	curAt    machine.Time
	pend     *outbound
	inKV     bool
	finished bool

	recvAct  core.Action
	replyAct core.Action
}

func (w *cacheWorker) Next(e *core.Env, t *core.Thread) core.Action {
	if w.recvAct.Invoke == nil {
		w.recvAct = core.Syscall("mach_msg(cache-recv)", func(e *core.Env) {
			w.sys.IPC.MachMsg(e, ipc.MsgOptions{
				ReceiveFrom: w.port, RcvTimeout: w.cfg.tick(),
			})
		})
		w.replyAct = core.Syscall("mach_msg(cache-reply)", func(e *core.Env) {
			p := w.pend
			w.pend = nil
			if rec := w.sys.K.Obs; rec != nil && p.trace.Sampled() {
				// This tier's dwell on the request, hit or post-fetch.
				rec.RecordSpan(obs.Span{
					Trace: p.trace.Trace, ID: rec.NextSpanID(p.trace.Trace),
					Parent: p.trace.Span, Name: "cache.serve",
					Seg: obs.SegService, TID: e.Cur().ID,
					Start: p.at, End: w.sys.K.Clock.Now(),
				})
			}
			msg := w.sys.IPC.NewMessage(p.opid, wireBytes(p.w), p.w, nil)
			msg.Trace = p.trace
			e.Cur().Trace = p.trace
			w.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: msg, SendTo: p.to,
				ReceiveFrom: w.port, RcvTimeout: w.cfg.tick(),
			})
		})
	}
	if w.inKV {
		act, fin := w.kv.Step(e, t)
		if !fin {
			return act
		}
		w.inKV = false
		if w.finished {
			return core.Exit()
		}
		w.finishKV()
	}
	if m := w.sys.IPC.Received(t); m != nil {
		w.handle(m)
		if w.inKV {
			act, _ := w.kv.Step(e, t)
			return act
		}
	}
	if w.pend != nil {
		return w.replyAct
	}
	now := w.sys.K.Clock.Now()
	if w.cfg.doneLeft == 0 {
		// Every frontend is done: report this worker's own completion to
		// the KV replicas, then exit.
		w.finished = true
		w.inKV = true
		w.kv.StartDone()
		act, _ := w.kv.Step(e, t)
		return act
	}
	if now-w.sh.lastActivity >= w.cfg.idleExit() {
		return core.Exit()
	}
	return w.recvAct
}

// handle processes one frontend message.
func (w *cacheWorker) handle(m *ipc.Message) {
	req, ok := m.Body.(*Wire)
	reply := m.Reply
	ctx := m.Trace
	deadline, enq := m.Deadline, m.EnqueuedAt
	w.sys.IPC.FreeMessage(m)
	if !ok {
		return
	}
	now := w.sys.K.Clock.Now()
	w.sh.lastActivity = now
	switch req.Kind {
	case MsgDone:
		idx := req.From
		if idx >= 0 && idx < len(w.cfg.done) && !w.cfg.done[idx] {
			w.cfg.done[idx] = true
			w.cfg.doneLeft--
		}
		if reply != nil {
			w.pend = &outbound{to: reply, opid: req.OpID | ReplyOpBit,
				w: &Wire{Kind: MsgReply, OpID: req.OpID, Found: true}}
		}

	case MsgCacheReq, MsgClientOp:
		if reply == nil {
			return
		}
		if w.cfg.Overload.Enabled {
			// The dequeue gates: dead work is shed even when it would
			// hit (the client is long gone), and admission is refused
			// while the shared queue's sojourn stays over target — a
			// cheap typed reply instead of a backend fetch.
			if deadline != 0 && now >= deadline {
				w.cfg.Ov.Expired++
				w.pend = &outbound{to: reply, opid: req.OpID | ReplyOpBit,
					w:     &Wire{Kind: MsgCacheReply, OpID: req.OpID, Expired: true},
					trace: ctx, at: now}
				return
			}
			if !w.sh.codel.Admit(now, enq) {
				w.cfg.Ov.Rejected++
				w.pend = &outbound{to: reply, opid: req.OpID | ReplyOpBit,
					w:     &Wire{Kind: MsgCacheReply, OpID: req.OpID, Rejected: true},
					trace: ctx, at: now}
				return
			}
			w.cfg.Ov.Admitted++
		}
		if req.Op == OpGet {
			if val, ok := w.sh.entries[req.Key]; ok {
				w.cfg.Stats.Hits++
				w.pend = &outbound{to: reply, opid: req.OpID | ReplyOpBit,
					w: &Wire{Kind: MsgCacheReply, OpID: req.OpID,
						Key: req.Key, Val: val, Found: true},
					trace: ctx, at: now}
				return
			}
			w.cfg.Stats.Misses++
		} else {
			w.cfg.Stats.WriteThroughs++
		}
		w.cur = req
		w.curReply = reply
		w.curCtx = ctx
		w.curAt = now
		w.inKV = true
		// The backend fetch continues the frontend's trace: the embedded
		// caller's operation becomes a child span of this request, and
		// it inherits the request's remaining deadline budget so the KV
		// tier sheds the same dead work.
		w.kv.Ctx = ctx
		if w.cfg.Overload.Enabled && deadline != 0 {
			w.kv.NextDeadline = deadline
		}
		w.kv.StartOp(KVOp{Op: req.Op, Key: req.Key, Val: req.Val})
	}
}

// finishKV answers the frontend once the backend operation resolved.
func (w *cacheWorker) finishKV() {
	req, reply, ctx := w.cur, w.curReply, w.curCtx
	w.cur, w.curReply, w.curCtx = nil, nil, obs.TraceContext{}
	w.kv.Ctx = obs.TraceContext{}
	out := &Wire{Kind: MsgCacheReply, OpID: req.OpID, Key: req.Key}
	if !w.kv.LastOK && (w.kv.LastExpired || w.kv.LastRejected) {
		// Relay the backend's typed refusal upstream: the frontend
		// learns its op was a definite no-op, not a mystery timeout.
		out.Expired, out.Rejected = w.kv.LastExpired, w.kv.LastRejected
		w.pend = &outbound{to: reply, opid: req.OpID | ReplyOpBit, w: out,
			trace: ctx, at: w.sys.K.Clock.Now()}
		return
	}
	if req.Op == OpGet {
		if w.kv.LastOK && w.kv.LastFound {
			w.sh.install(w.cfg, req.Key, w.kv.LastVal)
			out.Found, out.Val = true, w.kv.LastVal
		}
	} else {
		out.Found = w.kv.LastOK
		if w.kv.LastOK {
			w.sh.install(w.cfg, req.Key, req.Val)
		}
	}
	w.pend = &outbound{to: reply, opid: req.OpID | ReplyOpBit, w: out,
		trace: ctx, at: w.sys.K.Clock.Now()}
}
