package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostAdd(t *testing.T) {
	c := Cost{Instrs: 1, Loads: 2, Stores: 3}
	c.Add(Cost{Instrs: 10, Loads: 20, Stores: 30})
	want := Cost{Instrs: 11, Loads: 22, Stores: 33}
	if c != want {
		t.Fatalf("Add = %v, want %v", c, want)
	}
}

func TestCostPlusDoesNotMutate(t *testing.T) {
	a := Cost{Instrs: 1}
	b := Cost{Loads: 2}
	sum := a.Plus(b)
	if a != (Cost{Instrs: 1}) {
		t.Fatalf("Plus mutated receiver: %v", a)
	}
	if sum != (Cost{Instrs: 1, Loads: 2}) {
		t.Fatalf("Plus = %v", sum)
	}
}

func TestCostScale(t *testing.T) {
	c := Cost{Instrs: 3, Loads: 1, Stores: 1}
	got := c.Scale(4)
	want := Cost{Instrs: 12, Loads: 4, Stores: 4}
	if got != want {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
}

func TestCostIsZero(t *testing.T) {
	if !(Cost{}).IsZero() {
		t.Fatal("zero cost not IsZero")
	}
	if (Cost{Stores: 1}).IsZero() {
		t.Fatal("nonzero cost IsZero")
	}
}

func TestCostAddCommutative(t *testing.T) {
	f := func(a, b Cost) bool {
		return a.Plus(b) == b.Plus(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostScaleDistributes(t *testing.T) {
	f := func(a, b Cost, n uint8) bool {
		k := uint64(n)
		return a.Plus(b).Scale(k) == a.Scale(k).Plus(b.Scale(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyBytesRoundsUpToWords(t *testing.T) {
	cases := []struct {
		bytes int
		words uint64
	}{
		{0, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {24, 6},
	}
	for _, c := range cases {
		got := CopyBytes(c.bytes)
		want := WordCopyCost.Scale(c.words)
		if got != want {
			t.Errorf("CopyBytes(%d) = %v, want %v", c.bytes, got, want)
		}
	}
}

func TestCopyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyBytes(-1) did not panic")
		}
	}()
	CopyBytes(-1)
}

func TestCostModelDS3100(t *testing.T) {
	m := NewCostModel(ArchDS3100)
	if m.MHz != 16.67 || m.CPI != 1.0 {
		t.Fatalf("unexpected DS3100 parameters: %+v", m)
	}
	// 16.67 instructions take one microsecond on a 16.67 MHz single-issue
	// machine.
	us := m.TimeMicros(Cost{Instrs: 1667})
	if math.Abs(us-100) > 1e-9 {
		t.Fatalf("TimeMicros(1667 instrs) = %v, want 100", us)
	}
}

func TestCostModelToshibaSlower(t *testing.T) {
	ds := NewCostModel(ArchDS3100)
	ts := NewCostModel(ArchToshiba5200)
	c := Cost{Instrs: 1000, Loads: 200, Stores: 100}
	if ts.TimeMicros(c) <= ds.TimeMicros(c) {
		t.Fatalf("Toshiba should be slower: %v vs %v", ts.TimeMicros(c), ds.TimeMicros(c))
	}
	if !ts.RegsOnStack {
		t.Fatal("Toshiba model must carry the regs-on-stack quirk")
	}
	if ds.RegsOnStack {
		t.Fatal("DS3100 model must not carry the regs-on-stack quirk")
	}
}

func TestCostModelUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCostModel(99) did not panic")
		}
	}()
	NewCostModel(Arch(99))
}

func TestArchString(t *testing.T) {
	if ArchDS3100.String() != "DS3100" || ArchToshiba5200.String() != "Toshiba5200" {
		t.Fatal("Arch.String mismatch")
	}
	if Arch(7).String() != "Arch(7)" {
		t.Fatalf("unknown arch string: %s", Arch(7))
	}
}

func TestTransferCostsTable4DS3100(t *testing.T) {
	m := NewCostModel(ArchDS3100)
	mk40 := TransferCostsFor(m, true)
	mk32 := TransferCostsFor(m, false)

	// These are the paper's Table 4 values verbatim.
	if mk40.SyscallEntry != (Cost{Instrs: 64, Loads: 7, Stores: 25}) {
		t.Errorf("MK40 entry = %v", mk40.SyscallEntry)
	}
	if mk40.SyscallExit != (Cost{Instrs: 35, Loads: 21, Stores: 1}) {
		t.Errorf("MK40 exit = %v", mk40.SyscallExit)
	}
	if mk32.SyscallEntry != (Cost{Instrs: 67, Loads: 8, Stores: 20}) {
		t.Errorf("MK32 entry = %v", mk32.SyscallEntry)
	}
	if mk32.SyscallExit != (Cost{Instrs: 24, Loads: 11, Stores: 1}) {
		t.Errorf("MK32 exit = %v", mk32.SyscallExit)
	}
	if mk40.StackHandoff != (Cost{Instrs: 83, Loads: 22, Stores: 18}) {
		t.Errorf("handoff = %v", mk40.StackHandoff)
	}
	if mk40.ContextSwitch != (Cost{Instrs: 250, Loads: 52, Stores: 27}) {
		t.Errorf("context switch = %v", mk40.ContextSwitch)
	}
}

func TestHandoffCheaperThanContextSwitch(t *testing.T) {
	// A bare handoff always beats a context switch; on the Toshiba the
	// register-copy quirk erodes the advantage (that is the paper's
	// footnote-2 performance bug), so the quirk is excluded here and
	// checked separately.
	for _, arch := range []Arch{ArchDS3100, ArchToshiba5200} {
		m := NewCostModel(arch)
		tc := TransferCostsFor(m, true)
		hand := m.TimeMicros(tc.StackHandoff)
		cs := m.TimeMicros(tc.ContextSwitch)
		if hand >= cs {
			t.Errorf("%v: handoff (%v us) not cheaper than context switch (%v us)", arch, hand, cs)
		}
	}
}

func TestToshibaQuirkErodesHandoffAdvantage(t *testing.T) {
	m := NewCostModel(ArchToshiba5200)
	tc := TransferCostsFor(m, true)
	quirk := m.TimeMicros(tc.HandoffRegCopy)
	// The paper expects fixing the bug to save roughly 50 us per RPC,
	// i.e. on the order of 25 us per one-way handoff.
	if quirk < 15 || quirk > 40 {
		t.Fatalf("quirk cost %v us, want roughly 25 us", quirk)
	}
}

func TestToshibaQuirkOnlyUnderContinuations(t *testing.T) {
	m := NewCostModel(ArchToshiba5200)
	if TransferCostsFor(m, true).HandoffRegCopy.IsZero() {
		t.Fatal("MK40/Toshiba must pay the register-copy quirk")
	}
	if !TransferCostsFor(m, false).HandoffRegCopy.IsZero() {
		t.Fatal("MK32/Toshiba must not pay the register-copy quirk")
	}
	ds := NewCostModel(ArchDS3100)
	if !TransferCostsFor(ds, true).HandoffRegCopy.IsZero() {
		t.Fatal("DS3100 must not pay the register-copy quirk")
	}
}

func TestExceptionEntryDearerThanSyscallEntry(t *testing.T) {
	for _, arch := range []Arch{ArchDS3100, ArchToshiba5200} {
		for _, cont := range []bool{true, false} {
			tc := TransferCostsFor(NewCostModel(arch), cont)
			if tc.ExceptionEntry.Instrs <= tc.SyscallEntry.Instrs {
				t.Errorf("%v cont=%v: exception entry %v not dearer than syscall entry %v",
					arch, cont, tc.ExceptionEntry, tc.SyscallEntry)
			}
			if tc.ExceptionExit.Loads <= tc.SyscallExit.Loads {
				t.Errorf("%v cont=%v: exception exit must reload the full frame", arch, cont)
			}
		}
	}
}
