package machine

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in nanoseconds since boot. The simulator
// never reads the host clock; identical inputs produce identical
// timelines.
type Time uint64

// Micros returns the timestamp in microseconds.
func (t Time) Micros() float64 { return float64(t) / 1000 }

// Seconds returns the timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Event is a deferred action in simulated time: a timer expiry, a disk
// completion, a device interrupt.
type Event struct {
	When Time
	// Fire runs when the clock reaches When. It executes in dispatcher
	// context (not on any thread's stack).
	Fire func()
	// Label describes the event for traces.
	Label string
	// Background marks housekeeping events (periodic kernel ticks) that
	// should not, by themselves, keep an otherwise quiescent simulation
	// alive.
	Background bool

	seq   uint64 // tiebreaker for determinism
	index int    // heap bookkeeping; -1 once fired or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// Pending reports whether the event is still queued (neither fired nor
// cancelled). The invariant checker uses it to prove that cancelled
// waiters hold no live callouts.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is the simulated global time source plus the pending-event queue.
type Clock struct {
	now        Time
	events     eventHeap
	seq        uint64
	foreground int // pending non-background events

	// watcher, when set, runs after any mutation that can change the
	// clock's next-activity view (earliest pending event, foreground
	// count). The cluster driver installs a dirty-marking hook here so
	// its per-machine activity heap can be repaired lazily instead of
	// re-scanning every machine per round. The hook must be cheap and
	// idempotent; it is not called for plain time advances, which only
	// ever lower-bound activity conservatively.
	watcher func()
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// SetActivityWatcher installs (or, with nil, removes) the hook run after
// every event-queue mutation. At most one watcher is supported; a new
// cluster driver replaces any previous one.
func (c *Clock) SetActivityWatcher(fn func()) { c.watcher = fn }

// notify runs the activity watcher, if any.
func (c *Clock) notify() {
	if c.watcher != nil {
		c.watcher()
	}
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves time forward by d nanoseconds. Time is monotone;
// advancing never fires events — callers pop due events explicitly so
// that event handlers always run from dispatcher context.
func (c *Clock) Advance(d Duration) {
	c.now += d
}

// AdvanceMicros moves time forward by a (possibly fractional) number of
// microseconds, rounding to the nearest nanosecond.
func (c *Clock) AdvanceMicros(us float64) {
	if us < 0 {
		panic("machine: negative time advance")
	}
	c.Advance(Duration(us*1000 + 0.5))
}

// Schedule registers fn to fire at absolute time when. Scheduling in the
// past is allowed; the event becomes due immediately.
func (c *Clock) Schedule(when Time, label string, fn func()) *Event {
	e := &Event{When: when, Fire: fn, Label: label, seq: c.seq}
	c.seq++
	heap.Push(&c.events, e)
	c.foreground++
	c.notify()
	return e
}

// remoteBand is the high bit of the tie-break sequence. Local events use
// the clock's own counter (always below the band); events scheduled by a
// remote machine carry a caller-supplied key raised into the band, so at
// equal When every remote arrival orders after every local event, and
// remote arrivals order among themselves by key alone. That makes the
// heap order a function of the machine's own history plus the wire
// traffic — independent of which driver (sequential or parallel) found
// out about the arrival first.
const remoteBand = uint64(1) << 63

// ScheduleRemote registers an event originating on another machine. key
// must be unique among pending remote events and deterministic for the
// packet it represents (the cluster drivers build it from the receiving
// NIC's index and the sender's emission counter).
func (c *Clock) ScheduleRemote(when Time, key uint64, label string, fn func()) *Event {
	e := &Event{When: when, Fire: fn, Label: label, seq: remoteBand | key}
	heap.Push(&c.events, e)
	c.foreground++
	c.notify()
	return e
}

// After registers fn to fire d nanoseconds from now.
func (c *Clock) After(d Duration, label string, fn func()) *Event {
	return c.Schedule(c.now+d, label, fn)
}

// AfterBackground registers a housekeeping event that does not keep an
// idle simulation alive (see HasForeground).
func (c *Clock) AfterBackground(d Duration, label string, fn func()) *Event {
	e := c.Schedule(c.now+d, label, fn)
	e.Background = true
	c.foreground--
	c.notify()
	return e
}

// HasForeground reports whether any pending event is a real one (not
// housekeeping); the run loop quiesces when none remain.
func (c *Clock) HasForeground() bool { return c.foreground > 0 }

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op returning false.
func (c *Clock) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&c.events, e.index)
	e.index = -2
	if !e.Background {
		c.foreground--
	}
	c.notify()
	return true
}

// NextEventTime returns the time of the earliest pending event and
// whether one exists.
func (c *Clock) NextEventTime() (Time, bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].When, true
}

// PopDue removes and returns the earliest event whose time has arrived,
// or nil if none is due. The caller fires it.
func (c *Clock) PopDue() *Event {
	if len(c.events) == 0 || c.events[0].When > c.now {
		return nil
	}
	e := heap.Pop(&c.events).(*Event)
	if !e.Background {
		c.foreground--
	}
	c.notify()
	return e
}

// AdvanceToNextEvent jumps time forward to the earliest pending event and
// returns it, or returns nil if the queue is empty. Used by the idle
// thread when nothing is runnable.
func (c *Clock) AdvanceToNextEvent() *Event {
	if len(c.events) == 0 {
		return nil
	}
	e := heap.Pop(&c.events).(*Event)
	if !e.Background {
		c.foreground--
	}
	if e.When > c.now {
		c.now = e.When
	}
	c.notify()
	return e
}

// Pending reports how many events are queued.
func (c *Clock) Pending() int { return len(c.events) }

// PurgeLocal cancels every locally-scheduled pending event — callout
// expiries, retransmit timers, device completions, background ticks —
// and returns how many it removed. Events scheduled by a remote machine
// (ScheduleRemote's band) survive: they model packets already on the
// wire, which a machine crash cannot recall. The crashed machine's
// receive path is responsible for dropping them on arrival.
func (c *Clock) PurgeLocal() int {
	kept := c.events[:0]
	purged := 0
	for _, e := range c.events {
		if e.seq&remoteBand != 0 {
			kept = append(kept, e)
			continue
		}
		e.index = -2
		if !e.Background {
			c.foreground--
		}
		purged++
	}
	// Zero the tail so purged events are not retained by the backing
	// array, then restore the heap invariant over the survivors (Init
	// only fixes the bookkeeping of elements it swaps, so reindex first).
	for i := len(kept); i < len(c.events); i++ {
		c.events[i] = nil
	}
	c.events = kept
	for i, e := range c.events {
		e.index = i
	}
	heap.Init(&c.events)
	c.notify()
	return purged
}
