package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestPool() (*Clock, *StackPool) {
	c := NewClock()
	return c, NewStackPool(c, 116)
}

func TestStackAllocateFree(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	if s.Owner() != OwnerTransit {
		t.Fatalf("fresh stack owner = %v", s.Owner())
	}
	if p.InUse() != 1 || p.TotalStacks() != 1 {
		t.Fatalf("InUse=%d Total=%d", p.InUse(), p.TotalStacks())
	}
	p.Free(s)
	if s.Owner() != OwnerFree || p.InUse() != 0 {
		t.Fatalf("after free: owner=%v InUse=%d", s.Owner(), p.InUse())
	}
}

func TestStackReuse(t *testing.T) {
	_, p := newTestPool()
	s1 := p.Allocate()
	p.Free(s1)
	s2 := p.Allocate()
	if s1 != s2 {
		t.Fatal("pool did not reuse the freed stack")
	}
	if p.TotalStacks() != 1 {
		t.Fatalf("TotalStacks = %d", p.TotalStacks())
	}
}

func TestStackDoubleFreePanics(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	p.Free(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Free(s)
}

func TestFreeWithLiveFramesPanics(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	s.PushFrame(Frame{Resume: "resume", Bytes: 64, Label: "blocked"})
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a stack with frames did not panic")
		}
	}()
	p.Free(s)
}

func TestStackGrowShrinkHighWater(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	s.Grow(100)
	s.Grow(200)
	s.Shrink(150)
	if s.Used() != 150 {
		t.Fatalf("Used = %d", s.Used())
	}
	if s.MaxUsed() != 300 {
		t.Fatalf("MaxUsed = %d", s.MaxUsed())
	}
}

func TestStackOverflowPanics(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	s.Grow(KernelStackSize + 1)
}

func TestStackBadShrinkPanics(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	s.Grow(10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-shrink did not panic")
		}
	}()
	s.Shrink(11)
}

func TestFrameLIFO(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	s.PushFrame(Frame{Resume: "resume", Bytes: 16, Label: "outer"})
	s.PushFrame(Frame{Resume: "resume", Bytes: 32, Label: "inner"})
	if s.FrameCount() != 2 || s.Used() != 48 {
		t.Fatalf("frames=%d used=%d", s.FrameCount(), s.Used())
	}
	if f := s.PopFrame(); f.Label != "inner" {
		t.Fatalf("popped %q first", f.Label)
	}
	if f := s.PopFrame(); f.Label != "outer" {
		t.Fatalf("popped %q second", f.Label)
	}
	if s.Used() != 0 {
		t.Fatalf("used=%d after popping all", s.Used())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	defer func() {
		if recover() == nil {
			t.Fatal("pop on empty stack did not panic")
		}
	}()
	s.PopFrame()
}

func TestPushFrameWithoutResumePanics(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	defer func() {
		if recover() == nil {
			t.Fatal("frame without resume did not panic")
		}
	}()
	s.PushFrame(Frame{Bytes: 8})
}

func TestAllocateResetsRecycledStack(t *testing.T) {
	_, p := newTestPool()
	s := p.Allocate()
	s.PushFrame(Frame{Resume: "resume", Bytes: 40})
	s.PopFrame()
	s.Grow(80)
	s.Shrink(80)
	p.Free(s)
	s2 := p.Allocate()
	if s2.Used() != 0 || s2.MaxUsed() != 0 || s2.FrameCount() != 0 {
		t.Fatalf("recycled stack not reset: used=%d max=%d frames=%d",
			s2.Used(), s2.MaxUsed(), s2.FrameCount())
	}
}

func TestHighWaterMark(t *testing.T) {
	_, p := newTestPool()
	a := p.Allocate()
	b := p.Allocate()
	c := p.Allocate()
	p.Free(b)
	p.Free(c)
	if p.MaxInUse() != 3 {
		t.Fatalf("MaxInUse = %d, want 3", p.MaxInUse())
	}
	if p.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", p.InUse())
	}
	p.Free(a)
	if p.Allocs() != 3 || p.Frees() != 3 {
		t.Fatalf("allocs=%d frees=%d", p.Allocs(), p.Frees())
	}
}

func TestAverageInUseTimeWeighted(t *testing.T) {
	clock, p := newTestPool()
	s := p.Allocate()
	clock.Advance(1000) // 1 stack for 1000ns
	s2 := p.Allocate()
	clock.Advance(1000) // 2 stacks for 1000ns
	p.Free(s2)
	p.Free(s)
	avg := p.AverageInUse()
	if avg < 1.49 || avg > 1.51 {
		t.Fatalf("AverageInUse = %v, want 1.5", avg)
	}
}

func TestAverageInUseNoTimeElapsed(t *testing.T) {
	_, p := newTestPool()
	p.Allocate()
	if avg := p.AverageInUse(); avg != 1 {
		t.Fatalf("AverageInUse with no elapsed time = %v, want current count", avg)
	}
}

// Property: for any valid sequence of allocate/free operations, the pool's
// accounting balances — inUse equals allocs-frees, every live stack has a
// single owner, and free stacks are exactly the pool's free list.
func TestStackPoolAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		clock, p := newTestPool()
		var held []*Stack
		for _, alloc := range ops {
			clock.Advance(7)
			if alloc || len(held) == 0 {
				held = append(held, p.Allocate())
			} else {
				s := held[len(held)-1]
				held = held[:len(held)-1]
				p.Free(s)
			}
		}
		if p.InUse() != len(held) {
			return false
		}
		if uint64(p.InUse()) != p.Allocs()-p.Frees() {
			return false
		}
		free := 0
		for _, s := range p.live {
			if s.Owner() == OwnerFree {
				free++
			}
		}
		return free == p.TotalStacks()-p.InUse()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStackOwnerString(t *testing.T) {
	if OwnerFree.String() != "free" || OwnerThread.String() != "thread" || OwnerTransit.String() != "transit" {
		t.Fatal("owner strings")
	}
	if StackOwner(9).String() != "StackOwner(9)" {
		t.Fatal("unknown owner string")
	}
}
