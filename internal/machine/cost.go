// Package machine models the hardware substrate the simulated kernel runs
// on: processor cost accounting, kernel stacks as explicit 4 KB resources,
// register contexts, and a simulated clock with an event queue.
//
// The paper's evaluation (Tables 3 and 4) is expressed in instructions,
// loads, stores and microseconds on two machines, the DECstation 3100 and
// the Toshiba 5200. Because a Go program cannot execute MIPS or i386
// kernel code, the machine package instead charges every simulated kernel
// operation with a Cost and converts accumulated costs to time with a
// per-architecture CostModel. Component costs that the paper measured
// directly (kernel entry/exit, stack handoff, context switch; Table 4) are
// treated as machine facts and used as model inputs; everything else is
// charged as the simulated kernel code actually executes, so path-level
// results emerge from which components a given kernel flavor runs.
package machine

import "fmt"

// Cost counts the work performed by a stretch of simulated kernel code in
// the units the paper reports: dynamic instructions, data loads and data
// stores. Costs are plain values; add them with Add.
type Cost struct {
	Instrs uint64 // dynamic instruction count
	Loads  uint64 // data cache read references
	Stores uint64 // data cache write references
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.Instrs += other.Instrs
	c.Loads += other.Loads
	c.Stores += other.Stores
}

// Scale returns c multiplied by n, e.g. the cost of copying n words given
// a per-word cost.
func (c Cost) Scale(n uint64) Cost {
	return Cost{Instrs: c.Instrs * n, Loads: c.Loads * n, Stores: c.Stores * n}
}

// Plus returns the sum of c and other without mutating either.
func (c Cost) Plus(other Cost) Cost {
	c.Add(other)
	return c
}

// IsZero reports whether the cost counts no work at all.
func (c Cost) IsZero() bool {
	return c.Instrs == 0 && c.Loads == 0 && c.Stores == 0
}

func (c Cost) String() string {
	return fmt.Sprintf("{instrs %d loads %d stores %d}", c.Instrs, c.Loads, c.Stores)
}

// Arch identifies one of the evaluation machines from the paper.
type Arch int

const (
	// ArchDS3100 is the DECstation 3100: MIPS R2000, 16.67 MHz, one
	// instruction per cycle barring cache misses and write stalls,
	// separate 64 KB direct-mapped I and D caches, 4-stage write buffer.
	ArchDS3100 Arch = iota
	// ArchToshiba5200 is the Toshiba 5200/100: Intel 80386, 20 MHz,
	// 32 KB combined cache. Its trap handler saves user registers on the
	// kernel stack rather than in a separate machine-dependent structure,
	// so a stack handoff must copy the register block between stacks
	// (the "performance bug" of the paper's footnote 2).
	ArchToshiba5200
)

func (a Arch) String() string {
	switch a {
	case ArchDS3100:
		return "DS3100"
	case ArchToshiba5200:
		return "Toshiba5200"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// CostModel converts Costs into simulated time for one architecture and
// supplies the machine-dependent component costs of control transfer.
// All times are derived, never measured from the host.
type CostModel struct {
	Arch Arch

	// MHz is the processor clock rate; simulated time in microseconds is
	// cycles / MHz.
	MHz float64

	// CPI is the base cycles per instruction (1.0 on the R2000; the 386
	// averages several cycles per instruction on kernel code).
	CPI float64

	// LoadCycles and StoreCycles are the average additional cycles per
	// data reference beyond the base CPI, folding in cache hit latency,
	// the occasional miss, and write-buffer stalls.
	LoadCycles  float64
	StoreCycles float64

	// RegsOnStack is the Toshiba 5200 quirk: saved user registers live on
	// the kernel stack, so StackHandoff must copy them out of the old
	// stack and onto the new one. When false (DS3100), registers live in
	// a separate machine-dependent save area and handoff is cheap.
	RegsOnStack bool

	// CalleeSavedRegs is the number of registers the calling convention
	// requires a continuation-based kernel to save eagerly at system call
	// entry (9 on the R2000). It is the source of MK40's slightly more
	// expensive entry/exit path (Table 4 discussion).
	CalleeSavedRegs int

	// UserRegs is the size of the full user register frame saved on
	// exceptions and interrupts, in 32-bit words.
	UserRegs int
}

// Cycles returns the simulated cycle count for a Cost under this model.
func (m *CostModel) Cycles(c Cost) float64 {
	return float64(c.Instrs)*m.CPI +
		float64(c.Loads)*m.LoadCycles +
		float64(c.Stores)*m.StoreCycles
}

// TimeMicros converts a Cost to simulated microseconds.
func (m *CostModel) TimeMicros(c Cost) float64 {
	return m.Cycles(c) / m.MHz
}

// NewCostModel returns the model for the given architecture with the
// parameters used throughout the reproduction. The DS3100 numbers are
// anchored so that the Table 4 component costs convert to latencies
// consistent with Table 3; the Toshiba model uses a higher CPI typical of
// a 20 MHz 386 running kernel code.
func NewCostModel(a Arch) *CostModel {
	switch a {
	case ArchDS3100:
		return &CostModel{
			Arch:            ArchDS3100,
			MHz:             16.67,
			CPI:             1.0,
			LoadCycles:      1.5,
			StoreCycles:     1.0,
			RegsOnStack:     false,
			CalleeSavedRegs: 9,
			UserRegs:        32,
		}
	case ArchToshiba5200:
		return &CostModel{
			Arch:            ArchToshiba5200,
			MHz:             20.0,
			CPI:             7.2,
			LoadCycles:      3.5,
			StoreCycles:     3.0,
			RegsOnStack:     true,
			CalleeSavedRegs: 4,
			UserRegs:        17,
		}
	default:
		panic(fmt.Sprintf("machine: unknown architecture %v", a))
	}
}

// WordCopyCost is the per-32-bit-word cost of a memory-to-memory copy
// (load, store, and loop overhead), used for message bodies and the
// Toshiba register-block copy.
var WordCopyCost = Cost{Instrs: 3, Loads: 1, Stores: 1}

// CopyWords returns the cost of copying n 32-bit words.
func CopyWords(n int) Cost {
	if n < 0 {
		panic("machine: negative copy length")
	}
	return WordCopyCost.Scale(uint64(n))
}

// CopyBytes returns the cost of copying n bytes, rounded up to words.
func CopyBytes(n int) Cost {
	if n < 0 {
		panic("machine: negative copy length")
	}
	return CopyWords((n + 3) / 4)
}
