package machine

// Context is the machine-dependent register save area for a thread: the
// state the trap handler preserves at kernel entry and the state
// switch_context saves and restores. The simulator gives registers
// symbolic roles rather than modelling a full ISA; what matters to the
// paper is where this state lives (a separate save area in MK40, the
// kernel stack in MK32/Toshiba) and what saving it costs.
type Context struct {
	// PC is the user program counter to resume at.
	PC uint64
	// SP is the user stack pointer.
	SP uint64
	// RetVal carries a system call's return code back to user space.
	RetVal uint64
	// Args carries system call arguments (a0-a3 style).
	Args [4]uint64
	// Valid records whether the context holds live user state.
	Valid bool
}

// SaveArgs records syscall arguments into the context.
func (c *Context) SaveArgs(args ...uint64) {
	for i := range c.Args {
		c.Args[i] = 0
	}
	n := len(args)
	if n > len(c.Args) {
		n = len(c.Args)
	}
	copy(c.Args[:], args[:n])
}

// MDStateBytes is the size of the separate machine-dependent thread save
// area in an MK40-style kernel on the DS3100 (Table 5: 206 bytes — the
// full user register frame plus trap bookkeeping). In MK32 this state
// lives on the thread's dedicated kernel stack and costs no extra bytes.
const MDStateBytes = 206

// Accumulator gathers Costs charged by simulated kernel code, both a
// running total and a resettable span, so paths can be measured
// component-by-component (Table 4) and end-to-end (Table 3).
type Accumulator struct {
	model *CostModel
	clock *Clock

	total Cost
	span  Cost

	// AdvanceClock, when true, moves the simulated clock forward as costs
	// are charged so that event timing reflects kernel execution time.
	AdvanceClock bool

	// TimeScale, when non-nil, multiplies the simulated duration of every
	// charge — the gray-failure hook: a slowdown factor > 1 makes the
	// machine compute slower without being down. Consulted per charge so a
	// scheduled slowdown window can start and end mid-run.
	TimeScale func() float64
}

// NewAccumulator returns an accumulator charging against model and,
// optionally, advancing clock.
func NewAccumulator(model *CostModel, clock *Clock) *Accumulator {
	return &Accumulator{model: model, clock: clock, AdvanceClock: true}
}

// Model exposes the cost model used for time conversion.
func (a *Accumulator) Model() *CostModel { return a.model }

// Charge records that the named work was performed.
func (a *Accumulator) Charge(c Cost) {
	a.total.Add(c)
	a.span.Add(c)
	if a.AdvanceClock && a.clock != nil {
		a.clock.AdvanceMicros(a.ScaleMicros(a.model.TimeMicros(c)))
	}
}

// ScaleMicros applies the gray-failure time scale to a simulated
// duration; identity when no scale is installed. Exposed for the one
// charge path that bypasses Charge (user-mode CPU bursts, which are
// pre-converted to time).
func (a *Accumulator) ScaleMicros(us float64) float64 {
	if a.TimeScale == nil {
		return us
	}
	return us * a.TimeScale()
}

// ChargeInstrs charges n straight-line instructions with no data traffic.
func (a *Accumulator) ChargeInstrs(n uint64) {
	a.Charge(Cost{Instrs: n})
}

// Total returns the cumulative cost since creation.
func (a *Accumulator) Total() Cost { return a.total }

// BeginSpan resets the span counter and returns the value before reset,
// letting callers bracket a path measurement.
func (a *Accumulator) BeginSpan() Cost {
	prev := a.span
	a.span = Cost{}
	return prev
}

// Span returns the cost charged since the last BeginSpan.
func (a *Accumulator) Span() Cost { return a.span }

// SpanMicros returns the simulated duration of the current span.
func (a *Accumulator) SpanMicros() float64 { return a.model.TimeMicros(a.span) }

// TotalMicros returns the simulated duration of all charged work.
func (a *Accumulator) TotalMicros() float64 { return a.model.TimeMicros(a.total) }
