package machine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v", c.Now())
	}
}

func TestClockAdvanceMonotone(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.Advance(0)
	c.Advance(50)
	if c.Now() != 150 {
		t.Fatalf("Now = %v, want 150", c.Now())
	}
}

func TestClockAdvanceMicrosRounds(t *testing.T) {
	c := NewClock()
	c.AdvanceMicros(1.5) // 1500 ns
	if c.Now() != 1500 {
		t.Fatalf("Now = %v, want 1500ns", c.Now())
	}
	c.AdvanceMicros(0.0004) // 0.4 ns rounds to 0
	if c.Now() != 1500 {
		t.Fatalf("Now = %v after sub-ns advance", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewClock().AdvanceMicros(-1)
}

func TestEventOrdering(t *testing.T) {
	c := NewClock()
	var fired []string
	c.Schedule(300, "c", func() { fired = append(fired, "c") })
	c.Schedule(100, "a", func() { fired = append(fired, "a") })
	c.Schedule(200, "b", func() { fired = append(fired, "b") })

	c.Advance(250)
	for e := c.PopDue(); e != nil; e = c.PopDue() {
		e.Fire()
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("fired = %v", fired)
	}
	c.Advance(100)
	if e := c.PopDue(); e == nil || e.Label != "c" {
		t.Fatalf("expected c due, got %+v", e)
	}
}

func TestEventSameTimeFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(50, "e", func() { order = append(order, i) })
	}
	c.Advance(50)
	for e := c.PopDue(); e != nil; e = c.PopDue() {
		e.Fire()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.Schedule(10, "x", func() { fired = true })
	if !c.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(e) {
		t.Fatal("double cancel returned true")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	c.Advance(20)
	if ev := c.PopDue(); ev != nil {
		t.Fatalf("cancelled event still due: %v", ev.Label)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if c.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	c := NewClock()
	var es []*Event
	for i := 0; i < 20; i++ {
		when := Time((i * 37) % 100)
		es = append(es, c.Schedule(when, "e", func() {}))
	}
	// Cancel every third event, then verify the rest drain in time order.
	for i := 0; i < len(es); i += 3 {
		c.Cancel(es[i])
	}
	c.Advance(1000)
	var last Time
	count := 0
	for e := c.PopDue(); e != nil; e = c.PopDue() {
		if e.When < last {
			t.Fatalf("heap order violated: %v after %v", e.When, last)
		}
		last = e.When
		count++
	}
	want := len(es) - (len(es)+2)/3
	if count != want {
		t.Fatalf("drained %d events, want %d", count, want)
	}
}

func TestAdvanceToNextEvent(t *testing.T) {
	c := NewClock()
	c.Schedule(500, "wake", func() {})
	e := c.AdvanceToNextEvent()
	if e == nil || e.Label != "wake" {
		t.Fatalf("AdvanceToNextEvent = %+v", e)
	}
	if c.Now() != 500 {
		t.Fatalf("clock at %v, want 500", c.Now())
	}
	if c.AdvanceToNextEvent() != nil {
		t.Fatal("empty queue should return nil")
	}
}

func TestAdvanceToNextEventNeverGoesBack(t *testing.T) {
	c := NewClock()
	c.Schedule(10, "past", func() {})
	c.Advance(100)
	c.AdvanceToNextEvent()
	if c.Now() != 100 {
		t.Fatalf("clock went backwards to %v", c.Now())
	}
}

func TestPopDueNotEarly(t *testing.T) {
	c := NewClock()
	c.Schedule(10, "later", func() {})
	if e := c.PopDue(); e != nil {
		t.Fatalf("event due early: %v", e.Label)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

// Property: draining the event queue always yields events in
// nondecreasing time order, whatever the insertion order.
func TestEventHeapProperty(t *testing.T) {
	f := func(times []uint32) bool {
		c := NewClock()
		for _, ti := range times {
			c.Schedule(Time(ti), "e", func() {})
		}
		c.now = ^Time(0) >> 1
		var last Time
		for e := c.PopDue(); e != nil; e = c.PopDue() {
			if e.When < last {
				return false
			}
			last = e.When
		}
		return c.Pending() == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(2_500_000) // 2.5 ms
	if tm.Micros() != 2500 {
		t.Fatalf("Micros = %v", tm.Micros())
	}
	if tm.Seconds() != 0.0025 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
}

func TestPurgeLocalKeepsWireEvents(t *testing.T) {
	c := NewClock()
	var fired []string
	c.Schedule(10, "local-a", func() { fired = append(fired, "local-a") })
	c.AfterBackground(20, "tick", func() { fired = append(fired, "tick") })
	c.ScheduleRemote(15, 1, "wire-1", func() { fired = append(fired, "wire-1") })
	c.ScheduleRemote(15, 2, "wire-2", func() { fired = append(fired, "wire-2") })
	c.Schedule(30, "local-b", func() { fired = append(fired, "local-b") })

	if purged := c.PurgeLocal(); purged != 3 {
		t.Fatalf("purged %d events, want 3 (two local + one background)", purged)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d, want the two wire arrivals", c.Pending())
	}
	if !c.HasForeground() {
		t.Fatal("wire arrivals must remain foreground")
	}
	for ev := c.AdvanceToNextEvent(); ev != nil; ev = c.AdvanceToNextEvent() {
		ev.Fire()
	}
	if len(fired) != 2 || fired[0] != "wire-1" || fired[1] != "wire-2" {
		t.Fatalf("fired %v, want the wire events in key order", fired)
	}
	if c.HasForeground() {
		t.Fatal("foreground count leaked")
	}
	// A purged event cannot be cancelled again (already removed).
	if c.PurgeLocal() != 0 {
		t.Fatal("second purge found something to remove")
	}
}

func TestPurgeLocalCancelledEventsStayDead(t *testing.T) {
	c := NewClock()
	ran := false
	e := c.Schedule(10, "local", func() { ran = true })
	c.PurgeLocal()
	if e.Pending() {
		t.Fatal("purged event still pending")
	}
	if c.Cancel(e) {
		t.Fatal("Cancel succeeded on a purged event")
	}
	c.Advance(20)
	if got := c.PopDue(); got != nil {
		t.Fatalf("PopDue returned purged event %v", got.Label)
	}
	if ran {
		t.Fatal("purged event fired")
	}
}
