package machine

import "fmt"

// KernelStackSize is the size of one kernel stack, 4 kilobytes on every
// architecture the paper measures.
const KernelStackSize = 4096

// StackOwner describes who currently holds a kernel stack. Exactly one
// owner holds any live stack; the invariant is property-tested.
type StackOwner int

const (
	// OwnerFree means the stack sits in the pool's free list.
	OwnerFree StackOwner = iota
	// OwnerThread means the stack is attached to a thread (running or
	// blocked under the process model).
	OwnerThread
	// OwnerTransit means the stack is momentarily between threads during
	// a handoff.
	OwnerTransit
)

func (o StackOwner) String() string {
	switch o {
	case OwnerFree:
		return "free"
	case OwnerThread:
		return "thread"
	case OwnerTransit:
		return "transit"
	default:
		return fmt.Sprintf("StackOwner(%d)", int(o))
	}
}

// Frame models one preserved activation record on a kernel stack: the
// resume step standing in for the saved return address and register
// context of a process-model block, plus the number of bytes of stack the
// suspended call chain occupies.
type Frame struct {
	// Resume is the suspended computation, invoked through the kernel
	// dispatcher when the owning thread is switched back in. The machine
	// layer treats it as opaque; the kernel stores its own closure type.
	Resume any
	// Bytes is the simulated depth of the suspended call chain.
	Bytes int
	// Label describes the block site, for traces and tests.
	Label string
}

// Stack is a kernel stack as an explicit resource. The simulator does not
// execute machine code on it; it tracks ownership, simulated usage in
// bytes, and the frames preserved across process-model blocks. The 4 KB of
// backing store is what the paper's space accounting (Table 5) charges.
type Stack struct {
	ID    int
	owner StackOwner

	// frames holds preserved contexts, innermost last.
	frames []Frame

	// used is the current simulated depth in bytes.
	used int

	// maxUsed is the high-water depth since allocation.
	maxUsed int
}

// Owner reports who currently holds the stack.
func (s *Stack) Owner() StackOwner { return s.owner }

// Used reports the current simulated depth in bytes.
func (s *Stack) Used() int { return s.used }

// MaxUsed reports the high-water depth in bytes since the stack was last
// allocated from the pool.
func (s *Stack) MaxUsed() int { return s.maxUsed }

// Grow charges n bytes of stack depth, panicking on overflow — a real
// kernel would double-fault. Pair with Shrink.
func (s *Stack) Grow(n int) {
	if n < 0 {
		panic("machine: negative stack growth")
	}
	s.used += n
	if s.used > KernelStackSize {
		panic(fmt.Sprintf("machine: kernel stack %d overflow: %d bytes", s.ID, s.used))
	}
	if s.used > s.maxUsed {
		s.maxUsed = s.used
	}
}

// Shrink releases n bytes of stack depth.
func (s *Stack) Shrink(n int) {
	if n < 0 || n > s.used {
		panic(fmt.Sprintf("machine: bad stack shrink %d (used %d)", n, s.used))
	}
	s.used -= n
}

// PushFrame preserves a blocked call chain on the stack.
func (s *Stack) PushFrame(f Frame) {
	if f.Resume == nil {
		panic("machine: frame without resume step")
	}
	s.Grow(f.Bytes)
	s.frames = append(s.frames, f)
}

// PopFrame removes and returns the innermost preserved frame.
func (s *Stack) PopFrame() Frame {
	if len(s.frames) == 0 {
		panic(fmt.Sprintf("machine: pop on frame-less stack %d", s.ID))
	}
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.Shrink(f.Bytes)
	return f
}

// FrameCount reports how many preserved frames the stack holds.
func (s *Stack) FrameCount() int { return len(s.frames) }

// Reset clears all simulated content, as call_continuation does when it
// rewinds the stack pointer to the base.
func (s *Stack) Reset() {
	s.frames = s.frames[:0]
	s.used = 0
}

// StackPool allocates kernel stacks and records the statistics the paper
// reports in §3.4: how many stacks exist, the high-water mark, and the
// time-weighted average count (the "2.002 stacks" number).
type StackPool struct {
	clock *Clock

	free   []*Stack
	live   map[int]*Stack
	nextID int

	// VMMetadataBytes is the per-stack virtual-memory bookkeeping cost
	// (116 bytes for a pageable MK32 stack, 0 when stacks are wired);
	// carried here so the space model can charge it per live stack.
	VMMetadataBytes int

	allocs   uint64
	frees    uint64
	inUse    int
	maxInUse int

	// Time-weighted census of in-use stacks.
	lastCensusTime Time
	weightedSum    float64
	weightedTime   float64
}

// NewStackPool returns an empty pool whose census follows clock.
func NewStackPool(clock *Clock, vmMetadataBytes int) *StackPool {
	return &StackPool{
		clock:           clock,
		live:            make(map[int]*Stack),
		VMMetadataBytes: vmMetadataBytes,
		lastCensusTime:  clock.Now(),
	}
}

func (p *StackPool) census() {
	now := p.clock.Now()
	dt := float64(now - p.lastCensusTime)
	if dt > 0 {
		p.weightedSum += dt * float64(p.inUse)
		p.weightedTime += dt
		p.lastCensusTime = now
	}
}

// Allocate returns a stack, reusing a free one when possible. The stack is
// returned in transit; the caller attaches it to a thread.
func (p *StackPool) Allocate() *Stack {
	p.census()
	var s *Stack
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		p.nextID++
		s = &Stack{ID: p.nextID}
		p.live[s.ID] = s
	}
	s.owner = OwnerTransit
	s.Reset()
	s.maxUsed = 0
	p.allocs++
	p.inUse++
	if p.inUse > p.maxInUse {
		p.maxInUse = p.inUse
	}
	return s
}

// Free returns a detached stack to the pool. Freeing a stack that still
// holds frames, or double-freeing, panics: both are kernel bugs.
func (p *StackPool) Free(s *Stack) {
	p.census()
	if s.owner == OwnerFree {
		panic(fmt.Sprintf("machine: double free of stack %d", s.ID))
	}
	if s.FrameCount() != 0 {
		panic(fmt.Sprintf("machine: freeing stack %d with %d live frames", s.ID, s.FrameCount()))
	}
	s.owner = OwnerFree
	s.Reset()
	p.free = append(p.free, s)
	p.frees++
	p.inUse--
}

// InUse reports how many stacks are currently allocated to threads or in
// transit.
func (p *StackPool) InUse() int { return p.inUse }

// MaxInUse reports the high-water mark of simultaneously allocated stacks.
func (p *StackPool) MaxInUse() int { return p.maxInUse }

// TotalStacks reports how many distinct stacks were ever created (the
// pool never returns memory to the system, like the kernel's zone).
func (p *StackPool) TotalStacks() int { return len(p.live) }

// Allocs and Frees report cumulative operation counts.
func (p *StackPool) Allocs() uint64 { return p.allocs }
func (p *StackPool) Frees() uint64  { return p.frees }

// AverageInUse reports the time-weighted mean number of allocated stacks
// since the pool was created — the statistic behind the paper's "the
// number of kernel stacks was, on average, 2.002".
func (p *StackPool) AverageInUse() float64 {
	p.census()
	if p.weightedTime == 0 {
		return float64(p.inUse)
	}
	return p.weightedSum / p.weightedTime
}

// setOwner is used by the kernel when attaching/detaching stacks.
func (s *Stack) SetOwner(o StackOwner) { s.owner = o }
