package machine

// TransferCosts holds the machine-dependent component costs of the
// control-transfer primitives for one (architecture, kernel style) pair.
// The DS3100 values come directly from the paper's Table 4; costs the
// paper does not itemize (exception entry/exit, attach/detach, the
// call_continuation trampoline) are derived from the register-file sizes
// in the CostModel.
type TransferCosts struct {
	// SyscallEntry and SyscallExit are the trap-in and trap-out costs for
	// a system call. A continuation-style kernel must eagerly save and
	// restore all callee-saved registers in a machine-dependent save area
	// (since a discarded stack can never restore them), which is why MK40
	// entry/exit is slightly dearer than MK32 (Table 4 discussion).
	SyscallEntry Cost
	SyscallExit  Cost

	// ExceptionEntry and ExceptionExit bracket exceptions, faults and
	// interrupts, which must preserve the full user register frame in
	// both kernel styles.
	ExceptionEntry Cost
	ExceptionExit  Cost

	// InterruptEntry and InterruptExit bracket a device interrupt taken on
	// the current processor's stack. The handler borrows whatever stack the
	// processor is using, so entry saves only the caller-saved registers
	// plus the trap frame and exit restores them; no stack is ever
	// allocated on this path.
	InterruptEntry Cost
	InterruptExit  Cost

	// StackHandoff moves the current kernel stack from the current thread
	// to a new thread without saving or restoring the register file.
	StackHandoff Cost

	// ContextSwitch performs a full register save and restore plus stack
	// switch; it is the process-model transfer primitive.
	ContextSwitch Cost

	// StackAttach initializes a free stack so that resuming the thread
	// runs thread_continue; StackDetach unlinks a stack from a thread.
	StackAttach Cost
	StackDetach Cost

	// CallContinuation resets the stack pointer to the stack base and
	// jumps to the continuation.
	CallContinuation Cost

	// AddressSpaceSwitch is the extra cost (TLB/segment work) when a
	// handoff or context switch crosses address spaces.
	AddressSpaceSwitch Cost

	// HandoffRegCopy is nonzero only under the Toshiba 5200 quirk: the
	// register block saved on the old kernel stack must be copied to the
	// new stack on every handoff.
	HandoffRegCopy Cost
}

// TransferCostsFor builds the component cost table for a machine model.
// continuations selects the MK40-style table (eager callee-saved register
// handling) versus the MK32/Mach 2.5 process-model table.
func TransferCostsFor(m *CostModel, continuations bool) TransferCosts {
	var t TransferCosts
	switch m.Arch {
	case ArchDS3100:
		if continuations {
			// Table 4, MK40 column.
			t.SyscallEntry = Cost{Instrs: 64, Loads: 7, Stores: 25}
			t.SyscallExit = Cost{Instrs: 35, Loads: 21, Stores: 1}
		} else {
			// Table 4, MK32 column.
			t.SyscallEntry = Cost{Instrs: 67, Loads: 8, Stores: 20}
			t.SyscallExit = Cost{Instrs: 24, Loads: 11, Stores: 1}
		}
		t.StackHandoff = Cost{Instrs: 83, Loads: 22, Stores: 18}
		t.ContextSwitch = Cost{Instrs: 250, Loads: 52, Stores: 27}
	case ArchToshiba5200:
		// The paper does not itemize 386 component costs; these follow
		// the DS3100 structure scaled to the 386's smaller register file,
		// with the RegsOnStack quirk charged separately per handoff.
		if continuations {
			t.SyscallEntry = Cost{Instrs: 58, Loads: 7, Stores: 16}
			t.SyscallExit = Cost{Instrs: 30, Loads: 12, Stores: 1}
		} else {
			t.SyscallEntry = Cost{Instrs: 60, Loads: 8, Stores: 13}
			t.SyscallExit = Cost{Instrs: 22, Loads: 8, Stores: 1}
		}
		t.StackHandoff = Cost{Instrs: 120, Loads: 30, Stores: 20}
		t.ContextSwitch = Cost{Instrs: 190, Loads: 40, Stores: 22}
		if continuations && m.RegsOnStack {
			// Copy the saved user register frame (plus trap-frame
			// bookkeeping) off the old stack and onto the new one.
			t.HandoffRegCopy = CopyWords(m.UserRegs + 8)
		}
	}

	// Exceptions and interrupts preserve the full user register frame in
	// every kernel style; model that as the syscall cost plus stores
	// (entry) / loads (exit) for the registers a syscall would not save.
	extraRegs := uint64(m.UserRegs - m.CalleeSavedRegs)
	t.ExceptionEntry = t.SyscallEntry.Plus(Cost{Instrs: 2 * extraRegs, Stores: extraRegs})
	t.ExceptionExit = t.SyscallExit.Plus(Cost{Instrs: 2 * extraRegs, Loads: extraRegs})

	// A device interrupt saves only the caller-saved registers (the
	// interrupted context keeps its callee-saved set live in the register
	// file) plus a short vector-dispatch prologue, and runs on the current
	// stack in both kernel styles.
	t.InterruptEntry = Cost{Instrs: 24 + 2*extraRegs, Loads: 4, Stores: extraRegs}
	t.InterruptExit = Cost{Instrs: 18 + 2*extraRegs, Loads: extraRegs, Stores: 2}

	// Attach writes a synthetic frame (saved s-regs slot, return address,
	// argument) onto a fresh stack; detach unlinks and re-queues it.
	t.StackAttach = Cost{Instrs: 18, Loads: 2, Stores: 8}
	t.StackDetach = Cost{Instrs: 10, Loads: 3, Stores: 3}
	t.CallContinuation = Cost{Instrs: 8, Loads: 1, Stores: 1}
	t.AddressSpaceSwitch = Cost{Instrs: 22, Loads: 6, Stores: 2}
	return t
}
