package machine

import "testing"

func TestContextSaveArgs(t *testing.T) {
	var c Context
	c.SaveArgs(1, 2, 3, 4, 5, 6) // extras dropped, like real trap frames
	if c.Args != [4]uint64{1, 2, 3, 4} {
		t.Fatalf("Args = %v", c.Args)
	}
	c.SaveArgs(9)
	if c.Args != [4]uint64{9, 0, 0, 0} {
		t.Fatalf("Args after re-save = %v", c.Args)
	}
}

func TestAccumulatorTotalsAndSpans(t *testing.T) {
	clock := NewClock()
	m := NewCostModel(ArchDS3100)
	a := NewAccumulator(m, clock)

	a.Charge(Cost{Instrs: 100, Loads: 10, Stores: 5})
	a.BeginSpan()
	a.Charge(Cost{Instrs: 50})
	a.ChargeInstrs(25)

	if got := a.Span(); got != (Cost{Instrs: 75}) {
		t.Fatalf("Span = %v", got)
	}
	if got := a.Total(); got != (Cost{Instrs: 175, Loads: 10, Stores: 5}) {
		t.Fatalf("Total = %v", got)
	}
	if a.SpanMicros() <= 0 || a.TotalMicros() <= a.SpanMicros() {
		t.Fatalf("micros: span=%v total=%v", a.SpanMicros(), a.TotalMicros())
	}
}

func TestAccumulatorAdvancesClock(t *testing.T) {
	clock := NewClock()
	m := NewCostModel(ArchDS3100)
	a := NewAccumulator(m, clock)
	a.Charge(Cost{Instrs: 1667}) // 100 us on the DS3100
	if got := clock.Now().Micros(); got < 99.9 || got > 100.1 {
		t.Fatalf("clock advanced %v us, want 100", got)
	}

	a.AdvanceClock = false
	before := clock.Now()
	a.Charge(Cost{Instrs: 1000})
	if clock.Now() != before {
		t.Fatal("charge advanced the clock with AdvanceClock off")
	}
}

func TestBeginSpanReturnsPrevious(t *testing.T) {
	a := NewAccumulator(NewCostModel(ArchDS3100), NewClock())
	a.Charge(Cost{Instrs: 7})
	prev := a.BeginSpan()
	if prev != (Cost{Instrs: 7}) {
		t.Fatalf("BeginSpan returned %v", prev)
	}
	if !a.Span().IsZero() {
		t.Fatal("span not reset")
	}
}

func TestMDStateBytesMatchesTable5(t *testing.T) {
	if MDStateBytes != 206 {
		t.Fatalf("MDStateBytes = %d, want 206 (Table 5)", MDStateBytes)
	}
}
