// Package upcall implements the §4 generalizations: kernel-to-user
// upcalls in the style of the x-kernel and Scheduler Activations, and
// continuation-based asynchronous I/O.
//
// Upcalls keep a pool of threads blocked in the kernel, each with a
// default "return to user level" continuation. To perform an upcall the
// kernel replaces the blocked thread's continuation with one that
// transfers control out of the kernel to a specific handler at user
// level — no thread creation, no register restore of a trapped context.
//
// Asynchronous I/O works the same way in the other direction: a thread
// schedules an I/O and provides the kernel with a continuation to be
// called when the I/O completes; if the completion arrives while the
// thread is blocked waiting, the waiting continuation is replaced by the
// I/O's own continuation, so resumption lands directly in the completion
// code.
package upcall

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Handler is the user-level body of an upcall. It returns the user
// action to run (typically a CPU burst); the pool thread then returns to
// its kernel wait.
type Handler func() core.Action

// Pool is a set of kernel threads parked for upcalls.
type Pool struct {
	sys  *kern.System
	task *kern.Task

	contWait  *core.Continuation
	contEntry *core.Continuation

	idle     []*core.Thread
	handlers map[int]Handler

	// Upcalls counts dispatched upcalls; Overflows counts requests that
	// found no idle thread.
	Upcalls   uint64
	Overflows uint64
	Completed uint64
}

// upcallDispatchCost is the kernel work to claim a pool thread and swap
// its continuation.
var upcallDispatchCost = machine.Cost{Instrs: 45, Loads: 12, Stores: 10}

// NewPool creates n pool threads in task and parks them in the kernel.
func NewPool(sys *kern.System, task *kern.Task, n int) *Pool {
	p := &Pool{
		sys:      sys,
		task:     task,
		handlers: make(map[int]Handler),
	}
	// The default continuation: return to user level and re-enter the
	// wait (nothing happened; used for pool drain/shutdown paths).
	p.contWait = core.NewContinuation("upcall_pool_wait", func(e *core.Env) {
		sys.K.ThreadSyscallReturn(e, 0)
	})
	// The replacement continuation: transfer out of the kernel to the
	// registered user-level handler.
	p.contEntry = core.NewContinuation("upcall_entry", func(e *core.Env) {
		sys.K.ThreadSyscallReturn(e, 1)
	})
	for i := 0; i < n; i++ {
		th := task.NewThread(fmt.Sprintf("upcall-%d", i), p.program(), 25)
		sys.Start(th)
	}
	return p
}

// program is the pool thread's user program: park in the kernel; when
// resumed with an upcall pending, run its handler, then park again.
func (p *Pool) program() core.UserProgram {
	return core.ProgramFunc(func(e *core.Env, t *core.Thread) core.Action {
		if h, ok := p.handlers[t.ID]; ok {
			delete(p.handlers, t.ID)
			act := h()
			p.Completed++
			return act
		}
		return core.Syscall("upcall_wait", func(e *core.Env) {
			th := e.Cur()
			th.State = core.StateWaiting
			th.WaitLabel = "upcall: parked"
			p.idle = append(p.idle, th)
			p.sys.K.Block(e, stats.BlockInternal, p.contWait, func(e2 *core.Env) {
				e2.K.ThreadSyscallReturn(e2, 0)
			}, 128, "upcall-wait")
		})
	})
}

// Idle reports how many pool threads are parked.
func (p *Pool) Idle() int { return len(p.idle) }

// Upcall dispatches h on a parked pool thread by replacing its default
// continuation with the handler entry. It returns false when the pool is
// exhausted. Callable from events and kernel paths.
func (p *Pool) Upcall(h Handler) bool {
	for len(p.idle) > 0 {
		th := p.idle[0]
		p.idle = p.idle[1:]
		if th.State != core.StateWaiting {
			continue
		}
		p.sys.K.Acct.Charge(upcallDispatchCost)
		p.handlers[th.ID] = h
		// The continuation replacement: the thread will resume at the
		// upcall entry, not its generic wait return.
		if p.sys.K.UseContinuations {
			th.Cont = p.contEntry
		}
		p.Upcalls++
		p.sys.K.Setrun(th)
		return true
	}
	p.Overflows++
	return false
}

// ---------------------------------------------------------------------
// Asynchronous I/O.
// ---------------------------------------------------------------------

// completion is one finished I/O whose continuation awaits its thread.
type completion struct {
	cont *core.Continuation
}

// AsyncIO provides continuation-based asynchronous I/O: Submit schedules
// the operation and returns immediately; the supplied continuation runs
// when the I/O completes and the thread collects it.
type AsyncIO struct {
	sys *kern.System

	contWait *core.Continuation

	// ready holds completed I/O continuations per thread.
	ready map[int][]completion
	// inflight counts submitted-but-incomplete operations per thread.
	inflight map[int]int

	Submitted uint64
	Completed uint64
	// Replacements counts wait-continuations replaced in place by a
	// completion continuation.
	Replacements uint64
}

var submitCost = machine.Cost{Instrs: 60, Loads: 15, Stores: 12}

// NewAsyncIO installs the subsystem.
func NewAsyncIO(sys *kern.System) *AsyncIO {
	a := &AsyncIO{
		sys:      sys,
		ready:    make(map[int][]completion),
		inflight: make(map[int]int),
	}
	a.contWait = core.NewContinuation("aio_wait_continue", func(e *core.Env) {
		a.collect(e)
	})
	return a
}

// Submit schedules an asynchronous I/O of the given latency from inside
// a syscall handler and returns (the caller keeps running — that is the
// point). oncomplete is the continuation the kernel calls when the I/O
// completes and the thread waits for it.
func (a *AsyncIO) Submit(e *core.Env, latency machine.Duration, oncomplete *core.Continuation) {
	if oncomplete == nil {
		panic("upcall: async I/O without a completion continuation")
	}
	t := e.Cur()
	e.Charge(submitCost)
	a.Submitted++
	a.inflight[t.ID]++
	a.sys.K.Clock.After(latency, "aio-complete", func() {
		a.complete(t, oncomplete)
	})
}

// complete runs at I/O completion (interrupt context).
func (a *AsyncIO) complete(t *core.Thread, oncomplete *core.Continuation) {
	a.Completed++
	a.inflight[t.ID]--
	a.ready[t.ID] = append(a.ready[t.ID], completion{cont: oncomplete})
	if t.BlockedWith(a.contWait) {
		// Replace the generic wait continuation with the I/O's own:
		// resumption transfers straight into the completion code.
		a.ready[t.ID] = a.ready[t.ID][:len(a.ready[t.ID])-1]
		t.Cont = oncomplete
		a.Replacements++
		a.sys.K.Setrun(t)
		return
	}
	if t.State == core.StateWaiting {
		// Blocked elsewhere (process model or another continuation):
		// just wake it; collect will find the completion.
		a.sys.K.Setrun(t)
	}
}

// Wait blocks the current thread until an I/O completes, then transfers
// to that I/O's continuation. Terminal.
func (a *AsyncIO) Wait(e *core.Env) {
	t := e.Cur()
	if len(a.ready[t.ID]) > 0 {
		a.collect(e)
	}
	if a.inflight[t.ID] == 0 {
		panic(fmt.Sprintf("upcall: %v waits with no I/O in flight", t))
	}
	t.State = core.StateWaiting
	t.WaitLabel = "aio: wait"
	a.sys.K.Block(e, stats.BlockReceive, a.contWait, func(e2 *core.Env) {
		a.collect(e2)
	}, 160, "aio-wait")
}

// collect transfers to the next ready completion. Terminal.
func (a *AsyncIO) collect(e *core.Env) {
	t := e.Cur()
	q := a.ready[t.ID]
	if len(q) == 0 {
		// Spurious wake: wait again.
		a.Wait(e)
	}
	c := q[0]
	a.ready[t.ID] = q[1:]
	a.sys.K.CallContinuation(e, c.cont)
}
