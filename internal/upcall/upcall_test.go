package upcall_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/upcall"
)

func newSys(t *testing.T, flavor kern.Flavor) *kern.System {
	t.Helper()
	return kern.New(kern.Config{Flavor: flavor, Arch: machine.ArchDS3100, DisableCallout: true})
}

func TestPoolParksStackless(t *testing.T) {
	sys := newSys(t, kern.MK40)
	task := sys.NewTask("svc")
	pool := upcall.NewPool(sys, task, 4)
	sys.Run(0)
	if pool.Idle() != 4 {
		t.Fatalf("idle = %d", pool.Idle())
	}
	// Parked pool threads are continuation-blocked: no kernel stacks.
	if sys.K.Stacks.InUse() != 0 {
		t.Fatalf("stacks in use = %d", sys.K.Stacks.InUse())
	}
}

func TestUpcallDispatch(t *testing.T) {
	sys := newSys(t, kern.MK40)
	task := sys.NewTask("svc")
	pool := upcall.NewPool(sys, task, 2)
	sys.Run(0)

	var ran int
	ok := pool.Upcall(func() core.Action {
		ran++
		return core.RunFor(1000)
	})
	if !ok {
		t.Fatal("Upcall found no idle thread")
	}
	sys.Run(0)
	if ran != 1 || pool.Completed != 1 {
		t.Fatalf("ran=%d completed=%d", ran, pool.Completed)
	}
	// The thread re-parks after the upcall.
	if pool.Idle() != 2 {
		t.Fatalf("idle after upcall = %d", pool.Idle())
	}
}

func TestUpcallOverflow(t *testing.T) {
	sys := newSys(t, kern.MK40)
	task := sys.NewTask("svc")
	pool := upcall.NewPool(sys, task, 1)
	sys.Run(0)
	if !pool.Upcall(func() core.Action { return core.RunFor(10) }) {
		t.Fatal("first upcall failed")
	}
	// The single thread is claimed; a second upcall before it re-parks
	// overflows.
	if pool.Upcall(func() core.Action { return core.RunFor(10) }) {
		t.Fatal("second upcall should overflow")
	}
	if pool.Overflows != 1 {
		t.Fatalf("Overflows = %d", pool.Overflows)
	}
	sys.Run(0)
}

func TestUpcallBurst(t *testing.T) {
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32} {
		sys := newSys(t, flavor)
		task := sys.NewTask("svc")
		pool := upcall.NewPool(sys, task, 3)
		sys.Run(0)
		total := 0
		for round := 0; round < 5; round++ {
			for i := 0; i < 3; i++ {
				if !pool.Upcall(func() core.Action {
					total++
					return core.RunFor(100)
				}) {
					t.Fatalf("%v: upcall %d/%d failed", flavor, round, i)
				}
			}
			sys.Run(0)
		}
		if total != 15 || pool.Completed != 15 {
			t.Fatalf("%v: total=%d completed=%d", flavor, total, pool.Completed)
		}
	}
}

func TestAsyncIOCompletionContinuation(t *testing.T) {
	sys := newSys(t, kern.MK40)
	aio := upcall.NewAsyncIO(sys)
	task := sys.NewTask("app")

	var completed []int
	mkCont := func(n int) *core.Continuation {
		return core.NewContinuation("io_done", func(e *core.Env) {
			completed = append(completed, n)
			e.K.ThreadSyscallReturn(e, uint64(n))
		})
	}

	step := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		step++
		switch step {
		case 1:
			// Submit two I/Os, keep computing, then wait for both.
			return core.Syscall("aio_submit", func(e *core.Env) {
				aio.Submit(e, 1000*1000, mkCont(1))
				aio.Submit(e, 2000*1000, mkCont(2))
				e.K.ThreadSyscallReturn(e, 0)
			})
		case 2:
			return core.RunFor(5000) // overlap compute with I/O
		case 3, 4:
			return core.Syscall("aio_wait", func(e *core.Env) { aio.Wait(e) })
		default:
			return core.Exit()
		}
	})
	sys.Start(task.NewThread("app", prog, 10))
	sys.Run(0)

	if len(completed) != 2 || completed[0] != 1 || completed[1] != 2 {
		t.Fatalf("completed = %v", completed)
	}
	if aio.Submitted != 2 || aio.Completed != 2 {
		t.Fatalf("submitted=%d completed=%d", aio.Submitted, aio.Completed)
	}
	// At least one completion should have replaced the wait continuation
	// in place (the thread was blocked in aio_wait when the disk event
	// fired).
	if aio.Replacements == 0 {
		t.Fatal("no continuation replacement observed")
	}
}

func TestAsyncIOWaitWithoutSubmitPanics(t *testing.T) {
	sys := newSys(t, kern.MK40)
	aio := upcall.NewAsyncIO(sys)
	task := sys.NewTask("app")
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		return core.Syscall("aio_wait", func(e *core.Env) { aio.Wait(e) })
	})
	sys.Start(task.NewThread("app", prog, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("wait without inflight I/O did not panic")
		}
	}()
	sys.Run(0)
}

func TestAsyncIOProcessModel(t *testing.T) {
	// The same program works on a process-model kernel (completions are
	// collected through the preserved-stack resume).
	sys := newSys(t, kern.MK32)
	aio := upcall.NewAsyncIO(sys)
	task := sys.NewTask("app")
	var done bool
	cont := core.NewContinuation("io_done_pm", func(e *core.Env) {
		done = true
		e.K.ThreadSyscallReturn(e, 0)
	})
	step := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		step++
		switch step {
		case 1:
			return core.Syscall("aio", func(e *core.Env) {
				aio.Submit(e, 500*1000, cont)
				aio.Wait(e)
			})
		default:
			return core.Exit()
		}
	})
	sys.Start(task.NewThread("app", prog, 10))
	sys.Run(0)
	if !done {
		t.Fatal("completion continuation never ran")
	}
	if aio.Replacements != 0 {
		t.Fatal("process-model kernel cannot replace continuations")
	}
}
