package fault_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
)

func TestParseSpec(t *testing.T) {
	spec, err := fault.ParseSpec("devfail=0.05,devslow=0.1:2ms,drop=0.1,dup=0.02,delay=0.05:1ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.DeviceFailProb != 0.05 || spec.DropProb != 0.1 || spec.DupProb != 0.02 {
		t.Fatalf("probabilities wrong: %+v", spec)
	}
	if spec.DeviceSlowExtra != machine.Duration(2*1000*1000) {
		t.Fatalf("devslow extra = %v, want 2ms", spec.DeviceSlowExtra)
	}
	if spec.DelayExtra != machine.Duration(1*1000*1000) {
		t.Fatalf("delay extra = %v, want 1ms", spec.DelayExtra)
	}
	if spec.Zero() {
		t.Fatalf("spec should not be zero")
	}

	if s, err := fault.ParseSpec(""); err != nil || !s.Zero() {
		t.Fatalf("empty spec should parse to zero, got %+v err %v", s, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-1", "nope=0.5", "devslow=0.5:xyz"} {
		if _, err := fault.ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestParseFlag(t *testing.T) {
	seed, spec, err := fault.ParseFlag("42:drop=0.1,devslow=0.05:3ms")
	if err != nil {
		t.Fatalf("ParseFlag: %v", err)
	}
	if seed != 42 {
		t.Fatalf("seed = %d, want 42", seed)
	}
	if spec.DropProb != 0.1 || spec.DeviceSlowExtra != machine.Duration(3*1000*1000) {
		t.Fatalf("spec wrong: %+v", spec)
	}
	for _, bad := range []string{"", "42", "x:drop=0.1", "42:drop=9"} {
		if _, _, err := fault.ParseFlag(bad); err == nil {
			t.Errorf("ParseFlag(%q) should fail", bad)
		}
	}
}

// TestDeterminism pins that the same seed+spec yields the identical fault
// sequence, and a different seed yields a different one.
func TestDeterminism(t *testing.T) {
	spec, err := fault.ParseSpec("drop=0.3,dup=0.1,devfail=0.2,delay=0.1:1ms")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64) []bool {
		p := fault.New(seed, spec)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, p.DropPacket(), p.DupPacket(),
				p.DeviceFail("sd0"), p.DelayPacket() != 0)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical sequences")
	}
}

// TestNilPlan pins that a nil plan injects nothing (call sites carry no
// guards).
func TestNilPlan(t *testing.T) {
	var p *fault.Plan
	if p.DeviceFail("sd0") || p.DropPacket() || p.DupPacket() {
		t.Fatalf("nil plan injected a fault")
	}
	if p.DeviceDelay("sd0") != 0 || p.DelayPacket() != 0 {
		t.Fatalf("nil plan injected latency")
	}
	if p.Injected() != 0 {
		t.Fatalf("nil plan counted injections")
	}
}

// TestRates sanity-checks that injection frequencies track the configured
// probabilities and that the stats counters match what was reported.
func TestRates(t *testing.T) {
	spec := fault.Spec{DropProb: 0.10}
	p := fault.New(99, spec)
	const n = 20000
	var drops uint64
	for i := 0; i < n; i++ {
		if p.DropPacket() {
			drops++
		}
	}
	if p.Stats.Drops != drops {
		t.Fatalf("stats.Drops = %d, reported %d", p.Stats.Drops, drops)
	}
	rate := float64(drops) / n
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("drop rate %.3f far from configured 0.10", rate)
	}
	if p.Injected() != drops {
		t.Fatalf("Injected() = %d, want %d", p.Injected(), drops)
	}
}

func TestParseCrash(t *testing.T) {
	c, err := fault.ParseCrash("1@40ms:reboot+80ms")
	if err != nil {
		t.Fatalf("ParseCrash: %v", err)
	}
	if c.Machine != 1 || c.At != machine.Time(40*1000*1000) || c.RebootAfter != machine.Duration(80*1000*1000) {
		t.Fatalf("crash = %+v", c)
	}

	// No reboot clause: the machine stays down.
	c, err = fault.ParseCrash("2@100us")
	if err != nil {
		t.Fatalf("ParseCrash: %v", err)
	}
	if c.Machine != 2 || c.At != machine.Time(100*1000) || c.RebootAfter != 0 {
		t.Fatalf("crash = %+v", c)
	}

	for _, bad := range []string{"", "1", "1@", "@40ms", "x@40ms", "1@xyz", "1@40ms:reboot", "1@40ms:reboot+", "1@40ms:reboot+xyz", "1@40ms:later+5ms", "-1@40ms"} {
		if _, err := fault.ParseCrash(bad); err == nil {
			t.Errorf("ParseCrash(%q) should fail", bad)
		}
	}
}

func TestParseSpecCrashRule(t *testing.T) {
	spec, err := fault.ParseSpec("drop=0.1,crash=0@10ms:reboot+5ms,crash=3@20ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(spec.Crashes) != 2 {
		t.Fatalf("crashes = %+v", spec.Crashes)
	}
	if spec.Crashes[0].Machine != 0 || spec.Crashes[0].RebootAfter != machine.Duration(5*1000*1000) {
		t.Fatalf("crash[0] = %+v", spec.Crashes[0])
	}
	if spec.Crashes[1].Machine != 3 || spec.Crashes[1].RebootAfter != 0 {
		t.Fatalf("crash[1] = %+v", spec.Crashes[1])
	}
	if spec.Zero() {
		t.Fatal("spec with crashes must not be zero")
	}
	if s, err := fault.ParseSpec("crash=0@10ms"); err != nil || s.Zero() {
		t.Fatalf("crash-only spec: %+v err %v", s, err)
	}
	if _, err := fault.ParseSpec("crash=bogus"); err == nil {
		t.Error("bad crash rule should fail")
	}
}
