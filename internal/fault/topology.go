// Topology faults: scheduled, deterministic degradations of the network
// fabric and of whole machines, as opposed to the per-packet
// probabilistic rules a Plan draws. A partition cuts every link between
// two machine groups for a window; a link fault degrades exactly one
// direction of one machine pair (packets the other way still flow, the
// classic gray-failure asymmetry); a gray fault multiplies one machine's
// cost-model time so it computes slower without being down.
//
// A Topology is immutable after construction and every query is a pure
// function of (machine indices, simulated time) — no generator state, no
// counters — so a single Topology is safely shared by every machine of a
// cluster under the parallel horizon-round driver.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
)

// Partition is one scheduled bidirectional split: for the window
// [At, At+Dur) no packet crosses between group A and group B (either
// direction). Machines in neither group are unaffected.
type Partition struct {
	A, B []int
	At   machine.Duration
	Dur  machine.Duration
}

// LinkMode discriminates what an asymmetric link fault does to the
// packets of its one degraded direction.
type LinkMode int

const (
	// LinkDrop discards every Src->Dst packet in the window.
	LinkDrop LinkMode = iota
	// LinkDelay holds every Src->Dst packet back by Extra.
	LinkDelay
)

func (m LinkMode) String() string {
	if m == LinkDelay {
		return "delay"
	}
	return "drop"
}

// LinkFault is one scheduled one-way degradation: packets from machine
// Src to machine Dst are dropped or delayed for [At, At+Dur); traffic
// Dst->Src is untouched.
type LinkFault struct {
	Src, Dst int
	Mode     LinkMode
	// Extra is the added one-way latency for LinkDelay.
	Extra machine.Duration
	At    machine.Duration
	Dur   machine.Duration
}

// Gray is one scheduled machine-wide slowdown: for [At, At+Dur) every
// cost the machine charges takes Factor times as long on the simulated
// clock. The machine is not down — it answers, just late — which is what
// makes gray failures harder on membership layers than crashes.
type Gray struct {
	Machine int
	Factor  float64
	At      machine.Duration
	Dur     machine.Duration
}

// Burst is one scheduled offered-load surge: for [At, At+Dur) open-loop
// load generators multiply their arrival rate by Factor (think gaps
// divide by it). It is the overload trigger — a demand-side fault,
// where gray/link are supply-side — and like them it is a certainty
// with an explicit window, touching no random stream.
type Burst struct {
	Factor float64
	At     machine.Duration
	Dur    machine.Duration
}

// inWindow reports whether now falls inside [at, at+dur).
func inWindow(now machine.Time, at, dur machine.Duration) bool {
	t := machine.Time(at)
	return now >= t && now-t < machine.Time(dur)
}

// Topology is the compiled schedule of every topology fault in a spec,
// shared read-only by all machines of a cluster.
type Topology struct {
	Partitions []Partition
	Links      []LinkFault
	Grays      []Gray
	Bursts     []Burst
}

// NewTopology compiles a spec's topology rules; nil when the spec has
// none, so callers can gate all enforcement on a nil check.
func NewTopology(spec Spec) *Topology {
	if len(spec.Partitions) == 0 && len(spec.Links) == 0 && len(spec.Grays) == 0 &&
		len(spec.Bursts) == 0 {
		return nil
	}
	return &Topology{
		Partitions: spec.Partitions,
		Links:      spec.Links,
		Grays:      spec.Grays,
		Bursts:     spec.Bursts,
	}
}

// splits reports whether a partition separates machines a and b (one in
// each group, either way around).
func (p *Partition) splits(a, b int) bool {
	return (contains(p.A, a) && contains(p.B, b)) ||
		(contains(p.B, a) && contains(p.A, b))
}

func contains(s []int, m int) bool {
	for _, v := range s {
		if v == m {
			return true
		}
	}
	return false
}

// CutAt reports whether a packet transmitted from machine src to machine
// dst at time now is severed: inside a partition window splitting the
// two, or inside a drop-mode link window for exactly that direction.
// Nil-safe.
func (t *Topology) CutAt(src, dst int, now machine.Time) bool {
	if t == nil {
		return false
	}
	for i := range t.Partitions {
		p := &t.Partitions[i]
		if inWindow(now, p.At, p.Dur) && p.splits(src, dst) {
			return true
		}
	}
	for i := range t.Links {
		l := &t.Links[i]
		if l.Mode == LinkDrop && l.Src == src && l.Dst == dst && inWindow(now, l.At, l.Dur) {
			return true
		}
	}
	return false
}

// ExtraDelay returns the added one-way latency for a src->dst packet at
// time now (delay-mode link faults; several stack). Nil-safe.
func (t *Topology) ExtraDelay(src, dst int, now machine.Time) machine.Duration {
	if t == nil {
		return 0
	}
	var extra machine.Duration
	for i := range t.Links {
		l := &t.Links[i]
		if l.Mode == LinkDelay && l.Src == src && l.Dst == dst && inWindow(now, l.At, l.Dur) {
			extra += l.Extra
		}
	}
	return extra
}

// Slowdown returns machine m's gray time multiplier at time now (1 when
// healthy; several windows multiply). Nil-safe.
func (t *Topology) Slowdown(m int, now machine.Time) float64 {
	if t == nil {
		return 1
	}
	f := 1.0
	for i := range t.Grays {
		g := &t.Grays[i]
		if g.Machine == m && inWindow(now, g.At, g.Dur) {
			f *= g.Factor
		}
	}
	return f
}

// BurstAt returns the offered-load multiplier at time now (1 when no
// burst window is active; overlapping windows multiply). Nil-safe.
func (t *Topology) BurstAt(now machine.Time) float64 {
	if t == nil {
		return 1
	}
	f := 1.0
	for i := range t.Bursts {
		b := &t.Bursts[i]
		if inWindow(now, b.At, b.Dur) {
			f *= b.Factor
		}
	}
	return f
}

// HasGray reports whether any gray window targets machine m — the
// installer only pays the per-charge multiplier hook on machines that
// need it.
func (t *Topology) HasGray(m int) bool {
	if t == nil {
		return false
	}
	for i := range t.Grays {
		if t.Grays[i].Machine == m {
			return true
		}
	}
	return false
}

// Windows renders the schedule, one line per fault in spec order — the
// report's static nemesis timeline. Deterministic (no map iteration).
func (t *Topology) Windows() []string {
	if t == nil {
		return nil
	}
	out := make([]string, 0, len(t.Partitions)+len(t.Links)+len(t.Grays))
	for _, p := range t.Partitions {
		out = append(out, fmt.Sprintf("partition %s | %s at %s for %s",
			groupStr(p.A), groupStr(p.B), fmtDur(p.At), fmtDur(p.Dur)))
	}
	for _, l := range t.Links {
		s := fmt.Sprintf("link %d->%d %v", l.Src, l.Dst, l.Mode)
		if l.Mode == LinkDelay {
			s += " +" + fmtDur(l.Extra)
		}
		out = append(out, fmt.Sprintf("%s at %s for %s", s, fmtDur(l.At), fmtDur(l.Dur)))
	}
	for _, g := range t.Grays {
		out = append(out, fmt.Sprintf("gray machine %d x%g at %s for %s",
			g.Machine, g.Factor, fmtDur(g.At), fmtDur(g.Dur)))
	}
	for _, b := range t.Bursts {
		out = append(out, fmt.Sprintf("burst x%g at %s for %s",
			b.Factor, fmtDur(b.At), fmtDur(b.Dur)))
	}
	return out
}

// groupStr renders a machine group as dot-separated indices in ascending
// order (the spec grammar's own shape).
func groupStr(g []int) string {
	s := append([]int(nil), g...)
	sort.Ints(s)
	parts := make([]string, len(s))
	for i, m := range s {
		parts[i] = fmt.Sprint(m)
	}
	return strings.Join(parts, ".")
}

// fmtDur renders a duration compactly in ms or us, whichever is exact.
func fmtDur(d machine.Duration) string {
	if d%1e6 == 0 {
		return fmt.Sprintf("%dms", d/1e6)
	}
	return fmt.Sprintf("%dus", d/1e3)
}
