// Package fault provides seeded, deterministic fault injection for the
// simulated machines: device request failures and latency spikes, and
// NIC packet drop, duplication and delay (reordering). A Plan is a rule
// set plus its own SplitMix64 generator, so a given (seed, spec) pair
// produces the same fault sequence on every run — the property the CI
// determinism smoke diffs for.
//
// The plan is purely advisory: subsystems consult it at well-defined
// points (a device starting or completing a request, a NIC putting a
// packet on the wire) and count what they injected. All methods are safe
// on a nil *Plan and report "no fault", so call sites need no guards.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
)

// Spec is the parsed rule set of a fault plan. Probabilities are in
// [0, 1]; zero disables a rule.
type Spec struct {
	// DeviceFailProb is the probability that a fault-eligible device
	// request completes with DevIOError instead of data.
	DeviceFailProb float64
	// DeviceSlowProb and DeviceSlowExtra inject latency spikes: with the
	// given probability a request's service time grows by the extra.
	DeviceSlowProb  float64
	DeviceSlowExtra machine.Duration
	// DropProb is the probability a transmitted packet vanishes on the
	// wire.
	DropProb float64
	// DupProb is the probability a transmitted packet arrives twice.
	DupProb float64
	// DelayProb and DelayExtra hold a packet back on the wire, letting a
	// later transmission overtake it (reordering).
	DelayProb  float64
	DelayExtra machine.Duration

	// Crashes lists whole-machine crash events. Unlike the probabilistic
	// rules above, a crash is a scheduled certainty: machine M halts at
	// simulated offset At and (optionally) warm-reboots RebootAfter later.
	// The machine index is interpreted by the workload that boots the
	// cluster, so one spec string can describe a multi-machine plan.
	Crashes []Crash
}

// Crash is one scheduled whole-machine failure.
type Crash struct {
	// Machine is the cluster machine index that dies.
	Machine int
	// At is the simulated time offset of the crash.
	At machine.Duration
	// RebootAfter is the downtime before the warm reboot; zero means the
	// machine stays dead for the rest of the run.
	RebootAfter machine.Duration
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	return s.DeviceFailProb == 0 && s.DeviceSlowProb == 0 &&
		s.DropProb == 0 && s.DupProb == 0 && s.DelayProb == 0 &&
		len(s.Crashes) == 0
}

// ParseSpec parses a comma-separated rule list:
//
//	devfail=0.05,devslow=0.1:2ms,drop=0.1,dup=0.02,delay=0.05:1ms
//
// Rules with a duration component (devslow, delay) take "prob:duration",
// where the duration uses Go syntax ("2ms", "400us"). Omitted durations
// default to 2ms.
//
// The crash rule is scheduled, not probabilistic: "crash=M@T" kills
// machine M at offset T, and "crash=M@T:reboot+N" warm-reboots it N
// later, e.g. crash=1@40ms:reboot+80ms. The rule may repeat to crash
// several machines (or the same machine again after its reboot).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, rule := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(rule), "=")
		if !ok {
			return spec, fmt.Errorf("fault: rule %q is not key=value", rule)
		}
		if key == "crash" {
			c, err := ParseCrash(val)
			if err != nil {
				return spec, err
			}
			spec.Crashes = append(spec.Crashes, c)
			continue
		}
		probPart, durPart, hasDur := strings.Cut(val, ":")
		prob, err := strconv.ParseFloat(probPart, 64)
		if err != nil || prob < 0 || prob > 1 {
			return spec, fmt.Errorf("fault: rule %q needs a probability in [0,1]", rule)
		}
		extra := machine.Duration(2 * 1000 * 1000) // 2 ms default
		if hasDur {
			d, err := time.ParseDuration(durPart)
			if err != nil || d < 0 {
				return spec, fmt.Errorf("fault: rule %q has a bad duration", rule)
			}
			extra = machine.Duration(d.Nanoseconds())
		}
		switch key {
		case "devfail":
			spec.DeviceFailProb = prob
		case "devslow":
			spec.DeviceSlowProb = prob
			spec.DeviceSlowExtra = extra
		case "drop":
			spec.DropProb = prob
		case "dup":
			spec.DupProb = prob
		case "delay":
			spec.DelayProb = prob
			spec.DelayExtra = extra
		default:
			return spec, fmt.Errorf("fault: unknown rule %q", key)
		}
	}
	return spec, nil
}

// ParseCrash parses one crash rule value "M@T" or "M@T:reboot+N" (the
// machsim -crash flag uses the same grammar without the "crash=" key).
func ParseCrash(val string) (Crash, error) {
	var c Crash
	atPart, rebootPart, hasReboot := strings.Cut(val, ":")
	mPart, tPart, ok := strings.Cut(atPart, "@")
	if !ok {
		return c, fmt.Errorf("fault: crash rule %q wants M@T[:reboot+N]", val)
	}
	m, err := strconv.Atoi(strings.TrimSpace(mPart))
	if err != nil || m < 0 {
		return c, fmt.Errorf("fault: crash rule %q has a bad machine index", val)
	}
	at, err := time.ParseDuration(tPart)
	if err != nil || at <= 0 {
		return c, fmt.Errorf("fault: crash rule %q has a bad crash time", val)
	}
	c.Machine = m
	c.At = machine.Duration(at.Nanoseconds())
	if hasReboot {
		nPart, okR := strings.CutPrefix(rebootPart, "reboot+")
		if !okR {
			return c, fmt.Errorf("fault: crash rule %q wants reboot+N after the colon", val)
		}
		n, err := time.ParseDuration(nPart)
		if err != nil || n <= 0 {
			return c, fmt.Errorf("fault: crash rule %q has a bad reboot delay", val)
		}
		c.RebootAfter = machine.Duration(n.Nanoseconds())
	}
	return c, nil
}

// ParseFlag parses the machsim -faults argument "seed:spec", e.g.
// "42:drop=0.1,dup=0.02". The seed is decimal; the spec follows the
// first colon (durations inside the spec may themselves contain colons).
func ParseFlag(s string) (uint64, Spec, error) {
	seedPart, specPart, ok := strings.Cut(s, ":")
	if !ok {
		return 0, Spec{}, fmt.Errorf("fault: -faults wants seed:spec, got %q", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedPart), 10, 64)
	if err != nil {
		return 0, Spec{}, fmt.Errorf("fault: bad seed in %q", s)
	}
	spec, err := ParseSpec(specPart)
	if err != nil {
		return 0, Spec{}, err
	}
	return seed, spec, nil
}

// Stats counts what a plan actually injected.
type Stats struct {
	DeviceFails     uint64 // requests forced to complete with an error
	DeviceSlowdowns uint64 // latency spikes added to requests
	Drops           uint64 // packets lost on the wire
	Dups            uint64 // packets delivered twice
	Delays          uint64 // packets held back (reordering)
}

// Plan is a seeded rule set. Each machine gets its own plan so the two
// kernels of a cluster draw from independent streams in a deterministic
// interleaving.
type Plan struct {
	Spec  Spec
	Stats Stats

	state uint64 // SplitMix64 generator state
}

// New creates a plan with its own generator.
func New(seed uint64, spec Spec) *Plan {
	return &Plan{Spec: spec, state: seed}
}

// next returns the next 64 random bits (SplitMix64).
func (p *Plan) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hit draws once and reports true with the given probability, quantized
// to basis points so the draw is integer-exact.
func (p *Plan) hit(prob float64) bool {
	bp := uint64(prob*10000 + 0.5)
	if bp == 0 {
		return false
	}
	return p.next()%10000 < bp
}

// DeviceFail reports whether the named device's current request should
// complete with an I/O error.
func (p *Plan) DeviceFail(dev string) bool {
	if p == nil || !p.hit(p.Spec.DeviceFailProb) {
		return false
	}
	p.Stats.DeviceFails++
	return true
}

// DeviceDelay returns extra service latency for the named device's
// current request (zero when no spike is injected).
func (p *Plan) DeviceDelay(dev string) machine.Duration {
	if p == nil || !p.hit(p.Spec.DeviceSlowProb) {
		return 0
	}
	p.Stats.DeviceSlowdowns++
	return p.Spec.DeviceSlowExtra
}

// DropPacket reports whether the packet being transmitted is lost.
func (p *Plan) DropPacket() bool {
	if p == nil || !p.hit(p.Spec.DropProb) {
		return false
	}
	p.Stats.Drops++
	return true
}

// DupPacket reports whether the packet being transmitted arrives twice.
func (p *Plan) DupPacket() bool {
	if p == nil || !p.hit(p.Spec.DupProb) {
		return false
	}
	p.Stats.Dups++
	return true
}

// DelayPacket returns extra wire latency for the packet being
// transmitted (zero when it travels on time).
func (p *Plan) DelayPacket() machine.Duration {
	if p == nil || !p.hit(p.Spec.DelayProb) {
		return 0
	}
	p.Stats.Delays++
	return p.Spec.DelayExtra
}

// Injected totals everything the plan injected, for reports.
func (p *Plan) Injected() uint64 {
	if p == nil {
		return 0
	}
	s := p.Stats
	return s.DeviceFails + s.DeviceSlowdowns + s.Drops + s.Dups + s.Delays
}

func (s Stats) String() string {
	return fmt.Sprintf("devfail=%d devslow=%d drop=%d dup=%d delay=%d",
		s.DeviceFails, s.DeviceSlowdowns, s.Drops, s.Dups, s.Delays)
}
