// Package fault provides seeded, deterministic fault injection for the
// simulated machines: device request failures and latency spikes, and
// NIC packet drop, duplication and delay (reordering). A Plan is a rule
// set plus its own SplitMix64 generator, so a given (seed, spec) pair
// produces the same fault sequence on every run — the property the CI
// determinism smoke diffs for.
//
// The plan is purely advisory: subsystems consult it at well-defined
// points (a device starting or completing a request, a NIC putting a
// packet on the wire) and count what they injected. All methods are safe
// on a nil *Plan and report "no fault", so call sites need no guards.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
)

// Spec is the parsed rule set of a fault plan. Probabilities are in
// [0, 1]; zero disables a rule.
type Spec struct {
	// DeviceFailProb is the probability that a fault-eligible device
	// request completes with DevIOError instead of data.
	DeviceFailProb float64
	// DeviceSlowProb and DeviceSlowExtra inject latency spikes: with the
	// given probability a request's service time grows by the extra.
	DeviceSlowProb  float64
	DeviceSlowExtra machine.Duration
	// DropProb is the probability a transmitted packet vanishes on the
	// wire.
	DropProb float64
	// DupProb is the probability a transmitted packet arrives twice.
	DupProb float64
	// DelayProb and DelayExtra hold a packet back on the wire, letting a
	// later transmission overtake it (reordering).
	DelayProb  float64
	DelayExtra machine.Duration

	// Crashes lists whole-machine crash events. Unlike the probabilistic
	// rules above, a crash is a scheduled certainty: machine M halts at
	// simulated offset At and (optionally) warm-reboots RebootAfter later.
	// The machine index is interpreted by the workload that boots the
	// cluster, so one spec string can describe a multi-machine plan.
	Crashes []Crash

	// Partitions, Links, Grays and Bursts are the scheduled topology
	// faults (see topology.go): bidirectional splits between machine
	// groups, asymmetric one-way link degradations, machine-wide
	// slowdowns, and offered-load surges. Like Crashes they are
	// certainties with explicit windows, not probabilistic draws, so a
	// spec carrying only topology rules keeps every machine's random
	// stream untouched.
	Partitions []Partition
	Links      []LinkFault
	Grays      []Gray
	Bursts     []Burst
}

// Crash is one scheduled whole-machine failure.
type Crash struct {
	// Machine is the cluster machine index that dies.
	Machine int
	// At is the simulated time offset of the crash.
	At machine.Duration
	// RebootAfter is the downtime before the warm reboot; zero means the
	// machine stays dead for the rest of the run.
	RebootAfter machine.Duration
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	return s.DeviceFailProb == 0 && s.DeviceSlowProb == 0 &&
		s.DropProb == 0 && s.DupProb == 0 && s.DelayProb == 0 &&
		len(s.Crashes) == 0 &&
		len(s.Partitions) == 0 && len(s.Links) == 0 && len(s.Grays) == 0 &&
		len(s.Bursts) == 0
}

// ParseSpec parses a comma-separated rule list:
//
//	devfail=0.05,devslow=0.1:2ms,drop=0.1,dup=0.02,delay=0.05:1ms
//
// Rules with a duration component (devslow, delay) take "prob:duration",
// where the duration uses Go syntax ("2ms", "400us"). Omitted durations
// default to 2ms.
//
// The scheduled (non-probabilistic) rules are certainties with explicit
// windows; each may repeat:
//
//	crash=M@T[:reboot+N]        kill machine M at T, warm-reboot N later
//	partition=A|B@T+dur         cut all links between machine groups A
//	                            and B (dot-separated indices, e.g.
//	                            partition=1|0.2.3@40ms+30ms)
//	link=S>D:drop@T+dur         drop every packet S->D in the window
//	link=S>D:delay:X@T+dur      delay every packet S->D by X
//	gray=M:F@T+dur              stretch machine M's compute time by
//	                            factor F (e.g. gray=1:8@40ms+30ms)
//	burst=F@T+dur               multiply open-loop offered load by
//	                            factor F — the overload trigger
//	                            (e.g. burst=4@30ms+30ms)
//
// Errors name the offending rule by index and text, and a probabilistic
// key may appear at most once (a repeated drop= is rejected, not
// silently overwritten).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	seen := make(map[string]bool)
	for i, rule := range strings.Split(s, ",") {
		rule = strings.TrimSpace(rule)
		fail := func(format string, args ...any) (Spec, error) {
			return Spec{}, fmt.Errorf("fault: rule %d (%q): %s", i, rule, fmt.Sprintf(format, args...))
		}
		key, val, ok := strings.Cut(rule, "=")
		if !ok {
			return fail("not key=value")
		}
		switch key {
		case "crash":
			c, err := ParseCrash(val)
			if err != nil {
				return fail("%s", strings.TrimPrefix(err.Error(), "fault: "))
			}
			spec.Crashes = append(spec.Crashes, c)
			continue
		case "partition":
			p, err := parsePartition(val)
			if err != nil {
				return fail("%v", err)
			}
			spec.Partitions = append(spec.Partitions, p)
			continue
		case "link":
			l, err := parseLink(val)
			if err != nil {
				return fail("%v", err)
			}
			spec.Links = append(spec.Links, l)
			continue
		case "gray":
			g, err := parseGray(val)
			if err != nil {
				return fail("%v", err)
			}
			spec.Grays = append(spec.Grays, g)
			continue
		case "burst":
			b, err := parseBurst(val)
			if err != nil {
				return fail("%v", err)
			}
			spec.Bursts = append(spec.Bursts, b)
			continue
		}
		if seen[key] {
			return fail("duplicate %s rule (earlier value would be silently lost)", key)
		}
		seen[key] = true
		probPart, durPart, hasDur := strings.Cut(val, ":")
		prob, err := strconv.ParseFloat(probPart, 64)
		if err != nil || prob < 0 || prob > 1 {
			return fail("needs a probability in [0,1]")
		}
		extra := machine.Duration(2 * 1000 * 1000) // 2 ms default
		if hasDur {
			d, err := time.ParseDuration(durPart)
			if err != nil || d < 0 {
				return fail("bad duration %q", durPart)
			}
			extra = machine.Duration(d.Nanoseconds())
		}
		switch key {
		case "devfail":
			spec.DeviceFailProb = prob
		case "devslow":
			spec.DeviceSlowProb = prob
			spec.DeviceSlowExtra = extra
		case "drop":
			spec.DropProb = prob
		case "dup":
			spec.DupProb = prob
		case "delay":
			spec.DelayProb = prob
			spec.DelayExtra = extra
		default:
			return fail("unknown rule key %q", key)
		}
	}
	return spec, nil
}

// parseWindow parses the trailing "@T+dur" of a scheduled topology rule,
// returning the rule head (everything before the @) and the window.
func parseWindow(val string) (head string, at, dur machine.Duration, err error) {
	head, win, ok := strings.Cut(val, "@")
	if !ok {
		return "", 0, 0, fmt.Errorf("wants a @T+dur window")
	}
	atPart, durPart, ok := strings.Cut(win, "+")
	if !ok {
		return "", 0, 0, fmt.Errorf("window %q wants T+dur", win)
	}
	t, err := time.ParseDuration(atPart)
	if err != nil || t < 0 {
		return "", 0, 0, fmt.Errorf("bad window start %q", atPart)
	}
	d, err := time.ParseDuration(durPart)
	if err != nil || d <= 0 {
		return "", 0, 0, fmt.Errorf("bad window duration %q", durPart)
	}
	return head, machine.Duration(t.Nanoseconds()), machine.Duration(d.Nanoseconds()), nil
}

// parseGroup parses a dot-separated machine-index list ("0.2.3").
func parseGroup(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty machine group")
	}
	parts := strings.Split(s, ".")
	g := make([]int, 0, len(parts))
	for _, p := range parts {
		m, err := strconv.Atoi(p)
		if err != nil || m < 0 {
			return nil, fmt.Errorf("bad machine index %q", p)
		}
		g = append(g, m)
	}
	return g, nil
}

// parsePartition parses "A|B@T+dur" with A and B dot-separated machine
// groups.
func parsePartition(val string) (Partition, error) {
	var p Partition
	head, at, dur, err := parseWindow(val)
	if err != nil {
		return p, err
	}
	aPart, bPart, ok := strings.Cut(head, "|")
	if !ok {
		return p, fmt.Errorf("wants groups A|B before the window")
	}
	if p.A, err = parseGroup(aPart); err != nil {
		return p, err
	}
	if p.B, err = parseGroup(bPart); err != nil {
		return p, err
	}
	for _, m := range p.A {
		if contains(p.B, m) {
			return p, fmt.Errorf("machine %d is in both groups", m)
		}
	}
	p.At, p.Dur = at, dur
	return p, nil
}

// parseLink parses "S>D:drop@T+dur" or "S>D:delay:X@T+dur".
func parseLink(val string) (LinkFault, error) {
	var l LinkFault
	head, at, dur, err := parseWindow(val)
	if err != nil {
		return l, err
	}
	pair, modePart, ok := strings.Cut(head, ":")
	if !ok {
		return l, fmt.Errorf("wants S>D:drop or S>D:delay[:X]")
	}
	sPart, dPart, ok := strings.Cut(pair, ">")
	if !ok {
		return l, fmt.Errorf("wants a src>dst machine pair")
	}
	if l.Src, err = strconv.Atoi(sPart); err != nil || l.Src < 0 {
		return l, fmt.Errorf("bad src machine %q", sPart)
	}
	if l.Dst, err = strconv.Atoi(dPart); err != nil || l.Dst < 0 {
		return l, fmt.Errorf("bad dst machine %q", dPart)
	}
	if l.Src == l.Dst {
		return l, fmt.Errorf("src and dst are the same machine")
	}
	mode, extraPart, hasExtra := strings.Cut(modePart, ":")
	switch mode {
	case "drop":
		if hasExtra {
			return l, fmt.Errorf("drop takes no extra latency")
		}
		l.Mode = LinkDrop
	case "delay":
		l.Mode = LinkDelay
		l.Extra = machine.Duration(2 * 1000 * 1000) // 2 ms default
		if hasExtra {
			x, err := time.ParseDuration(extraPart)
			if err != nil || x <= 0 {
				return l, fmt.Errorf("bad delay %q", extraPart)
			}
			l.Extra = machine.Duration(x.Nanoseconds())
		}
	default:
		return l, fmt.Errorf("unknown link mode %q", mode)
	}
	l.At, l.Dur = at, dur
	return l, nil
}

// parseGray parses "M:F@T+dur".
func parseGray(val string) (Gray, error) {
	var g Gray
	head, at, dur, err := parseWindow(val)
	if err != nil {
		return g, err
	}
	mPart, fPart, ok := strings.Cut(head, ":")
	if !ok {
		return g, fmt.Errorf("wants M:factor before the window")
	}
	if g.Machine, err = strconv.Atoi(mPart); err != nil || g.Machine < 0 {
		return g, fmt.Errorf("bad machine index %q", mPart)
	}
	if g.Factor, err = strconv.ParseFloat(fPart, 64); err != nil || g.Factor <= 0 {
		return g, fmt.Errorf("bad slowdown factor %q", fPart)
	}
	g.At, g.Dur = at, dur
	return g, nil
}

// parseBurst parses "F@T+dur": an offered-load multiplier window. A
// factor of 1 would be a no-op and is rejected; factors below 1 are
// legal (a demand dip).
func parseBurst(val string) (Burst, error) {
	var b Burst
	head, at, dur, err := parseWindow(val)
	if err != nil {
		return b, err
	}
	if b.Factor, err = strconv.ParseFloat(head, 64); err != nil || b.Factor <= 0 || b.Factor == 1 {
		return b, fmt.Errorf("bad burst factor %q (want positive, != 1)", head)
	}
	b.At, b.Dur = at, dur
	return b, nil
}

// ParseCrash parses one crash rule value "M@T" or "M@T:reboot+N" (the
// machsim -crash flag uses the same grammar without the "crash=" key).
func ParseCrash(val string) (Crash, error) {
	var c Crash
	atPart, rebootPart, hasReboot := strings.Cut(val, ":")
	mPart, tPart, ok := strings.Cut(atPart, "@")
	if !ok {
		return c, fmt.Errorf("fault: crash rule %q wants M@T[:reboot+N]", val)
	}
	m, err := strconv.Atoi(strings.TrimSpace(mPart))
	if err != nil || m < 0 {
		return c, fmt.Errorf("fault: crash rule %q has a bad machine index", val)
	}
	at, err := time.ParseDuration(tPart)
	if err != nil || at <= 0 {
		return c, fmt.Errorf("fault: crash rule %q has a bad crash time", val)
	}
	c.Machine = m
	c.At = machine.Duration(at.Nanoseconds())
	if hasReboot {
		nPart, okR := strings.CutPrefix(rebootPart, "reboot+")
		if !okR {
			return c, fmt.Errorf("fault: crash rule %q wants reboot+N after the colon", val)
		}
		n, err := time.ParseDuration(nPart)
		if err != nil || n <= 0 {
			return c, fmt.Errorf("fault: crash rule %q has a bad reboot delay", val)
		}
		c.RebootAfter = machine.Duration(n.Nanoseconds())
	}
	return c, nil
}

// ParseFlag parses the machsim -faults argument "seed:spec", e.g.
// "42:drop=0.1,dup=0.02". The seed is decimal; the spec follows the
// first colon (durations inside the spec may themselves contain colons).
func ParseFlag(s string) (uint64, Spec, error) {
	seedPart, specPart, ok := strings.Cut(s, ":")
	if !ok {
		return 0, Spec{}, fmt.Errorf("fault: -faults wants seed:spec, got %q", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedPart), 10, 64)
	if err != nil {
		return 0, Spec{}, fmt.Errorf("fault: bad seed in %q", s)
	}
	spec, err := ParseSpec(specPart)
	if err != nil {
		return 0, Spec{}, err
	}
	return seed, spec, nil
}

// Stats counts what a plan actually injected.
type Stats struct {
	DeviceFails     uint64 // requests forced to complete with an error
	DeviceSlowdowns uint64 // latency spikes added to requests
	Drops           uint64 // packets lost on the wire
	Dups            uint64 // packets delivered twice
	Delays          uint64 // packets held back (reordering)
}

// Plan is a seeded rule set. Each machine gets its own plan so the two
// kernels of a cluster draw from independent streams in a deterministic
// interleaving.
type Plan struct {
	Spec  Spec
	Stats Stats

	state uint64 // SplitMix64 generator state
}

// New creates a plan with its own generator.
func New(seed uint64, spec Spec) *Plan {
	return &Plan{Spec: spec, state: seed}
}

// next returns the next 64 random bits (SplitMix64).
func (p *Plan) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hit draws once and reports true with the given probability, quantized
// to basis points so the draw is integer-exact.
func (p *Plan) hit(prob float64) bool {
	bp := uint64(prob*10000 + 0.5)
	if bp == 0 {
		return false
	}
	return p.next()%10000 < bp
}

// DeviceFail reports whether the named device's current request should
// complete with an I/O error.
func (p *Plan) DeviceFail(dev string) bool {
	if p == nil || !p.hit(p.Spec.DeviceFailProb) {
		return false
	}
	p.Stats.DeviceFails++
	return true
}

// DeviceDelay returns extra service latency for the named device's
// current request (zero when no spike is injected).
func (p *Plan) DeviceDelay(dev string) machine.Duration {
	if p == nil || !p.hit(p.Spec.DeviceSlowProb) {
		return 0
	}
	p.Stats.DeviceSlowdowns++
	return p.Spec.DeviceSlowExtra
}

// DropPacket reports whether the packet being transmitted is lost.
func (p *Plan) DropPacket() bool {
	if p == nil || !p.hit(p.Spec.DropProb) {
		return false
	}
	p.Stats.Drops++
	return true
}

// DupPacket reports whether the packet being transmitted arrives twice.
func (p *Plan) DupPacket() bool {
	if p == nil || !p.hit(p.Spec.DupProb) {
		return false
	}
	p.Stats.Dups++
	return true
}

// DelayPacket returns extra wire latency for the packet being
// transmitted (zero when it travels on time).
func (p *Plan) DelayPacket() machine.Duration {
	if p == nil || !p.hit(p.Spec.DelayProb) {
		return 0
	}
	p.Stats.Delays++
	return p.Spec.DelayExtra
}

// Injected totals everything the plan injected, for reports.
func (p *Plan) Injected() uint64 {
	if p == nil {
		return 0
	}
	s := p.Stats
	return s.DeviceFails + s.DeviceSlowdowns + s.Drops + s.Dups + s.Delays
}

func (s Stats) String() string {
	return fmt.Sprintf("devfail=%d devslow=%d drop=%d dup=%d delay=%d",
		s.DeviceFails, s.DeviceSlowdowns, s.Drops, s.Dups, s.Delays)
}
