package fault_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
)

const ms = machine.Duration(1000 * 1000)

// TestParseSpecTopology exercises the partition/link/gray grammar,
// table-driven over good and bad rules (satellite: errors must carry the
// rule index and text).
func TestParseSpecTopology(t *testing.T) {
	good := []struct {
		in    string
		check func(t *testing.T, s fault.Spec)
	}{
		{"partition=1|0.2.3@40ms+30ms", func(t *testing.T, s fault.Spec) {
			if len(s.Partitions) != 1 {
				t.Fatalf("partitions = %+v", s.Partitions)
			}
			p := s.Partitions[0]
			if len(p.A) != 1 || p.A[0] != 1 || len(p.B) != 3 || p.B[2] != 3 {
				t.Fatalf("groups = %+v", p)
			}
			if p.At != 40*ms || p.Dur != 30*ms {
				t.Fatalf("window = %+v", p)
			}
		}},
		{"link=2>1:drop@10ms+5ms", func(t *testing.T, s fault.Spec) {
			l := s.Links[0]
			if l.Src != 2 || l.Dst != 1 || l.Mode != fault.LinkDrop || l.At != 10*ms || l.Dur != 5*ms {
				t.Fatalf("link = %+v", l)
			}
		}},
		{"link=0>3:delay:4ms@10ms+5ms", func(t *testing.T, s fault.Spec) {
			l := s.Links[0]
			if l.Mode != fault.LinkDelay || l.Extra != 4*ms {
				t.Fatalf("link = %+v", l)
			}
		}},
		{"link=0>3:delay@10ms+5ms", func(t *testing.T, s fault.Spec) {
			if s.Links[0].Extra != 2*ms { // default
				t.Fatalf("link = %+v", s.Links[0])
			}
		}},
		{"gray=1:8@40ms+30ms", func(t *testing.T, s fault.Spec) {
			g := s.Grays[0]
			if g.Machine != 1 || g.Factor != 8 || g.At != 40*ms || g.Dur != 30*ms {
				t.Fatalf("gray = %+v", g)
			}
		}},
		{"burst=4@30ms+30ms", func(t *testing.T, s fault.Spec) {
			b := s.Bursts[0]
			if b.Factor != 4 || b.At != 30*ms || b.Dur != 30*ms {
				t.Fatalf("burst = %+v", b)
			}
		}},
		{"burst=0.5@30ms+30ms", func(t *testing.T, s fault.Spec) {
			if s.Bursts[0].Factor != 0.5 { // a demand dip is legal
				t.Fatalf("burst = %+v", s.Bursts[0])
			}
		}},
		{"drop=0.1,partition=0|1@1ms+1ms,gray=0:2@1ms+1ms,link=0>1:drop@1ms+1ms,burst=4@1ms+1ms", func(t *testing.T, s fault.Spec) {
			if s.DropProb != 0.1 || len(s.Partitions) != 1 || len(s.Grays) != 1 || len(s.Links) != 1 || len(s.Bursts) != 1 {
				t.Fatalf("mixed spec = %+v", s)
			}
		}},
	}
	for _, tc := range good {
		s, err := fault.ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if s.Zero() {
			t.Errorf("ParseSpec(%q) parsed to zero spec", tc.in)
		}
		tc.check(t, s)
	}

	bad := []string{
		"partition=1@40ms+30ms",      // no |
		"partition=|1@40ms+30ms",     // empty group
		"partition=a|1@40ms+30ms",    // bad index
		"partition=1|1.2@40ms+30ms",  // overlapping groups
		"partition=0|1@40ms",         // no +dur
		"partition=0|1",              // no window
		"partition=0|1@40ms+0ms",     // zero duration
		"link=1:drop@1ms+1ms",        // no > pair
		"link=1>1:drop@1ms+1ms",      // self link
		"link=1>2:flood@1ms+1ms",     // unknown mode
		"link=1>2:drop:3ms@1ms+1ms",  // drop takes no extra
		"link=1>2:delay:xyz@1ms+1ms", // bad delay
		"gray=1@40ms+30ms",           // no factor
		"gray=1:0@40ms+30ms",         // zero factor
		"gray=x:2@40ms+30ms",         // bad machine
		"burst=4",                    // no window
		"burst=@30ms+30ms",           // no factor
		"burst=x@30ms+30ms",          // bad factor
		"burst=0@30ms+30ms",          // zero factor
		"burst=1@30ms+30ms",          // factor 1 is a no-op
		"burst=-2@30ms+30ms",         // negative factor
	}
	for _, in := range bad {
		if _, err := fault.ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) should fail", in)
		}
	}
}

// TestParseSpecErrorsNameRule pins the satellite fix: errors carry the
// offending rule's index and text.
func TestParseSpecErrorsNameRule(t *testing.T) {
	_, err := fault.ParseSpec("drop=0.1,dup=2,delay=0.05")
	if err == nil {
		t.Fatal("bad probability should fail")
	}
	if !strings.Contains(err.Error(), "rule 1") || !strings.Contains(err.Error(), `"dup=2"`) {
		t.Fatalf("error %q does not name rule 1 (\"dup=2\")", err)
	}
}

// TestParseSpecDuplicateKeys pins the satellite fix: a repeated
// probabilistic key is rejected instead of silently overwriting.
func TestParseSpecDuplicateKeys(t *testing.T) {
	_, err := fault.ParseSpec("drop=0.1,dup=0.02,drop=0.5")
	if err == nil {
		t.Fatal("duplicate drop= should fail")
	}
	if !strings.Contains(err.Error(), "duplicate drop") || !strings.Contains(err.Error(), "rule 2") {
		t.Fatalf("error %q does not name the duplicate", err)
	}
	// Scheduled rules may repeat.
	s, err := fault.ParseSpec("crash=0@1ms,crash=1@2ms,partition=0|1@1ms+1ms,partition=0|2@5ms+1ms")
	if err != nil {
		t.Fatalf("repeated scheduled rules should parse: %v", err)
	}
	if len(s.Crashes) != 2 || len(s.Partitions) != 2 {
		t.Fatalf("spec = %+v", s)
	}
}

// TestTopologyQueries pins the pure window semantics of CutAt /
// ExtraDelay / Slowdown, including nil-safety.
func TestTopologyQueries(t *testing.T) {
	spec, err := fault.ParseSpec(
		"partition=1|0.2@40ms+30ms,link=2>1:drop@10ms+5ms,link=0>1:delay:4ms@10ms+5ms,gray=1:8@100ms+10ms")
	if err != nil {
		t.Fatal(err)
	}
	topo := fault.NewTopology(spec)
	if topo == nil {
		t.Fatal("topology should be non-nil")
	}

	at := func(msAt int64) machine.Time { return machine.Time(msAt) * machine.Time(ms) }

	// Partition window: cut both directions between the groups, start
	// inclusive, end exclusive; machines outside the groups unaffected.
	if topo.CutAt(1, 0, at(39)) || topo.CutAt(1, 0, at(70)) {
		t.Fatal("cut outside window")
	}
	if !topo.CutAt(1, 0, at(40)) || !topo.CutAt(0, 1, at(69)) || !topo.CutAt(2, 1, at(55)) {
		t.Fatal("partition window not enforced")
	}
	if topo.CutAt(0, 2, at(55)) {
		t.Fatal("intra-group traffic cut")
	}
	if topo.CutAt(3, 1, at(55)) || topo.CutAt(1, 3, at(55)) {
		t.Fatal("machine outside both groups cut")
	}

	// Drop link: one-way only.
	if !topo.CutAt(2, 1, at(12)) {
		t.Fatal("drop link not enforced")
	}
	if topo.CutAt(1, 2, at(12)) {
		t.Fatal("drop link cut the reverse direction")
	}

	// Delay link: one-way, window-scoped.
	if d := topo.ExtraDelay(0, 1, at(12)); d != 4*ms {
		t.Fatalf("delay = %v, want 4ms", d)
	}
	if d := topo.ExtraDelay(1, 0, at(12)); d != 0 {
		t.Fatalf("reverse delay = %v, want 0", d)
	}
	if d := topo.ExtraDelay(0, 1, at(20)); d != 0 {
		t.Fatalf("delay outside window = %v, want 0", d)
	}

	// Gray slowdown.
	if f := topo.Slowdown(1, at(105)); f != 8 {
		t.Fatalf("slowdown = %v, want 8", f)
	}
	if f := topo.Slowdown(1, at(99)); f != 1 {
		t.Fatalf("slowdown before window = %v, want 1", f)
	}
	if f := topo.Slowdown(0, at(105)); f != 1 {
		t.Fatalf("slowdown for other machine = %v, want 1", f)
	}
	if !topo.HasGray(1) || topo.HasGray(0) {
		t.Fatal("HasGray wrong")
	}

	if len(topo.Windows()) != 4 {
		t.Fatalf("windows = %v", topo.Windows())
	}

	// Burst windows: a load multiplier over time, overlap multiplies.
	bspec, err := fault.ParseSpec("burst=4@30ms+30ms,burst=2@50ms+5ms")
	if err != nil {
		t.Fatal(err)
	}
	btopo := fault.NewTopology(bspec)
	if f := btopo.BurstAt(at(29)); f != 1 {
		t.Fatalf("burst before window = %v, want 1", f)
	}
	if f := btopo.BurstAt(at(30)); f != 4 {
		t.Fatalf("burst at window start = %v, want 4", f)
	}
	if f := btopo.BurstAt(at(52)); f != 8 {
		t.Fatalf("overlapping bursts = %v, want 8", f)
	}
	if f := btopo.BurstAt(at(60)); f != 1 {
		t.Fatalf("burst after window = %v, want 1", f)
	}
	if len(btopo.Windows()) != 2 {
		t.Fatalf("burst windows = %v", btopo.Windows())
	}

	// Nil-safety mirrors the nil *Plan contract.
	var nilTopo *fault.Topology
	if nilTopo.CutAt(0, 1, 0) || nilTopo.ExtraDelay(0, 1, 0) != 0 ||
		nilTopo.Slowdown(0, 0) != 1 || nilTopo.HasGray(0) || nilTopo.BurstAt(0) != 1 ||
		nilTopo.Windows() != nil {
		t.Fatal("nil topology not inert")
	}
	if fault.NewTopology(fault.Spec{DropProb: 0.5}) != nil {
		t.Fatal("topology for spec without topology rules should be nil")
	}
}
