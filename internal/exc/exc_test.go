package exc_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exc"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/stats"
)

func newExcKernel(t *testing.T, style ipc.Style) (*core.Kernel, *ipc.IPC, *exc.Exc) {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: style == ipc.StyleMK40,
	})
	k.Sched = sched.New(0)
	x := ipc.New(k, style)
	ex := exc.New(k, x)
	return k, x, ex
}

// excServer receives exception requests and replies to each, forever.
type excServer struct {
	x       *ipc.IPC
	port    *ipc.Port
	handled int
	codes   []int
	pending *ipc.Message
}

func (s *excServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.x.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	req := s.pending
	s.pending = nil
	info := req.Body.(exc.ExcInfo)
	s.handled++
	s.codes = append(s.codes, info.Code)
	return core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
		reply := s.x.NewMessage(ipc.ExcOpRaise+100, ipc.HeaderBytes, nil, nil)
		s.x.MachMsg(e, ipc.MsgOptions{
			Send:        reply,
			SendTo:      req.Reply,
			ReceiveFrom: s.port,
		})
	})
}

// faulterProg raises count exceptions, then exits.
type faulterProg struct {
	count int
	done  int
}

func (p *faulterProg) Next(e *core.Env, t *core.Thread) core.Action {
	if p.done >= p.count {
		return core.Exit()
	}
	p.done++
	return core.Action{Kind: core.ActException, Code: p.done}
}

func runExc(t *testing.T, style ipc.Style, raises int) (*core.Kernel, *ipc.IPC, *exc.Exc, *excServer, *core.Thread) {
	t.Helper()
	k, x, ex := newExcKernel(t, style)
	port := x.NewPort("exc-server")
	srv := &excServer{x: x, port: port}
	// The exception server runs in the same address space as the
	// faulting thread, as in the paper's benchmark.
	st := k.NewThread(core.ThreadSpec{Name: "exc-server", SpaceID: 1, Program: srv})
	fp := &faulterProg{count: raises}
	ft := k.NewThread(core.ThreadSpec{Name: "faulter", SpaceID: 1, Program: fp})
	ex.SetExceptionPort(ft, port)
	k.Setrun(st)
	k.Setrun(ft)
	k.Run(0)
	if ft.State != core.StateHalted {
		t.Fatalf("faulter did not finish: %v", ft.State)
	}
	return k, x, ex, srv, ft
}

func TestExceptionRoundTripMK40(t *testing.T) {
	k, _, ex, srv, _ := runExc(t, ipc.StyleMK40, 10)
	if srv.handled != 10 {
		t.Fatalf("handled = %d", srv.handled)
	}
	for i, c := range srv.codes {
		if c != i+1 {
			t.Fatalf("codes out of order: %v", srv.codes)
		}
	}
	// After the first exchange the server is parked in mach_msg_continue,
	// so raises take the deferred-message handoff path.
	if ex.FastRaises < 9 {
		t.Fatalf("FastRaises = %d", ex.FastRaises)
	}
	if ex.FastReplies < 9 {
		t.Fatalf("FastReplies = %d", ex.FastReplies)
	}
	if k.Stats.BlocksWithDiscard[stats.BlockException] != 10 {
		t.Fatalf("exception blocks = %d", k.Stats.BlocksWithDiscard[stats.BlockException])
	}
}

func TestExceptionSlowPathProcessModel(t *testing.T) {
	for _, style := range []ipc.Style{ipc.StyleMK32, ipc.StyleMach25} {
		k, _, ex, srv, _ := runExc(t, style, 5)
		if srv.handled != 5 {
			t.Fatalf("%v: handled = %d", style, srv.handled)
		}
		if ex.FastRaises != 0 || ex.FastReplies != 0 {
			t.Fatalf("%v took the fast path", style)
		}
		if ex.SlowRaises != 5 {
			t.Fatalf("%v: SlowRaises = %d", style, ex.SlowRaises)
		}
		if k.Stats.BlocksWithoutDiscard[stats.BlockException] != 5 {
			t.Fatalf("%v: exception PM blocks = %d", style,
				k.Stats.BlocksWithoutDiscard[stats.BlockException])
		}
	}
}

func TestExceptionLatencyShape(t *testing.T) {
	// Table 3's exception row: MK40 is 2-3x faster than both
	// process-model kernels, and MK32 is the slowest.
	perExc := func(style ipc.Style) float64 {
		k, _, _, _, _ := runExc(t, style, 50)
		return k.Clock.Now().Micros() / 50
	}
	mk40 := perExc(ipc.StyleMK40)
	mk32 := perExc(ipc.StyleMK32)
	m25 := perExc(ipc.StyleMach25)
	if !(mk40 < m25 && m25 < mk32) {
		t.Fatalf("exception ordering violated: MK40=%.1f Mach2.5=%.1f MK32=%.1f", mk40, m25, mk32)
	}
	if ratio := mk32 / mk40; ratio < 2 || ratio > 4 {
		t.Fatalf("MK32/MK40 exception ratio = %.2f, want 2-3x", ratio)
	}
}

func TestExceptionFaulterStacklessWhileServerWorks(t *testing.T) {
	// Freeze the run at the moment the server is handling: the faulting
	// thread must be blocked with exception_return and no stack.
	k, x, ex := newExcKernel(t, ipc.StyleMK40)
	port := x.NewPort("exc-server")
	srv := &excServer{x: x, port: port}
	st := k.NewThread(core.ThreadSpec{Name: "exc-server", SpaceID: 1, Program: srv})
	ft := k.NewThread(core.ThreadSpec{Name: "faulter", SpaceID: 1, Program: &faulterProg{count: 1}})
	ex.SetExceptionPort(ft, port)
	k.Setrun(st)
	k.Setrun(ft)

	sawBlockedFaulter := false
	for i := 0; i < 10000; i++ {
		if ft.BlockedWith(ex.ContExcReturn) {
			sawBlockedFaulter = true
			if ft.HasStack() {
				t.Fatal("faulter holds a stack while awaiting its exception reply")
			}
		}
		if !k.Step() {
			break
		}
	}
	if !sawBlockedFaulter {
		t.Fatal("never observed the faulter blocked on its exception reply")
	}
	if ft.State != core.StateHalted {
		t.Fatalf("faulter state = %v", ft.State)
	}
}

func TestExceptionWithoutPortPanics(t *testing.T) {
	k, _, _ := newExcKernel(t, ipc.StyleMK40)
	ft := k.NewThread(core.ThreadSpec{Name: "orphan", SpaceID: 1, Program: &faulterProg{count: 1}})
	k.Setrun(ft)
	defer func() {
		if recover() == nil {
			t.Fatal("exception without a port did not panic")
		}
	}()
	k.Run(0)
}

func TestSlowRaiseWhenServerBusy(t *testing.T) {
	// Two faulters, one server, two processors: while the server handles
	// the first exception, the second faulter (running concurrently)
	// finds no waiter and takes the message path even in MK40.
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: true,
		Processors:       2,
	})
	k.Sched = sched.New(0)
	x := ipc.New(k, ipc.StyleMK40)
	ex := exc.New(k, x)
	port := x.NewPort("exc-server")
	srv := &excServer{x: x, port: port}
	st := k.NewThread(core.ThreadSpec{Name: "exc-server", SpaceID: 1, Program: srv})
	f1 := k.NewThread(core.ThreadSpec{Name: "f1", SpaceID: 1, Program: &faulterProg{count: 3}})
	f2 := k.NewThread(core.ThreadSpec{Name: "f2", SpaceID: 1, Program: &faulterProg{count: 3}})
	ex.SetExceptionPort(f1, port)
	ex.SetExceptionPort(f2, port)
	k.Setrun(st)
	k.Setrun(f1)
	k.Setrun(f2)
	k.Run(0)
	if f1.State != core.StateHalted || f2.State != core.StateHalted {
		t.Fatalf("faulters did not finish: %v %v", f1.State, f2.State)
	}
	if srv.handled != 6 {
		t.Fatalf("handled = %d", srv.handled)
	}
	if ex.SlowRaises == 0 {
		t.Fatal("expected at least one slow raise under contention")
	}
}
