// Package exc is the exception-handling substrate (§2.5): every thread
// has an exception port served by a user-level exception server; the
// kernel turns a fault or trap into an RPC on that port and restarts the
// thread when the server's reply arrives.
//
// Unlike a user-to-user RPC, the kernel itself is an endpoint of the
// exchange, which the continuation kernel exploits twice:
//
//   - outbound, the faulting thread defers building the request message
//     and, if a server thread is waiting with mach_msg_continue, hands its
//     stack directly to the server, passing the fault information in the
//     shared call context — no message copy, parse or queueing;
//
//   - inbound, the reply port is a kernel sink: the server's reply send
//     runs a kernel completion in the server's context, which hands the
//     stack straight back to the faulting thread and recognizes its
//     "return from exception" continuation.
//
// The process-model kernels take the unoptimized path the paper measured
// in MK32 and Mach 2.5: a full request message is built, queued and
// re-parsed in each direction, with the general scheduler in between.
package exc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/stats"
)

// ExcInfo is the body of an exception request message: what the server
// learns about the fault.
type ExcInfo struct {
	Thread *core.Thread
	Code   int
}

// ExcMsgBytes is the size of a full exception request message (the
// paper-era exception message carries thread, task and fault state).
const ExcMsgBytes = 64

// Path costs. The fast path defers message construction (deferCost); the
// slow path builds, copies and parses a full message each way.
var (
	portLookupCost  = machine.Cost{Instrs: 60, Loads: 30, Stores: 10}    // find the thread's exception port
	deferCost       = machine.Cost{Instrs: 20, Loads: 290, Stores: 10}   // gather fault state into the shared context
	buildMsgCost    = machine.Cost{Instrs: 80, Loads: 640, Stores: 300}  // construct the full request message (incl. thread state)
	replyCost       = machine.Cost{Instrs: 20, Loads: 115, Stores: 10}   // kernel-side reply processing
	stateRestore    = machine.Cost{Instrs: 60, Loads: 540, Stores: 300}  // unpack thread state from a full reply message
	restartCost     = machine.Cost{Instrs: 20, Loads: 180, Stores: 10}   // reload the faulting thread's state
	mk32ExtraCost   = machine.Cost{Instrs: 40, Loads: 1040, Stores: 500} // MK32's revised-IPC exception packaging
	mach25ExtraCost = machine.Cost{Instrs: 1240, Loads: 46, Stores: 0}   // hybrid kernel's older exception layer
)

// Exc is the exception subsystem.
type Exc struct {
	K *core.Kernel
	X *ipc.IPC

	// ContExcReturn is the continuation a faulting thread blocks with
	// while its exception server works; calling it restarts the thread in
	// user space. The inbound fast path recognizes it.
	ContExcReturn *core.Continuation

	// excPorts maps thread ID to the thread's exception port.
	excPorts map[int]*ipc.Port

	// replyPorts maps thread ID to the thread's kernel reply port.
	replyPorts map[int]*ipc.Port

	// Counters.
	FastRaises  uint64 // outbound handoffs to a waiting server
	SlowRaises  uint64 // outbound through the message path
	FastReplies uint64 // inbound handoffs back to the faulter
	SlowReplies uint64
}

// New creates the exception subsystem and installs its handler on the
// kernel.
func New(k *core.Kernel, x *ipc.IPC) *Exc {
	ex := &Exc{
		K:          k,
		X:          x,
		excPorts:   make(map[int]*ipc.Port),
		replyPorts: make(map[int]*ipc.Port),
	}
	ex.ContExcReturn = core.NewContinuation("exception_return", func(e *core.Env) {
		e.Charge(restartCost)
		k.ThreadExceptionReturn(e)
	})
	k.HandleException = ex.Handle
	return ex
}

// SetExceptionPort registers the port on which a thread's exceptions are
// serviced (thread_set_exception_port).
func (ex *Exc) SetExceptionPort(t *core.Thread, p *ipc.Port) {
	ex.excPorts[t.ID] = p
}

// replyPortFor lazily creates the kernel-endpoint reply port for a
// faulting thread.
func (ex *Exc) replyPortFor(t *core.Thread) *ipc.Port {
	p := ex.replyPorts[t.ID]
	if p == nil {
		p = ex.X.NewPort(fmt.Sprintf("exc-reply-%d", t.ID))
		p.KernelSink = func(e *core.Env, msg *ipc.Message, opts *ipc.MsgOptions) {
			ex.replySink(e, t, msg, opts)
		}
		ex.replyPorts[t.ID] = p
	}
	return p
}

// Handle services a user-level exception on the current thread. Installed
// as the kernel's exception handler; terminal.
func (ex *Exc) Handle(e *core.Env, code int) {
	k := ex.K
	t := e.Cur()
	e.Charge(portLookupCost)
	port := ex.excPorts[t.ID]
	if port == nil {
		panic(fmt.Sprintf("exc: %v raised exception %d with no exception port", t, code))
	}
	info := ExcInfo{Thread: t, Code: code}
	reply := ex.replyPortFor(t)

	if k.UseContinuations {
		// Before entering the normal send path, look for a server thread
		// already waiting with mach_msg_continue (§2.5).
		var server *core.Thread
		if k.CanHandoff() {
			server = ex.X.PopWaiter(e, port)
		}
		if server != nil && server.Cont != nil {
			// Defer the request message: the fault information travels
			// in the shared stack context.
			e.Charge(deferCost)
			ex.FastRaises++
			msg := ex.X.NewMessage(ipc.ExcOpRaise, ipc.HeaderBytes, info, reply)
			ex.X.DeliverTo(e, server, msg)
			t.State = core.StateWaiting
			t.WaitLabel = "exception reply"
			k.ThreadHandoff(e, stats.BlockException, ex.ContExcReturn, server)
			// Running as the server, in the faulter's call context.
			if k.Recognize(e, ex.X.ContMsgContinue) {
				m := ex.X.TakeDelivered(e.Cur())
				if m == nil {
					panic("exc: fast raise lost its message")
				}
				ex.X.CompleteReceive(e, m)
			}
			k.CallContinuation(e, e.Cur().Cont)
		}
		// No waiting server: fall back to a real message.
		ex.SlowRaises++
		e.Charge(buildMsgCost)
		msg := ex.X.NewMessage(ipc.ExcOpRaise, ExcMsgBytes, info, reply)
		ex.X.Enqueue(e, port, msg)
		t.State = core.StateWaiting
		t.WaitLabel = "exception reply"
		k.Block(e, stats.BlockException, ex.ContExcReturn, nil, 0, "")
	}

	// Process-model kernels: the unoptimized path in both directions.
	ex.SlowRaises++
	e.Charge(buildMsgCost)
	if ex.X.Style == ipc.StyleMK32 {
		e.Charge(mk32ExtraCost)
	} else {
		e.Charge(mach25ExtraCost)
	}
	msg := ex.X.NewMessage(ipc.ExcOpRaise, ExcMsgBytes, info, reply)
	server := ex.X.PopWaiter(e, port)
	ex.X.Enqueue(e, port, msg)
	if server != nil {
		ex.K.Setrun(server)
	}
	t.State = core.StateWaiting
	t.WaitLabel = "exception reply"
	k.Block(e, stats.BlockException, nil, func(e2 *core.Env) {
		e2.Charge(restartCost)
		k.ThreadExceptionReturn(e2)
	}, 256, "exception-wait")
}

// replySink processes the server's reply send in the server's kernel
// context: the kernel is the receiver, so no copyout or queueing happens;
// the faulting thread is restarted. Terminal.
func (ex *Exc) replySink(e *core.Env, faulter *core.Thread, msg *ipc.Message, opts *ipc.MsgOptions) {
	k := ex.K
	e.Charge(replyCost)
	server := e.Cur()

	// The handoff-back shortcut requires that the server's next receive
	// would genuinely block: if messages are already queued on its port
	// the server must drain them instead (or it would sleep on a
	// non-empty queue and strand the messages).
	if k.CanHandoff() && opts.ReceiveFrom != nil &&
		opts.ReceiveFrom.QueueLen() == 0 && ex.X.TakeDeliveredPeek(server) == nil &&
		faulter.BlockedWith(ex.ContExcReturn) {
		// Fast inbound path: block the server on its next receive and
		// hand the stack straight back to the faulting thread.
		ex.FastReplies++
		cont := ex.X.RegisterReceiver(server, opts.ReceiveFrom, opts.MaxSize)
		server.State = core.StateWaiting
		k.ThreadHandoff(e, stats.BlockReceive, cont, faulter)
		// Running as the faulter, in the server's call context.
		if k.Recognize(e, ex.ContExcReturn) {
			e.Charge(restartCost)
			k.ThreadExceptionReturn(e)
		}
		k.CallContinuation(e, e.Cur().Cont)
	}

	// Slow inbound: unpack the reply message, wake the faulter through
	// the scheduler and let the server continue with its own receive.
	ex.SlowReplies++
	e.Charge(stateRestore)
	if faulter.State == core.StateWaiting {
		k.Setrun(faulter)
	}
	if opts.ReceiveFrom != nil {
		ex.X.Receive(e, opts.ReceiveFrom, opts.MaxSize)
	}
	k.ThreadSyscallReturn(e, ipc.MsgSuccess)
}
