package cthreads_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

func newSys(t *testing.T) *kern.System {
	t.Helper()
	return kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
}

// runRuntime hosts the runtime in one kernel thread and drives the
// system to quiescence.
func runRuntime(t *testing.T, sys *kern.System, rt *cthreads.Runtime) {
	t.Helper()
	task := sys.NewTask("cthreads-app")
	sys.Start(task.NewThread("vcpu", rt, 10))
	sys.Run(0)
}

func TestComputeAndExit(t *testing.T) {
	sys := newSys(t)
	rt := cthreads.New(true)
	var steps int
	rt.Spawn("worker", func(c *cthreads.CThread) cthreads.Op {
		steps++
		if c.Step > 3 {
			return cthreads.ExitOp()
		}
		return cthreads.Compute(1000)
	})
	runRuntime(t, sys, rt)
	if steps != 4 || rt.Live() != 0 {
		t.Fatalf("steps=%d live=%d", steps, rt.Live())
	}
}

func TestProducerConsumer(t *testing.T) {
	for _, useCont := range []bool{true, false} {
		sys := newSys(t)
		rt := cthreads.New(useCont)
		full := rt.NewCond("full")
		empty := rt.NewCond("empty")
		var queue []int
		var consumed []int

		rt.Spawn("producer", func(c *cthreads.CThread) cthreads.Op {
			switch {
			case c.Step > 20:
				return cthreads.ExitOp()
			case c.Step%2 == 1:
				queue = append(queue, c.Step)
				return cthreads.Signal(full)
			default:
				return cthreads.Compute(500)
			}
		})
		rt.Spawn("consumer", func(c *cthreads.CThread) cthreads.Op {
			if len(consumed) >= 10 {
				return cthreads.ExitOp()
			}
			if len(queue) == 0 {
				return cthreads.Wait(full)
			}
			consumed = append(consumed, queue[0])
			queue = queue[1:]
			return cthreads.Signal(empty)
		})
		runRuntime(t, sys, rt)
		if len(consumed) != 10 {
			t.Fatalf("useCont=%v: consumed %d", useCont, len(consumed))
		}
		if rt.Deadlocked {
			t.Fatalf("useCont=%v: deadlocked", useCont)
		}
	}
}

func TestContinuationModeDiscardsUserStacks(t *testing.T) {
	// 20 cthreads all blocked on a condition: with continuations only
	// the stack of the running thread persists; with the stack model
	// every blocked cthread keeps one.
	stacksWhenBlocked := func(useCont bool) (int, int) {
		sys := newSys(t)
		rt := cthreads.New(useCont)
		cv := rt.NewCond("gate")
		for i := 0; i < 20; i++ {
			rt.Spawn("waiter", func(c *cthreads.CThread) cthreads.Op {
				if c.Step == 1 {
					return cthreads.Wait(cv)
				}
				return cthreads.ExitOp()
			})
		}
		// One controller wakes everyone at the end.
		rt.Spawn("controller", func(c *cthreads.CThread) cthreads.Op {
			switch c.Step {
			case 1:
				return cthreads.Compute(10_000)
			case 2:
				// Census point: all 20 waiters are blocked.
				return cthreads.Broadcast(cv)
			default:
				return cthreads.ExitOp()
			}
		})
		task := sys.NewTask("app")
		sys.Start(task.NewThread("vcpu", rt, 10))
		// Drive until the controller's compute burst (all waiters
		// blocked), then census.
		for i := 0; i < 100000 && cv.Waiters() < 20; i++ {
			if !sys.K.Step() {
				break
			}
		}
		blockedCensus := rt.StacksInUse()
		sys.Run(0)
		return blockedCensus, rt.MaxStacks
	}

	contCensus, _ := stacksWhenBlocked(true)
	stackCensus, stackMax := stacksWhenBlocked(false)
	if contCensus > 2 {
		t.Errorf("continuation model: %d user stacks for 20 blocked cthreads", contCensus)
	}
	if stackCensus < 20 {
		t.Errorf("stack model: %d user stacks, want >= 20", stackCensus)
	}
	if stackMax < 21 {
		t.Errorf("stack model max = %d", stackMax)
	}
}

func TestContinuationSwitchesCheaper(t *testing.T) {
	run := func(useCont bool) uint64 {
		sys := newSys(t)
		rt := cthreads.New(useCont)
		for i := 0; i < 2; i++ {
			rt.Spawn("pingpong", func(c *cthreads.CThread) cthreads.Op {
				if c.Step > 50 {
					return cthreads.ExitOp()
				}
				return cthreads.Yield()
			})
		}
		runRuntime(t, sys, rt)
		return rt.SwitchCycles
	}
	cont := run(true)
	stack := run(false)
	if cont >= stack {
		t.Fatalf("continuation switches not cheaper: %d vs %d cycles", cont, stack)
	}
}

func TestKernelOpFromCThread(t *testing.T) {
	sys := newSys(t)
	port := sys.IPC.NewPort("mbox")
	rt := cthreads.New(true)
	var got any
	rt.Spawn("sender", func(c *cthreads.CThread) cthreads.Op {
		switch c.Step {
		case 1:
			return cthreads.Kernel(core.Syscall("send", func(e *core.Env) {
				m := sys.IPC.NewMessage(1, ipc.HeaderBytes, "hello", nil)
				sys.IPC.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
			}))
		default:
			return cthreads.ExitOp()
		}
	})
	task := sys.NewTask("app")
	var vcpu *core.Thread
	rt.Spawn("receiver", func(c *cthreads.CThread) cthreads.Op {
		switch c.Step {
		case 1:
			return cthreads.Kernel(core.Syscall("recv", func(e *core.Env) {
				sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			}))
		default:
			// Drain the mailbox before exiting: the reaper reclaims a dead
			// thread's message buffers, so post-mortem reads see nothing.
			if m := sys.IPC.Received(vcpu); m != nil {
				got = m.Body
			}
			return cthreads.ExitOp()
		}
	})
	vcpu = task.NewThread("vcpu", rt, 10)
	sys.Start(vcpu)
	sys.Run(0)
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	sys := newSys(t)
	rt := cthreads.New(true)
	cv := rt.NewCond("never")
	rt.Spawn("stuck", func(c *cthreads.CThread) cthreads.Op {
		return cthreads.Wait(cv)
	})
	runRuntime(t, sys, rt)
	if !rt.Deadlocked {
		t.Fatal("deadlock not detected")
	}
}

func TestStateStrings(t *testing.T) {
	if cthreads.Ready.String() != "ready" || cthreads.Done.String() != "done" {
		t.Fatal("state strings")
	}
	if cthreads.State(9).String() != "State(9)" {
		t.Fatal("unknown state string")
	}
}
