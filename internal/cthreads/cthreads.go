// Package cthreads is the user-level threads package of §1.3, extended
// with the §6 future work: user-level threads (cthreads) multiplexed on
// one kernel thread may block with user-level continuations, discarding
// their user stacks and making user-level switches cheap, instead of
// preserving a full user stack per blocked cthread.
//
// The package mirrors the kernel trade-off one level up:
//
//   - stack model: every cthread owns a StackBytes user stack for its
//     lifetime; a user-level switch saves and restores register state.
//   - continuation model: a cthread blocked on a condition variable holds
//     only its closure state; the runtime keeps one stack per running
//     cthread and switches by calling the next thread's continuation.
//
// The runtime itself is a core.UserProgram: it runs inside a single
// kernel-level thread of the simulated system, issuing CPU bursts for
// user computation and kernel actions when a cthread needs the kernel.
package cthreads

import (
	"fmt"

	"repro/internal/core"
)

// StackBytes is the user-level stack size of one cthread.
const StackBytes = 16 * 1024

// Switch costs in user CPU cycles: calling a continuation versus a full
// user-level register save/restore plus stack switch.
const (
	contSwitchCycles  = 40
	stackSwitchCycles = 190
)

// State is a cthread's scheduling state.
type State int

const (
	Ready State = iota
	Running
	Blocked
	Done
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// OpKind enumerates the actions a cthread can take.
type OpKind int

const (
	// OpCompute burns user CPU.
	OpCompute OpKind = iota
	// OpWait blocks on a condition variable.
	OpWait
	// OpSignal wakes one waiter of a condition variable.
	OpSignal
	// OpBroadcast wakes all waiters.
	OpBroadcast
	// OpYield gives up the processor to the next ready cthread.
	OpYield
	// OpKernel performs a kernel-level action (the whole kernel thread
	// blocks if the action does).
	OpKernel
	// OpExit ends the cthread.
	OpExit
)

// Op is one cthread step.
type Op struct {
	Kind   OpKind
	Cycles uint64
	Cond   *Cond
	Action core.Action
}

// Compute, Wait, Signal, Yield, Kernel and ExitOp build Ops.
func Compute(cycles uint64) Op { return Op{Kind: OpCompute, Cycles: cycles} }
func Wait(c *Cond) Op          { return Op{Kind: OpWait, Cond: c} }
func Signal(c *Cond) Op        { return Op{Kind: OpSignal, Cond: c} }
func Broadcast(c *Cond) Op     { return Op{Kind: OpBroadcast, Cond: c} }
func Yield() Op                { return Op{Kind: OpYield} }
func Kernel(a core.Action) Op  { return Op{Kind: OpKernel, Action: a} }
func ExitOp() Op               { return Op{Kind: OpExit} }

// Program generates a cthread's steps.
type Program func(c *CThread) Op

// CThread is one user-level thread.
type CThread struct {
	ID    int
	Name  string
	State State

	// Step counts calls into the program, for program state machines.
	Step int

	prog Program

	// hasStack reports whether the cthread currently owns a user stack
	// (always true in the stack model while not Done; only while running
	// or ready in the continuation model... see Runtime accounting).
	hasStack bool
}

// Cond is a user-level condition variable.
type Cond struct {
	Name    string
	waiters []*CThread
}

// Waiters reports how many cthreads wait on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Runtime multiplexes cthreads on one kernel thread.
type Runtime struct {
	// UseContinuations selects the §6 extension.
	UseContinuations bool

	threads []*CThread
	runq    []*CThread
	cur     *CThread

	nextID int

	// stacksInUse counts live user stacks; MaxStacks is the high-water
	// mark.
	stacksInUse int
	MaxStacks   int

	// Switches counts user-level thread switches; SwitchCycles the user
	// CPU they consumed.
	Switches     uint64
	SwitchCycles uint64

	// Deadlocked is set if every live cthread blocked with nothing
	// runnable (and no kernel action pending to unblock them).
	Deadlocked bool
}

// New creates a runtime. Wrap it in a kernel thread via its Program
// method (it implements core.UserProgram).
func New(useContinuations bool) *Runtime {
	return &Runtime{UseContinuations: useContinuations}
}

// NewCond creates a condition variable.
func (rt *Runtime) NewCond(name string) *Cond { return &Cond{Name: name} }

// Spawn creates a ready cthread.
func (rt *Runtime) Spawn(name string, prog Program) *CThread {
	rt.nextID++
	c := &CThread{ID: rt.nextID, Name: name, State: Ready, prog: prog}
	rt.threads = append(rt.threads, c)
	rt.runq = append(rt.runq, c)
	rt.allocStack(c)
	return c
}

// allocStack accounts a user stack for c.
func (rt *Runtime) allocStack(c *CThread) {
	if c.hasStack {
		return
	}
	c.hasStack = true
	rt.stacksInUse++
	if rt.stacksInUse > rt.MaxStacks {
		rt.MaxStacks = rt.stacksInUse
	}
}

// releaseStack returns c's user stack.
func (rt *Runtime) releaseStack(c *CThread) {
	if !c.hasStack {
		return
	}
	c.hasStack = false
	rt.stacksInUse--
}

// StacksInUse reports live user stacks.
func (rt *Runtime) StacksInUse() int { return rt.stacksInUse }

// Live reports non-Done cthreads.
func (rt *Runtime) Live() int {
	n := 0
	for _, c := range rt.threads {
		if c.State != Done {
			n++
		}
	}
	return n
}

// PerThreadBytes reports average user memory per live cthread: the
// user-level analogue of Table 5.
func (rt *Runtime) PerThreadBytes() float64 {
	live := rt.Live()
	if live == 0 {
		return 0
	}
	const descriptorBytes = 96 // cthread structure + saved context slot
	return descriptorBytes + float64(rt.stacksInUse*StackBytes)/float64(live)
}

// switchTo makes c the running cthread, charging the model's switch
// cost. Returns the cycles consumed.
func (rt *Runtime) switchTo(c *CThread) uint64 {
	rt.cur = c
	c.State = Running
	rt.allocStack(c)
	rt.Switches++
	cost := uint64(stackSwitchCycles)
	if rt.UseContinuations {
		cost = contSwitchCycles
	}
	rt.SwitchCycles += cost
	return cost
}

// Next implements core.UserProgram: run the current cthread's next step,
// scheduling between cthreads as they block and wake.
func (rt *Runtime) Next(e *core.Env, t *core.Thread) core.Action {
	var switchCycles uint64
	for {
		if rt.cur == nil {
			if len(rt.runq) == 0 {
				if rt.Live() == 0 {
					return core.Exit()
				}
				// Every live cthread is blocked on a user-level
				// condition no one can signal: deadlock at user level.
				rt.Deadlocked = true
				return core.Exit()
			}
			c := rt.runq[0]
			rt.runq = rt.runq[1:]
			switchCycles += rt.switchTo(c)
		}
		c := rt.cur
		c.Step++
		op := c.prog(c)
		switch op.Kind {
		case OpCompute:
			return core.RunFor(op.Cycles + switchCycles)
		case OpWait:
			c.State = Blocked
			op.Cond.waiters = append(op.Cond.waiters, c)
			if rt.UseContinuations {
				// Block with a user-level continuation: the stack is
				// discarded; the closure state in the Program is all
				// that survives.
				rt.releaseStack(c)
			}
			rt.cur = nil
		case OpSignal:
			rt.wakeOne(op.Cond)
		case OpBroadcast:
			for len(op.Cond.waiters) > 0 {
				rt.wakeOne(op.Cond)
			}
		case OpYield:
			c.State = Ready
			rt.runq = append(rt.runq, c)
			rt.cur = nil
		case OpKernel:
			// The kernel-level action runs on the (single) kernel
			// thread; if it blocks, the whole runtime blocks — the §1.3
			// limitation that motivated the kernel-level solution.
			if switchCycles > 0 {
				act := op.Action
				_ = act
			}
			return op.Action
		case OpExit:
			c.State = Done
			rt.releaseStack(c)
			rt.cur = nil
		default:
			panic(fmt.Sprintf("cthreads: unknown op %d", op.Kind))
		}
	}
}

// wakeOne moves one waiter to the run queue.
func (rt *Runtime) wakeOne(cv *Cond) {
	for len(cv.waiters) > 0 {
		c := cv.waiters[0]
		cv.waiters = cv.waiters[1:]
		if c.State != Blocked {
			continue
		}
		c.State = Ready
		rt.runq = append(rt.runq, c)
		return
	}
}
