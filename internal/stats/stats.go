// Package stats collects the counters behind the paper's evaluation:
// which block points fire (Table 1), how often stack discarding, stack
// handoff and continuation recognition apply (Tables 1 and 2), and the
// event trace used to reproduce Figure 2.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// BlockReason classifies a blocking operation by the paper's Table 1 rows.
type BlockReason int

const (
	// BlockReceive is a thread waiting in mach_msg to receive a message.
	BlockReceive BlockReason = iota
	// BlockException is a faulting thread waiting for its exception
	// server's reply.
	BlockException
	// BlockPageFault is a thread waiting for a page to be filled.
	BlockPageFault
	// BlockThreadSwitch is a voluntary processor relinquishment from user
	// level (thread_switch).
	BlockThreadSwitch
	// BlockPreempt is an involuntary preemption at quantum expiry.
	BlockPreempt
	// BlockInternal is an internal kernel thread waiting for work.
	BlockInternal
	// BlockKernelFault is a page fault taken in kernel mode (process
	// model only; Table 1's bottom row).
	BlockKernelFault
	// BlockKernelAlloc is a wait for kernel memory (process model only).
	BlockKernelAlloc
	// BlockLock is a wait for a contended kernel lock (process model
	// only).
	BlockLock
	// BlockDeviceIO is a thread waiting in device_read/device_write for a
	// device request to complete (the io_done path).
	BlockDeviceIO
	numBlockReasons
)

// NumBlockReasons is the count of distinct reasons, for table iteration.
const NumBlockReasons = int(numBlockReasons)

func (r BlockReason) String() string {
	switch r {
	case BlockReceive:
		return "message receive"
	case BlockException:
		return "exception"
	case BlockPageFault:
		return "page fault"
	case BlockThreadSwitch:
		return "thread switch"
	case BlockPreempt:
		return "preempt"
	case BlockInternal:
		return "internal threads"
	case BlockKernelFault:
		return "kernel fault"
	case BlockKernelAlloc:
		return "kernel alloc"
	case BlockLock:
		return "lock wait"
	case BlockDeviceIO:
		return "device io"
	default:
		return fmt.Sprintf("BlockReason(%d)", int(r))
	}
}

// DiscardReasons lists the reasons that can block with a continuation and
// therefore appear in Table 1's "Using Stack Discard" rows, in the
// paper's row order.
var DiscardReasons = []BlockReason{
	BlockReceive, BlockException, BlockPageFault,
	BlockThreadSwitch, BlockPreempt, BlockInternal,
	BlockDeviceIO,
}

// Kernel aggregates control-transfer statistics for one kernel run.
type Kernel struct {
	// BlocksWithDiscard counts blocks, per reason, that used a
	// continuation and discarded (or handed off) the kernel stack.
	BlocksWithDiscard [NumBlockReasons]uint64

	// BlocksWithoutDiscard counts process-model blocks, per reason, that
	// kept their stack (Table 1's "no stack discards" row).
	BlocksWithoutDiscard [NumBlockReasons]uint64

	// Handoffs counts blocks whose stack moved directly to the next
	// thread (Table 2).
	Handoffs uint64

	// Recognitions counts control transfers where the resumer inspected
	// the new thread's continuation and took a faster inline path
	// (Table 2).
	Recognitions uint64

	// ContinuationCalls counts resumptions that went through the general
	// call_continuation path (i.e. were not recognized away).
	ContinuationCalls uint64

	// ContextSwitches counts full register save/restore transfers.
	ContextSwitches uint64

	// StackAttaches counts stacks initialized for stackless threads.
	StackAttaches uint64

	// Interrupts counts device interrupts taken on a processor's current
	// stack (never on a stack of their own).
	Interrupts uint64

	// IoDoneRecognitions counts io_done completions where the internal
	// I/O thread recognized the waiter's device continuation and finished
	// the request inline, without a general continuation call.
	IoDoneRecognitions uint64

	// InvariantPasses counts post-dispatch invariant sweeps that came
	// back clean (only advances when DebugChecks is on).
	InvariantPasses uint64

	// Aborts counts thread_abort redirections of blocked threads.
	Aborts uint64
}

// RecordBlock tallies one blocking operation.
func (k *Kernel) RecordBlock(r BlockReason, discarded bool) {
	if discarded {
		k.BlocksWithDiscard[r]++
	} else {
		k.BlocksWithoutDiscard[r]++
	}
}

// TotalBlocks returns all blocking operations observed.
func (k *Kernel) TotalBlocks() uint64 {
	var n uint64
	for i := 0; i < NumBlockReasons; i++ {
		n += k.BlocksWithDiscard[i] + k.BlocksWithoutDiscard[i]
	}
	return n
}

// TotalDiscards returns blocks that discarded or handed off their stack.
func (k *Kernel) TotalDiscards() uint64 {
	var n uint64
	for i := 0; i < NumBlockReasons; i++ {
		n += k.BlocksWithDiscard[i]
	}
	return n
}

// TotalNoDiscards returns process-model blocks that kept their stack.
func (k *Kernel) TotalNoDiscards() uint64 {
	return k.TotalBlocks() - k.TotalDiscards()
}

// Percent returns 100*part/whole, 0 when whole is 0.
func Percent(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// TraceKind labels entries in an RPC/exception trace (Figure 2).
type TraceKind int

const (
	TraceKernelEntry TraceKind = iota
	TraceKernelExit
	TraceCopyIn
	TraceCopyOut
	TraceFindReceiver
	TraceStackHandoff
	TraceRecognition
	TraceContinuationCall
	TraceContextSwitch
	TraceBlock
	TraceWakeup
	TraceQueueMessage
	TraceDequeueMessage
	TraceSchedule
	TraceNote
	// TraceInterrupt marks a device interrupt handled in interrupt context
	// on the named thread's (i.e. the current processor's) stack.
	TraceInterrupt
)

func (k TraceKind) String() string {
	switch k {
	case TraceKernelEntry:
		return "kernel-entry"
	case TraceKernelExit:
		return "kernel-exit"
	case TraceCopyIn:
		return "copy-in"
	case TraceCopyOut:
		return "copy-out"
	case TraceFindReceiver:
		return "find-receiver"
	case TraceStackHandoff:
		return "stack-handoff"
	case TraceRecognition:
		return "recognition"
	case TraceContinuationCall:
		return "call-continuation"
	case TraceContextSwitch:
		return "context-switch"
	case TraceBlock:
		return "block"
	case TraceWakeup:
		return "wakeup"
	case TraceQueueMessage:
		return "queue-message"
	case TraceDequeueMessage:
		return "dequeue-message"
	case TraceSchedule:
		return "schedule"
	case TraceNote:
		return "note"
	case TraceInterrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEntry is one step in a recorded control-transfer path.
type TraceEntry struct {
	Kind   TraceKind
	Thread string // name of the thread the step runs as
	Detail string
}

func (e TraceEntry) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("[%s] %s", e.Thread, e.Kind)
	}
	return fmt.Sprintf("[%s] %s: %s", e.Thread, e.Kind, e.Detail)
}

// Trace records control-transfer steps when enabled. The zero value is a
// disabled trace that discards entries, so tracing costs nothing unless a
// test or tool turns it on.
type Trace struct {
	Enabled bool
	Entries []TraceEntry
}

// Add appends an entry if the trace is enabled.
func (t *Trace) Add(kind TraceKind, thread, detail string) {
	if t == nil || !t.Enabled {
		return
	}
	t.Entries = append(t.Entries, TraceEntry{Kind: kind, Thread: thread, Detail: detail})
}

// Reset discards recorded entries but keeps the enabled state.
func (t *Trace) Reset() { t.Entries = t.Entries[:0] }

// Kinds returns the sequence of entry kinds, convenient for asserting a
// path shape in tests.
func (t *Trace) Kinds() []TraceKind {
	ks := make([]TraceKind, len(t.Entries))
	for i, e := range t.Entries {
		ks[i] = e.Kind
	}
	return ks
}

// Has reports whether any recorded entry has the given kind.
func (t *Trace) Has(kind TraceKind) bool {
	for _, e := range t.Entries {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

func (t *Trace) String() string {
	var b strings.Builder
	for i, e := range t.Entries {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, e)
	}
	return b.String()
}

// Counter is a labelled monotonically increasing count, used by
// workloads and servers for ad-hoc bookkeeping.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a named counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one. Add adds n. Value reads the count.
func (c *Counter) Inc()           { c.n++ }
func (c *Counter) Add(n uint64)   { c.n += n }
func (c *Counter) Value() uint64  { return c.n }
func (c *Counter) Name() string   { return c.name }
func (c *Counter) String() string { return fmt.Sprintf("%s=%d", c.name, c.n) }

// Set is a bag of counters addressed by name, for workload-level stats.
type Set struct {
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Get returns the named counter, creating it on first use.
func (s *Set) Get(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = NewCounter(name)
		s.counters[name] = c
	}
	return c
}

// Names returns the counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Set) String() string {
	parts := make([]string, 0, len(s.counters))
	for _, n := range s.Names() {
		parts = append(parts, s.counters[n].String())
	}
	return strings.Join(parts, " ")
}
