package stats

import (
	"math"
	"testing"
)

func TestRecordBlockTotals(t *testing.T) {
	var k Kernel
	k.RecordBlock(BlockReceive, true)
	k.RecordBlock(BlockReceive, true)
	k.RecordBlock(BlockPreempt, true)
	k.RecordBlock(BlockKernelFault, false)
	if k.TotalBlocks() != 4 {
		t.Fatalf("TotalBlocks = %d", k.TotalBlocks())
	}
	if k.TotalDiscards() != 3 {
		t.Fatalf("TotalDiscards = %d", k.TotalDiscards())
	}
	if k.TotalNoDiscards() != 1 {
		t.Fatalf("TotalNoDiscards = %d", k.TotalNoDiscards())
	}
	if k.BlocksWithDiscard[BlockReceive] != 2 {
		t.Fatalf("receive discards = %d", k.BlocksWithDiscard[BlockReceive])
	}
}

func TestPercent(t *testing.T) {
	// Zero denominators must yield 0, never NaN or Inf — the report
	// printers feed Percent straight into %.1f and an empty run (0 blocks)
	// must still render.
	if got := Percent(1, 0); got != 0 {
		t.Fatalf("Percent(1, 0) = %v, want 0", got)
	}
	if got := Percent(0, 0); got != 0 {
		t.Fatalf("Percent(0, 0) = %v, want 0", got)
	}
	for _, c := range [][2]uint64{{0, 0}, {1, 0}, {^uint64(0), 0}} {
		if got := Percent(c[0], c[1]); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Percent(%d, %d) = %v, want finite", c[0], c[1], got)
		}
	}
	if got := Percent(25, 100); got != 25 {
		t.Fatalf("Percent = %v", got)
	}
	if got := Percent(1, 3); got < 33.3 || got > 33.4 {
		t.Fatalf("Percent(1,3) = %v", got)
	}
}

func TestBlockReasonStrings(t *testing.T) {
	cases := map[BlockReason]string{
		BlockReceive:      "message receive",
		BlockException:    "exception",
		BlockPageFault:    "page fault",
		BlockThreadSwitch: "thread switch",
		BlockPreempt:      "preempt",
		BlockInternal:     "internal threads",
		BlockKernelFault:  "kernel fault",
		BlockKernelAlloc:  "kernel alloc",
		BlockLock:         "lock wait",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if BlockReason(99).String() != "BlockReason(99)" {
		t.Error("unknown reason string")
	}
}

func TestDiscardReasonsMatchPaperRows(t *testing.T) {
	// The paper's six Table 1 discard rows, plus the device-I/O row the
	// device subsystem extension adds (device_read/device_write block with
	// a continuation exactly like a receive).
	want := []BlockReason{
		BlockReceive, BlockException, BlockPageFault,
		BlockThreadSwitch, BlockPreempt, BlockInternal,
		BlockDeviceIO,
	}
	if len(DiscardReasons) != len(want) {
		t.Fatalf("DiscardReasons has %d rows", len(DiscardReasons))
	}
	for i, r := range want {
		if DiscardReasons[i] != r {
			t.Fatalf("row %d = %v, want %v", i, DiscardReasons[i], r)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	var tr Trace
	tr.Add(TraceKernelEntry, "t", "x")
	if len(tr.Entries) != 0 {
		t.Fatal("disabled trace recorded an entry")
	}
	var nilTrace *Trace
	nilTrace.Add(TraceKernelEntry, "t", "x") // must not panic
}

func TestTraceRecording(t *testing.T) {
	tr := Trace{Enabled: true}
	tr.Add(TraceKernelEntry, "client", "mach_msg")
	tr.Add(TraceStackHandoff, "server", "from client")
	tr.Add(TraceRecognition, "server", "mach_msg_continue")
	kinds := tr.Kinds()
	if len(kinds) != 3 || kinds[1] != TraceStackHandoff {
		t.Fatalf("kinds = %v", kinds)
	}
	if !tr.Has(TraceRecognition) || tr.Has(TraceContextSwitch) {
		t.Fatal("Has misreports")
	}
	if tr.String() == "" {
		t.Fatal("empty String for non-empty trace")
	}
	tr.Reset()
	if len(tr.Entries) != 0 || !tr.Enabled {
		t.Fatal("Reset misbehaved")
	}
}

func TestTraceEntryString(t *testing.T) {
	e := TraceEntry{Kind: TraceCopyIn, Thread: "client"}
	if e.String() != "[client] copy-in" {
		t.Fatalf("String = %q", e.String())
	}
	e.Detail = "24 bytes"
	if e.String() != "[client] copy-in: 24 bytes" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestTraceKindStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for k := TraceKernelEntry; k <= TraceNote; k++ {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("rpcs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || c.Name() != "rpcs" {
		t.Fatalf("counter = %v", c)
	}
	if c.String() != "rpcs=5" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestCounterSet(t *testing.T) {
	s := NewSet()
	s.Get("b").Inc()
	s.Get("a").Add(2)
	s.Get("b").Inc()
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if s.Get("b").Value() != 2 {
		t.Fatalf("b = %d", s.Get("b").Value())
	}
	if s.String() != "a=2 b=2" {
		t.Fatalf("String = %q", s.String())
	}
}
