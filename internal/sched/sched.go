// Package sched provides the run-queue policy for the simulated kernel:
// a fixed-priority, FIFO-within-priority queue with a configurable time
// quantum, plus handoff-friendly accounting. Mechanism (how control moves
// between threads) lives in internal/core; this package only decides who
// runs next.
package sched

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// NumPriorities is the number of distinct priority levels. Priority 0 is
// the least urgent.
const NumPriorities = 32

// DefaultQuantum is the scheduling time slice, 100 ms as in contemporary
// Mach.
const DefaultQuantum = machine.Duration(100 * 1000 * 1000)

// RunQueue is a global multi-level run queue. The simulator executes
// processors one dispatcher step at a time from a single OS thread, so no
// locking is needed; on a real multiprocessor this structure would be the
// lock-protected global queue of early Mach.
type RunQueue struct {
	quantum machine.Duration
	queues  [NumPriorities][]*core.Thread
	count   int

	// Enqueues and Dequeues count queue traffic, useful for verifying
	// that fast paths (handoff, directed switch) bypass the queue.
	Enqueues uint64
	Dequeues uint64

	// HighWater is the deepest the queue has been — together with the
	// obs layer's dispatch-latency histogram it shows how much runnable
	// work piles up behind the running thread.
	HighWater int
}

// New returns a run queue with the given quantum (DefaultQuantum if 0).
func New(quantum machine.Duration) *RunQueue {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	return &RunQueue{quantum: quantum}
}

// Quantum implements core.Scheduler.
func (q *RunQueue) Quantum() machine.Duration { return q.quantum }

// Setrun implements core.Scheduler: it appends the thread at its priority
// level.
func (q *RunQueue) Setrun(t *core.Thread) {
	if t.State != core.StateRunnable {
		panic(fmt.Sprintf("sched: Setrun of %v in state %v", t, t.State))
	}
	p := t.Priority
	if p < 0 {
		p = 0
	}
	if p >= NumPriorities {
		p = NumPriorities - 1
	}
	q.queues[p] = append(q.queues[p], t)
	q.count++
	q.Enqueues++
	if q.count > q.HighWater {
		q.HighWater = q.count
	}
}

// SelectThread implements core.Scheduler: highest priority first, FIFO
// within a level, nil when empty.
func (q *RunQueue) SelectThread(p *core.Processor) *core.Thread {
	if q.count == 0 {
		return nil
	}
	for pri := NumPriorities - 1; pri >= 0; pri-- {
		level := q.queues[pri]
		if len(level) == 0 {
			continue
		}
		t := level[0]
		copy(level, level[1:])
		q.queues[pri] = level[:len(level)-1]
		q.count--
		q.Dequeues++
		return t
	}
	return nil
}

// HasWork implements core.Scheduler.
func (q *RunQueue) HasWork() bool { return q.count > 0 }

// MaxQueuedPriority implements core.Scheduler.
func (q *RunQueue) MaxQueuedPriority() (int, bool) {
	if q.count == 0 {
		return 0, false
	}
	for pri := NumPriorities - 1; pri >= 0; pri-- {
		if len(q.queues[pri]) > 0 {
			return pri, true
		}
	}
	return 0, false
}

// Len reports the number of queued threads.
func (q *RunQueue) Len() int { return q.count }
