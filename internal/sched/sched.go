// Package sched provides the run-queue policy for the simulated kernel:
// a fixed-priority, FIFO-within-priority queue with a configurable time
// quantum, plus handoff-friendly accounting. Mechanism (how control moves
// between threads) lives in internal/core; this package only decides who
// runs next.
package sched

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/machine"
)

// NumPriorities is the number of distinct priority levels. Priority 0 is
// the least urgent.
const NumPriorities = 32

// DefaultQuantum is the scheduling time slice, 100 ms as in contemporary
// Mach.
const DefaultQuantum = machine.Duration(100 * 1000 * 1000)

// ring is a FIFO deque of threads over a power-of-two circular buffer:
// O(1) push and pop with no element shifting, growing only when full.
type ring struct {
	buf  []*core.Thread
	head int
	n    int
}

func (r *ring) push(t *core.Thread) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *ring) pop() *core.Thread {
	t := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

func (r *ring) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]*core.Thread, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// RunQueue is a global multi-level run queue. The simulator executes
// processors one dispatcher step at a time from a single OS thread (each
// parallel-cluster machine has its own RunQueue), so no locking is
// needed; on a real multiprocessor this structure would be the
// lock-protected global queue of early Mach.
//
// Each priority level is a ring buffer and a bit in mask records which
// levels are nonempty, so Setrun, SelectThread and MaxQueuedPriority are
// all O(1): the highest occupied level is 31 - bits.LeadingZeros32(mask).
type RunQueue struct {
	quantum machine.Duration
	queues  [NumPriorities]ring
	mask    uint32
	count   int

	// Enqueues and Dequeues count queue traffic, useful for verifying
	// that fast paths (handoff, directed switch) bypass the queue.
	Enqueues uint64
	Dequeues uint64

	// HighWater is the deepest the queue has been — together with the
	// obs layer's dispatch-latency histogram it shows how much runnable
	// work piles up behind the running thread.
	HighWater int
}

// New returns a run queue with the given quantum (DefaultQuantum if 0).
func New(quantum machine.Duration) *RunQueue {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	return &RunQueue{quantum: quantum}
}

// Quantum implements core.Scheduler.
func (q *RunQueue) Quantum() machine.Duration { return q.quantum }

// Setrun implements core.Scheduler: it appends the thread at its priority
// level.
func (q *RunQueue) Setrun(t *core.Thread) {
	if t.State != core.StateRunnable {
		panic(fmt.Sprintf("sched: Setrun of %v in state %v", t, t.State))
	}
	p := t.Priority
	if p < 0 {
		p = 0
	}
	if p >= NumPriorities {
		p = NumPriorities - 1
	}
	q.queues[p].push(t)
	q.mask |= 1 << uint(p)
	q.count++
	q.Enqueues++
	if q.count > q.HighWater {
		q.HighWater = q.count
	}
}

// SelectThread implements core.Scheduler: highest priority first, FIFO
// within a level, nil when empty.
func (q *RunQueue) SelectThread(p *core.Processor) *core.Thread {
	if q.mask == 0 {
		return nil
	}
	pri := bits.Len32(q.mask) - 1
	level := &q.queues[pri]
	t := level.pop()
	if level.n == 0 {
		q.mask &^= 1 << uint(pri)
	}
	q.count--
	q.Dequeues++
	return t
}

// HasWork implements core.Scheduler.
func (q *RunQueue) HasWork() bool { return q.count > 0 }

// MaxQueuedPriority implements core.Scheduler.
func (q *RunQueue) MaxQueuedPriority() (int, bool) {
	if q.mask == 0 {
		return 0, false
	}
	return bits.Len32(q.mask) - 1, true
}

// Len reports the number of queued threads.
func (q *RunQueue) Len() int { return q.count }

// Queued returns the queued threads, highest priority first and FIFO
// within a level — the order SelectThread would pop them. It allocates
// and is meant for diagnostics (the watchdog's stall report), not for
// scheduling decisions.
func (q *RunQueue) Queued() []*core.Thread {
	if q.count == 0 {
		return nil
	}
	out := make([]*core.Thread, 0, q.count)
	for pri := NumPriorities - 1; pri >= 0; pri-- {
		r := &q.queues[pri]
		for i := 0; i < r.n; i++ {
			out = append(out, r.buf[(r.head+i)&(len(r.buf)-1)])
		}
	}
	return out
}
