package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func runnable(pri int) *core.Thread {
	return &core.Thread{State: core.StateRunnable, Priority: pri}
}

func TestEmptyQueue(t *testing.T) {
	q := New(0)
	if q.HasWork() || q.Len() != 0 {
		t.Fatal("fresh queue has work")
	}
	if q.SelectThread(nil) != nil {
		t.Fatal("SelectThread on empty queue returned a thread")
	}
	if q.Quantum() != DefaultQuantum {
		t.Fatalf("Quantum = %v", q.Quantum())
	}
}

func TestCustomQuantum(t *testing.T) {
	q := New(12345)
	if q.Quantum() != 12345 {
		t.Fatalf("Quantum = %v", q.Quantum())
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	q := New(0)
	a, b, c := runnable(5), runnable(5), runnable(5)
	q.Setrun(a)
	q.Setrun(b)
	q.Setrun(c)
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i, want := range []*core.Thread{a, b, c} {
		if got := q.SelectThread(nil); got != want {
			t.Fatalf("dequeue %d: got %v", i, got)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	q := New(0)
	low, high, mid := runnable(1), runnable(20), runnable(10)
	q.Setrun(low)
	q.Setrun(high)
	q.Setrun(mid)
	if q.SelectThread(nil) != high || q.SelectThread(nil) != mid || q.SelectThread(nil) != low {
		t.Fatal("priority order violated")
	}
}

func TestPriorityClamped(t *testing.T) {
	q := New(0)
	q.Setrun(runnable(-5))
	q.Setrun(runnable(NumPriorities + 10))
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	first := q.SelectThread(nil)
	if first.Priority != NumPriorities+10 {
		t.Fatal("clamped high priority should still win")
	}
}

func TestSetrunWrongStatePanics(t *testing.T) {
	q := New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Setrun of running thread did not panic")
		}
	}()
	q.Setrun(&core.Thread{State: core.StateRunning})
}

func TestQueueCounters(t *testing.T) {
	q := New(0)
	q.Setrun(runnable(0))
	q.SelectThread(nil)
	if q.Enqueues != 1 || q.Dequeues != 1 {
		t.Fatalf("enqueues=%d dequeues=%d", q.Enqueues, q.Dequeues)
	}
}

// Property: every enqueued thread is dequeued exactly once, and dequeue
// order respects priority.
func TestQueueProperty(t *testing.T) {
	f := func(pris []uint8) bool {
		q := New(0)
		for _, p := range pris {
			q.Setrun(runnable(int(p) % NumPriorities))
		}
		last := NumPriorities
		n := 0
		for q.HasWork() {
			th := q.SelectThread(nil)
			if th == nil || th.Priority > last {
				return false
			}
			last = th.Priority
			n++
		}
		return n == len(pris) && q.Len() == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
