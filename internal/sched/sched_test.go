package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func runnable(pri int) *core.Thread {
	return &core.Thread{State: core.StateRunnable, Priority: pri}
}

func TestEmptyQueue(t *testing.T) {
	q := New(0)
	if q.HasWork() || q.Len() != 0 {
		t.Fatal("fresh queue has work")
	}
	if q.SelectThread(nil) != nil {
		t.Fatal("SelectThread on empty queue returned a thread")
	}
	if q.Quantum() != DefaultQuantum {
		t.Fatalf("Quantum = %v", q.Quantum())
	}
}

func TestCustomQuantum(t *testing.T) {
	q := New(12345)
	if q.Quantum() != 12345 {
		t.Fatalf("Quantum = %v", q.Quantum())
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	q := New(0)
	a, b, c := runnable(5), runnable(5), runnable(5)
	q.Setrun(a)
	q.Setrun(b)
	q.Setrun(c)
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i, want := range []*core.Thread{a, b, c} {
		if got := q.SelectThread(nil); got != want {
			t.Fatalf("dequeue %d: got %v", i, got)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	q := New(0)
	low, high, mid := runnable(1), runnable(20), runnable(10)
	q.Setrun(low)
	q.Setrun(high)
	q.Setrun(mid)
	if q.SelectThread(nil) != high || q.SelectThread(nil) != mid || q.SelectThread(nil) != low {
		t.Fatal("priority order violated")
	}
}

func TestPriorityClamped(t *testing.T) {
	q := New(0)
	q.Setrun(runnable(-5))
	q.Setrun(runnable(NumPriorities + 10))
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	first := q.SelectThread(nil)
	if first.Priority != NumPriorities+10 {
		t.Fatal("clamped high priority should still win")
	}
}

func TestSetrunWrongStatePanics(t *testing.T) {
	q := New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Setrun of running thread did not panic")
		}
	}()
	q.Setrun(&core.Thread{State: core.StateRunning})
}

func TestQueueCounters(t *testing.T) {
	q := New(0)
	q.Setrun(runnable(0))
	q.SelectThread(nil)
	if q.Enqueues != 1 || q.Dequeues != 1 {
		t.Fatalf("enqueues=%d dequeues=%d", q.Enqueues, q.Dequeues)
	}
}

// refQueue is the pre-ring-buffer RunQueue (append + copy(level, level[1:])
// shifting, linear level scans), kept here as the behavioral oracle for the
// O(1) implementation.
type refQueue struct {
	queues    [NumPriorities][]*core.Thread
	count     int
	enqueues  uint64
	dequeues  uint64
	highWater int
}

func (q *refQueue) setrun(t *core.Thread) {
	p := t.Priority
	if p < 0 {
		p = 0
	}
	if p >= NumPriorities {
		p = NumPriorities - 1
	}
	q.queues[p] = append(q.queues[p], t)
	q.count++
	q.enqueues++
	if q.count > q.highWater {
		q.highWater = q.count
	}
}

func (q *refQueue) selectThread() *core.Thread {
	for pri := NumPriorities - 1; pri >= 0; pri-- {
		level := q.queues[pri]
		if len(level) == 0 {
			continue
		}
		t := level[0]
		copy(level, level[1:])
		q.queues[pri] = level[:len(level)-1]
		q.count--
		q.dequeues++
		return t
	}
	return nil
}

func (q *refQueue) maxQueuedPriority() (int, bool) {
	for pri := NumPriorities - 1; pri >= 0; pri-- {
		if len(q.queues[pri]) > 0 {
			return pri, true
		}
	}
	return 0, false
}

// TestRingMatchesReference hammers the ring-buffer queue and the legacy
// slice queue with an identical interleaved workload and demands identical
// pop order, counters and priority reports at every step.
func TestRingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1991))
	q := New(0)
	ref := &refQueue{}
	for op := 0; op < 20000; op++ {
		// Biased coin: bursts of enqueues, then drains.
		if rng.Intn(3) != 0 || q.Len() == 0 {
			th := runnable(rng.Intn(NumPriorities+6) - 3)
			q.Setrun(th)
			ref.setrun(th)
		} else {
			got, want := q.SelectThread(nil), ref.selectThread()
			if got != want {
				t.Fatalf("op %d: SelectThread ring=%p ref=%p", op, got, want)
			}
		}
		if q.Len() != ref.count {
			t.Fatalf("op %d: Len ring=%d ref=%d", op, q.Len(), ref.count)
		}
		gp, gok := q.MaxQueuedPriority()
		wp, wok := ref.maxQueuedPriority()
		if gp != wp || gok != wok {
			t.Fatalf("op %d: MaxQueuedPriority ring=(%d,%v) ref=(%d,%v)", op, gp, gok, wp, wok)
		}
		if q.HasWork() != (ref.count > 0) {
			t.Fatalf("op %d: HasWork mismatch", op)
		}
	}
	for q.HasWork() {
		if got, want := q.SelectThread(nil), ref.selectThread(); got != want {
			t.Fatalf("drain: ring=%p ref=%p", got, want)
		}
	}
	if ref.selectThread() != nil {
		t.Fatal("reference not drained")
	}
	if q.Enqueues != ref.enqueues || q.Dequeues != ref.dequeues || q.HighWater != ref.highWater {
		t.Fatalf("counters: ring=(%d,%d,%d) ref=(%d,%d,%d)",
			q.Enqueues, q.Dequeues, q.HighWater, ref.enqueues, ref.dequeues, ref.highWater)
	}
}

// Property: every enqueued thread is dequeued exactly once, and dequeue
// order respects priority.
func TestQueueProperty(t *testing.T) {
	f := func(pris []uint8) bool {
		q := New(0)
		for _, p := range pris {
			q.Setrun(runnable(int(p) % NumPriorities))
		}
		last := NumPriorities
		n := 0
		for q.HasWork() {
			th := q.SelectThread(nil)
			if th == nil || th.Priority > last {
				return false
			}
			last = th.Priority
			n++
		}
		return n == len(pris) && q.Len() == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
