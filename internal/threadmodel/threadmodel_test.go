package threadmodel

import "testing"

func TestGoroutinesCostMoreThanRecords(t *testing.T) {
	gBytes, release := GoroutinePark(2000, 8)
	defer release()
	rBytes, records := RecordPark(2000)
	if len(records) != 2000 {
		t.Fatal("records missing")
	}
	if gBytes < 2048 {
		t.Errorf("goroutine bytes = %.0f, expected at least a minimum stack", gBytes)
	}
	if rBytes > 300 {
		t.Errorf("record bytes = %.0f, expected a small record", rBytes)
	}
	if gBytes <= rBytes {
		t.Errorf("space claim fails natively: goroutine %.0f <= record %.0f", gBytes, rBytes)
	}
	// The paper's 85% saving corresponds to a ratio of ~6.8; native Go
	// shows at least a few-fold gap.
	if ratio := gBytes / rBytes; ratio < 4 {
		t.Errorf("space ratio = %.1f, want >= 4", ratio)
	}
}

func TestSwitchLatencies(t *testing.T) {
	g := GoroutineSwitchNs(20000)
	r := ContinuationSwitchNs(20000)
	if g <= 0 || r <= 0 {
		t.Fatalf("latencies: g=%v r=%v", g, r)
	}
	if r >= g {
		t.Errorf("continuation switch (%.1fns) not cheaper than goroutine switch (%.1fns)", r, g)
	}
}

func TestMeasure(t *testing.T) {
	c := Measure(500, 4, 5000)
	if c.Population != 500 || c.SpaceRatio <= 1 || c.SwitchRatio <= 1 {
		t.Fatalf("comparison = %+v", c)
	}
}

func TestStackGrowthMatters(t *testing.T) {
	shallow, rel1 := GoroutinePark(500, 0)
	rel1()
	deep, rel2 := GoroutinePark(500, 64)
	rel2()
	if deep <= shallow {
		t.Skipf("stack growth not visible (shallow %.0f, deep %.0f); runtime may have reused stacks", shallow, deep)
	}
}
