// Package threadmodel validates the paper's central space/time claim
// against the real Go runtime, acknowledging the reproduction gate: Go
// owns goroutine stacks, so the simulator cannot measure true kernel
// stack savings. What CAN be measured natively is the exact analogue the
// paper exploits:
//
//   - a blocked goroutine is the process model: it retains a real stack
//     (2 KB minimum, more if the call chain grew) plus scheduler state;
//
//   - a continuation record is the interrupt model: a blocked activity
//     reduced to a function pointer, 28 bytes of scratch, and a word of
//     state — the paper's stackless thread.
//
// The package parks N of each and reports measured bytes per blocked
// activity, and runs ping-pong switches through both mechanisms to
// compare transfer latency. Results land in EXPERIMENTS.md next to Table
// 5 as the Go-native cross-check.
package threadmodel

import (
	"runtime"
	"sync"
	"time"
)

// Record is the continuation-model representation of a blocked activity:
// the analogue of the paper's stackless kernel thread (§3.4 sizes it at
// 690 bytes including the register save area; this Go record is smaller
// because the "registers" are the closure's captured variables).
type Record struct {
	// Cont is the resumption function.
	Cont func(*Record)
	// Scratch is the 28-byte save area.
	Scratch [28]byte
	// State is the scheduling state word.
	State uint32
	// ID identifies the activity.
	ID int
}

// stackGrower forces a goroutine's stack to grow to roughly depth frames
// before parking, imitating a thread that blocked deep in a call chain.
func stackGrower(depth int, ch <-chan struct{}) {
	if depth <= 0 {
		<-ch
		return
	}
	var pad [256]byte
	pad[0] = byte(depth)
	stackGrower(depth-1, ch)
	_ = pad
}

// memUsed samples heap plus goroutine stack memory.
func memUsed() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse + ms.StackInuse
}

// GoroutinePark parks n goroutines blocked on a channel, each having
// grown its stack by depth frames first, and returns the measured bytes
// per goroutine. Call the returned release function to unpark them.
func GoroutinePark(n, depth int) (bytesPer float64, release func()) {
	before := memUsed()
	ch := make(chan struct{})
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			stackGrower(depth, ch)
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the parked goroutines a moment to settle at their block.
	time.Sleep(10 * time.Millisecond)
	after := memUsed()
	per := float64(after-before) / float64(n)
	return per, func() {
		close(ch)
		wg.Wait()
	}
}

// RecordPark allocates n continuation records representing the same
// blocked population and returns measured bytes per record. The returned
// slice keeps them live.
func RecordPark(n int) (bytesPer float64, records []*Record) {
	before := memUsed()
	records = make([]*Record, n)
	for i := 0; i < n; i++ {
		records[i] = &Record{ID: i, State: 1, Cont: func(r *Record) { r.State = 2 }}
	}
	after := memUsed()
	return float64(after-before) / float64(n), records
}

// GoroutineSwitchNs measures one hop of a channel ping-pong between two
// goroutines — the goroutine-model control transfer.
func GoroutineSwitchNs(iters int) float64 {
	if iters <= 0 {
		iters = 100000
	}
	ping := make(chan struct{})
	pong := make(chan struct{})
	done := make(chan struct{})
	go func() {
		for {
			_, ok := <-ping
			if !ok {
				close(done)
				return
			}
			pong <- struct{}{}
		}
	}()
	start := time.Now()
	for i := 0; i < iters; i++ {
		ping <- struct{}{}
		<-pong
	}
	elapsed := time.Since(start)
	close(ping)
	<-done
	// Two transfers per round trip.
	return float64(elapsed.Nanoseconds()) / float64(iters) / 2
}

// ContinuationSwitchNs measures one hop of a trampoline ping-pong between
// two continuation records — the interrupt-model control transfer: no
// stack switch, just storing and calling a resumption.
func ContinuationSwitchNs(iters int) float64 {
	if iters <= 0 {
		iters = 100000
	}
	a := &Record{ID: 0}
	b := &Record{ID: 1}
	var current *Record
	hops := 0
	a.Cont = func(r *Record) { current = b }
	b.Cont = func(r *Record) { current = a }
	current = a
	start := time.Now()
	for hops = 0; hops < 2*iters; hops++ {
		c := current.Cont
		current.State++
		c(current)
	}
	elapsed := time.Since(start)
	_ = hops
	return float64(elapsed.Nanoseconds()) / float64(2*iters)
}

// Comparison bundles one full measurement for reporting.
type Comparison struct {
	Population        int
	GoroutineBytes    float64
	RecordBytes       float64
	SpaceRatio        float64
	GoroutineSwitchNs float64
	RecordSwitchNs    float64
	SwitchRatio       float64
}

// Measure runs the full comparison with a blocked population of n and
// stack depth frames.
func Measure(n, depth, switchIters int) Comparison {
	gBytes, release := GoroutinePark(n, depth)
	release()
	rBytes, records := RecordPark(n)
	runtime.KeepAlive(records)
	if rBytes < 1 {
		rBytes = 1
	}
	gSwitch := GoroutineSwitchNs(switchIters)
	rSwitch := ContinuationSwitchNs(switchIters)
	return Comparison{
		Population:        n,
		GoroutineBytes:    gBytes,
		RecordBytes:       rBytes,
		SpaceRatio:        gBytes / rBytes,
		GoroutineSwitchNs: gSwitch,
		RecordSwitchNs:    rSwitch,
		SwitchRatio:       gSwitch / rSwitch,
	}
}
