package kern

// The per-machine watchdog rides the existing DebugChecks invariant
// sweep: after every dispatcher step it looks for the two ways a
// simulated machine can wedge without tripping a structural invariant —
// a stall (runnable threads but no dispatch progress as simulated time
// passes) and a wait-for deadlock over the IPC port waiters. The
// deadlock report names each thread's saved continuation, which is the
// paper's diagnostic argument in executable form: the continuation table
// already says what every blocked thread is doing, so the blocking cycle
// can be printed without unwinding a single stack.

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// DefaultStallThreshold is how long the run queue may hold work with no
// dequeue or handoff before the stall detector fires. Generous: real
// dispatch gaps are nanoseconds of simulated time.
const DefaultStallThreshold = machine.Duration(50 * 1000 * 1000) // 50 ms

// Watchdog is the stall and deadlock detector for one machine. It is
// registered in the kernel's Invariants list, so it runs only when
// DebugChecks is enabled, and it survives warm reboots — bootSubstrates
// re-registers it on the fresh kernel state.
type Watchdog struct {
	sys *System

	// StallThreshold overrides DefaultStallThreshold when nonzero.
	StallThreshold machine.Duration

	lastProgress   uint64
	lastProgressAt machine.Time
	// armed records that the previous check already saw this same queue
	// stuck: the stall clock starts at the first stuck observation, not
	// at the last progress. The distinction matters because the clock
	// advances in jumps — a single long jump (retransmit backoff, warm
	// reboot) may deliver the event that wakes a thread, and that thread
	// has then been runnable for an instant, not for the whole jump.
	armed bool

	// Stalls and Deadlocks count detector firings; LastCycle keeps the
	// most recent deadlock's named cycle for reports and tests.
	Stalls    uint64
	Deadlocks uint64
	LastCycle []string
}

// EnableWatchdog installs the watchdog (idempotent) and returns it. The
// checks fire through core.Kernel.PostDispatchCheck, so the caller must
// also set K.DebugChecks for them to run.
func (s *System) EnableWatchdog() *Watchdog {
	if s.Watchdog == nil {
		s.Watchdog = &Watchdog{sys: s}
		s.Watchdog.register()
	}
	return s.Watchdog
}

// register hooks the watchdog into the kernel's invariant sweep and
// resets the progress baseline; called at EnableWatchdog and again by
// every warm reboot (CrashReset clears the Invariants list).
func (w *Watchdog) register() {
	s := w.sys
	w.lastProgress = 0
	w.lastProgressAt = s.K.Clock.Now()
	w.armed = false
	s.K.Invariants = append(s.K.Invariants, w.Check)
}

func (w *Watchdog) threshold() machine.Duration {
	if w.StallThreshold != 0 {
		return w.StallThreshold
	}
	return DefaultStallThreshold
}

// Check is one watchdog pass; the invariant sweep runs it after every
// dispatcher step, and tests may call it directly. A non-nil return
// turns the hang into an immediate, named panic under DebugChecks.
func (w *Watchdog) Check() error {
	s := w.sys
	if s.Down {
		// A crashed machine is idle by definition, not stalled.
		w.lastProgressAt = s.K.Clock.Now()
		w.armed = false
		return nil
	}
	if cycle := s.IPC.FindDeadlock(); cycle != nil {
		w.Deadlocks++
		w.LastCycle = append(w.LastCycle[:0], cycle...)
		return fmt.Errorf("watchdog: deadlock cycle: %s", strings.Join(cycle, " -> "))
	}
	progress := s.Sched.Dequeues + s.K.Stats.Handoffs
	now := s.K.Clock.Now()
	if progress != w.lastProgress || s.Sched.Len() == 0 {
		w.lastProgress = progress
		w.lastProgressAt = now
		w.armed = false
		return nil
	}
	if !w.armed {
		// First sight of this stuck queue — start the stall clock here.
		w.armed = true
		w.lastProgressAt = now
		return nil
	}
	if now-w.lastProgressAt > w.threshold() {
		w.Stalls++
		names := make([]string, 0, s.Sched.Len())
		for _, t := range s.Sched.Queued() {
			names = append(names, t.Name)
		}
		cur := "idle"
		for _, p := range s.K.Procs {
			if p.Cur != nil {
				cur = p.Cur.Name
			}
		}
		return fmt.Errorf("watchdog: stall: %d threads runnable [%s] behind %s (inc %d), no dispatch progress since %v",
			s.Sched.Len(), strings.Join(names, ", "), cur, s.Incarnation, w.lastProgressAt)
	}
	return nil
}
