package kern_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

func bootNetPair(t *testing.T) (a, b *kern.System, cluster *kern.Cluster) {
	t.Helper()
	cfg := kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100}
	a, b = kern.New(cfg), kern.New(cfg)
	dev.Connect(a.Net.NIC, b.Net.NIC, 0)
	a.Net.EnableReliable()
	b.Net.EnableReliable()
	return a, b, kern.NewCluster(a, b)
}

// startSink installs a forever-receiver on an exported port and returns
// the slice of received bodies. Reusable as an OnReboot script.
func startSink(sys *kern.System, wireName string, got *[]int) {
	port := sys.IPC.NewPort(wireName + "-local")
	sys.Net.Export(wireName, port)
	task := sys.NewTask("sink")
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := sys.IPC.Received(th); m != nil {
			*got = append(*got, m.Body.(int))
			sys.IPC.FreeMessage(m)
		}
		return core.Syscall("recv", func(e *core.Env) {
			sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		})
	})
	sys.Start(task.NewThread("rcv", prog, 20))
}

// startSpray sends n one-way messages from sys to the named remote port.
func startSpray(sys *kern.System, remote string, n int) {
	proxy := sys.Net.ProxyFor(remote)
	task := sys.NewTask("spray")
	sent := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent >= n {
			return core.Exit()
		}
		sent++
		seq := sent
		return core.Syscall("net-send", func(e *core.Env) {
			m := sys.IPC.NewMessage(1, 256, seq, nil)
			sys.IPC.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: proxy})
		})
	})
	sys.Start(task.NewThread("tx", prog, 10))
}

// TestCrashAndWarmReboot crashes the receiving machine mid-stream and
// checks the whole recovery contract: panic record captured, in-flight
// state dropped, incarnation bumped, boot sequence re-run, and the
// rebooted machine able to receive again.
func TestCrashAndWarmReboot(t *testing.T) {
	a, b, cluster := bootNetPair(t)
	var got []int
	startSink(b, "svc", &got)
	b.OnReboot = func(s *kern.System) { startSink(s, "svc", &got) }
	startSpray(a, "svc", 40)

	b.ScheduleCrash(machine.Time(5*1e6), machine.Duration(10*1e6))
	for cluster.Step(false) {
	}

	if b.CrashCount != 1 || b.Reboots != 1 {
		t.Fatalf("CrashCount=%d Reboots=%d, want 1/1", b.CrashCount, b.Reboots)
	}
	if b.Incarnation != 2 {
		t.Fatalf("Incarnation = %d, want 2", b.Incarnation)
	}
	if b.Down {
		t.Fatal("machine still down after reboot")
	}
	rec := b.PanicRecord
	if rec == nil {
		t.Fatal("no panic record captured")
	}
	if rec.Incarnation != 1 {
		t.Fatalf("panic record incarnation = %d, want 1", rec.Incarnation)
	}
	if len(rec.Threads) == 0 {
		t.Fatal("panic record captured no halted continuations")
	}
	// The event fires at the first dispatcher boundary at or after the
	// scheduled tick (execution costs advance the clock between events).
	if rec.At < machine.Time(5*1e6) || rec.At > machine.Time(6*1e6) {
		t.Fatalf("panic record at %v, want ~5ms", rec.At)
	}
	if !strings.Contains(rec.String(), "inc=1") {
		t.Fatalf("panic record string %q", rec.String())
	}
	// The rebooted incarnation received fresh messages: the sink was
	// reinstalled by OnReboot and the sender's retransmits re-stamped
	// nothing — only packets stamped for incarnation 1 are stale.
	if len(got) == 0 {
		t.Fatal("rebooted machine never received a message")
	}
	seen := make(map[int]int)
	for _, v := range got {
		seen[v]++
		if seen[v] > 1 {
			t.Fatalf("message %d delivered twice across the reboot", v)
		}
	}
	// A second crash of a down machine is a no-op; rebooting an up
	// machine likewise.
	down := b.Down
	b.Reboot()
	if b.Reboots != 1 || b.Down != down {
		t.Fatal("Reboot of an up machine was not a no-op")
	}
}

// TestStaleIncarnationPacketDropped is the delayed-packet rule: a packet
// stamped for incarnation k that arrives after the machine rebooted into
// k+1 must be discarded as stale, never delivered — even though a live
// receiver is waiting on the destination port.
func TestStaleIncarnationPacketDropped(t *testing.T) {
	a, b, cluster := bootNetPair(t)
	// Every packet a transmits is held on the wire for 150ms — long
	// enough to overfly b's entire down window (crash at 50ms, reboot at
	// 100ms) and arrive at the new incarnation.
	a.Net.NIC.Fault = fault.New(7, fault.Spec{DelayProb: 1.0, DelayExtra: machine.Duration(150 * 1e6)})
	var got []int
	startSink(b, "svc", &got)
	b.OnReboot = func(s *kern.System) { startSink(s, "svc", &got) }
	startSpray(a, "svc", 1)

	b.ScheduleCrash(machine.Time(50*1e6), machine.Duration(50*1e6))
	for cluster.Step(false) {
	}

	if b.Incarnation != 2 {
		t.Fatalf("Incarnation = %d, want 2", b.Incarnation)
	}
	if len(got) != 0 {
		t.Fatalf("stale packet was delivered: got %v", got)
	}
	if b.NetTotals().StaleDropped == 0 {
		t.Fatal("no packet was stale-dropped — the delayed packet never arrived?")
	}
}

// TestCrashDropsUnackedTowardDeadIncarnation: once the sender learns the
// peer rebooted (its announcement carries the new incarnation), packets
// still unacknowledged toward the dead incarnation are declared lost
// immediately instead of burning the full retransmit backoff.
func TestCrashDropsUnackedTowardDeadIncarnation(t *testing.T) {
	a, b, cluster := bootNetPair(t)
	a.Net.NIC.Fault = fault.New(7, fault.Spec{DelayProb: 1.0, DelayExtra: machine.Duration(150 * 1e6)})
	var got []int
	startSink(b, "svc", &got)
	startSpray(a, "svc", 1)
	b.ScheduleCrash(machine.Time(50*1e6), machine.Duration(50*1e6))
	for cluster.Step(false) {
	}
	if a.Net.UnackedLen() != 0 {
		t.Fatalf("%d packets still unacked at quiescence", a.Net.UnackedLen())
	}
	if a.NetTotals().Lost == 0 {
		t.Fatal("the doomed packet was never declared lost")
	}
	// Quiescence must arrive well before the full backoff schedule (the
	// un-pruned schedule runs past 2 simulated seconds).
	if now := a.K.Clock.Now(); now > machine.Time(1e9) {
		t.Fatalf("cluster quiesced only at %v — unacked pruning did not fire", now)
	}
}

// exitProg exits on first dispatch.
var exitProg = core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
	return core.Exit()
})

// TestWatchdogStallDetector drives Watchdog.Check by hand: a runnable
// thread with no dispatch progress trips the detector only after the
// stall clock — armed at the first stuck observation, not at the last
// progress — exceeds the threshold.
func TestWatchdogStallDetector(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100})
	w := sys.EnableWatchdog()
	task := sys.NewTask("t")
	sys.Start(task.NewThread("stuck", exitProg, 10))

	// First sight of the stuck queue arms the detector without firing:
	// the thread may have become runnable an instant ago.
	if err := w.Check(); err != nil {
		t.Fatalf("first observation fired early: %v", err)
	}
	sys.K.Clock.Advance(machine.Duration(60 * 1e6))
	err := w.Check()
	if err == nil {
		t.Fatal("stall not detected after 60ms without progress")
	}
	if !strings.Contains(err.Error(), "stall") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("stall error does not name the stuck thread: %v", err)
	}
	if w.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", w.Stalls)
	}

	// Dispatching clears it.
	sys.K.Run(0)
	if err := w.Check(); err != nil {
		t.Fatalf("watchdog still failing after progress: %v", err)
	}
}

// crossServer is one half of a constructed two-port deadlock: receive a
// priming message from its own port, then send a request to the peer's
// port and block forever awaiting the reply.
type crossServer struct {
	sys        *kern.System
	mine, peer *ipc.Port
	reply      *ipc.Port
	primed     bool
}

func (s *crossServer) Next(e *core.Env, t *core.Thread) core.Action {
	if !s.primed {
		if m := s.sys.IPC.Received(t); m != nil {
			s.sys.IPC.FreeMessage(m)
			s.primed = true
		} else {
			return core.Syscall("prime", func(e *core.Env) {
				s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.mine})
			})
		}
	}
	return core.Syscall("cross-rpc", func(e *core.Env) {
		req := s.sys.IPC.NewMessage(1, ipc.HeaderBytes, nil, s.reply)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: req, SendTo: s.peer, ReceiveFrom: s.reply,
		})
	})
}

// TestDeadlockDetectorNamesCycle constructs the classic two-port cycle —
// each thread owns a port holding the other's request and each awaits a
// reply only the other can send — and checks the detector reports the
// cycle by thread and continuation name.
func TestDeadlockDetectorNamesCycle(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100})
	w := sys.EnableWatchdog()
	pa := sys.IPC.NewPort("port-a")
	pb := sys.IPC.NewPort("port-b")
	ra := sys.IPC.NewPort("reply-a")
	rb := sys.IPC.NewPort("reply-b")

	ta := sys.NewTask("A")
	tb := sys.NewTask("B")
	sys.Start(ta.NewThread("alpha", &crossServer{sys: sys, mine: pa, peer: pb, reply: ra}, 20))
	sys.Start(tb.NewThread("beta", &crossServer{sys: sys, mine: pb, peer: pa, reply: rb}, 15))

	// The primer makes each thread its port's last receiver before the
	// cross-requests queue up.
	primer := sys.NewTask("primer")
	sent := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent >= 2 {
			return core.Exit()
		}
		sent++
		target := pa
		if sent == 2 {
			target = pb
		}
		return core.Syscall("prime-send", func(e *core.Env) {
			m := sys.IPC.NewMessage(9, ipc.HeaderBytes, nil, nil)
			sys.IPC.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: target})
		})
	})
	sys.Start(primer.NewThread("primer", prog, 31))

	sys.K.Run(0)

	cycle := sys.IPC.FindDeadlock()
	if cycle == nil {
		t.Fatal("no deadlock found in a constructed two-port cycle")
	}
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v, want the two cross-blocked threads", cycle)
	}
	joined := strings.Join(cycle, " -> ")
	if !strings.Contains(joined, "alpha") || !strings.Contains(joined, "beta") {
		t.Fatalf("cycle does not name both threads: %v", cycle)
	}
	for _, entry := range cycle {
		if !strings.Contains(entry, "(") || strings.Contains(entry, "(<stack>)") {
			t.Fatalf("cycle entry %q does not name a continuation", entry)
		}
	}

	err := w.Check()
	if err == nil || !strings.Contains(err.Error(), "deadlock cycle") {
		t.Fatalf("watchdog did not surface the deadlock: %v", err)
	}
	if w.Deadlocks != 1 || len(w.LastCycle) != 2 {
		t.Fatalf("Deadlocks=%d LastCycle=%v", w.Deadlocks, w.LastCycle)
	}
}

// leakyReceiver receives one message, keeps it, and exits without
// freeing — the reaper must release the pooled buffer on its behalf.
type leakyReceiver struct {
	sys  *kern.System
	port *ipc.Port
	got  bool
}

func (r *leakyReceiver) Next(e *core.Env, t *core.Thread) core.Action {
	if r.got {
		return core.Exit()
	}
	if m := r.sys.IPC.Received(t); m != nil {
		r.got = true
		// Deliberately neither freed nor consumed: thread exits owning it.
		return core.Exit()
	}
	return core.Syscall("recv", func(e *core.Env) {
		r.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: r.port})
	})
}

// TestReaperReleasesHaltedThreadResources: a thread that exits while
// owning a delivered message must be fully released by the reaper — the
// reaper's census panics on any leak, so completing the run plus a zero
// residue is the assertion.
func TestReaperReleasesHaltedThreadResources(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100})
	sys.K.DebugChecks = true
	port := sys.IPC.NewPort("leak")
	rt := sys.NewTask("rcv")
	leaky := &leakyReceiver{sys: sys, port: port}
	th := rt.NewThread("leaky", leaky, 20)
	sys.Start(th)

	st := sys.NewTask("snd")
	sent := false
	sys.Start(st.NewThread("sender", core.ProgramFunc(func(e *core.Env, t *core.Thread) core.Action {
		if sent {
			return core.Exit()
		}
		sent = true
		return core.Syscall("send", func(e *core.Env) {
			m := sys.IPC.NewMessage(1, 128, 42, nil)
			sys.IPC.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		})
	}), 10))

	sys.K.Run(0)

	if !leaky.got {
		t.Fatal("receiver never got the message")
	}
	if sys.Reaped < 1 {
		t.Fatalf("Reaped = %d, want >= 1", sys.Reaped)
	}
	if res := sys.IPC.Residue(th); res != 0 {
		t.Fatalf("halted thread still owns %d IPC resources", res)
	}
	sys.K.MustValidate()
}

// refusingServer receives one request and answers it with a typed
// overload refusal instead of servicing it — the admission-reject shape
// every shedding tier uses. The request buffer is freed on dequeue, the
// refusal is a fresh pooled message.
type refusingServer struct {
	sys    *kern.System
	port   *ipc.Port
	served bool
}

func (s *refusingServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		reply := m.Reply
		s.sys.IPC.FreeMessage(m)
		s.served = true
		return core.Syscall("refuse", func(e *core.Env) {
			rm := s.sys.IPC.NewMessage(2, 128, "rejected:admission", nil)
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{Send: rm, SendTo: reply})
		})
	}
	if s.served {
		return core.Exit()
	}
	return core.Syscall("recv", func(e *core.Env) {
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
	})
}

// shedCaller sends one op and waits for the reply. On seeing the typed
// refusal it exits still owning the delivered buffer — a shed session
// tearing down without a drain pass. With timeout set it instead parks
// on the receive with an armed callout, the shape a deadline-expired
// caller is aborted out of.
type shedCaller struct {
	sys     *kern.System
	svc     *ipc.Port
	reply   *ipc.Port
	timeout machine.Duration
	sent    bool
	got     string
}

func (c *shedCaller) Next(e *core.Env, t *core.Thread) core.Action {
	if m := c.sys.IPC.Received(t); m != nil {
		c.got, _ = m.Body.(string)
		// Deliberately neither freed nor consumed: the shed path exits
		// owning the refusal buffer.
		return core.Exit()
	}
	if c.sent {
		return core.Exit()
	}
	c.sent = true
	return core.Syscall("call", func(e *core.Env) {
		m := c.sys.IPC.NewMessage(1, 128, "op", c.reply)
		c.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: m, SendTo: c.svc,
			ReceiveFrom: c.reply, RcvTimeout: c.timeout,
		})
	})
}

// TestReaperReleasesRejectedCallerResources extends the residue
// assertion to the overload rejection paths: a caller that exits owning
// a typed refusal reply, and one aborted out of a blocked receive with
// its timeout callout still armed, must both reap to zero residue — the
// pooled buffer and the waiter registration go back to the free lists,
// so shedding under overload cannot leak pool objects.
func TestReaperReleasesRejectedCallerResources(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100})
	sys.K.DebugChecks = true

	// Path 1: refusal delivered, caller exits owning the buffer.
	svcPort := sys.IPC.NewPort("svc")
	srv := &refusingServer{sys: sys, port: svcPort}
	st := sys.NewTask("srv")
	sys.Start(st.NewThread("server", srv, 20))
	ct := sys.NewTask("cli")
	shed := &shedCaller{sys: sys, svc: svcPort, reply: sys.IPC.NewPort("cli-reply")}
	shedTh := ct.NewThread("shed", shed, 10)
	sys.Start(shedTh)
	sys.Run(0)

	if shed.got != "rejected:admission" {
		t.Fatalf("caller got %q, want the typed refusal", shed.got)
	}
	if res := sys.IPC.Residue(shedTh); res != 0 {
		t.Fatalf("shed caller still owns %d IPC resources", res)
	}

	// Path 2: caller parked on a dead service with an armed receive
	// timeout; the shed decision aborts it mid-wait. The registration
	// must be cancelled and its callout disarmed.
	dead := sys.IPC.NewPort("dead-svc")
	aband := &shedCaller{sys: sys, svc: dead, reply: sys.IPC.NewPort("aband-reply"),
		timeout: machine.Duration(1_000_000_000)}
	abandTh := ct.NewThread("abandoned", aband, 10)
	sys.Start(abandTh)
	// Run up to a probe tick placed well short of the receive timeout:
	// the idle clock jumps event-to-event, so without the tick a bounded
	// Run would overshoot straight into the timeout firing. At the tick
	// the caller is parked with the callout still armed.
	tick := sys.K.Clock.Now() + machine.Duration(1e6)
	sys.K.Clock.After(machine.Duration(1e6), "park-probe", func() {})
	sys.Run(tick)
	if abandTh.State != core.StateWaiting {
		t.Fatalf("abandoned caller state = %v, want waiting", abandTh.State)
	}
	armed := sys.K.Clock.Pending()
	if !sys.ThreadAbort(abandTh) {
		t.Fatal("ThreadAbort refused the parked caller")
	}
	// The receive timeout must be disarmed synchronously with the abort
	// (background housekeeping events stay, so compare, don't expect 0).
	if got := sys.K.Clock.Pending(); got != armed-1 {
		t.Fatalf("armed callouts %d -> %d; receive timeout not disarmed", armed, got)
	}
	sys.Run(0)
	if abandTh.State != core.StateHalted {
		t.Fatalf("abandoned caller state = %v, want halted", abandTh.State)
	}
	if res := sys.IPC.Residue(abandTh); res != 0 {
		t.Fatalf("aborted caller still owns %d IPC resources", res)
	}
	if sys.Reaped < 3 {
		t.Fatalf("Reaped = %d, want >= 3", sys.Reaped)
	}
	sys.K.MustValidate()
}

// TestWatchdogNoSpuriousStallAfterCrashReboot: a machine that crashes
// while the stall detector is armed must not fire a spurious stall in
// the rebooted incarnation. The pre-crash stuck queue died with the old
// incarnation, and the downtime is idleness, not lack of progress — the
// reboot re-registers the watchdog with a fresh baseline, and the Down
// window itself re-baselines the stall clock.
func TestWatchdogNoSpuriousStallAfterCrashReboot(t *testing.T) {
	_, sys, _ := bootNetPair(t)
	sys.K.DebugChecks = true
	w := sys.EnableWatchdog()
	w.StallThreshold = machine.Duration(20 * 1e6)

	task := sys.NewTask("t")
	sys.Start(task.NewThread("stuck", exitProg, 10))
	// First stuck observation arms the stall clock without firing.
	if err := w.Check(); err != nil {
		t.Fatalf("arming observation fired: %v", err)
	}

	// Crash while armed; sit down well past the stall threshold.
	sys.Crash(machine.Duration(60 * 1e6))
	sys.K.Clock.Advance(machine.Duration(30 * 1e6))
	if err := w.Check(); err != nil {
		t.Fatalf("watchdog fired on a down machine: %v", err)
	}
	sys.K.Clock.Advance(machine.Duration(30 * 1e6))
	sys.Reboot()
	if sys.Incarnation != 2 {
		t.Fatalf("Incarnation = %d, want 2", sys.Incarnation)
	}

	// The new incarnation boots with its own runnable threads; neither
	// the stale arming nor the 60ms clock jump may count against them.
	if err := w.Check(); err != nil {
		t.Fatalf("spurious stall after warm reboot: %v", err)
	}
	sys.Run(0)
	if err := w.Check(); err != nil {
		t.Fatalf("watchdog failing after post-reboot dispatch: %v", err)
	}
	if w.Stalls != 0 {
		t.Fatalf("Stalls = %d across crash/reboot, want 0", w.Stalls)
	}
}
