package kern

import (
	"repro/internal/machine"
)

// Cluster drives several booted systems (machines) whose clocks are
// independent but whose NICs are cross-wired: a transmit on one machine
// schedules an arrival on the peer's clock at an absolute time.
//
// The stepping rule keeps delivery deterministic: a machine's clock never
// advances past "now" while any machine still has work at its present
// time, and when every machine is idle the one with the earliest pending
// event advances. This is a conservative two-clock discretization — no
// machine can observe an event from the future of another.
type Cluster struct {
	Systems []*System
}

// NewCluster groups machines for lockstep driving.
func NewCluster(systems ...*System) *Cluster {
	return &Cluster{Systems: systems}
}

// Step makes progress on exactly one machine: first any machine with work
// at its current time (earliest clock first, so the machine that is
// "behind" catches up before peers run ahead), otherwise the machine with
// the earliest pending event advances its clock and fires it. Returns
// false when no machine can make progress.
func (c *Cluster) Step(withBackground bool) bool {
	// Work at the present, earliest clock first.
	order := make([]*System, len(c.Systems))
	copy(order, c.Systems)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].K.Clock.Now() < order[j-1].K.Clock.Now(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, s := range order {
		if s.K.StepNoAdvance() {
			return true
		}
	}
	// Everyone is idle at the present: advance the earliest pending event.
	var best *System
	var bestAt machine.Time
	for _, s := range order {
		if !withBackground && !s.K.Clock.HasForeground() {
			continue
		}
		at, ok := s.K.Clock.NextEventTime()
		if !ok {
			continue
		}
		if best == nil || at < bestAt {
			best, bestAt = s, at
		}
	}
	if best == nil {
		return false
	}
	if ev := best.K.Clock.AdvanceToNextEvent(); ev != nil {
		ev.Fire()
		best.K.PostDispatchCheck()
		return true
	}
	return false
}

// Run steps the cluster until no machine can progress or every clock has
// reached the deadline. Returns total steps taken.
func (c *Cluster) Run(deadline machine.Time) uint64 {
	var steps uint64
	for {
		past := true
		for _, s := range c.Systems {
			if s.K.Clock.Now() < deadline {
				past = false
				break
			}
		}
		if past {
			return steps
		}
		if !c.Step(false) {
			return steps
		}
		steps++
	}
}
