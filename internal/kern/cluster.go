package kern

import (
	"repro/internal/machine"
)

// Cluster drives several booted systems (machines) whose clocks are
// independent but whose NICs are cross-wired: a transmit on one machine
// schedules an arrival on the peer's clock at an absolute time.
//
// Two drivers are available. Step interleaves the machines one dispatcher
// action at a time (the legacy two-clock rule); Drive runs conservative
// rounds against a safe horizon — the earliest instant any cross-machine
// packet could arrive — letting every machine simulate independently up
// to the horizon, then exchanging the buffered packets at a barrier. With
// parallel=true the rounds run one goroutine per machine; the results are
// byte-identical either way, because a round's execution never lets one
// machine observe another's state and the barrier merge is ordered by
// machine index, NIC index and emission counter, never by goroutine
// timing.
type Cluster struct {
	Systems []*System

	// order is the reusable sorted view of Step: hoisted here so the
	// per-step sort allocates nothing.
	order []*System
}

// NewCluster groups machines for lockstep driving.
func NewCluster(systems ...*System) *Cluster {
	return &Cluster{Systems: systems}
}

// Step makes progress on exactly one machine: first any machine with work
// at its current time (earliest clock first, so the machine that is
// "behind" catches up before peers run ahead), otherwise the machine with
// the earliest pending event advances its clock and fires it. Returns
// false when no machine can make progress.
func (c *Cluster) Step(withBackground bool) bool {
	if cap(c.order) < len(c.Systems) {
		c.order = make([]*System, len(c.Systems))
	}
	// Work at the present, earliest clock first.
	order := c.order[:len(c.Systems)]
	copy(order, c.Systems)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].K.Clock.Now() < order[j-1].K.Clock.Now(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, s := range order {
		if s.K.StepNoAdvance() {
			return true
		}
	}
	// Everyone is idle at the present: advance the earliest pending event.
	var best *System
	var bestAt machine.Time
	for _, s := range order {
		if !withBackground && !s.K.Clock.HasForeground() {
			continue
		}
		at, ok := s.K.Clock.NextEventTime()
		if !ok {
			continue
		}
		if best == nil || at < bestAt {
			best, bestAt = s, at
		}
	}
	if best == nil {
		return false
	}
	if ev := best.K.Clock.AdvanceToNextEvent(); ev != nil {
		ev.Fire()
		best.K.PostDispatchCheck()
		return true
	}
	return false
}

// Run steps the cluster sequentially until no machine can progress or
// every clock has reached the deadline. Returns total steps taken.
func (c *Cluster) Run(deadline machine.Time) uint64 {
	var steps uint64
	for {
		past := true
		for _, s := range c.Systems {
			if s.K.Clock.Now() < deadline {
				past = false
				break
			}
		}
		if past {
			return steps
		}
		if !c.Step(false) {
			return steps
		}
		steps++
	}
}

// maxTime is the horizon used when no wire couples the machines: each is
// free to run to quiescence.
const maxTime = ^machine.Time(0)

// minWire returns the smallest one-way latency of any connected NIC in
// the cluster — the lookahead of the conservative horizon — and false
// when no NIC is connected.
func (c *Cluster) minWire() (machine.Duration, bool) {
	var wire machine.Duration
	have := false
	for _, s := range c.Systems {
		for _, n := range s.Dev.NICs() {
			if n.Peer() == nil {
				continue
			}
			if !have || n.Wire < wire {
				wire, have = n.Wire, true
			}
		}
	}
	return wire, have
}

// nextActivity returns the earliest simulated time at which the machine
// could next execute anything (and therefore transmit): its own clock
// when it has work at the present, otherwise its next pending event. A
// machine with only background events reports false — the Step(false)
// quiescence rule.
func nextActivity(s *System) (machine.Time, bool) {
	k := s.K
	if k.HasPresentWork() {
		return k.Clock.Now(), true
	}
	if !k.Clock.HasForeground() {
		return 0, false
	}
	return k.Clock.NextEventTime()
}

// horizon computes the next round's safe horizon: no cross-machine packet
// can arrive before the earliest machine activity plus the smallest wire
// latency. Returns false when every machine is quiescent.
func (c *Cluster) horizon() (machine.Time, bool) {
	var earliest machine.Time
	have := false
	for _, s := range c.Systems {
		at, ok := nextActivity(s)
		if ok && (!have || at < earliest) {
			earliest, have = at, true
		}
	}
	if !have {
		return 0, false
	}
	wire, haveWire := c.minWire()
	if !haveWire || earliest > maxTime-wire {
		return maxTime, true
	}
	return earliest + wire, true
}

// flush delivers every packet buffered during a round, in machine-index,
// NIC-index, emission order. The arrival events' heap positions are fixed
// by their ScheduleRemote keys, so this order is a convention, not a
// correctness requirement. Single-threaded.
func (c *Cluster) flush() int {
	delivered := 0
	for _, s := range c.Systems {
		for _, n := range s.Dev.NICs() {
			delivered += n.FlushDeferred()
		}
	}
	return delivered
}

// setDeferred switches every NIC between immediate and barrier delivery.
func (c *Cluster) setDeferred(on bool) {
	for _, s := range c.Systems {
		for _, n := range s.Dev.NICs() {
			n.SetDeferred(on)
		}
	}
}

// Drive runs the cluster to quiescence with the horizon-round driver and
// returns total dispatcher steps taken. With parallel=true each round
// runs the machines on their own goroutines; with parallel=false the same
// rounds run inline. Output is byte-identical across the two modes and
// any GOMAXPROCS value.
func (c *Cluster) Drive(parallel bool) uint64 {
	c.setDeferred(true)
	defer c.setDeferred(false)

	var work []chan machine.Time
	var results chan uint64
	if parallel && len(c.Systems) > 1 {
		work = make([]chan machine.Time, len(c.Systems))
		results = make(chan uint64, len(c.Systems))
		for i, s := range c.Systems {
			ch := make(chan machine.Time)
			work[i] = ch
			go func(s *System, ch chan machine.Time) {
				for h := range ch {
					results <- s.K.RunHorizon(h)
				}
			}(s, ch)
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	var total uint64
	for {
		h, ok := c.horizon()
		if !ok {
			return total
		}
		if work != nil {
			for _, ch := range work {
				ch <- h
			}
			for range c.Systems {
				total += <-results
			}
		} else {
			for _, s := range c.Systems {
				total += s.K.RunHorizon(h)
			}
		}
		c.flush()
	}
}

// MinWireForTest exposes the lookahead for tests.
func (c *Cluster) MinWireForTest() (machine.Duration, bool) { return c.minWire() }

// HorizonForTest, FlushForTest and SetDeferredForTest expose the round
// primitives so driver-level tests can replay Drive's loop by hand and
// measure per-round, per-machine work.
func (c *Cluster) HorizonForTest() (machine.Time, bool) { return c.horizon() }
func (c *Cluster) FlushForTest() int                    { return c.flush() }
func (c *Cluster) SetDeferredForTest(on bool)           { c.setDeferred(on) }
