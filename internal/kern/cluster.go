package kern

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/dev"
	"repro/internal/machine"
)

// Cluster drives several booted systems (machines) whose clocks are
// independent but whose NICs are cross-wired: a transmit on one machine
// schedules an arrival on the peer's clock at an absolute time.
//
// Two drivers are available. Step interleaves the machines one dispatcher
// action at a time (the legacy two-clock rule); Drive runs conservative
// rounds against a safe horizon — the earliest instant any cross-machine
// packet could arrive — letting every machine simulate independently up
// to the horizon, then exchanging the buffered packets at a barrier. With
// parallel=true the rounds run on a bounded worker pool; the results are
// byte-identical either way, because a round's execution never lets one
// machine observe another's state and the barrier merge is ordered by
// machine index, NIC index and emission counter, never by goroutine
// timing.
//
// Driving cost is O(active machines + log N) per round, not O(N): the
// per-machine next-activity times live in an indexed min-heap repaired
// lazily from a dirty queue (machines mark themselves through their
// clock's activity watcher, the driver marks the machines it ran and the
// flush marks the machines it delivered to), the wire lookahead is cached
// until a link setting, crash or reboot invalidates it, and the barrier
// flush drains only the NICs that buffered packets this round. Machines
// with no activity before the horizon are never woken, scanned, or
// scheduled onto worker goroutines.
type Cluster struct {
	Systems []*System

	// CrossCheck, when set before driving, re-derives every round's
	// horizon with the naive full sweep and verifies the barrier flush
	// left nothing buffered, panicking on any divergence from the
	// incremental heap, wire cache, or dirty-flush list. Test-only
	// oracle; costs O(N) per round.
	CrossCheck bool

	// order is Step's reusable machine-index view, kept sorted by
	// (clock, systems index) incrementally: after a step only the
	// machine that ran can be out of place, so each call re-settles one
	// element instead of copying and insertion-sorting the whole slice.
	order []int

	// Activity heap: actKey[i] is machine i's cached next-activity time,
	// meaningful while heapPos[i] >= 0; actHeap holds the indices of
	// machines with pending activity ordered by (key, index). dirtyQ and
	// dirtyFlag queue machines whose cached activity must be recomputed
	// at the next round start.
	actKey    []machine.Time
	heapPos   []int
	actHeap   []int
	dirtyQ    []int
	dirtyFlag []bool

	// inRound suppresses dirty-queue appends while machine rounds
	// execute (possibly on worker goroutines): the driver re-marks every
	// active machine at the barrier anyway, and the suppression keeps
	// the queue single-writer. Written only between rounds; the fan-out
	// and barrier channels order it against the workers' reads.
	inRound bool

	// Cached wire lookahead, invalidated by SetLink and by any machine's
	// crash or reboot (polled via TakeTopoChanged at the barrier).
	wire     machine.Duration
	haveWire bool
	wireOK   bool

	// curHorizon is the horizon parallel workers read for the round being
	// fanned out; the jobs channel orders the write against their reads.
	curHorizon machine.Time

	// Scratch buffers, reused across rounds.
	active []int
	scan   []int
}

// NewCluster groups machines for lockstep driving and installs each
// machine's activity watcher. A system belongs to at most one live
// cluster: a later NewCluster over the same systems takes the watchers
// over.
func NewCluster(systems ...*System) *Cluster {
	c := &Cluster{Systems: systems}
	n := len(systems)
	c.actKey = make([]machine.Time, n)
	c.heapPos = make([]int, n)
	c.actHeap = make([]int, 0, n)
	c.dirtyQ = make([]int, 0, n)
	c.dirtyFlag = make([]bool, n)
	c.active = make([]int, 0, n)
	c.scan = make([]int, 0, n)
	for i := range c.heapPos {
		c.heapPos[i] = -1
	}
	for i, s := range systems {
		i := i
		s.K.Clock.SetActivityWatcher(func() { c.markDirty(i) })
		c.markDirty(i)
	}
	return c
}

// markDirty queues machine i for activity recomputation at the next
// round start. Idempotent; suppressed while a round is executing (the
// driver re-marks active machines at the barrier).
func (c *Cluster) markDirty(i int) {
	if c.inRound || c.dirtyFlag[i] {
		return
	}
	c.dirtyFlag[i] = true
	c.dirtyQ = append(c.dirtyQ, i)
}

// stepLess orders Step's view: earliest clock first, ties broken by
// systems index — exactly the order the old per-call stable insertion
// sort produced, so Step's interleaving is unchanged.
func (c *Cluster) stepLess(a, b int) bool {
	na, nb := c.Systems[a].K.Clock.Now(), c.Systems[b].K.Clock.Now()
	return na < nb || (na == nb && a < b)
}

// ensureOrder (re)builds Step's sorted view when it is missing or stale.
func (c *Cluster) ensureOrder() {
	if len(c.order) == len(c.Systems) {
		return
	}
	c.order = c.order[:0]
	for i := range c.Systems {
		c.order = append(c.order, i)
	}
	for i := 1; i < len(c.order); i++ {
		for j := i; j > 0 && c.stepLess(c.order[j], c.order[j-1]); j-- {
			c.order[j], c.order[j-1] = c.order[j-1], c.order[j]
		}
	}
}

// resettle restores order after the machine at position pos ran: its
// clock only moves forward, so it can only drift toward the back.
func (c *Cluster) resettle(pos int) {
	o := c.order
	for ; pos+1 < len(o) && c.stepLess(o[pos+1], o[pos]); pos++ {
		o[pos], o[pos+1] = o[pos+1], o[pos]
	}
}

// InvalidateOrder discards Step's sorted view; callers that advance a
// machine's clock outside Step (direct Run calls between Steps) must
// invalidate before stepping again. Drive invalidates automatically.
func (c *Cluster) InvalidateOrder() { c.order = c.order[:0] }

// Step makes progress on exactly one machine: first any machine with work
// at its current time (earliest clock first, so the machine that is
// "behind" catches up before peers run ahead), otherwise the machine with
// the earliest pending event advances its clock and fires it. Returns
// false when no machine can make progress.
func (c *Cluster) Step(withBackground bool) bool {
	c.ensureOrder()
	for pos, idx := range c.order {
		if c.Systems[idx].K.StepNoAdvance() {
			c.resettle(pos)
			return true
		}
	}
	// Everyone is idle at the present: advance the earliest pending event.
	bestPos := -1
	var bestAt machine.Time
	for pos, idx := range c.order {
		s := c.Systems[idx]
		if !withBackground && !s.K.Clock.HasForeground() {
			continue
		}
		at, ok := s.K.Clock.NextEventTime()
		if !ok {
			continue
		}
		if bestPos < 0 || at < bestAt {
			bestPos, bestAt = pos, at
		}
	}
	if bestPos < 0 {
		return false
	}
	s := c.Systems[c.order[bestPos]]
	if ev := s.K.Clock.AdvanceToNextEvent(); ev != nil {
		ev.Fire()
		s.K.PostDispatchCheck()
		c.resettle(bestPos)
		return true
	}
	return false
}

// Run steps the cluster sequentially until no machine can progress or
// every clock has reached the deadline. Returns total steps taken.
func (c *Cluster) Run(deadline machine.Time) uint64 {
	var steps uint64
	for {
		past := true
		for _, s := range c.Systems {
			if s.K.Clock.Now() < deadline {
				past = false
				break
			}
		}
		if past {
			return steps
		}
		if !c.Step(false) {
			return steps
		}
		steps++
	}
}

// maxTime is the horizon used when no wire couples the machines: each is
// free to run to quiescence.
const maxTime = ^machine.Time(0)

// minWire returns the smallest one-way latency of any connected NIC in
// the cluster — the lookahead of the conservative horizon — and false
// when no NIC is connected. This is the full rescan; Drive uses the
// cached copy.
func (c *Cluster) minWire() (machine.Duration, bool) {
	var wire machine.Duration
	have := false
	for _, s := range c.Systems {
		if s.Dev == nil {
			continue
		}
		for _, n := range s.Dev.NICs() {
			if n.Peer() == nil {
				continue
			}
			if !have || n.Wire < wire {
				wire, have = n.Wire, true
			}
		}
	}
	return wire, have
}

// minWireCached returns the wire lookahead, rescanning only after an
// invalidation (SetLink, or a machine crash/reboot observed at the
// barrier). Scheduled link-delay windows (the fault grammar's link=…
// rules) add latency at transmit time on top of the NIC's base Wire, so
// they can only push arrivals past the cached lookahead — the horizon
// stays conservative without an invalidation.
func (c *Cluster) minWireCached() (machine.Duration, bool) {
	if !c.wireOK {
		c.wire, c.haveWire = c.minWire()
		c.wireOK = true
	}
	return c.wire, c.haveWire
}

// InvalidateWire forces the next horizon to rescan the NIC pairs. Needed
// only after rewiring links outside SetLink.
func (c *Cluster) InvalidateWire() { c.wireOK = false }

// SetLink joins (or re-times) a NIC pair mid-run and invalidates the
// cached wire lookahead — the explicit hook for link-setting changes.
func (c *Cluster) SetLink(a, b *dev.NIC, wire machine.Duration) {
	dev.Connect(a, b, wire)
	c.wireOK = false
}

// nextActivity returns the earliest simulated time at which the machine
// could next execute anything (and therefore transmit): its own clock
// when it has work at the present, otherwise its next pending event. A
// machine with only background events reports false — the Step(false)
// quiescence rule.
func nextActivity(s *System) (machine.Time, bool) {
	k := s.K
	if k.HasPresentWork() {
		return k.Clock.Now(), true
	}
	if !k.Clock.HasForeground() {
		return 0, false
	}
	return k.Clock.NextEventTime()
}

// heapLess orders the activity heap by (key, machine index); the index
// tie-break makes the heap a pure function of the cluster state.
func (c *Cluster) heapLess(a, b int) bool {
	return c.actKey[a] < c.actKey[b] || (c.actKey[a] == c.actKey[b] && a < b)
}

func (c *Cluster) heapSwap(x, y int) {
	h := c.actHeap
	h[x], h[y] = h[y], h[x]
	c.heapPos[h[x]] = x
	c.heapPos[h[y]] = y
}

func (c *Cluster) siftUp(pos int) {
	for pos > 0 {
		parent := (pos - 1) / 2
		if !c.heapLess(c.actHeap[pos], c.actHeap[parent]) {
			return
		}
		c.heapSwap(pos, parent)
		pos = parent
	}
}

// siftDown re-settles downward and reports whether anything moved.
func (c *Cluster) siftDown(pos int) bool {
	moved := false
	n := len(c.actHeap)
	for {
		child := 2*pos + 1
		if child >= n {
			return moved
		}
		if r := child + 1; r < n && c.heapLess(c.actHeap[r], c.actHeap[child]) {
			child = r
		}
		if !c.heapLess(c.actHeap[child], c.actHeap[pos]) {
			return moved
		}
		c.heapSwap(pos, child)
		pos = child
		moved = true
	}
}

// heapSet inserts machine i or updates its key, sifting from its current
// position — O(log N), no rebuild.
func (c *Cluster) heapSet(i int, key machine.Time) {
	if pos := c.heapPos[i]; pos >= 0 {
		old := c.actKey[i]
		if key == old {
			return
		}
		c.actKey[i] = key
		if key < old {
			c.siftUp(pos)
		} else {
			c.siftDown(pos)
		}
		return
	}
	c.actKey[i] = key
	c.actHeap = append(c.actHeap, i)
	c.heapPos[i] = len(c.actHeap) - 1
	c.siftUp(len(c.actHeap) - 1)
}

// heapRemove drops machine i from the heap (no pending activity).
func (c *Cluster) heapRemove(i int) {
	pos := c.heapPos[i]
	if pos < 0 {
		return
	}
	last := len(c.actHeap) - 1
	c.heapSwap(pos, last)
	c.actHeap = c.actHeap[:last]
	c.heapPos[i] = -1
	if pos < last {
		if !c.siftDown(pos) {
			c.siftUp(pos)
		}
	}
}

// repairActivity recomputes the cached next-activity of every queued
// dirty machine and fixes its heap position: the lazy round-start repair.
// Cost is O(dirty · log N); a machine that neither ran, received a
// packet, nor had its clock touched since the last round is never
// visited.
func (c *Cluster) repairActivity() {
	for _, i := range c.dirtyQ {
		c.dirtyFlag[i] = false
		at, ok := nextActivity(c.Systems[i])
		if !ok {
			c.heapRemove(i)
			continue
		}
		c.heapSet(i, at)
	}
	c.dirtyQ = c.dirtyQ[:0]
}

// horizonNaive computes the next round's safe horizon with full sweeps
// over every machine and NIC — the reference the incremental path is
// cross-checked against, and the implementation the replay-style tests
// use. Returns false when every machine is quiescent.
func (c *Cluster) horizonNaive() (machine.Time, bool) {
	var earliest machine.Time
	have := false
	for _, s := range c.Systems {
		at, ok := nextActivity(s)
		if ok && (!have || at < earliest) {
			earliest, have = at, true
		}
	}
	if !have {
		return 0, false
	}
	wire, haveWire := c.minWire()
	if !haveWire || earliest > maxTime-wire {
		return maxTime, true
	}
	return earliest + wire, true
}

// horizonFast computes the round horizon from the repaired activity heap
// and the cached wire lookahead: O(dirty · log N), independent of the
// total machine count when most machines are idle.
func (c *Cluster) horizonFast() (machine.Time, bool) {
	c.repairActivity()
	var h machine.Time
	ok := len(c.actHeap) > 0
	if ok {
		earliest := c.actKey[c.actHeap[0]]
		wire, haveWire := c.minWireCached()
		if !haveWire || earliest > maxTime-wire {
			h = maxTime
		} else {
			h = earliest + wire
		}
	}
	if c.CrossCheck {
		nh, nok := c.horizonNaive()
		if nok != ok || nh != h {
			panic(fmt.Sprintf("kern: horizon cross-check failed: heap (%v, %v) vs sweep (%v, %v)",
				h, ok, nh, nok))
		}
	}
	return h, ok
}

// collectActive gathers, in ascending machine index, every machine whose
// cached activity falls before the horizon — the only machines that can
// take a step this round. The heap is traversed with subtree pruning
// (children are never earlier than their parent), so the cost is
// O(active), not O(N).
func (c *Cluster) collectActive(h machine.Time) []int {
	c.active = c.active[:0]
	if len(c.actHeap) == 0 {
		return c.active
	}
	c.scan = append(c.scan[:0], 0)
	for len(c.scan) > 0 {
		pos := c.scan[len(c.scan)-1]
		c.scan = c.scan[:len(c.scan)-1]
		i := c.actHeap[pos]
		if c.actKey[i] >= h {
			continue
		}
		c.active = append(c.active, i)
		if l := 2*pos + 1; l < len(c.actHeap) {
			c.scan = append(c.scan, l)
		}
		if r := 2*pos + 2; r < len(c.actHeap) {
			c.scan = append(c.scan, r)
		}
	}
	sort.Ints(c.active)
	return c.active
}

// flush delivers every packet buffered during a round with the reference
// full scan over all machines and NICs, in machine-index, NIC-index,
// emission order. The arrival events' heap positions are fixed by their
// ScheduleRemote keys, so this order is a convention, not a correctness
// requirement. Single-threaded.
func (c *Cluster) flush() int {
	delivered := 0
	for _, s := range c.Systems {
		if s.Dev == nil {
			continue
		}
		delivered += s.Dev.FlushAllDeferred()
	}
	return delivered
}

// flushActive drains only the active machines' dirty NICs — the machines
// that ran this round are the only ones that can have transmitted. Same
// machine/NIC/emission order as the full scan.
func (c *Cluster) flushActive() int {
	delivered := 0
	for _, i := range c.active {
		s := c.Systems[i]
		if s.Dev == nil {
			continue
		}
		delivered += s.Dev.FlushDirtyDeferred()
	}
	return delivered
}

// assertFlushed verifies the dirty-list flush stranded nothing: after a
// barrier no NIC anywhere may hold a buffered delivery. CrossCheck only.
func (c *Cluster) assertFlushed() {
	for i, s := range c.Systems {
		if s.Dev == nil {
			continue
		}
		for _, n := range s.Dev.NICs() {
			if n.PendingDeferred() != 0 {
				panic(fmt.Sprintf("kern: flush cross-check failed: machine %d NIC %q still buffers %d deliveries",
					i, n.Name, n.PendingDeferred()))
			}
		}
	}
}

// setDeferred switches every NIC between immediate and barrier delivery.
func (c *Cluster) setDeferred(on bool) {
	for _, s := range c.Systems {
		if s.Dev == nil {
			continue
		}
		for _, n := range s.Dev.NICs() {
			n.SetDeferred(on)
		}
	}
}

// round executes one horizon round: repair the heap, pick the horizon,
// run only the active machines (on the worker pool when jobs is
// non-nil), then re-mark them dirty, poll their topology changes, and
// flush their buffered packets. Returns the steps taken and whether the
// cluster still had activity.
func (c *Cluster) round(jobs chan<- int, results <-chan uint64) (uint64, bool) {
	h, ok := c.horizonFast()
	if !ok {
		return 0, false
	}
	active := c.collectActive(h)
	if len(active) == 0 {
		// Every pending activity sits exactly at the (overflow-clamped)
		// horizon; nothing can ever run before it.
		return 0, false
	}
	var steps uint64
	c.inRound = true
	if jobs != nil && len(active) > 1 {
		c.curHorizon = h
		for _, i := range active {
			jobs <- i
		}
		for range active {
			steps += <-results
		}
	} else {
		for _, i := range active {
			steps += c.Systems[i].K.RunHorizon(h)
		}
	}
	c.inRound = false
	for _, i := range active {
		c.markDirty(i)
		if c.Systems[i].TakeTopoChanged() {
			c.wireOK = false
		}
	}
	c.flushActive()
	if c.CrossCheck {
		c.assertFlushed()
	}
	return steps, true
}

// Drive runs the cluster to quiescence with the horizon-round driver and
// returns total dispatcher steps taken. With parallel=true the active
// machines of each round are fanned out over a worker pool bounded by
// GOMAXPROCS — idle machines are never scheduled onto a goroutine at
// all. With parallel=false the same rounds run inline. Output is
// byte-identical across the two modes and any GOMAXPROCS value.
func (c *Cluster) Drive(parallel bool) uint64 {
	c.setDeferred(true)
	defer c.setDeferred(false)
	// Step's sorted view and the activity cache may both be stale if the
	// caller mutated machines since the last drive; recompute everything
	// once, then stay incremental.
	c.InvalidateOrder()
	for i := range c.Systems {
		c.markDirty(i)
	}

	var jobs chan int
	var results chan uint64
	if parallel && len(c.Systems) > 1 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(c.Systems) {
			workers = len(c.Systems)
		}
		jobs = make(chan int, len(c.Systems))
		results = make(chan uint64, len(c.Systems))
		for w := 0; w < workers; w++ {
			go func() {
				for i := range jobs {
					results <- c.Systems[i].K.RunHorizon(c.curHorizon)
				}
			}()
		}
		defer close(jobs)
	}

	var total uint64
	for {
		steps, ok := c.round(jobs, results)
		total += steps
		if !ok {
			return total
		}
	}
}

// MinWireForTest exposes the lookahead rescan for tests.
func (c *Cluster) MinWireForTest() (machine.Duration, bool) { return c.minWire() }

// HorizonForTest, FlushForTest and SetDeferredForTest expose the naive
// round primitives so driver-level tests can replay Drive's loop by hand
// and measure per-round, per-machine work.
func (c *Cluster) HorizonForTest() (machine.Time, bool) { return c.horizonNaive() }
func (c *Cluster) FlushForTest() int                    { return c.flush() }
func (c *Cluster) SetDeferredForTest(on bool)           { c.setDeferred(on) }

// HorizonFastForTest exposes the incremental horizon (heap repair plus
// wire cache) for the property tests that cross-check it against
// HorizonForTest's full sweep.
func (c *Cluster) HorizonFastForTest() (machine.Time, bool) { return c.horizonFast() }

// RoundForTest runs exactly one sequential horizon round through the
// incremental driver — the unit the scaling benchmark measures. The
// caller is responsible for SetDeferredForTest(true) around a replay.
func (c *Cluster) RoundForTest() (uint64, bool) { return c.round(nil, nil) }

// OrderForTest returns a copy of Step's current sorted machine-index
// view, for the incremental-sort cross-check test.
func (c *Cluster) OrderForTest() []int { return append([]int(nil), c.order...) }
