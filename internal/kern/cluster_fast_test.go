package kern_test

// Tests for the O(active)-cost cluster driver: the indexed activity heap
// against the naive full-sweep horizon, the cached wire lookahead
// against link changes, and Step's incrementally maintained order
// against a from-scratch stable sort.

import (
	"sort"
	"testing"

	"repro/internal/dev"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/workload"
)

// bootCluster builds n machines with consecutive pairs wired at the
// given latencies (wires[i] joins machines 2i and 2i+1; machines beyond
// the last wire stay unconnected).
func bootCluster(t *testing.T, n int, wires ...machine.Duration) (*kern.Cluster, []*kern.System) {
	t.Helper()
	cfg := kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100}
	systems := make([]*kern.System, n)
	for i := range systems {
		systems[i] = kern.New(cfg)
	}
	for i, w := range wires {
		if 2*i+1 < n {
			dev.Connect(systems[2*i].Net.NIC, systems[2*i+1].Net.NIC, w)
		}
	}
	return kern.NewCluster(systems...), systems
}

// TestActivityHeapMatchesSweep drives a random mix of schedules,
// cancels, background timers, link re-timings and horizon rounds, and
// after every operation checks the incremental horizon (heap repair +
// wire cache) against the naive full sweep. The watchers are the only
// thing keeping the heap honest here — no Drive() ever marks all
// machines dirty.
func TestActivityHeapMatchesSweep(t *testing.T) {
	cluster, systems := bootCluster(t, 6,
		machine.Duration(1_000_000), machine.Duration(2_000_000))
	cluster.SetDeferredForTest(true)
	defer cluster.SetDeferredForTest(false)

	type owned struct {
		clock *machine.Clock
		ev    *machine.Event
	}
	rng := workload.NewRNG(7)
	var live []owned
	check := func(step int) {
		t.Helper()
		hf, okf := cluster.HorizonFastForTest()
		hn, okn := cluster.HorizonForTest()
		if hf != hn || okf != okn {
			t.Fatalf("step %d: fast horizon (%v, %v) != naive sweep (%v, %v)",
				step, hf, okf, hn, okn)
		}
	}

	check(-1)
	for i := 0; i < 600; i++ {
		s := systems[rng.Intn(len(systems))]
		switch rng.Intn(6) {
		case 0, 1:
			at := s.K.Clock.Now() + machine.Time(1+rng.Intn(5_000_000))
			live = append(live, owned{s.K.Clock, s.K.Clock.Schedule(at, "prop-fg", func() {})})
		case 2:
			s.K.Clock.AfterBackground(machine.Duration(1+rng.Intn(5_000_000)), "prop-bg", func() {})
		case 3:
			if len(live) > 0 {
				j := rng.Intn(len(live))
				live[j].clock.Cancel(live[j].ev)
				live = append(live[:j], live[j+1:]...)
			}
		case 4:
			// Re-time a link: the wire cache must be invalidated, not
			// merely conservative.
			w := machine.Duration(100_000 * (1 + rng.Intn(30)))
			cluster.SetLink(systems[0].Net.NIC, systems[1].Net.NIC, w)
		default:
			cluster.RoundForTest()
		}
		check(i)
	}
	// Drain to quiescence: the heap must empty exactly when the sweep
	// reports no activity.
	for {
		if _, ok := cluster.RoundForTest(); !ok {
			break
		}
	}
	check(601)
	if _, ok := cluster.HorizonForTest(); ok {
		t.Fatalf("cluster not quiescent after drain")
	}
}

// TestSetLinkMovesHorizon pins the cache-invalidation contract: lowering
// the only wire latency mid-run must lower the next horizon, raising it
// must raise it, and both must keep matching the naive sweep.
func TestSetLinkMovesHorizon(t *testing.T) {
	cluster, systems := bootCluster(t, 2, machine.Duration(2_000_000))
	a, b := systems[0], systems[1]

	h0, ok := cluster.HorizonFastForTest()
	if !ok {
		t.Fatalf("fresh cluster reports no activity")
	}
	cluster.SetLink(a.Net.NIC, b.Net.NIC, machine.Duration(500_000))
	h1, ok := cluster.HorizonFastForTest()
	if !ok || h1 >= h0 {
		t.Fatalf("lowering wire 2ms->0.5ms: horizon %v -> %v, want a decrease", h0, h1)
	}
	cluster.SetLink(a.Net.NIC, b.Net.NIC, machine.Duration(4_000_000))
	h2, ok := cluster.HorizonFastForTest()
	if !ok || h2 <= h1 {
		t.Fatalf("raising wire 0.5ms->4ms: horizon %v -> %v, want an increase", h1, h2)
	}
	hn, _ := cluster.HorizonForTest()
	if h2 != hn {
		t.Fatalf("cached horizon %v != naive sweep %v after SetLink", h2, hn)
	}
}

// TestCrashRebootRefreshesWireCache checks the barrier's TakeTopoChanged
// polling: a crash and warm reboot inside a drive must leave the cached
// lookahead consistent with the naive sweep afterwards.
func TestCrashRebootRefreshesWireCache(t *testing.T) {
	cluster, systems := bootCluster(t, 4,
		machine.Duration(1_000_000), machine.Duration(3_000_000))
	cluster.CrossCheck = true
	systems[1].ScheduleCrash(machine.Time(2_000_000), machine.Duration(2_000_000))
	cluster.Drive(false) // CrossCheck panics on any cache divergence
	if systems[1].Reboots != 1 {
		t.Fatalf("machine 1 reboots = %d, want 1", systems[1].Reboots)
	}
	hf, okf := cluster.HorizonFastForTest()
	hn, okn := cluster.HorizonForTest()
	if hf != hn || okf != okn {
		t.Fatalf("post-reboot horizon (%v, %v) != naive sweep (%v, %v)", hf, okf, hn, okn)
	}
}

// TestStepOrderIncremental cross-checks Step's incrementally sorted
// machine order against a from-scratch stable sort by (clock, index)
// after every single step.
func TestStepOrderIncremental(t *testing.T) {
	cluster, systems := bootCluster(t, 4, machine.Duration(500_000))
	// Cross-machine traffic plus local timers keep the clocks drifting
	// past each other so the order actually churns.
	for _, s := range systems {
		s := s
		var tick func()
		n := 0
		tick = func() {
			if n++; n < 50 {
				s.K.Clock.After(machine.Duration(100_000+10_000*n), "tick", tick)
			}
		}
		s.K.Clock.After(machine.Duration(100_000), "tick", tick)
	}

	naive := func() []int {
		idx := make([]int, len(systems))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool {
			return systems[idx[x]].K.Clock.Now() < systems[idx[y]].K.Clock.Now()
		})
		return idx
	}
	steps := 0
	for cluster.Step(false) {
		steps++
		got, want := cluster.OrderForTest(), naive()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("after step %d: incremental order %v != stable sort %v", steps, got, want)
			}
		}
		if steps > 20_000 {
			t.Fatalf("cluster did not quiesce")
		}
	}
	if steps == 0 {
		t.Fatalf("cluster took no steps")
	}
}
