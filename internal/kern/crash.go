package kern

// Whole-machine crash and warm reboot. A crash is the robustness test the
// paper's thread representation makes cheap: because a blocked thread is a
// continuation pointer plus 28 bytes of scratch, capturing "what was every
// thread doing" for the panic record is a table walk, and dropping all
// in-flight state is core.Kernel.CrashReset rather than a stack unwind.
// The warm reboot re-runs the same boot sequence New uses, adopting the
// surviving NIC hardware, and announces a new incarnation so the reliable
// netmsg layer on both ends discards traffic that outlived the crash.
//
// Both crash and reboot are simulated-clock events, so the conservative
// horizon rounds of the parallel cluster driver order them exactly as the
// sequential driver does — byte-determinism is preserved for free.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
)

// PanicRecord is the capture taken at the instant of a crash: the
// continuation table as diagnostic (§3.4's claim made executable), plus a
// census of what the machine was holding when it died.
type PanicRecord struct {
	// At is the simulated time of the crash; Incarnation the boot count
	// that died.
	At          machine.Time
	Incarnation uint32

	// Threads snapshots every live thread: name, state, and the
	// continuation it was blocked with.
	Threads []core.BlockedSnapshot

	// Ports counts undestroyed IPC ports; PendingIO device requests
	// accepted but unresolved; Unacked wire packets awaiting
	// acknowledgement across all links.
	Ports     int
	PendingIO int
	Unacked   int
}

// String renders the record the way a console panic would.
func (r *PanicRecord) String() string {
	return fmt.Sprintf("panic inc=%d at=%v: %d threads, %d ports, %d pending I/O, %d unacked",
		r.Incarnation, r.At, len(r.Threads), r.Ports, r.PendingIO, r.Unacked)
}

// NetTotals aggregates the netmsg counters a crash would otherwise lose:
// Crash folds each dying link's counters in, and the NetTotals method
// adds the live links on top, so reports span incarnations.
type NetTotals struct {
	Forwarded      uint64
	Delivered      uint64
	Dropped        uint64
	Retransmits    uint64
	AcksTx         uint64
	AcksRx         uint64
	DupsDropped    uint64
	Lost           uint64
	StaleDropped   uint64
	HeartbeatsTx   uint64
	HeartbeatsRx   uint64
	DeathsDetected uint64
	Recoveries     uint64
}

func (t *NetTotals) add(n *dev.Netmsg) {
	t.Forwarded += n.Forwarded
	t.Delivered += n.Delivered
	t.Dropped += n.Dropped
	t.Retransmits += n.Retransmits
	t.AcksTx += n.AcksTx
	t.AcksRx += n.AcksRx
	t.DupsDropped += n.DupsDropped
	t.Lost += n.Lost
	t.StaleDropped += n.StaleDropped
	t.HeartbeatsTx += n.HeartbeatsTx
	t.HeartbeatsRx += n.HeartbeatsRx
	t.DeathsDetected += n.DeathsDetected
	t.Recoveries += n.Recoveries
}

// NetTotals sums the netmsg counters across every link of every
// incarnation this machine has run.
func (s *System) NetTotals() NetTotals {
	t := s.priorNet
	for _, n := range s.Links {
		t.add(n)
	}
	return t
}

// ScheduleCrash arms a whole-machine crash at absolute simulated time at,
// rebooting rebootAfter later (never, when zero). The crash is an
// ordinary foreground clock event, so the parallel driver's horizon
// rounds order it deterministically against all other work.
func (s *System) ScheduleCrash(at machine.Time, rebootAfter machine.Duration) {
	s.K.Clock.Schedule(at, "machine-crash", func() { s.Crash(rebootAfter) })
}

// Crash kills the machine now: capture the panic record, drop every
// thread, stack and local timer, and leave the NICs discarding arrivals.
// Packets already on the wire still arrive (a crash cannot recall them)
// and die at the interrupt boundary. When rebootAfter is nonzero a warm
// reboot is scheduled; it is the only local clock event that survives
// the purge, because it is armed after it.
func (s *System) Crash(rebootAfter machine.Duration) {
	if s.Down {
		return
	}
	rec := &PanicRecord{
		At:          s.K.Clock.Now(),
		Incarnation: s.Incarnation,
		Threads:     s.K.SnapshotThreads(),
		Ports:       s.IPC.LivePorts(),
	}
	if s.Dev != nil {
		rec.PendingIO = s.Dev.PendingIO()
	}
	for _, n := range s.Links {
		rec.Unacked += n.UnackedLen()
	}
	s.PanicRecord = rec
	if r := s.K.Obs; r != nil {
		r.EmitArg(obs.MachineCrash, 0, "", "",
			fmt.Sprintf("%d threads, %d ports, %d pending I/O, %d unacked",
				len(rec.Threads), rec.Ports, rec.PendingIO, rec.Unacked),
			int(s.Incarnation))
	}
	s.CrashCount++
	s.Down = true
	s.topoChanged = true
	for _, n := range s.Links {
		n.NIC.SetDown(true)
		s.priorNet.add(n)
	}
	s.K.Clock.PurgeLocal()
	s.K.CrashReset()
	// The dead incarnation's run queues still name dead threads; replace
	// the scheduler immediately so no dispatch can touch them, whether or
	// not a reboot ever comes.
	rq := sched.New(s.cfg.Quantum)
	s.K.Sched = rq
	s.Sched = rq
	s.tasks = nil
	s.Callout, s.Reaper, s.contReaper = nil, nil, nil
	if rebootAfter > 0 {
		s.K.Clock.After(rebootAfter, "machine-reboot", func() { s.Reboot() })
	}
}

// Reboot warm-boots a crashed machine under a new incarnation number: the
// boot sequence runs again on the same kernel object (fresh scheduler,
// device, VM, IPC and exception substrates; fresh internal threads),
// adopting the NIC hardware that survived the crash. Each link keeps its
// configured reliability parameters, stamps the new incarnation, and
// announces it to the peer so stale-traffic rejection and failback start
// immediately. Finally the machine's init script (OnReboot) runs so a
// workload can re-create its servers.
func (s *System) Reboot() {
	if !s.Down {
		return
	}
	old := s.Links
	nics := make([]*dev.NIC, len(old))
	for i, n := range old {
		nics[i] = n.NIC
	}
	s.Incarnation++
	s.Down = false
	s.topoChanged = true
	s.bootSubstrates(nics)
	for i, n := range s.Links {
		o := old[i]
		n.Reliable = o.Reliable
		n.RexmitTimeout = o.RexmitTimeout
		n.RexmitMax = o.RexmitMax
		n.DeadAfter = o.DeadAfter
		n.NIC.SetDown(false)
		n.SetIncarnation(s.Incarnation)
		n.AnnounceIncarnation()
	}
	s.Reboots++
	if r := s.K.Obs; r != nil {
		r.EmitArg(obs.MachineReboot, 0, "", "", "", int(s.Incarnation))
	}
	for _, svc := range s.services {
		svc.install(s)
	}
	if s.OnReboot != nil {
		s.OnReboot(s)
	}
}
