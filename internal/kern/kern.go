// Package kern assembles the simulated operating system: it wires the
// control-transfer core to the scheduler, IPC, VM and exception
// substrates, and configures one of the paper's three measured kernels:
//
//   - MK40  — the continuation kernel (§2): stack discard, stack handoff,
//     continuation recognition; kernel stacks are wired (no VM metadata)
//     and machine-dependent thread state lives in a separate save area.
//
//   - MK32  — the optimized process-model kernel: one dedicated, pageable
//     kernel stack per thread, a hand-optimized RPC path that context
//     switches directly between sender and receiver, no continuations.
//
//   - Mach25 — the hybrid kernel: process model, queued messages, the
//     general scheduler on every transfer, and the in-kernel BSD layer's
//     extra path weight.
//
// The package also provides tasks (address spaces plus port namespaces)
// and the internal kernel threads of §3.4, including the one thread whose
// control flow makes a continuation impractical: it keeps a dedicated
// stack even in MK40 and is the "+1 per-machine stack" in the paper's
// census.
package kern

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/exc"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Flavor identifies one of the three measured kernels.
type Flavor int

const (
	MK40 Flavor = iota
	MK32
	Mach25
)

func (f Flavor) String() string {
	switch f {
	case MK40:
		return "MK40"
	case MK32:
		return "MK32"
	case Mach25:
		return "Mach 2.5"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// UsesContinuations reports whether the flavor is the continuation
// kernel.
func (f Flavor) UsesContinuations() bool { return f == MK40 }

// IPCStyle maps the flavor to its transfer discipline.
func (f Flavor) IPCStyle() ipc.Style {
	switch f {
	case MK40:
		return ipc.StyleMK40
	case MK32:
		return ipc.StyleMK32
	default:
		return ipc.StyleMach25
	}
}

// StackVMMetadataBytes is the per-stack VM bookkeeping charge: process-
// model kernels page their stacks (116 bytes of VM structures per stack,
// Table 5); MK40 wires its few stacks and pays nothing.
func (f Flavor) StackVMMetadataBytes() int {
	if f == MK40 {
		return 0
	}
	return 116
}

// ThreadSpace is the Table 5 decomposition of per-thread kernel memory.
type ThreadSpace struct {
	MIState    int // machine-independent thread structure
	MDState    int // separate machine-dependent save area
	StackBytes int // dedicated kernel stack
	VMState    int // VM structures backing a pageable stack
}

// Total is the per-thread kernel memory in bytes.
func (s ThreadSpace) Total() int {
	return s.MIState + s.MDState + s.StackBytes + s.VMState
}

// StaticThreadSpace returns the flavor's nominal per-thread overhead on
// the DS3100 (the paper's Table 5). In MK40 the thread structure grew by
// 32 bytes (4-byte continuation pointer + 28-byte scratch area) and the
// machine-dependent state moved off the (now absent) stack into a 206
// byte save area.
func (f Flavor) StaticThreadSpace() ThreadSpace {
	if f == MK40 {
		return ThreadSpace{
			MIState:    484, // 452 + 4 (continuation) + 28 (scratch)
			MDState:    machine.MDStateBytes,
			StackBytes: 0,
			VMState:    0,
		}
	}
	return ThreadSpace{
		MIState:    452,
		MDState:    0, // lives on the dedicated stack
		StackBytes: machine.KernelStackSize,
		VMState:    116,
	}
}

// CalloutInterval is how often the special process-model kernel thread
// wakes for its bookkeeping tick.
const CalloutInterval = machine.Duration(60 * 1000 * 1000 * 1000) // 60 s

// Config describes the system to boot.
type Config struct {
	Flavor     Flavor
	Arch       machine.Arch
	Processors int
	// Quantum overrides the scheduler time slice when nonzero.
	Quantum machine.Duration
	// Frames and DiskLatency size the VM subsystem.
	Frames      int
	DiskLatency machine.Duration
	// DisableCallout omits the special process-model kernel thread, for
	// experiments that need an exact stack census.
	DisableCallout bool

	// DisableDaemons omits the device subsystem and its kernel threads
	// (io-done, netmsg, reaper), for experiments that need an exact stack
	// census or the bare pre-device kernel.
	DisableDaemons bool

	// LegacyFlatDisk boots the device subsystem but keeps VM paging on the
	// flat-latency path (each page-in an independent timer) instead of the
	// queued disk device, for regression comparison.
	LegacyFlatDisk bool

	// NoHandoff and NoRecognition disable individual continuation
	// optimizations, for ablation benchmarks.
	NoHandoff     bool
	NoRecognition bool
}

// System is a booted kernel with all substrates attached.
type System struct {
	Flavor Flavor
	K      *core.Kernel
	Sched  *sched.RunQueue
	IPC    *ipc.IPC
	VM     *vm.VM
	Exc    *exc.Exc

	// Dev is the device subsystem; Disk its paging disk; Net the netmsg
	// forwarding thread bound to this machine's first NIC. All nil when
	// DisableDaemons is set.
	Dev  *dev.Subsystem
	Disk *dev.Device
	Net  *dev.Netmsg

	// Links are all netmsg forwarding threads, one per NIC in creation
	// order; Links[0] == Net. Netmsg links are point-to-point, so a
	// machine wired to several peers (an RPC client with a primary and a
	// replica server) grows one per peer via AddLink.
	Links []*dev.Netmsg

	// Incarnation is the machine's boot count, starting at 1; each warm
	// reboot increments it and stamps it into outbound packets so the
	// reliable netmsg layer can discard traffic that outlived a crash.
	Incarnation uint32

	// Down reports the machine is crashed: between Crash and Reboot it
	// has no threads, no subsystems, and its NICs discard arrivals.
	Down bool

	// PanicRecord is the capture from the most recent crash, nil before
	// the first one.
	PanicRecord *PanicRecord

	// OnReboot, when set, runs at the end of every warm reboot — the
	// machine's init script, where a workload re-creates its servers and
	// re-exports their ports.
	OnReboot func(*System)

	// services are the named installers RegisterService has recorded; a
	// warm reboot re-runs them in registration order (before OnReboot),
	// so several services on one machine all respawn without clobbering
	// a single hook.
	services []namedService

	// Watchdog is the stall/deadlock watchdog, nil unless EnableWatchdog
	// was called; it survives reboots (re-registering on each boot).
	Watchdog *Watchdog

	// cfg is retained so a warm reboot can re-run the boot sequence.
	cfg Config

	// priorNet accumulates the netmsg counters of incarnations replaced
	// by reboots; NetTotals adds the live links on top.
	priorNet NetTotals

	// Callout is the special kernel thread that never blocks with a
	// continuation (nil when disabled).
	Callout *core.Thread

	// Reaper is the kernel thread that reclaims dead threads' kernel
	// state (nil when daemons are disabled).
	Reaper     *core.Thread
	contReaper *core.Continuation

	// contAborted is the continuation an aborted thread resumes at; the
	// pending Mach code for each aborted thread sits in abortCode until
	// the thread runs it back to user space.
	contAborted *core.Continuation
	abortCode   map[int]uint64

	tasks     []*Task
	nextSpace int

	// CalloutTicks counts bookkeeping passes of the callout thread.
	CalloutTicks uint64
	// Reaped counts threads whose kernel state the reaper reclaimed.
	Reaped uint64
	// AllocWaits and LockWaits count the process-model waits the
	// workloads induce (Table 1's bottom row, with kernel faults).
	AllocWaits uint64
	LockWaits  uint64

	// Aborted counts threads cancelled out of a blocked operation by
	// ThreadAbort.
	Aborted uint64

	// CrashCount and Reboots count whole-machine failures and warm
	// reboots.
	CrashCount uint64
	Reboots    uint64

	// topoChanged is set by Crash and Reboot — the events after which a
	// cluster driver's cached wire lookahead may be stale. It is written
	// only from this machine's own execution (crash/reboot are local clock
	// events) and polled by the cluster coordinator at the round barrier,
	// so no locking is needed under the parallel driver.
	topoChanged bool
}

// TakeTopoChanged reports and clears the machine's pending topology
// change (crash or reboot since the last poll).
func (s *System) TakeTopoChanged() bool {
	v := s.topoChanged
	s.topoChanged = false
	return v
}

// namedService pairs a service name with its boot installer.
type namedService struct {
	name    string
	install func(*System)
}

// RegisterService records a named service installer and runs it now.
// An installer is the boot script of a machine-resident service (a KV
// replica, a cache tier, a load generator): it creates the service's
// tasks, threads and port exports against the current incarnation's
// substrates. After a crash, Reboot re-runs every installer in
// registration order on the fresh incarnation — the service-level
// analogue of init respawning daemons. State an installer closes over
// survives the crash (the workload's "persistent" metadata); state it
// creates fresh each call is the incarnation's volatile memory.
func (s *System) RegisterService(name string, install func(*System)) {
	s.services = append(s.services, namedService{name: name, install: install})
	install(s)
}

// Services returns the names of the registered service installers, in
// registration order.
func (s *System) Services() []string {
	out := make([]string, len(s.services))
	for i, svc := range s.services {
		out[i] = svc.name
	}
	return out
}

// Task is an address space plus a name for its threads.
type Task struct {
	ID    int
	Name  string
	Space *vm.Space
	sys   *System

	Threads []*core.Thread
}

// New boots a system.
func New(cfg Config) *System {
	k := core.NewKernel(core.Config{
		Model:                machine.NewCostModel(cfg.Arch),
		UseContinuations:     cfg.Flavor.UsesContinuations(),
		Processors:           cfg.Processors,
		StackVMMetadataBytes: cfg.Flavor.StackVMMetadataBytes(),
		NoHandoff:            cfg.NoHandoff,
		NoRecognition:        cfg.NoRecognition,
	})
	s := &System{
		Flavor:      cfg.Flavor,
		K:           k,
		cfg:         cfg,
		Incarnation: 1,
	}
	s.bootSubstrates(nil)
	return s
}

// bootSubstrates runs the boot sequence on s.K: scheduler, device layer,
// VM, IPC, exceptions, the netmsg links, and the internal kernel threads
// (callout, io-done, netmsg, reaper). On first boot adopt is nil and the
// primary NIC is created fresh; on a warm reboot it lists the NICs
// surviving from the previous incarnation (the hardware and its wiring
// outlive a crash), in creation order.
func (s *System) bootSubstrates(adopt []*dev.NIC) {
	cfg := s.cfg
	rq := sched.New(cfg.Quantum)
	s.K.Sched = rq
	s.Sched = rq
	s.Links = nil
	s.Dev, s.Disk, s.Net = nil, nil, nil
	if !cfg.DisableDaemons {
		lat := cfg.DiskLatency
		if lat == 0 {
			lat = vm.DefaultDiskLatency
		}
		s.Dev = dev.NewSubsystem(s.K)
		s.Disk = s.Dev.NewDevice("disk", lat)
	}
	vmDisk := s.Disk
	if cfg.LegacyFlatDisk {
		vmDisk = nil
	}
	s.VM = vm.New(s.K, vm.Config{Frames: cfg.Frames, DiskLatency: cfg.DiskLatency, Disk: vmDisk})
	s.IPC = ipc.New(s.K, cfg.Flavor.IPCStyle())
	s.Exc = exc.New(s.K, s.IPC)
	if s.Dev != nil {
		s.Dev.AttachPorts(s.IPC)
		if adopt == nil {
			nic := s.Dev.NewNIC("ne0")
			s.Net = dev.NewNetmsg(s.Dev, s.IPC, nic)
			s.Links = []*dev.Netmsg{s.Net}
		} else {
			for _, nic := range adopt {
				s.Dev.AdoptNIC(nic)
				s.Links = append(s.Links, dev.NewNetmsg(s.Dev, s.IPC, nic))
			}
			if len(s.Links) > 0 {
				s.Net = s.Links[0]
			}
		}
	}
	s.abortCode = make(map[int]uint64)
	s.contAborted = core.NewContinuation("thread_abort_continue", s.abortReturn)
	if !cfg.DisableCallout {
		s.startCallout()
	}
	if !cfg.DisableDaemons {
		s.startReaper()
	}
	if s.Watchdog != nil {
		s.Watchdog.register()
	}
}

// AddLink creates an additional NIC with its own netmsg forwarding
// thread ("netmsg1", ...). Links are point-to-point: a machine that
// talks to two peers needs two of them, each Connect-ed to one peer.
func (s *System) AddLink() *dev.Netmsg {
	if s.Dev == nil {
		panic("kern: AddLink on a system without the device subsystem")
	}
	nic := s.Dev.NewNIC(fmt.Sprintf("ne%d", len(s.Dev.NICs())))
	n := dev.NewNetmsg(s.Dev, s.IPC, nic)
	s.Links = append(s.Links, n)
	return n
}

// startReaper creates the kernel thread that reclaims the kernel state of
// halted threads (DESIGN §3.4's "reaper"). It blocks with a continuation,
// so in MK40 it holds no stack while idle; thread_halt kicks it through
// the kernel's OnHalt hook.
func (s *System) startReaper() {
	s.contReaper = core.NewContinuation("reaper_continue", s.reaperLoop)
	var pm func(*core.Env)
	if !s.K.UseContinuations {
		pm = s.reaperLoop
	}
	s.Reaper = s.K.NewThread(core.ThreadSpec{
		Name:     "reaper",
		SpaceID:  0,
		Internal: true,
		Priority: 28,
		Start:    s.contReaper,
		StartPM:  pm,
	})
	s.K.OnHalt = func(t *core.Thread) {
		if s.Reaper.State == core.StateWaiting {
			s.K.Setrun(s.Reaper)
		}
	}
}

// reapCost is the per-thread teardown work: unlink from the task, free
// the machine-dependent save area, return thread structure memory.
var reapCost = machine.Cost{Instrs: 220, Loads: 70, Stores: 45}

// reaperLoop drains dead threads, then blocks with its own continuation
// (§2.2 style). Each reap releases the IPC and device state still
// charged to the dead thread — pooled message buffers, saved errors,
// waiter registrations with their callouts — and asserts the census
// comes back clean, so a leak on an abnormal-termination path fails
// loudly instead of stranding pool entries. Terminal.
func (s *System) reaperLoop(e *core.Env) {
	for _, t := range s.K.ReapHalted() {
		e.Charge(reapCost)
		s.IPC.ReleaseThread(t)
		residue := s.IPC.Residue(t)
		if s.Dev != nil {
			s.Dev.ReleaseThread(t)
			residue += s.Dev.Residue(t)
		}
		delete(s.abortCode, t.ID)
		if residue != 0 {
			panic(fmt.Sprintf("kern: reaper leak — thread %s still owns %d resources after release",
				t.Name, residue))
		}
		s.Reaped++
	}
	t := e.Cur()
	t.State = core.StateWaiting
	t.WaitLabel = "reaper: idle"
	s.K.Block(e, stats.BlockInternal, s.contReaper,
		func(e2 *core.Env) { s.reaperLoop(e2) }, 256, "reaper-wait")
}

// startCallout creates the kernel thread whose flow of control makes a
// continuation impractical: it always blocks under the process model and
// therefore holds one dedicated stack for the life of the machine —
// "a constant per-machine, and not per-processor, overhead" (§3.4).
func (s *System) startCallout() {
	s.Callout = s.K.NewThread(core.ThreadSpec{
		Name:     "callout",
		SpaceID:  0,
		Internal: true,
		Priority: 31,
		StartPM:  s.calloutLoop,
	})
	s.K.Setrun(s.Callout)
}

// calloutLoop runs timed bookkeeping, then sleeps under the process
// model. Terminal.
func (s *System) calloutLoop(e *core.Env) {
	s.CalloutTicks++
	e.Charge(machine.Cost{Instrs: 200, Loads: 60, Stores: 30})
	t := e.Cur()
	s.K.Clock.AfterBackground(CalloutInterval, "callout-tick", func() {
		if t.State == core.StateWaiting {
			s.K.Setrun(t)
		}
	})
	t.State = core.StateWaiting
	t.WaitLabel = "callout: tick wait"
	// A nil continuation forces the process model even in MK40.
	s.K.Block(e, stats.BlockInternal, nil, s.calloutLoop, 512, "callout-wait")
}

// NewTask creates a task with a fresh address space.
func (s *System) NewTask(name string) *Task {
	s.nextSpace++
	t := &Task{
		ID:    s.nextSpace,
		Name:  name,
		Space: s.VM.NewSpace(s.nextSpace),
		sys:   s,
	}
	s.tasks = append(s.tasks, t)
	return t
}

// Tasks returns all created tasks.
func (s *System) Tasks() []*Task { return s.tasks }

// NewThread creates a thread in the task. The thread starts blocked; call
// System.Start to make it runnable.
func (t *Task) NewThread(name string, prog core.UserProgram, priority int) *core.Thread {
	th := t.sys.K.NewThread(core.ThreadSpec{
		Name:     fmt.Sprintf("%s/%s", t.Name, name),
		SpaceID:  t.ID,
		Program:  prog,
		Priority: priority,
	})
	t.Threads = append(t.Threads, th)
	return th
}

// Start makes a thread runnable.
func (s *System) Start(t *core.Thread) { s.K.Setrun(t) }

// EnableObservation installs an event recorder on this machine's kernel
// (capacity events retained; obs.DefaultCapacity if <= 0) and returns
// it. Tracing covers everything emitted from this point on; histograms
// and the continuation profiler are maintained online, so they see the
// whole observed window even if the ring evicts early events.
func (s *System) EnableObservation(capacity int) *obs.Recorder {
	r := obs.NewRecorder(s.K.Clock, capacity)
	s.K.Obs = r
	return r
}

// MemoryCensus snapshots the machine's space claim: kernel-stack
// high-water against the worst simultaneous blocked-thread count — the
// paper's continuation dividend read as a single pair — plus the live
// thread population for scale.
func (s *System) MemoryCensus() obs.Census {
	return obs.Census{
		StackHighWater:   s.K.Stacks.MaxInUse(),
		BlockedHighWater: s.K.BlockedHighWater,
		LiveThreads:      s.K.LiveThreads(),
	}
}

// Run drives the machine to quiescence or the deadline.
func (s *System) Run(deadline machine.Time) uint64 { return s.K.Run(deadline) }

// AllocWait makes the current kernel path wait for kernel memory: a
// process-model block even in MK40, since the allocator's callers cannot
// reasonably save their state (§3.2: "memory allocation"). resume
// continues the interrupted path. Terminal.
func (s *System) AllocWait(e *core.Env, frameBytes int, resume func(*core.Env)) {
	s.AllocWaits++
	t := e.Cur()
	s.K.Clock.After(machine.Duration(500*1000), "kmem-free", func() {
		if t.State == core.StateWaiting {
			s.K.Setrun(t)
		}
	})
	t.State = core.StateWaiting
	t.WaitLabel = "kmem alloc"
	s.K.Block(e, stats.BlockKernelAlloc, nil, resume, frameBytes, "kmem-wait")
}

// LockWait makes the current kernel path wait for a contended kernel
// lock under the process model (§3.2: "lock acquisition"). Terminal.
func (s *System) LockWait(e *core.Env, frameBytes int, resume func(*core.Env)) {
	s.LockWaits++
	t := e.Cur()
	s.K.Clock.After(machine.Duration(50*1000), "lock-release", func() {
		if t.State == core.StateWaiting {
			s.K.Setrun(t)
		}
	})
	t.State = core.StateWaiting
	t.WaitLabel = "lock wait"
	s.K.Block(e, stats.BlockLock, nil, resume, frameBytes, "lock-wait")
}

// LiveUserThreads counts non-halted threads that belong to tasks (i.e.
// kernel-level threads backing user activity, the population Table 5
// divides memory over).
func (s *System) LiveUserThreads() int {
	n := 0
	for _, task := range s.tasks {
		for _, th := range task.Threads {
			if th.State != core.StateHalted {
				n++
			}
		}
	}
	return n
}

// MeasuredPerThreadBytes computes the observed average kernel memory per
// live kernel-level thread right now: fixed thread state for every
// thread, plus stack and VM metadata for each stack actually in use.
// In MK40 the stack term is amortized over all threads (stacks are a
// per-processor resource); in the process-model kernels every thread owns
// one.
func (s *System) MeasuredPerThreadBytes() float64 {
	threads := 0
	for _, th := range s.K.Threads {
		if th.State != core.StateHalted {
			threads++
		}
	}
	if threads == 0 {
		return 0
	}
	sp := s.Flavor.StaticThreadSpace()
	fixed := float64(sp.MIState + sp.MDState)
	stackBytes := float64(s.K.Stacks.InUse()) *
		float64(machine.KernelStackSize+s.K.Stacks.VMMetadataBytes)
	return fixed + stackBytes/float64(threads)
}
