package kern_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// chaosProgram issues a random mix of every operation the kernel
// supports, driven by a seeded generator, so the stress harness explores
// interleavings no hand-written scenario covers.
type chaosProgram struct {
	sys     *kern.System
	rng     *workload.RNG
	service *ipc.Port
	reply   *ipc.Port
	excPort *ipc.Port
	ops     int
	limit   int
}

func (p *chaosProgram) Next(e *core.Env, t *core.Thread) core.Action {
	p.sys.IPC.Received(t) // drain the mailbox
	if p.ops >= p.limit {
		return core.Exit()
	}
	p.ops++
	switch p.rng.Intn(10) {
	case 0, 1, 2:
		return core.RunFor(uint64(1 + p.rng.Intn(200_000)))
	case 3, 4:
		return core.Syscall("rpc", func(e *core.Env) {
			req := p.sys.IPC.NewMessage(1, ipc.HeaderBytes+p.rng.Intn(512), p.ops, p.reply)
			p.sys.IPC.MachMsg(e, ipc.MsgOptions{
				Send: req, SendTo: p.service, ReceiveFrom: p.reply,
			})
		})
	case 5:
		return core.Action{Kind: core.ActFault, Addr: uint64(0x10000 + p.rng.Intn(1<<22))}
	case 6:
		if p.excPort != nil {
			return core.Action{Kind: core.ActException, Code: p.ops}
		}
		return core.Action{Kind: core.ActYield}
	case 7:
		return core.Action{Kind: core.ActYield}
	case 8:
		return core.Syscall("sleep", func(e *core.Env) {
			th := e.Cur()
			d := machine.Duration(1000 * (1 + p.rng.Intn(500)))
			p.sys.K.Clock.After(d, "chaos-sleep", func() {
				if th.State == core.StateWaiting {
					p.sys.K.Setrun(th)
				}
			})
			th.State = core.StateWaiting
			p.sys.K.Block(e, stats.BlockInternal, chaosSleepDone,
				func(e2 *core.Env) { e2.K.ThreadSyscallReturn(e2, 0) }, 96, "chaos-sleep")
		})
	default:
		if p.rng.Hit(3000) {
			return core.Syscall("kmem", func(e *core.Env) {
				p.sys.AllocWait(e, 200, func(e2 *core.Env) {
					e2.K.ThreadSyscallReturn(e2, 0)
				})
			})
		}
		return core.Syscall("lock", func(e *core.Env) {
			p.sys.LockWait(e, 120, func(e2 *core.Env) {
				e2.K.ThreadSyscallReturn(e2, 0)
			})
		})
	}
}

var chaosSleepDone = core.NewContinuation("chaos_sleep_done", func(e *core.Env) {
	e.K.ThreadSyscallReturn(e, 0)
})

// chaosServer answers chaos RPCs and occasionally imposes a size
// constraint, forcing the slow-receive continuation.
type chaosServer struct {
	sys     *kern.System
	port    *ipc.Port
	rng     *workload.RNG
	pending *ipc.Message
	handled int
}

func (s *chaosServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	maxSize := 0
	if s.rng.Hit(2000) {
		maxSize = 4096
	}
	if s.pending == nil {
		return core.Syscall("recv", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port, MaxSize: maxSize})
		})
	}
	req := s.pending
	s.pending = nil
	s.handled++
	return core.Syscall("reply+recv", func(e *core.Env) {
		reply := s.sys.IPC.NewMessage(2, req.Size, req.Body, nil)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: reply, SendTo: req.Reply, ReceiveFrom: s.port, MaxSize: maxSize,
		})
	})
}

// runChaos boots a full system, runs randomized programs, and validates
// every kernel invariant after every dispatcher step.
func runChaos(t *testing.T, flavor kern.Flavor, procs, clients int, seed uint64) {
	t.Helper()
	sys := kern.New(kern.Config{
		Flavor:     flavor,
		Arch:       machine.ArchDS3100,
		Processors: procs,
		Frames:     256, // small: force evictions and frame waits
	})
	rng := workload.NewRNG(seed)

	serverTask := sys.NewTask("server")
	service := sys.IPC.NewPort("service")
	for i := 0; i < 2; i++ {
		srv := &chaosServer{sys: sys, port: service, rng: workload.NewRNG(rng.Next())}
		sys.Start(serverTask.NewThread(fmt.Sprintf("srv-%d", i), srv, 20))
	}

	excTask := sys.NewTask("exc")
	excPort := sys.IPC.NewPort("exc")
	excSrv := &chaosServer{sys: sys, port: excPort, rng: workload.NewRNG(rng.Next())}
	_ = excSrv
	// Exceptions reply through the kernel sink; use a dedicated handler.
	excHandler := newChaosExcHandler(sys, excPort)
	sys.Start(excTask.NewThread("exc-handler", excHandler, 21))

	var threads []*core.Thread
	for i := 0; i < clients; i++ {
		task := sys.NewTask(fmt.Sprintf("chaos-%d", i))
		reply := sys.IPC.NewPort(fmt.Sprintf("reply-%d", i))
		prog := &chaosProgram{
			sys:     sys,
			rng:     workload.NewRNG(rng.Next()),
			service: service,
			reply:   reply,
			excPort: excPort,
			limit:   120,
		}
		th := task.NewThread("main", prog, 5+rng.Intn(10))
		sys.Exc.SetExceptionPort(th, excPort)
		threads = append(threads, th)
		sys.Start(th)
	}

	for steps := 0; steps < 5_000_000; steps++ {
		if !sys.K.Step() {
			break
		}
		if err := sys.K.Validate(); err != nil {
			t.Fatalf("seed %d, step %d: %v", seed, steps, err)
		}
	}
	for _, th := range threads {
		if th.State != core.StateHalted {
			t.Fatalf("seed %d: %v never finished (state %v, wait %q)",
				seed, th, th.State, th.WaitLabel)
		}
	}
}

// chaosExcHandler answers exception RPCs.
type chaosExcHandler struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
}

func newChaosExcHandler(sys *kern.System, port *ipc.Port) *chaosExcHandler {
	return &chaosExcHandler{sys: sys, port: port}
}

func (h *chaosExcHandler) Next(e *core.Env, t *core.Thread) core.Action {
	if m := h.sys.IPC.Received(t); m != nil {
		h.pending = m
	}
	if h.pending == nil {
		return core.Syscall("recv", func(e *core.Env) {
			h.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: h.port})
		})
	}
	req := h.pending
	h.pending = nil
	return core.Syscall("reply+recv", func(e *core.Env) {
		reply := h.sys.IPC.NewMessage(3, ipc.HeaderBytes, nil, nil)
		h.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: reply, SendTo: req.Reply, ReceiveFrom: h.port,
		})
	})
}

func TestChaosMK40Uniprocessor(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		runChaos(t, kern.MK40, 1, 6, seed)
	}
}

func TestChaosMK40Multiprocessor(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		runChaos(t, kern.MK40, 4, 8, seed*101)
	}
}

func TestChaosMK32(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runChaos(t, kern.MK32, 1, 5, seed*7)
	}
}

func TestChaosMach25(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runChaos(t, kern.Mach25, 2, 5, seed*13)
	}
}

func TestChaosAblations(t *testing.T) {
	for _, cfg := range []struct{ noHandoff, noRecognition bool }{
		{true, false}, {false, true}, {true, true},
	} {
		sys := kern.New(kern.Config{
			Flavor:        kern.MK40,
			Arch:          machine.ArchDS3100,
			NoHandoff:     cfg.noHandoff,
			NoRecognition: cfg.noRecognition,
			Frames:        256,
		})
		rng := workload.NewRNG(99)
		serverTask := sys.NewTask("server")
		service := sys.IPC.NewPort("service")
		srv := &chaosServer{sys: sys, port: service, rng: workload.NewRNG(rng.Next())}
		sys.Start(serverTask.NewThread("srv", srv, 20))
		task := sys.NewTask("client")
		reply := sys.IPC.NewPort("reply")
		prog := &chaosProgram{
			sys: sys, rng: workload.NewRNG(rng.Next()),
			service: service, reply: reply, limit: 80,
		}
		th := task.NewThread("main", prog, 10)
		sys.Start(th)
		for steps := 0; steps < 2_000_000; steps++ {
			if !sys.K.Step() {
				break
			}
			if err := sys.K.Validate(); err != nil {
				t.Fatalf("ablation %+v, step %d: %v", cfg, steps, err)
			}
		}
		if th.State != core.StateHalted {
			t.Fatalf("ablation %+v: client stuck in %v", cfg, th.State)
		}
	}
}
