package kern_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

// blockThenExit issues one syscall, records its return value, and exits.
type blockThenExit struct {
	op   func(*core.Env)
	ret  uint64
	done bool
}

func (p *blockThenExit) Next(e *core.Env, th *core.Thread) core.Action {
	if p.done {
		p.ret = th.MD.RetVal
		return core.Exit()
	}
	p.done = true
	return core.Syscall("op", p.op)
}

// bootForAbort boots a system with the invariant checker armed on every
// dispatch and the callout thread disabled so callout accounting is exact.
func bootForAbort(flavor kern.Flavor) *kern.System {
	sys := kern.New(kern.Config{
		Flavor:         flavor,
		Arch:           machine.ArchDS3100,
		DisableCallout: true,
	})
	sys.K.DebugChecks = true
	return sys
}

// checkClean asserts the post-abort steady state: invariants hold, no
// armed callout leaked, and the stack census is conserved — zero stacks
// in the continuation kernel (all internal threads idle stackless), one
// dedicated stack per live kernel thread (pageout, io-done, netmsg,
// reaper) in the process-model kernels.
func checkClean(t *testing.T, sys *kern.System, flavor kern.Flavor) {
	t.Helper()
	sys.K.MustValidate()
	if got := sys.K.Clock.Pending(); got != 0 {
		t.Fatalf("leaked callouts: %d clock events still armed", got)
	}
	want := 0
	if !flavor.UsesContinuations() {
		want = 4
	}
	if got := sys.K.Stacks.InUse(); got != want {
		t.Fatalf("stack census = %d, want %d", got, want)
	}
	if sys.K.Stats.InvariantPasses == 0 {
		t.Fatal("invariant sweep never ran despite DebugChecks")
	}
}

func TestAbortBlockedReceive(t *testing.T) {
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32, kern.Mach25} {
		t.Run(flavor.String(), func(t *testing.T) {
			sys := bootForAbort(flavor)
			task := sys.NewTask("t")
			port := sys.IPC.NewPort("empty")
			prog := &blockThenExit{op: func(e *core.Env) {
				sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			}}
			th := task.NewThread("rcv", prog, 10)
			sys.Start(th)
			sys.Run(0)
			if th.State != core.StateWaiting {
				t.Fatalf("state before abort = %v", th.State)
			}
			if !sys.ThreadAbort(th) {
				t.Fatal("ThreadAbort refused a blocked receiver")
			}
			sys.Run(0)
			if th.State != core.StateHalted {
				t.Fatalf("state after abort = %v", th.State)
			}
			if prog.ret != ipc.RcvInterrupted {
				t.Fatalf("retval = %#x, want RcvInterrupted", prog.ret)
			}
			if sys.Aborted != 1 || sys.K.Stats.Aborts != 1 {
				t.Fatalf("abort counters = %d/%d", sys.Aborted, sys.K.Stats.Aborts)
			}
			checkClean(t, sys, flavor)
		})
	}
}

func TestAbortBlockedReceiveOnPortSet(t *testing.T) {
	sys := bootForAbort(kern.MK40)
	task := sys.NewTask("t")
	port := sys.IPC.NewPort("member")
	set := sys.IPC.NewPortSet("set")
	sys.IPC.AddToSet(port, set)
	prog := &blockThenExit{op: func(e *core.Env) {
		sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFromSet: set})
	}}
	th := task.NewThread("rcv", prog, 10)
	sys.Start(th)
	sys.Run(0)
	if !sys.ThreadAbort(th) {
		t.Fatal("ThreadAbort refused a set receiver")
	}
	sys.Run(0)
	if prog.ret != ipc.RcvInterrupted {
		t.Fatalf("retval = %#x, want RcvInterrupted", prog.ret)
	}
	checkClean(t, sys, kern.MK40)
}

// sendSpam fills a port's queue past its limit; the overflow send parks
// on the full queue with a send timeout armed.
type sendSpam struct {
	sys  *kern.System
	port *ipc.Port
	n    int
	sent int
	ret  uint64
}

func (p *sendSpam) Next(e *core.Env, th *core.Thread) core.Action {
	if p.sent > 0 {
		p.ret = th.MD.RetVal
	}
	if p.sent >= p.n {
		return core.Exit()
	}
	p.sent++
	return core.Syscall("send", func(e *core.Env) {
		m := p.sys.IPC.NewMessage(1, ipc.HeaderBytes, p.sent, nil)
		p.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: m, SendTo: p.port,
			SndTimeout: machine.Duration(1_000_000_000), // far future
		})
	})
}

func TestAbortBlockedSendCancelsTimeout(t *testing.T) {
	sys := bootForAbort(kern.MK40)
	task := sys.NewTask("t")
	port := sys.IPC.NewPort("stuffed")
	prog := &sendSpam{sys: sys, port: port, n: ipc.DefaultQueueLimit + 1}
	th := task.NewThread("snd", prog, 10)
	sys.Start(th)
	// StepNoAdvance never moves the clock, so the armed send timeout
	// cannot fire; the overflow send is parked when progress stops.
	for sys.K.StepNoAdvance() {
	}
	if th.State != core.StateWaiting {
		t.Fatalf("state before abort = %v", th.State)
	}
	if got := sys.K.Clock.Pending(); got != 1 {
		t.Fatalf("armed callouts before abort = %d, want 1 (snd timeout)", got)
	}
	if !sys.ThreadAbort(th) {
		t.Fatal("ThreadAbort refused a parked sender")
	}
	if got := sys.K.Clock.Pending(); got != 0 {
		t.Fatalf("abort left %d callouts armed", got)
	}
	sys.Run(0)
	if prog.ret != ipc.SendInterrupted {
		t.Fatalf("retval = %#x, want SendInterrupted", prog.ret)
	}
	checkClean(t, sys, kern.MK40)
}

func TestAbortBlockedDeviceRead(t *testing.T) {
	// MK40 aborts a continuation-blocked reader; MK32 exercises the
	// process-model path, discarding the preserved kernel stack frames.
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32} {
		t.Run(flavor.String(), func(t *testing.T) {
			sys := bootForAbort(flavor)
			task := sys.NewTask("t")
			prog := &blockThenExit{op: func(e *core.Env) {
				sys.Dev.DeviceRead(e, sys.Disk, 4096)
			}}
			th := task.NewThread("rd", prog, 10)
			sys.Start(th)
			// Stop before the disk completion interrupt can fire.
			for sys.K.StepNoAdvance() {
			}
			if th.State != core.StateWaiting {
				t.Fatalf("state before abort = %v", th.State)
			}
			if !sys.ThreadAbort(th) {
				t.Fatal("ThreadAbort refused a blocked reader")
			}
			// The in-flight transfer still completes; io_done must discard
			// the orphaned completion.
			sys.Run(0)
			if prog.ret != dev.DevAborted {
				t.Fatalf("retval = %d, want DevAborted", prog.ret)
			}
			if th.State != core.StateHalted {
				t.Fatalf("state after abort = %v", th.State)
			}
			checkClean(t, sys, flavor)
		})
	}
}

func TestAbortRefusesUnabortableThreads(t *testing.T) {
	sys := bootForAbort(kern.MK40)
	task := sys.NewTask("t")
	th := task.NewThread("idle", core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		return core.Exit()
	}), 10)
	// Created threads are waiting but registered on no waiter list.
	if sys.ThreadAbort(th) {
		t.Fatal("ThreadAbort aborted a thread not blocked in IPC or dev")
	}
	sys.Start(th)
	if sys.ThreadAbort(th) {
		t.Fatal("ThreadAbort aborted a runnable thread")
	}
	sys.Run(0)
	if sys.ThreadAbort(th) {
		t.Fatal("ThreadAbort aborted a halted thread")
	}
	if sys.Aborted != 0 {
		t.Fatalf("Aborted = %d, want 0", sys.Aborted)
	}
}
