package kern_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

func TestFlavorProperties(t *testing.T) {
	if !kern.MK40.UsesContinuations() || kern.MK32.UsesContinuations() || kern.Mach25.UsesContinuations() {
		t.Fatal("UsesContinuations wrong")
	}
	if kern.MK40.IPCStyle() != ipc.StyleMK40 ||
		kern.MK32.IPCStyle() != ipc.StyleMK32 ||
		kern.Mach25.IPCStyle() != ipc.StyleMach25 {
		t.Fatal("IPCStyle mapping wrong")
	}
	if kern.MK40.StackVMMetadataBytes() != 0 || kern.MK32.StackVMMetadataBytes() != 116 {
		t.Fatal("stack VM metadata wrong")
	}
	if kern.MK40.String() != "MK40" || kern.Mach25.String() != "Mach 2.5" {
		t.Fatal("flavor strings")
	}
}

func TestStaticThreadSpaceMatchesTable5(t *testing.T) {
	mk40 := kern.MK40.StaticThreadSpace()
	if mk40.MIState != 484 || mk40.MDState != 206 || mk40.StackBytes != 0 || mk40.VMState != 0 {
		t.Fatalf("MK40 space = %+v", mk40)
	}
	if mk40.Total() != 690 {
		t.Fatalf("MK40 total = %d, want 690", mk40.Total())
	}
	mk32 := kern.MK32.StaticThreadSpace()
	if mk32.Total() != 4664 {
		t.Fatalf("MK32 total = %d, want 4664", mk32.Total())
	}
	// The headline claim: 85% less space per thread.
	saving := 1 - float64(mk40.Total())/float64(mk32.Total())
	if saving < 0.85 {
		t.Fatalf("space saving = %.1f%%, want >= 85%%", 100*saving)
	}
}

// echoServer answers every message on its port.
type echoServer struct {
	sys     *kern.System
	port    *ipc.Port
	pending *ipc.Message
	handled int
}

func (s *echoServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return core.Syscall("receive", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	req := s.pending
	s.pending = nil
	s.handled++
	return core.Syscall("reply+receive", func(e *core.Env) {
		reply := s.sys.IPC.NewMessage(1, ipc.HeaderBytes, req.Body, nil)
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: reply, SendTo: req.Reply, ReceiveFrom: s.port,
		})
	})
}

// echoClient issues rpcs RPCs then exits.
type echoClient struct {
	sys    *kern.System
	server *ipc.Port
	reply  *ipc.Port
	rpcs   int
	done   int
}

func (c *echoClient) Next(e *core.Env, t *core.Thread) core.Action {
	if c.done >= c.rpcs {
		return core.Exit()
	}
	c.done++
	return core.Syscall("rpc", func(e *core.Env) {
		req := c.sys.IPC.NewMessage(1, ipc.HeaderBytes, c.done, c.reply)
		c.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: req, SendTo: c.server, ReceiveFrom: c.reply,
		})
	})
}

func bootRPCPair(t *testing.T, flavor kern.Flavor, rpcs int, disableCallout bool) (*kern.System, *echoServer) {
	t.Helper()
	sys := kern.New(kern.Config{
		Flavor:         flavor,
		Arch:           machine.ArchDS3100,
		DisableCallout: disableCallout,
	})
	serverTask := sys.NewTask("server")
	clientTask := sys.NewTask("client")
	sp := sys.IPC.NewPort("service")
	rp := sys.IPC.NewPort("reply")
	srv := &echoServer{sys: sys, port: sp}
	cli := &echoClient{sys: sys, server: sp, reply: rp, rpcs: rpcs}
	st := serverTask.NewThread("srv", srv, 20)
	ct := clientTask.NewThread("cli", cli, 10)
	sys.Start(st)
	sys.Start(ct)
	return sys, srv
}

func TestBootAndRPCEachFlavor(t *testing.T) {
	for _, flavor := range []kern.Flavor{kern.MK40, kern.MK32, kern.Mach25} {
		sys, srv := bootRPCPair(t, flavor, 10, false)
		sys.Run(0)
		if srv.handled != 10 {
			t.Fatalf("%v: handled = %d", flavor, srv.handled)
		}
	}
}

func TestMK40SteadyStateStackCensus(t *testing.T) {
	// §3.4: in the steady state only two stacks are in use — one for the
	// currently running thread and one for the internal kernel thread
	// that never blocks with a continuation.
	sys, _ := bootRPCPair(t, kern.MK40, 200, false)
	sys.Run(0)
	if got := sys.K.Stacks.InUse(); got != 1 {
		// At quiescence only the callout thread's stack remains (nothing
		// is running).
		t.Fatalf("stacks in use at quiescence = %d, want 1 (callout)", got)
	}
	avg := sys.K.Stacks.AverageInUse()
	if avg < 1 || avg > 2.6 {
		t.Fatalf("average stacks in use = %.3f, want about 2", avg)
	}
}

func TestMK32StacksArePerThread(t *testing.T) {
	sys, _ := bootRPCPair(t, kern.MK32, 50, false)
	sys.Run(0)
	// Client halted (stack freed at reap); every live kernel thread holds
	// a dedicated stack under the process model: server, callout, pageout,
	// io-done, netmsg and reaper.
	if got := sys.K.Stacks.InUse(); got != 6 {
		t.Fatalf("stacks in use = %d, want 6 (server + 5 kernel threads)", got)
	}
}

func TestCalloutTicksAndKeepsStack(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100})
	// Nothing else to do: run a few simulated minutes of callout ticks.
	sys.Run(machine.Time(200_000_000_000))
	if sys.CalloutTicks < 3 {
		t.Fatalf("CalloutTicks = %d", sys.CalloutTicks)
	}
	if !sys.Callout.HasStack() {
		t.Fatal("callout thread lost its dedicated stack")
	}
	if sys.Callout.Cont != nil {
		t.Fatal("callout thread blocked with a continuation")
	}
	if sys.K.Stats.TotalNoDiscards() == 0 {
		t.Fatal("callout blocks not in the no-discard row")
	}
}

func TestMeasuredPerThreadBytes(t *testing.T) {
	// With many threads blocked in receive, MK40's measured per-thread
	// memory approaches the Table 5 static value (fixed state only),
	// while MK32's includes a full stack per thread.
	mk40 := measureIdleReceivers(t, kern.MK40, 20)
	mk32 := measureIdleReceivers(t, kern.MK32, 20)
	if mk40 > 900 {
		t.Fatalf("MK40 per-thread bytes = %.0f, want < 900", mk40)
	}
	if mk32 < 4000 {
		t.Fatalf("MK32 per-thread bytes = %.0f, want > 4000", mk32)
	}
	saving := 1 - mk40/mk32
	if saving < 0.8 {
		t.Fatalf("measured saving = %.0f%%", 100*saving)
	}
}

func measureIdleReceivers(t *testing.T, flavor kern.Flavor, n int) float64 {
	t.Helper()
	sys := kern.New(kern.Config{
		Flavor:         flavor,
		Arch:           machine.ArchDS3100,
		DisableCallout: true,
	})
	task := sys.NewTask("pool")
	port := sys.IPC.NewPort("idle")
	for i := 0; i < n; i++ {
		prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			return core.Syscall("receive", func(e *core.Env) {
				sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			})
		})
		sys.Start(task.NewThread("idle", prog, 10))
	}
	sys.Run(0)
	if sys.LiveUserThreads() != n {
		t.Fatalf("live threads = %d", sys.LiveUserThreads())
	}
	return sys.MeasuredPerThreadBytes()
}

func TestAllocAndLockWaits(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	task := sys.NewTask("t")
	var seq int
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		seq++
		switch seq {
		case 1:
			return core.Syscall("alloc", func(e *core.Env) {
				sys.AllocWait(e, 256, func(e2 *core.Env) {
					e2.K.ThreadSyscallReturn(e2, 0)
				})
			})
		case 2:
			return core.Syscall("lock", func(e *core.Env) {
				sys.LockWait(e, 128, func(e2 *core.Env) {
					e2.K.ThreadSyscallReturn(e2, 0)
				})
			})
		default:
			return core.Exit()
		}
	})
	th := task.NewThread("w", prog, 10)
	sys.Start(th)
	sys.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("state = %v", th.State)
	}
	if sys.AllocWaits != 1 || sys.LockWaits != 1 {
		t.Fatalf("alloc=%d lock=%d", sys.AllocWaits, sys.LockWaits)
	}
	if sys.K.Stats.BlocksWithoutDiscard[stats.BlockKernelAlloc] != 1 ||
		sys.K.Stats.BlocksWithoutDiscard[stats.BlockLock] != 1 {
		t.Fatal("alloc/lock waits not tallied as process-model blocks")
	}
}

func TestTaskThreadNaming(t *testing.T) {
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100})
	task := sys.NewTask("emacs")
	th := task.NewThread("main", core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		return core.Exit()
	}), 5)
	if th.Name != "emacs/main" {
		t.Fatalf("thread name = %q", th.Name)
	}
	if len(sys.Tasks()) != 1 || sys.Tasks()[0].ID != task.ID {
		t.Fatal("task registry wrong")
	}
	if th.SpaceID != task.ID {
		t.Fatal("thread space mismatch")
	}
}
