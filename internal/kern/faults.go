package kern

import "repro/internal/fault"

// InjectFaults seeds this machine's fault plans from one (seed, spec)
// pair: the device subsystem and the NIC each get an independent
// SplitMix64 stream derived from the seed, so the same pair reproduces
// the same fault history bit-for-bit regardless of how the two
// subsystems interleave their draws. When the spec injects wire faults
// the netmsg reliability protocol is enabled as well — best-effort
// forwarding would silently lose messages, which is a broken machine,
// not an interesting one.
func (s *System) InjectFaults(seed uint64, spec fault.Spec) {
	if spec.Zero() {
		return
	}
	if s.Dev != nil {
		s.Dev.SetFaultPlan(fault.New(seed, spec))
	}
	if s.Net != nil {
		s.Net.NIC.Fault = fault.New(seed^0x9e3779b97f4a7c15, spec)
		if spec.DropProb > 0 || spec.DupProb > 0 || spec.DelayProb > 0 {
			s.Net.EnableReliable()
		}
	}
}

// FaultStats sums what this machine's plans actually injected.
func (s *System) FaultStats() fault.Stats {
	var st fault.Stats
	add := func(p *fault.Plan) {
		if p == nil {
			return
		}
		st.DeviceFails += p.Stats.DeviceFails
		st.DeviceSlowdowns += p.Stats.DeviceSlowdowns
		st.Drops += p.Stats.Drops
		st.Dups += p.Stats.Dups
		st.Delays += p.Stats.Delays
	}
	if s.Dev != nil {
		add(s.Dev.Fault)
		if s.Net != nil {
			add(s.Net.NIC.Fault)
		}
	}
	return st
}
