package kern

import "repro/internal/fault"

// InjectFaults seeds this machine's fault plans from one (seed, spec)
// pair: the device subsystem and each NIC get an independent SplitMix64
// stream derived from the seed, so the same pair reproduces the same
// fault history bit-for-bit regardless of how the subsystems interleave
// their draws. When the spec injects wire faults or machine crashes the
// netmsg reliability protocol is enabled as well — best-effort
// forwarding would silently lose messages, which is a broken machine,
// not an interesting one, and crash recovery depends on retransmission
// and the incarnation stamps it carries.
func (s *System) InjectFaults(seed uint64, spec fault.Spec) {
	if spec.Zero() {
		return
	}
	if s.Dev != nil {
		s.Dev.SetFaultPlan(fault.New(seed, spec))
	}
	wire := spec.DropProb > 0 || spec.DupProb > 0 || spec.DelayProb > 0
	lossy := wire || len(spec.Crashes) > 0 ||
		len(spec.Partitions) > 0 || len(spec.Links) > 0
	for i, n := range s.Links {
		n.NIC.Fault = fault.New(seed^0x9e3779b97f4a7c15^uint64(i)*0xbf58476d1ce4e5b9, spec)
		if lossy {
			n.EnableReliable()
		}
	}
}

// InstallTopology binds this machine into the cluster's shared
// topology-fault schedule: machineID is the cluster machine index the
// spec's partition/link/gray rules name, and topo (one immutable object
// shared by every machine) is consulted by each NIC on transmit. A gray
// rule targeting this machine installs the time-scale hook on the cost
// accumulator, stretching every charged cost — and user-mode CPU bursts —
// by the window's factor. Both the NIC fields and the accumulator
// survive warm reboots, so a partition or slowdown spanning a crash
// keeps biting the new incarnation. Nil topo is a no-op.
func (s *System) InstallTopology(machineID int, topo *fault.Topology) {
	if topo == nil {
		return
	}
	for _, n := range s.Links {
		n.NIC.Machine = machineID
		n.NIC.Topo = topo
	}
	if topo.HasGray(machineID) {
		s.K.Acct.TimeScale = func() float64 {
			return topo.Slowdown(machineID, s.K.Clock.Now())
		}
	}
}

// FaultStats sums what this machine's plans actually injected.
func (s *System) FaultStats() fault.Stats {
	var st fault.Stats
	add := func(p *fault.Plan) {
		if p == nil {
			return
		}
		st.DeviceFails += p.Stats.DeviceFails
		st.DeviceSlowdowns += p.Stats.DeviceSlowdowns
		st.Drops += p.Stats.Drops
		st.Dups += p.Stats.Dups
		st.Delays += p.Stats.Delays
	}
	if s.Dev != nil {
		add(s.Dev.Fault)
		for _, n := range s.Links {
			add(n.NIC.Fault)
		}
	}
	return st
}
