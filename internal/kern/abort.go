package kern

// This file implements thread_abort, the recovery operation the paper's
// continuation machinery makes cheap: cancelling a thread blocked deep in
// the kernel. Under the process model an abort must unwind a preserved
// kernel stack holding arbitrary callee state; with continuations the
// blocked thread is just a continuation pointer plus 28 bytes of scratch,
// so aborting is dequeue-from-wait-list, cancel callouts, repoint the
// continuation, Setrun.

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// ThreadAbort cancels a thread blocked in an interruptible kernel
// operation — a mach_msg receive (port or port set), a mach_msg send
// parked on a full queue, or a device_read/device_write in any phase
// (queued, in flight, timed out into a retry backoff). The thread is
// dequeued from whatever waiter list holds it, its armed callouts are
// cancelled, its scratch state is freed, and it is resumed at the abort
// continuation, which returns the operation's interruption code
// (ipc.RcvInterrupted, ipc.SendInterrupted or dev.DevAborted) to user
// space. Returns false when the thread is not blocked in an abortable
// operation: running, runnable, halted, or waiting on a non-interruptible
// event (kernel memory, locks, retry-free internal waits).
func (s *System) ThreadAbort(t *core.Thread) bool {
	if t.State != core.StateWaiting {
		return false
	}
	code, ok := s.IPC.AbortWaiter(t)
	if !ok && s.Dev != nil {
		code, ok = s.Dev.AbortWaiter(t)
	}
	if !ok {
		return false
	}
	s.abortCode[t.ID] = code
	if r := s.K.Obs; r != nil {
		r.Emit(obs.Abort, t.ID, t.Name, "", t.WaitLabel)
	}
	t.Scratch.Reset()
	s.K.AbortToContinuation(t, s.contAborted)
	s.K.Setrun(t)
	s.Aborted++
	return true
}

// abortReturn is the abort continuation: running in the aborted thread's
// own context at its next dispatch, it completes the cancelled operation
// with the stashed interruption code. Terminal.
func (s *System) abortReturn(e *core.Env) {
	t := e.Cur()
	code := s.abortCode[t.ID]
	delete(s.abortCode, t.ID)
	if t.UserReturn == core.ReturnException {
		s.K.ThreadExceptionReturn(e)
	}
	s.K.ThreadSyscallReturn(e, code)
}
