package dev_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/machine"
)

// readerWithResult creates a thread that issues one device_read of the
// given size and records its return value.
func readerWithResult(sys *kern.System, bytes int) (*core.Thread, *uint64) {
	task := sys.NewTask("reader")
	ret := new(uint64)
	done := false
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if done {
			*ret = th.MD.RetVal
			return core.Exit()
		}
		done = true
		return core.Syscall("device_read", func(e *core.Env) {
			d := sys.Dev.Open(e, "disk")
			sys.Dev.DeviceRead(e, d, bytes)
		})
	})
	return task.NewThread("rd", prog, 10), ret
}

// quiesceClean asserts the post-recovery steady state: invariants hold
// and no callout is left armed.
func quiesceClean(t *testing.T, sys *kern.System) {
	t.Helper()
	sys.K.MustValidate()
	if got := sys.K.Clock.Pending(); got != 0 {
		t.Fatalf("leaked callouts: %d clock events still armed", got)
	}
}

func TestInjectedFailureExhaustsRetries(t *testing.T) {
	// Every completion fails: the read burns its whole retry budget and
	// returns D_IO_ERROR.
	sys := bootMK40(t)
	sys.K.DebugChecks = true
	sys.Dev.SetFaultPlan(fault.New(7, fault.Spec{DeviceFailProb: 1}))
	th, ret := readerWithResult(sys, 4096)
	sys.Start(th)
	sys.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("reader stuck in %v (%q)", th.State, th.WaitLabel)
	}
	if *ret != dev.DevIOError {
		t.Fatalf("retval = %d, want DevIOError", *ret)
	}
	if sys.Dev.IoRetries != 3 {
		t.Fatalf("retries = %d, want IoMaxRetries (3)", sys.Dev.IoRetries)
	}
	if sys.Dev.IoFailures != 4 {
		t.Fatalf("injected failures = %d, want 4 (initial + 3 retries)", sys.Dev.IoFailures)
	}
	quiesceClean(t, sys)
}

func TestTransientFailureRecoversByRetry(t *testing.T) {
	// Pick a seed whose first failure draw hits and second misses: the
	// initial request fails, the single retry succeeds, and the caller
	// sees a normal byte count.
	spec := fault.Spec{DeviceFailProb: 0.5}
	seed := uint64(0)
	for s := uint64(1); s < 1000; s++ {
		p := fault.New(s, spec)
		if p.DeviceFail("disk") && !p.DeviceFail("disk") {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no suitable seed found")
	}
	sys := bootMK40(t)
	sys.K.DebugChecks = true
	sys.Dev.SetFaultPlan(fault.New(seed, spec))
	th, ret := readerWithResult(sys, 4096)
	sys.Start(th)
	sys.Run(0)
	if *ret != 4096 {
		t.Fatalf("retval = %d, want 4096", *ret)
	}
	if sys.Dev.IoRetries != 1 || sys.Dev.IoFailures != 1 {
		t.Fatalf("retries=%d failures=%d, want 1/1", sys.Dev.IoRetries, sys.Dev.IoFailures)
	}
	if th.State != core.StateHalted {
		t.Fatalf("reader stuck in %v", th.State)
	}
	quiesceClean(t, sys)
}

func TestIoTimeoutExhaustsRetries(t *testing.T) {
	// The timeout is far below the disk's service time: every attempt
	// expires, the waiter detaches, the late completions arrive orphaned
	// and are discarded, and the caller gets DevTimedOut.
	sys := bootMK40(t) // 500 µs disk
	sys.K.DebugChecks = true
	sys.Dev.IoTimeout = machine.Duration(100 * 1000) // 100 µs
	th, ret := readerWithResult(sys, 4096)
	sys.Start(th)
	sys.Run(0)
	if *ret != dev.DevTimedOut {
		t.Fatalf("retval = %d, want DevTimedOut", *ret)
	}
	if sys.Dev.IoTimeouts != 4 {
		t.Fatalf("timeouts = %d, want 4 (initial + 3 retries)", sys.Dev.IoTimeouts)
	}
	if sys.Dev.IoRetries != 3 {
		t.Fatalf("retries = %d, want 3", sys.Dev.IoRetries)
	}
	quiesceClean(t, sys)
}

func TestIoTimeoutDisarmedByCompletion(t *testing.T) {
	// The generous timeout loses to the completion interrupt: the read
	// succeeds normally and the armed timeout is cancelled, not left to
	// fire into a finished request.
	sys := bootMK40(t)
	sys.K.DebugChecks = true
	sys.Dev.IoTimeout = machine.Duration(10 * 1000 * 1000) // 10 ms
	th, ret := readerWithResult(sys, 4096)
	sys.Start(th)
	sys.Run(0)
	if *ret != 4096 {
		t.Fatalf("retval = %d, want 4096", *ret)
	}
	if sys.Dev.IoTimeouts != 0 || sys.Dev.IoRetries != 0 {
		t.Fatalf("timeouts=%d retries=%d, want 0/0", sys.Dev.IoTimeouts, sys.Dev.IoRetries)
	}
	quiesceClean(t, sys)
}

func TestInjectedLatencySlowsCompletion(t *testing.T) {
	// A latency spike delays the transfer but does not fail it.
	extra := machine.Duration(2 * 1000 * 1000) // 2 ms
	sys := bootMK40(t)
	sys.Dev.SetFaultPlan(fault.New(3, fault.Spec{DeviceSlowProb: 1, DeviceSlowExtra: extra}))
	th, ret := readerWithResult(sys, 4096)
	sys.Start(th)
	sys.Run(0)
	if *ret != 4096 {
		t.Fatalf("retval = %d, want 4096", *ret)
	}
	if got := sys.K.Clock.Now(); got < machine.Time(fastDisk+extra) {
		t.Fatalf("completed at %v, before service+spike (%v)", got, fastDisk+extra)
	}
	if sys.Dev.Fault.Stats.DeviceSlowdowns != 1 {
		t.Fatalf("slowdowns = %d, want 1", sys.Dev.Fault.Stats.DeviceSlowdowns)
	}
	quiesceClean(t, sys)
}

func TestFaultPlanDeterminism(t *testing.T) {
	// Two systems with the same seed and spec produce bit-identical fault
	// histories and counters.
	run := func() (uint64, fault.Stats, machine.Time) {
		sys := bootMK40(t)
		sys.K.DebugChecks = true
		sys.Dev.SetFaultPlan(fault.New(99, fault.Spec{
			DeviceFailProb: 0.3,
			DeviceSlowProb: 0.3, DeviceSlowExtra: machine.Duration(1_000_000),
		}))
		for i := 0; i < 3; i++ {
			th, _ := readerWithResult(sys, 2048)
			sys.Start(th)
		}
		sys.Run(0)
		quiesceClean(t, sys)
		return sys.Dev.IoRetries, sys.Dev.Fault.Stats, sys.K.Clock.Now()
	}
	r1, s1, t1 := run()
	r2, s2, t2 := run()
	if r1 != r2 || s1 != s2 || t1 != t2 {
		t.Fatalf("runs diverged: %d/%+v/%v vs %d/%+v/%v", r1, s1, t1, r2, s2, t2)
	}
}
