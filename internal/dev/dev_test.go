// External tests: the device subsystem is exercised through a fully
// booted kern.System, which the dev package itself cannot import.
package dev_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

const fastDisk = machine.Duration(500 * 1000) // 500 µs

func bootMK40(t *testing.T) *kern.System {
	t.Helper()
	return kern.New(kern.Config{
		Flavor: kern.MK40, Arch: machine.ArchDS3100,
		DisableCallout: true, DiskLatency: fastDisk,
	})
}

// oneReader creates a user thread that issues n device_read calls of the
// given size against the system's disk, then exits.
func oneReader(sys *kern.System, name string, n, bytes int) *core.Thread {
	task := sys.NewTask(name)
	done := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if done >= n {
			return core.Exit()
		}
		done++
		return core.Syscall("device_read", func(e *core.Env) {
			d := sys.Dev.Open(e, "disk")
			sys.Dev.DeviceRead(e, d, bytes)
		})
	})
	return task.NewThread("rd", prog, 10)
}

// TestInterruptsAllocateNoStacks is the zero-stack invariant: a phase of
// pure interrupt delivery allocates no kernel stacks — neither the
// in-use count nor the pool high-water moves. (TakeInterrupt additionally
// panics if any single handler changes the census.)
func TestInterruptsAllocateNoStacks(t *testing.T) {
	sys := bootMK40(t)
	sys.Start(oneReader(sys, "warm", 2, 4096))
	sys.Run(0) // quiesce with the daemons parked in their continuations

	inUse := sys.K.Stacks.InUse()
	maxInUse := sys.K.Stacks.MaxInUse()
	before := sys.K.Stats.Interrupts

	const n = 40
	for i := 0; i < n; i++ {
		sys.K.TakeInterrupt("spurious", func(e *core.Env) {
			e.Charge(machine.Cost{Instrs: 50, Loads: 10, Stores: 5})
		})
	}

	if got := sys.K.Stats.Interrupts - before; got != n {
		t.Fatalf("interrupts taken = %d, want %d", got, n)
	}
	if got := sys.K.Stacks.InUse(); got != inUse {
		t.Fatalf("stacks in use moved during interrupt-only phase: %d -> %d", inUse, got)
	}
	if got := sys.K.Stacks.MaxInUse(); got != maxInUse {
		t.Fatalf("stack high-water moved during interrupt-only phase: %d -> %d", maxInUse, got)
	}
}

// TestDeviceReadHandoffAndRecognition checks the continuation fast path
// end to end on MK40: the reader blocks with device_read_continue and
// discards its stack; the io_done thread hands its stack over and
// recognizes the continuation.
func TestDeviceReadHandoffAndRecognition(t *testing.T) {
	sys := bootMK40(t)
	sys.Start(oneReader(sys, "reader", 1, 4096))
	sys.Run(0)

	st := sys.K.Stats
	if got := st.BlocksWithDiscard[stats.BlockDeviceIO]; got != 1 {
		t.Fatalf("device-io blocks with discard = %d, want 1", got)
	}
	if got := st.BlocksWithoutDiscard[stats.BlockDeviceIO]; got != 0 {
		t.Fatalf("device-io blocks without discard = %d, want 0", got)
	}
	if sys.Dev.IoDoneHandoffs != 1 {
		t.Fatalf("io_done handoffs = %d, want 1", sys.Dev.IoDoneHandoffs)
	}
	if st.IoDoneRecognitions != 1 {
		t.Fatalf("io_done recognitions = %d, want 1", st.IoDoneRecognitions)
	}
	if st.Interrupts == 0 {
		t.Fatal("no interrupts taken")
	}
	if sys.Disk.Requests != 1 || sys.Disk.Interrupts != 1 {
		t.Fatalf("disk requests/interrupts = %d/%d, want 1/1",
			sys.Disk.Requests, sys.Disk.Interrupts)
	}
	if sys.Dev.Reads != 1 {
		t.Fatalf("device reads = %d, want 1", sys.Dev.Reads)
	}
}

// TestDeviceReadProcessModel checks the same path under MK32: the reader
// keeps its stack while blocked and the io_done thread wakes it through
// the scheduler — no handoff, no recognition, same completion.
func TestDeviceReadProcessModel(t *testing.T) {
	sys := kern.New(kern.Config{
		Flavor: kern.MK32, Arch: machine.ArchDS3100,
		DisableCallout: true, DiskLatency: fastDisk,
	})
	sys.Start(oneReader(sys, "reader", 1, 4096))
	sys.Run(0)

	st := sys.K.Stats
	if got := st.BlocksWithoutDiscard[stats.BlockDeviceIO]; got != 1 {
		t.Fatalf("device-io blocks without discard = %d, want 1", got)
	}
	if got := st.BlocksWithDiscard[stats.BlockDeviceIO]; got != 0 {
		t.Fatalf("device-io blocks with discard = %d, want 0", got)
	}
	if sys.Dev.IoDoneHandoffs != 0 {
		t.Fatalf("io_done handoffs = %d, want 0 under the process model", sys.Dev.IoDoneHandoffs)
	}
	if sys.Disk.Requests != 1 {
		t.Fatalf("disk requests = %d, want 1", sys.Disk.Requests)
	}
}

// TestRequestQueueDepth checks that concurrent requests queue on the one
// device and the high-water mark sees it.
func TestRequestQueueDepth(t *testing.T) {
	sys := bootMK40(t)
	for i := 0; i < 3; i++ {
		sys.Start(oneReader(sys, "reader", 4, 2048))
	}
	sys.Run(0)

	if sys.Disk.QueueHighWater < 2 {
		t.Fatalf("queue high-water = %d, want >= 2 with 3 concurrent readers",
			sys.Disk.QueueHighWater)
	}
	if sys.Disk.Requests != 12 {
		t.Fatalf("disk requests = %d, want 12", sys.Disk.Requests)
	}
	if sys.Disk.QueueDepth() != 0 {
		t.Fatalf("queue depth at quiescence = %d, want 0", sys.Disk.QueueDepth())
	}
}

// TestDeviceWrite checks the write path and its charge-up-front copyin.
func TestDeviceWrite(t *testing.T) {
	sys := bootMK40(t)
	task := sys.NewTask("writer")
	wrote := false
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if wrote {
			return core.Exit()
		}
		wrote = true
		return core.Syscall("device_write", func(e *core.Env) {
			d := sys.Dev.Open(e, "disk")
			sys.Dev.DeviceWrite(e, d, 8192)
		})
	})
	sys.Start(task.NewThread("wr", prog, 10))
	sys.Run(0)

	if sys.Dev.Writes != 1 {
		t.Fatalf("device writes = %d, want 1", sys.Dev.Writes)
	}
	if got := sys.K.Stats.BlocksWithDiscard[stats.BlockDeviceIO]; got != 1 {
		t.Fatalf("device-io blocks = %d, want 1", got)
	}
}

// TestNICPairDelivery checks the raw wire: a packet transmitted on one
// machine arrives by interrupt on the peer and is counted, even with no
// exported destination (netmsg drops it).
func TestNICPairDelivery(t *testing.T) {
	a := bootMK40(t)
	b := bootMK40(t)
	dev.Connect(a.Net.NIC, b.Net.NIC, 0)

	cluster := kern.NewCluster(a, b)
	task := a.NewTask("tx")
	sent := false
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent {
			return core.Exit()
		}
		sent = true
		return core.Syscall("net-tx", func(e *core.Env) {
			a.Net.NIC.Transmit(e, &dev.Packet{DstPort: "nowhere", Size: 128})
			a.K.ThreadSyscallReturn(e, 0)
		})
	})
	a.Start(task.NewThread("tx", prog, 10))
	for cluster.Step(false) {
	}

	if a.Net.NIC.TxPackets != 1 {
		t.Fatalf("tx packets = %d, want 1", a.Net.NIC.TxPackets)
	}
	if b.Net.NIC.RxPackets != 1 || b.Net.NIC.Interrupts != 1 {
		t.Fatalf("rx packets/interrupts = %d/%d, want 1/1",
			b.Net.NIC.RxPackets, b.Net.NIC.Interrupts)
	}
	if b.Net.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (no exported port)", b.Net.Dropped)
	}
	if b.K.Clock.Now() <= a.K.Clock.Now() && b.Net.NIC.RxPackets == 0 {
		t.Fatal("peer clock never advanced to the arrival")
	}
}
