// NIC pair and the in-kernel netmsg forwarding thread: the device
// subsystem's network half. Two simulated machines are joined by
// connecting their NICs; a send to a proxy port on one machine becomes a
// packet on the wire, an rx interrupt on the other, a deferred completion
// through the io_done thread, and finally a local ipc delivery by the
// netmsg thread — Table 1's "internal threads" row earning its keep on a
// cross-machine RPC.
package dev

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// DefaultWireLatency is the one-way packet latency between two machines
// (propagation plus serialization on a paper-era 10 Mbit Ethernet).
const DefaultWireLatency = machine.Duration(400 * 1000) // 400 µs

var (
	// nicTxCost is the transmit path: build the packet header, program
	// the DMA ring.
	nicTxCost = machine.Cost{Instrs: 180, Loads: 50, Stores: 60}
	// nicRxHandlerCost is the rx interrupt handler body: acknowledge the
	// controller, take the packet off the ring.
	nicRxHandlerCost = machine.Cost{Instrs: 110, Loads: 40, Stores: 20}
	// netmsgDemuxCost is the netmsg thread's per-packet protocol work:
	// checksum, port-name demultiplex, message reconstruction.
	netmsgDemuxCost = machine.Cost{Instrs: 150, Loads: 60, Stores: 30}
)

// Packet is one message on the wire between two machines.
type Packet struct {
	// DstPort names the destination port in the receiving machine's
	// netmsg registry.
	DstPort string
	// ReplyPort, when nonempty, names the port (in the sending machine's
	// registry) that the receiver's reply should be forwarded to.
	ReplyPort string

	OpID uint32
	Size int
	Body any

	// Seq numbers a data packet when the sending netmsg thread runs its
	// reliability protocol (zero on best-effort traffic); Ack marks the
	// acknowledgement packet that quiets the sender's retransmit timer
	// for that sequence number.
	Seq uint64
	Ack bool

	// SrcInc and DstInc are the boot incarnation numbers of the sending
	// machine and of the destination machine as the sender last knew it.
	// A receiver discards packets stamped for a previous incarnation of
	// itself (a retransmit that outlived a crash) or stamped by a peer
	// incarnation it already knows to be dead; zero means unstamped and
	// is always accepted. Every stamped arrival doubles as a piggybacked
	// heartbeat for the membership layer.
	SrcInc uint32
	DstInc uint32

	// Heartbeat marks an explicit incarnation announcement: it carries no
	// payload and is consumed by the receiving netmsg thread's membership
	// bookkeeping instead of being delivered to a port.
	Heartbeat bool

	// Trace is the forwarded message's causal-trace context, part of the
	// netmsg framing: the receiver re-stamps it onto the reconstructed
	// message and records the flight as a wire span. SentAt is the
	// sender's transmit time (cluster clocks share one timeline), set
	// once at first transmission so a retransmitted packet's wire span
	// covers the whole loss-and-backoff window. Both are immutable after
	// first transmit — a retransmitted *Packet is shared with the
	// receiving machine.
	Trace  obs.TraceContext
	SentAt machine.Time

	// Deadline forwards the message's absolute overload-control
	// deadline across the wire (zero when none). Like Trace it is part
	// of the framing: the receiver re-stamps it onto the reconstructed
	// message so every tier sees the same budget.
	Deadline machine.Time
}

// ackBytes is the wire size of a bare acknowledgement packet.
const ackBytes = 32

// NIC is a network interface. Transmit puts packets on the wire to the
// connected peer; arrival raises an rx interrupt on the peer's machine,
// whose deferred completion hands the packet to the peer's netmsg thread.
type NIC struct {
	Name string
	Sub  *Subsystem

	// Wire is the one-way packet latency to the peer.
	Wire machine.Duration

	peer *NIC

	// index is this NIC's creation order on its machine; together with the
	// sender's emission counter it forms the deterministic tie-break key
	// for arrivals scheduled on this machine's clock.
	index int

	// txSeq numbers every arrival this NIC emits (including injected
	// duplicates), in transmit order.
	txSeq uint64

	// deferOn buffers outbound arrivals in pending instead of touching the
	// peer's clock — the parallel cluster driver sets it so a machine's
	// round never mutates another machine's state; the coordinator flushes
	// at the barrier. dirtyMark records that this NIC is already on its
	// subsystem's dirty list for the current round.
	deferOn   bool
	dirtyMark bool
	pending   []wireDelivery

	// rxLabel and rxDupLabel are the arrival event labels, precomputed at
	// Connect so the transmit path does not build strings per packet.
	rxLabel    string
	rxDupLabel string

	// handler consumes received packets in io_done context; the netmsg
	// thread installs itself here.
	handler func(e *core.Env, pkt *Packet)

	// down marks the NIC's machine as crashed: arrivals are discarded
	// before the rx interrupt is raised (there are no interrupt vectors,
	// threads or stacks to take it on).
	down bool

	// Fault, when non-nil, injects wire faults on transmit: packet drop,
	// duplication, and delay (reordering).
	Fault *fault.Plan

	// Topo, when non-nil, is the cluster's shared topology-fault schedule
	// (partitions, asymmetric link faults), consulted per transmit with
	// Machine as this NIC's cluster machine index. Read-only and a pure
	// function of time, so sharing one Topology across machines is safe
	// under the parallel driver. Both survive a warm reboot with the NIC.
	Topo    *fault.Topology
	Machine int

	// Counters.
	TxPackets   uint64
	RxPackets   uint64
	Interrupts  uint64
	Dropped     uint64 // transmissions lost to injected drops
	Duplicated  uint64 // transmissions that arrived twice
	Delayed     uint64 // transmissions held back on the wire
	Severed     uint64 // transmissions cut by a partition or drop-link window
	LinkDelayed uint64 // transmissions slowed by a delay-link window
	RxWhileDown uint64 // arrivals discarded because the machine was down
}

// wireDelivery is one packet arrival bound for the peer machine, buffered
// while a parallel round executes.
type wireDelivery struct {
	at    machine.Time
	key   uint64
	label string
	pkt   *Packet
}

// NewNIC registers a NIC on this machine.
func (s *Subsystem) NewNIC(name string) *NIC {
	n := &NIC{Name: name, Sub: s, Wire: DefaultWireLatency, index: len(s.nics)}
	s.nics = append(s.nics, n)
	return n
}

// NICs returns the machine's NICs in creation order.
func (s *Subsystem) NICs() []*NIC { return s.nics }

// AdoptNIC re-registers a NIC surviving from a previous incarnation of
// this machine into a freshly booted device subsystem (the hardware,
// its wiring and its transmit history outlive a warm reboot). NICs must
// be adopted in their original creation order so the deterministic
// arrival tie-break keys keep their meaning.
func (s *Subsystem) AdoptNIC(n *NIC) {
	if n.index != len(s.nics) {
		panic(fmt.Sprintf("dev: AdoptNIC of %q out of order (index %d, have %d NICs)",
			n.Name, n.index, len(s.nics)))
	}
	n.Sub = s
	n.handler = nil
	s.nics = append(s.nics, n)
	// Deliveries buffered before the crash are still on the wire; carry
	// them onto the new incarnation's dirty list so the barrier flush
	// does not strand them.
	n.dirtyMark = len(n.pending) > 0
	if n.dirtyMark {
		s.dirtyNICs = append(s.dirtyNICs, n)
	}
}

// Index reports the NIC's creation order on its machine.
func (n *NIC) Index() int { return n.index }

// SetDown marks the NIC's machine as crashed (true) or rebooted (false).
// While down, packets already on the wire still arrive — a crash cannot
// recall them — but are discarded at the interrupt boundary.
func (n *NIC) SetDown(down bool) { n.down = down }

// Connect joins two NICs (usually on different machines) with the given
// wire latency (DefaultWireLatency if 0).
func Connect(a, b *NIC, wire machine.Duration) {
	if wire == 0 {
		wire = DefaultWireLatency
	}
	a.peer, b.peer = b, a
	a.Wire, b.Wire = wire, wire
	a.rxLabel, a.rxDupLabel = a.Name+"-rx", a.Name+"-rx-dup"
	b.rxLabel, b.rxDupLabel = b.Name+"-rx", b.Name+"-rx-dup"
}

// Peer returns the connected NIC, nil when unconnected.
func (n *NIC) Peer() *NIC { return n.peer }

// emitWireFault records a wire fault-plan firing in the transmitting
// kernel's event stream.
func (n *NIC) emitWireFault(e *core.Env, what string) {
	r := n.Sub.K.Obs
	if r == nil {
		return
	}
	tid, name := 0, ""
	if t := e.Cur(); t != nil {
		tid, name = t.ID, t.Name
	}
	r.Emit(obs.FaultInject, tid, name, "", n.Name+" "+what)
}

// Transmit puts a packet on the wire in the sender's kernel context.
// Arrival is scheduled on the peer machine's clock at an absolute time,
// so two machines with independent clocks agree on when the wire
// delivers. Non-terminal.
func (n *NIC) Transmit(e *core.Env, pkt *Packet) {
	if n.peer == nil {
		panic(fmt.Sprintf("dev: Transmit on unconnected NIC %q", n.Name))
	}
	e.Charge(nicTxCost.Plus(machine.CopyBytes(pkt.Size)))
	n.TxPackets++
	now := n.Sub.K.Clock.Now()
	// Topology faults come first and are deterministic functions of time —
	// a severed packet consumes no draws from the probabilistic plan, so a
	// spec without topology rules keeps its exact fault stream.
	if n.Topo.CutAt(n.Machine, n.peer.Machine, now) {
		n.Severed++
		n.emitWireFault(e, "cut")
		return
	}
	if n.Fault.DropPacket() {
		// Lost on the wire: the sender already paid the tx cost and, if
		// running the reliability protocol, will retransmit.
		n.Dropped++
		n.emitWireFault(e, "drop")
		return
	}
	wire := n.Wire
	if extra := n.Topo.ExtraDelay(n.Machine, n.peer.Machine, now); extra > 0 {
		// Degraded link: every packet in the window is late by the same
		// amount, unlike the probabilistic reordering delay below.
		n.LinkDelayed++
		n.emitWireFault(e, fmt.Sprintf("link delay +%dus", uint64(extra)/1000))
		wire += extra
	}
	if extra := n.Fault.DelayPacket(); extra > 0 {
		// Held back: a later transmission can overtake this one.
		n.Delayed++
		n.emitWireFault(e, fmt.Sprintf("delay +%dus", uint64(extra)/1000))
		wire += extra
	}
	peer := n.peer
	arrival := now + wire
	n.deliverAt(arrival, peer.rxLabel, pkt)
	if n.Fault.DupPacket() {
		n.Duplicated++
		n.emitWireFault(e, "duplicate")
		n.deliverAt(arrival+n.Wire/2, peer.rxDupLabel, pkt)
	}
}

// deliverAt schedules (or, during a parallel round, buffers) one arrival
// on the peer machine's clock. The tie-break key — receiving NIC index
// plus this NIC's emission counter — is what makes the peer's event-heap
// order identical under the sequential and parallel drivers: at equal
// arrival times, wire events order after the peer's local events and
// among themselves by emission order, never by scheduling order.
func (n *NIC) deliverAt(at machine.Time, label string, pkt *Packet) {
	peer := n.peer
	key := uint64(peer.index)<<32 | (n.txSeq & 0xffffffff)
	n.txSeq++
	if n.deferOn {
		if !n.dirtyMark {
			n.dirtyMark = true
			n.Sub.dirtyNICs = append(n.Sub.dirtyNICs, n)
		}
		n.pending = append(n.pending, wireDelivery{at: at, key: key, label: label, pkt: pkt})
		return
	}
	peer.Sub.K.Clock.ScheduleRemote(at, key, label, func() { peer.receive(pkt) })
}

// SetDeferred switches the NIC between immediate delivery (scheduling on
// the peer's clock from the sender's context) and deferred delivery
// (buffering for a barrier flush). Only cluster drivers toggle this.
func (n *NIC) SetDeferred(on bool) { n.deferOn = on }

// FlushDeferred schedules every buffered arrival on the peer's clock and
// returns how many were delivered. Called single-threaded at a parallel
// round's barrier.
func (n *NIC) FlushDeferred() int {
	cnt := len(n.pending)
	for i := range n.pending {
		d := n.pending[i]
		peer, pkt := n.peer, d.pkt
		peer.Sub.K.Clock.ScheduleRemote(d.at, d.key, d.label, func() { peer.receive(pkt) })
		n.pending[i] = wireDelivery{}
	}
	n.pending = n.pending[:0]
	n.dirtyMark = false
	return cnt
}

// PendingDeferred reports how many buffered deliveries await the next
// flush — the cross-check that a dirty-list flush stranded nothing.
func (n *NIC) PendingDeferred() int { return len(n.pending) }

// FlushDirtyDeferred drains only the NICs that buffered deliveries since
// the last flush, in NIC-index order (first-buffer order within a round
// is deterministic but not index-ordered, so the short list is sorted to
// keep the documented machine/NIC/emission flush order). Called
// single-threaded at a round's barrier.
func (s *Subsystem) FlushDirtyDeferred() int {
	if len(s.dirtyNICs) == 0 {
		return 0
	}
	d := s.dirtyNICs
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j].index < d[j-1].index; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
	cnt := 0
	for i, n := range d {
		cnt += n.FlushDeferred()
		d[i] = nil
	}
	s.dirtyNICs = s.dirtyNICs[:0]
	return cnt
}

// FlushAllDeferred drains every NIC regardless of dirty state — the
// reference full-scan flush — and resets the dirty bookkeeping so the
// two flush paths stay interchangeable.
func (s *Subsystem) FlushAllDeferred() int {
	cnt := 0
	for _, n := range s.nics {
		cnt += n.FlushDeferred()
	}
	for i := range s.dirtyNICs {
		s.dirtyNICs[i] = nil
	}
	s.dirtyNICs = s.dirtyNICs[:0]
	return cnt
}

// receive is the packet arrival on the destination machine: an rx
// interrupt on the current processor's stack, with delivery deferred to
// the io_done thread (which will usually hand its stack straight to the
// netmsg thread).
func (n *NIC) receive(pkt *Packet) {
	if n.down {
		n.RxWhileDown++
		return
	}
	s := n.Sub
	s.K.TakeInterrupt(n.Name+" rx", func(e *core.Env) {
		e.Charge(nicRxHandlerCost)
		s.noteHandlerWork(nicRxHandlerCost)
		n.Interrupts++
		n.RxPackets++
		h := n.handler
		if h == nil {
			return // no netmsg thread: drop
		}
		s.PostCompletion(&Request{
			Label:    "nic-rx",
			Bytes:    pkt.Size,
			Complete: func(e2 *core.Env) { h(e2, pkt) },
		})
	})
}

// Netmsg is the in-kernel network message server: a per-machine internal
// kernel thread that forwards local sends to remote ports over the NIC
// and delivers arriving packets into local ipc ports.
type Netmsg struct {
	Sub *Subsystem
	X   *ipc.IPC
	NIC *NIC

	// Thread is the forwarding thread; cont is its work-loop continuation
	// ("netmsg_continue").
	Thread *core.Thread
	cont   *core.Continuation

	// exported maps wire names to local ports that remote machines may
	// send to; exportedBy is the reverse map for reply-port auto-export.
	exported   map[string]*ipc.Port
	exportedBy map[*ipc.Port]string

	// proxies are local stand-ins for remote ports: sending to one
	// transmits a packet.
	proxies map[string]*ipc.Port

	inbox    []*Packet
	replySeq int

	// Reliable enables the seq/ack protocol: every forwarded data packet
	// carries a sequence number, is retransmitted until acknowledged, and
	// arriving duplicates are suppressed — so cross-machine RPC completes
	// under injected packet loss. Enabled on both machines of a pair.
	Reliable bool

	// RexmitTimeout is the first retransmit interval (doubling per
	// attempt); RexmitMax bounds the attempts before the packet is
	// declared lost.
	RexmitTimeout machine.Duration
	RexmitMax     int

	seq     uint64                 // last data sequence number assigned
	unacked map[uint64]*unackedPkt // awaiting acknowledgement, by seq
	seen    map[uint64]bool        // peer data seqs already delivered
	outbox  []*Packet              // retransmissions queued by timers

	// Membership state (crash recovery). Inc is this machine's boot
	// incarnation, stamped into every transmitted packet; peerInc is the
	// highest incarnation heard from the peer. lastHeard is updated by
	// every stamped arrival — ordinary traffic doubles as a piggybacked
	// heartbeat — and PeerAlive declares the peer dead lazily when the
	// silence exceeds DeadAfter.
	Inc          uint32
	peerInc      uint32
	lastHeard    machine.Time
	declaredDead bool

	// DeadAfter is the silence deadline after which PeerAlive presumes
	// the peer dead (DefaultDeadAfter if left zero by hand-construction).
	DeadAfter machine.Duration

	// Counters.
	Forwarded      uint64 // local sends put on the wire
	Delivered      uint64 // arriving packets delivered to local ports
	Dropped        uint64 // arriving packets with no registered port
	InboxHighWater int
	Retransmits    uint64 // data packets sent again after an ack timeout
	AcksTx         uint64 // acknowledgements transmitted
	AcksRx         uint64 // acknowledgements received
	DupsDropped    uint64 // duplicate data packets suppressed
	Lost           uint64 // packets abandoned after RexmitMax attempts
	StaleDropped   uint64 // arrivals discarded by the incarnation check
	HeartbeatsTx   uint64 // explicit announcements put on the wire
	HeartbeatsRx   uint64 // explicit announcements consumed
	DeathsDetected uint64 // times the peer was declared dead
	Recoveries     uint64 // times a dead peer was heard from again
}

// unackedPkt tracks one transmitted-but-unacknowledged data packet.
type unackedPkt struct {
	pkt      *Packet
	timer    *machine.Event
	attempts int
}

// DefaultRexmitTimeout is the initial ack wait: generously past one
// round trip at the default wire latency.
const DefaultRexmitTimeout = machine.Duration(5 * 1000 * 1000) // 5 ms

// DefaultRexmitMax bounds retransmission attempts per packet.
const DefaultRexmitMax = 8

// DefaultDeadAfter is the membership silence deadline: four retransmit
// intervals without hearing from the peer and it is presumed dead.
const DefaultDeadAfter = 4 * DefaultRexmitTimeout

// NewNetmsg creates the netmsg thread for a machine and binds it to the
// NIC (created blocked; packet arrivals wake it through the io_done
// thread, most often by stack handoff).
func NewNetmsg(s *Subsystem, x *ipc.IPC, nic *NIC) *Netmsg {
	n := &Netmsg{
		Sub:        s,
		X:          x,
		NIC:        nic,
		exported:   make(map[string]*ipc.Port),
		exportedBy: make(map[*ipc.Port]string),
		proxies:    make(map[string]*ipc.Port),
	}
	n.RexmitTimeout = DefaultRexmitTimeout
	n.RexmitMax = DefaultRexmitMax
	n.DeadAfter = DefaultDeadAfter
	n.Inc = 1
	n.peerInc = 1
	n.lastHeard = s.K.Clock.Now()
	n.unacked = make(map[uint64]*unackedPkt)
	n.seen = make(map[uint64]bool)
	n.cont = core.NewContinuation("netmsg_continue", n.loop)
	var pm func(*core.Env)
	if !s.K.UseContinuations {
		pm = n.loop
	}
	name := "netmsg"
	if nic.index > 0 {
		name = fmt.Sprintf("netmsg%d", nic.index)
	}
	n.Thread = s.K.NewThread(core.ThreadSpec{
		Name:     name,
		SpaceID:  0,
		Internal: true,
		Priority: 29,
		Start:    n.cont,
		StartPM:  pm,
	})
	nic.handler = n.takePacket
	return n
}

// Cont returns the netmsg thread's work-loop continuation, for tests.
func (n *Netmsg) Cont() *core.Continuation { return n.cont }

// Export registers a local port under a wire name so remote machines can
// send to it.
func (n *Netmsg) Export(name string, p *ipc.Port) {
	n.exported[name] = p
	n.exportedBy[p] = name
}

// exportName returns (registering if needed) the wire name of a local
// port, used to route replies back across the wire.
func (n *Netmsg) exportName(p *ipc.Port) string {
	if name, ok := n.exportedBy[p]; ok {
		return name
	}
	n.replySeq++
	name := fmt.Sprintf("reply-%d", n.replySeq)
	n.Export(name, p)
	return name
}

// ProxyFor returns a local port standing in for the named port on the
// remote machine. Sending to it runs the netmsg forward path in the
// sender's kernel context: the message becomes a packet, and the sender
// proceeds directly into its receive phase (no local receiver, no queue).
func (n *Netmsg) ProxyFor(remote string) *ipc.Port {
	p := n.proxies[remote]
	if p == nil {
		p = n.X.NewPort("proxy:" + remote)
		p.KernelSink = func(e *core.Env, msg *ipc.Message, opts *ipc.MsgOptions) {
			n.forwardSink(e, remote, msg, opts)
		}
		n.proxies[remote] = p
	}
	return p
}

// forwardSink processes a send to a proxy port in the sender's kernel
// context: transmit the packet, then continue the sender's mach_msg.
// Terminal.
func (n *Netmsg) forwardSink(e *core.Env, remote string, msg *ipc.Message, opts *ipc.MsgOptions) {
	replyName := ""
	if msg.Reply != nil {
		replyName = n.exportName(msg.Reply)
	}
	n.Forwarded++
	pkt := &Packet{
		DstPort:   remote,
		ReplyPort: replyName,
		OpID:      msg.OpID,
		Size:      msg.Size,
		Body:      msg.Body,
		SrcInc:    n.Inc,
		DstInc:    n.peerInc,
		Trace:     msg.Trace,
		SentAt:    n.Sub.K.Clock.Now(),
		Deadline:  msg.Deadline,
	}
	// DstInc is stamped once, here: if the peer crashes and reboots while
	// this packet is retransmitting, every retransmission still targets
	// the dead incarnation and the new one discards them — a request from
	// before the crash is never half-delivered into the rebooted machine.
	if n.Reliable {
		n.seq++
		pkt.Seq = n.seq
		n.track(pkt)
	}
	n.NIC.Transmit(e, pkt)
	// The message is fully serialized into the packet; recycle its buffer.
	n.X.FreeMessage(msg)
	if opts.ReceiveFrom != nil {
		n.X.ReceiveTimeout(e, opts.ReceiveFrom, opts.MaxSize, opts.RcvTimeout)
	}
	n.Sub.K.ThreadSyscallReturn(e, ipc.MsgSuccess)
}

// EnableReliable turns on the seq/ack protocol; enable it on both
// machines of a connected pair.
func (n *Netmsg) EnableReliable() { n.Reliable = true }

// UnackedLen reports data packets still awaiting acknowledgement.
func (n *Netmsg) UnackedLen() int { return len(n.unacked) }

// SetIncarnation stamps the machine's boot incarnation into this link's
// outbound packets; the warm-reboot path calls it before announcing.
func (n *Netmsg) SetIncarnation(inc uint32) { n.Inc = inc }

// PeerIncarnation reports the highest incarnation heard from the peer.
func (n *Netmsg) PeerIncarnation() uint32 { return n.peerInc }

// PeerAlive reports whether the peer machine is presumed up: alive until
// the link has been silent past DeadAfter, dead from then until the peer
// is heard from again. The check is lazy — ordinary traffic carries the
// piggybacked heartbeats, so no timer fires on a quiescent machine and
// determinism across drivers is free.
func (n *Netmsg) PeerAlive() bool {
	if n.declaredDead {
		return false
	}
	if n.Sub.K.Clock.Now()-n.lastHeard > n.deadAfter() {
		n.declaredDead = true
		n.DeathsDetected++
		if r := n.Sub.K.Obs; r != nil {
			r.Emit(obs.PeerDeath, 0, "", "", n.NIC.Name)
		}
		return false
	}
	return true
}

func (n *Netmsg) deadAfter() machine.Duration {
	if n.DeadAfter != 0 {
		return n.DeadAfter
	}
	return DefaultDeadAfter
}

// AnnounceIncarnation queues an explicit heartbeat announcing this
// machine's incarnation — the warm-reboot path's "I am back" burst. The
// announcement rides the reliability protocol when enabled, so a single
// injected drop cannot hide a reboot from the peer. Transmission happens
// in the netmsg thread's context (timers and boot code have no kernel
// Env to charge the tx cost against).
func (n *Netmsg) AnnounceIncarnation() {
	pkt := &Packet{Heartbeat: true, Size: ackBytes, SrcInc: n.Inc}
	if n.Reliable {
		n.seq++
		pkt.Seq = n.seq
		n.track(pkt)
	}
	n.outbox = append(n.outbox, pkt)
	if n.Thread.State == core.StateWaiting {
		n.Sub.K.Setrun(n.Thread)
	}
}

// noteIncarnation is the membership bookkeeping run on every arriving
// packet, before any protocol processing. It reports whether the packet
// must be discarded as stale: stamped by a peer incarnation already
// superseded, or aimed at a previous incarnation of this machine. A
// zero stamp means the packet predates incarnation stamping (or was
// hand-built by a test) and is always accepted.
func (n *Netmsg) noteIncarnation(pkt *Packet) (stale bool) {
	n.lastHeard = n.Sub.K.Clock.Now()
	if n.declaredDead {
		n.declaredDead = false
		n.Recoveries++
		if r := n.Sub.K.Obs; r != nil {
			r.EmitArg(obs.PeerDeath, 0, "", "", n.NIC.Name, 1)
		}
	}
	if pkt.SrcInc > n.peerInc {
		// The peer rebooted: its new incarnation restarts sequence
		// numbering, so the dedup state of the dead incarnation must go
		// with it. Unacked packets stamped for the dead incarnation can
		// never be acknowledged — the new incarnation stale-drops them —
		// so they are declared lost now rather than after the full
		// retransmit backoff (cancel order does not matter: the event
		// heap breaks ties by sequence number, not layout).
		n.peerInc = pkt.SrcInc
		for s := range n.seen {
			delete(n.seen, s)
		}
		for seq, u := range n.unacked {
			if u.pkt.DstInc != 0 && u.pkt.DstInc < n.peerInc {
				n.Sub.K.Clock.Cancel(u.timer)
				delete(n.unacked, seq)
				n.Lost++
			}
		}
	}
	if pkt.SrcInc != 0 && pkt.SrcInc < n.peerInc {
		n.StaleDropped++
		return true
	}
	if pkt.DstInc != 0 && pkt.DstInc != n.Inc {
		n.StaleDropped++
		return true
	}
	return false
}

// track registers a data packet as awaiting acknowledgement and arms its
// retransmit timer.
func (n *Netmsg) track(pkt *Packet) {
	u := &unackedPkt{pkt: pkt}
	n.unacked[pkt.Seq] = u
	n.armRexmit(u)
}

// armRexmit schedules the next ack timeout for an unacknowledged packet,
// doubling the wait per attempt. The timer cannot transmit itself —
// clock events run in dispatcher context with no kernel Env to charge
// the tx cost against — so it queues the packet on the outbox and wakes
// the netmsg thread, which retransmits in thread context.
func (n *Netmsg) armRexmit(u *unackedPkt) {
	d := n.RexmitTimeout << uint(u.attempts)
	u.timer = n.Sub.K.Clock.After(d, "netmsg-rexmit", func() {
		if n.unacked[u.pkt.Seq] != u {
			return
		}
		u.attempts++
		if u.attempts > n.RexmitMax {
			delete(n.unacked, u.pkt.Seq)
			n.Lost++
			return
		}
		n.outbox = append(n.outbox, u.pkt)
		if n.Thread.State == core.StateWaiting {
			n.Sub.K.Setrun(n.Thread)
		}
		n.armRexmit(u)
	})
}

// takePacket runs in io_done context when an rx completion is processed:
// queue the packet and wake the netmsg thread. The completion carries the
// netmsg thread as its waiter, so in the continuation kernel the io_done
// thread's stack is handed straight here and loop runs by recognition.
func (n *Netmsg) takePacket(e *core.Env, pkt *Packet) {
	n.inbox = append(n.inbox, pkt)
	if len(n.inbox) > n.InboxHighWater {
		n.InboxHighWater = len(n.inbox)
	}
	if n.Thread.State == core.StateWaiting {
		n.Sub.K.Setrun(n.Thread)
	}
}

// loop is the netmsg thread's work loop, §2.2 style: deliver every queued
// packet, then block with this same continuation. Terminal.
func (n *Netmsg) loop(e *core.Env) {
	k := n.Sub.K
	for len(n.inbox) > 0 || len(n.outbox) > 0 {
		// Retransmissions and heartbeats queued by timers and the reboot
		// path go out first.
		for len(n.outbox) > 0 {
			pkt := n.outbox[0]
			n.outbox = n.outbox[1:]
			if pkt.Heartbeat {
				n.HeartbeatsTx++
				if r := n.Sub.K.Obs; r != nil {
					t := e.Cur()
					r.EmitArg(obs.Heartbeat, t.ID, t.Name, "", n.NIC.Name, int(n.Inc))
				}
			} else {
				n.Retransmits++
				if r := n.Sub.K.Obs; r != nil && pkt.Trace.Sampled() {
					// The backoff window up to this retransmission is
					// recovery overhead, annotated on the sender (the
					// shared packet is not touched).
					r.RecordSpan(obs.Span{
						Trace: pkt.Trace.Trace, ID: r.NextSpanID(pkt.Trace.Trace),
						Parent: pkt.Trace.Span, Name: "net.rexmit",
						Seg: obs.SegRetry, TID: e.Cur().ID, Detail: n.NIC.Name,
						Start: pkt.SentAt, End: n.Sub.K.Clock.Now(),
					})
				}
			}
			n.NIC.Transmit(e, pkt)
		}
		if len(n.inbox) == 0 {
			break
		}
		pkt := n.inbox[0]
		n.inbox = n.inbox[1:]
		e.Charge(netmsgDemuxCost)
		n.deliver(e, pkt)
	}
	t := e.Cur()
	t.State = core.StateWaiting
	t.WaitLabel = "netmsg: idle"
	k.Block(e, stats.BlockInternal, n.cont,
		func(e2 *core.Env) { n.loop(e2) }, 256, "netmsg-wait")
}

// deliver hands an arriving packet to its local port. When a receiver is
// already waiting with mach_msg_continue, the netmsg thread hands its
// stack straight over and recognition completes the receive inline — the
// §2.3 fast path driven by an internal thread instead of a local sender.
// May be terminal (handoff) or return (queued delivery).
func (n *Netmsg) deliver(e *core.Env, pkt *Packet) {
	k := n.Sub.K
	// Membership first: a stale packet — one that outlived a crash on
	// either end — is discarded before the protocol sees it, and in
	// particular is never acknowledged (an ack would quiet the sender's
	// retransmit timer for a request that was never delivered).
	if n.noteIncarnation(pkt) {
		return
	}
	if pkt.Ack {
		if u := n.unacked[pkt.Seq]; u != nil {
			k.Clock.Cancel(u.timer)
			delete(n.unacked, pkt.Seq)
		}
		n.AcksRx++
		return
	}
	if n.Reliable && pkt.Seq != 0 {
		// Acknowledge before anything else: the delivery below may end in
		// a terminal stack handoff to the receiver, and a duplicate must
		// be re-acked (its first ack may have been the packet that was
		// lost). The ack's DstInc is the arriving packet's incarnation, so
		// an ack delayed across the sender's reboot cannot quiet a fresh
		// transmission that happens to reuse the sequence number.
		n.AcksTx++
		n.NIC.Transmit(e, &Packet{Ack: true, Seq: pkt.Seq, Size: ackBytes,
			SrcInc: n.Inc, DstInc: pkt.SrcInc})
		if n.seen[pkt.Seq] {
			n.DupsDropped++
			return
		}
		n.seen[pkt.Seq] = true
	}
	if pkt.Heartbeat {
		n.HeartbeatsRx++
		return
	}
	port := n.exported[pkt.DstPort]
	if port == nil || port.Dead() {
		n.Dropped++
		return
	}
	var reply *ipc.Port
	if pkt.ReplyPort != "" {
		reply = n.ProxyFor(pkt.ReplyPort)
	}
	msg := n.X.NewMessage(pkt.OpID, pkt.Size, pkt.Body, reply)
	msg.Trace = pkt.Trace
	msg.Deadline = pkt.Deadline
	if r := k.Obs; r != nil && pkt.Trace.Sampled() {
		// The flight, recorded retroactively on arrival: transmit time
		// traveled in the framing, both clocks share the cluster
		// timeline, so the receiver knows the whole interval.
		r.RecordSpan(obs.Span{
			Trace: pkt.Trace.Trace, ID: r.NextSpanID(pkt.Trace.Trace),
			Parent: pkt.Trace.Span, Name: "net.wire",
			Seg: obs.SegWire, TID: e.Cur().ID, Detail: n.NIC.Name,
			Start: pkt.SentAt, End: k.Clock.Now(),
		})
	}
	n.Delivered++
	recv := n.X.PopWaiter(e, port)
	if recv != nil && recv.Cont != nil && !recv.HasStack() && k.CanHandoff() {
		n.X.DeliverTo(e, recv, msg)
		t := e.Cur()
		if len(n.inbox) > 0 || len(n.outbox) > 0 {
			t.State = core.StateRunnable
		} else {
			t.State = core.StateWaiting
			t.WaitLabel = "netmsg: idle"
		}
		k.ThreadHandoff(e, stats.BlockInternal, n.cont, recv)
		// Running as the receiver, in the netmsg thread's call context.
		if k.Recognize(e, n.X.ContMsgContinue) {
			m := n.X.TakeDelivered(e.Cur())
			if m == nil {
				panic("dev: netmsg delivery lost its message")
			}
			n.X.CompleteReceive(e, m)
		}
		k.CallContinuation(e, e.Cur().Cont)
	}
	n.X.Enqueue(e, port, msg)
	if recv != nil {
		k.Setrun(recv)
	}
}
