// NIC pair and the in-kernel netmsg forwarding thread: the device
// subsystem's network half. Two simulated machines are joined by
// connecting their NICs; a send to a proxy port on one machine becomes a
// packet on the wire, an rx interrupt on the other, a deferred completion
// through the io_done thread, and finally a local ipc delivery by the
// netmsg thread — Table 1's "internal threads" row earning its keep on a
// cross-machine RPC.
package dev

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/stats"
)

// DefaultWireLatency is the one-way packet latency between two machines
// (propagation plus serialization on a paper-era 10 Mbit Ethernet).
const DefaultWireLatency = machine.Duration(400 * 1000) // 400 µs

var (
	// nicTxCost is the transmit path: build the packet header, program
	// the DMA ring.
	nicTxCost = machine.Cost{Instrs: 180, Loads: 50, Stores: 60}
	// nicRxHandlerCost is the rx interrupt handler body: acknowledge the
	// controller, take the packet off the ring.
	nicRxHandlerCost = machine.Cost{Instrs: 110, Loads: 40, Stores: 20}
	// netmsgDemuxCost is the netmsg thread's per-packet protocol work:
	// checksum, port-name demultiplex, message reconstruction.
	netmsgDemuxCost = machine.Cost{Instrs: 150, Loads: 60, Stores: 30}
)

// Packet is one message on the wire between two machines.
type Packet struct {
	// DstPort names the destination port in the receiving machine's
	// netmsg registry.
	DstPort string
	// ReplyPort, when nonempty, names the port (in the sending machine's
	// registry) that the receiver's reply should be forwarded to.
	ReplyPort string

	OpID uint32
	Size int
	Body any
}

// NIC is a network interface. Transmit puts packets on the wire to the
// connected peer; arrival raises an rx interrupt on the peer's machine,
// whose deferred completion hands the packet to the peer's netmsg thread.
type NIC struct {
	Name string
	Sub  *Subsystem

	// Wire is the one-way packet latency to the peer.
	Wire machine.Duration

	peer *NIC

	// handler consumes received packets in io_done context; the netmsg
	// thread installs itself here.
	handler func(e *core.Env, pkt *Packet)

	// Counters.
	TxPackets  uint64
	RxPackets  uint64
	Interrupts uint64
}

// NewNIC registers a NIC on this machine.
func (s *Subsystem) NewNIC(name string) *NIC {
	return &NIC{Name: name, Sub: s, Wire: DefaultWireLatency}
}

// Connect joins two NICs (usually on different machines) with the given
// wire latency (DefaultWireLatency if 0).
func Connect(a, b *NIC, wire machine.Duration) {
	if wire == 0 {
		wire = DefaultWireLatency
	}
	a.peer, b.peer = b, a
	a.Wire, b.Wire = wire, wire
}

// Peer returns the connected NIC, nil when unconnected.
func (n *NIC) Peer() *NIC { return n.peer }

// Transmit puts a packet on the wire in the sender's kernel context.
// Arrival is scheduled on the peer machine's clock at an absolute time,
// so two machines with independent clocks agree on when the wire
// delivers. Non-terminal.
func (n *NIC) Transmit(e *core.Env, pkt *Packet) {
	if n.peer == nil {
		panic(fmt.Sprintf("dev: Transmit on unconnected NIC %q", n.Name))
	}
	e.Charge(nicTxCost.Plus(machine.CopyBytes(pkt.Size)))
	n.TxPackets++
	peer := n.peer
	arrival := n.Sub.K.Clock.Now() + n.Wire
	peer.Sub.K.Clock.Schedule(arrival, peer.Name+"-rx", func() { peer.receive(pkt) })
}

// receive is the packet arrival on the destination machine: an rx
// interrupt on the current processor's stack, with delivery deferred to
// the io_done thread (which will usually hand its stack straight to the
// netmsg thread).
func (n *NIC) receive(pkt *Packet) {
	s := n.Sub
	s.K.TakeInterrupt(n.Name+" rx", func(e *core.Env) {
		e.Charge(nicRxHandlerCost)
		s.noteHandlerWork(nicRxHandlerCost)
		n.Interrupts++
		n.RxPackets++
		h := n.handler
		if h == nil {
			return // no netmsg thread: drop
		}
		s.PostCompletion(&Request{
			Label: "nic-rx",
			Bytes: pkt.Size,
			Complete: func(e2 *core.Env) { h(e2, pkt) },
		})
	})
}

// Netmsg is the in-kernel network message server: a per-machine internal
// kernel thread that forwards local sends to remote ports over the NIC
// and delivers arriving packets into local ipc ports.
type Netmsg struct {
	Sub *Subsystem
	X   *ipc.IPC
	NIC *NIC

	// Thread is the forwarding thread; cont is its work-loop continuation
	// ("netmsg_continue").
	Thread *core.Thread
	cont   *core.Continuation

	// exported maps wire names to local ports that remote machines may
	// send to; exportedBy is the reverse map for reply-port auto-export.
	exported   map[string]*ipc.Port
	exportedBy map[*ipc.Port]string

	// proxies are local stand-ins for remote ports: sending to one
	// transmits a packet.
	proxies map[string]*ipc.Port

	inbox    []*Packet
	replySeq int

	// Counters.
	Forwarded      uint64 // local sends put on the wire
	Delivered      uint64 // arriving packets delivered to local ports
	Dropped        uint64 // arriving packets with no registered port
	InboxHighWater int
}

// NewNetmsg creates the netmsg thread for a machine and binds it to the
// NIC (created blocked; packet arrivals wake it through the io_done
// thread, most often by stack handoff).
func NewNetmsg(s *Subsystem, x *ipc.IPC, nic *NIC) *Netmsg {
	n := &Netmsg{
		Sub:        s,
		X:          x,
		NIC:        nic,
		exported:   make(map[string]*ipc.Port),
		exportedBy: make(map[*ipc.Port]string),
		proxies:    make(map[string]*ipc.Port),
	}
	n.cont = core.NewContinuation("netmsg_continue", n.loop)
	var pm func(*core.Env)
	if !s.K.UseContinuations {
		pm = n.loop
	}
	n.Thread = s.K.NewThread(core.ThreadSpec{
		Name:     "netmsg",
		SpaceID:  0,
		Internal: true,
		Priority: 29,
		Start:    n.cont,
		StartPM:  pm,
	})
	nic.handler = n.takePacket
	return n
}

// Cont returns the netmsg thread's work-loop continuation, for tests.
func (n *Netmsg) Cont() *core.Continuation { return n.cont }

// Export registers a local port under a wire name so remote machines can
// send to it.
func (n *Netmsg) Export(name string, p *ipc.Port) {
	n.exported[name] = p
	n.exportedBy[p] = name
}

// exportName returns (registering if needed) the wire name of a local
// port, used to route replies back across the wire.
func (n *Netmsg) exportName(p *ipc.Port) string {
	if name, ok := n.exportedBy[p]; ok {
		return name
	}
	n.replySeq++
	name := fmt.Sprintf("reply-%d", n.replySeq)
	n.Export(name, p)
	return name
}

// ProxyFor returns a local port standing in for the named port on the
// remote machine. Sending to it runs the netmsg forward path in the
// sender's kernel context: the message becomes a packet, and the sender
// proceeds directly into its receive phase (no local receiver, no queue).
func (n *Netmsg) ProxyFor(remote string) *ipc.Port {
	p := n.proxies[remote]
	if p == nil {
		p = n.X.NewPort("proxy:" + remote)
		p.KernelSink = func(e *core.Env, msg *ipc.Message, opts *ipc.MsgOptions) {
			n.forwardSink(e, remote, msg, opts)
		}
		n.proxies[remote] = p
	}
	return p
}

// forwardSink processes a send to a proxy port in the sender's kernel
// context: transmit the packet, then continue the sender's mach_msg.
// Terminal.
func (n *Netmsg) forwardSink(e *core.Env, remote string, msg *ipc.Message, opts *ipc.MsgOptions) {
	replyName := ""
	if msg.Reply != nil {
		replyName = n.exportName(msg.Reply)
	}
	n.Forwarded++
	n.NIC.Transmit(e, &Packet{
		DstPort:   remote,
		ReplyPort: replyName,
		OpID:      msg.OpID,
		Size:      msg.Size,
		Body:      msg.Body,
	})
	if opts.ReceiveFrom != nil {
		n.X.Receive(e, opts.ReceiveFrom, opts.MaxSize)
	}
	n.Sub.K.ThreadSyscallReturn(e, ipc.MsgSuccess)
}

// takePacket runs in io_done context when an rx completion is processed:
// queue the packet and wake the netmsg thread. The completion carries the
// netmsg thread as its waiter, so in the continuation kernel the io_done
// thread's stack is handed straight here and loop runs by recognition.
func (n *Netmsg) takePacket(e *core.Env, pkt *Packet) {
	n.inbox = append(n.inbox, pkt)
	if len(n.inbox) > n.InboxHighWater {
		n.InboxHighWater = len(n.inbox)
	}
	if n.Thread.State == core.StateWaiting {
		n.Sub.K.Setrun(n.Thread)
	}
}

// loop is the netmsg thread's work loop, §2.2 style: deliver every queued
// packet, then block with this same continuation. Terminal.
func (n *Netmsg) loop(e *core.Env) {
	k := n.Sub.K
	for len(n.inbox) > 0 {
		pkt := n.inbox[0]
		n.inbox = n.inbox[1:]
		e.Charge(netmsgDemuxCost)
		n.deliver(e, pkt)
	}
	t := e.Cur()
	t.State = core.StateWaiting
	t.WaitLabel = "netmsg: idle"
	k.Block(e, stats.BlockInternal, n.cont,
		func(e2 *core.Env) { n.loop(e2) }, 256, "netmsg-wait")
}

// deliver hands an arriving packet to its local port. When a receiver is
// already waiting with mach_msg_continue, the netmsg thread hands its
// stack straight over and recognition completes the receive inline — the
// §2.3 fast path driven by an internal thread instead of a local sender.
// May be terminal (handoff) or return (queued delivery).
func (n *Netmsg) deliver(e *core.Env, pkt *Packet) {
	k := n.Sub.K
	port := n.exported[pkt.DstPort]
	if port == nil || port.Dead() {
		n.Dropped++
		return
	}
	var reply *ipc.Port
	if pkt.ReplyPort != "" {
		reply = n.ProxyFor(pkt.ReplyPort)
	}
	msg := n.X.NewMessage(pkt.OpID, pkt.Size, pkt.Body, reply)
	n.Delivered++
	recv := n.X.PopWaiter(e, port)
	if recv != nil && recv.Cont != nil && !recv.HasStack() && k.CanHandoff() {
		n.X.DeliverTo(e, recv, msg)
		t := e.Cur()
		if len(n.inbox) > 0 {
			t.State = core.StateRunnable
		} else {
			t.State = core.StateWaiting
			t.WaitLabel = "netmsg: idle"
		}
		k.ThreadHandoff(e, stats.BlockInternal, n.cont, recv)
		// Running as the receiver, in the netmsg thread's call context.
		if k.Recognize(e, n.X.ContMsgContinue) {
			m := n.X.TakeDelivered(e.Cur())
			if m == nil {
				panic("dev: netmsg delivery lost its message")
			}
			n.X.CompleteReceive(e, m)
		}
		k.CallContinuation(e, e.Cur().Cont)
	}
	n.X.Enqueue(e, port, msg)
	if recv != nil {
		k.Setrun(recv)
	}
}
