package dev

// This file is the fault-injection and recovery half of the device
// subsystem: injected request failures and latency spikes (from a
// fault.Plan), the I/O timeout arm on device_read/device_write, bounded
// retry with exponential backoff resuming through the
// device_read_continue family, thread_abort support, and the dev
// contribution to the kernel invariant sweep.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Device I/O return codes (D_SUCCESS is the byte count; errors are
// distinct small codes after Mach's device interface).
const (
	// DevIOError is D_IO_ERROR: the device reported a hard failure.
	DevIOError uint64 = 2500
	// DevTimedOut means the request's I/O timeout expired before the
	// completion interrupt arrived.
	DevTimedOut uint64 = 2530
	// DevAborted means the blocked thread was cancelled by thread_abort
	// while waiting on the request.
	DevAborted uint64 = 2531
)

// SetFaultPlan installs a fault plan; device_read/device_write requests
// consult it for injected failures and latency spikes. Nil uninstalls.
func (s *Subsystem) SetFaultPlan(p *fault.Plan) { s.Fault = p }

// submitIO builds and submits a user I/O request for the current thread,
// arming the I/O timeout when one is configured. The caller then blocks
// with expect. Scratch layout for the retry path: word 0 = bytes,
// word 1 = attempt count, ref 2 = the device.
func (s *Subsystem) submitIO(t *core.Thread, d *Device, label string, bytes int,
	expect *core.Continuation, inline func(e *core.Env)) {
	r := &Request{
		Label:   label,
		Bytes:   bytes,
		CanFail: true,
		Waiter:  t,
		Expect:  expect,
		Inline:  inline,
	}
	if s.IoTimeout > 0 {
		r.timeout = s.K.Clock.After(s.IoTimeout, d.Name+"-io-timeout", func() {
			w := r.Waiter
			if w == nil || w.State != core.StateWaiting {
				return
			}
			// Detach the waiter; if the transfer lands later the io_done
			// thread discards the orphaned completion.
			r.Waiter = nil
			s.IoTimeouts++
			s.ioErr[w.ID] = DevTimedOut
			s.K.Setrun(w)
		})
	}
	d.Submit(r)
}

// retryOrFail handles a failed or timed-out device_read/device_write in
// the waiter's own context: return the error once the retry budget is
// spent, otherwise park for an exponential backoff and resubmit the
// request when the timer fires, re-blocking with the same device
// continuation. Terminal.
func (s *Subsystem) retryOrFail(e *core.Env, code uint64, cont *core.Continuation) {
	t := e.Cur()
	d, _ := t.Scratch.Ref(2).(*Device)
	attempt := int(t.Scratch.Word(1))
	if code == DevAborted || d == nil || attempt >= s.IoMaxRetries {
		s.K.ThreadSyscallReturn(e, code)
	}
	attempt++
	t.Scratch.PutWord(1, uint32(attempt))
	s.IoRetries++
	backoff := s.IoRetryBackoff << uint(attempt-1)
	label := "read"
	resume := s.deviceReadContinue
	if cont == s.ContDeviceWrite {
		label = "write"
		resume = s.deviceWriteContinue
	}
	bytes := int(t.Scratch.Word(0))
	ev := s.K.Clock.After(backoff, d.Name+"-io-retry", func() {
		delete(s.pendingRetry, t.ID)
		s.submitIO(t, d, label+"-retry", bytes, cont, resume)
	})
	s.pendingRetry[t.ID] = ev
	t.State = core.StateWaiting
	t.WaitLabel = "device retry: " + d.Name
	s.K.Block(e, stats.BlockDeviceIO, cont, resume, 192, "device-retry")
}

// AbortWaiter cancels t's pending device operation — whether the request
// is queued, in flight, awaiting io_done processing, or parked on a
// retry backoff — cancelling any armed callouts, and returns DevAborted.
// ok=false when t is not blocked in the device layer. The thread itself
// is untouched; kern's thread_abort resumes it.
func (s *Subsystem) AbortWaiter(t *core.Thread) (code uint64, ok bool) {
	if ev := s.pendingRetry[t.ID]; ev != nil {
		s.K.Clock.Cancel(ev)
		delete(s.pendingRetry, t.ID)
		return DevAborted, true
	}
	detach := func(r *Request) bool {
		if r == nil || r.Waiter != t {
			return false
		}
		r.Waiter = nil
		if r.timeout != nil {
			s.K.Clock.Cancel(r.timeout)
		}
		return true
	}
	for _, d := range s.devices {
		if detach(d.inflight) {
			return DevAborted, true
		}
		for _, r := range d.queue {
			if detach(r) {
				return DevAborted, true
			}
		}
	}
	for _, r := range s.completions {
		if detach(r) {
			return DevAborted, true
		}
	}
	return 0, false
}

// ReleaseThread drops the device-layer state still charged to a thread
// that will never run again: a posted-but-unconsumed I/O error and any
// armed retry backoff. Requests naming the thread as waiter are
// detached so a completion landing after the reap is discarded as an
// orphan. The kern reaper calls this (with ipc.ReleaseThread) on every
// reap and asserts the census is clean afterwards.
func (s *Subsystem) ReleaseThread(t *core.Thread) {
	delete(s.ioErr, t.ID)
	if ev := s.pendingRetry[t.ID]; ev != nil {
		s.K.Clock.Cancel(ev)
		delete(s.pendingRetry, t.ID)
	}
	detach := func(r *Request) {
		if r == nil || r.Waiter != t {
			return
		}
		r.Waiter = nil
		if r.timeout != nil {
			s.K.Clock.Cancel(r.timeout)
		}
	}
	for _, d := range s.devices {
		detach(d.inflight)
		for _, r := range d.queue {
			detach(r)
		}
	}
	for _, r := range s.completions {
		detach(r)
	}
}

// Residue counts device-layer state still attached to a thread — zero
// after ReleaseThread.
func (s *Subsystem) Residue(t *core.Thread) int {
	n := 0
	if _, ok := s.ioErr[t.ID]; ok {
		n++
	}
	if s.pendingRetry[t.ID] != nil {
		n++
	}
	count := func(r *Request) {
		if r != nil && r.Waiter == t {
			n++
		}
	}
	for _, d := range s.devices {
		count(d.inflight)
		for _, r := range d.queue {
			count(r)
		}
	}
	for _, r := range s.completions {
		count(r)
	}
	return n
}

// PendingIO counts requests accepted but not yet resolved — queued, in
// service, or completed but not yet processed by the io_done thread.
// The crash panic record captures it.
func (s *Subsystem) PendingIO() int {
	n := len(s.completions)
	for _, d := range s.devices {
		n += len(d.queue)
		if d.inflight != nil {
			n++
		}
	}
	return n
}

// checkInvariants is the dev contribution to the kernel invariant sweep
// (registered by NewSubsystem, run by core.Kernel.Validate): every
// request waiter is actually waiting, and no detached request still
// holds an armed I/O timeout.
func (s *Subsystem) checkInvariants() error {
	check := func(r *Request, where string) error {
		if r.Waiter != nil && r.Waiter.State != core.StateWaiting {
			return fmt.Errorf("dev: %s request %q waiter %v is %v, not waiting",
				where, r.Label, r.Waiter, r.Waiter.State)
		}
		if r.Waiter == nil && r.timeout.Pending() {
			return fmt.Errorf("dev: detached %s request %q holds a live timeout", where, r.Label)
		}
		return nil
	}
	for _, d := range s.devices {
		if d.inflight != nil {
			if err := check(d.inflight, d.Name+" inflight"); err != nil {
				return err
			}
		}
		for _, r := range d.queue {
			if err := check(r, d.Name+" queue"); err != nil {
				return err
			}
		}
	}
	for _, r := range s.completions {
		if err := check(r, "completion"); err != nil {
			return err
		}
	}
	for id, ev := range s.pendingRetry {
		if !ev.Pending() {
			return fmt.Errorf("dev: retry entry for thread %d holds a dead callout", id)
		}
	}
	return nil
}

// injectCompletion applies the fault plan to a completing request in
// interrupt context (the device "reporting" a transfer error).
func (s *Subsystem) injectCompletion(d *Device, r *Request) {
	if r.CanFail && r.Err == 0 && s.Fault.DeviceFail(d.Name) {
		r.Err = DevIOError
		s.IoFailures++
		s.emitFault(r.Waiter, d.Name+" fail")
	}
}

// emitFault records a fault-plan firing against the waiting thread (or
// anonymously when the fault hits between waiters).
func (s *Subsystem) emitFault(t *core.Thread, detail string) {
	rec := s.K.Obs
	if rec == nil {
		return
	}
	tid, name := 0, ""
	if t != nil {
		tid, name = t.ID, t.Name
	}
	rec.Emit(obs.FaultInject, tid, name, "", detail)
}

// injectLatency applies the fault plan's latency spike to a request
// entering service.
func (s *Subsystem) injectLatency(d *Device, r *Request) machine.Duration {
	if !r.CanFail {
		return 0
	}
	extra := s.Fault.DeviceDelay(d.Name)
	if extra > 0 {
		s.emitFault(r.Waiter, fmt.Sprintf("%s slow +%dus", d.Name, uint64(extra)/1000))
	}
	return extra
}
