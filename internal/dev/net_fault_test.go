package dev_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/kern"
)

// bootLossyPair boots two connected machines with the reliability
// protocol on and the given fault plan injecting on a's NIC (the b→a ack
// direction stays clean, isolating the data-path behaviour under test).
func bootLossyPair(t *testing.T, plan *fault.Plan) (a, b *kern.System, cluster *kern.Cluster) {
	t.Helper()
	a, b = bootMK40(t), bootMK40(t)
	a.K.DebugChecks = true
	b.K.DebugChecks = true
	dev.Connect(a.Net.NIC, b.Net.NIC, 0)
	a.Net.NIC.Fault = plan
	a.Net.EnableReliable()
	b.Net.EnableReliable()
	return a, b, kern.NewCluster(a, b)
}

// startSink registers an exported port on sys and a thread receiving on
// it forever; returns the slice the received bodies accumulate into.
func startSink(sys *kern.System, wireName string) *[]int {
	port := sys.IPC.NewPort(wireName + "-local")
	sys.Net.Export(wireName, port)
	got := new([]int)
	task := sys.NewTask("sink")
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := sys.IPC.Received(th); m != nil {
			*got = append(*got, m.Body.(int))
		}
		return core.Syscall("recv", func(e *core.Env) {
			sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		})
	})
	sys.Start(task.NewThread("rcv", prog, 20))
	return got
}

// startSpray sends n one-way messages from sys to the named remote port.
func startSpray(sys *kern.System, remote string, n int) {
	proxy := sys.Net.ProxyFor(remote)
	task := sys.NewTask("spray")
	sent := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent >= n {
			return core.Exit()
		}
		sent++
		seq := sent
		return core.Syscall("net-send", func(e *core.Env) {
			m := sys.IPC.NewMessage(1, 256, seq, nil)
			sys.IPC.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: proxy})
		})
	})
	sys.Start(task.NewThread("tx", prog, 10))
}

// checkExactlyOnce asserts every message 1..n arrived exactly once.
func checkExactlyOnce(t *testing.T, got []int, n int) {
	t.Helper()
	seen := make(map[int]int)
	for _, v := range got {
		seen[v]++
	}
	for i := 1; i <= n; i++ {
		if seen[i] != 1 {
			t.Fatalf("message %d delivered %d times (got %d total)", i, seen[i], len(got))
		}
	}
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
}

func TestReliableDeliveryUnderPacketLoss(t *testing.T) {
	// 30%% injected drop on the data path: every message still arrives
	// exactly once, carried by retransmissions.
	const n = 30
	a, b, cluster := bootLossyPair(t, fault.New(42, fault.Spec{DropProb: 0.3}))
	got := startSink(b, "svc")
	startSpray(a, "svc", n)
	for cluster.Step(false) {
	}
	checkExactlyOnce(t, *got, n)
	if a.Net.NIC.Dropped == 0 {
		t.Fatal("fault plan injected no drops — test is vacuous")
	}
	if a.Net.Retransmits == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	if a.Net.UnackedLen() != 0 {
		t.Fatalf("%d packets still unacked at quiescence", a.Net.UnackedLen())
	}
	if a.Net.Lost != 0 {
		t.Fatalf("%d packets declared lost under recoverable loss", a.Net.Lost)
	}
	if a.Net.AcksRx == 0 || b.Net.AcksTx == 0 {
		t.Fatalf("ack flow broken: rx=%d tx=%d", a.Net.AcksRx, b.Net.AcksTx)
	}
	a.K.MustValidate()
	b.K.MustValidate()
}

func TestReliableDeliveryDropsDuplicates(t *testing.T) {
	// Every data packet is duplicated on the wire: the receiver delivers
	// each message once and suppresses the copies.
	const n = 10
	a, b, cluster := bootLossyPair(t, fault.New(5, fault.Spec{DupProb: 1}))
	got := startSink(b, "svc")
	startSpray(a, "svc", n)
	for cluster.Step(false) {
	}
	checkExactlyOnce(t, *got, n)
	if b.Net.DupsDropped == 0 {
		t.Fatal("no duplicates suppressed despite 100%% duplication")
	}
	if a.Net.UnackedLen() != 0 {
		t.Fatalf("%d packets still unacked", a.Net.UnackedLen())
	}
}

func TestReliableDeliverySurvivesReorder(t *testing.T) {
	// Random extra wire delay lets later packets overtake earlier ones;
	// delivery is still exactly-once (the protocol does not promise
	// ordering, only completeness).
	const n = 20
	a, b, cluster := bootLossyPair(t, fault.New(11, fault.Spec{
		DelayProb:  0.5,
		DelayExtra: dev.DefaultWireLatency * 3,
	}))
	got := startSink(b, "svc")
	startSpray(a, "svc", n)
	for cluster.Step(false) {
	}
	checkExactlyOnce(t, *got, n)
	if a.Net.NIC.Delayed == 0 {
		t.Fatal("fault plan injected no delays — test is vacuous")
	}
}

func TestUnreliableTrafficStillLosesPackets(t *testing.T) {
	// Without the protocol the same loss rate silently eats messages —
	// the regression guard that Reliable is doing the work.
	const n = 30
	a, b := bootMK40(t), bootMK40(t)
	dev.Connect(a.Net.NIC, b.Net.NIC, 0)
	a.Net.NIC.Fault = fault.New(42, fault.Spec{DropProb: 0.3})
	cluster := kern.NewCluster(a, b)
	got := startSink(b, "svc")
	startSpray(a, "svc", n)
	for cluster.Step(false) {
	}
	if len(*got) >= n {
		t.Fatalf("delivered %d of %d despite 30%% drop and no retransmission", len(*got), n)
	}
	if a.Net.Retransmits != 0 {
		t.Fatal("best-effort path retransmitted")
	}
}

func TestRetransmitGivesUpAfterMax(t *testing.T) {
	// Total blackout: every data packet is dropped, so after RexmitMax
	// doubling backoffs each packet is declared lost and the sender's
	// tracking table drains — no callout leaks, no unbounded retries.
	const n = 3
	a, b, cluster := bootLossyPair(t, fault.New(1, fault.Spec{DropProb: 1}))
	got := startSink(b, "svc")
	startSpray(a, "svc", n)
	for cluster.Step(false) {
	}
	if len(*got) != 0 {
		t.Fatalf("delivered %d messages through a total blackout", len(*got))
	}
	if a.Net.Lost != n {
		t.Fatalf("lost = %d, want %d", a.Net.Lost, n)
	}
	if a.Net.UnackedLen() != 0 {
		t.Fatalf("%d packets still tracked after giving up", a.Net.UnackedLen())
	}
	if got := a.K.Clock.Pending(); got != 0 {
		t.Fatalf("%d retransmit timers leaked", got)
	}
	wantSends := uint64(n) * uint64(1+a.Net.RexmitMax)
	if a.Net.NIC.TxPackets != wantSends {
		t.Fatalf("tx packets = %d, want %d (1 + RexmitMax per message)",
			a.Net.NIC.TxPackets, wantSends)
	}
}
