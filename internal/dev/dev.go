// Package dev is the machine-independent device subsystem: device ports
// with open/read/write, per-device request queues, interrupt delivery on
// the current processor's stack, and the internal io_done kernel thread
// that runs deferred completion work.
//
// The paper's interrupt model motivates all of it. A device interrupt is
// taken in interrupt context on whatever stack the processor is using
// (core.TakeInterrupt asserts that no stack is ever allocated there); the
// handler only acknowledges the device, starts the next queued request,
// and posts a completion record. The heavyweight half of every completion
// runs later in the io_done thread, which is written in the §2.2
// tail-recursive continuation style. A thread blocked in device_read or
// device_write holds only its DeviceReadContinue/DeviceWriteContinue
// continuation — eligible for stack discard exactly like mach_msg — and
// when the io_done thread resumes it, it hands its own stack over and
// recognizes the device continuation, finishing the request inline
// (Mach 3.0's device_read → io_done pairing, the canonical continuation
// user alongside mach_msg_continue).
package dev

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Path costs, machine-independent work beyond the modeled interrupt
// entry/exit:
var (
	// devCallCost is the device_read/device_write syscall body: validate
	// arguments, look up the device port, build the io request.
	devCallCost = machine.Cost{Instrs: 70, Loads: 25, Stores: 12}
	// devOpenCost is the device_open name lookup.
	devOpenCost = machine.Cost{Instrs: 50, Loads: 18, Stores: 4}
	// intrHandlerCost is the interrupt handler body: acknowledge the
	// device, read its status, post the completion, start the next
	// request.
	intrHandlerCost = machine.Cost{Instrs: 90, Loads: 25, Stores: 18}
	// ioDoneCost is the io_done thread's per-completion bookkeeping.
	ioDoneCost = machine.Cost{Instrs: 60, Loads: 20, Stores: 12}
)

// Request is one queued device operation. The device services requests
// FIFO, one at a time; completion is split between the interrupt handler
// (cheap, on the current stack) and the io_done thread (deferred).
type Request struct {
	// Label names the operation for traces ("read", "page-in", ...).
	Label string
	// Bytes is the transfer size.
	Bytes int
	// Latency is the service time once the device starts the request;
	// zero means the device's default ServiceTime.
	Latency machine.Duration

	// Complete, when non-nil, runs in the io_done thread's context when
	// the completion is processed. It must not block or transfer control.
	Complete func(e *core.Env)

	// Waiter, when non-nil, is a thread blocked on this request. If it is
	// continuation-blocked with Expect, the io_done thread hands its stack
	// over and, on recognition, runs Inline (terminal) as the waiter;
	// otherwise the waiter is simply made runnable.
	Waiter *core.Thread
	Expect *core.Continuation
	Inline func(e *core.Env)

	// Err is the completion status: zero for success, or a Dev* code. The
	// io_done thread posts it to the waiter before resuming it.
	Err uint64

	// CanFail marks requests eligible for fault injection: user
	// device_read/device_write calls, whose callers see error codes and
	// retry. Kernel-internal requests (vm page-in/page-out) leave it
	// false — injecting there would be silently treated as success.
	CanFail bool

	// timeout is the armed I/O timeout (user I/O only); the completion
	// interrupt cancels it.
	timeout *machine.Event
}

// Device is one device: a request queue in front of a single server with
// a fixed service time, fed by Submit and drained by interrupts.
type Device struct {
	Name string
	Sub  *Subsystem

	// ServiceTime is the default per-request latency.
	ServiceTime machine.Duration

	// Port is the device port handed out by device_open (set once the IPC
	// substrate is attached).
	Port *ipc.Port

	queue    []*Request
	inflight *Request

	// Counters.
	Requests       uint64
	Interrupts     uint64
	QueueHighWater int
}

// QueueDepth reports the requests queued or in service right now.
func (d *Device) QueueDepth() int {
	n := len(d.queue)
	if d.inflight != nil {
		n++
	}
	return n
}

// Submit enqueues a request and starts the device if it is idle. Callable
// from thread context or dispatcher/interrupt context.
func (d *Device) Submit(r *Request) {
	if r.Latency == 0 {
		r.Latency = d.ServiceTime
	}
	d.Requests++
	d.queue = append(d.queue, r)
	if depth := d.QueueDepth(); depth > d.QueueHighWater {
		d.QueueHighWater = depth
	}
	if d.inflight == nil {
		d.start()
	}
}

// start begins service on the next queued request; the completion arrives
// as a clock event that takes an interrupt. The fault plan may stretch
// the service time (a latency spike).
func (d *Device) start() {
	r := d.queue[0]
	d.queue = d.queue[1:]
	d.inflight = r
	latency := r.Latency + d.Sub.injectLatency(d, r)
	d.Sub.K.Clock.After(latency, d.Name+"-io", func() { d.complete(r) })
}

// complete is the device raising its interrupt: the handler runs in
// interrupt context on the current processor's stack, acknowledges the
// transfer, restarts the device, and defers the rest to the io_done
// thread. No stack is allocated anywhere on this path.
func (d *Device) complete(r *Request) {
	s := d.Sub
	s.K.TakeInterrupt(d.Name+" "+r.Label, func(e *core.Env) {
		e.Charge(intrHandlerCost)
		s.noteHandlerWork(intrHandlerCost)
		d.Interrupts++
		d.inflight = nil
		// Completion beat the I/O timeout: disarm it here, in the
		// interrupt handler, so a timeout scheduled for this same tick
		// (but sequenced later) is cleanly cancelled.
		if r.timeout != nil {
			s.K.Clock.Cancel(r.timeout)
		}
		s.injectCompletion(d, r)
		if len(d.queue) > 0 {
			d.start()
		}
		s.PostCompletion(r)
	})
}

// Subsystem is the per-machine device layer: the device registry, the
// completion queue, and the io_done internal kernel thread.
type Subsystem struct {
	K *core.Kernel

	// IoThread runs deferred completions; ContIoDone is its work-loop
	// continuation ("io_done_continue").
	IoThread   *core.Thread
	ContIoDone *core.Continuation

	// ContDeviceRead and ContDeviceWrite are what device_read/device_write
	// callers block with; the io_done thread recognizes them.
	ContDeviceRead  *core.Continuation
	ContDeviceWrite *core.Continuation

	devices []*Device
	byName  map[string]*Device
	nics    []*NIC

	// dirtyNICs lists, in first-buffer order, the NICs holding deferred
	// deliveries from the current cluster round; the barrier flush drains
	// exactly these instead of scanning every NIC of every machine. Each
	// NIC appends itself (at most once per round, via its dirty mark) from
	// its own machine's context, so the list needs no locking under the
	// parallel driver.
	dirtyNICs []*NIC

	completions []*Request

	// HandlerCost accumulates all work charged in interrupt context
	// (entry + handler body + exit), the "handler cycles" counter.
	HandlerCost machine.Cost

	// IoDoneHandoffs counts completions delivered by handing the io_done
	// thread's stack straight to the waiter.
	IoDoneHandoffs uint64

	// Reads and Writes count device_read/device_write calls.
	Reads  uint64
	Writes uint64

	// Fault is the installed fault plan (nil injects nothing).
	Fault *fault.Plan

	// IoTimeout, when nonzero, bounds each user I/O request from submit
	// to completion; expiry returns DevTimedOut (after retries).
	// IoMaxRetries and IoRetryBackoff shape the bounded retry: attempt n
	// parks for IoRetryBackoff << (n-1) before resubmitting.
	IoTimeout      machine.Duration
	IoMaxRetries   int
	IoRetryBackoff machine.Duration

	// ioErr posts a request's completion error to its waiter, keyed by
	// thread ID, consumed by the device continuations.
	ioErr map[int]uint64

	// pendingRetry tracks each thread's armed backoff callout so abort
	// can cancel it.
	pendingRetry map[int]*machine.Event

	// Recovery counters.
	IoTimeouts uint64 // I/O timeouts expired
	IoRetries  uint64 // requests resubmitted after a failure or timeout
	IoFailures uint64 // injected request failures
}

// NewSubsystem creates the device layer and its io_done thread (created
// blocked; it wakes when the first completion is posted).
func NewSubsystem(k *core.Kernel) *Subsystem {
	s := &Subsystem{
		K:              k,
		byName:         make(map[string]*Device),
		ioErr:          make(map[int]uint64),
		pendingRetry:   make(map[int]*machine.Event),
		IoMaxRetries:   3,
		IoRetryBackoff: machine.Duration(500 * 1000), // 500 µs
	}
	k.Invariants = append(k.Invariants, s.checkInvariants)
	s.ContIoDone = core.NewContinuation("io_done_continue", s.ioLoop)
	s.ContDeviceRead = core.NewContinuation("device_read_continue", s.deviceReadContinue)
	s.ContDeviceWrite = core.NewContinuation("device_write_continue", s.deviceWriteContinue)
	var pm func(*core.Env)
	if !k.UseContinuations {
		pm = s.ioLoop
	}
	s.IoThread = k.NewThread(core.ThreadSpec{
		Name:     "io-done",
		SpaceID:  0,
		Internal: true,
		Priority: 29,
		Start:    s.ContIoDone,
		StartPM:  pm,
	})
	return s
}

// NewDevice registers a device with a default service time.
func (s *Subsystem) NewDevice(name string, service machine.Duration) *Device {
	if s.byName[name] != nil {
		panic(fmt.Sprintf("dev: duplicate device %q", name))
	}
	d := &Device{Name: name, Sub: s, ServiceTime: service}
	s.devices = append(s.devices, d)
	s.byName[name] = d
	return d
}

// Devices returns the registered devices in creation order.
func (s *Subsystem) Devices() []*Device { return s.devices }

// AttachPorts creates each device's device port; called once the IPC
// substrate exists.
func (s *Subsystem) AttachPorts(x *ipc.IPC) {
	for _, d := range s.devices {
		if d.Port == nil {
			d.Port = x.NewPort("dev/" + d.Name)
		}
	}
}

// Open is device_open: look up a device by name in the current thread's
// kernel context and return it (its Port is the device port the caller
// holds). Non-terminal.
func (s *Subsystem) Open(e *core.Env, name string) *Device {
	e.Charge(devOpenCost)
	d := s.byName[name]
	if d == nil {
		panic(fmt.Sprintf("dev: open of unknown device %q", name))
	}
	return d
}

// noteHandlerWork accumulates interrupt-context work, including the
// modeled entry/exit register handling.
func (s *Subsystem) noteHandlerWork(body machine.Cost) {
	s.HandlerCost.Add(s.K.Costs.InterruptEntry)
	s.HandlerCost.Add(body)
	s.HandlerCost.Add(s.K.Costs.InterruptExit)
}

// PostCompletion queues a finished request for the io_done thread and
// wakes it. Called from interrupt context.
func (s *Subsystem) PostCompletion(r *Request) {
	s.completions = append(s.completions, r)
	if s.IoThread.State == core.StateWaiting {
		s.K.Setrun(s.IoThread)
	}
}

// ioLoop is the io_done thread's work loop, §2.2 style: drain the
// completion queue, then block with this same continuation. When a
// completion's waiter is continuation-blocked the loop ends early in a
// stack handoff — the io_done thread's stack becomes the waiter's, and
// recognition of the device continuation finishes the request inline.
// Terminal.
func (s *Subsystem) ioLoop(e *core.Env) {
	k := s.K
	for len(s.completions) > 0 {
		r := s.completions[0]
		s.completions = s.completions[1:]
		e.Charge(ioDoneCost)
		if r.Complete != nil {
			r.Complete(e)
		}
		w := r.Waiter
		if w == nil {
			// Orphaned completion: the waiter timed out or was aborted
			// while the transfer was in flight.
			continue
		}
		if r.Err != 0 {
			// Post the failure; the waiter's device continuation sees it
			// and retries or returns the error.
			s.ioErr[w.ID] = r.Err
		}
		if k.CanHandoff() && r.Expect != nil && w.BlockedWith(r.Expect) && !w.HasStack() {
			t := e.Cur()
			if len(s.completions) > 0 {
				// More completions pending: stay runnable and continue the
				// loop when rescheduled.
				t.State = core.StateRunnable
			} else {
				t.State = core.StateWaiting
				t.WaitLabel = "io_done: idle"
			}
			s.IoDoneHandoffs++
			k.ThreadHandoff(e, stats.BlockInternal, s.ContIoDone, w)
			// Running as the waiter, in the io_done thread's call context.
			if k.Recognize(e, r.Expect) {
				k.Stats.IoDoneRecognitions++
				r.Inline(e)
				panic("dev: io_done inline completion returned")
			}
			k.CallContinuation(e, e.Cur().Cont)
		}
		if w.State == core.StateWaiting {
			k.Setrun(w)
		}
	}
	t := e.Cur()
	t.State = core.StateWaiting
	t.WaitLabel = "io_done: idle"
	k.Block(e, stats.BlockInternal, s.ContIoDone,
		func(e2 *core.Env) { s.ioLoop(e2) }, 256, "io-done-wait")
}

// DeviceRead is the device_read syscall body: submit a read request and
// block with DeviceReadContinue until the transfer interrupt and the
// io_done thread complete it. The continuation copies the data out and
// returns the byte count. Terminal.
func (s *Subsystem) DeviceRead(e *core.Env, d *Device, bytes int) {
	s.Reads++
	e.Charge(devCallCost)
	t := e.Cur()
	t.Scratch.PutWord(0, uint32(bytes))
	t.Scratch.PutWord(1, 0) // attempt count, for the retry path
	t.Scratch.PutRef(2, d)
	s.submitIO(t, d, "read", bytes, s.ContDeviceRead,
		func(e2 *core.Env) { s.deviceReadContinue(e2) })
	t.State = core.StateWaiting
	t.WaitLabel = "device_read: " + d.Name
	s.K.Block(e, stats.BlockDeviceIO, s.ContDeviceRead,
		func(e2 *core.Env) { s.deviceReadContinue(e2) }, 192, "device-read")
}

// deviceReadContinue resumes a device_read once its data is in: copy the
// buffer out to the caller and return the count. On a posted failure or
// timeout the retry path takes over instead. Terminal.
func (s *Subsystem) deviceReadContinue(e *core.Env) {
	t := e.Cur()
	if code, ok := s.ioErr[t.ID]; ok {
		delete(s.ioErr, t.ID)
		s.retryOrFail(e, code, s.ContDeviceRead)
	}
	n := int(t.Scratch.Word(0))
	e.Charge(machine.CopyBytes(n))
	s.K.ThreadSyscallReturn(e, uint64(n))
}

// DeviceWrite is the device_write syscall body: copy the caller's buffer
// in, submit the write, and block with DeviceWriteContinue until the
// device has taken it. Terminal.
func (s *Subsystem) DeviceWrite(e *core.Env, d *Device, bytes int) {
	s.Writes++
	e.Charge(devCallCost.Plus(machine.CopyBytes(bytes)))
	t := e.Cur()
	t.Scratch.PutWord(0, uint32(bytes))
	t.Scratch.PutWord(1, 0) // attempt count, for the retry path
	t.Scratch.PutRef(2, d)
	s.submitIO(t, d, "write", bytes, s.ContDeviceWrite,
		func(e2 *core.Env) { s.deviceWriteContinue(e2) })
	t.State = core.StateWaiting
	t.WaitLabel = "device_write: " + d.Name
	s.K.Block(e, stats.BlockDeviceIO, s.ContDeviceWrite,
		func(e2 *core.Env) { s.deviceWriteContinue(e2) }, 192, "device-write")
}

// deviceWriteContinue resumes a device_write: the data left with the
// device, return the count — or, on a posted failure or timeout, hand
// over to the retry path. Terminal.
func (s *Subsystem) deviceWriteContinue(e *core.Env) {
	t := e.Cur()
	if code, ok := s.ioErr[t.ID]; ok {
		delete(s.ioErr, t.ID)
		s.retryOrFail(e, code, s.ContDeviceWrite)
	}
	s.K.ThreadSyscallReturn(e, uint64(t.Scratch.Word(0)))
}
