package core

import (
	"fmt"

	"repro/internal/machine"
)

// AbortToContinuation redirects a blocked thread so that its next
// dispatch runs cont instead of whatever it blocked with — the
// machine-independent half of thread_abort. The caller has already
// unhooked the thread from the wait queue that held it and cancelled its
// callouts; this operation only repoints the resumption.
//
// For an interrupt-style block the thread is stackless and the saved
// continuation is simply replaced — aborting costs one store, the paper's
// argument that continuations make cancellation cheap. (If the thread's
// post-block stack disposal is still pending, noteSelected or
// ThreadDispatch frees the stale stack exactly as for a normal wakeup.)
// For a process-model block the preserved call chain is discarded: the
// dedicated stack is reset to its base and a fresh frame running cont is
// planted, so the thread resumes on a clean stack. Either way the stack
// census is untouched.
//
// The caller makes the thread runnable afterwards (Setrun); the abort
// continuation runs in the thread's own context at its next dispatch.
func (k *Kernel) AbortToContinuation(t *Thread, cont *Continuation) {
	if cont == nil {
		panic("core: AbortToContinuation(nil)")
	}
	if t.State != StateWaiting {
		panic(fmt.Sprintf("core: AbortToContinuation on %v which is %v, not waiting", t, t.State))
	}
	k.Stats.Aborts++
	if t.Cont != nil {
		t.Cont = cont
		return
	}
	if t.Stack == nil {
		panic(fmt.Sprintf("core: AbortToContinuation: %v has neither continuation nor stack", t))
	}
	t.Stack.Reset()
	t.Stack.PushFrame(machine.Frame{
		Resume: resumeStep(cont.fn),
		Bytes:  64,
		Label:  "thread_abort",
	})
}
