package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/stats"
)

// script is a simple UserProgram: a fixed sequence of actions followed by
// exit.
type script struct {
	actions []core.Action
	pos     int
	// retvals records the syscall return values the program observed.
	retvals []uint64
}

func (s *script) Next(e *core.Env, t *core.Thread) core.Action {
	if t.MD.RetVal != 0 {
		s.retvals = append(s.retvals, t.MD.RetVal)
		t.MD.RetVal = 0
	}
	if s.pos >= len(s.actions) {
		return core.Exit()
	}
	a := s.actions[s.pos]
	s.pos++
	return a
}

func newKernel(t *testing.T, useCont bool, procs int) *core.Kernel {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: useCont,
		Processors:       procs,
	})
	k.Sched = sched.New(0)
	return k
}

func start(k *core.Kernel, t *core.Thread) {
	k.Setrun(t)
}

func TestRunTrivialProgram(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{core.RunFor(16670)}} // ~1 ms
	th := k.NewThread(core.ThreadSpec{Name: "user", SpaceID: 1, Program: prog})
	start(k, th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("thread state = %v", th.State)
	}
	if got := k.Clock.Now(); got < 1000*1000 {
		t.Fatalf("clock advanced only %v", got)
	}
	if th.UserTime < 999*1000 {
		t.Fatalf("user time %v", th.UserTime)
	}
}

func TestSyscallReturnValueReachesProgram(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{
		core.Syscall("answer", func(e *core.Env) {
			e.K.ThreadSyscallReturn(e, 42)
		}),
		core.RunFor(100),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "user", SpaceID: 1, Program: prog})
	start(k, th)
	k.Run(0)
	if len(prog.retvals) != 1 || prog.retvals[0] != 42 {
		t.Fatalf("retvals = %v", prog.retvals)
	}
	if th.KernelEntries < 2 { // syscall + exit
		t.Fatalf("kernel entries = %d", th.KernelEntries)
	}
}

func TestSyscallHandlerMustNotReturn(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{
		core.Syscall("broken", func(e *core.Env) {}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "user", SpaceID: 1, Program: prog})
	start(k, th)
	defer func() {
		if recover() == nil {
			t.Fatal("returning syscall handler did not panic")
		}
	}()
	k.Run(0)
}

// sleepDone returns the sleeper to user space.
var sleepDone = core.NewContinuation("sleep_done", func(e *core.Env) {
	e.K.ThreadSyscallReturn(e, 1)
})

// sleepSyscall blocks the current thread until the clock fires, using a
// continuation when the kernel supports it and the process model
// otherwise.
func sleepSyscall(d machine.Duration) core.Action {
	return core.Syscall("sleep", func(e *core.Env) {
		th := e.Cur()
		th.State = core.StateWaiting
		e.K.Clock.After(d, "sleep-wakeup", func() { e.K.Setrun(th) })
		e.K.Block(e, stats.BlockInternal, sleepDone,
			func(e2 *core.Env) { e2.K.ThreadSyscallReturn(e2, 1) }, 64, "sleep")
	})
}

func TestSleepViaContinuationDiscardsStack(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{sleepSyscall(1000 * 1000)}}
	th := k.NewThread(core.ThreadSpec{Name: "sleeper", SpaceID: 1, Program: prog})
	start(k, th)

	// Drive until the sleeper has blocked and the processor parked.
	for i := 0; i < 100 && th.State != core.StateWaiting; i++ {
		if !k.Step() {
			break
		}
	}
	if th.State != core.StateWaiting {
		t.Fatalf("sleeper state = %v", th.State)
	}
	if th.HasStack() {
		t.Fatal("continuation-blocked thread still holds a stack")
	}
	if th.Cont == nil {
		t.Fatal("continuation-blocked thread lost its continuation")
	}
	if k.Stacks.InUse() != 0 {
		t.Fatalf("stacks in use while everything blocked: %d", k.Stacks.InUse())
	}

	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("sleeper did not finish: %v", th.State)
	}
	if len(prog.retvals) != 1 || prog.retvals[0] != 1 {
		t.Fatalf("retvals = %v", prog.retvals)
	}
	if k.Stats.BlocksWithDiscard[stats.BlockInternal] == 0 {
		t.Fatal("no discard recorded")
	}
}

func TestSleepProcessModelKeepsStack(t *testing.T) {
	k := newKernel(t, false, 1)
	prog := &script{actions: []core.Action{sleepSyscall(1000 * 1000)}}
	th := k.NewThread(core.ThreadSpec{Name: "sleeper", SpaceID: 1, Program: prog})
	start(k, th)

	for i := 0; i < 100 && th.State != core.StateWaiting; i++ {
		if !k.Step() {
			break
		}
	}
	if th.State != core.StateWaiting {
		t.Fatalf("sleeper state = %v", th.State)
	}
	if !th.HasStack() {
		t.Fatal("process-model thread lost its stack while blocked")
	}
	if th.Cont != nil {
		t.Fatal("process-model kernel recorded a continuation")
	}
	if th.Stack.FrameCount() == 0 {
		t.Fatal("no preserved frame on the retained stack")
	}

	k.Run(0)
	if th.State != core.StateHalted || len(prog.retvals) != 1 {
		t.Fatalf("sleeper did not finish: %v retvals=%v", th.State, prog.retvals)
	}
	if d := k.Stats.TotalDiscards(); d != 0 {
		t.Fatalf("process-model kernel recorded %d discards", d)
	}
	if k.Stats.TotalNoDiscards() == 0 {
		t.Fatal("no process-model blocks recorded")
	}
}

func TestHandoffBetweenContinuationThreads(t *testing.T) {
	k := newKernel(t, true, 1)
	// Two threads that sleep in lockstep; when one blocks while the
	// other is runnable-with-continuation, thread_block should hand the
	// stack over rather than context switch.
	mk := func(name string) (*script, *core.Thread) {
		p := &script{actions: []core.Action{
			sleepSyscall(100 * 1000),
			core.RunFor(1000),
			sleepSyscall(100 * 1000),
			core.RunFor(1000),
		}}
		return p, k.NewThread(core.ThreadSpec{Name: name, SpaceID: 1, Program: p})
	}
	_, a := mk("a")
	_, b := mk("b")
	start(k, a)
	start(k, b)
	k.Run(0)
	if a.State != core.StateHalted || b.State != core.StateHalted {
		t.Fatalf("states a=%v b=%v", a.State, b.State)
	}
	if k.Stats.Handoffs == 0 {
		t.Fatal("no stack handoffs between continuation threads")
	}
	// The two threads plus exits should never have needed more than a
	// couple of stacks.
	if k.Stacks.MaxInUse() > 2 {
		t.Fatalf("stack high water = %d, want <= 2", k.Stacks.MaxInUse())
	}
}

func TestProcessModelUsesContextSwitches(t *testing.T) {
	k := newKernel(t, false, 1)
	mk := func(name string) *core.Thread {
		p := &script{actions: []core.Action{
			sleepSyscall(100 * 1000),
			core.RunFor(1000),
		}}
		return k.NewThread(core.ThreadSpec{Name: name, SpaceID: 1, Program: p})
	}
	a := mk("a")
	b := mk("b")
	start(k, a)
	start(k, b)
	k.Run(0)
	if k.Stats.Handoffs != 0 {
		t.Fatalf("process-model kernel performed %d handoffs", k.Stats.Handoffs)
	}
	if k.Stats.ContextSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
	// Dedicated stacks: one per thread.
	if k.Stacks.MaxInUse() < 2 {
		t.Fatalf("stack high water = %d, want >= 2", k.Stacks.MaxInUse())
	}
}

func TestPreemptionRoundRobin(t *testing.T) {
	k := core.NewKernel(core.Config{UseContinuations: true})
	k.Sched = sched.New(machine.Duration(1000 * 1000)) // 1 ms quantum
	mk := func(name string) *core.Thread {
		p := &script{actions: []core.Action{core.RunFor(16670 * 10)}} // 10 ms
		return k.NewThread(core.ThreadSpec{Name: name, SpaceID: 1, Program: p})
	}
	a := mk("a")
	b := mk("b")
	k.Setrun(a)
	k.Setrun(b)
	k.Run(0)
	if a.State != core.StateHalted || b.State != core.StateHalted {
		t.Fatalf("states a=%v b=%v", a.State, b.State)
	}
	if k.Stats.BlocksWithDiscard[stats.BlockPreempt] == 0 {
		t.Fatal("no preemptions recorded")
	}
	// Preempted threads block with a continuation: runnable threads hold
	// no kernel stacks, so two CPU-bound threads need at most one stack
	// at a time (plus transient overlap during switches).
	if k.Stacks.MaxInUse() > 2 {
		t.Fatalf("stack high water = %d", k.Stacks.MaxInUse())
	}
}

func TestYield(t *testing.T) {
	k := newKernel(t, true, 1)
	mk := func(name string) *core.Thread {
		p := &script{actions: []core.Action{
			core.RunFor(100),
			{Kind: core.ActYield},
			core.RunFor(100),
		}}
		return k.NewThread(core.ThreadSpec{Name: name, SpaceID: 1, Program: p})
	}
	a := mk("a")
	b := mk("b")
	k.Setrun(a)
	k.Setrun(b)
	k.Run(0)
	if k.Stats.BlocksWithDiscard[stats.BlockThreadSwitch] == 0 {
		t.Fatal("no thread_switch blocks recorded")
	}
}

func TestYieldAloneKeepsProcessor(t *testing.T) {
	k := newKernel(t, true, 1)
	p := &script{actions: []core.Action{
		{Kind: core.ActYield},
		core.RunFor(100),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "solo", SpaceID: 1, Program: p})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("state = %v", th.State)
	}
	// Yielding with an empty run queue is not a real control transfer.
	if k.Stats.BlocksWithDiscard[stats.BlockThreadSwitch] != 0 {
		t.Fatal("lone yield tallied as a block")
	}
}

func TestHaltFreesStack(t *testing.T) {
	k := newKernel(t, true, 1)
	p := &script{actions: []core.Action{core.RunFor(10)}}
	th := k.NewThread(core.ThreadSpec{Name: "short", SpaceID: 1, Program: p})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("state = %v", th.State)
	}
	if k.Stacks.InUse() != 0 {
		t.Fatalf("stacks leaked: %d in use", k.Stacks.InUse())
	}
	if k.LiveThreads() != 0 {
		t.Fatalf("LiveThreads = %d", k.LiveThreads())
	}
}

func TestWakeupBeforeBlockIsNotLost(t *testing.T) {
	k := newKernel(t, true, 1)
	var waiter *core.Thread
	prog := &script{actions: []core.Action{
		core.Syscall("wait", func(e *core.Env) {
			th := e.Cur()
			// Wake ourselves first (as a racing interrupt would), then
			// block: the block must consume the pending wakeup and keep
			// running.
			e.K.Setrun(th)
			th.State = core.StateWaiting
			e.K.Block(e, stats.BlockInternal, sleepDone,
				func(e2 *core.Env) { e2.K.ThreadSyscallReturn(e2, 1) }, 64, "wait")
		}),
	}}
	waiter = k.NewThread(core.ThreadSpec{Name: "waiter", SpaceID: 1, Program: prog})
	k.Setrun(waiter)
	k.Run(0)
	if waiter.State != core.StateHalted {
		t.Fatalf("waiter hung in state %v", waiter.State)
	}
	if len(prog.retvals) != 1 {
		t.Fatalf("retvals = %v", prog.retvals)
	}
}

func TestScratchSurvivesBlock(t *testing.T) {
	k := newKernel(t, true, 1)
	var observed uint32
	resumeCont := core.NewContinuation("scratch_resume", func(e *core.Env) {
		observed = e.Cur().Scratch.Word(0)
		e.K.ThreadSyscallReturn(e, 0)
	})
	prog := &script{actions: []core.Action{
		core.Syscall("stash", func(e *core.Env) {
			th := e.Cur()
			th.Scratch.PutWord(0, 0xabcd)
			th.State = core.StateWaiting
			e.K.Clock.After(1000, "wake", func() { e.K.Setrun(th) })
			e.K.Block(e, stats.BlockInternal, resumeCont, nil, 0, "")
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "stasher", SpaceID: 1, Program: prog})
	k.Setrun(th)
	k.Run(0)
	if observed != 0xabcd {
		t.Fatalf("scratch word = %#x, want 0xabcd", observed)
	}
}

func TestThreadHandoffAndRecognition(t *testing.T) {
	k := newKernel(t, true, 1)
	recvCont := core.NewContinuation("recv_continue", func(e *core.Env) {
		e.K.ThreadSyscallReturn(e, 7)
	})
	var recognized, handedOff bool

	var server *core.Thread
	serverProg := &script{actions: []core.Action{
		core.Syscall("serve", func(e *core.Env) {
			th := e.Cur()
			th.State = core.StateWaiting
			e.K.Block(e, stats.BlockReceive, recvCont, nil, 0, "")
		}),
		core.RunFor(10),
	}}
	server = k.NewThread(core.ThreadSpec{Name: "server", SpaceID: 2, Program: serverProg})

	clientProg := &script{actions: []core.Action{
		core.RunFor(100), // let the server block first
		core.Syscall("send", func(e *core.Env) {
			th := e.Cur()
			if !server.BlockedWith(recvCont) {
				t.Errorf("server not blocked with recv_continue: cont=%v state=%v",
					server.Cont, server.State)
			}
			th.State = core.StateWaiting
			e.K.Clock.After(1000, "client-wake", func() { e.K.Setrun(th) })
			e.K.ThreadHandoff(e, stats.BlockReceive, sleepDone, server)
			handedOff = true
			// Now running as the server, inside the client's still-live
			// call context: recognize the server's continuation.
			if e.Cur() != server {
				t.Error("not running as server after handoff")
			}
			if e.K.Recognize(e, recvCont) {
				recognized = true
				e.K.ThreadSyscallReturn(e, 7)
			}
			e.K.CallContinuation(e, server.Cont)
		}),
	}}
	client := k.NewThread(core.ThreadSpec{Name: "client", SpaceID: 1, Program: clientProg})
	k.Setrun(server)
	k.Setrun(client)
	k.Run(0)

	if !handedOff || !recognized {
		t.Fatalf("handedOff=%v recognized=%v", handedOff, recognized)
	}
	if k.Stats.Recognitions == 0 || k.Stats.Handoffs == 0 {
		t.Fatalf("stats: %+v", k.Stats)
	}
	if serverProg.retvals[0] != 7 {
		t.Fatalf("server retvals = %v", serverProg.retvals)
	}
	if client.State != core.StateHalted || server.State != core.StateHalted {
		t.Fatalf("client=%v server=%v", client.State, server.State)
	}
}

func TestRecognizeWrongContinuation(t *testing.T) {
	k := newKernel(t, true, 1)
	other := core.NewContinuation("other", func(e *core.Env) {
		e.K.ThreadSyscallReturn(e, 9)
	})
	var sawFalse bool

	var server *core.Thread
	serverProg := &script{actions: []core.Action{
		core.Syscall("serve", func(e *core.Env) {
			th := e.Cur()
			th.State = core.StateWaiting
			e.K.Block(e, stats.BlockReceive, other, nil, 0, "")
		}),
	}}
	server = k.NewThread(core.ThreadSpec{Name: "server", SpaceID: 2, Program: serverProg})

	expect := core.NewContinuation("expected", func(e *core.Env) {
		e.K.ThreadSyscallReturn(e, 0)
	})
	clientProg := &script{actions: []core.Action{
		core.RunFor(100),
		core.Syscall("send", func(e *core.Env) {
			th := e.Cur()
			th.State = core.StateWaiting
			e.K.Clock.After(1000, "client-wake", func() { e.K.Setrun(th) })
			e.K.ThreadHandoff(e, stats.BlockReceive, sleepDone, server)
			if e.K.Recognize(e, expect) {
				t.Error("recognized the wrong continuation")
			}
			sawFalse = true
			e.K.CallContinuation(e, e.Cur().Cont)
		}),
	}}
	client := k.NewThread(core.ThreadSpec{Name: "client", SpaceID: 1, Program: clientProg})
	k.Setrun(server)
	k.Setrun(client)
	k.Run(0)
	if !sawFalse {
		t.Fatal("recognition branch never ran")
	}
	if serverProg.retvals[0] != 9 {
		t.Fatalf("server resumed wrongly: %v", serverProg.retvals)
	}
	if client.State != core.StateHalted || server.State != core.StateHalted {
		t.Fatalf("client=%v server=%v", client.State, server.State)
	}
}

func TestMultiprocessorRunsAllThreads(t *testing.T) {
	k := newKernel(t, true, 4)
	var threads []*core.Thread
	for i := 0; i < 8; i++ {
		p := &script{actions: []core.Action{
			core.RunFor(1000),
			sleepSyscall(10 * 1000),
			core.RunFor(1000),
		}}
		th := k.NewThread(core.ThreadSpec{Name: "worker", SpaceID: i + 1, Program: p})
		threads = append(threads, th)
		k.Setrun(th)
	}
	k.Run(0)
	for _, th := range threads {
		if th.State != core.StateHalted {
			t.Fatalf("%v state = %v", th, th.State)
		}
	}
}

func TestKernelEntriesCharged(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{
		core.Syscall("nop", func(e *core.Env) { e.K.ThreadSyscallReturn(e, 5) }),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog})
	k.Setrun(th)
	before := k.Acct.Total()
	k.Run(0)
	after := k.Acct.Total()
	if after.Instrs <= before.Instrs {
		t.Fatal("no kernel cost charged for a syscall")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (machine.Time, uint64, machine.Cost) {
		k := newKernel(t, true, 2)
		for i := 0; i < 4; i++ {
			p := &script{actions: []core.Action{
				core.RunFor(500),
				sleepSyscall(machine.Duration(1000 * (i + 1))),
				core.RunFor(500),
			}}
			k.Setrun(k.NewThread(core.ThreadSpec{Name: "w", SpaceID: i + 1, Program: p}))
		}
		steps := k.Run(0)
		return k.Clock.Now(), steps, k.Acct.Total()
	}
	t1, s1, c1 := run()
	t2, s2, c2 := run()
	if t1 != t2 || s1 != s2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d,%v) vs (%v,%d,%v)", t1, s1, c1, t2, s2, c2)
	}
}

func TestBlockWithoutWaitStatePanics(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{
		core.Syscall("bad", func(e *core.Env) {
			// Forgetting to set the wait state is a kernel bug.
			e.K.Block(e, stats.BlockInternal, sleepDone, nil, 0, "")
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog})
	k.Setrun(th)
	defer func() {
		if recover() == nil {
			t.Fatal("Block from running state did not panic")
		}
	}()
	k.Run(0)
}

func TestBlockNeitherStylePanics(t *testing.T) {
	k := newKernel(t, false, 1)
	prog := &script{actions: []core.Action{
		core.Syscall("bad", func(e *core.Env) {
			th := e.Cur()
			th.State = core.StateWaiting
			// No continuation is honoured in a process-model kernel and
			// no resume step is given: impossible block.
			e.K.Block(e, stats.BlockInternal, sleepDone, nil, 0, "")
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog})
	k.Setrun(th)
	defer func() {
		if recover() == nil {
			t.Fatal("impossible block did not panic")
		}
	}()
	k.Run(0)
}

func TestRunDeadline(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{core.RunFor(16670 * 1000)}} // ~1 s
	th := k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog})
	k.Setrun(th)
	k.Run(machine.Time(1000)) // 1 us deadline
	if th.State == core.StateHalted {
		t.Fatal("deadline did not stop the run")
	}
}

func TestRunningThreadAlwaysHasStack(t *testing.T) {
	k := newKernel(t, true, 2)
	check := func(e *core.Env) {
		th := e.Cur()
		if th.Stack == nil {
			t.Errorf("%v running without a stack", th)
		}
		e.K.ThreadSyscallReturn(e, 1)
	}
	for i := 0; i < 4; i++ {
		p := &script{actions: []core.Action{
			core.Syscall("check", check),
			sleepSyscall(1000),
			core.Syscall("check", check),
		}}
		k.Setrun(k.NewThread(core.ThreadSpec{Name: "w", SpaceID: 1, Program: p}))
	}
	k.Run(0)
}

func TestSyscallReturnOverrideDiscount(t *testing.T) {
	// The overriding-return extension charges the exit minus the skipped
	// register restore, flooring at zero even for absurd discounts.
	run := func(discount machine.Cost) machine.Cost {
		k := newKernel(t, true, 1)
		prog := &script{actions: []core.Action{
			core.Syscall("override", func(e *core.Env) {
				e.K.ThreadSyscallReturnOverride(e, 7, discount)
			}),
		}}
		th := k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog})
		k.Setrun(th)
		k.Run(0)
		if th.State != core.StateHalted || prog.retvals[0] != 7 {
			t.Fatalf("state=%v rets=%v", th.State, prog.retvals)
		}
		return k.Acct.Total()
	}
	small := run(machine.Cost{Instrs: 10, Loads: 5})
	huge := run(machine.Cost{Instrs: 1 << 40, Loads: 1 << 40, Stores: 1 << 40})
	if huge.Instrs >= small.Instrs {
		t.Fatalf("bigger discount should charge less: %v vs %v", huge, small)
	}
}

func TestOverrideOutsideSyscallPanics(t *testing.T) {
	k := newKernel(t, true, 1)
	prog := &script{actions: []core.Action{
		{Kind: core.ActException, Code: 1},
	}}
	k.HandleException = func(e *core.Env, code int) {
		e.K.ThreadSyscallReturnOverride(e, 0, machine.Cost{})
	}
	th := k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog})
	k.Setrun(th)
	defer func() {
		if recover() == nil {
			t.Fatal("override outside a syscall did not panic")
		}
	}()
	k.Run(0)
}

func TestValidateCleanAfterEveryScenario(t *testing.T) {
	// Re-run the representative scenarios and validate at quiescence.
	k := newKernel(t, true, 2)
	for i := 0; i < 6; i++ {
		p := &script{actions: []core.Action{
			core.RunFor(500),
			sleepSyscall(machine.Duration(1000 * (i + 1))),
			{Kind: core.ActYield},
			core.RunFor(500),
		}}
		k.Setrun(k.NewThread(core.ThreadSpec{Name: "w", SpaceID: i + 1, Program: p}))
	}
	k.Run(0)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}
