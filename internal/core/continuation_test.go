package core

import "testing"

func TestNewContinuationValidation(t *testing.T) {
	if c := NewContinuation("x", func(*Env) {}); c.Name() != "x" {
		t.Fatalf("Name = %q", c.Name())
	}
	for _, bad := range []struct {
		name string
		fn   func(*Env)
	}{{"", func(*Env) {}}, {"x", nil}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewContinuation(%q, fn=%v) did not panic", bad.name, bad.fn != nil)
				}
			}()
			NewContinuation(bad.name, bad.fn)
		}()
	}
}

func TestContinuationNilName(t *testing.T) {
	var c *Continuation
	if c.Name() != "<none>" {
		t.Fatalf("nil Name = %q", c.Name())
	}
}

func TestContinuationIdentity(t *testing.T) {
	a := NewContinuation("same", func(*Env) {})
	b := NewContinuation("same", func(*Env) {})
	if a == b {
		t.Fatal("distinct continuations compare equal")
	}
	c := a
	if c != a {
		t.Fatal("identical continuations compare unequal")
	}
}

func TestScratchWords(t *testing.T) {
	var s Scratch
	s.PutWord(0, 7)
	s.PutWord(6, 0xdeadbeef)
	if s.Word(0) != 7 || s.Word(6) != 0xdeadbeef {
		t.Fatal("scratch word round trip failed")
	}
	if s.Used() != 2 {
		t.Fatalf("Used = %d", s.Used())
	}
}

func TestScratchRefs(t *testing.T) {
	var s Scratch
	type msg struct{ n int }
	m := &msg{n: 3}
	s.PutRef(2, m)
	got, ok := s.Ref(2).(*msg)
	if !ok || got != m {
		t.Fatal("scratch ref round trip failed")
	}
}

func TestScratchOverwriteChangesKind(t *testing.T) {
	var s Scratch
	s.PutRef(1, "obj")
	s.PutWord(1, 9)
	if s.Ref(1) != nil {
		t.Fatal("PutWord did not clear the ref")
	}
	if s.Word(1) != 9 {
		t.Fatal("word lost")
	}
	if s.Used() != 1 {
		t.Fatalf("Used = %d", s.Used())
	}
}

func TestScratchBoundsEnforced(t *testing.T) {
	// The 28-byte limit is the paper's: seven 4-byte slots, no more.
	if ScratchBytes != 28 {
		t.Fatalf("ScratchBytes = %d, want 28", ScratchBytes)
	}
	var s Scratch
	for _, f := range []func(){
		func() { s.PutWord(7, 1) },
		func() { s.PutWord(-1, 1) },
		func() { s.PutRef(ScratchSlots, nil) },
		func() { s.Word(7) },
		func() { s.Ref(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range scratch access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestScratchReadBeforeWritePanics(t *testing.T) {
	var s Scratch
	defer func() {
		if recover() == nil {
			t.Fatal("read of unwritten slot did not panic")
		}
	}()
	s.Word(3)
}

func TestScratchReset(t *testing.T) {
	var s Scratch
	s.PutWord(0, 1)
	s.PutRef(1, "r")
	s.Reset()
	if s.Used() != 0 {
		t.Fatalf("Used after Reset = %d", s.Used())
	}
}
