package core

// CrashReset models a whole-machine crash at the control-transfer layer:
// every thread dies instantly, every kernel stack returns to the pool,
// and every processor forgets what it was doing. It returns how many
// live threads the crash killed.
//
// The paper's thread representation is what makes this operation small:
// a blocked thread is a continuation pointer plus 28 bytes of scratch
// state, so "drop all in-flight state" is a walk over the thread table,
// not an unwind of live stacks. The caller (kern.System.Crash) captures
// the panic record from that same table before invoking this.
//
// The clock is deliberately untouched: simulated time continues across a
// crash, and the caller decides which pending events survive (in-flight
// wire arrivals do; local timers, callouts and retransmits do not — see
// machine.Clock.PurgeLocal). Substrate hooks (Invariants, OnHalt, fault
// and exception handlers) are cleared because they belong to the dead
// incarnation's subsystem objects; the warm-reboot path re-registers
// fresh ones. The scheduler is left in place but must be replaced by the
// caller before the next dispatch — its queues still name dead threads.
func (k *Kernel) CrashReset() int {
	killed := 0
	for _, p := range k.Procs {
		p.Cur = nil
		p.Prev = nil
		p.pending = nil
		p.dispose = nil
	}
	for _, t := range k.Threads {
		if t.State != StateHalted {
			killed++
		}
		if t.Stack != nil {
			s := t.Stack
			t.Stack = nil
			s.Reset()
			k.Stacks.Free(s)
		}
		t.Cont = nil
		t.State = StateHalted
		t.WaitLabel = ""
		t.queued = false
		t.disposalPending = false
		t.WakeupPending = false
	}
	k.Threads = k.Threads[:0]
	k.Invariants = nil
	k.OnHalt = nil
	k.HandleFault = nil
	k.HandleException = nil
	return killed
}

// BlockedSnapshot describes one blocked or runnable thread at crash time,
// for the panic record: the continuation-kernel diagnostic the paper
// promises ("the continuation identifies what the thread is doing").
type BlockedSnapshot struct {
	ID    int
	Name  string
	State ThreadState
	// Cont is the saved continuation's name, "<stack>" for a
	// process-model block, or "<running>" for the current thread.
	Cont string
	// WaitLabel is the block site's label, when the thread was waiting.
	WaitLabel string
}

// SnapshotThreads captures the thread table for a panic record. It is
// read-only and safe to call at any dispatcher boundary.
func (k *Kernel) SnapshotThreads() []BlockedSnapshot {
	var out []BlockedSnapshot
	for _, t := range k.Threads {
		if t.State == StateHalted {
			continue
		}
		snap := BlockedSnapshot{
			ID:        t.ID,
			Name:      t.Name,
			State:     t.State,
			WaitLabel: t.WaitLabel,
		}
		switch {
		case t.Cont != nil:
			snap.Cont = t.Cont.Name()
		case t.State == StateRunning:
			snap.Cont = "<running>"
		default:
			snap.Cont = "<stack>"
		}
		out = append(out, snap)
	}
	return out
}
