// Package core implements the paper's primary contribution: thread
// management and control transfer built on continuations (§2), including
// the machine-independent interface of Figure 3 (stack attach/detach/
// handoff, call_continuation, switch_context, thread_syscall_return,
// thread_exception_return) and the higher-level operations of Figure 4
// (thread_block, thread_handoff, thread_continue, thread_dispatch).
//
// A thread blocks in one of two ways:
//
//   - with a continuation: the thread names a Continuation and saves at
//     most 28 bytes of context in its scratch area; its kernel stack is
//     discarded (or handed directly to the next thread) and the thread is
//     resumed by calling the continuation on a fresh stack base;
//
//   - under the process model: the thread keeps its kernel stack, a frame
//     preserving its call chain is pushed, and it is resumed by a full
//     context switch.
//
// Continuations are first-class, named, pointer-comparable values, which
// is what makes continuation recognition (§2.3) possible: a resumer can
// compare a blocked thread's continuation against a known value and run a
// faster inline sequence instead of calling it.
package core

import "fmt"

// Continuation is a resumption point: a function a thread should execute
// when it next runs. Continuations must be declared at package level with
// NewContinuation so that they are comparable by identity and cannot
// close over per-thread state — any state a thread needs across the block
// must travel through its 28-byte scratch area, exactly as in the paper.
//
// A continuation never returns to its caller; it must finish by invoking
// a terminal control-transfer operation (ThreadSyscallReturn,
// ThreadExceptionReturn, ThreadBlock, CallContinuation, Halt).
type Continuation struct {
	name string
	fn   func(*Env)
}

// NewContinuation registers a continuation point. The name appears in
// traces and diagnostics.
func NewContinuation(name string, fn func(*Env)) *Continuation {
	if name == "" || fn == nil {
		panic("core: continuation needs a name and a body")
	}
	return &Continuation{name: name, fn: fn}
}

// Name returns the continuation's diagnostic name.
func (c *Continuation) Name() string {
	if c == nil {
		return "<none>"
	}
	return c.name
}

func (c *Continuation) String() string { return c.Name() }

// ScratchSlots is the number of 32-bit slots in a thread's scratch area.
// The paper gives threads 28 bytes of scratch; with 1991-era 4-byte
// pointers that is seven words, each of which may hold either a small
// integer or one object reference.
const ScratchSlots = 7

// ScratchBytes is the scratch area capacity in bytes.
const ScratchBytes = ScratchSlots * 4

// Scratch is the fixed-size per-thread save area for state preserved
// across a continuation block. If a thread needs more than seven words it
// must allocate an auxiliary structure and keep a single reference to it
// here — the same discipline the paper imposes.
type Scratch struct {
	words [ScratchSlots]uint32
	refs  [ScratchSlots]any
	inUse [ScratchSlots]bool
}

// Reset clears the scratch area, dropping any references.
func (s *Scratch) Reset() {
	*s = Scratch{}
}

func (s *Scratch) check(slot int) {
	if slot < 0 || slot >= ScratchSlots {
		panic(fmt.Sprintf("core: scratch slot %d out of range (28-byte scratch area has %d word slots)",
			slot, ScratchSlots))
	}
}

// PutWord stores a 32-bit value in the given slot.
func (s *Scratch) PutWord(slot int, v uint32) {
	s.check(slot)
	s.words[slot] = v
	s.refs[slot] = nil
	s.inUse[slot] = true
}

// Word reads a 32-bit value previously stored with PutWord.
func (s *Scratch) Word(slot int) uint32 {
	s.check(slot)
	if !s.inUse[slot] {
		panic(fmt.Sprintf("core: scratch slot %d read before write", slot))
	}
	return s.words[slot]
}

// PutRef stores one object reference (a 1991 pointer: four bytes) in the
// given slot.
func (s *Scratch) PutRef(slot int, v any) {
	s.check(slot)
	s.refs[slot] = v
	s.words[slot] = 0
	s.inUse[slot] = true
}

// Ref reads an object reference previously stored with PutRef.
func (s *Scratch) Ref(slot int) any {
	s.check(slot)
	if !s.inUse[slot] {
		panic(fmt.Sprintf("core: scratch slot %d read before write", slot))
	}
	return s.refs[slot]
}

// Used reports how many slots currently hold saved state.
func (s *Scratch) Used() int {
	n := 0
	for _, u := range s.inUse {
		if u {
			n++
		}
	}
	return n
}
