package core

import (
	"fmt"

	"repro/internal/machine"
)

// Validate checks the kernel's structural invariants (DESIGN.md §7).
// It returns the first violation found, or nil. The checker is meant to
// run between dispatcher steps — the only points where the machine is in
// a consistent state — and is used by the randomized stress tests.
func (k *Kernel) Validate() error {
	// Every processor's current thread is running, has a stack, and is
	// not simultaneously queued.
	running := make(map[*Thread]*Processor)
	for _, p := range k.Procs {
		t := p.Cur
		if t == nil {
			continue
		}
		if prev, dup := running[t]; dup {
			return fmt.Errorf("thread %v current on processors %d and %d", t, prev.ID, p.ID)
		}
		running[t] = p
		if t.State != StateRunning {
			return fmt.Errorf("current %v in state %v", t, t.State)
		}
		if t.Stack == nil {
			return fmt.Errorf("running %v has no kernel stack", t)
		}
		if t.queued {
			return fmt.Errorf("running %v still on a run queue", t)
		}
	}

	stackOwners := make(map[*machine.Stack]*Thread)
	var attached int
	for _, t := range k.Threads {
		if t.Stack != nil {
			if other, dup := stackOwners[t.Stack]; dup {
				return fmt.Errorf("stack %d owned by both %v and %v", t.Stack.ID, other, t)
			}
			stackOwners[t.Stack] = t
			attached++
			if t.Stack.Owner() != machine.OwnerThread {
				return fmt.Errorf("stack %d attached to %v but owned by %v",
					t.Stack.ID, t, t.Stack.Owner())
			}
		}

		switch t.State {
		case StateRunning:
			if _, ok := running[t]; !ok {
				return fmt.Errorf("%v running but current on no processor", t)
			}
			// A running thread has consumed its continuation.
			if t.Cont != nil {
				return fmt.Errorf("running %v still carries continuation %v", t, t.Cont)
			}
		case StateRunnable:
			// Runnable threads are queued, or in the brief window where
			// thread_dispatch will queue them (their disposer's pending
			// step has not run yet); that window also permits a stale
			// stack awaiting disposal.
		case StateWaiting:
			if t.Cont != nil && t.Stack != nil && !t.disposalPending {
				return fmt.Errorf("waiting %v holds both continuation %v and stack %d outside the disposal window",
					t, t.Cont, t.Stack.ID)
			}
			if t.Cont == nil && t.Stack != nil && t.Stack.FrameCount() == 0 && !t.disposalPending {
				return fmt.Errorf("waiting %v holds a frame-less stack %d and no continuation",
					t, t.Stack.ID)
			}
			if t.Cont == nil && t.Stack == nil {
				return fmt.Errorf("waiting %v has neither continuation nor stack: unresumable", t)
			}
		case StateHalted:
			if t.queued {
				return fmt.Errorf("halted %v on a run queue", t)
			}
		}

		if t.queued && t.State != StateRunnable {
			return fmt.Errorf("%v queued in state %v", t, t.State)
		}
		if t.Scratch.Used() > ScratchSlots {
			return fmt.Errorf("%v scratch overflow", t)
		}
	}

	// The pool's accounting matches the attachments: every in-use stack
	// is attached to exactly one thread (the transit state is internal
	// to a dispatcher step and never visible here).
	if got := k.Stacks.InUse(); got != attached {
		return fmt.Errorf("stack pool reports %d in use, %d attached to threads", got, attached)
	}

	// Substrate-registered checks: port waiter/sendWaiter consistency,
	// device queue consistency, callout hygiene.
	for _, check := range k.Invariants {
		if err := check(); err != nil {
			return err
		}
	}
	return nil
}

// MustValidate panics on an invariant violation; used in tests.
func (k *Kernel) MustValidate() {
	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("core: invariant violated: %v", err))
	}
}

// PostDispatchCheck runs the full invariant sweep when DebugChecks is
// enabled. The dispatcher calls it after every step — the only points
// where the machine is guaranteed consistent — so a corrupted waiter
// list or leaked callout is caught at the step that created it, not at
// some arbitrarily later failure.
func (k *Kernel) PostDispatchCheck() {
	if !k.DebugChecks {
		return
	}
	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("core: post-dispatch invariant violated: %v", err))
	}
	k.Stats.InvariantPasses++
}
