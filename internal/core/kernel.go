package core

import (
	"fmt"
	"strconv"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Scheduler is the policy interface the control-transfer engine consults.
// The mechanism/policy split mirrors Mach's: core moves control between
// threads; sched decides which thread.
type Scheduler interface {
	// SelectThread removes and returns the next runnable thread for the
	// processor, or nil when nothing is runnable.
	SelectThread(p *Processor) *Thread
	// Setrun places a runnable thread on a run queue.
	Setrun(t *Thread)
	// HasWork reports whether any thread is queued.
	HasWork() bool
	// MaxQueuedPriority returns the highest priority among queued
	// threads, and false when the queue is empty. It drives AST-style
	// preemption: handoff scheduling bypasses the run queue, so without
	// this check a queued high-priority thread could starve behind a
	// handoff chain.
	MaxQueuedPriority() (int, bool)
	// Quantum returns the time slice to grant a thread at dispatch.
	Quantum() machine.Duration
}

// Processor models one CPU of the simulated machine. The current thread's
// kernel stack is, in effect, the processor's stack — the paper's central
// space claim is that this is the only stack a processor needs.
type Processor struct {
	ID int

	// Cur is the thread executing on this processor; nil when parked.
	Cur *Thread

	// Prev is the thread that ran immediately before the current one,
	// passed to thread_continue/thread_dispatch on resumption.
	Prev *Thread

	// pending is the next dispatcher action (the trampoline slot).
	pending func(*Env)

	// dispose is a thread whose post-switch cleanup (thread_dispatch) is
	// owed before the next pending action runs. Keeping it here instead of
	// wrapping pending in a closure keeps the dispatch path allocation-free.
	dispose *Thread

	// env is the processor's reusable execution environment. Env is
	// immutable, so every dispatch and interrupt on this processor can
	// share one value instead of allocating per step.
	env Env
}

// Env is the kernel execution environment handed to every kernel-mode
// function: which kernel and which processor the code is running on.
type Env struct {
	K *Kernel
	P *Processor
}

// Cur returns the thread currently running on this processor.
func (e *Env) Cur() *Thread { return e.P.Cur }

// Charge records simulated work against the kernel's cost accumulator.
func (e *Env) Charge(c machine.Cost) { e.K.Acct.Charge(c) }

// Trace emits an observability event naming the current thread. A nil
// recorder (the default) makes this a nil check and nothing more; call
// sites that would pay formatting costs for the detail string guard on
// e.K.Obs themselves.
func (e *Env) Trace(kind obs.Kind, detail string) {
	r := e.K.Obs
	if r == nil {
		return
	}
	name := "<parked>"
	tid := 0
	if e.P.Cur != nil {
		name = e.P.Cur.Name
		tid = e.P.Cur.ID
	}
	r.Emit(kind, tid, name, "", detail)
}

// resumeStep is the payload stored in a preserved stack frame: the
// suspended rest-of-function of a process-model block.
type resumeStep func(*Env)

// unwound is the sentinel used to enforce the paper's /*NOTREACHED*/
// discipline: terminal control-transfer operations never return to their
// caller; they unwind to the dispatch trampoline.
type unwound struct{}

// Config selects the kernel build being simulated.
type Config struct {
	// Model is the machine being simulated.
	Model *machine.CostModel

	// UseContinuations enables the MK40 mechanism. When false the kernel
	// behaves like MK32/Mach 2.5: every thread owns a dedicated kernel
	// stack and all blocks use the process model.
	UseContinuations bool

	// Processors is the CPU count (default 1).
	Processors int

	// StackVMMetadataBytes is the per-stack VM bookkeeping charge
	// (116 bytes when stacks are pageable as in MK32, 0 when wired as in
	// MK40 — Table 5).
	StackVMMetadataBytes int

	// NoHandoff disables the stack-handoff optimization: blocks with
	// continuations still discard stacks, but control transfers always
	// free the old stack and attach a fresh one. Ablation only.
	NoHandoff bool

	// NoRecognition disables continuation recognition: resumed threads
	// always run their saved continuation through the general path.
	// Ablation only.
	NoRecognition bool
}

// Kernel is the control-transfer engine: the clock, the stack pool, the
// processors, and the Figure 3/4 operations. Substrates (IPC, VM,
// exceptions) hang their handlers off it.
type Kernel struct {
	Clock  *machine.Clock
	Model  *machine.CostModel
	Costs  machine.TransferCosts
	Acct   *machine.Accumulator
	Stacks *machine.StackPool
	Sched  Scheduler
	Stats  *stats.Kernel
	Procs  []*Processor

	// Obs is the observability recorder; nil (the default) disables
	// tracing, leaving only a nil check on every emit path.
	Obs *obs.Recorder

	// UseContinuations distinguishes the MK40 kernel from the
	// process-model kernels.
	UseContinuations bool

	// NoHandoff and NoRecognition are the ablation switches (see Config).
	NoHandoff     bool
	NoRecognition bool

	// DebugChecks, when set, runs the full invariant sweep (Validate plus
	// every registered Invariants func) after each dispatcher step,
	// panicking on the first violation. It may be toggled at any time.
	DebugChecks bool

	// Invariants holds extra structural checks registered by substrates
	// (ipc waiter consistency, dev queue consistency); each returns the
	// first violation found or nil. Run by Validate.
	Invariants []func() error

	// Threads is the registry of all created threads, live and halted.
	Threads []*Thread

	// BlockedHighWater is the most threads ever simultaneously blocked
	// (StateWaiting), sampled at each completed block — the denominator
	// of the paper's space claim, read against Stacks.MaxInUse().
	BlockedHighWater int

	// HandleFault services a user-level page fault (set by the VM
	// substrate). write distinguishes store faults, which must resolve
	// copy-on-write sharing. It must end in a terminal operation.
	HandleFault func(e *Env, addr uint64, write bool)

	// HandleException services a user-level exception (set by the
	// exception substrate). It must end in a terminal operation.
	HandleException func(e *Env, code int)

	// OnHalt, when set, is called from Halt after the current thread
	// enters StateHalted and before the processor moves on; the device/
	// kern layer uses it to kick the reaper thread. The hook must not
	// block or transfer control.
	OnHalt func(t *Thread)

	// UserTime accumulates simulated user-mode CPU time.
	UserTime machine.Duration

	nextThreadID int
	rrNext       int // round-robin cursor over processors

	// userStepFn and dispatchFreshFn are the method values of userStep and
	// dispatchFresh, bound once at construction: assigning a method value
	// (p.pending = k.userStep) allocates a fresh closure each time, and
	// these two assignments sit on the per-dispatch hot path.
	userStepFn      func(*Env)
	dispatchFreshFn func(*Env)
}

// NewKernel builds a kernel for the given configuration. The caller must
// set Sched (and the fault/exception handlers, if workloads use them)
// before Run.
func NewKernel(cfg Config) *Kernel {
	if cfg.Model == nil {
		cfg.Model = machine.NewCostModel(machine.ArchDS3100)
	}
	if cfg.Processors <= 0 {
		cfg.Processors = 1
	}
	clock := machine.NewClock()
	k := &Kernel{
		Clock:            clock,
		Model:            cfg.Model,
		Costs:            machine.TransferCostsFor(cfg.Model, cfg.UseContinuations),
		Acct:             machine.NewAccumulator(cfg.Model, clock),
		Stacks:           machine.NewStackPool(clock, cfg.StackVMMetadataBytes),
		Stats:            &stats.Kernel{},
		UseContinuations: cfg.UseContinuations,
		NoHandoff:        cfg.NoHandoff,
		NoRecognition:    cfg.NoRecognition,
	}
	k.userStepFn = k.userStep
	k.dispatchFreshFn = k.dispatchFresh
	for i := 0; i < cfg.Processors; i++ {
		p := &Processor{ID: i}
		p.env = Env{K: k, P: p}
		k.Procs = append(k.Procs, p)
	}
	return k
}

// ThreadSpec describes a thread to create.
type ThreadSpec struct {
	Name     string
	SpaceID  int
	Program  UserProgram
	Priority int

	// Internal marks a kernel service thread (Table 1 "internal
	// threads"); NoStats excludes the thread from block statistics.
	Internal bool
	NoStats  bool

	// Start is the continuation a continuation-kernel thread begins
	// with; defaults to thread_start (enter user mode and run Program).
	// Kernel service threads supply their work-loop continuation here.
	Start *Continuation

	// StartPM is the process-model start step, used when the kernel does
	// not use continuations (or the thread cannot start via one).
	StartPM func(*Env)
}

// ContThreadStart is the default initial continuation of a user thread:
// transfer out of the kernel into user space.
var ContThreadStart = NewContinuation("thread_start", func(e *Env) {
	e.K.enterUser(e)
})

// NewThread creates a thread in the blocked state; call Setrun (or let a
// kernel path wake it) to start it. In a continuation kernel the new
// thread is stackless, blocked with its start continuation; in a
// process-model kernel it owns a dedicated stack from birth, holding its
// start frame.
func (k *Kernel) NewThread(spec ThreadSpec) *Thread {
	k.nextThreadID++
	t := &Thread{
		ID:       k.nextThreadID,
		Name:     spec.Name,
		State:    StateWaiting,
		Mode:     ModeKernel,
		SpaceID:  spec.SpaceID,
		Program:  spec.Program,
		Priority: spec.Priority,
		Internal: spec.Internal,
		NoStats:  spec.NoStats,
	}
	if t.Name == "" {
		t.Name = fmt.Sprintf("thread-%d", t.ID)
	}
	start := spec.Start
	if start == nil {
		start = ContThreadStart
	}
	if k.UseContinuations && spec.StartPM == nil {
		t.Cont = start
	} else {
		// Dedicated stack with a start frame, the process-model birth.
		s := k.Stacks.Allocate()
		s.SetOwner(machine.OwnerThread)
		t.Stack = s
		step := spec.StartPM
		if step == nil {
			step = start.fn
		}
		s.PushFrame(machine.Frame{
			Resume: resumeStep(step),
			Bytes:  64,
			Label:  "thread-start",
		})
	}
	k.Threads = append(k.Threads, t)
	return t
}

// Setrun makes a blocked thread runnable and queues it.
func (k *Kernel) Setrun(t *Thread) {
	switch t.State {
	case StateWaiting:
		if r := k.Obs; r != nil {
			r.Emit(obs.Wakeup, t.ID, t.Name, "", t.WaitLabel)
		}
		t.State = StateRunnable
		t.WaitLabel = ""
		k.queueRunnable(t)
	case StateRunnable, StateRunning:
		// Wakeup raced ahead of the block; latch it so the block
		// becomes a no-op.
		t.WakeupPending = true
	case StateHalted:
		panic(fmt.Sprintf("core: Setrun on halted %v", t))
	}
}

// queueRunnable places a runnable thread on the run queue exactly once.
func (k *Kernel) queueRunnable(t *Thread) {
	if t.queued {
		panic(fmt.Sprintf("core: %v queued twice", t))
	}
	t.queued = true
	k.Sched.Setrun(t)
}

// noteSelected normalizes a thread the scheduler just handed out: it
// leaves the run queue, and if it was woken while its post-block stack
// disposal was still pending (blocked with a continuation but the
// disposing thread_dispatch has not yet run), the stale stack is freed
// here so the thread resumes cleanly through its continuation.
func (k *Kernel) noteSelected(e *Env, t *Thread) {
	t.queued = false
	if t.Cont != nil && t.Stack != nil {
		s := k.StackDetach(e, t)
		k.Stacks.Free(s)
	}
	t.disposalPending = false
}

// ---------------------------------------------------------------------
// Figure 3: the machine-dependent control transfer interface.
// ---------------------------------------------------------------------

// StackAttach transforms a continuation into a stack: it takes a free
// stack, initializes it so that resuming the thread runs thread_continue
// (which disposes of the previous thread and calls the supplied
// continuation), and attaches it to the thread.
func (k *Kernel) StackAttach(e *Env, t *Thread, s *machine.Stack, cont *Continuation) {
	if t.Stack != nil {
		panic(fmt.Sprintf("core: StackAttach to %v which already has stack %d", t, t.Stack.ID))
	}
	if cont == nil {
		panic("core: StackAttach without a continuation")
	}
	e.Charge(k.Costs.StackAttach)
	k.Stats.StackAttaches++
	if r := k.Obs; r != nil {
		r.Emit(obs.StackAttach, t.ID, t.Name, cont.Name(), "")
	}
	s.SetOwner(machine.OwnerThread)
	t.Stack = s
	s.PushFrame(machine.Frame{
		Resume: resumeStep(func(e *Env) { k.threadContinue(e, cont) }),
		Bytes:  32,
		Label:  "thread_continue",
	})
}

// StackDetach unlinks and returns the thread's kernel stack.
func (k *Kernel) StackDetach(e *Env, t *Thread) *machine.Stack {
	s := t.Stack
	if s == nil {
		panic(fmt.Sprintf("core: StackDetach on stackless %v", t))
	}
	e.Charge(k.Costs.StackDetach)
	if r := k.Obs; r != nil {
		r.Emit(obs.StackDetach, t.ID, t.Name, "", "")
	}
	t.Stack = nil
	s.SetOwner(machine.OwnerTransit)
	return s
}

// StackHandoff moves the current kernel stack from the current thread to
// new, changing address spaces if necessary, and returns running as the
// new thread. The old thread is left stackless; the caller records its
// continuation. Control returns to the caller, now executing in the new
// thread's identity but the old thread's still-live call context — the
// property continuation recognition exploits.
func (k *Kernel) StackHandoff(e *Env, newt *Thread) {
	old := e.Cur()
	if old == nil || old.Stack == nil {
		panic("core: StackHandoff without a current stack")
	}
	if newt.Stack != nil {
		panic(fmt.Sprintf("core: StackHandoff target %v already has a stack", newt))
	}
	cost := k.Costs.StackHandoff.Plus(k.Costs.HandoffRegCopy)
	if old.SpaceID != newt.SpaceID {
		cost.Add(k.Costs.AddressSpaceSwitch)
	}
	e.Charge(cost)
	s := old.Stack
	old.Stack = nil
	newt.Stack = s
	newt.State = StateRunning
	e.P.Prev = old
	e.P.Cur = newt
	newt.QuantumRemaining = k.Sched.Quantum()
	k.Stats.Handoffs++
	if r := k.Obs; r != nil {
		cn := ""
		if newt.Cont != nil {
			cn = newt.Cont.Name()
		}
		r.EmitArg(obs.StackHandoff, newt.ID, newt.Name, cn, "from "+old.Name, old.ID)
	}
}

// CallContinuation calls the supplied continuation after resetting the
// current kernel stack pointer to the stack base, preventing stack
// overflow during a long sequence of continuation calls. It never
// returns.
func (k *Kernel) CallContinuation(e *Env, c *Continuation) {
	if c == nil {
		panic("core: CallContinuation(nil)")
	}
	t := e.Cur()
	e.Charge(k.Costs.CallContinuation)
	k.Stats.ContinuationCalls++
	if t.Cont == c {
		t.Cont = nil
	}
	t.Stack.Reset()
	if r := k.Obs; r != nil {
		r.Emit(obs.ContinuationCall, t.ID, t.Name, c.Name(), c.Name())
	}
	e.P.pending = c.fn
	panic(unwound{})
}

// SwitchContext resumes newt on its preserved kernel stack, changing
// address spaces if necessary. If cont is non-nil the current thread
// blocks with that continuation, no register state is saved, and the
// call never logically returns (the new thread will dispose of the old
// thread's stack). If cont is nil the current thread's register state and
// call chain (resume, occupying frameBytes) are preserved on its stack
// and the thread will continue at resume when rescheduled. In both cases
// this function unwinds to the dispatcher.
func (k *Kernel) SwitchContext(e *Env, cont *Continuation, resume func(*Env), frameBytes int, label string, newt *Thread) {
	old := e.Cur()
	if newt.Stack == nil {
		panic(fmt.Sprintf("core: SwitchContext to stackless %v (attach a stack first)", newt))
	}
	cost := k.Costs.ContextSwitch
	if old.SpaceID != newt.SpaceID {
		cost.Add(k.Costs.AddressSpaceSwitch)
	}
	e.Charge(cost)
	k.Stats.ContextSwitches++
	if k.Obs != nil {
		e.Trace(obs.ContextSwitch, "to "+newt.Name)
	}
	if cont != nil {
		old.Cont = cont
		old.disposalPending = true
		// The old thread's stack stays attached until the new thread
		// runs thread_dispatch, which detaches and frees it — freeing
		// the stack one is standing on is the bug Figure 4's two-step
		// dance avoids.
	} else {
		if resume == nil {
			panic("core: process-model SwitchContext without a resume step")
		}
		if frameBytes <= 0 {
			frameBytes = 128
		}
		old.Stack.PushFrame(machine.Frame{
			Resume: resumeStep(resume),
			Bytes:  frameBytes,
			Label:  label,
		})
	}
	k.resumeOn(e.P, newt, old)
	panic(unwound{})
}

// ThreadSyscallReturn calls the current thread's user system-call
// continuation: control transfers out of the kernel back to user space
// with the given return value. Never returns.
func (k *Kernel) ThreadSyscallReturn(e *Env, retval uint64) {
	t := e.Cur()
	if t.UserReturn != ReturnSyscall {
		panic(fmt.Sprintf("core: ThreadSyscallReturn outside a syscall (%v)", t))
	}
	t.MD.RetVal = retval
	e.Charge(k.Costs.SyscallExit)
	if k.Obs != nil {
		// strconv, not Sprintf: this runs once per syscall when traced.
		e.Trace(obs.KernelExit, "syscall return "+strconv.FormatUint(retval, 10))
	}
	k.enterUser(e)
}

// ThreadSyscallReturnOverride is ThreadSyscallReturn for a registered
// overriding user-level continuation (the §4 LRPC-style extension):
// control leaves the kernel at the override entry instead of the trapped
// context, so the machine-dependent exit skips the register restore
// given by discount. Never returns.
func (k *Kernel) ThreadSyscallReturnOverride(e *Env, retval uint64, discount machine.Cost) {
	t := e.Cur()
	if t.UserReturn != ReturnSyscall {
		panic(fmt.Sprintf("core: override return outside a syscall (%v)", t))
	}
	t.MD.RetVal = retval
	cost := k.Costs.SyscallExit
	sub := func(a, b uint64) uint64 {
		if b > a {
			return 0
		}
		return a - b
	}
	cost.Instrs = sub(cost.Instrs, discount.Instrs)
	cost.Loads = sub(cost.Loads, discount.Loads)
	cost.Stores = sub(cost.Stores, discount.Stores)
	e.Charge(cost)
	e.Trace(obs.KernelExit, "override return")
	k.enterUser(e)
}

// ThreadExceptionReturn calls the current thread's user exception
// continuation: control transfers out of the kernel back to user space
// after an exception, fault or interrupt. Never returns.
func (k *Kernel) ThreadExceptionReturn(e *Env) {
	t := e.Cur()
	if t.UserReturn != ReturnException {
		panic(fmt.Sprintf("core: ThreadExceptionReturn outside an exception (%v)", t))
	}
	e.Charge(k.Costs.ExceptionExit)
	e.Trace(obs.KernelExit, "exception return")
	k.enterUser(e)
}

// enterUser transfers the current thread to user mode and schedules its
// next user action. Terminal.
func (k *Kernel) enterUser(e *Env) {
	t := e.Cur()
	t.Mode = ModeUser
	t.UserReturn = ReturnNone
	e.P.pending = k.userStepFn
	panic(unwound{})
}

// ---------------------------------------------------------------------
// Figure 4: thread_block, thread_handoff, thread_continue,
// thread_dispatch.
// ---------------------------------------------------------------------

// CanHandoff reports whether the stack-handoff fast path is available.
func (k *Kernel) CanHandoff() bool { return k.UseContinuations && !k.NoHandoff }

// Block is the kernel's blocking primitive. The current thread stops
// running; reason classifies the block for Table 1. If the kernel uses
// continuations and cont is non-nil, the thread blocks in the interrupt
// style (stack discarded or handed off). Otherwise it blocks under the
// process model, preserving its stack, and resumes at resume (which
// occupies frameBytes of stack). Never returns.
//
// Callers set the thread's state before blocking: StateWaiting to sleep
// on an event, StateRunnable to yield the processor but stay eligible.
func (k *Kernel) Block(e *Env, reason stats.BlockReason, cont *Continuation, resume func(*Env), frameBytes int, label string) {
	old := e.Cur()
	if !k.UseContinuations {
		cont = nil
	}
	if cont == nil && resume == nil {
		panic("core: Block with neither continuation nor resume step")
	}
	if old.State == StateRunning {
		panic(fmt.Sprintf("core: Block: caller must set wait state of %v first", old))
	}

	// A wakeup that raced ahead of this block: consume it and keep
	// running without a control transfer.
	if old.WakeupPending && old.State == StateWaiting {
		old.WakeupPending = false
		old.State = StateRunning
		if cont != nil {
			k.CallContinuation(e, cont)
		}
		e.P.pending = resume
		panic(unwound{})
	}

	newt := k.Sched.SelectThread(e.P)
	if newt != nil {
		k.noteSelected(e, newt)
	}
	if newt == nil && old.State == StateRunnable {
		// Nothing better to run; keep the processor. No control transfer
		// happens, so nothing is tallied: the stack is neither discarded
		// nor handed off.
		old.State = StateRunning
		old.QuantumRemaining = k.Sched.Quantum()
		if cont != nil {
			k.CallContinuation(e, cont)
		}
		e.P.pending = resume
		panic(unwound{})
	}
	if newt == nil {
		// Processor goes idle: complete the block and park.
		k.blockAndPark(e, reason, cont, resume, frameBytes, label)
	}

	if newt.Cont != nil {
		if cont != nil && !k.NoHandoff {
			// Both sides are continuation-style: hand the stack over
			// and run the new thread's continuation on it.
			k.recordBlock(old, reason, true, cont)
			k.StackHandoff(e, newt)
			old.Cont = cont
			if old.State == StateRunnable {
				k.queueRunnable(old)
			}
			if k.Obs != nil {
				e.Trace(obs.Block, old.Name+" blocked with "+cont.Name())
			}
			k.CallContinuation(e, newt.Cont)
		}
		// Old thread keeps its stack; the new thread needs one.
		st := k.Stacks.Allocate()
		k.StackAttach(e, newt, st, newt.Cont)
		newt.Cont = nil
	}
	if cont != nil {
		k.recordBlock(old, reason, true, cont)
	} else {
		k.recordBlock(old, reason, false, nil)
	}
	k.SwitchContext(e, cont, resume, frameBytes, label, newt)
}

// blockAndPark completes a block when no thread is runnable: the
// processor parks until the run loop finds work. Terminal.
func (k *Kernel) blockAndPark(e *Env, reason stats.BlockReason, cont *Continuation, resume func(*Env), frameBytes int, label string) {
	old := e.Cur()
	if cont != nil {
		old.Cont = cont
		s := k.StackDetach(e, old)
		k.Stacks.Free(s)
		k.recordBlock(old, reason, true, cont)
	} else {
		old.Stack.PushFrame(machine.Frame{
			Resume: resumeStep(resume),
			Bytes:  frameBytes,
			Label:  label,
		})
		k.recordBlock(old, reason, false, nil)
	}
	if old.State == StateRunnable {
		// Yielding with nothing else runnable still parks; requeue so
		// the run loop picks the thread right back up.
		k.queueRunnable(old)
	}
	if k.Obs != nil {
		e.Trace(obs.Block, fmt.Sprintf("%s blocked; processor %d parks", old.Name, e.P.ID))
	}
	e.P.Cur = nil
	e.P.Prev = old
	e.P.pending = nil
	panic(unwound{})
}

// BlockDirected blocks the current thread under the process model and
// transfers directly to newt, bypassing the scheduler — the hand-optimized
// RPC transfer of the MK32 kernel (§3.3: "it context-switches directly
// from the sending thread to the receiving thread"). If newt is stackless
// (possible when a continuation kernel takes this path), a stack is
// attached first. Never returns. The caller must have set the current
// thread's wait state.
func (k *Kernel) BlockDirected(e *Env, reason stats.BlockReason, resume func(*Env), frameBytes int, label string, newt *Thread) {
	old := e.Cur()
	if old.State == StateRunning {
		panic(fmt.Sprintf("core: BlockDirected: caller must set wait state of %v first", old))
	}
	if newt.Cont != nil {
		st := k.Stacks.Allocate()
		k.StackAttach(e, newt, st, newt.Cont)
		newt.Cont = nil
	}
	k.recordBlock(old, reason, false, nil)
	k.SwitchContext(e, nil, resume, frameBytes, label, newt)
}

// ThreadHandoff gives control directly to newt (which must be blocked
// with a continuation), blocking the current thread with cont. Unlike
// Block it RETURNS to the caller, now running as newt but still inside
// the old thread's live call context, so the caller can perform
// continuation recognition before deciding how to finish the transfer
// (§2.4). The caller must have set the old thread's wait state.
func (k *Kernel) ThreadHandoff(e *Env, reason stats.BlockReason, cont *Continuation, newt *Thread) {
	old := e.Cur()
	if !k.CanHandoff() || cont == nil {
		panic("core: ThreadHandoff requires a continuation kernel with handoff enabled")
	}
	if newt.Cont == nil || newt.Stack != nil {
		panic(fmt.Sprintf("core: ThreadHandoff target %v is not continuation-blocked", newt))
	}
	if old.State == StateRunning {
		panic(fmt.Sprintf("core: ThreadHandoff: caller must set wait state of %v first", old))
	}
	k.recordBlock(old, reason, true, cont)
	k.StackHandoff(e, newt)
	old.Cont = cont
	if old.State == StateRunnable {
		k.queueRunnable(old)
	}
	if k.Obs != nil {
		e.Trace(obs.Block, old.Name+" blocked with "+cont.Name())
	}
}

// Recognize performs continuation recognition: if the current thread
// (just handed control) is set to resume at expect, the recognizer claims
// the continuation and returns true, and the caller runs its faster
// inline sequence instead. Otherwise it returns false and the caller
// should CallContinuation the thread's saved continuation.
func (k *Kernel) Recognize(e *Env, expect *Continuation) bool {
	t := e.Cur()
	// The comparison itself is a couple of instructions.
	e.Charge(machine.Cost{Instrs: 3, Loads: 1})
	if k.NoRecognition || t.Cont != expect {
		if r := k.Obs; r != nil {
			actual := "<none>"
			if t.Cont != nil {
				actual = t.Cont.Name()
			}
			r.Emit(obs.RecognitionMiss, t.ID, t.Name, expect.Name(), actual)
		}
		return false
	}
	t.Cont = nil
	k.Stats.Recognitions++
	if r := k.Obs; r != nil {
		r.Emit(obs.Recognition, t.ID, t.Name, expect.Name(), expect.Name())
	}
	return true
}

// threadContinue is Figure 4's thread_continue: dispose of the previous
// thread, then call the new thread's own continuation. It runs as the
// first step on a freshly attached stack.
func (k *Kernel) threadContinue(e *Env, cont *Continuation) {
	k.ThreadDispatch(e, e.P.Prev)
	e.Charge(k.Costs.CallContinuation)
	k.Stats.ContinuationCalls++
	if r := k.Obs; r != nil {
		t := e.Cur()
		r.Emit(obs.ContinuationCall, t.ID, t.Name, cont.Name(), cont.Name())
	}
	cont.fn(e)
}

// ThreadDispatch disposes of the previously running thread from the
// context of the new one: a continuation-blocked old thread loses its
// stack to the free pool; a still-runnable old thread returns to the run
// queue; a halted thread is reaped. The operation is idempotent — if an
// event woke the old thread first and the scheduler already re-dispatched
// it (noteSelected freed the stale stack), nothing is left to do.
func (k *Kernel) ThreadDispatch(e *Env, old *Thread) {
	if old == nil || old == e.Cur() {
		return
	}
	if old.Stack != nil && (old.State == StateHalted || old.Cont != nil) {
		s := k.StackDetach(e, old)
		k.Stacks.Free(s)
	}
	old.disposalPending = false
	if old.State == StateRunnable && !old.queued {
		k.queueRunnable(old)
	}
}

// resumeOn installs newt as the processor's current thread and queues its
// preserved resume step, prefixed by disposal of the old thread.
func (k *Kernel) resumeOn(p *Processor, newt, old *Thread) {
	if r := k.Obs; r != nil {
		r.Emit(obs.Dispatch, newt.ID, newt.Name, "", "")
	}
	p.Prev = old
	p.Cur = newt
	newt.State = StateRunning
	newt.QuantumRemaining = k.Sched.Quantum()
	f := newt.Stack.PopFrame()
	p.pending = f.Resume.(resumeStep)
	p.dispose = old
}

// recordBlock tallies a block unless the thread opted out of statistics,
// and emits the histogram-driving ThreadBlocked event (every completed
// blocking operation passes through here exactly once).
func (k *Kernel) recordBlock(t *Thread, reason stats.BlockReason, discarded bool, cont *Continuation) {
	if t.Internal {
		reason = stats.BlockInternal
	}
	if r := k.Obs; r != nil {
		cn := ""
		if cont != nil {
			cn = cont.Name()
		}
		yield := 0
		if t.State == StateRunnable {
			yield = 1
		}
		r.EmitArg(obs.ThreadBlocked, t.ID, t.Name, cn, reason.String(), yield)
	}
	// Sample the blocked-thread census at its only growth point: the
	// count can rise exactly when a block completes. A linear scan of
	// the registry keeps the counter exact with no per-transition
	// bookkeeping (wakeups are scattered across substrates) and no
	// allocation on the dispatch path.
	blocked := 0
	for _, th := range k.Threads {
		if th.State == StateWaiting {
			blocked++
		}
	}
	if blocked > k.BlockedHighWater {
		k.BlockedHighWater = blocked
	}
	if t.NoStats {
		return
	}
	k.Stats.RecordBlock(reason, discarded)
}

// Halt terminates the current thread and gives up the processor. Never
// returns.
func (k *Kernel) Halt(e *Env) {
	t := e.Cur()
	t.State = StateHalted
	t.Cont = nil
	if k.OnHalt != nil {
		k.OnHalt(t)
	}
	newt := k.Sched.SelectThread(e.P)
	if newt != nil {
		k.noteSelected(e, newt)
	}
	if newt == nil {
		if t.Stack != nil {
			s := k.StackDetach(e, t)
			k.Stacks.Free(s)
		}
		e.P.Cur = nil
		e.P.Prev = t
		e.P.pending = nil
		panic(unwound{})
	}
	if newt.Cont != nil {
		// Hand the dying thread's stack straight to the next one.
		cont := newt.Cont
		k.StackHandoff(e, newt)
		k.CallContinuation(e, cont)
	}
	t.disposalPending = true
	k.resumeOn(e.P, newt, t)
	panic(unwound{})
}

// ---------------------------------------------------------------------
// Kernel entry and the user-mode step.
// ---------------------------------------------------------------------

// KernelEntry performs the user-to-kernel transition: it charges the trap
// cost and records which return-to-user continuation the (simulated)
// machine-dependent trap code created.
func (k *Kernel) KernelEntry(e *Env, kind UserReturnKind, label string) {
	t := e.Cur()
	t.Mode = ModeKernel
	t.UserReturn = kind
	t.KernelEntries++
	if kind == ReturnSyscall {
		e.Charge(k.Costs.SyscallEntry)
	} else {
		e.Charge(k.Costs.ExceptionEntry)
	}
	e.Trace(obs.KernelEntry, label)
}

// TickInterval is the clock-interrupt period: the granularity at which
// AST preemptions catch a running thread (16 ms, a 60 Hz era tick).
const TickInterval = machine.Duration(16_670_000)

// userStep executes one user-mode action of the current thread. It is the
// default pending action whenever a thread is in user mode.
func (k *Kernel) userStep(e *Env) {
	t := e.Cur()
	if t.Program == nil {
		panic(fmt.Sprintf("core: %v has no user program", t))
	}
	if t.PendingBurst > 0 {
		d := t.PendingBurst
		t.PendingBurst = 0
		k.runUserDur(e, t, d)
	}
	act := t.Program.Next(e, t)
	switch act.Kind {
	case ActRun:
		k.runUser(e, t, act.Cycles)
	case ActSyscall:
		k.KernelEntry(e, ReturnSyscall, act.Name)
		act.Invoke(e)
		panic(fmt.Sprintf("core: syscall %q handler returned instead of transferring control", act.Name))
	case ActFault:
		k.KernelEntry(e, ReturnException, fmt.Sprintf("page fault @%#x", act.Addr))
		if k.HandleFault == nil {
			panic("core: no fault handler installed")
		}
		k.HandleFault(e, act.Addr, act.Write)
		panic("core: fault handler returned instead of transferring control")
	case ActException:
		k.KernelEntry(e, ReturnException, fmt.Sprintf("exception %d", act.Code))
		if k.HandleException == nil {
			panic("core: no exception handler installed")
		}
		k.HandleException(e, act.Code)
		panic("core: exception handler returned instead of transferring control")
	case ActYield:
		// thread_switch: voluntary rescheduling from user level. There
		// is no kernel state to save; block with the return-to-user
		// continuation.
		k.KernelEntry(e, ReturnException, "thread_switch")
		t.State = StateRunnable
		k.Block(e, stats.BlockThreadSwitch, ContThreadExceptionReturn,
			resumeExceptionReturn, 96, "thread_switch")
	case ActExit:
		k.KernelEntry(e, ReturnSyscall, "thread_exit")
		k.Halt(e)
	default:
		panic(fmt.Sprintf("core: unknown action kind %v", act.Kind))
	}
}

// resumeExceptionReturn is the process-model counterpart of
// ContThreadExceptionReturn. It captures nothing, so passing it to Block
// does not allocate the way an inline closure over k would.
func resumeExceptionReturn(e *Env) { e.K.ThreadExceptionReturn(e) }

// ContThreadExceptionReturn resumes a thread straight out to user space;
// it is the continuation preempted and yielding threads block with. It is
// assigned in init to break the declaration cycle with userStep.
var ContThreadExceptionReturn *Continuation

func init() {
	ContThreadExceptionReturn = NewContinuation("thread_exception_return", func(e *Env) {
		e.K.ThreadExceptionReturn(e)
	})
}

// runUser burns a user-mode CPU burst, splitting it at a preemption
// point when one arrives first.
func (k *Kernel) runUser(e *Env, t *Thread, cycles uint64) {
	us := k.Acct.ScaleMicros(float64(cycles) / k.Model.MHz)
	k.runUserDur(e, t, machine.Duration(us*1000+0.5))
}

// runUserDur is runUser in time units. Two preemption points interrupt a
// burst: the next clock tick when a higher-priority thread is queued
// (the AST check — handoff scheduling bypasses the run queue, so this is
// what keeps woken daemons from starving behind an RPC ping-pong), and
// quantum expiry when equal-priority work is waiting. An interrupted
// burst's remainder is saved in PendingBurst and resumes after the
// preemption. Terminal.
func (k *Kernel) runUserDur(e *Env, t *Thread, dur machine.Duration) {
	if t.UntilTick <= 0 {
		t.UntilTick = TickInterval
	}
	if pri, ok := k.Sched.MaxQueuedPriority(); ok && pri > t.Priority && dur >= t.UntilTick {
		slice := t.UntilTick
		k.burnUser(t, slice)
		t.PendingBurst = dur - slice
		k.preemptNow(e, t, "ast preempt")
	}
	if dur >= t.QuantumRemaining && k.Sched.HasWork() {
		// Run out the quantum, then the clock interrupt preempts.
		slice := t.QuantumRemaining
		k.burnUser(t, slice)
		t.PendingBurst = dur - slice
		t.QuantumRemaining = 0
		k.preemptNow(e, t, "clock interrupt")
	}
	if dur > t.QuantumRemaining {
		t.QuantumRemaining = 0
	} else {
		t.QuantumRemaining -= dur
	}
	k.burnUser(t, dur)
	e.P.pending = k.userStepFn
	panic(unwound{})
}

// burnUser advances simulated time by a user-mode CPU slice, keeping the
// thread's tick phase.
func (k *Kernel) burnUser(t *Thread, d machine.Duration) {
	k.Clock.Advance(d)
	t.UserTime += d
	k.UserTime += d
	for t.UntilTick <= d {
		t.UntilTick += TickInterval
	}
	t.UntilTick -= d
}

// preemptNow takes the preemption interrupt: the thread blocks with the
// continuation that simply returns it to user space (§2.5), staying
// runnable. Terminal.
func (k *Kernel) preemptNow(e *Env, t *Thread, label string) {
	k.KernelEntry(e, ReturnException, label)
	t.State = StateRunnable
	k.Block(e, stats.BlockPreempt, ContThreadExceptionReturn,
		resumeExceptionReturn, 96, "preempt")
}

// ---------------------------------------------------------------------
// The run loop.
// ---------------------------------------------------------------------

// invoke runs one dispatcher action, absorbing the terminal unwind. Any
// owed thread_dispatch (latched by resumeOn) runs first, from the new
// thread's context, exactly as the closure it replaces did.
func (k *Kernel) invoke(p *Processor, act func(*Env)) {
	e := &p.env
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(unwound); !ok {
				panic(r)
			}
		}
	}()
	if old := p.dispose; old != nil {
		p.dispose = nil
		k.ThreadDispatch(e, old)
	}
	act(e)
}

// dispatchFresh starts work on a parked processor.
func (k *Kernel) dispatchFresh(e *Env) {
	p := e.P
	newt := k.Sched.SelectThread(p)
	if newt == nil {
		p.pending = nil
		panic(unwound{})
	}
	k.noteSelected(e, newt)
	if newt.Cont != nil {
		st := k.Stacks.Allocate()
		k.StackAttach(e, newt, st, newt.Cont)
		newt.Cont = nil
	}
	k.resumeOn(p, newt, nil)
	panic(unwound{})
}

// Step runs one dispatcher action somewhere in the machine: due events
// first, then one processor step. It returns false when the system is
// fully quiescent (no pending actions, no runnable threads, no events
// other than background housekeeping ticks).
func (k *Kernel) Step() bool { return k.step(false) }

// StepNoAdvance runs one dispatcher action that is possible at the
// current simulated time — a due event or a processor step — without ever
// advancing the clock to a future event. It returns false when this
// machine can make no progress until time moves. Multi-machine drivers
// (kern.Cluster) use it to interleave kernels that share a timeline: no
// single machine may jump its clock forward while a peer still has work
// at the present.
func (k *Kernel) StepNoAdvance() bool {
	if ev := k.Clock.PopDue(); ev != nil {
		ev.Fire()
		k.PostDispatchCheck()
		return true
	}
	n := len(k.Procs)
	for i := 0; i < n; i++ {
		p := k.Procs[(k.rrNext+i)%n]
		if p.pending == nil && p.Cur == nil && k.Sched.HasWork() {
			p.pending = k.dispatchFreshFn
		}
		if p.pending != nil {
			k.rrNext = (k.rrNext + i + 1) % n
			act := p.pending
			p.pending = nil
			k.invoke(p, act)
			k.PostDispatchCheck()
			return true
		}
	}
	return false
}

// HasPresentWork reports whether StepNoAdvance would make progress at the
// current simulated time: a due event, a pending dispatcher action, or a
// parked processor with queued work.
func (k *Kernel) HasPresentWork() bool {
	if at, ok := k.Clock.NextEventTime(); ok && at <= k.Clock.Now() {
		return true
	}
	for _, p := range k.Procs {
		if p.pending != nil {
			return true
		}
		if p.Cur == nil && k.Sched.HasWork() {
			return true
		}
	}
	return false
}

// RunHorizon drives this machine alone up to (but not into) horizon: work
// at the present first, then clock advances to pending events strictly
// before the horizon. Present work whose clock has already reached the
// horizon waits for a later round, and a machine with only background
// events pending never advances — the Step(false) quiescence rule. The
// cluster drivers use this as one machine's share of a conservative
// round: nothing another machine does before the horizon can affect this
// machine's execution, so rounds may run concurrently. Returns dispatcher
// steps taken.
func (k *Kernel) RunHorizon(horizon machine.Time) uint64 {
	var steps uint64
	for {
		if k.Clock.Now() < horizon && k.StepNoAdvance() {
			steps++
			continue
		}
		if k.Clock.Now() >= horizon || !k.Clock.HasForeground() {
			return steps
		}
		at, ok := k.Clock.NextEventTime()
		if !ok || at >= horizon {
			return steps
		}
		if ev := k.Clock.AdvanceToNextEvent(); ev != nil {
			ev.Fire()
			k.PostDispatchCheck()
			steps++
		}
	}
}

func (k *Kernel) step(withBackground bool) bool {
	if k.StepNoAdvance() {
		return true
	}
	// Every processor is parked. Jump to the next event if a real one is
	// pending; with only housekeeping ticks left the system is quiescent
	// unless the caller is running to a deadline.
	if withBackground || k.Clock.HasForeground() {
		if ev := k.Clock.AdvanceToNextEvent(); ev != nil {
			ev.Fire()
			k.PostDispatchCheck()
			return true
		}
	}
	return false
}

// Run drives the machine until quiescence or until the simulated clock
// passes deadline (0 means no deadline; with a deadline, background
// housekeeping events keep the clock moving). It returns the number of
// dispatcher steps taken.
func (k *Kernel) Run(deadline machine.Time) uint64 {
	var steps uint64
	for {
		if deadline != 0 && k.Clock.Now() >= deadline {
			return steps
		}
		if !k.step(deadline != 0) {
			return steps
		}
		steps++
	}
}

// LiveThreads counts threads that have not halted.
func (k *Kernel) LiveThreads() int {
	n := 0
	for _, t := range k.Threads {
		if t.State != StateHalted {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Interrupts and thread reaping.
// ---------------------------------------------------------------------

// TakeInterrupt runs a device interrupt handler in interrupt context: on
// the stack of whatever thread the chosen processor is running (or on the
// processor's resident idle stack when it is parked), charging the
// machine-dependent interrupt entry and exit costs. This is the paper's
// per-processor-stack claim extended to its original motivation — an
// interrupt never allocates a kernel stack, because the interrupted
// thread's stack is, in effect, the processor's. The handler may wake
// threads and queue work but must not block, transfer control, or touch
// the stack pool; the zero-allocation invariant is asserted here.
func (k *Kernel) TakeInterrupt(label string, handler func(*Env)) {
	// Interrupts are delivered to the first busy processor (its current
	// stack is borrowed); an idle machine takes them on processor 0.
	p := k.Procs[0]
	for _, q := range k.Procs {
		if q.Cur != nil {
			p = q
			break
		}
	}
	e := &p.env
	before := k.Stacks.InUse()
	k.Stats.Interrupts++
	e.Charge(k.Costs.InterruptEntry)
	e.Trace(obs.Interrupt, label)
	handler(e)
	if k.Stacks.InUse() != before {
		panic(fmt.Sprintf("core: interrupt handler %q changed the stack census (%d -> %d)",
			label, before, k.Stacks.InUse()))
	}
	e.Charge(k.Costs.InterruptExit)
}

// ReapHalted removes halted threads from the registry and returns them;
// the kern reaper thread calls this to drain dead threads. Halted threads
// whose stack disposal has not happened yet (possible on a multiprocessor
// between the halt and the successor's thread_dispatch) are left for the
// next pass.
func (k *Kernel) ReapHalted() []*Thread {
	var reaped []*Thread
	kept := k.Threads[:0]
	for _, t := range k.Threads {
		if t.State == StateHalted && t.Stack == nil {
			reaped = append(reaped, t)
		} else {
			kept = append(kept, t)
		}
	}
	k.Threads = kept
	return reaped
}
