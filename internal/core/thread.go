package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
)

// ThreadState is the scheduling state of a kernel thread.
type ThreadState int

const (
	// StateRunning means the thread is executing on some processor.
	StateRunning ThreadState = iota
	// StateRunnable means the thread is ready and waiting for a
	// processor (on a run queue or about to be placed on one).
	StateRunnable
	// StateWaiting means the thread is blocked on an event.
	StateWaiting
	// StateHalted means the thread has exited and awaits reaping.
	StateHalted
)

func (s ThreadState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateRunnable:
		return "runnable"
	case StateWaiting:
		return "waiting"
	case StateHalted:
		return "halted"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Mode says whether a thread is conceptually executing user code or
// kernel code.
type Mode int

const (
	// ModeUser means the thread's next step is a user action.
	ModeUser Mode = iota
	// ModeKernel means the thread is inside the kernel.
	ModeKernel
)

// UserReturnKind distinguishes the two return-to-user continuations the
// trap machinery creates at kernel entry (§2.1): system calls return a
// value; exceptions and interrupts return none.
type UserReturnKind int

const (
	// ReturnNone means the thread holds no user context (a pure kernel
	// thread).
	ReturnNone UserReturnKind = iota
	// ReturnSyscall means the thread entered via a system call.
	ReturnSyscall
	// ReturnException means the thread entered via an exception, fault
	// or interrupt.
	ReturnException
)

// Thread is the kernel's machine-independent thread structure. Alongside
// scheduling state it carries the two fields the paper adds for
// continuation support: the continuation slot (a 4-byte function pointer)
// and the 28-byte scratch area (§3.4, Table 5).
type Thread struct {
	ID   int
	Name string

	// State is the scheduling state. Transitions are performed by the
	// kernel's control-transfer operations.
	State ThreadState

	// Mode records whether the thread is in user or kernel space.
	Mode Mode

	// Cont is the thread's continuation while blocked in the interrupt
	// style; nil for a thread blocked under the process model or running.
	Cont *Continuation

	// Scratch is the 28-byte save area used with Cont.
	Scratch Scratch

	// Stack is the attached kernel stack; nil while the thread is blocked
	// with a continuation (the stack was discarded or handed off).
	Stack *machine.Stack

	// MD is the machine-dependent register save area. In an MK40-style
	// kernel this is a separate structure (206 bytes on the DS3100); in
	// MK32 it lives on the thread's kernel stack. The simulator keeps it
	// here in both cases and lets the space model charge it per flavor.
	MD machine.Context

	// UserReturn records which return-to-user continuation kernel entry
	// created for the current trap.
	UserReturn UserReturnKind

	// SpaceID identifies the address space (task) the thread belongs to;
	// control transfers between different spaces charge the address-space
	// switch cost. Space 0 is the kernel.
	SpaceID int

	// Program supplies user-mode actions for user threads; nil for
	// threads that live entirely in the kernel.
	Program UserProgram

	// Internal marks kernel-internal service threads (pageout daemon,
	// net handler); their blocks are tallied under Table 1's "internal
	// threads" row.
	Internal bool

	// NoStats excludes a thread (e.g. the idle thread) from block
	// statistics so that idling does not pollute Table 1.
	NoStats bool

	// Priority orders run queues; larger is more urgent.
	Priority int

	// QuantumRemaining is the simulated nanoseconds left before the
	// thread is preempted; the scheduler refreshes it on dispatch.
	QuantumRemaining machine.Duration

	// PendingBurst is the unfinished remainder of a user CPU burst that
	// was interrupted by a preemption; it resumes before the program's
	// next action.
	PendingBurst machine.Duration

	// UntilTick is the user CPU time left until this thread's next clock
	// tick, the point where a pending AST preemption can catch it.
	UntilTick machine.Duration

	// UserTime and KernelEntries are per-thread usage accounting.
	UserTime      machine.Duration
	KernelEntries uint64

	// WakeupPending absorbs a wakeup that races with the block (the
	// classic lost-wakeup guard: wakeups latch, blocks consume).
	WakeupPending bool

	// WaitLabel describes what the thread is blocked on, for diagnostics.
	WaitLabel string

	// Trace is the causal-trace context the thread currently acts under:
	// stamped onto messages it sends (when they carry none) and adopted
	// from messages it receives, so one operation's context follows the
	// control transfers that serve it. The zero context means untraced.
	Trace obs.TraceContext

	// queued tracks run-queue membership so that a thread woken by an
	// event while its post-block disposal is still pending is not queued
	// a second time by thread_dispatch.
	queued bool

	// disposalPending marks the window between a context switch away
	// from this thread and the thread_dispatch that frees its stack.
	disposalPending bool
}

// Queued reports whether the thread is currently on a run queue.
func (t *Thread) Queued() bool { return t.queued }

func (t *Thread) String() string {
	if t == nil {
		return "<no thread>"
	}
	return fmt.Sprintf("thread %d (%s)", t.ID, t.Name)
}

// Blocked reports whether the thread is waiting.
func (t *Thread) Blocked() bool { return t.State == StateWaiting }

// BlockedWith reports whether the thread is blocked in the interrupt
// style at exactly the given continuation — the predicate behind
// continuation recognition.
func (t *Thread) BlockedWith(c *Continuation) bool {
	return t.State == StateWaiting && t.Cont == c
}

// HasStack reports whether a kernel stack is attached.
func (t *Thread) HasStack() bool { return t.Stack != nil }

// UserProgram supplies the simulated user-mode behaviour of a thread: a
// deterministic script or generator that yields one Action at a time.
// The program observes system call results through the thread's saved
// context (MD.RetVal).
type UserProgram interface {
	// Next returns the thread's next user-mode action. It is called each
	// time the thread is about to run in user mode.
	Next(e *Env, t *Thread) Action
}

// ActionKind enumerates the user-mode actions a program can take.
type ActionKind int

const (
	// ActRun burns user CPU for Action.Cycles simulated cycles.
	ActRun ActionKind = iota
	// ActSyscall traps into the kernel and runs Action.Invoke, which must
	// finish with a terminal control-transfer operation.
	ActSyscall
	// ActFault takes a user-level page fault at Action.Addr.
	ActFault
	// ActException raises a user-level exception with Action.Code.
	ActException
	// ActYield voluntarily relinquishes the processor (thread_switch).
	ActYield
	// ActExit terminates the thread.
	ActExit
)

func (k ActionKind) String() string {
	switch k {
	case ActRun:
		return "run"
	case ActSyscall:
		return "syscall"
	case ActFault:
		return "fault"
	case ActException:
		return "exception"
	case ActYield:
		return "yield"
	case ActExit:
		return "exit"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one user-mode step.
type Action struct {
	Kind ActionKind

	// Cycles is the CPU burst length for ActRun, in processor cycles.
	Cycles uint64

	// Invoke is the kernel-mode body of an ActSyscall. It runs after
	// kernel entry and must end in a terminal operation such as
	// ThreadSyscallReturn or ThreadBlock.
	Invoke func(*Env)

	// Name labels the syscall for traces.
	Name string

	// Addr is the faulting address for ActFault.
	Addr uint64

	// Write marks an ActFault as a store (write faults trigger
	// copy-on-write resolution).
	Write bool

	// Code is the exception code for ActException.
	Code int
}

// RunFor is shorthand for a CPU burst action.
func RunFor(cycles uint64) Action { return Action{Kind: ActRun, Cycles: cycles} }

// Syscall is shorthand for a system call action.
func Syscall(name string, invoke func(*Env)) Action {
	return Action{Kind: ActSyscall, Name: name, Invoke: invoke}
}

// Exit is the terminal action.
func Exit() Action { return Action{Kind: ActExit} }

// ProgramFunc adapts a function to the UserProgram interface.
type ProgramFunc func(e *Env, t *Thread) Action

// Next implements UserProgram.
func (f ProgramFunc) Next(e *Env, t *Thread) Action { return f(e, t) }
