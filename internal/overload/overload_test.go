package overload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

func ms(n uint64) machine.Time { return machine.Time(n) * machine.Time(time.Millisecond) }

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string // substring, "" = ok
		check   func(t *testing.T, p Policy)
	}{
		{in: "off", check: func(t *testing.T, p Policy) {
			if p.Enabled {
				t.Fatalf("off parsed as enabled")
			}
		}},
		{in: "on", check: func(t *testing.T, p Policy) {
			if !p.Enabled || p != DefaultPolicy() {
				t.Fatalf("on != DefaultPolicy: %+v", p)
			}
		}},
		{in: "on:deadline=10ms,budget=3", check: func(t *testing.T, p Policy) {
			if p.Deadline != ms(10) || p.Budget != 3 {
				t.Fatalf("params not applied: %+v", p)
			}
			if p.Target != DefaultPolicy().Target {
				t.Fatalf("unset param lost default: %+v", p)
			}
		}},
		{in: "on:target=250us,interval=1ms,refill=3ms,breaker=4,cooldown=8ms", check: func(t *testing.T, p Policy) {
			if p.Target != machine.Time(250*time.Microsecond) || p.Interval != ms(1) ||
				p.Refill != ms(3) || p.Breaker != 4 || p.Cooldown != ms(8) {
				t.Fatalf("params not applied: %+v", p)
			}
		}},
		{in: "", wantErr: "empty spec"},
		{in: "maybe", wantErr: `unknown mode "maybe"`},
		{in: "off:target=1ms", wantErr: "off takes no parameters"},
		{in: "on:target", wantErr: `rule 0 ("target"): want key=value`},
		{in: "on:deadline=1ms,zeal=9", wantErr: `rule 1 ("zeal=9"): unknown key "zeal"`},
		{in: "on:budget=0", wantErr: "bad budget"},
		{in: "on:budget=-2", wantErr: "bad budget"},
		{in: "on:breaker=0", wantErr: "bad breaker"},
		{in: "on:target=fast", wantErr: "bad target"},
		{in: "on:cooldown=-4ms", wantErr: "bad cooldown"},
		{in: "on:deadline=1ms,interval=soon", wantErr: `rule 1 ("interval=soon")`},
	}
	for _, tc := range cases {
		p, err := ParsePolicy(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ParsePolicy(%q): want error containing %q, got ok", tc.in, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParsePolicy(%q): error %q does not contain %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): unexpected error %v", tc.in, err)
			continue
		}
		if tc.check != nil {
			tc.check(t, p)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	p := DefaultPolicy()
	back, err := ParsePolicy(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip changed policy: %+v vs %+v", back, p)
	}
	if got := (Policy{}).String(); got != "off" {
		t.Fatalf("zero policy String = %q, want off", got)
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(2, ms(10))
	now := ms(100)
	if !b.Take(now) || !b.Take(now) {
		t.Fatalf("fresh bucket should grant its capacity")
	}
	if b.Take(now) {
		t.Fatalf("empty bucket granted a token")
	}
	// One refill interval later: exactly one token back.
	now += ms(10)
	if !b.Take(now) {
		t.Fatalf("token not refilled after one interval")
	}
	if b.Take(now) {
		t.Fatalf("more than one token refilled after one interval")
	}
	// A long quiet period clamps at capacity, not unbounded.
	now += ms(1000)
	if got := b.Tokens(now); got != 2 {
		t.Fatalf("tokens after long idle = %d, want cap 2", got)
	}
}

func TestRetryBudgetDeterministic(t *testing.T) {
	run := func() []bool {
		b := NewRetryBudget(3, ms(5))
		var out []bool
		for i := uint64(0); i < 40; i++ {
			out = append(out, b.Take(ms(7*i)))
		}
		return out
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("retry budget diverged at step %d", i)
		}
	}
}

func TestCoDelAdmitsBelowTarget(t *testing.T) {
	c := &CoDel{Target: ms(1), Interval: ms(4)}
	for i := uint64(0); i < 100; i++ {
		now := ms(10 * (i + 1))
		if !c.Admit(now, now-ms(0)) {
			t.Fatalf("rejected an op with zero sojourn at step %d", i)
		}
	}
}

func TestCoDelRejectsAfterSustainedSojourn(t *testing.T) {
	c := &CoDel{Target: ms(1), Interval: ms(4)}
	now := ms(100)
	// First breach admits and arms the interval timer.
	if !c.Admit(now, now-ms(2)) {
		t.Fatalf("first breach must admit")
	}
	// Still inside the grace interval: admit.
	if !c.Admit(now+ms(2), now+ms(2)-ms(2)) {
		t.Fatalf("inside grace interval must admit")
	}
	// Past the interval with sojourn still high: reject.
	if c.Admit(now+ms(5), now+ms(5)-ms(2)) {
		t.Fatalf("sustained sojourn past interval must reject")
	}
	rejects := 0
	for i := uint64(0); i < 40; i++ {
		if !c.Admit(now+ms(5)+ms(i), now+ms(5)+ms(i)-ms(2)) {
			rejects++
		}
	}
	if rejects == 0 || rejects == 40 {
		t.Fatalf("dropping episode should pace rejections, got %d/40", rejects)
	}
	// Sojourn back under target: dropping ends, everything admits.
	if !c.Admit(now+ms(60), now+ms(60)) {
		t.Fatalf("recovered queue must admit")
	}
	if c.Admit(now+ms(60), now+ms(60)) != true {
		t.Fatalf("recovered queue must keep admitting")
	}
}

func TestCoDelPacingAccelerates(t *testing.T) {
	// The inverse-sqrt schedule: gaps between scheduled rejections
	// must shrink (or hold) as the episode continues.
	c := &CoDel{Target: ms(1), Interval: ms(4)}
	base := ms(100)
	c.Admit(base, base-ms(2)) // arm
	var rejectTimes []machine.Time
	for i := uint64(0); i < 400; i++ {
		now := base + ms(4) + machine.Time(i)*machine.Time(200*time.Microsecond)
		if !c.Admit(now, now-ms(2)) {
			rejectTimes = append(rejectTimes, now)
		}
	}
	if len(rejectTimes) < 3 {
		t.Fatalf("expected a sustained dropping episode, got %d rejections", len(rejectTimes))
	}
	first := rejectTimes[1] - rejectTimes[0]
	last := rejectTimes[len(rejectTimes)-1] - rejectTimes[len(rejectTimes)-2]
	if last > first {
		t.Fatalf("pacing should accelerate: first gap %v, last gap %v", first, last)
	}
}

func TestIsqrt(t *testing.T) {
	for _, tc := range []struct{ n, want uint64 }{
		{1, 1}, {2, 1}, {3, 1}, {4, 2}, {8, 2}, {9, 3}, {15, 3}, {16, 4}, {1 << 20, 1 << 10},
	} {
		if got := isqrt(tc.n); got != tc.want {
			t.Errorf("isqrt(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, ms(10), 42)
	now := ms(50)
	if !b.Allow(now) {
		t.Fatalf("fresh breaker must be closed")
	}
	b.Failure(now)
	b.Failure(now)
	if b.State() != BreakerClosed {
		t.Fatalf("two failures below threshold must stay closed")
	}
	if !b.Failure(now) {
		t.Fatalf("threshold failure must report the open edge")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", b.State())
	}
	if b.Allow(now + ms(1)) {
		t.Fatalf("open breaker allowed traffic before cooldown")
	}
	// After cooldown+max jitter the probe must be allowed; jitter is
	// bounded by Cooldown/4.
	probeTime := now + ms(10) + ms(10)/4
	if !b.Allow(probeTime) {
		t.Fatalf("breaker did not allow probe after cooldown+jitter")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe allowed = %v, want half-open", b.State())
	}
	if b.Allow(probeTime) {
		t.Fatalf("half-open breaker allowed a second concurrent probe")
	}
	// Probe fails: back to open, another full cooldown.
	b.Failure(probeTime + ms(1))
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe must reopen")
	}
	if b.Allow(probeTime + ms(2)) {
		t.Fatalf("reopened breaker allowed traffic immediately")
	}
	// Next probe succeeds: closed again.
	probe2 := probeTime + ms(1) + ms(10) + ms(10)/4
	if !b.Allow(probe2) {
		t.Fatalf("second probe not allowed")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow(probe2) {
		t.Fatalf("probe success must close the breaker")
	}
}

func TestBreakerProbeJitterSeeded(t *testing.T) {
	trip := func(seed uint64) machine.Time {
		b := NewBreaker(1, ms(10), seed)
		b.Failure(ms(100))
		// Find the first allowed instant by scanning.
		for t := ms(100); t < ms(200); t += machine.Time(50 * time.Microsecond) {
			if b.Allow(t) {
				return t
			}
		}
		return 0
	}
	a1, a2 := trip(7), trip(7)
	if a1 != a2 || a1 == 0 {
		t.Fatalf("same seed must probe at the same instant: %v vs %v", a1, a2)
	}
	if b := trip(8); b == a1 {
		t.Fatalf("distinct seeds should stagger probes (both at %v)", a1)
	}
}

func TestStatsShed(t *testing.T) {
	s := Stats{Expired: 3, Rejected: 4, Admitted: 10}
	if s.Shed() != 7 {
		t.Fatalf("Shed = %d, want 7", s.Shed())
	}
}
