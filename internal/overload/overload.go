// Package overload implements the end-to-end overload-control subsystem
// threaded through the service stack: absolute deadlines carried in the
// netmsg header and checked on dequeue at every tier, per-client retry
// budgets (token buckets) replacing unbounded retransmit loops, a
// CoDel-style queue-sojourn admission controller at the cache and KV
// tiers, and a frontend circuit breaker that converts deep brownouts
// into fast local errors.
//
// Everything here is deterministic: all state advances on the simulated
// clock only, the circuit breaker's probe jitter comes from a seeded
// SplitMix64 stream, and none of the controllers allocate on the
// steady-state path. With Policy.Enabled false every control degenerates
// to "admit", so runs without -overload are byte-identical to builds
// that predate this package.
//
// The shedding vocabulary is deliberate and mirrored in the per-tier
// Stats counters:
//
//   - Expired: the op's absolute deadline had already passed when a tier
//     dequeued it. Servicing it would be pure waste — the client has
//     long since timed out and retried — so the tier drops it on the
//     floor (a typed Expired reply if a reply port is attached).
//   - Rejected: the op was alive but the tier refused admission — CoDel
//     sojourn over target, retry budget empty, or breaker open. The
//     client gets a typed fast-fail instead of a slow timeout.
//
// Both are definite no-ops: a tier never applies state and then sheds,
// so the linearizability checker can exclude them outright.
package overload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
)

// Policy is the parsed -overload flag: one knob set shared by every
// tier of a run. The zero value (Enabled false) disables all controls.
type Policy struct {
	Enabled bool

	// Deadline is the per-op budget stamped by the client at issue
	// time: absolute deadline = issue time + Deadline.
	Deadline machine.Duration

	// Target and Interval parameterize the CoDel admission controller:
	// reject admissions when queue sojourn has stayed above Target for
	// a full Interval.
	Target   machine.Duration
	Interval machine.Duration

	// Budget and Refill parameterize the per-client retry token
	// bucket: Budget tokens capacity, one token back every Refill.
	Budget uint64
	Refill machine.Duration

	// Breaker is the consecutive-failure count that trips the frontend
	// circuit breaker open; Cooldown is how long it stays open before
	// scheduling a half-open probe.
	Breaker  int
	Cooldown machine.Duration
}

// DefaultPolicy is "-overload on" with no extra parameters: tuned for
// the canonical storm scenario's millisecond-scale RPCs.
func DefaultPolicy() Policy {
	return Policy{
		Enabled:  true,
		Deadline: machine.Duration(10 * time.Millisecond),
		Target:   machine.Duration(time.Millisecond),
		Interval: machine.Duration(5 * time.Millisecond),
		Budget:   8,
		Refill:   machine.Duration(5 * time.Millisecond),
		Breaker:  6,
		Cooldown: machine.Duration(15 * time.Millisecond),
	}
}

// ParsePolicy parses the -overload flag value: "off", "on", or
// "on:key=value,..." where keys are deadline, target, interval, budget,
// refill, breaker, cooldown. Malformed rules are reported by index so
// the offending clause is nameable from the exit-2 message.
func ParsePolicy(s string) (Policy, error) {
	head, rest, hasParams := strings.Cut(s, ":")
	switch head {
	case "off":
		if hasParams {
			return Policy{}, fmt.Errorf("overload: %q: off takes no parameters", s)
		}
		return Policy{}, nil
	case "on":
		// fall through to parameter parsing
	case "":
		return Policy{}, fmt.Errorf("overload: empty spec (want off, on, or on:key=value,...)")
	default:
		return Policy{}, fmt.Errorf("overload: unknown mode %q (want off or on)", head)
	}
	p := DefaultPolicy()
	if !hasParams {
		return p, nil
	}
	for i, rule := range strings.Split(rest, ",") {
		fail := func(format string, args ...any) (Policy, error) {
			return Policy{}, fmt.Errorf("overload: rule %d (%q): %s", i, rule, fmt.Sprintf(format, args...))
		}
		key, val, ok := strings.Cut(rule, "=")
		if !ok {
			return fail("want key=value")
		}
		dur := func() (machine.Duration, error) {
			d, err := time.ParseDuration(val)
			if err != nil {
				return 0, err
			}
			if d <= 0 {
				return 0, fmt.Errorf("must be positive")
			}
			return machine.Duration(d), nil
		}
		switch key {
		case "deadline":
			d, err := dur()
			if err != nil {
				return fail("bad deadline: %v", err)
			}
			p.Deadline = d
		case "target":
			d, err := dur()
			if err != nil {
				return fail("bad target: %v", err)
			}
			p.Target = d
		case "interval":
			d, err := dur()
			if err != nil {
				return fail("bad interval: %v", err)
			}
			p.Interval = d
		case "budget":
			n, err := strconv.ParseUint(val, 10, 32)
			if err != nil || n == 0 {
				return fail("bad budget %q (want positive integer)", val)
			}
			p.Budget = n
		case "refill":
			d, err := dur()
			if err != nil {
				return fail("bad refill: %v", err)
			}
			p.Refill = d
		case "breaker":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fail("bad breaker %q (want positive integer)", val)
			}
			p.Breaker = n
		case "cooldown":
			d, err := dur()
			if err != nil {
				return fail("bad cooldown: %v", err)
			}
			p.Cooldown = d
		default:
			return fail("unknown key %q", key)
		}
	}
	return p, nil
}

// String renders the policy in flag syntax (for reports).
func (p Policy) String() string {
	if !p.Enabled {
		return "off"
	}
	return fmt.Sprintf("on:deadline=%s,target=%s,interval=%s,budget=%d,refill=%s,breaker=%d,cooldown=%s",
		fmtDur(p.Deadline), fmtDur(p.Target), fmtDur(p.Interval),
		p.Budget, fmtDur(p.Refill), p.Breaker, fmtDur(p.Cooldown))
}

func fmtDur(d machine.Duration) string {
	if d%machine.Duration(time.Millisecond) == 0 {
		return fmt.Sprintf("%dms", d/machine.Duration(time.Millisecond))
	}
	if d%machine.Duration(time.Microsecond) == 0 {
		return fmt.Sprintf("%dus", d/machine.Duration(time.Microsecond))
	}
	return fmt.Sprintf("%dns", uint64(d))
}

// Stats is one tier's shedding scoreboard. Counters only ever
// increment; reports subtract snapshots for windowed rates.
type Stats struct {
	Admitted    uint64 // ops that passed every control at this tier
	Expired     uint64 // dequeued past their deadline, dropped
	Rejected    uint64 // CoDel sojourn over target, fast-failed
	BudgetDenied uint64 // retry wanted but token bucket empty
	BreakerFastFail uint64 // op refused locally while breaker open
	BreakerOpens uint64 // closed->open transitions
}

// Shed is Expired+Rejected: work this tier refused to service.
func (s *Stats) Shed() uint64 { return s.Expired + s.Rejected }

// RetryBudget is a per-client integer token bucket: Take spends a
// token per retry attempt, and tokens flow back at one per Refill of
// simulated time. All arithmetic is integral, so two clients with the
// same timestamps always agree.
type RetryBudget struct {
	Cap    uint64
	Refill machine.Duration

	tokens uint64
	last   machine.Time // last refill accrual instant
}

// NewRetryBudget returns a full bucket.
func NewRetryBudget(cap uint64, refill machine.Duration) *RetryBudget {
	return &RetryBudget{Cap: cap, Refill: refill, tokens: cap}
}

func (b *RetryBudget) accrue(now machine.Time) {
	if b.Refill == 0 || now <= b.last {
		return
	}
	earned := uint64(now-b.last) / uint64(b.Refill)
	if earned == 0 {
		return
	}
	b.last += machine.Time(earned * uint64(b.Refill))
	b.tokens += earned
	if b.tokens > b.Cap {
		b.tokens = b.Cap
	}
}

// Take spends one token if available. The first call anchors the
// refill clock.
func (b *RetryBudget) Take(now machine.Time) bool {
	if b.last == 0 {
		b.last = now
	}
	b.accrue(now)
	if b.tokens == 0 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current balance after accrual (for reports).
func (b *RetryBudget) Tokens(now machine.Time) uint64 {
	b.accrue(now)
	return b.tokens
}

// CoDel is the queue-sojourn admission controller. Classic CoDel drops
// from the head of a standing queue; here the same control law gates
// admission: once sojourn (dequeue time minus enqueue time, straight
// from the obs queue-segment attribution) has stayed above Target for a
// full Interval, the tier starts rejecting, and the rejection rate
// accelerates by the inverse-sqrt schedule until sojourn drops below
// Target again.
type CoDel struct {
	Target   machine.Duration
	Interval machine.Duration

	firstAbove machine.Time // when sojourn first exceeded Target (0 = below)
	dropNext   machine.Time // next scheduled rejection while dropping
	count      uint64       // rejections in the current dropping episode
	dropping   bool
}

// Admit decides whether an op dequeued at now that was enqueued at
// enqueuedAt may be serviced. A false return means the tier should
// fast-fail it as Rejected.
func (c *CoDel) Admit(now, enqueuedAt machine.Time) bool {
	sojourn := now - enqueuedAt
	if sojourn < machine.Time(c.Target) {
		// Below target: leave dropping state, admit everything.
		c.firstAbove = 0
		c.dropping = false
		return true
	}
	if c.firstAbove == 0 {
		// First breach: give the queue one Interval to drain.
		c.firstAbove = now + machine.Time(c.Interval)
		return true
	}
	if now < c.firstAbove {
		return true
	}
	if !c.dropping {
		// Sojourn stayed above target for a full interval: start
		// rejecting. Resume the previous episode's count if we
		// re-entered quickly (standard CoDel hysteresis, simplified
		// to a restart here for determinism and clarity).
		c.dropping = true
		c.count = 1
		c.dropNext = now + c.next()
		return false
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext = now + c.next()
		return false
	}
	return true
}

// next is Interval/sqrt(count), the CoDel pacing schedule, with an
// integer sqrt so identical inputs always pace identically.
func (c *CoDel) next() machine.Time {
	return machine.Time(uint64(c.Interval) / isqrt(c.count))
}

// isqrt is floor(sqrt(n)) by Newton's method on integers, n >= 1.
func isqrt(n uint64) uint64 {
	if n < 2 {
		return 1
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}

// BreakerState is the circuit breaker's three-state machine.
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is the frontend circuit breaker: Threshold consecutive
// failures trip it open; after Cooldown (plus deterministic seeded
// jitter, so a fleet of breakers doesn't probe in lockstep) it lets a
// single half-open probe through; a probe success closes it, a probe
// failure re-opens it for another cooldown.
type Breaker struct {
	Threshold int
	Cooldown  machine.Duration

	state   BreakerState
	fails   int
	probeAt machine.Time
	rng     uint64 // SplitMix64 state for probe jitter
}

// NewBreaker seeds the probe-jitter stream; distinct clients should use
// distinct seeds.
func NewBreaker(threshold int, cooldown machine.Duration, seed uint64) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown, rng: seed}
}

// State reports the current state (for reports and tests).
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether an attempt may go out now. While open it
// returns false until the jittered probe time, then transitions to
// half-open and lets exactly one probe through.
func (b *Breaker) Allow(now machine.Time) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.probeAt {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	case BreakerHalfOpen:
		// One probe is already in flight; hold further traffic.
		return false
	}
	return true
}

// Success records a completed attempt: resets the failure run and
// closes the breaker from half-open.
func (b *Breaker) Success() {
	b.fails = 0
	b.state = BreakerClosed
}

// Failure records a failed attempt (timeout, typed rejection). It
// reports true when this failure tripped the breaker open — the caller
// counts BreakerOpens from that edge.
func (b *Breaker) Failure(now machine.Time) bool {
	switch b.state {
	case BreakerHalfOpen:
		// Probe failed: straight back to open for another cooldown.
		b.open(now)
		return false
	case BreakerOpen:
		return false
	}
	b.fails++
	if b.fails >= b.Threshold {
		b.open(now)
		return true
	}
	return false
}

func (b *Breaker) open(now machine.Time) {
	b.state = BreakerOpen
	b.fails = 0
	// Jitter up to Cooldown/4 so distinct breakers (distinct seeds)
	// stagger their probes.
	jitter := machine.Time(0)
	if b.Cooldown >= 4 {
		jitter = machine.Time(b.next() % uint64(b.Cooldown/4))
	}
	b.probeAt = now + machine.Time(b.Cooldown) + jitter
}

// next advances the SplitMix64 stream.
func (b *Breaker) next() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
