package ipc

import "repro/internal/core"

// ReleaseThread drops every IPC resource still charged to a thread that
// will never run again: a halted thread about to be reaped, or one
// killed by thread_abort racing its own exit. Delivered and received
// message buffers go back to the free pool, a pending receive error is
// forgotten, and any waiter registration still naming the thread is
// cancelled with its callout disarmed — which also makes the
// registration recyclable (freeWaiter refuses registrations holding an
// armed timeout, so before this an abnormally terminated receiver could
// strand its registration for the garbage collector).
func (x *IPC) ReleaseThread(t *core.Thread) {
	if m := x.delivered[t.ID]; m != nil {
		delete(x.delivered, t.ID)
		x.FreeMessage(m)
	}
	if m := x.received[t.ID]; m != nil {
		delete(x.received, t.ID)
		x.FreeMessage(m)
	}
	delete(x.rcvError, t.ID)
	for _, p := range x.ports {
		x.cancelRegistrations(p.waiters, t)
		x.cancelRegistrations(p.sendWaiters, t)
	}
	for _, ps := range x.sets {
		x.cancelRegistrations(ps.waiters, t)
	}
}

// cancelRegistrations cancels every registration naming t on one waiter
// list, disarming callouts. The entries stay in place — the normal pop
// and sweep paths recycle cancelled registrations.
func (x *IPC) cancelRegistrations(list []*rcvWaiter, t *core.Thread) {
	for _, w := range list {
		if w.t != t {
			continue
		}
		if w.timeout != nil {
			x.K.Clock.Cancel(w.timeout)
			w.timeout = nil
		}
		w.cancelled = true
	}
}

// Residue counts IPC state still attached to a thread: pending message
// buffers, a saved receive error, and live waiter registrations. It is
// zero after ReleaseThread; the kern reaper asserts this census on every
// reap so a leak on the abnormal-termination path fails loudly.
func (x *IPC) Residue(t *core.Thread) int {
	n := 0
	if x.delivered[t.ID] != nil {
		n++
	}
	if x.received[t.ID] != nil {
		n++
	}
	if _, ok := x.rcvError[t.ID]; ok {
		n++
	}
	live := func(list []*rcvWaiter) {
		for _, w := range list {
			if !w.cancelled && w.t == t {
				n++
			}
		}
	}
	for _, p := range x.ports {
		live(p.waiters)
		live(p.sendWaiters)
	}
	for _, ps := range x.sets {
		live(ps.waiters)
	}
	return n
}

// LivePorts counts undestroyed ports — the port census captured into a
// crash panic record.
func (x *IPC) LivePorts() int {
	n := 0
	for _, p := range x.ports {
		if !p.dead {
			n++
		}
	}
	return n
}
