package ipc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/machine"
	"repro/internal/sched"
)

func newIPCKernel(t *testing.T, style ipc.Style) (*core.Kernel, *ipc.IPC) {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: style == ipc.StyleMK40,
	})
	k.Sched = sched.New(0)
	return k, ipc.New(k, style)
}

// rpcClient issues count null RPCs to server, then exits.
type rpcClient struct {
	x      *ipc.IPC
	server *ipc.Port
	reply  *ipc.Port
	count  int
	done   int
	// replies collects the bodies of received replies.
	replies []any
}

func (c *rpcClient) Next(e *core.Env, t *core.Thread) core.Action {
	if m := c.x.Received(t); m != nil {
		c.replies = append(c.replies, m.Body)
	}
	if c.done >= c.count {
		return core.Exit()
	}
	c.done++
	return core.Syscall("mach_msg(rpc)", func(e *core.Env) {
		req := c.x.NewMessage(100, ipc.HeaderBytes, c.done, c.reply)
		c.x.MachMsg(e, ipc.MsgOptions{
			Send:        req,
			SendTo:      c.server,
			ReceiveFrom: c.reply,
		})
	})
}

// rpcServer receives on port and answers every request, forever.
type rpcServer struct {
	x    *ipc.IPC
	port *ipc.Port
	// handled counts requests served.
	handled int
	// maxSize, when nonzero, makes every receive use the slow path.
	maxSize int
	pending *ipc.Message
}

func (s *rpcServer) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.x.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		// First entry: block receiving.
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port, MaxSize: s.maxSize})
		})
	}
	req := s.pending
	s.pending = nil
	s.handled++
	return core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
		reply := s.x.NewMessage(200, ipc.HeaderBytes, req.Body, nil)
		s.x.MachMsg(e, ipc.MsgOptions{
			Send:        reply,
			SendTo:      req.Reply,
			ReceiveFrom: s.port,
			MaxSize:     s.maxSize,
		})
	})
}

// runRPC wires a client/server pair and runs to quiescence.
func runRPC(t *testing.T, style ipc.Style, rpcs, maxSize int) (*core.Kernel, *ipc.IPC, *rpcClient, *rpcServer) {
	t.Helper()
	k, x := newIPCKernel(t, style)
	serverPort := x.NewPort("server")
	replyPort := x.NewPort("reply")
	srv := &rpcServer{x: x, port: serverPort, maxSize: maxSize}
	cli := &rpcClient{x: x, server: serverPort, reply: replyPort, count: rpcs}
	st := k.NewThread(core.ThreadSpec{Name: "server", SpaceID: 2, Program: srv})
	ct := k.NewThread(core.ThreadSpec{Name: "client", SpaceID: 1, Program: cli})
	k.Setrun(st)
	k.Setrun(ct)
	k.Run(0)
	if ct.State != core.StateHalted {
		t.Fatalf("client did not finish: %v", ct.State)
	}
	return k, x, cli, srv
}

func TestNullRPCMK40FastPath(t *testing.T) {
	k, x, cli, srv := runRPC(t, ipc.StyleMK40, 10, 0)
	if srv.handled != 10 || len(cli.replies) != 10 {
		t.Fatalf("handled=%d replies=%d", srv.handled, len(cli.replies))
	}
	// Replies carry the request bodies back, in order.
	for i, b := range cli.replies {
		if b.(int) != i+1 {
			t.Fatalf("reply %d = %v", i, b)
		}
	}
	// The fast path must dominate: after the first exchange the pair is
	// in steady state with handoff + recognition on every transfer.
	if x.FastRPCs < 15 {
		t.Fatalf("FastRPCs = %d, want >= 15 of ~20 transfers", x.FastRPCs)
	}
	if k.Stats.Recognitions < 15 {
		t.Fatalf("Recognitions = %d", k.Stats.Recognitions)
	}
	if k.Stats.Handoffs < 15 {
		t.Fatalf("Handoffs = %d", k.Stats.Handoffs)
	}
}

func TestNullRPCMK40BypassesQueue(t *testing.T) {
	k, x, _, _ := runRPC(t, ipc.StyleMK40, 20, 0)
	_ = k
	if x.QueuedSends > 2 {
		t.Fatalf("fast path queued %d messages", x.QueuedSends)
	}
}

func TestNullRPCMK40SteadyStateStacks(t *testing.T) {
	k, _, _, _ := runRPC(t, ipc.StyleMK40, 50, 0)
	// Client and server share one stack via handoff; the high-water mark
	// stays tiny.
	if k.Stacks.MaxInUse() > 2 {
		t.Fatalf("stack high water = %d", k.Stacks.MaxInUse())
	}
}

func TestNullRPCMK32DirectSwitch(t *testing.T) {
	k, x, cli, srv := runRPC(t, ipc.StyleMK32, 10, 0)
	if srv.handled != 10 || len(cli.replies) != 10 {
		t.Fatalf("handled=%d replies=%d", srv.handled, len(cli.replies))
	}
	if x.DirectSwitches < 15 {
		t.Fatalf("DirectSwitches = %d", x.DirectSwitches)
	}
	if k.Stats.Handoffs != 0 {
		t.Fatalf("MK32 performed %d stack handoffs", k.Stats.Handoffs)
	}
	if x.QueuedSends > 2 {
		t.Fatalf("MK32 fast path queued %d messages", x.QueuedSends)
	}
	if k.Stats.ContextSwitches < 15 {
		t.Fatalf("ContextSwitches = %d", k.Stats.ContextSwitches)
	}
}

func TestNullRPCMach25Queues(t *testing.T) {
	k, x, cli, srv := runRPC(t, ipc.StyleMach25, 10, 0)
	if srv.handled != 10 || len(cli.replies) != 10 {
		t.Fatalf("handled=%d replies=%d", srv.handled, len(cli.replies))
	}
	// Every send goes through the queue in the hybrid kernel.
	if x.QueuedSends < 20 {
		t.Fatalf("QueuedSends = %d, want >= 20", x.QueuedSends)
	}
	if x.DirectSwitches != 0 || k.Stats.Handoffs != 0 {
		t.Fatalf("Mach 2.5 took a fast path: direct=%d handoffs=%d",
			x.DirectSwitches, k.Stats.Handoffs)
	}
}

func TestRPCLatencyOrdering(t *testing.T) {
	// The paper's Table 3 shape: MK40 < MK32 < Mach 2.5 for null RPC.
	perRPC := func(style ipc.Style) float64 {
		k, _, _, _ := runRPC(t, style, 100, 0)
		return k.Clock.Now().Micros() / 100
	}
	mk40 := perRPC(ipc.StyleMK40)
	mk32 := perRPC(ipc.StyleMK32)
	m25 := perRPC(ipc.StyleMach25)
	if !(mk40 < mk32 && mk32 < m25) {
		t.Fatalf("latency ordering violated: MK40=%.1fus MK32=%.1fus Mach2.5=%.1fus", mk40, mk32, m25)
	}
}

func TestSlowReceiveDefeatsRecognition(t *testing.T) {
	// A server with a size constraint blocks with the slow continuation;
	// the sender hands off but cannot recognize, so the receiver's own
	// continuation completes the transfer.
	k, x, cli, srv := runRPC(t, ipc.StyleMK40, 10, 4096)
	if srv.handled != 10 || len(cli.replies) != 10 {
		t.Fatalf("handled=%d replies=%d", srv.handled, len(cli.replies))
	}
	if x.FastRPCs > 10 {
		t.Fatalf("FastRPCs = %d; constrained receives must not all fast-path", x.FastRPCs)
	}
	if x.SlowReceives < 9 {
		t.Fatalf("SlowReceives = %d", x.SlowReceives)
	}
	// Handoff still happens even when recognition fails (§2.4).
	if k.Stats.Handoffs < 10 {
		t.Fatalf("Handoffs = %d", k.Stats.Handoffs)
	}
}

func TestRcvTooLarge(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("p")
	var code uint64
	recvProg := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.KernelEntries > 0 {
			code = th.MD.RetVal
			return core.Exit()
		}
		return core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port, MaxSize: 64})
		})
	})
	rt := k.NewThread(core.ThreadSpec{Name: "recv", SpaceID: 1, Program: recvProg})
	sendProg := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.KernelEntries > 0 {
			return core.Exit()
		}
		return core.Syscall("send", func(e *core.Env) {
			big := x.NewMessage(1, 1024, "big", nil)
			x.MachMsg(e, ipc.MsgOptions{Send: big, SendTo: port})
		})
	})
	st := k.NewThread(core.ThreadSpec{Name: "send", SpaceID: 2, Program: sendProg})
	k.Setrun(rt)
	k.Setrun(st)
	k.Run(0)
	if code != ipc.RcvTooLarge {
		t.Fatalf("receive returned %#x, want MACH_RCV_TOO_LARGE", code)
	}
}

func TestSendOnlyQueuesWithoutReceiver(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("mbox")
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.KernelEntries >= 3 {
			return core.Exit()
		}
		return core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(uint32(th.KernelEntries), ipc.HeaderBytes, int(th.KernelEntries), nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		})
	})
	st := k.NewThread(core.ThreadSpec{Name: "producer", SpaceID: 1, Program: prog})
	k.Setrun(st)
	k.Run(0)
	if port.QueueLen() != 3 {
		t.Fatalf("queue length = %d", port.QueueLen())
	}
	if port.Enqueued != 3 {
		t.Fatalf("Enqueued = %d", port.Enqueued)
	}
}

func TestQueuedMessagesDrainFIFO(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("mbox")
	const n = 5
	prodProg := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.KernelEntries >= n {
			return core.Exit()
		}
		seq := int(th.KernelEntries)
		return core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, seq, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		})
	})
	var got []int
	consProg := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			got = append(got, m.Body.(int))
		}
		if len(got) >= n {
			return core.Exit()
		}
		return core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		})
	})
	prod := k.NewThread(core.ThreadSpec{Name: "producer", SpaceID: 1, Program: prodProg})
	cons := k.NewThread(core.ThreadSpec{Name: "consumer", SpaceID: 2, Program: consProg})
	k.Setrun(prod)
	k.Setrun(cons)
	k.Run(0)
	if len(got) != n {
		t.Fatalf("consumed %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestReceiversAreStacklessWhileBlocked(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("idle")
	var servers []*core.Thread
	for i := 0; i < 20; i++ {
		prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			return core.Syscall("recv", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			})
		})
		th := k.NewThread(core.ThreadSpec{Name: "srv", SpaceID: i + 1, Program: prog})
		servers = append(servers, th)
		k.Setrun(th)
	}
	k.Run(0)
	for _, th := range servers {
		if th.State != core.StateWaiting {
			t.Fatalf("%v state = %v", th, th.State)
		}
		if th.HasStack() {
			t.Fatalf("%v holds a stack while blocked in receive", th)
		}
		if !th.BlockedWith(x.ContMsgContinue) {
			t.Fatalf("%v blocked with %v", th, th.Cont)
		}
	}
	if k.Stacks.InUse() != 0 {
		t.Fatalf("stacks in use = %d", k.Stacks.InUse())
	}
	if port.Waiters() != 20 {
		t.Fatalf("waiters = %d", port.Waiters())
	}
}

func TestStyleKernelMismatchPanics(t *testing.T) {
	k := core.NewKernel(core.Config{UseContinuations: false})
	k.Sched = sched.New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("style mismatch did not panic")
		}
	}()
	ipc.New(k, ipc.StyleMK40)
}

func TestMessageSizeFloor(t *testing.T) {
	_, x := newIPCKernel(t, ipc.StyleMK40)
	m := x.NewMessage(1, 3, nil, nil)
	if m.Size != ipc.HeaderBytes {
		t.Fatalf("Size = %d, want header floor", m.Size)
	}
}

func TestFastPathSharedStackCount(t *testing.T) {
	// Figure 2's essence: during a fast RPC the sender's stack becomes
	// the receiver's; there is no moment with two stacks for the pair.
	k, _, _, _ := runRPC(t, ipc.StyleMK40, 30, 0)
	if k.Stacks.TotalStacks() > 2 {
		t.Fatalf("created %d stacks for a 2-thread RPC pair", k.Stacks.TotalStacks())
	}
}

// Property: with multiple senders to one port, each sender's messages
// are received in its send order (per-sender FIFO), none lost, none
// duplicated — across random sender/receiver interleavings.
func TestPerSenderFIFOProperty(t *testing.T) {
	f := func(seed uint32, senderCount uint8) bool {
		nSenders := int(senderCount%3) + 2
		perSender := 6
		k, x := newIPCKernel(t, ipc.StyleMK40)
		port := x.NewPort("mbox")
		port.QueueLimit = 3 // exercise sender blocking too

		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}

		for s := 0; s < nSenders; s++ {
			sent := 0
			sid := s
			prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
				if sent >= perSender {
					return core.Exit()
				}
				sent++
				seq := sent
				burst := uint64(100 + next(5000))
				if seq%2 == 0 {
					return core.RunFor(burst)
				}
				return core.Syscall("send", func(e *core.Env) {
					m := x.NewMessage(uint32(sid), ipc.HeaderBytes, [2]int{sid, seq}, nil)
					x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
				})
			})
			k.Setrun(k.NewThread(core.ThreadSpec{Name: "s", SpaceID: s + 1, Program: prog}))
		}
		want := nSenders * ((perSender + 1) / 2)
		var got [][2]int
		cons := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			if m := x.Received(th); m != nil {
				got = append(got, m.Body.([2]int))
			}
			if len(got) >= want {
				return core.Exit()
			}
			return core.Syscall("recv", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			})
		})
		k.Setrun(k.NewThread(core.ThreadSpec{Name: "c", SpaceID: 99, Program: cons}))
		k.Run(0)

		if len(got) != want {
			return false
		}
		last := map[int]int{}
		for _, pair := range got {
			sid, seq := pair[0], pair[1]
			if seq <= last[sid] {
				return false
			}
			last[sid] = seq
		}
		return k.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
