package ipc_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/machine"
)

// selfWaiter is a thread that deadlocks on itself: it first receives one
// primed message from its own port (becoming the port's last receiver,
// hence its owner in the wait-for graph), then sends a request to that
// same port and blocks awaiting the reply. The only thread obligated to
// drain the port and answer is itself — a one-node cycle.
type selfWaiter struct {
	x     *ipc.IPC
	port  *ipc.Port
	reply *ipc.Port
	step  int
}

func (s *selfWaiter) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.x.Received(t); m != nil {
		s.x.FreeMessage(m)
	}
	switch s.step {
	case 0:
		s.step = 1
		return core.Syscall("mach_msg(prime-recv)", func(e *core.Env) {
			s.x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	default:
		s.step = 2
		return core.Syscall("mach_msg(self-rpc)", func(e *core.Env) {
			req := s.x.NewMessage(7, ipc.HeaderBytes, nil, s.reply)
			s.x.MachMsg(e, ipc.MsgOptions{
				Send: req, SendTo: s.port, ReceiveFrom: s.reply,
			})
		})
	}
}

// primeSend starts a throwaway thread that sends one no-reply message to
// the port, so the receiver under test becomes the port's last receiver.
func primeSend(k *core.Kernel, x *ipc.IPC, to *ipc.Port) {
	sent := false
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent {
			return core.Exit()
		}
		sent = true
		return core.Syscall("mach_msg(prime)", func(e *core.Env) {
			m := x.NewMessage(9, ipc.HeaderBytes, nil, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: to})
		})
	})
	k.Setrun(k.NewThread(core.ThreadSpec{Name: "primer", SpaceID: 90, Program: prog}))
}

// TestFindDeadlockSelfWait: the smallest possible blocking cycle — a
// thread waiting for a reply that only it could send — must be reported
// as a one-entry cycle naming that thread and its continuation.
func TestFindDeadlockSelfWait(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("self")
	reply := x.NewPort("self-reply")
	sw := &selfWaiter{x: x, port: port, reply: reply}
	th := k.NewThread(core.ThreadSpec{Name: "selfish", SpaceID: 1, Program: sw})
	k.Setrun(th)
	primeSend(k, x, port)
	k.Run(0)

	if th.State != core.StateWaiting {
		t.Fatalf("selfish thread is %v, want blocked", th.State)
	}
	cycle := x.FindDeadlock()
	if cycle == nil {
		t.Fatal("self-wait cycle not detected")
	}
	if len(cycle) != 1 {
		t.Fatalf("cycle = %v, want exactly the one self-waiting thread", cycle)
	}
	if !strings.Contains(cycle[0], "selfish") {
		t.Fatalf("cycle %q does not name the thread", cycle[0])
	}
	if !strings.Contains(cycle[0], "(") || strings.Contains(cycle[0], "(<stack>)") {
		t.Fatalf("cycle entry %q does not name a continuation", cycle[0])
	}
}

// fullPortSender receives once from its port (claiming ownership), then
// keeps sending no-reply messages at it until the queue fills and the
// send blocks — on itself, since it is the port's owner. With sndTimeout
// armed the blocked send will resolve on its own, so the detector must
// NOT call it a deadlock.
type fullPortSender struct {
	x          *ipc.IPC
	port       *ipc.Port
	sndTimeout machine.Duration
	step       int
}

func (s *fullPortSender) Next(e *core.Env, t *core.Thread) core.Action {
	if m := s.x.Received(t); m != nil {
		s.x.FreeMessage(m)
	}
	if s.step == 0 {
		s.step = 1
		return core.Syscall("mach_msg(prime-recv)", func(e *core.Env) {
			s.x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	if t.MD.RetVal == ipc.SendTimedOut {
		// The armed timeout resolved the blocked send: done.
		return core.Exit()
	}
	s.step++
	return core.Syscall("mach_msg(flood)", func(e *core.Env) {
		m := s.x.NewMessage(uint32(s.step), ipc.HeaderBytes, nil, nil)
		s.x.MachMsg(e, ipc.MsgOptions{
			Send: m, SendTo: s.port, SndTimeout: s.sndTimeout,
		})
	})
}

// buildFullPortSelfBlock boots a sender self-blocked on its own full
// port. It steps the kernel just until the flood send parks (so an armed
// send timeout, if any, has not fired yet) and returns with the thread
// genuinely blocked.
func buildFullPortSelfBlock(t *testing.T, sndTimeout machine.Duration) (*ipc.IPC, *core.Thread) {
	t.Helper()
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("narrow")
	port.QueueLimit = 1
	fp := &fullPortSender{x: x, port: port, sndTimeout: sndTimeout}
	th := k.NewThread(core.ThreadSpec{Name: "flooder", SpaceID: 1, Program: fp})
	k.Setrun(th)
	primeSend(k, x, port)
	// Step until the sender is parked in its flood phase (step >= 2 rules
	// out the earlier prime-receive block).
	for th.State != core.StateWaiting || fp.step < 2 {
		if !k.Step() {
			break
		}
	}
	if th.State != core.StateWaiting || fp.step < 2 {
		t.Fatalf("flooder is %v at step %d, want blocked on the full queue", th.State, fp.step)
	}
	return x, th
}

// TestFindDeadlockSendCycle: without a timeout the self-blocked sender
// is a real one-node cycle through the full-queue edge (rule 1).
func TestFindDeadlockSendCycle(t *testing.T) {
	x, _ := buildFullPortSelfBlock(t, 0)
	cycle := x.FindDeadlock()
	if cycle == nil {
		t.Fatal("blocked-send self-cycle not detected")
	}
	if len(cycle) != 1 || !strings.Contains(cycle[0], "flooder") {
		t.Fatalf("cycle = %v, want the one self-blocked sender", cycle)
	}
}

// TestFindDeadlockSendTimeoutBreaksCycle: the identical topology with an
// armed send timeout is NOT a deadlock — the waiter will unblock by
// itself, so it must contribute no edge and the detector must stay
// silent. The kernel is stepped only until the send parks, well before
// the timeout fires.
func TestFindDeadlockSendTimeoutBreaksCycle(t *testing.T) {
	timeout := machine.Duration(10 * 1e6) // 10 ms, far beyond the stop time
	x, _ := buildFullPortSelfBlock(t, timeout)
	if cycle := x.FindDeadlock(); cycle != nil {
		t.Fatalf("armed send timeout still reported as deadlock: %v", cycle)
	}
}
